package export

import (
	"bufio"
	"encoding/xml"
	"fmt"
	"io"

	"graingraph/internal/core"
	"graingraph/internal/highlight"
)

// GraphML writes the graph as yEd-flavoured GraphML: node geometry from the
// layout, fill colours from the view, per-node data attributes carrying the
// grain identity and metrics so clicking a grain in the viewer shows its
// timing, source location and properties (paper §4.2 workflow).
//
// Call core.Layout(g) first if node positions matter; un-laid-out graphs
// still load, with yEd able to re-layout them.
//
// Graphs past MaxExportNodes are refused with a *HugeGraphError;
// FullGraphML is the explicit opt-in.
func GraphML(w io.Writer, g *core.Graph, a *highlight.Assessment, v View) error {
	if err := SizeGate(g, false); err != nil {
		return err
	}
	return graphML(w, g, a, v)
}

// FullGraphML is GraphML with the huge-graph gate explicitly disabled
// (grainview -full-export).
func FullGraphML(w io.Writer, g *core.Graph, a *highlight.Assessment, v View) error {
	return graphML(w, g, a, v)
}

// graphML is the ungated GraphML emitter.
func graphML(w io.Writer, g *core.Graph, a *highlight.Assessment, v View) error {
	bw := bufio.NewWriter(w)
	defColors := DefinitionColors(g)

	fmt.Fprint(bw, xml.Header)
	fmt.Fprintln(bw, `<graphml xmlns="http://graphml.graphdrawing.org/xmlns"`)
	fmt.Fprintln(bw, `  xmlns:y="http://www.yworks.com/xml/graphml"`)
	fmt.Fprintln(bw, `  xmlns:yed="http://www.yworks.com/xml/yed/3">`)
	fmt.Fprintln(bw, ` <key for="node" id="ng" yfiles.type="nodegraphics"/>`)
	fmt.Fprintln(bw, ` <key for="edge" id="eg" yfiles.type="edgegraphics"/>`)
	fmt.Fprintln(bw, ` <key for="node" id="grain" attr.name="grain" attr.type="string"/>`)
	fmt.Fprintln(bw, ` <key for="node" id="kind" attr.name="kind" attr.type="string"/>`)
	fmt.Fprintln(bw, ` <key for="node" id="loc" attr.name="source" attr.type="string"/>`)
	fmt.Fprintln(bw, ` <key for="node" id="exec" attr.name="exec_cycles" attr.type="long"/>`)
	fmt.Fprintln(bw, ` <key for="node" id="corekey" attr.name="core" attr.type="int"/>`)
	fmt.Fprintln(bw, ` <key for="node" id="pb" attr.name="parallel_benefit" attr.type="double"/>`)
	fmt.Fprintln(bw, ` <key for="node" id="wd" attr.name="work_deviation" attr.type="double"/>`)
	fmt.Fprintln(bw, ` <key for="node" id="ip" attr.name="inst_parallelism" attr.type="int"/>`)
	fmt.Fprintln(bw, ` <key for="node" id="sc" attr.name="scatter" attr.type="int"/>`)
	fmt.Fprintln(bw, ` <key for="node" id="mhu" attr.name="mem_hierarchy_util" attr.type="double"/>`)
	fmt.Fprintf(bw, ` <graph id="%s" edgedefault="directed">%s`, escape(v.String()), "\n")

	for id := core.NodeID(0); id < core.NodeID(g.NumNodes()); id++ {
		n := g.NodeAt(id)
		color := NodeColor(g, n, a, v, defColors)
		border := "#333333"
		borderW := 1.0
		if n.Critical {
			border = criticalColor
			borderW = 2.5
		}
		shape := "rectangle"
		switch n.Kind {
		case core.NodeFork:
			shape = "diamond"
		case core.NodeJoin:
			shape = "ellipse"
		case core.NodeBookkeep:
			shape = "ellipse"
		}
		w, h := n.W, n.H
		if w == 0 {
			w, h = 30, 30
		}
		fmt.Fprintf(bw, `  <node id="n%d">`+"\n", n.ID)
		fmt.Fprintf(bw, `   <data key="ng"><y:ShapeNode>`)
		fmt.Fprintf(bw, `<y:Geometry x="%.1f" y="%.1f" width="%.1f" height="%.1f"/>`, n.X, n.Y, w, h)
		fmt.Fprintf(bw, `<y:Fill color="%s"/>`, color)
		fmt.Fprintf(bw, `<y:BorderStyle color="%s" width="%.1f"/>`, border, borderW)
		fmt.Fprintf(bw, `<y:NodeLabel fontSize="8">%s</y:NodeLabel>`, escape(n.Label))
		fmt.Fprintf(bw, `<y:Shape type="%s"/>`, shape)
		fmt.Fprintf(bw, `</y:ShapeNode></data>`+"\n")
		fmt.Fprintf(bw, `   <data key="grain">%s</data>`+"\n", escape(string(n.Grain)))
		fmt.Fprintf(bw, `   <data key="kind">%s</data>`+"\n", n.Kind)
		fmt.Fprintf(bw, `   <data key="loc">%s</data>`+"\n", escape(defKeyOf(g, n)))
		fmt.Fprintf(bw, `   <data key="exec">%d</data>`+"\n", n.Weight)
		fmt.Fprintf(bw, `   <data key="corekey">%d</data>`+"\n", n.Core)
		if a != nil && (n.Kind == core.NodeFragment || n.Kind == core.NodeChunk) {
			if ga := a.Get(n.Grain); ga != nil {
				m := ga.Metrics
				fmt.Fprintf(bw, `   <data key="pb">%g</data>`+"\n", finiteOr(m.ParallelBenefit, 1e9))
				fmt.Fprintf(bw, `   <data key="wd">%g</data>`+"\n", m.WorkDeviation)
				fmt.Fprintf(bw, `   <data key="ip">%d</data>`+"\n", m.InstParallelism)
				fmt.Fprintf(bw, `   <data key="sc">%d</data>`+"\n", m.Scatter)
				fmt.Fprintf(bw, `   <data key="mhu">%g</data>`+"\n", finiteOr(m.Utilization, 1e9))
			}
		}
		fmt.Fprintln(bw, `  </node>`)
	}

	for i := 0; i < g.NumEdges(); i++ {
		e := g.EdgeAt(i)
		color := edgeColor(e.Kind)
		width := 1.0
		if e.Critical {
			color = criticalColor
			width = 2.5
		}
		fmt.Fprintf(bw, `  <edge id="e%d" source="n%d" target="n%d">`+"\n", i, e.From, e.To)
		fmt.Fprintf(bw, `   <data key="eg"><y:PolyLineEdge><y:LineStyle color="%s" type="line" width="%.1f"/>`, color, width)
		fmt.Fprintf(bw, `<y:Arrows source="none" target="standard"/></y:PolyLineEdge></data>`+"\n")
		fmt.Fprintln(bw, `  </edge>`)
	}

	fmt.Fprintln(bw, ` </graph>`)
	fmt.Fprintln(bw, `</graphml>`)
	return bw.Flush()
}

func escape(s string) string {
	b := &byteWriter{}
	_ = xml.EscapeText(b, []byte(s)) // cannot fail on a byteWriter
	return string(b.b)
}

type byteWriter struct{ b []byte }

func (w *byteWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// finiteOr replaces +Inf/NaN with a sentinel so XML/JSON stay parseable.
func finiteOr(v, sentinel float64) float64 {
	if v != v || v > 1e300 || v < -1e300 {
		return sentinel
	}
	return v
}
