package export

// Chrome-trace-event (Perfetto-compatible) JSON export. The output of
// Perfetto opens directly in ui.perfetto.dev or chrome://tracing: one
// process per run, one thread track per simulated worker, grain slices
// labelled file:line(func), steal/park/resume instant markers, and
// critical-path grains flagged with a distinct colour.

import (
	"encoding/json"
	"fmt"
	"io"

	"graingraph/internal/profile"
	"graingraph/internal/trace"
)

// PerfettoRun is one profiled run to include in a trace file. Trace
// supplies the grain slices (fragments and chunks); Events supplies the
// scheduler instants (steal/park/resume) captured by a trace.Sink, and
// may be nil when no sink was attached. Critical flags the grains on the
// critical path (see core.Graph.CriticalGrains); nil means unknown.
type PerfettoRun struct {
	Label    string
	Trace    *profile.Trace
	Events   []trace.Event
	Dropped  uint64 // events lost to the bounded ring buffer
	Critical map[profile.GrainID]bool
}

// chromeEvent is one entry of the Chrome trace-event JSON array.
// Timestamps and durations are emitted in simulated cycles; viewers
// interpret them as microseconds, which only rescales the axis.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    uint64         `json:"ts"`
	Dur   *uint64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`     // instant scope: "t" = thread
	Cname string         `json:"cname,omitempty"` // chrome colour name
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object format.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// criticalCname is the chrome://tracing colour slot used to make
// critical-path grains stand out (rendered as a saturated red).
const criticalCname = "terrible"

// Perfetto writes the runs as one Chrome-trace JSON document. Output is
// byte-stable for identical inputs: slices follow the deterministic
// record order of each profile, instants follow event emission order,
// and args maps are marshalled with sorted keys by encoding/json.
func Perfetto(w io.Writer, runs []PerfettoRun) error {
	doc := chromeTrace{
		DisplayTimeUnit: "ns",
		OtherData:       map[string]any{"generator": "graingraph", "timeUnit": "simulated cycles"},
	}
	for i := range runs {
		appendRun(&doc, i+1, &runs[i])
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// appendRun emits one run's metadata, slices and instants under pid.
func appendRun(doc *chromeTrace, pid int, r *PerfettoRun) {
	tr := r.Trace
	label := r.Label
	if label == "" && tr != nil {
		label = tr.Program
	}
	meta := map[string]any{"name": label}
	if r.Dropped > 0 {
		meta["dropped_events"] = r.Dropped
	}
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: pid, Args: meta,
	})
	if tr == nil {
		return
	}
	// One named thread track per simulated worker.
	for t := 0; t < tr.Cores; t++ {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: t,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", t)},
		})
	}

	// Grain slices: task fragments, then loop chunks, in record order.
	for _, task := range tr.Tasks {
		critical := r.Critical[task.ID]
		for fi := range task.Fragments {
			f := &task.Fragments[fi]
			ev := slice(pid, f.Core, task.Loc.String(), "task", f.Start, f.End-f.Start, critical)
			ev.Args = map[string]any{
				"grain":    string(task.ID),
				"fragment": fi,
				"compute":  f.Counters.Compute,
				"stall":    f.Counters.Stall,
				"l1_miss":  f.Counters.L1Miss,
				"l3_miss":  f.Counters.L3Miss,
				"remote":   f.Counters.Remote,
			}
			if critical {
				ev.Args["critical"] = true
			}
			if task.Inlined {
				ev.Args["inlined"] = true
			}
			doc.TraceEvents = append(doc.TraceEvents, ev)
		}
	}
	for _, ck := range tr.Chunks {
		id := tr.ChunkGrainID(ck)
		critical := r.Critical[id]
		loc := ""
		if l := tr.Loop(ck.Loop); l != nil {
			loc = l.Loc.String()
		} else {
			loc = fmt.Sprintf("loop:%d", ck.Loop)
		}
		ev := slice(pid, ck.Thread, loc, "chunk", ck.Start, ck.End-ck.Start, critical)
		ev.Args = map[string]any{
			"grain":   string(id),
			"iters":   fmt.Sprintf("[%d,%d)", ck.Lo, ck.Hi),
			"compute": ck.Counters.Compute,
			"stall":   ck.Counters.Stall,
		}
		if critical {
			ev.Args["critical"] = true
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}

	// Scheduler instants from the event stream.
	for i := range r.Events {
		e := &r.Events[i]
		var name string
		switch e.Kind {
		case trace.KindSteal:
			name = "steal"
		case trace.KindPark:
			name = "park"
		case trace.KindResume:
			name = "resume"
		default:
			continue // spans and spawn/start/end stay out of the instant tracks
		}
		ev := chromeEvent{
			Name: name, Cat: "sched", Ph: "i", Ts: e.At,
			Pid: pid, Tid: e.Worker, Scope: "t",
			Args: map[string]any{"grain": string(e.Grain)},
		}
		if e.Kind == trace.KindSteal {
			ev.Args["victim"] = e.Victim
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
}

// slice builds a complete ("X") slice event.
func slice(pid, tid int, name, cat string, ts, dur uint64, critical bool) chromeEvent {
	d := dur
	ev := chromeEvent{
		Name: name, Cat: cat, Ph: "X", Ts: ts, Dur: &d, Pid: pid, Tid: tid,
	}
	if critical {
		ev.Cname = criticalCname
	}
	return ev
}
