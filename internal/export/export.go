// Package export renders grain graphs to GraphML (viewable in yEd and
// Cytoscape, the viewers the paper uses), Graphviz DOT, and JSON.
//
// A View selects what grain colours encode, mirroring the paper's
// multi-view workflow: the structure view colours grains by source
// definition; each problem view highlights threshold-crossing grains on a
// red-to-yellow severity gradient and dims everything else; the critical
// view marks the critical path.
package export

import (
	"fmt"

	"graingraph/internal/core"
	"graingraph/internal/highlight"
)

// View selects the colour encoding of grain nodes.
type View int

const (
	// ViewStructure colours grains by their source definition.
	ViewStructure View = iota
	// ViewParallelBenefit highlights grains with parallel benefit < 1.
	ViewParallelBenefit
	// ViewWorkInflation highlights grains with problematic work deviation.
	ViewWorkInflation
	// ViewParallelism highlights grains executing under low instantaneous
	// parallelism.
	ViewParallelism
	// ViewScatter highlights grains whose siblings are scattered.
	ViewScatter
	// ViewUtilization highlights grains with poor memory-hierarchy
	// utilization.
	ViewUtilization
	// ViewCritical highlights the critical path.
	ViewCritical
)

// String names the view.
func (v View) String() string {
	switch v {
	case ViewStructure:
		return "structure"
	case ViewParallelBenefit:
		return "parallel-benefit"
	case ViewWorkInflation:
		return "work-inflation"
	case ViewParallelism:
		return "instantaneous-parallelism"
	case ViewScatter:
		return "scatter"
	case ViewUtilization:
		return "memory-hierarchy-utilization"
	case ViewCritical:
		return "critical-path"
	default:
		return fmt.Sprintf("View(%d)", int(v))
	}
}

// problem returns the highlight problem a view encodes (ok=false for
// structure/critical views).
func (v View) problem() (highlight.Problem, bool) {
	switch v {
	case ViewParallelBenefit:
		return highlight.LowParallelBenefit, true
	case ViewWorkInflation:
		return highlight.WorkInflation, true
	case ViewParallelism:
		return highlight.LowParallelism, true
	case ViewScatter:
		return highlight.HighScatter, true
	case ViewUtilization:
		return highlight.PoorUtilization, true
	default:
		return 0, false
	}
}

// Structural colours, matching the paper's drawing conventions.
const (
	forkColor     = "#66cc66" // green fork nodes
	joinColor     = "#ff9933" // orange join nodes
	bookkeepColor = "#40e0d0" // turquoise book-keeping nodes
	criticalColor = "#ff0000"
)

// definitionPalette colours grains per source definition in the structure
// view (light-green/orange/magenta etc., like Figure 6a).
var definitionPalette = []string{
	"#90ee90", // light green
	"#ffa500", // orange
	"#ff00ff", // magenta
	"#87cefa", // light blue
	"#ffd700", // gold
	"#dda0dd", // plum
	"#00ced1", // dark turquoise
	"#fa8072", // salmon
	"#9acd32", // yellow green
	"#c0c0c0", // silver
	"#f08080", // light coral
	"#66cdaa", // aquamarine
}

// NodeColor resolves the fill colour of a node under the given view.
// The assessment may be nil for pure structure rendering.
func NodeColor(g *core.Graph, n core.Node, a *highlight.Assessment, v View,
	defColors map[string]string) string {

	switch n.Kind {
	case core.NodeFork:
		return forkColor
	case core.NodeJoin:
		return joinColor
	case core.NodeBookkeep:
		return bookkeepColor
	}
	// Fragment / chunk.
	switch v {
	case ViewStructure:
		return defColors[defKeyOf(g, n)]
	case ViewCritical:
		if n.Critical {
			return criticalColor
		}
		return highlight.DimColor
	default:
		p, ok := v.problem()
		if !ok || a == nil {
			return highlight.DimColor
		}
		ga := a.Get(n.Grain)
		if ga == nil {
			return highlight.DimColor
		}
		if sev, flagged := a.Severity(ga, p); flagged {
			return highlight.HeatColor(sev)
		}
		return highlight.DimColor
	}
}

// defKeyOf returns the source-definition key of a grain node.
func defKeyOf(g *core.Graph, n core.Node) string {
	if n.Kind == core.NodeChunk {
		if l := g.Trace.Loop(n.Loop); l != nil {
			return l.Loc.String()
		}
		return fmt.Sprintf("loop:%d", n.Loop)
	}
	if t := g.Trace.Task(n.Grain); t != nil {
		return t.Loc.String()
	}
	return string(n.Grain)
}

// DefinitionColors assigns a palette colour to every source definition in
// the graph, in first-appearance order (deterministic).
func DefinitionColors(g *core.Graph) map[string]string {
	colors := make(map[string]string)
	i := 0
	for id := core.NodeID(0); id < core.NodeID(g.NumNodes()); id++ {
		if k := g.Kind(id); k != core.NodeFragment && k != core.NodeChunk {
			continue
		}
		key := defKeyOf(g, g.NodeAt(id))
		if _, ok := colors[key]; !ok {
			colors[key] = definitionPalette[i%len(definitionPalette)]
			i++
		}
	}
	return colors
}

func edgeColor(k core.EdgeKind) string {
	switch k {
	case core.EdgeCreation:
		return "#2e8b22"
	case core.EdgeJoin:
		return "#ff8c00"
	default:
		return "#000000"
	}
}
