package export

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"strings"
	"testing"

	"graingraph/internal/core"
	"graingraph/internal/highlight"
	"graingraph/internal/metrics"
	"graingraph/internal/profile"
	"graingraph/internal/rts"
)

func testGraph(t *testing.T) (*core.Graph, *highlight.Assessment) {
	t.Helper()
	tr := rts.Run(rts.Config{Program: "exp", Cores: 2, Seed: 1}, func(c rts.Ctx) {
		c.Spawn(profile.Loc("a.go", 1, "tiny"), func(c rts.Ctx) { c.Compute(10) })
		c.Spawn(profile.Loc("a.go", 2, "big"), func(c rts.Ctx) { c.Compute(1_000_000) })
		c.TaskWait()
		c.For(profile.Loc("a.go", 3, "loop"), 0, 8,
			rts.ForOpt{Schedule: profile.ScheduleDynamic, Chunk: 2},
			func(c rts.Ctx, lo, hi int) { c.Compute(5000) })
	})
	g := core.Build(tr)
	rep := metrics.Analyze(tr, g, nil, metrics.Options{})
	a := highlight.Evaluate(rep, highlight.Defaults(2, 12))
	core.Layout(g)
	return g, a
}

func TestGraphMLWellFormed(t *testing.T) {
	g, a := testGraph(t)
	var buf bytes.Buffer
	if err := GraphML(&buf, g, a, ViewParallelBenefit); err != nil {
		t.Fatal(err)
	}
	// Must be parseable XML.
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	nodes, edges := 0, 0
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		if se, ok := tok.(xml.StartElement); ok {
			switch se.Name.Local {
			case "node":
				nodes++
			case "edge":
				edges++
			}
		}
	}
	if nodes != g.NumNodes() {
		t.Errorf("GraphML has %d nodes, graph has %d", nodes, g.NumNodes())
	}
	if edges != g.NumEdges() {
		t.Errorf("GraphML has %d edges, graph has %d", edges, g.NumEdges())
	}
	s := buf.String()
	for _, want := range []string{"y:ShapeNode", "y:Geometry", "y:Fill", "yworks.com"} {
		if !strings.Contains(s, want) {
			t.Errorf("GraphML missing %q", want)
		}
	}
}

func TestGraphMLProblemViewColors(t *testing.T) {
	g, a := testGraph(t)
	var buf bytes.Buffer
	if err := GraphML(&buf, g, a, ViewParallelBenefit); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	// The tiny grain is problematic: some node must carry a heat colour
	// (#ffXX00), and non-problematic grains the dim colour.
	if !strings.Contains(s, highlight.DimColor) {
		t.Error("no dimmed nodes in problem view")
	}
	hasHeat := false
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, `<y:Fill color="#ff`) && strings.Contains(line, `00"/>`) {
			hasHeat = true
		}
	}
	if !hasHeat {
		t.Error("no heat-coloured nodes in problem view")
	}
}

func TestGraphMLEscapesLabels(t *testing.T) {
	tr := rts.Run(rts.Config{Program: "esc", Cores: 1, Seed: 1}, func(c rts.Ctx) {
		c.Spawn(profile.Loc("x.go", 1, "a<b&c>"), func(c rts.Ctx) { c.Compute(10) })
		c.TaskWait()
	})
	g := core.Build(tr)
	var buf bytes.Buffer
	if err := GraphML(&buf, g, nil, ViewStructure); err != nil {
		t.Fatal(err)
	}
	if _, err := parseAllXML(buf.Bytes()); err != nil {
		t.Fatalf("GraphML with special chars not well-formed: %v", err)
	}
}

func parseAllXML(b []byte) (int, error) {
	dec := xml.NewDecoder(bytes.NewReader(b))
	n := 0
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return n, nil
			}
			return n, err
		}
		n++
	}
}

func TestDOTOutput(t *testing.T) {
	g, a := testGraph(t)
	var buf bytes.Buffer
	if err := DOT(&buf, g, a, ViewStructure); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "digraph grains {") || !strings.HasSuffix(strings.TrimSpace(s), "}") {
		t.Error("DOT output not a digraph block")
	}
	if strings.Count(s, "->") != g.NumEdges() {
		t.Errorf("DOT edge count = %d, want %d", strings.Count(s, "->"), g.NumEdges())
	}
}

func TestJSONRoundTrips(t *testing.T) {
	g, a := testGraph(t)
	var buf bytes.Buffer
	if err := JSON(&buf, g, a); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Program string `json:"program"`
		Cores   int    `json:"cores"`
		Nodes   []struct {
			Kind     string `json:"kind"`
			Grain    string `json:"grain"`
			Problems string `json:"problems"`
		} `json:"nodes"`
		Edges []struct {
			Kind string `json:"kind"`
		} `json:"edges"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("JSON not parseable: %v", err)
	}
	if out.Program != "exp" || out.Cores != 2 {
		t.Errorf("JSON header = %+v", out)
	}
	if len(out.Nodes) != g.NumNodes() || len(out.Edges) != g.NumEdges() {
		t.Errorf("JSON sizes: %d/%d nodes, %d/%d edges",
			len(out.Nodes), g.NumNodes(), len(out.Edges), g.NumEdges())
	}
}

func TestDefinitionColorsDeterministic(t *testing.T) {
	g, _ := testGraph(t)
	c1 := DefinitionColors(g)
	c2 := DefinitionColors(g)
	if len(c1) < 3 { // root, tiny, big, loop
		t.Errorf("definitions found = %d", len(c1))
	}
	for k, v := range c1 {
		if c2[k] != v {
			t.Errorf("colour for %s differs between calls", k)
		}
	}
}

func TestStructuralNodeColors(t *testing.T) {
	g, a := testGraph(t)
	defc := DefinitionColors(g)
	sawFork, sawJoin, sawBk := false, false, false
	for id := core.NodeID(0); id < core.NodeID(g.NumNodes()); id++ {
		n := g.NodeAt(id)
		c := NodeColor(g, n, a, ViewStructure, defc)
		switch n.Kind {
		case core.NodeFork:
			sawFork = true
			if c != forkColor {
				t.Errorf("fork colour = %s", c)
			}
		case core.NodeJoin:
			sawJoin = true
			if c != joinColor {
				t.Errorf("join colour = %s", c)
			}
		case core.NodeBookkeep:
			sawBk = true
			if c != bookkeepColor {
				t.Errorf("bookkeep colour = %s", c)
			}
		}
	}
	if !sawFork || !sawJoin || !sawBk {
		t.Error("test graph lacks structural node kinds")
	}
}

func TestCriticalView(t *testing.T) {
	g, a := testGraph(t)
	rep := a.Report
	_ = rep
	// Critical flags were set by Analyze (via CriticalPath).
	defc := DefinitionColors(g)
	crit, dim := 0, 0
	for id := core.NodeID(0); id < core.NodeID(g.NumNodes()); id++ {
		n := g.NodeAt(id)
		if n.Kind != core.NodeFragment && n.Kind != core.NodeChunk {
			continue
		}
		switch NodeColor(g, n, a, ViewCritical, defc) {
		case criticalColor:
			crit++
		case highlight.DimColor:
			dim++
		}
	}
	if crit == 0 {
		t.Error("no critical grains in critical view")
	}
	if dim == 0 {
		t.Error("no dimmed grains in critical view")
	}
}

func TestViewStrings(t *testing.T) {
	views := []View{ViewStructure, ViewParallelBenefit, ViewWorkInflation,
		ViewParallelism, ViewScatter, ViewUtilization, ViewCritical}
	seen := map[string]bool{}
	for _, v := range views {
		s := v.String()
		if s == "" || seen[s] {
			t.Errorf("view %d name %q empty or duplicate", int(v), s)
		}
		seen[s] = true
	}
}

// TestExportersByteStable: exporting the same analyzed graph twice must
// produce identical bytes in every format — no map-iteration order may
// leak into the output.
func TestExportersByteStable(t *testing.T) {
	g, a := testGraph(t)
	formats := map[string]func(*bytes.Buffer) error{
		"graphml": func(b *bytes.Buffer) error { return GraphML(b, g, a, ViewParallelBenefit) },
		"dot":     func(b *bytes.Buffer) error { return DOT(b, g, a, ViewParallelism) },
		"json":    func(b *bytes.Buffer) error { return JSON(b, g, a) },
	}
	for name, f := range formats {
		var b1, b2 bytes.Buffer
		if err := f(&b1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := f(&b2); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Errorf("%s output not byte-stable across exports", name)
		}
	}
}
