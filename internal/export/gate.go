package export

import (
	"fmt"

	"graingraph/internal/core"
)

// MaxExportNodes is the full-export refusal threshold: past it a DOT/JSON/
// GraphML emission of every node is hundreds of MB no viewer opens. The
// gate lives here, in the export layer, so every caller — grainview, the
// grainserved window/export handlers, future tools — hits it by default
// instead of each having to remember its own check; the Full* entry points
// are the explicit opt-in for callers that really want the whole graph.
const MaxExportNodes = 500_000

// HugeGraphError is the structured "use a window" refusal: the graph has
// more nodes than a full export can usefully carry. Callers that can offer
// an alternative (an HTTP handler suggesting the window endpoint, a CLI
// suggesting -window) match it with errors.As and translate the fields.
type HugeGraphError struct {
	Nodes int // nodes in the graph
	Limit int // the gate (MaxExportNodes)
}

func (e *HugeGraphError) Error() string {
	return fmt.Sprintf("graph has %d nodes (full-export limit %d): the export would be unusable and enormous; request a level-of-detail window (e.g. depth=2,top=8) instead, or explicitly opt in to a full export", e.Nodes, e.Limit)
}

// SizeGate checks g against the full-export gate: nil when the graph is
// exportable (or full is true, the explicit opt-in), a *HugeGraphError
// otherwise. The exporters call it themselves; it is exported so callers
// can fail fast before spending time on layout or reductions.
func SizeGate(g *core.Graph, full bool) error {
	return gateNodes(g.NumNodes(), full)
}

// gateNodes is SizeGate on a raw node count (separable for tests: nobody
// wants to build a 500k-node graph to exercise an if statement).
func gateNodes(n int, full bool) error {
	if full || n <= MaxExportNodes {
		return nil
	}
	return &HugeGraphError{Nodes: n, Limit: MaxExportNodes}
}
