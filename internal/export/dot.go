package export

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"graingraph/internal/core"
	"graingraph/internal/highlight"
)

// DOT writes the graph in Graphviz format with the same colour encoding as
// GraphML — handy for quick `dot -Tsvg` rendering without yEd.
func DOT(w io.Writer, g *core.Graph, a *highlight.Assessment, v View) error {
	bw := bufio.NewWriter(w)
	defColors := DefinitionColors(g)

	fmt.Fprintf(bw, "digraph grains {\n")
	fmt.Fprintf(bw, "  label=%q; labelloc=t;\n", fmt.Sprintf("%s — %s view", g.Trace.Program, v))
	fmt.Fprintf(bw, "  rankdir=TB; node [style=filled, fontsize=8];\n")

	for id := core.NodeID(0); id < core.NodeID(g.NumNodes()); id++ {
		n := g.NodeAt(id)
		color := NodeColor(g, n, a, v, defColors)
		shape := "box"
		switch n.Kind {
		case core.NodeFork:
			shape = "diamond"
		case core.NodeJoin:
			shape = "ellipse"
		case core.NodeBookkeep:
			shape = "circle"
		}
		attrs := []string{
			fmt.Sprintf("label=%q", n.Label),
			fmt.Sprintf("shape=%s", shape),
			fmt.Sprintf("fillcolor=%q", color),
		}
		if n.Critical {
			attrs = append(attrs, `color="red"`, "penwidth=2.5")
		}
		fmt.Fprintf(bw, "  n%d [%s];\n", n.ID, strings.Join(attrs, ", "))
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.EdgeAt(i)
		color := edgeColor(e.Kind)
		width := 1.0
		if e.Critical {
			color = criticalColor
			width = 2.5
		}
		fmt.Fprintf(bw, "  n%d -> n%d [color=%q, penwidth=%.1f];\n", e.From, e.To, color, width)
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}
