package export

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"

	"graingraph/internal/core"
	"graingraph/internal/highlight"
	"graingraph/internal/runpool"
)

// DOT writes the graph in Graphviz format with the same colour encoding as
// GraphML — handy for quick `dot -Tsvg` rendering without yEd.
func DOT(w io.Writer, g *core.Graph, a *highlight.Assessment, v View) error {
	return DOTPool(w, g, a, v, nil)
}

// DOTPool is DOT with node and edge emission sharded across the pool: every
// line of the body depends only on its own node or edge row, so fixed
// chunks render into per-worker buffers concurrently and are assembled in
// chunk order — byte-identical output at every worker count, including the
// nil (serial) pool. Graphs past MaxExportNodes are refused with a
// *HugeGraphError; FullDOT is the explicit opt-in.
func DOTPool(w io.Writer, g *core.Graph, a *highlight.Assessment, v View, pool *runpool.Runner) error {
	if err := SizeGate(g, false); err != nil {
		return err
	}
	return dotPool(w, g, a, v, pool)
}

// dotPool is the ungated DOT body emitter.
func dotPool(w io.Writer, g *core.Graph, a *highlight.Assessment, v View, pool *runpool.Runner) error {
	bw := bufio.NewWriter(w)
	defColors := DefinitionColors(g)

	fmt.Fprintf(bw, "digraph grains {\n")
	fmt.Fprintf(bw, "  label=%q; labelloc=t;\n", fmt.Sprintf("%s — %s view", g.Trace.Program, v))
	fmt.Fprintf(bw, "  rankdir=TB; node [style=filled, fontsize=8];\n")

	if err := emitSharded(bw, g.NumNodes(), exportGrain, pool, func(lo, hi int, buf *bytes.Buffer) {
		for id := core.NodeID(lo); id < core.NodeID(hi); id++ {
			n := g.NodeAt(id)
			color := NodeColor(g, n, a, v, defColors)
			shape := "box"
			switch n.Kind {
			case core.NodeFork:
				shape = "diamond"
			case core.NodeJoin:
				shape = "ellipse"
			case core.NodeBookkeep:
				shape = "circle"
			}
			attrs := []string{
				fmt.Sprintf("label=%q", n.Label),
				fmt.Sprintf("shape=%s", shape),
				fmt.Sprintf("fillcolor=%q", color),
			}
			if n.Critical {
				attrs = append(attrs, `color="red"`, "penwidth=2.5")
			}
			fmt.Fprintf(buf, "  n%d [%s];\n", n.ID, strings.Join(attrs, ", "))
		}
	}); err != nil {
		return err
	}
	if err := emitSharded(bw, g.NumEdges(), exportGrain, pool, func(lo, hi int, buf *bytes.Buffer) {
		for i := lo; i < hi; i++ {
			e := g.EdgeAt(i)
			color := edgeColor(e.Kind)
			width := 1.0
			if e.Critical {
				color = criticalColor
				width = 2.5
			}
			fmt.Fprintf(buf, "  n%d -> n%d [color=%q, penwidth=%.1f];\n", e.From, e.To, color, width)
		}
	}); err != nil {
		return err
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}
