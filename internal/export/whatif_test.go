package export

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"graingraph/internal/metrics"
	"graingraph/internal/whatif"
)

func testProjections(t *testing.T) []whatif.Projection {
	t.Helper()
	g, a := testGraph(t)
	rep := metrics.Analyze(g.Trace, g, nil, metrics.Options{})
	e := whatif.New(g, rep)
	ps, err := e.Rank(a, nil, whatif.RankOptions{TopN: 3})
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestJSONWithWhatIfSection(t *testing.T) {
	g, a := testGraph(t)
	ps := testProjections(t)
	var buf bytes.Buffer
	if err := JSONWithWhatIf(&buf, g, a, ps); err != nil {
		t.Fatal(err)
	}
	var out struct {
		WhatIf []jsonWhatIf `json:"whatif"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("annotated dump is not valid JSON: %v", err)
	}
	if len(out.WhatIf) != len(ps) {
		t.Fatalf("whatif section has %d entries, want %d", len(out.WhatIf), len(ps))
	}
	for i, ann := range out.WhatIf {
		if ann.Rank != i+1 {
			t.Errorf("entry %d has rank %d", i, ann.Rank)
		}
		if ann.Hypothesis != ps[i].Label || ann.Makespan != ps[i].Makespan {
			t.Errorf("entry %d = %+v does not match projection %+v", i, ann, ps[i])
		}
	}

	// Nil projections must keep the plain schema: no whatif key at all.
	var plain bytes.Buffer
	if err := JSONWithWhatIf(&plain, g, a, nil); err != nil {
		t.Fatal(err)
	}
	var viaJSON bytes.Buffer
	if err := JSON(&viaJSON, g, a); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), viaJSON.Bytes()) {
		t.Error("JSONWithWhatIf(nil) differs from JSON()")
	}
	if strings.Contains(plain.String(), `"whatif"`) {
		t.Error("plain dump contains a whatif key")
	}
}

func TestDOTWithWhatIfComments(t *testing.T) {
	g, a := testGraph(t)
	ps := testProjections(t)
	var buf bytes.Buffer
	if err := DOTWithWhatIf(&buf, g, a, ViewParallelBenefit, ps); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for i, p := range ps {
		if !strings.Contains(out, p.Label) {
			t.Errorf("DOT output missing hypothesis %d label %q", i, p.Label)
		}
	}
	if !strings.HasPrefix(out, "// what-if #1:") {
		t.Errorf("DOT output does not lead with what-if comments:\n%.200s", out)
	}
	// The graph body must be untouched by the annotations.
	var plain bytes.Buffer
	if err := DOT(&plain, g, a, ViewParallelBenefit); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(out, plain.String()) {
		t.Error("annotated DOT body differs from plain DOT")
	}
}
