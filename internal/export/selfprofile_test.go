package export

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"graingraph/internal/obs"
)

// TestSelfProfileShape pins the Chrome-trace structure of a self-profile:
// one thread-name metadata event per root tree, one complete ("X") slice
// per span on that tree's track, and the run-pool telemetry under
// otherData — never in the event stream.
func TestSelfProfileShape(t *testing.T) {
	p := obs.New()
	root := p.Begin("analyze:fib")
	c := root.Child("build")
	time.Sleep(50 * time.Microsecond)
	c.End()
	root.End()
	r2 := p.Begin("export:json")
	r2.End()
	spans, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	tel := obs.NewPoolTelemetry(2)
	tel.RecordChunk(0, time.Millisecond)

	var buf bytes.Buffer
	if err := SelfProfile(&buf, &obs.Profile{Spans: spans, Pool: tel.Snapshot()}); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("self-profile is not valid JSON: %v", err)
	}

	meta := map[int]string{}
	slices := map[string]int{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				meta[e.Tid] = e.Args["name"].(string)
			}
		case "X":
			slices[e.Name] = e.Tid
		default:
			t.Errorf("unexpected phase %q in self-profile", e.Ph)
		}
	}
	// Canonical root order is name-sorted: analyze:fib before export:json.
	if meta[0] != "analyze:fib" || meta[1] != "export:json" {
		t.Errorf("thread tracks = %v, want analyze:fib then export:json", meta)
	}
	if tid, ok := slices["build"]; !ok || tid != 0 {
		t.Errorf("build slice on tid %d (present %v), want tid 0", tid, ok)
	}
	if tid, ok := slices["export:json"]; !ok || tid != 1 {
		t.Errorf("export:json slice on tid %d (present %v), want tid 1", tid, ok)
	}
	if _, ok := doc.OtherData["runpool"]; !ok {
		t.Error("runpool telemetry missing from otherData")
	}
}
