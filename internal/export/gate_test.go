package export

import (
	"errors"
	"testing"
)

func TestGateNodes(t *testing.T) {
	if err := gateNodes(MaxExportNodes, false); err != nil {
		t.Errorf("gateNodes(limit, false) = %v, want nil: the limit itself is exportable", err)
	}
	if err := gateNodes(MaxExportNodes+1, true); err != nil {
		t.Errorf("gateNodes(limit+1, true) = %v, want nil: full is the explicit opt-in", err)
	}

	err := gateNodes(MaxExportNodes+1, false)
	if err == nil {
		t.Fatal("gateNodes(limit+1, false) = nil, want *HugeGraphError")
	}
	var huge *HugeGraphError
	if !errors.As(err, &huge) {
		t.Fatalf("gateNodes error is %T, want *HugeGraphError", err)
	}
	if huge.Nodes != MaxExportNodes+1 || huge.Limit != MaxExportNodes {
		t.Errorf("HugeGraphError = %+v, want Nodes=%d Limit=%d", huge, MaxExportNodes+1, MaxExportNodes)
	}
}
