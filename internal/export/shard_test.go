package export

import (
	"bytes"
	"encoding/json"
	"testing"

	"graingraph/internal/core"
	"graingraph/internal/runpool"
)

// TestJSONMatchesEncoder pins the sharded emitter to the reference bytes: a
// plain json.Encoder with SetIndent("", " ") over the jsonGraph struct. Any
// drift in the hand-written header/separator layout shows up here.
func TestJSONMatchesEncoder(t *testing.T) {
	g, a := testGraph(t)

	ref := jsonGraph{
		Program:  g.Trace.Program,
		Cores:    g.Trace.Cores,
		Makespan: uint64(g.Trace.Makespan()),
		Nodes:    make([]jsonNode, 0, g.NumNodes()),
	}
	for i := 0; i < g.NumNodes(); i++ {
		ref.Nodes = append(ref.Nodes, jsonNodeRow(g, core.NodeID(i), a))
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.EdgeAt(i)
		ref.Edges = append(ref.Edges, jsonEdge{
			From: int(e.From), To: int(e.To), Kind: e.Kind.String(), Critical: e.Critical,
		})
	}
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	enc.SetIndent("", " ")
	if err := enc.Encode(ref); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	if err := JSON(&got, g, a); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("sharded JSON differs from json.Encoder reference:\ngot  %q...\nwant %q...",
			firstDiff(got.Bytes(), want.Bytes()), firstDiff(want.Bytes(), got.Bytes()))
	}
}

// TestExportPoolByteIdentical runs the DOT and JSON emitters serially and on
// pools of several sizes and requires identical bytes: chunk boundaries are
// fixed, so worker count must never leak into the output.
func TestExportPoolByteIdentical(t *testing.T) {
	g, a := testGraph(t)

	var serialDOT, serialJSON bytes.Buffer
	if err := DOT(&serialDOT, g, a, ViewParallelBenefit); err != nil {
		t.Fatal(err)
	}
	if err := JSON(&serialJSON, g, a); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		pool := runpool.New(workers)
		var dotBuf, jsonBuf bytes.Buffer
		if err := DOTPool(&dotBuf, g, a, ViewParallelBenefit, pool); err != nil {
			t.Fatal(err)
		}
		if err := JSONPool(&jsonBuf, g, a, pool); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dotBuf.Bytes(), serialDOT.Bytes()) {
			t.Errorf("DOT output differs at %d workers", workers)
		}
		if !bytes.Equal(jsonBuf.Bytes(), serialJSON.Bytes()) {
			t.Errorf("JSON output differs at %d workers", workers)
		}
	}
}

// TestEmitShardedTinyGrain forces many more chunks than workers so the
// batch-barrier reassembly path is exercised with buffer reuse.
func TestEmitShardedTinyGrain(t *testing.T) {
	n := 1000
	render := func(lo, hi int, buf *bytes.Buffer) {
		for i := lo; i < hi; i++ {
			buf.WriteByte(byte('a' + i%26))
		}
	}
	var want bytes.Buffer
	render(0, n, &want)

	pool := runpool.New(4)
	var got bytes.Buffer
	if err := emitSharded(&got, n, 7, pool, render); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("sharded emission scrambled: got %q want %q", got.String(), want.String())
	}
}

// firstDiff returns a short window around the first byte where a and b
// disagree, for readable failure messages.
func firstDiff(a, b []byte) []byte {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo, hi := i-20, i+40
	if lo < 0 {
		lo = 0
	}
	if hi > len(a) {
		hi = len(a)
	}
	return a[lo:hi]
}
