package export

import (
	"bytes"
	"io"

	"graingraph/internal/runpool"
)

// exportGrain is the fixed chunk size (in nodes or edges) for sharded
// emission. Chunk boundaries depend only on the element count, so the
// concatenated output is byte-identical at every worker count.
const exportGrain = 4096

// emitSharded renders [0, n) in fixed chunks of size grain across the pool
// and writes the chunk buffers to w strictly in ascending chunk order.
// render must write chunk [lo, hi)'s bytes into buf and nothing else —
// rendering a chunk may only read shared state, so chunks are
// order-independent and the assembly order alone fixes the output.
//
// Memory stays bounded on huge graphs: chunks proceed in batches of one
// buffer per worker, reused across batches, so at most workers×chunk-size
// rendered bytes are alive at once — never the whole serialized graph.
func emitSharded(w io.Writer, n, grain int, pool *runpool.Runner,
	render func(lo, hi int, buf *bytes.Buffer)) error {

	if n <= 0 {
		return nil
	}
	if grain <= 0 {
		grain = 1
	}
	chunks := runpool.Chunks(n, grain)
	bounds := func(c int) (lo, hi int) {
		lo = c * grain
		hi = lo + grain
		if hi > n {
			hi = n
		}
		return lo, hi
	}

	workers := 1
	if pool != nil {
		workers = pool.Workers()
	}
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		var buf bytes.Buffer
		for c := 0; c < chunks; c++ {
			lo, hi := bounds(c)
			buf.Reset()
			render(lo, hi, &buf)
			if _, err := w.Write(buf.Bytes()); err != nil {
				return err
			}
		}
		return nil
	}

	bufs := make([]*bytes.Buffer, workers)
	for i := range bufs {
		bufs[i] = &bytes.Buffer{}
	}
	for base := 0; base < chunks; base += workers {
		batch := chunks - base
		if batch > workers {
			batch = workers
		}
		// Map's results are unused; it serves as the fan-out that runs each
		// batch slot on its own worker and waits for all of them.
		runpool.Map(pool, batch, func(i int) (struct{}, error) {
			lo, hi := bounds(base + i)
			bufs[i].Reset()
			render(lo, hi, bufs[i])
			return struct{}{}, nil
		})
		for i := 0; i < batch; i++ {
			if _, err := w.Write(bufs[i].Bytes()); err != nil {
				return err
			}
		}
	}
	return nil
}
