package export

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"graingraph/internal/core"
	"graingraph/internal/highlight"
	"graingraph/internal/runpool"
)

// jsonGraph is the machine-readable dump schema. The emitter below writes
// it field by field (header serially, the nodes/edges arrays sharded), but
// the bytes are exactly what a json.Encoder with SetIndent("", " ") would
// produce for this struct — the round-trip tests decode into it.
type jsonGraph struct {
	Program  string       `json:"program"`
	Cores    int          `json:"cores"`
	Makespan uint64       `json:"makespan"`
	Nodes    []jsonNode   `json:"nodes"`
	Edges    []jsonEdge   `json:"edges"`
	WhatIf   []jsonWhatIf `json:"whatif,omitempty"`
}

type jsonNode struct {
	ID       int     `json:"id"`
	Kind     string  `json:"kind"`
	Grain    string  `json:"grain"`
	Label    string  `json:"label"`
	Source   string  `json:"source"`
	Start    uint64  `json:"start"`
	End      uint64  `json:"end"`
	Weight   uint64  `json:"weight"`
	Core     int     `json:"core"`
	Members  int     `json:"members"`
	Critical bool    `json:"critical"`
	Problems string  `json:"problems,omitempty"`
	PB       float64 `json:"parallel_benefit,omitempty"`
	WD       float64 `json:"work_deviation,omitempty"`
	IP       int     `json:"inst_parallelism,omitempty"`
	Scatter  int     `json:"scatter,omitempty"`
	MHU      float64 `json:"mem_hierarchy_util,omitempty"`
}

type jsonEdge struct {
	From     int    `json:"from"`
	To       int    `json:"to"`
	Kind     string `json:"kind"`
	Critical bool   `json:"critical"`
}

// JSON writes the graph (with per-grain metrics and problem flags when an
// assessment is supplied) as indented JSON.
func JSON(w io.Writer, g *core.Graph, a *highlight.Assessment) error {
	return JSONPool(w, g, a, nil)
}

// JSONPool is JSON with the node and edge arrays sharded across the pool.
// Reflection-based marshalling of millions of rows is by far the most
// expensive step of the whole artifact-serving path, and every row depends
// only on its own graph columns, so fixed chunks marshal concurrently into
// per-worker buffers and assemble in chunk order — byte-identical at every
// worker count.
// Graphs past MaxExportNodes are refused with a *HugeGraphError; FullJSON
// is the explicit opt-in.
func JSONPool(w io.Writer, g *core.Graph, a *highlight.Assessment, pool *runpool.Runner) error {
	if err := SizeGate(g, false); err != nil {
		return err
	}
	return jsonDump(w, g, a, nil, pool)
}

// jsonElem renders one array element exactly as the document encoder
// would: the element object of an array nested one level deep, indented by
// one space per level.
func jsonElem(buf *bytes.Buffer, v any) error {
	b, err := json.MarshalIndent(v, "  ", " ")
	if err != nil {
		return err
	}
	buf.WriteString("  ")
	buf.Write(b)
	return nil
}

// jsonArray writes a full array field ("null" for nil-equivalent empty
// arrays, matching encoding/json), sharding element rendering across pool.
// render fills buf with element i's object (no separators); separators and
// brackets are placed here so each chunk stays position-independent.
func jsonArray(bw *bufio.Writer, n int, pool *runpool.Runner,
	render func(i int, buf *bytes.Buffer) error) error {

	if n == 0 {
		_, err := bw.WriteString("null")
		return err
	}
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	var renderErr error
	if err := emitSharded(bw, n, exportGrain, pool, func(lo, hi int, buf *bytes.Buffer) {
		for i := lo; i < hi; i++ {
			if err := render(i, buf); err != nil {
				renderErr = err
				return
			}
			if i != n-1 {
				buf.WriteString(",\n")
			} else {
				buf.WriteString("\n")
			}
		}
	}); err != nil {
		return err
	}
	if renderErr != nil {
		return renderErr
	}
	_, err := bw.WriteString(" ]")
	return err
}

func jsonDump(w io.Writer, g *core.Graph, a *highlight.Assessment, anns []jsonWhatIf, pool *runpool.Runner) error {
	bw := bufio.NewWriter(w)

	program, err := json.Marshal(g.Trace.Program)
	if err != nil {
		return err
	}
	fmt.Fprintf(bw, "{\n \"program\": %s,\n \"cores\": %d,\n \"makespan\": %d,\n \"nodes\": ",
		program, g.Trace.Cores, g.Trace.Makespan())

	if err := jsonArray(bw, g.NumNodes(), pool, func(i int, buf *bytes.Buffer) error {
		return jsonElem(buf, jsonNodeRow(g, core.NodeID(i), a))
	}); err != nil {
		return err
	}

	bw.WriteString(",\n \"edges\": ")
	if err := jsonArray(bw, g.NumEdges(), pool, func(i int, buf *bytes.Buffer) error {
		e := g.EdgeAt(i)
		return jsonElem(buf, jsonEdge{
			From: int(e.From), To: int(e.To), Kind: e.Kind.String(), Critical: e.Critical,
		})
	}); err != nil {
		return err
	}

	// The what-if section is tiny (top-N projections): serial emission.
	if len(anns) > 0 {
		bw.WriteString(",\n \"whatif\": ")
		if err := jsonArray(bw, len(anns), nil, func(i int, buf *bytes.Buffer) error {
			return jsonElem(buf, anns[i])
		}); err != nil {
			return err
		}
	}
	bw.WriteString("\n}\n")
	return bw.Flush()
}

// jsonNodeRow materializes node n's dump row from the graph columns and the
// (read-only) assessment.
func jsonNodeRow(g *core.Graph, id core.NodeID, a *highlight.Assessment) jsonNode {
	n := g.NodeAt(id)
	jn := jsonNode{
		ID: int(n.ID), Kind: n.Kind.String(), Grain: string(n.Grain),
		Label: n.Label, Source: defKeyOf(g, n),
		Start: n.Start, End: n.End, Weight: n.Weight,
		Core: n.Core, Members: n.Members, Critical: n.Critical,
	}
	if a != nil && (n.Kind == core.NodeFragment || n.Kind == core.NodeChunk) {
		if ga := a.Get(n.Grain); ga != nil {
			m := ga.Metrics
			jn.Problems = ga.Mask.String()
			jn.PB = finiteOr(m.ParallelBenefit, 1e9)
			jn.WD = m.WorkDeviation
			jn.IP = m.InstParallelism
			jn.Scatter = m.Scatter
			jn.MHU = finiteOr(m.Utilization, 1e9)
		}
	}
	return jn
}
