package export

import (
	"encoding/json"
	"io"

	"graingraph/internal/core"
	"graingraph/internal/highlight"
)

// jsonGraph is the machine-readable dump schema.
type jsonGraph struct {
	Program  string       `json:"program"`
	Cores    int          `json:"cores"`
	Makespan uint64       `json:"makespan"`
	Nodes    []jsonNode   `json:"nodes"`
	Edges    []jsonEdge   `json:"edges"`
	WhatIf   []jsonWhatIf `json:"whatif,omitempty"`
}

type jsonNode struct {
	ID       int     `json:"id"`
	Kind     string  `json:"kind"`
	Grain    string  `json:"grain"`
	Label    string  `json:"label"`
	Source   string  `json:"source"`
	Start    uint64  `json:"start"`
	End      uint64  `json:"end"`
	Weight   uint64  `json:"weight"`
	Core     int     `json:"core"`
	Members  int     `json:"members"`
	Critical bool    `json:"critical"`
	Problems string  `json:"problems,omitempty"`
	PB       float64 `json:"parallel_benefit,omitempty"`
	WD       float64 `json:"work_deviation,omitempty"`
	IP       int     `json:"inst_parallelism,omitempty"`
	Scatter  int     `json:"scatter,omitempty"`
	MHU      float64 `json:"mem_hierarchy_util,omitempty"`
}

type jsonEdge struct {
	From     int    `json:"from"`
	To       int    `json:"to"`
	Kind     string `json:"kind"`
	Critical bool   `json:"critical"`
}

// JSON writes the graph (with per-grain metrics and problem flags when an
// assessment is supplied) as indented JSON.
func JSON(w io.Writer, g *core.Graph, a *highlight.Assessment) error {
	return jsonDump(w, g, a, nil)
}

func jsonDump(w io.Writer, g *core.Graph, a *highlight.Assessment, anns []jsonWhatIf) error {
	out := jsonGraph{
		Program:  g.Trace.Program,
		Cores:    g.Trace.Cores,
		Makespan: g.Trace.Makespan(),
		WhatIf:   anns,
	}
	for id := core.NodeID(0); id < core.NodeID(g.NumNodes()); id++ {
		n := g.NodeAt(id)
		jn := jsonNode{
			ID: int(n.ID), Kind: n.Kind.String(), Grain: string(n.Grain),
			Label: n.Label, Source: defKeyOf(g, n),
			Start: n.Start, End: n.End, Weight: n.Weight,
			Core: n.Core, Members: n.Members, Critical: n.Critical,
		}
		if a != nil && (n.Kind == core.NodeFragment || n.Kind == core.NodeChunk) {
			if ga := a.Get(n.Grain); ga != nil {
				m := ga.Metrics
				jn.Problems = ga.Mask.String()
				jn.PB = finiteOr(m.ParallelBenefit, 1e9)
				jn.WD = m.WorkDeviation
				jn.IP = m.InstParallelism
				jn.Scatter = m.Scatter
				jn.MHU = finiteOr(m.Utilization, 1e9)
			}
		}
		out.Nodes = append(out.Nodes, jn)
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.EdgeAt(i)
		out.Edges = append(out.Edges, jsonEdge{
			From: int(e.From), To: int(e.To), Kind: e.Kind.String(), Critical: e.Critical,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
