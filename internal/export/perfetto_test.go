package export

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"graingraph/internal/core"
	"graingraph/internal/metrics"
	"graingraph/internal/profile"
	"graingraph/internal/rts"
	"graingraph/internal/trace"
)

// tracedRun performs a small instrumented run with enough parallel slack
// for steals and parks, analyzes it, and bundles it as a PerfettoRun.
func tracedRun(t *testing.T) (PerfettoRun, *trace.Metrics) {
	t.Helper()
	sink := trace.NewRingSink(1 << 20)
	met := trace.NewMetrics()
	var fib func(c rts.Ctx, n int)
	fib = func(c rts.Ctx, n int) {
		if n < 2 {
			c.Compute(200)
			return
		}
		c.Spawn(profile.Loc("p.go", 1, "fib"), func(c rts.Ctx) { fib(c, n-1) })
		c.Spawn(profile.Loc("p.go", 1, "fib"), func(c rts.Ctx) { fib(c, n-2) })
		c.TaskWait()
	}
	tr := rts.Run(rts.Config{Program: "perf", Cores: 4, Seed: 1, Trace: sink, Metrics: met},
		func(c rts.Ctx) {
			fib(c, 9)
			c.For(profile.Loc("p.go", 2, "loop"), 0, 16,
				rts.ForOpt{Schedule: profile.ScheduleDynamic, Chunk: 2},
				func(c rts.Ctx, lo, hi int) { c.Compute(3000) })
		})
	if sink.Dropped() != 0 {
		t.Fatalf("test sink dropped %d events", sink.Dropped())
	}
	g := core.Build(tr)
	metrics.Analyze(tr, g, nil, metrics.Options{})
	return PerfettoRun{
		Label: "perf run", Trace: tr, Events: sink.Events(),
		Critical: g.CriticalGrains(),
	}, met
}

// perfEvent mirrors chromeEvent for decoding test output.
type perfEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Ph    string         `json:"ph"`
	Ts    uint64         `json:"ts"`
	Dur   uint64         `json:"dur"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s"`
	Cname string         `json:"cname"`
	Args  map[string]any `json:"args"`
}

type perfDoc struct {
	TraceEvents     []perfEvent    `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
}

func decodePerfetto(t *testing.T, runs []PerfettoRun) ([]byte, perfDoc) {
	t.Helper()
	var buf bytes.Buffer
	if err := Perfetto(&buf, runs); err != nil {
		t.Fatal(err)
	}
	var doc perfDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Perfetto output is not valid JSON: %v", err)
	}
	return buf.Bytes(), doc
}

// TestPerfettoRoundTrip is the end-to-end tracing check: a small rts.Run
// with a trace sink must export to a Perfetto JSON whose slices are
// well-nested per worker track, whose total slice duration equals the
// profile's busy time, and whose scheduler instants match the metrics
// registry counts.
func TestPerfettoRoundTrip(t *testing.T) {
	run, met := tracedRun(t)
	raw, doc := decodePerfetto(t, []PerfettoRun{run})

	type track struct{ pid, tid int }
	slices := map[track][]perfEvent{}
	instants := map[string]uint64{}
	var critical, taskSlices, chunkSlices int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			slices[track{e.Pid, e.Tid}] = append(slices[track{e.Pid, e.Tid}], e)
			if e.Cname != "" {
				critical++
			}
			switch e.Cat {
			case "task":
				taskSlices++
			case "chunk":
				chunkSlices++
			default:
				t.Errorf("slice %q has unexpected category %q", e.Name, e.Cat)
			}
		case "i":
			if e.Scope != "t" {
				t.Errorf("instant %q has scope %q, want thread scope", e.Name, e.Scope)
			}
			instants[e.Name]++
		case "M":
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}

	// Slices on one worker track must be well-nested: sorted by start
	// (ties: longer first), each slice either nests inside the enclosing
	// one or begins at/after its end.
	var totalDur uint64
	for tk, evs := range slices {
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].Ts != evs[j].Ts {
				return evs[i].Ts < evs[j].Ts
			}
			return evs[i].Dur > evs[j].Dur
		})
		var stack []perfEvent
		for _, e := range evs {
			totalDur += e.Dur
			for len(stack) > 0 && e.Ts >= stack[len(stack)-1].Ts+stack[len(stack)-1].Dur {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				if e.Ts+e.Dur > top.Ts+top.Dur {
					t.Fatalf("track %v: slice %q [%d,%d) straddles %q [%d,%d)",
						tk, e.Name, e.Ts, e.Ts+e.Dur, top.Name, top.Ts, top.Ts+top.Dur)
				}
			}
			stack = append(stack, e)
		}
	}

	// Total slice duration == the profile's (and registry's) busy time.
	var busy uint64
	for i := range run.Trace.Workers {
		busy += run.Trace.Workers[i].Busy
	}
	if totalDur != busy {
		t.Errorf("total slice duration %d ≠ profile busy time %d", totalDur, busy)
	}

	// Scheduler instants match the metrics registry.
	if instants["steal"] != met.Steals() {
		t.Errorf("steal instants %d, Metrics.Steals %d", instants["steal"], met.Steals())
	}
	if instants["park"] != met.Parks() {
		t.Errorf("park instants %d, Metrics.Parks %d", instants["park"], met.Parks())
	}
	if instants["resume"] != met.Resumes() {
		t.Errorf("resume instants %d, Metrics.Resumes %d", instants["resume"], met.Resumes())
	}
	if met.Steals() == 0 {
		t.Error("test run produced no steals; the instant check is vacuous")
	}

	// Slice inventory covers every fragment and chunk.
	wantTask := 0
	for _, task := range run.Trace.Tasks {
		wantTask += len(task.Fragments)
	}
	if taskSlices != wantTask {
		t.Errorf("task slices %d, profile fragments %d", taskSlices, wantTask)
	}
	if chunkSlices != len(run.Trace.Chunks) {
		t.Errorf("chunk slices %d, profile chunks %d", chunkSlices, len(run.Trace.Chunks))
	}

	// Critical-path grains are flagged with the colour override.
	if len(run.Critical) == 0 || critical == 0 {
		t.Errorf("critical slices %d (critical grains %d), want > 0", critical, len(run.Critical))
	}

	// Metadata: one process_name, one thread_name per worker.
	names := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			names[e.Name]++
		}
	}
	if names["process_name"] != 1 || names["thread_name"] != run.Trace.Cores {
		t.Errorf("metadata: %d process_name, %d thread_name (cores %d)",
			names["process_name"], names["thread_name"], run.Trace.Cores)
	}

	// Byte stability: exporting the same runs twice is identical.
	raw2, _ := decodePerfetto(t, []PerfettoRun{run})
	if !bytes.Equal(raw, raw2) {
		t.Error("Perfetto output not byte-stable across exports")
	}
}

// TestPerfettoMultiRun: several runs get distinct pids, and a nil trace
// still yields valid JSON with just the process metadata.
func TestPerfettoMultiRun(t *testing.T) {
	run, _ := tracedRun(t)
	empty := PerfettoRun{Label: "empty", Dropped: 7}
	_, doc := decodePerfetto(t, []PerfettoRun{run, empty})
	pids := map[int]bool{}
	for _, e := range doc.TraceEvents {
		pids[e.Pid] = true
	}
	if !pids[1] || !pids[2] {
		t.Errorf("pids seen: %v, want runs under pid 1 and 2", pids)
	}
	var droppedMeta bool
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Pid == 2 && e.Name == "process_name" {
			_, droppedMeta = e.Args["dropped_events"]
		}
	}
	if !droppedMeta {
		t.Error("dropped_events missing from the lossy run's metadata")
	}
}
