package export

import (
	"bufio"
	"fmt"
	"io"

	"graingraph/internal/core"
	"graingraph/internal/highlight"
	"graingraph/internal/runpool"
	"graingraph/internal/whatif"
)

// jsonWhatIf is one ranked what-if projection in the JSON dump: enough for a
// viewer to show "fixing this buys that" next to the graph itself.
type jsonWhatIf struct {
	Rank        int     `json:"rank"`
	Hypothesis  string  `json:"hypothesis"`
	Makespan    uint64  `json:"proj_makespan"`
	Speedup     float64 `json:"proj_speedup"`
	Work        uint64  `json:"proj_work"`
	Span        uint64  `json:"proj_span"`
	Approximate bool    `json:"approximate"`
}

// JSONWithWhatIf writes the JSON dump with a ranked what-if section
// appended. ps may be nil, which yields the plain dump.
func JSONWithWhatIf(w io.Writer, g *core.Graph, a *highlight.Assessment, ps []whatif.Projection) error {
	return JSONWithWhatIfPool(w, g, a, ps, nil)
}

// JSONWithWhatIfPool is JSONWithWhatIf with node/edge emission sharded
// across the pool (see JSONPool). Graphs past MaxExportNodes are refused
// with a *HugeGraphError; FullJSON is the explicit opt-in.
func JSONWithWhatIfPool(w io.Writer, g *core.Graph, a *highlight.Assessment, ps []whatif.Projection, pool *runpool.Runner) error {
	if err := SizeGate(g, false); err != nil {
		return err
	}
	return jsonDump(w, g, a, whatIfAnnotations(ps), pool)
}

// FullJSON is JSONWithWhatIfPool with the huge-graph gate explicitly
// disabled: the caller asserts it really wants every node of an arbitrarily
// large graph (grainview -full-export).
func FullJSON(w io.Writer, g *core.Graph, a *highlight.Assessment, ps []whatif.Projection, pool *runpool.Runner) error {
	return jsonDump(w, g, a, whatIfAnnotations(ps), pool)
}

// DOTWithWhatIf writes the DOT rendering with the ranked what-if
// projections as leading comment lines, so a `dot`-rendered file still
// carries the analysis that motivated it. ps may be nil.
func DOTWithWhatIf(w io.Writer, g *core.Graph, a *highlight.Assessment, v View, ps []whatif.Projection) error {
	return DOTWithWhatIfPool(w, g, a, v, ps, nil)
}

// DOTWithWhatIfPool is DOTWithWhatIf with body emission sharded across the
// pool (see DOTPool). Graphs past MaxExportNodes are refused with a
// *HugeGraphError before anything is written; FullDOT is the explicit
// opt-in.
func DOTWithWhatIfPool(w io.Writer, g *core.Graph, a *highlight.Assessment, v View, ps []whatif.Projection, pool *runpool.Runner) error {
	if err := SizeGate(g, false); err != nil {
		return err
	}
	return dotWithWhatIf(w, g, a, v, ps, pool)
}

// FullDOT is DOTWithWhatIfPool with the huge-graph gate explicitly
// disabled (grainview -full-export).
func FullDOT(w io.Writer, g *core.Graph, a *highlight.Assessment, v View, ps []whatif.Projection, pool *runpool.Runner) error {
	return dotWithWhatIf(w, g, a, v, ps, pool)
}

// dotWithWhatIf is the ungated annotated-DOT emitter.
func dotWithWhatIf(w io.Writer, g *core.Graph, a *highlight.Assessment, v View, ps []whatif.Projection, pool *runpool.Runner) error {
	bw := bufio.NewWriter(w)
	for _, ann := range whatIfAnnotations(ps) {
		fmt.Fprintf(bw, "// what-if #%d: %s -> makespan %d (%.2fx", ann.Rank, ann.Hypothesis, ann.Makespan, ann.Speedup)
		if ann.Approximate {
			fmt.Fprintf(bw, ", approx")
		}
		fmt.Fprintf(bw, ")\n")
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return dotPool(w, g, a, v, pool)
}

func whatIfAnnotations(ps []whatif.Projection) []jsonWhatIf {
	if len(ps) == 0 {
		return nil
	}
	anns := make([]jsonWhatIf, len(ps))
	for i, p := range ps {
		anns[i] = jsonWhatIf{
			Rank: i + 1, Hypothesis: p.Label,
			Makespan: p.Makespan, Speedup: p.Speedup,
			Work: p.Work, Span: p.Span, Approximate: p.Approximate,
		}
	}
	return anns
}
