package export

// Self-profile export: the analyzer observing itself. Where perfetto.go
// renders the *simulated* runtime's trace, SelfProfile renders the
// analysis pipeline's own phase spans (internal/obs) with the same
// Chrome-trace event model, so a -selfprofile file opens in
// ui.perfetto.dev exactly like a -trace file — one thread track per root
// phase tree, nested slices for the kernels inside it.

import (
	"encoding/json"
	"io"
	"time"

	"graingraph/internal/obs"
)

// SelfProfile writes the profile as Chrome-trace JSON. Structure is
// deterministic for a canonical snapshot: spans are emitted in snapshot
// order (depth-first, name-sorted trees), each root tree gets its own
// thread track in that order, and timestamps are relative to the
// profiler's epoch in microseconds. Only the measured times and the
// allocation args vary between runs; the run-pool telemetry — inherently
// dependent on the worker count — is confined to otherData.runpool.
func SelfProfile(w io.Writer, prof *obs.Profile) error {
	doc := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"generator": "graingraph-selfprofile"},
	}
	if prof.Pool != nil {
		doc.OtherData["runpool"] = prof.Pool
	}

	// Thread track per root tree, named after the root span.
	tid := -1
	tids := make([]int, len(prof.Spans))
	for _, s := range prof.Spans {
		if s.Parent < 0 {
			tid++
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]any{"name": s.Name},
			})
		}
		tids[s.ID] = tid
	}
	for _, s := range prof.Spans {
		dur := uint64(s.Dur / time.Microsecond)
		ev := chromeEvent{
			Name: s.Name, Cat: "phase", Ph: "X",
			Ts: uint64(s.Start / time.Microsecond), Dur: &dur,
			Pid: 1, Tid: tids[s.ID],
		}
		if s.Allocs > 0 || s.Bytes > 0 {
			ev.Args = map[string]any{"allocs": s.Allocs, "bytes": s.Bytes}
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	return json.NewEncoder(w).Encode(doc)
}
