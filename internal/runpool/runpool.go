// Package runpool is the parallel experiment engine's substrate: a bounded
// worker pool that fans independent jobs out across OS threads with
// deterministic, submission-ordered result assembly, plus a
// content-addressed memoization cache with single-flight semantics.
//
// The figure regenerators in internal/expt are embarrassingly parallel —
// Figure 1 alone is 35 independent simulations — but their output must be
// byte-identical regardless of worker count. Map therefore keys every
// result by its submission index, never by completion order, and picks the
// lowest-index error when several jobs fail, so -j 1 and -j N report the
// same failure. The Cache deduplicates runs shared between figures (the
// same Sort/MIR/48-core run appears in Figures 4, 5 and the §4.3.1 table):
// concurrent requests for one key execute the computation exactly once and
// share the result.
package runpool

import (
	"crypto/sha256"
	"encoding/hex"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"graingraph/internal/obs"
)

// Runner is a bounded worker pool. The zero value is not usable; construct
// with New. A Runner holds no per-job state and may be shared freely.
type Runner struct {
	workers int
	// tel, when attached, receives per-worker busy/participation times,
	// chunk counts and latencies for every fan-out through this runner.
	// Nil costs one pointer test per fan-out and per chunk.
	tel *obs.PoolTelemetry
}

// New returns a Runner executing at most workers jobs concurrently.
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers}
}

// Workers returns the concurrency bound.
func (r *Runner) Workers() int { return r.workers }

// SetTelemetry attaches (or, with nil, detaches) pool telemetry. Attach
// before submitting work: the field is read without synchronization by
// running fan-outs. A nil runner ignores the call.
func (r *Runner) SetTelemetry(t *obs.PoolTelemetry) {
	if r != nil {
		r.tel = t
	}
}

// Telemetry returns the attached telemetry, or nil.
func (r *Runner) Telemetry() *obs.PoolTelemetry {
	if r == nil {
		return nil
	}
	return r.tel
}

// telemetry returns r's telemetry for use inside fan-outs (nil when
// detached or when r itself is nil).
func telemetry(r *Runner) *obs.PoolTelemetry {
	if r == nil {
		return nil
	}
	return r.tel
}

// Map runs fn(0..n-1) across the pool and returns the results in index
// order. With one worker, jobs run strictly sequentially in index order on
// the calling goroutine — the serial fallback is exactly the legacy
// behaviour, not a degenerate concurrent schedule. All jobs run to
// completion even when some fail; the returned error is the non-nil error
// with the lowest index, so which failure is reported does not depend on
// scheduling.
func Map[T any](r *Runner, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	tel := telemetry(r)
	if r == nil || r.workers <= 1 || n <= 1 {
		if tel == nil || n == 0 {
			for i := 0; i < n; i++ {
				out[i], errs[i] = fn(i)
			}
		} else {
			start := time.Now()
			for i := 0; i < n; i++ {
				t0 := time.Now()
				if i == 0 {
					tel.RecordQueueWait(t0.Sub(start))
				}
				out[i], errs[i] = fn(i)
				tel.RecordChunk(0, time.Since(t0))
			}
			tel.RecordWorkerSpan(0, time.Since(start))
		}
	} else {
		workers := r.workers
		if workers > n {
			workers = n
		}
		issued := time.Time{}
		if tel != nil {
			issued = time.Now()
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				var wstart time.Time
				if tel != nil {
					wstart = time.Now()
				}
				first := true
				for {
					i := int(next.Add(1) - 1)
					if i >= n {
						break
					}
					var t0 time.Time
					if tel != nil {
						t0 = time.Now()
						if first {
							tel.RecordQueueWait(t0.Sub(issued))
							first = false
						}
					}
					out[i], errs[i] = fn(i)
					if tel != nil {
						tel.RecordChunk(w, time.Since(t0))
					}
				}
				if tel != nil {
					tel.RecordWorkerSpan(w, time.Since(wstart))
				}
			}(w)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Key is a content address: the SHA-256 of its parts. Fixed-size and
// comparable, so it serves directly as a map key.
type Key [sha256.Size]byte

// KeyOf hashes the parts (length-prefixed, so ("ab","c") != ("a","bc"))
// into a content address.
func KeyOf(parts ...string) Key {
	h := sha256.New()
	var lenbuf [8]byte
	for _, p := range parts {
		n := len(p)
		for i := 0; i < 8; i++ {
			lenbuf[i] = byte(n >> (8 * i))
		}
		h.Write(lenbuf[:])
		h.Write([]byte(p))
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// KeyOfBytes hashes raw byte blobs (length-prefixed like KeyOf) into a
// content address. The experiment engine uses it to memoize grain-profile
// artifact decodes by file content: two reads of the same .ggp bytes share
// one decode, while any mutation produces a different address.
func KeyOfBytes(parts ...[]byte) Key {
	h := sha256.New()
	var lenbuf [8]byte
	for _, p := range parts {
		n := len(p)
		for i := 0; i < 8; i++ {
			lenbuf[i] = byte(n >> (8 * i))
		}
		h.Write(lenbuf[:])
		h.Write(p)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Hex returns the key as lowercase hex, usable as a filename.
func (k Key) Hex() string { return hex.EncodeToString(k[:]) }

// Cache memoizes computations by content address with single-flight
// semantics: concurrent Do calls for the same key run compute exactly once
// and share the outcome. Errors are cached too — the simulator is
// deterministic, so a failed run would fail identically if repeated.
//
// By default the cache is unbounded: the CLIs regenerate a fixed figure set
// and exit, so every distinct result is worth keeping for the life of the
// process. Long-running processes (the grainserved artifact server) must
// bound it with SetCapacity, which turns on least-recently-used eviction of
// completed entries; in-flight computations are never evicted, so
// single-flight waiters always receive the result they queued for.
type Cache[V any] struct {
	mu  sync.Mutex
	m   map[Key]*cacheEntry[V]
	cap int // max entries; <= 0 means unbounded
	// LRU list of entries, most recently used first. Only entries present
	// in m are linked; eviction walks from the tail, skipping in-flight
	// entries.
	front, back *cacheEntry[V]

	hits      atomic.Uint64
	runs      atomic.Uint64
	evictions atomic.Uint64
}

type cacheEntry[V any] struct {
	key      Key
	done     chan struct{}
	val      V
	err      error
	inflight bool
	// LRU links, guarded by Cache.mu.
	prev, next *cacheEntry[V]
}

// NewCache returns an empty, unbounded cache.
func NewCache[V any]() *Cache[V] {
	return &Cache[V]{m: make(map[Key]*cacheEntry[V])}
}

// SetCapacity bounds the cache to at most n entries, evicting the least
// recently used completed entries when the bound is exceeded; n <= 0
// restores the default unbounded behaviour. In-flight computations are
// never evicted, so the entry count may transiently exceed n while more
// than n computations are running. Lowering the capacity evicts
// immediately.
func (c *Cache[V]) SetCapacity(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = n
	c.evictLocked()
}

// Capacity returns the entry bound (0 = unbounded).
func (c *Cache[V]) Capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cap
}

// pushFront links e as the most recently used entry.
func (c *Cache[V]) pushFront(e *cacheEntry[V]) {
	e.prev = nil
	e.next = c.front
	if c.front != nil {
		c.front.prev = e
	}
	c.front = e
	if c.back == nil {
		c.back = e
	}
}

// unlink removes e from the LRU list.
func (c *Cache[V]) unlink(e *cacheEntry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.back = e.prev
	}
	e.prev, e.next = nil, nil
}

// touch marks e as most recently used.
func (c *Cache[V]) touch(e *cacheEntry[V]) {
	if c.front == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// evictLocked drops least-recently-used completed entries until the cache
// is within capacity (or only in-flight entries remain). Callers hold mu.
func (c *Cache[V]) evictLocked() {
	if c.cap <= 0 {
		return
	}
	for e := c.back; e != nil && len(c.m) > c.cap; {
		prev := e.prev
		if !e.inflight {
			c.unlink(e)
			delete(c.m, e.key)
			c.evictions.Add(1)
		}
		e = prev
	}
}

// Do returns the cached outcome for key, computing it via compute on first
// use. hit reports whether the value was served from the cache (including
// waiting on another goroutine's in-flight computation).
func (c *Cache[V]) Do(key Key, compute func() (V, error)) (v V, err error, hit bool) {
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		c.touch(e)
		c.mu.Unlock()
		<-e.done
		c.hits.Add(1)
		return e.val, e.err, true
	}
	e := &cacheEntry[V]{key: key, done: make(chan struct{}), inflight: true}
	c.m[key] = e
	c.pushFront(e)
	c.evictLocked()
	c.mu.Unlock()

	c.runs.Add(1)
	e.val, e.err = compute()
	close(e.done)
	c.mu.Lock()
	e.inflight = false
	// The insert above may have left the cache over capacity when the tail
	// was in flight; completing an entry is the other edge where eviction
	// can make progress.
	c.evictLocked()
	c.mu.Unlock()
	return e.val, e.err, false
}

// Forget drops key's completed entry, so the next Do recomputes. Use it to
// invalidate outcomes that depend on external state (a file that did not
// exist yet) rather than on the key's content. In-flight entries are left
// alone — waiters that already joined still receive the outcome — and
// explicit invalidation does not count as an eviction.
func (c *Cache[V]) Forget(key Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok && !e.inflight {
		c.unlink(e)
		delete(c.m, key)
	}
}

// Len returns the number of cached entries (including in-flight ones).
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns how many computations ran and how many lookups were served
// from the cache since construction or the last Reset.
func (c *Cache[V]) Stats() (runs, hits uint64) {
	return c.runs.Load(), c.hits.Load()
}

// CacheStats is a cache's lookup outcome counters: Hits counts Do calls
// served from the cache (including waits on another goroutine's in-flight
// computation), Misses counts Do calls that had to run the computation,
// Evictions counts entries dropped by the capacity bound (0 for the
// default unbounded configuration).
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions,omitempty"`
}

// Evictions returns how many entries the capacity bound has dropped.
func (c *Cache[V]) Evictions() uint64 { return c.evictions.Load() }

// Counters returns the hit/miss/eviction counters in the shape the
// observability registry (internal/obs) reports: every Do call is exactly
// one hit or one miss, so Hits+Misses is the total lookup count.
func (c *Cache[V]) Counters() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.runs.Load(), Evictions: c.evictions.Load()}
}

// Reset drops all cached entries and zeroes the counters (the capacity
// bound is kept). Entries still being computed are abandoned to their
// current waiters: goroutines already waiting on an in-flight entry get its
// result, later Do calls recompute.
func (c *Cache[V]) Reset() {
	c.mu.Lock()
	c.m = make(map[Key]*cacheEntry[V])
	c.front, c.back = nil, nil
	c.mu.Unlock()
	c.hits.Store(0)
	c.runs.Store(0)
	c.evictions.Store(0)
}
