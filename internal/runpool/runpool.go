// Package runpool is the parallel experiment engine's substrate: a bounded
// worker pool that fans independent jobs out across OS threads with
// deterministic, submission-ordered result assembly, plus a
// content-addressed memoization cache with single-flight semantics.
//
// The figure regenerators in internal/expt are embarrassingly parallel —
// Figure 1 alone is 35 independent simulations — but their output must be
// byte-identical regardless of worker count. Map therefore keys every
// result by its submission index, never by completion order, and picks the
// lowest-index error when several jobs fail, so -j 1 and -j N report the
// same failure. The Cache deduplicates runs shared between figures (the
// same Sort/MIR/48-core run appears in Figures 4, 5 and the §4.3.1 table):
// concurrent requests for one key execute the computation exactly once and
// share the result.
package runpool

import (
	"crypto/sha256"
	"encoding/hex"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"graingraph/internal/obs"
)

// Runner is a bounded worker pool. The zero value is not usable; construct
// with New. A Runner holds no per-job state and may be shared freely.
type Runner struct {
	workers int
	// tel, when attached, receives per-worker busy/participation times,
	// chunk counts and latencies for every fan-out through this runner.
	// Nil costs one pointer test per fan-out and per chunk.
	tel *obs.PoolTelemetry
}

// New returns a Runner executing at most workers jobs concurrently.
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers}
}

// Workers returns the concurrency bound.
func (r *Runner) Workers() int { return r.workers }

// SetTelemetry attaches (or, with nil, detaches) pool telemetry. Attach
// before submitting work: the field is read without synchronization by
// running fan-outs. A nil runner ignores the call.
func (r *Runner) SetTelemetry(t *obs.PoolTelemetry) {
	if r != nil {
		r.tel = t
	}
}

// Telemetry returns the attached telemetry, or nil.
func (r *Runner) Telemetry() *obs.PoolTelemetry {
	if r == nil {
		return nil
	}
	return r.tel
}

// telemetry returns r's telemetry for use inside fan-outs (nil when
// detached or when r itself is nil).
func telemetry(r *Runner) *obs.PoolTelemetry {
	if r == nil {
		return nil
	}
	return r.tel
}

// Map runs fn(0..n-1) across the pool and returns the results in index
// order. With one worker, jobs run strictly sequentially in index order on
// the calling goroutine — the serial fallback is exactly the legacy
// behaviour, not a degenerate concurrent schedule. All jobs run to
// completion even when some fail; the returned error is the non-nil error
// with the lowest index, so which failure is reported does not depend on
// scheduling.
func Map[T any](r *Runner, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	tel := telemetry(r)
	if r == nil || r.workers <= 1 || n <= 1 {
		if tel == nil || n == 0 {
			for i := 0; i < n; i++ {
				out[i], errs[i] = fn(i)
			}
		} else {
			start := time.Now()
			for i := 0; i < n; i++ {
				t0 := time.Now()
				if i == 0 {
					tel.RecordQueueWait(t0.Sub(start))
				}
				out[i], errs[i] = fn(i)
				tel.RecordChunk(0, time.Since(t0))
			}
			tel.RecordWorkerSpan(0, time.Since(start))
		}
	} else {
		workers := r.workers
		if workers > n {
			workers = n
		}
		issued := time.Time{}
		if tel != nil {
			issued = time.Now()
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				var wstart time.Time
				if tel != nil {
					wstart = time.Now()
				}
				first := true
				for {
					i := int(next.Add(1) - 1)
					if i >= n {
						break
					}
					var t0 time.Time
					if tel != nil {
						t0 = time.Now()
						if first {
							tel.RecordQueueWait(t0.Sub(issued))
							first = false
						}
					}
					out[i], errs[i] = fn(i)
					if tel != nil {
						tel.RecordChunk(w, time.Since(t0))
					}
				}
				if tel != nil {
					tel.RecordWorkerSpan(w, time.Since(wstart))
				}
			}(w)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Key is a content address: the SHA-256 of its parts. Fixed-size and
// comparable, so it serves directly as a map key.
type Key [sha256.Size]byte

// KeyOf hashes the parts (length-prefixed, so ("ab","c") != ("a","bc"))
// into a content address.
func KeyOf(parts ...string) Key {
	h := sha256.New()
	var lenbuf [8]byte
	for _, p := range parts {
		n := len(p)
		for i := 0; i < 8; i++ {
			lenbuf[i] = byte(n >> (8 * i))
		}
		h.Write(lenbuf[:])
		h.Write([]byte(p))
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// KeyOfBytes hashes raw byte blobs (length-prefixed like KeyOf) into a
// content address. The experiment engine uses it to memoize grain-profile
// artifact decodes by file content: two reads of the same .ggp bytes share
// one decode, while any mutation produces a different address.
func KeyOfBytes(parts ...[]byte) Key {
	h := sha256.New()
	var lenbuf [8]byte
	for _, p := range parts {
		n := len(p)
		for i := 0; i < 8; i++ {
			lenbuf[i] = byte(n >> (8 * i))
		}
		h.Write(lenbuf[:])
		h.Write(p)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Hex returns the key as lowercase hex, usable as a filename.
func (k Key) Hex() string { return hex.EncodeToString(k[:]) }

// Cache memoizes computations by content address with single-flight
// semantics: concurrent Do calls for the same key run compute exactly once
// and share the outcome. Errors are cached too — the simulator is
// deterministic, so a failed run would fail identically if repeated.
type Cache[V any] struct {
	mu   sync.Mutex
	m    map[Key]*cacheEntry[V]
	hits atomic.Uint64
	runs atomic.Uint64
}

type cacheEntry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewCache returns an empty cache.
func NewCache[V any]() *Cache[V] {
	return &Cache[V]{m: make(map[Key]*cacheEntry[V])}
}

// Do returns the cached outcome for key, computing it via compute on first
// use. hit reports whether the value was served from the cache (including
// waiting on another goroutine's in-flight computation).
func (c *Cache[V]) Do(key Key, compute func() (V, error)) (v V, err error, hit bool) {
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		c.mu.Unlock()
		<-e.done
		c.hits.Add(1)
		return e.val, e.err, true
	}
	e := &cacheEntry[V]{done: make(chan struct{})}
	c.m[key] = e
	c.mu.Unlock()

	c.runs.Add(1)
	e.val, e.err = compute()
	close(e.done)
	return e.val, e.err, false
}

// Len returns the number of cached entries (including in-flight ones).
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns how many computations ran and how many lookups were served
// from the cache since construction or the last Reset.
func (c *Cache[V]) Stats() (runs, hits uint64) {
	return c.runs.Load(), c.hits.Load()
}

// CacheStats is a cache's lookup outcome counters: Hits counts Do calls
// served from the cache (including waits on another goroutine's in-flight
// computation), Misses counts Do calls that had to run the computation.
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// Counters returns the hit/miss counters in the shape the observability
// registry (internal/obs) reports: every Do call is exactly one hit or one
// miss, so Hits+Misses is the total lookup count.
func (c *Cache[V]) Counters() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.runs.Load()}
}

// Reset drops all cached entries and zeroes the counters. Entries still
// being computed are abandoned to their current waiters: goroutines already
// waiting on an in-flight entry get its result, later Do calls recompute.
func (c *Cache[V]) Reset() {
	c.mu.Lock()
	c.m = make(map[Key]*cacheEntry[V])
	c.mu.Unlock()
	c.hits.Store(0)
	c.runs.Store(0)
}
