package runpool

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestChunksBoundaries pins the fixed chunking: boundaries depend only on
// (n, grain), every index is covered exactly once, and chunk c spans
// [c*grain, min(n, (c+1)*grain)).
func TestChunksBoundaries(t *testing.T) {
	cases := []struct{ n, grain, want int }{
		{0, 16, 0},
		{1, 16, 1},
		{16, 16, 1},
		{17, 16, 2},
		{100, 1, 100},
		{100, 0, 100}, // grain <= 0 normalizes to 1
		{5, 100, 1},
	}
	for _, c := range cases {
		if got := Chunks(c.n, c.grain); got != c.want {
			t.Errorf("Chunks(%d, %d) = %d, want %d", c.n, c.grain, got, c.want)
		}
	}

	for _, workers := range []int{1, 3, 8} {
		r := New(workers)
		n, grain := 1000, 64
		covered := make([]int32, n)
		var mu sync.Mutex
		var ranges [][3]int
		ParallelFor(r, n, grain, func(chunk, lo, hi int) {
			mu.Lock()
			ranges = append(ranges, [3]int{chunk, lo, hi})
			mu.Unlock()
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, c)
			}
		}
		for _, rg := range ranges {
			chunk, lo, hi := rg[0], rg[1], rg[2]
			wantLo := chunk * grain
			wantHi := wantLo + grain
			if wantHi > n {
				wantHi = n
			}
			if lo != wantLo || hi != wantHi {
				t.Fatalf("workers=%d: chunk %d spans [%d,%d), want [%d,%d)",
					workers, chunk, lo, hi, wantLo, wantHi)
			}
		}
	}
}

// TestParallelForDeterministic checks indexed writes assemble identically
// at every worker count.
func TestParallelForDeterministic(t *testing.T) {
	n, grain := 4097, 128
	compute := func(workers int) []int {
		out := make([]int, n)
		ParallelFor(New(workers), n, grain, func(chunk, lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = i*i + chunk
			}
		})
		return out
	}
	want := compute(1)
	for _, w := range []int{2, 4, 8} {
		got := compute(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
	var ran bool
	ParallelFor(nil, 3, 2, func(chunk, lo, hi int) { ran = true })
	if !ran {
		t.Error("nil pool did not run serially")
	}
}

// TestParallelReduceOrder verifies partials merge in chunk index order: a
// non-commutative (but range-associative) merge — string concatenation of
// per-chunk digests — must equal the serial left fold at every worker count.
func TestParallelReduceOrder(t *testing.T) {
	n, grain := 1000, 37
	body := func(chunk, lo, hi int, acc string) string {
		s := acc
		for i := lo; i < hi; i++ {
			s += string(rune('a' + i%26))
		}
		return s
	}
	merge := func(a, b string) string { return a + b }
	want := ParallelReduce(New(1), n, grain, "", body, merge)
	for _, w := range []int{2, 4, 8} {
		if got := ParallelReduce(New(w), n, grain, "", body, merge); got != want {
			t.Fatalf("workers=%d: reduce order differs", w)
		}
	}
	if got := ParallelReduce[int](nil, 0, 8, 42, nil, nil); got != 42 {
		t.Errorf("empty reduce = %d, want identity 42", got)
	}
}

// TestParallelReduceSum checks a plain associative+commutative reduction for
// correctness across worker counts.
func TestParallelReduceSum(t *testing.T) {
	n := 12345
	want := n * (n - 1) / 2
	for _, w := range []int{1, 2, 8} {
		got := ParallelReduce(New(w), n, 100, 0, func(chunk, lo, hi, acc int) int {
			for i := lo; i < hi; i++ {
				acc += i
			}
			return acc
		}, func(a, b int) int { return a + b })
		if got != want {
			t.Fatalf("workers=%d: sum = %d, want %d", w, got, want)
		}
	}
}

// TestParallelForScratch verifies scratch values are created once per
// participating worker and results stay correct when chunks share them.
func TestParallelForScratch(t *testing.T) {
	n, grain := 2048, 64
	for _, workers := range []int{1, 4} {
		var created atomic.Int32
		out := make([]int, n)
		ParallelForScratch(New(workers), n, grain, func() *[]int {
			created.Add(1)
			buf := make([]int, 0, grain)
			return &buf
		}, func(chunk, lo, hi int, scratch *[]int) {
			*scratch = (*scratch)[:0] // reused across chunks: must reset
			for i := lo; i < hi; i++ {
				*scratch = append(*scratch, i)
			}
			for _, v := range *scratch {
				out[v] = v + 1
			}
		})
		if c := int(created.Load()); c > workers || c < 1 {
			t.Errorf("workers=%d: %d scratches created", workers, c)
		}
		for i := range out {
			if out[i] != i+1 {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, out[i])
			}
		}
	}
}
