package runpool

import (
	"sync/atomic"
	"testing"
	"time"

	"graingraph/internal/obs"
)

// TestMapTelemetry pins that a Map fan-out with telemetry attached
// accounts for every job exactly once, in both the serial fallback and the
// pooled schedule, without changing results.
func TestMapTelemetry(t *testing.T) {
	for _, workers := range []int{1, 4} {
		tel := obs.NewPoolTelemetry(workers)
		r := New(workers)
		r.SetTelemetry(tel)
		var ran atomic.Int64
		out, err := Map(r, 100, func(i int) (int, error) {
			ran.Add(1)
			time.Sleep(10 * time.Microsecond)
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
		s := tel.Snapshot()
		if s.Chunks != 100 {
			t.Errorf("workers=%d: telemetry counted %d jobs, want 100", workers, s.Chunks)
		}
		if ran.Load() != 100 {
			t.Errorf("workers=%d: %d bodies ran, want 100", workers, ran.Load())
		}
		if s.Busy <= 0 {
			t.Errorf("workers=%d: busy time %v, want > 0", workers, s.Busy)
		}
		if len(s.Workers) == 0 || len(s.Workers) > workers {
			t.Errorf("workers=%d: %d active worker slots", workers, len(s.Workers))
		}
	}
}

// TestParallelForTelemetry pins chunk accounting for the chunked kernels
// (ParallelFor and the scratch variant) at several worker counts, and that
// detached telemetry leaves results untouched.
func TestParallelForTelemetry(t *testing.T) {
	const n, grain = 10_000, 256
	wantChunks := int64(Chunks(n, grain))
	for _, workers := range []int{1, 3, 8} {
		tel := obs.NewPoolTelemetry(workers)
		r := New(workers)
		r.SetTelemetry(tel)

		sum := make([]int64, Chunks(n, grain))
		ParallelFor(r, n, grain, func(c, lo, hi int) {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i)
			}
			sum[c] = s
		})
		ParallelForScratch(r, n, grain, func() []int64 { return make([]int64, 1) },
			func(c, lo, hi int, scratch []int64) {
				scratch[0] = 0
				for i := lo; i < hi; i++ {
					scratch[0] += int64(i)
				}
				if scratch[0] != sum[c] {
					t.Errorf("scratch chunk %d sum mismatch", c)
				}
			})

		s := tel.Snapshot()
		if s.Chunks != 2*wantChunks {
			t.Errorf("workers=%d: telemetry counted %d chunks, want %d", workers, s.Chunks, 2*wantChunks)
		}
		var total int64
		for _, v := range sum {
			total += v
		}
		if want := int64(n) * int64(n-1) / 2; total != want {
			t.Errorf("workers=%d: kernel result %d, want %d", workers, total, want)
		}
		var hist int64
		for _, b := range s.Latency {
			hist += b.Count
		}
		if hist != s.Chunks {
			t.Errorf("workers=%d: histogram covers %d chunks, telemetry counted %d", workers, hist, s.Chunks)
		}
	}
}

// TestWorkerSpanEmission exercises concurrent span emission from inside
// pool workers — the pattern the expt engine uses for simulate:/ingest:
// spans — under the race detector: many bodies begin/end nested spans on
// one shared profiler while chunk telemetry records around them, and the
// snapshot still canonicalizes cleanly.
func TestWorkerSpanEmission(t *testing.T) {
	const jobs = 64
	p := obs.New()
	p.TrackMem = false
	tel := obs.NewPoolTelemetry(8)
	r := New(8)
	r.SetTelemetry(tel)

	_, err := Map(r, jobs, func(i int) (int, error) {
		sp := p.Begin("job")
		c := sp.Child("inner")
		c.End()
		sp.End()
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	spans, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2*jobs {
		t.Fatalf("snapshot has %d spans, want %d", len(spans), 2*jobs)
	}
	roots := 0
	for _, s := range spans {
		switch {
		case s.Parent < 0:
			roots++
			if s.Name != "job" {
				t.Fatalf("root span named %q, want job", s.Name)
			}
		case s.Name != "inner":
			t.Fatalf("child span named %q, want inner", s.Name)
		}
	}
	if roots != jobs {
		t.Fatalf("%d root spans, want %d", roots, jobs)
	}
	if s := tel.Snapshot(); s.Chunks != jobs {
		t.Errorf("telemetry counted %d jobs, want %d", s.Chunks, jobs)
	}
}

// TestCacheCounters pins the hit/miss counter satellite: every Do is
// exactly one hit or one miss.
func TestCacheCounters(t *testing.T) {
	c := NewCache[int]()
	k1, k2 := KeyOf("a"), KeyOf("b")
	compute := func() (int, error) { return 7, nil }
	c.Do(k1, compute)
	c.Do(k1, compute)
	c.Do(k2, compute)
	c.Do(k1, compute)
	got := c.Counters()
	if got.Hits != 2 || got.Misses != 2 {
		t.Fatalf("counters = %+v, want 2 hits / 2 misses", got)
	}
	c.Reset()
	if got := c.Counters(); got.Hits != 0 || got.Misses != 0 {
		t.Fatalf("counters after reset = %+v, want zeroes", got)
	}
}
