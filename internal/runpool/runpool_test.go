package runpool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		r := New(workers)
		n := 100
		out, err := Map(r, n, func(i int) (int, error) {
			if i%7 == 0 {
				time.Sleep(time.Duration(i%3) * time.Millisecond)
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapSerialFallbackRunsInOrder(t *testing.T) {
	r := New(1)
	var order []int
	_, err := Map(r, 10, func(i int) (int, error) {
		order = append(order, i) // safe: serial fallback runs on one goroutine
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial execution order %v not sequential", order)
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 8} {
		r := New(workers)
		var completed atomic.Int64
		_, err := Map(r, 50, func(i int) (int, error) {
			defer completed.Add(1)
			switch i {
			case 3:
				return 0, errLow
			case 40:
				return 0, errHigh
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Errorf("workers=%d: err = %v, want lowest-index error %v", workers, err, errLow)
		}
		if got := completed.Load(); got != 50 {
			t.Errorf("workers=%d: %d jobs completed, want all 50 despite errors", workers, got)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	r := New(3)
	var cur, peak atomic.Int64
	_, err := Map(r, 40, func(i int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("observed %d concurrent jobs, want <= 3", p)
	}
}

func TestKeyOfIsLengthPrefixed(t *testing.T) {
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Error(`KeyOf("ab","c") collides with KeyOf("a","bc")`)
	}
	if KeyOf("x") != KeyOf("x") {
		t.Error("KeyOf not deterministic")
	}
	if KeyOf("x") == KeyOf("y") {
		t.Error("distinct inputs collide")
	}
	if KeyOf() == KeyOf("") {
		t.Error(`KeyOf() collides with KeyOf("")`)
	}
}

func TestKeyOfBytesMatchesContent(t *testing.T) {
	blob := []byte("grain profile artifact bytes")
	if KeyOfBytes(blob) != KeyOfBytes(append([]byte(nil), blob...)) {
		t.Error("identical bytes produce different keys")
	}
	mutated := append([]byte(nil), blob...)
	mutated[4] ^= 0x01
	if KeyOfBytes(blob) == KeyOfBytes(mutated) {
		t.Error("single-byte mutation did not change the key")
	}
	if KeyOfBytes([]byte("ab"), []byte("c")) == KeyOfBytes([]byte("a"), []byte("bc")) {
		t.Error("KeyOfBytes not length-prefixed")
	}
	// KeyOfBytes and KeyOf agree on equivalent content, so either spelling
	// addresses the same cache entry.
	if KeyOfBytes(blob) != KeyOf(string(blob)) {
		t.Error("KeyOfBytes disagrees with KeyOf on identical content")
	}
}

func TestKeyHexIsFilenameSafe(t *testing.T) {
	h := KeyOf("x").Hex()
	if len(h) != 2*len(Key{}) {
		t.Fatalf("Hex length %d, want %d", len(h), 2*len(Key{}))
	}
	for _, c := range h {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			t.Fatalf("Hex contains non-hex character %q in %q", c, h)
		}
	}
	// Two identical cache lookups through byte-content keys hit once.
	c := NewCache[int]()
	if _, _, hit := c.Do(KeyOfBytes([]byte("b")), func() (int, error) { return 1, nil }); hit {
		t.Error("first Do reported a hit")
	}
	if _, _, hit := c.Do(KeyOfBytes([]byte("b")), func() (int, error) { return 2, nil }); !hit {
		t.Error("second Do with identical bytes missed the cache")
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache[int]()
	key := KeyOf("shared")
	var computed atomic.Int64
	var wg sync.WaitGroup
	results := make([]int, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err, _ := c.Do(key, func() (int, error) {
				computed.Add(1)
				time.Sleep(2 * time.Millisecond)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[g] = v
		}(g)
	}
	wg.Wait()
	if n := computed.Load(); n != 1 {
		t.Errorf("compute ran %d times, want exactly once", n)
	}
	for g, v := range results {
		if v != 42 {
			t.Errorf("goroutine %d got %d, want 42", g, v)
		}
	}
	runs, hits := c.Stats()
	if runs != 1 || hits != 31 {
		t.Errorf("stats = (%d runs, %d hits), want (1, 31)", runs, hits)
	}
}

func TestCacheCachesErrors(t *testing.T) {
	c := NewCache[int]()
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		_, err, _ := c.Do(KeyOf("failing"), func() (int, error) {
			calls++
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v, want %v", i, err, boom)
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1 (errors are cached)", calls)
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache[string]()
	k := KeyOf("k")
	c.Do(k, func() (string, error) { return "first", nil })
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", c.Len())
	}
	v, _, hit := c.Do(k, func() (string, error) { return "second", nil })
	if hit || v != "second" {
		t.Errorf("after Reset got (%q, hit=%v), want recomputed (%q, false)", v, hit, "second")
	}
}

func TestCacheManyKeysConcurrent(t *testing.T) {
	c := NewCache[int]()
	r := New(16)
	n := 200
	out, err := Map(r, n, func(i int) (int, error) {
		v, err, _ := c.Do(KeyOf(fmt.Sprintf("k%d", i%20)), func() (int, error) {
			return i % 20, nil
		})
		return v, err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i%20 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i%20)
		}
	}
	if c.Len() != 20 {
		t.Errorf("cache has %d keys, want 20", c.Len())
	}
}
