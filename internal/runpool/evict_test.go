package runpool

import (
	"fmt"
	"sync"
	"testing"
)

// kn makes a distinct key for test index i.
func kn(i int) Key { return KeyOf(fmt.Sprintf("key-%d", i)) }

// doInt runs a trivial computation for key i, returning i.
func doInt(c *Cache[int], i int) (int, bool) {
	v, err, hit := c.Do(kn(i), func() (int, error) { return i, nil })
	if err != nil {
		panic(err)
	}
	return v, hit
}

func TestCacheUnboundedByDefault(t *testing.T) {
	c := NewCache[int]()
	for i := 0; i < 1000; i++ {
		doInt(c, i)
	}
	if got := c.Len(); got != 1000 {
		t.Fatalf("unbounded cache evicted: Len = %d, want 1000", got)
	}
	if ev := c.Evictions(); ev != 0 {
		t.Fatalf("unbounded cache reported %d evictions", ev)
	}
}

func TestCacheEvictionCounters(t *testing.T) {
	c := NewCache[int]()
	c.SetCapacity(2)

	doInt(c, 1) // miss
	doInt(c, 2) // miss
	doInt(c, 1) // hit
	doInt(c, 3) // miss; evicts 2 (LRU — 1 was touched)
	doInt(c, 1) // hit: 1 must have survived
	doInt(c, 2) // miss: 2 was evicted, recomputes

	st := c.Counters()
	if st.Hits != 2 || st.Misses != 4 || st.Evictions != 2 {
		t.Fatalf("counters = %+v, want hits=2 misses=4 evictions=2", st)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	runs, hits := c.Stats()
	if runs != st.Misses || hits != st.Hits {
		t.Fatalf("Stats() = (%d, %d), disagrees with Counters %+v", runs, hits, st)
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := NewCache[int]()
	c.SetCapacity(3)
	doInt(c, 1)
	doInt(c, 2)
	doInt(c, 3)
	doInt(c, 1) // refresh 1; LRU order is now 2, 3, 1
	doInt(c, 4) // evicts 2

	if _, hit := doInt(c, 1); !hit {
		t.Error("1 was refreshed but got evicted")
	}
	if _, hit := doInt(c, 3); !hit {
		t.Error("3 was newer than 2 but got evicted")
	}
	// 2 was the least recently used entry; it must be the one that went.
	if _, hit := doInt(c, 2); hit {
		t.Error("2 was LRU but survived eviction")
	}
}

func TestCacheSetCapacityEvictsImmediately(t *testing.T) {
	c := NewCache[int]()
	for i := 0; i < 10; i++ {
		doInt(c, i)
	}
	c.SetCapacity(4)
	if got := c.Len(); got != 4 {
		t.Fatalf("Len after SetCapacity(4) = %d, want 4", got)
	}
	if ev := c.Evictions(); ev != 6 {
		t.Fatalf("Evictions after SetCapacity(4) = %d, want 6", ev)
	}
	// The survivors are the four most recently used.
	for i := 6; i < 10; i++ {
		if _, hit := doInt(c, i); !hit {
			t.Errorf("recently used key %d was evicted", i)
		}
	}
}

func TestCacheNeverEvictsInFlight(t *testing.T) {
	c := NewCache[int]()
	c.SetCapacity(1)

	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do(kn(100), func() (int, error) {
			close(started)
			<-release
			return 100, nil
		})
	}()
	<-started

	// The in-flight entry is the LRU tail; these inserts exceed capacity
	// but must evict each other, never the in-flight entry.
	doInt(c, 1)
	doInt(c, 2)
	close(release)
	<-done

	// A waiter arriving now must hit the finished in-flight entry: it was
	// never evicted.
	v, err, hit := c.Do(kn(100), func() (int, error) {
		t.Error("in-flight entry was evicted: compute ran again")
		return -1, nil
	})
	if err != nil || !hit || v != 100 {
		t.Fatalf("Do(in-flight key) = (%d, %v, hit=%v), want (100, nil, true)", v, err, hit)
	}
	// Completion trims back to capacity.
	if got := c.Len(); got != 1 {
		t.Fatalf("Len after completion = %d, want 1", got)
	}
}

func TestCacheEvictionConcurrent(t *testing.T) {
	c := NewCache[string]()
	c.SetCapacity(8)
	const (
		goroutines = 8
		iters      = 500
		keySpace   = 32
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g*13 + i*7) % keySpace
				want := fmt.Sprintf("v%d", k)
				v, err, _ := c.Do(kn(k), func() (string, error) { return want, nil })
				if err != nil || v != want {
					t.Errorf("Do(%d) = (%q, %v), want (%q, nil)", k, v, err, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if got := c.Len(); got > 8 {
		t.Errorf("Len = %d exceeds capacity 8 with no in-flight entries", got)
	}
	st := c.Counters()
	if st.Hits+st.Misses != goroutines*iters {
		t.Errorf("hits+misses = %d, want exactly %d lookups", st.Hits+st.Misses, goroutines*iters)
	}
	if st.Misses < 8 {
		t.Errorf("misses = %d, impossible for %d distinct keys", st.Misses, keySpace)
	}
}
