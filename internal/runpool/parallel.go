// Chunked data-parallel primitives over index ranges. Where Map fans out
// independent whole jobs, ParallelFor/ParallelReduce split one large index
// range [0, n) into fixed-size chunks and fan the chunks out — the shape the
// analysis kernels over the columnar graph store need (per-node metric
// loops, sharded export emission, per-level critical-path relaxation).
//
// Determinism contract: chunk boundaries depend only on (n, grain) — never
// on the worker count or scheduling — so chunk c always covers
// [c*grain, min(n, (c+1)*grain)). Bodies receive the chunk index alongside
// the range, letting callers write per-chunk results into pre-sized slots
// and assemble them in index order; ParallelReduce folds per-chunk partials
// strictly in ascending chunk order. A kernel whose chunk body is a pure
// function of its input range therefore produces byte-identical results at
// every worker count, including the strict serial fallback.
package runpool

import (
	"sync"
	"sync/atomic"
	"time"

	"graingraph/internal/obs"
)

// Chunks returns how many fixed-size chunks ParallelFor splits n items into
// at the given grain: ceil(n / grain). Callers sizing per-chunk result
// slots use it to pre-allocate. grain <= 0 is normalized to 1.
func Chunks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain <= 0 {
		grain = 1
	}
	return (n + grain - 1) / grain
}

// chunkBounds returns chunk c's half-open range under the fixed chunking.
func chunkBounds(c, n, grain int) (lo, hi int) {
	lo = c * grain
	hi = lo + grain
	if hi > n {
		hi = n
	}
	return lo, hi
}

// forChunks drives body over every chunk: serially in ascending chunk order
// when the pool cannot help, otherwise across min(workers, chunks)
// goroutines claiming chunks from an atomic counter. body must confine its
// writes to chunk-indexed (or range-indexed) slots; the chunk assignment to
// workers is scheduling-dependent even though the chunks themselves are not.
func forChunks(r *Runner, chunks int, body func(chunk int)) {
	if chunks <= 0 {
		return
	}
	workers := 1
	if r != nil {
		workers = r.workers
	}
	if workers > chunks {
		workers = chunks
	}
	tel := telemetry(r)
	if workers <= 1 {
		if tel == nil {
			for c := 0; c < chunks; c++ {
				body(c)
			}
			return
		}
		serialChunks(tel, chunks, body)
		return
	}
	issued := time.Time{}
	if tel != nil {
		issued = time.Now()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			workerChunks(tel, w, issued, &next, chunks, body)
		}(w)
	}
	wg.Wait()
}

// serialChunks is the instrumented serial fallback: every chunk runs on the
// calling goroutine, attributed to worker slot 0.
func serialChunks(tel *obs.PoolTelemetry, chunks int, body func(chunk int)) {
	start := time.Now()
	for c := 0; c < chunks; c++ {
		t0 := time.Now()
		if c == 0 {
			tel.RecordQueueWait(t0.Sub(start))
		}
		body(c)
		tel.RecordChunk(0, time.Since(t0))
	}
	tel.RecordWorkerSpan(0, time.Since(start))
}

// workerChunks is one worker goroutine's claim loop, optionally timed.
// With tel == nil it is the bare claim loop the uninstrumented pool always
// ran; otherwise it records this worker's participation span, per-chunk
// latencies and the delay until its first claim.
func workerChunks(tel *obs.PoolTelemetry, w int, issued time.Time, next *atomic.Int64, chunks int, body func(chunk int)) {
	if tel == nil {
		for {
			c := int(next.Add(1) - 1)
			if c >= chunks {
				return
			}
			body(c)
		}
	}
	wstart := time.Now()
	first := true
	for {
		c := int(next.Add(1) - 1)
		if c >= chunks {
			break
		}
		t0 := time.Now()
		if first {
			tel.RecordQueueWait(t0.Sub(issued))
			first = false
		}
		body(c)
		tel.RecordChunk(w, time.Since(t0))
	}
	tel.RecordWorkerSpan(w, time.Since(wstart))
}

// ParallelFor runs body over [0, n) in fixed chunks of size grain across
// the pool. body receives the chunk index and its half-open range
// [lo, hi); with a nil or single-worker pool, chunks run sequentially in
// ascending index order on the calling goroutine.
func ParallelFor(r *Runner, n, grain int, body func(chunk, lo, hi int)) {
	if grain <= 0 {
		grain = 1
	}
	forChunks(r, Chunks(n, grain), func(c int) {
		lo, hi := chunkBounds(c, n, grain)
		body(c, lo, hi)
	})
}

// ParallelForScratch is ParallelFor with a reusable per-worker scratch
// value: newScratch runs once per participating worker (exactly once in the
// serial fallback), and every chunk that worker claims shares the value.
// Kernels needing a temporary buffer per chunk (subsample arrays, pairwise
// distance heaps) allocate it once per worker instead of once per chunk.
// Scratch contents must not flow between chunks in any result-affecting
// way: which chunks share a scratch is scheduling-dependent.
func ParallelForScratch[S any](r *Runner, n, grain int, newScratch func() S, body func(chunk, lo, hi int, scratch S)) {
	if grain <= 0 {
		grain = 1
	}
	chunks := Chunks(n, grain)
	if chunks <= 0 {
		return
	}
	workers := 1
	if r != nil {
		workers = r.workers
	}
	if workers > chunks {
		workers = chunks
	}
	tel := telemetry(r)
	if workers <= 1 {
		scratch := newScratch()
		if tel == nil {
			for c := 0; c < chunks; c++ {
				lo, hi := chunkBounds(c, n, grain)
				body(c, lo, hi, scratch)
			}
			return
		}
		serialChunks(tel, chunks, func(c int) {
			lo, hi := chunkBounds(c, n, grain)
			body(c, lo, hi, scratch)
		})
		return
	}
	issued := time.Time{}
	if tel != nil {
		issued = time.Now()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			scratch := newScratch()
			workerChunks(tel, w, issued, &next, chunks, func(c int) {
				lo, hi := chunkBounds(c, n, grain)
				body(c, lo, hi, scratch)
			})
		}(w)
	}
	wg.Wait()
}

// ParallelReduce folds body's per-chunk partials into one value. Each chunk
// computes body(chunk, lo, hi, identity) independently; the partials are
// then merged strictly in ascending chunk order, so any merge that is
// associative over adjacent ranges — it need not be commutative — yields
// the same result at every worker count as a single serial pass.
func ParallelReduce[T any](r *Runner, n, grain int, identity T, body func(chunk, lo, hi int, acc T) T, merge func(a, b T) T) T {
	if grain <= 0 {
		grain = 1
	}
	chunks := Chunks(n, grain)
	if chunks == 0 {
		return identity
	}
	if chunks == 1 {
		return merge(identity, body(0, 0, n, identity))
	}
	partials := make([]T, chunks)
	forChunks(r, chunks, func(c int) {
		lo, hi := chunkBounds(c, n, grain)
		partials[c] = body(c, lo, hi, identity)
	})
	acc := identity
	for c := 0; c < chunks; c++ {
		acc = merge(acc, partials[c])
	}
	return acc
}
