package expt

import (
	"fmt"
	"io"
	"sort"

	"graingraph/internal/workloads"
)

// Fig6Result is the data behind Figure 6: 359.botsspar's two interleaved
// phases, widespread work inflation at the refined 1.2 threshold, the
// bmod culprit, and the loop-interchange fix.
type Fig6Result struct {
	Grains int
	// Phase structure: tasks per definition (fwd/bdiv vs bmod).
	TasksPerDef map[string]int
	// InflationBefore/After: affected fraction at work-deviation > 1.2.
	InflationBefore, InflationAfter float64
	// CulpritDef is the definition ranked first by creation count among
	// inflated grains (the paper pinpoints sparselu bmod).
	CulpritDef    string
	Before, After *Result
}

// Figure6 regenerates Figure 6.
func Figure6(w io.Writer) (*Fig6Result, error) {
	results, err := runBatch([]runReq{
		{mk: func() workloads.Instance { return workloads.NewSparseLU(workloads.DefaultSparseLUParams()) },
			cfg:  Config{Cores: 48, Seed: 1, Baseline: true, WorkDeviationMax: 1.2},
			wrap: "figure 6 before"},
		{mk: func() workloads.Instance { return workloads.NewSparseLU(workloads.OptimizedSparseLUParams()) },
			cfg:  Config{Cores: 48, Seed: 1, Baseline: true, WorkDeviationMax: 1.2},
			wrap: "figure 6 after"},
	})
	if err != nil {
		return nil, err
	}
	before, after := results[0], results[1]

	res := &Fig6Result{
		Grains:          before.Trace.NumGrains(),
		TasksPerDef:     map[string]int{},
		InflationBefore: before.Assessment.Affected(workInflationProblem()),
		InflationAfter:  after.Assessment.Affected(workInflationProblem()),
		Before:          before,
		After:           after,
	}
	for _, t := range before.Trace.Tasks {
		res.TasksPerDef[t.Loc.String()]++
	}
	// Culprit: sort definitions by creation count among inflated grains.
	type defCount struct {
		def string
		n   int
	}
	counts := map[string]int{}
	for _, ga := range before.Assessment.Grains {
		if ga.Has(workInflationProblem()) {
			counts[ga.Metrics.Grain.Loc.String()]++
		}
	}
	var dcs []defCount
	for d, n := range counts {
		dcs = append(dcs, defCount{d, n})
	}
	sort.Slice(dcs, func(i, j int) bool {
		if dcs[i].n != dcs[j].n {
			return dcs[i].n > dcs[j].n
		}
		return dcs[i].def < dcs[j].def
	})
	if len(dcs) > 0 {
		res.CulpritDef = dcs[0].def
	}

	if w != nil {
		tw := table(w)
		fmt.Fprintln(tw, "Figure 6: 359.botsspar — work inflation (threshold 1.2)")
		fmt.Fprintf(tw, "grains\t%d\n", res.Grains)
		fmt.Fprintf(tw, "inflated before\t%s\n", pct(res.InflationBefore))
		fmt.Fprintf(tw, "inflated after loop interchange\t%s\n", pct(res.InflationAfter))
		fmt.Fprintf(tw, "culprit definition (by creation count among inflated)\t%s\n", res.CulpritDef)
		fmt.Fprintln(tw, "tasks per definition:")
		var defs []string
		for d := range res.TasksPerDef {
			defs = append(defs, d)
		}
		sort.Strings(defs)
		for _, d := range defs {
			fmt.Fprintf(tw, "  %s\t%d\n", d, res.TasksPerDef[d])
		}
		tw.Flush()
	}
	footer(w)
	return res, nil
}
