package expt

import (
	"bytes"
	"sync"
	"testing"

	"graingraph/internal/core"
	"graingraph/internal/export"
	"graingraph/internal/lod"
	"graingraph/internal/runpool"
	"graingraph/internal/workloads"
)

// renderAll produces the full served surface for one analyzed result —
// summary, highlight table, what-if rank, windowed DOT export — the same
// pipeline grainserved drives per request.
func renderAll(res *Result, pool *runpool.Runner) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteSummary(&buf, res); err != nil {
		return nil, err
	}
	if err := WriteHighlight(&buf, res); err != nil {
		return nil, err
	}
	ps, err := WhatIfRank(res, pool, nil)
	if err != nil {
		return nil, err
	}
	if err := WriteWhatIfTable(&buf, res, ps); err != nil {
		return nil, err
	}
	ix := lod.Build(res.Graph, res.Assessment)
	wg, _, err := ix.Window(lod.WindowOptions{Depth: 2, Top: 4})
	if err != nil {
		return nil, err
	}
	core.Layout(wg)
	if err := export.DOTWithWhatIfPool(&buf, wg, res.Assessment, export.ViewStructure, nil, pool); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// TestConcurrentAnalysisDeterministic is the server-shaped concurrency
// guarantee (run under -race in CI): many goroutines analyzing the same
// trace on one shared pool — without ever touching the global
// SetParallelism state — must each produce output byte-identical to a
// serial single-worker analysis.
func TestConcurrentAnalysisDeterministic(t *testing.T) {
	inst, err := workloads.Get("fib", workloads.VariantDefault)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Run(inst, Config{Cores: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := run.Trace

	// Serial reference: one worker, no concurrency anywhere.
	serialPool := runpool.New(1)
	serialRes := AnalyzeTraceOn(serialPool, tr, nil, Config{}, nil)
	want, err := renderAll(serialRes, serialPool)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("serial reference rendered no bytes")
	}

	const goroutines = 6
	shared := runpool.New(8)
	var wg sync.WaitGroup
	outs := make([][]byte, goroutines)
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := AnalyzeTraceOn(shared, tr, nil, Config{}, nil)
			outs[i], errs[i] = renderAll(res, shared)
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if !bytes.Equal(outs[i], want) {
			t.Errorf("goroutine %d output differs from the serial reference (len %d vs %d)",
				i, len(outs[i]), len(want))
		}
	}
}

// TestAnalyzeTraceOnLeavesGlobalPoolAlone pins the satellite fix: analyses
// on an explicit pool must not consult or mutate the package-global
// parallelism, so a CLI-configured global and server pools coexist.
func TestAnalyzeTraceOnLeavesGlobalPoolAlone(t *testing.T) {
	inst, err := workloads.Get("fib", workloads.VariantDefault)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Run(inst, Config{Cores: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := Parallelism()
	pool := runpool.New(3)
	res := AnalyzeTraceOn(pool, run.Trace, nil, Config{}, nil)
	if res == nil || res.Assessment == nil {
		t.Fatal("explicit-pool analysis produced no result")
	}
	if got := Parallelism(); got != before {
		t.Fatalf("AnalyzeTraceOn changed global parallelism %d -> %d", before, got)
	}
}
