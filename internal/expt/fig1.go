package expt

import (
	"fmt"
	"io"

	"graingraph/internal/machine"
	"graingraph/internal/rts"
	"graingraph/internal/workloads"
)

// Fig1Row is one bar of Figure 1: a program × variant × runtime-flavour
// speedup over single-core execution.
type Fig1Row struct {
	Program string
	Variant string // "before" or "after" the grain-graph-guided optimization
	Flavor  rts.Flavor
	Cores   int
	Speedup float64
}

// Fig1Result is the data behind Figure 1.
type Fig1Result struct {
	Rows []Fig1Row
}

// Get returns the speedup for (program, variant, flavour).
func (r *Fig1Result) Get(program, variant string, fl rts.Flavor) float64 {
	for _, row := range r.Rows {
		if row.Program == program && row.Variant == variant && row.Flavor == fl {
			return row.Speedup
		}
	}
	return 0
}

// fig1Case describes one program's before/after instances. Policy applies
// to the run configuration (Sort's optimization is a placement policy).
type fig1Case struct {
	program string
	variant string
	policy  machine.Policy
	mk      func() workloads.Instance
}

// fig1Cases returns the evaluation matrix at the given scale (1 = default).
func fig1Cases() []fig1Case {
	return []fig1Case{
		{"376.kdtree", "before", machine.FirstTouch, func() workloads.Instance {
			return workloads.NewKdTree(workloads.PerfKdTreeParams(false))
		}},
		{"376.kdtree", "after", machine.FirstTouch, func() workloads.Instance {
			return workloads.NewKdTree(workloads.PerfKdTreeParams(true))
		}},
		{"Sort", "before", machine.FirstTouch, func() workloads.Instance {
			return workloads.NewSort(workloads.DefaultSortParams())
		}},
		{"Sort", "after", machine.RoundRobin, func() workloads.Instance {
			return workloads.NewSort(workloads.DefaultSortParams())
		}},
		{"359.botsspar", "before", machine.FirstTouch, func() workloads.Instance {
			return workloads.NewSparseLU(workloads.DefaultSparseLUParams())
		}},
		{"359.botsspar", "after", machine.RoundRobin, func() workloads.Instance {
			return workloads.NewSparseLU(workloads.OptimizedSparseLUParams())
		}},
		{"FFT", "before", machine.FirstTouch, func() workloads.Instance {
			return workloads.NewFFT(workloads.DefaultFFTParams())
		}},
		{"FFT", "after", machine.FirstTouch, func() workloads.Instance {
			return workloads.NewFFT(workloads.OptimizedFFTParams())
		}},
		{"Strassen", "before", machine.FirstTouch, func() workloads.Instance {
			return workloads.NewStrassen(workloads.DefaultStrassenParams())
		}},
		{"Strassen", "after", machine.FirstTouch, func() workloads.Instance {
			return workloads.NewStrassen(workloads.FixedStrassenParams())
		}},
	}
}

// Figure1 regenerates Figure 1: speedup on `cores` cores before and after
// each grain-graph-guided optimization, for the three runtime flavours.
//
// Speedups are measured against a per-program common serial baseline (the
// optimized variant on one core), matching the paper's convention of
// normalizing by single-core execution (§4.3.6); this is what makes a
// task-explosion variant's pure-overhead "self speedup" visible as the
// performance loss it really is.
func Figure1(w io.Writer, cores int) (*Fig1Result, error) {
	if cores == 0 {
		cores = 48
	}
	res := &Fig1Result{}
	flavors := []rts.Flavor{rts.FlavorMIR, rts.FlavorGCC, rts.FlavorICC}

	// One batch covers the whole figure: the five common serial baselines
	// (the "after" variant on one core) followed by the 30 case × flavour
	// parallel runs. Requests are independent, so the pool may interleave
	// them freely; results come back in this order regardless.
	var reqs []runReq
	var basePrograms []string
	for _, cs := range fig1Cases() {
		if cs.variant != "after" {
			continue
		}
		basePrograms = append(basePrograms, cs.program)
		reqs = append(reqs, runReq{
			mk:   cs.mk,
			cfg:  Config{Cores: 1, Policy: cs.policy, Seed: 1},
			wrap: fmt.Sprintf("figure 1 baseline %s", cs.program),
		})
	}
	type runIdx struct {
		cs fig1Case
		fl rts.Flavor
	}
	var runs []runIdx
	for _, cs := range fig1Cases() {
		for _, fl := range flavors {
			runs = append(runs, runIdx{cs, fl})
			reqs = append(reqs, runReq{
				mk:   cs.mk,
				cfg:  Config{Cores: cores, Flavor: fl, Policy: cs.policy, Seed: 1},
				wrap: fmt.Sprintf("figure 1 %s/%s/%v", cs.program, cs.variant, fl),
			})
		}
	}
	mks, err := makespanBatch(reqs)
	if err != nil {
		return nil, err
	}
	baseT1 := map[string]uint64{}
	for i, program := range basePrograms {
		baseT1[program] = mks[i]
	}
	for i, r := range runs {
		tp := mks[len(basePrograms)+i]
		res.Rows = append(res.Rows, Fig1Row{
			Program: r.cs.program, Variant: r.cs.variant, Flavor: r.fl,
			Cores: cores, Speedup: float64(baseT1[r.cs.program]) / float64(tp),
		})
	}
	if w != nil {
		tw := table(w)
		fmt.Fprintf(tw, "Figure 1: speedup on %d cores, before/after optimization\n", cores)
		fmt.Fprintln(tw, "program\tvariant\tMIR\tGCC\tICC")
		for _, cs := range []string{"376.kdtree", "Sort", "359.botsspar", "FFT", "Strassen"} {
			for _, variant := range []string{"before", "after"} {
				fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.1f\t%.1f\n", cs, variant,
					res.Get(cs, variant, rts.FlavorMIR),
					res.Get(cs, variant, rts.FlavorGCC),
					res.Get(cs, variant, rts.FlavorICC))
			}
		}
		tw.Flush()
	}
	footer(w)
	return res, nil
}
