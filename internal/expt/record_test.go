package expt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"graingraph/internal/core"
	"graingraph/internal/export"
	"graingraph/internal/ggp"
	"graingraph/internal/rts"
	"graingraph/internal/runpool"
	"graingraph/internal/workloads"
)

// resetArtifactDirs restores the record/replay globals and caches after a
// test that touched them.
func resetArtifactDirs() {
	SetRecordDir("")
	SetReplayDir("")
	ResetMemo()
	ResetArtifactMemo()
}

// regenerateUninstrumented renders every figure at the given parallelism
// with a cold memo cache and no instrumentation (record/replay only engage
// for uninstrumented runs), returning the bytes produced and the number of
// simulations that actually executed.
func regenerateUninstrumented(t *testing.T, jobs int) ([]byte, uint64) {
	t.Helper()
	ResetMemo()
	SetParallelism(jobs)
	simBefore, _ := MemoStats()
	var buf bytes.Buffer
	if err := allFigures(&buf); err != nil {
		t.Fatalf("-j %d: %v", jobs, err)
	}
	sim, _ := MemoStats()
	return buf.Bytes(), sim - simBefore
}

// TestRecordReplayRoundTrip is the record/analyze split's headline
// guarantee: a full figure pass recorded to grain-profile artifacts, then
// replayed from those artifacts with a cold memo, produces byte-identical
// output — at both the serial fallback and pooled parallelism — while
// executing no keyed simulation a second time.
func TestRecordReplayRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every figure three times; skipped in -short")
	}
	prev := Parallelism()
	defer func() { SetParallelism(prev); resetArtifactDirs() }()

	dir := t.TempDir()

	SetRecordDir(dir)
	live, liveSims := regenerateUninstrumented(t, 8)
	SetRecordDir("")

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("record pass produced no artifacts")
	}
	t.Logf("recorded %d artifacts from %d simulations", len(ents), liveSims)

	SetReplayDir(dir)
	replaySerial, serialSims := regenerateUninstrumented(t, 1)
	replayParallel, parallelSims := regenerateUninstrumented(t, 8)
	SetReplayDir("")

	if !bytes.Equal(live, replaySerial) {
		d := diffLine(live, replaySerial)
		t.Fatalf("live and -j 1 replay outputs differ (first differing line %d):\nlive:   %q\nreplay: %q",
			d, lineAt(live, d), lineAt(replaySerial, d))
	}
	if !bytes.Equal(live, replayParallel) {
		d := diffLine(live, replayParallel)
		t.Fatalf("live and -j 8 replay outputs differ (first differing line %d):\nlive:   %q\nreplay: %q",
			d, lineAt(live, d), lineAt(replayParallel, d))
	}
	// Every keyed run was recorded during the live pass, so both replay
	// passes serve every keyed request from an artifact and execute no
	// keyed simulation at all (MemoStats counts only keyed executions).
	if serialSims != 0 || parallelSims != 0 {
		t.Errorf("replay executed keyed simulations: %d at -j 1, %d at -j 8; want 0 (live pass executed %d)",
			serialSims, parallelSims, liveSims)
	}
}

// TestArtifactAnalysisMatchesLive checks the single-artifact path grainview
// uses: a run recorded to a .ggp artifact, read back with ggp.ReadFile and
// analyzed with AnalyzeTrace, exports byte-identically to the live Result.
func TestArtifactAnalysisMatchesLive(t *testing.T) {
	defer resetArtifactDirs()
	dir := t.TempDir()

	ResetMemo()
	SetRecordDir(dir)
	inst, err := workloads.Get("fib", "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Cores: 8, Seed: 1}
	live, err := Run(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	SetRecordDir("")

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("expected 1 recorded artifact, found %d", len(ents))
	}
	tr, err := ggp.ReadFile(filepath.Join(dir, ents[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	replayed := AnalyzeTrace(tr, nil, Config{})

	if got, want := replayed.Trace.Cores, live.Trace.Cores; got != want {
		t.Fatalf("replayed trace has %d cores, live %d", got, want)
	}
	core.Layout(live.Graph)
	core.Layout(replayed.Graph)
	var a, b bytes.Buffer
	if err := export.GraphML(&a, live.Graph, live.Assessment, export.ViewStructure); err != nil {
		t.Fatal(err)
	}
	if err := export.GraphML(&b, replayed.Graph, replayed.Assessment, export.ViewStructure); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		d := diffLine(a.Bytes(), b.Bytes())
		t.Fatalf("GraphML exports differ (first differing line %d):\nlive:   %q\nreplay: %q",
			d, lineAt(a.Bytes(), d), lineAt(b.Bytes(), d))
	}
}

// TestArtifactDecodeMemo pins the content-hash memoization of artifact
// decodes: loading identical bytes twice decodes once and shares the
// trace; rewriting the file with different content misses the cache; a
// corrupted file misses the cache and fails its CRC check instead of
// returning a stale decode.
func TestArtifactDecodeMemo(t *testing.T) {
	defer resetArtifactDirs()
	dir := t.TempDir()
	key := runpool.KeyOf("artifact-memo-test")

	tr := rts.Run(rts.Config{Program: "memo-a", Cores: 2}, func(c rts.Ctx) { c.Compute(500) })
	if err := recordArtifact(dir, key, tr); err != nil {
		t.Fatal(err)
	}

	ResetArtifactMemo()
	first, found, err := loadArtifact(dir, key)
	if err != nil || !found {
		t.Fatalf("first load: found=%v err=%v", found, err)
	}
	second, found, err := loadArtifact(dir, key)
	if err != nil || !found {
		t.Fatalf("second load: found=%v err=%v", found, err)
	}
	if first != second {
		t.Error("identical bytes decoded twice; expected the memoized trace to be shared")
	}
	if decodes, hits := ArtifactStats(); decodes != 1 || hits != 1 {
		t.Errorf("after two identical loads: decodes=%d hits=%d, want 1/1", decodes, hits)
	}
	if c := ArtifactCounters(); c.Hits != 1 || c.Misses != 1 {
		t.Errorf("after two identical loads: counters=%+v, want 1 hit / 1 miss", c)
	}

	// Different content at the same path is a cache miss that decodes fresh.
	tr2 := rts.Run(rts.Config{Program: "memo-b", Cores: 2}, func(c rts.Ctx) { c.Compute(500) })
	if err := recordArtifact(dir, key, tr2); err != nil {
		t.Fatal(err)
	}
	third, found, err := loadArtifact(dir, key)
	if err != nil || !found {
		t.Fatalf("post-rewrite load: found=%v err=%v", found, err)
	}
	if third == first {
		t.Error("rewritten artifact returned the stale decode")
	}
	if third.Program != "memo-b" {
		t.Errorf("rewritten artifact decoded program %q, want memo-b", third.Program)
	}
	if decodes, _ := ArtifactStats(); decodes != 2 {
		t.Errorf("after rewrite: decodes=%d, want 2", decodes)
	}
	if c := ArtifactCounters(); c.Hits != 1 || c.Misses != 2 {
		t.Errorf("after rewrite: counters=%+v, want 1 hit / 2 misses", c)
	}

	// A mutated payload byte is also a miss — and the fresh decode fails
	// the CRC check rather than serving anything.
	path := artifactPath(dir, key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadArtifact(dir, key); err == nil {
		t.Error("corrupted artifact loaded without error")
	}
	if decodes, _ := ArtifactStats(); decodes != 3 {
		t.Errorf("after corruption: decodes=%d, want 3", decodes)
	}
	if c := ArtifactCounters(); c.Hits != 1 || c.Misses != 3 {
		t.Errorf("after corruption: counters=%+v, want 1 hit / 3 misses", c)
	}

	// A missing artifact is not an error: the engine falls back to live
	// simulation.
	if _, found, err := loadArtifact(dir, runpool.KeyOf("absent")); found || err != nil {
		t.Errorf("missing artifact: found=%v err=%v, want false/nil", found, err)
	}
}
