package expt

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"graingraph/internal/core"
	"graingraph/internal/ggp"
	"graingraph/internal/profile"
	"graingraph/internal/runpool"
)

// Record/replay splits the engine's record-once/analyze-many workflow:
// with a record directory set, every keyed simulation that executes also
// writes its trace as a grain-profile artifact named by the run's content
// address (<hex(simKey)>.ggp); with a replay directory set, keyed requests
// load the saved artifact instead of simulating. Artifact decodes are
// memoized by file content hash, so the same bytes decode once per process
// no matter how many figures share the run, and a mutated file is a cache
// miss that decodes (and CRC-checks) fresh.
//
// Instrumented runs (Instr != nil) bypass both directions: artifacts carry
// the trace only, not the metrics registry or event stream.

var (
	artifactDirMu sync.Mutex
	recordDir     string
	replayDir     string

	// artifactMemo deduplicates artifact decodes by content hash.
	artifactMemo = runpool.NewCache[*profile.Trace]()
)

// SetRecordDir makes every subsequent keyed, uninstrumented simulation
// write its trace to dir as <hex(simKey)>.ggp (atomically; concurrent
// workers recording the same key write identical bytes). Empty disables
// recording. The directory is created on demand.
func SetRecordDir(dir string) {
	artifactDirMu.Lock()
	defer artifactDirMu.Unlock()
	recordDir = dir
}

// SetReplayDir makes every subsequent keyed, uninstrumented simulation
// request load <dir>/<hex(simKey)>.ggp instead of executing the
// simulator. Requests whose artifact is absent fall back to live
// simulation; a present-but-corrupt artifact is an error, not a fallback.
// Empty disables replay.
func SetReplayDir(dir string) {
	artifactDirMu.Lock()
	defer artifactDirMu.Unlock()
	replayDir = dir
}

func artifactDirs() (rec, rep string) {
	artifactDirMu.Lock()
	defer artifactDirMu.Unlock()
	return recordDir, replayDir
}

// recordV2 selects the columnar v2 format for recorded artifacts: the
// graph is built once at record time and its columns persisted, so replay
// and viewer ingest skip the per-event parse and the graph build.
var recordV2 atomic.Bool

// SetRecordV2 switches artifact recording to the columnar v2 format
// (grainbench -record -ggp-v2). Off records the v1 event stream.
func SetRecordV2(on bool) { recordV2.Store(on) }

// ingestNS accumulates wall time spent ingesting grain-profile artifacts
// (file read + CRC-checked decode, including memo-hit waits) across all
// replayed runs, the record/replay counterpart of the analyze-phase timer.
// grainbench reports it per figure so artifact-cache effectiveness is
// visible next to analysis cost.
var ingestNS atomic.Int64

// IngestStats returns the accumulated artifact-ingest wall time.
func IngestStats() time.Duration { return time.Duration(ingestNS.Load()) }

// ResetIngestStats zeroes the artifact-ingest timer.
func ResetIngestStats() { ingestNS.Store(0) }

// ArtifactStats reports how many artifact decodes executed and how many
// loads were served from the content-hash cache.
func ArtifactStats() (decodes, hits uint64) { return artifactMemo.Stats() }

// ArtifactCounters returns the artifact-decode cache's hit/miss counters.
func ArtifactCounters() runpool.CacheStats { return artifactMemo.Counters() }

// ResetArtifactMemo drops the decode cache (tests use it to measure
// hit/miss behaviour from a clean slate).
func ResetArtifactMemo() { artifactMemo.Reset() }

// artifactPath names the artifact for one simulation key.
func artifactPath(dir string, key runpool.Key) string {
	return filepath.Join(dir, key.Hex()+".ggp")
}

// recordArtifact writes tr under its simulation key. The write is atomic
// (temp file + rename), so concurrent recorders of the same key are safe:
// both write identical bytes and the last rename wins.
func recordArtifact(dir string, key runpool.Key, tr *profile.Trace) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("record artifact: %w", err)
	}
	if recordV2.Load() {
		// No sidecars at record time: the run has not been analyzed yet.
		// grainserved upgrades artifacts in place after first analysis.
		if err := ggp.WriteFileV2(artifactPath(dir, key), tr, core.Build(tr), nil); err != nil {
			return fmt.Errorf("record artifact: %w", err)
		}
		return nil
	}
	if err := ggp.WriteFile(artifactPath(dir, key), tr); err != nil {
		return fmt.Errorf("record artifact: %w", err)
	}
	return nil
}

// loadArtifact loads the artifact for key from dir. found is false when no
// artifact exists (caller falls back to live simulation); any other
// failure — unreadable file, corrupt or invalid artifact — is an error.
// Decodes are memoized by content hash: rereading identical bytes returns
// the shared immutable trace without parsing again.
func loadArtifact(dir string, key runpool.Key) (tr *profile.Trace, found bool, err error) {
	start := time.Now()
	sp := SelfProfiler().Begin("ingest:artifact")
	defer func() {
		ingestNS.Add(int64(time.Since(start)))
		sp.End()
	}()
	raw, rerr := os.ReadFile(artifactPath(dir, key))
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("replay artifact: %w", rerr)
	}
	tr, err, _ = artifactMemo.Do(runpool.KeyOfBytes(raw), func() (*profile.Trace, error) {
		// DecodeTrace dispatches on version, so replay directories may mix
		// v1 and columnar v2 artifacts. The nil pool keeps the decode
		// serial: replayed loads already run on pool workers, and a worker
		// submitting to its own pool would deadlock.
		return ggp.DecodeTrace(raw, nil, sp)
	})
	if err != nil {
		return nil, false, fmt.Errorf("replay artifact %s: %w", artifactPath(dir, key), err)
	}
	return tr, true, nil
}
