package expt

import (
	"sync"

	"graingraph/internal/obs"
)

// Self-observability glue: the analysis pipeline's own phase spans and the
// run pool's telemetry, reported through one registry (internal/obs). The
// cmds enable it for their -phases/-selfprofile flags and for -benchjson
// phase breakdowns; when disabled every instrumentation site costs a nil
// test, mirroring the PR 1 trace sinks.

var (
	selfMu   sync.Mutex
	selfProf *obs.Profiler
	selfTel  *obs.PoolTelemetry
)

// EnableSelfProfile turns on self-observability: phase spans for every
// analysis this package performs are collected on p, and pool telemetry is
// attached to the experiment pool. Call it after SetParallelism and before
// running figures or analyses; pass nil to disable. The previous profiler's
// spans are abandoned, not merged.
func EnableSelfProfile(p *obs.Profiler) {
	selfMu.Lock()
	if p == nil {
		selfProf, selfTel = nil, nil
	} else {
		selfProf = p
		w := Parallelism()
		if w < 1 {
			w = 1
		}
		selfTel = obs.NewPoolTelemetry(w)
	}
	tel := selfTel
	selfMu.Unlock()
	currentPool().SetTelemetry(tel)
}

// SelfProfiler returns the enabled profiler, or nil. Instrumentation sites
// call it once per phase; the nil result flows through obs' nil guards.
func SelfProfiler() *obs.Profiler {
	selfMu.Lock()
	defer selfMu.Unlock()
	return selfProf
}

func selfTelemetry() *obs.PoolTelemetry {
	selfMu.Lock()
	defer selfMu.Unlock()
	return selfTel
}

// SelfProfile snapshots the registry: the finished phase spans in
// canonical order plus the pool telemetry, with the engine's memoization
// caches (simulation memo, artifact-decode memo) reported as named
// hit/miss counters. It fails if instrumentation left spans open. Returns
// nil when self-observability is disabled.
func SelfProfile() (*obs.Profile, error) {
	p := SelfProfiler()
	if p == nil {
		return nil, nil
	}
	spans, err := p.Snapshot()
	if err != nil {
		return nil, err
	}
	prof := &obs.Profile{Spans: spans, Pool: selfTelemetry().Snapshot()}
	if prof.Pool != nil {
		sim := simMemo.Counters()
		art := artifactMemo.Counters()
		prof.Pool.Memos = append(prof.Pool.Memos,
			obs.MemoCounters{Name: "simulate", Hits: sim.Hits, Misses: sim.Misses, Evictions: sim.Evictions},
			obs.MemoCounters{Name: "artifact", Hits: art.Hits, Misses: art.Misses, Evictions: art.Evictions},
		)
	}
	return prof, nil
}
