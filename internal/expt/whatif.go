package expt

import (
	"fmt"
	"io"

	"graingraph/internal/whatif"
	"graingraph/internal/workloads"
)

// WhatIfResult carries the what-if analysis of the two standard subjects:
// the Figure 5 tuned Sort run and a deliberately broken-cutoff Fib run
// (cutoff deeper than the recursion, so every call spawns a task).
type WhatIfResult struct {
	Sort, Fib             *Result
	SortRanked, FibRanked []whatif.Projection
}

// brokenFibParams spawns all the way to the leaves: with Cutoff >= N the
// depth test never trips, reproducing the paper's broken-cutoff anti-pattern
// where per-task overhead rivals the work.
func brokenFibParams() workloads.FibParams { return workloads.FibParams{N: 18, Cutoff: 18} }

// WhatIfTable regenerates the what-if opportunity tables: for each subject
// run, the engine replays recorded grain weights under hypothetical
// transformations (perfect cutoffs, grain scaling, de-inflation, infinite
// cores) and ranks them by projected makespan — no re-simulation. The
// hypothesis evaluations fan out across the same -j pool as the simulations
// themselves, and output is byte-identical at every parallelism level.
func WhatIfTable(w io.Writer) (*WhatIfResult, error) {
	results, err := runBatch([]runReq{
		{mk: func() workloads.Instance { return workloads.NewSort(workloads.DefaultSortParams()) },
			cfg: Config{Cores: 48, Seed: 1, Baseline: true}, wrap: "what-if sort"},
		{mk: func() workloads.Instance { return workloads.NewFib(brokenFibParams()) },
			cfg: Config{Cores: 48, Seed: 1}, wrap: "what-if fib"},
	})
	if err != nil {
		return nil, err
	}
	res := &WhatIfResult{Sort: results[0], Fib: results[1]}
	opt := whatif.RankOptions{TopN: 8}
	pool := currentPool()

	sp := SelfProfiler().Begin("whatif:rank:sort")
	sortEng := whatif.New(res.Sort.Graph, res.Sort.Report)
	sortEng.Obs = sp
	res.SortRanked, err = sortEng.Rank(res.Sort.Assessment, pool, opt)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = SelfProfiler().Begin("whatif:rank:fib")
	fibEng := whatif.New(res.Fib.Graph, res.Fib.Report)
	fibEng.Obs = sp
	res.FibRanked, err = fibEng.Rank(res.Fib.Assessment, pool, opt)
	sp.End()
	if err != nil {
		return nil, err
	}

	if w != nil {
		title := fmt.Sprintf("What-if: sort, tuned cutoffs (%d grains, %d cores)",
			res.Sort.Trace.NumGrains(), res.Sort.Trace.Cores)
		if err := whatif.WriteTable(w, title, res.SortRanked); err != nil {
			return nil, err
		}
		fmt.Fprintln(w)
		title = fmt.Sprintf("What-if: fib, broken cutoff (%d grains, %d cores)",
			res.Fib.Trace.NumGrains(), res.Fib.Trace.Cores)
		if err := whatif.WriteTable(w, title, res.FibRanked); err != nil {
			return nil, err
		}
	}
	footer(w)
	return res, nil
}
