package expt

import (
	"fmt"
	"io"

	"graingraph/internal/timeline"
	"graingraph/internal/workloads"
)

// Fig4Result contrasts the baseline thread-timeline view with the grain
// graph: the timeline shows only load imbalance; the grain graph names the
// culprits.
type Fig4Result struct {
	View          *timeline.View
	LoadImbalance float64
	// LowIPAffected is the fraction of grains the grain graph flags for low
	// instantaneous parallelism — the root cause the timeline cannot show.
	LowIPAffected float64
}

// Figure4 regenerates Figure 4: Sort under the VTune-style per-thread
// aggregate view. The takeaway is negative knowledge — "cores perform
// uneven work... nothing links the load imbalance to the culprit tasks".
func Figure4(w io.Writer) (*Fig4Result, error) {
	res, err := Run(workloads.NewSort(workloads.DefaultSortParams()), Config{Cores: 48, Seed: 1})
	if err != nil {
		return nil, fmt.Errorf("figure 4: %w", err)
	}
	v := timeline.FromTrace(res.Trace)
	out := &Fig4Result{View: v, LoadImbalance: v.LoadImbalance()}
	out.LowIPAffected = res.Assessment.Affected(lowParallelismProblem())
	if w != nil {
		fmt.Fprintln(w, "Figure 4: what existing tools show for Sort (thread timeline)")
		if err := v.Render(w); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "\nWhat the timeline cannot show: the grain graph flags %s of grains\n", pct(out.LowIPAffected))
		fmt.Fprintln(w, "for low instantaneous parallelism, pinpointing the culprit grains.")
	}
	footer(w)
	return out, nil
}
