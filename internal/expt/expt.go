// Package expt is the experiment harness: one regenerator per table and
// figure in the paper's evaluation (§2, §4), each running the relevant
// workload on the simulated machine, deriving grain-graph metrics, and
// printing the same rows/series the paper reports.
//
// Absolute numbers differ from the paper's (their substrate was a real
// 48-core Opteron; ours is a calibrated simulator) but the shapes hold:
// who wins, directions of change, and where the crossovers fall.
package expt

import (
	"fmt"
	"io"
	"text/tabwriter"

	"graingraph/internal/core"
	"graingraph/internal/highlight"
	"graingraph/internal/machine"
	"graingraph/internal/metrics"
	"graingraph/internal/profile"
	"graingraph/internal/rts"
	"graingraph/internal/workloads"
)

// Result bundles a fully analyzed run.
type Result struct {
	Trace      *profile.Trace
	Graph      *core.Graph
	Report     *metrics.Report
	Assessment *highlight.Assessment
}

// Config shapes a harness run.
type Config struct {
	Cores     int
	Flavor    rts.Flavor
	Scheduler rts.SchedulerKind
	Policy    machine.Policy
	Seed      uint64
	// Baseline enables the extra single-core run used for work deviation.
	Baseline bool
	// WorkDeviationMax overrides the problem threshold (0 = default 2).
	WorkDeviationMax float64
}

// Run executes inst under cfg, verifies its computational result, and
// derives the full metric set.
func Run(inst workloads.Instance, cfg Config) (*Result, error) {
	rcfg := rts.Config{
		Program:   inst.Name(),
		Cores:     cfg.Cores,
		Flavor:    cfg.Flavor,
		Scheduler: cfg.Scheduler,
		Seed:      cfg.Seed,
		Policy:    cfg.Policy,
	}

	var baseline *profile.Trace
	if cfg.Baseline {
		bcfg := rcfg
		bcfg.Cores = 1
		baseline = rts.Run(bcfg, inst.Program())
		if err := inst.Verify(); err != nil {
			return nil, fmt.Errorf("baseline run: %w", err)
		}
	}
	tr := rts.Run(rcfg, inst.Program())
	if err := inst.Verify(); err != nil {
		return nil, fmt.Errorf("parallel run: %w", err)
	}
	g := core.Build(tr)
	rep := metrics.Analyze(tr, g, baseline, metrics.Options{})
	th := highlight.Defaults(cfg.Cores, 12)
	if cfg.WorkDeviationMax > 0 {
		th.WorkDeviationMax = cfg.WorkDeviationMax
	}
	a := highlight.Evaluate(rep, th)
	return &Result{Trace: tr, Graph: g, Report: rep, Assessment: a}, nil
}

// Makespan runs inst and returns its virtual makespan (verifying results).
func Makespan(inst workloads.Instance, cfg Config) (uint64, error) {
	rcfg := rts.Config{
		Program:   inst.Name(),
		Cores:     cfg.Cores,
		Flavor:    cfg.Flavor,
		Scheduler: cfg.Scheduler,
		Seed:      cfg.Seed,
		Policy:    cfg.Policy,
	}
	tr := rts.Run(rcfg, inst.Program())
	if err := inst.Verify(); err != nil {
		return 0, err
	}
	return tr.Makespan(), nil
}

// Speedup returns makespan(1 core) / makespan(cores).
func Speedup(mk func() workloads.Instance, cfg Config) (float64, error) {
	one := cfg
	one.Cores = 1
	t1, err := Makespan(mk(), one)
	if err != nil {
		return 0, err
	}
	tp, err := Makespan(mk(), cfg)
	if err != nil {
		return 0, err
	}
	return float64(t1) / float64(tp), nil
}

// table starts a tabwriter for aligned console tables.
func table(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// pct formats a 0..1 fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
