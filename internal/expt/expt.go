// Package expt is the experiment harness: one regenerator per table and
// figure in the paper's evaluation (§2, §4), each running the relevant
// workload on the simulated machine, deriving grain-graph metrics, and
// printing the same rows/series the paper reports.
//
// Absolute numbers differ from the paper's (their substrate was a real
// 48-core Opteron; ours is a calibrated simulator) but the shapes hold:
// who wins, directions of change, and where the crossovers fall.
package expt

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"graingraph/internal/core"
	"graingraph/internal/highlight"
	"graingraph/internal/lod"
	"graingraph/internal/machine"
	"graingraph/internal/metrics"
	"graingraph/internal/obs"
	"graingraph/internal/profile"
	"graingraph/internal/query"
	"graingraph/internal/rts"
	"graingraph/internal/runpool"
	"graingraph/internal/trace"
	"graingraph/internal/workloads"
)

// analyzeNS accumulates wall time spent in the analysis phase (graph build,
// metric derivation, highlighting) across all runs since process start or
// the last ResetAnalyzeStats. grainbench reports it per figure so analysis
// cost is visible separately from simulation cost.
var analyzeNS atomic.Int64

// AnalyzeStats returns the accumulated analysis-phase wall time.
func AnalyzeStats() time.Duration { return time.Duration(analyzeNS.Load()) }

// ResetAnalyzeStats zeroes the analysis-phase wall-time counter.
func ResetAnalyzeStats() { analyzeNS.Store(0) }

// analyze is the shared analysis half of runOne and AnalyzeTrace: graph
// build, metric derivation and highlighting, with the per-grain kernels
// running on pool (nil selects the shared experiment pool, the CLI
// default). It feeds the analyze-phase timer and, when self-observability
// is enabled, reports one phase-span tree per analysis — rooted under
// parent when the caller threaded one through, or as its own root (the
// batch case, where analyses run on pool workers).
func analyze(tr, baseline *profile.Trace, cores int, wdMax float64, parent *obs.Span, pool *runpool.Runner) *Result {
	return analyzeWith(tr, nil, baseline, cores, wdMax, parent, pool)
}

// analyzeWith is analyze accepting an already-materialized graph (the
// columnar v2 decode path hands one over); g == nil builds it from the
// trace exactly as before. The rest of the pipeline is shared, so a
// decoded graph analyzes byte-identically to a freshly built one.
func analyzeWith(tr *profile.Trace, g *core.Graph, baseline *profile.Trace, cores int, wdMax float64, parent *obs.Span, pool *runpool.Runner) *Result {
	start := time.Now()
	defer func() { analyzeNS.Add(int64(time.Since(start))) }()
	if pool == nil {
		pool = currentPool()
	}
	sp := obs.Under(SelfProfiler(), parent, "analyze:"+tr.Program)
	defer sp.End()

	if g == nil {
		bsp := sp.Child("build")
		g = core.Build(tr)
		bsp.End()
	}
	rep := metrics.Analyze(tr, g, baseline, metrics.Options{Pool: pool, Span: sp})
	th := highlight.Defaults(cores, 12)
	if wdMax > 0 {
		th.WorkDeviationMax = wdMax
	}
	a := highlight.EvaluateObs(rep, th, pool, sp)
	return &Result{Trace: tr, Graph: g, Report: rep, Assessment: a}
}

// InstrumentedRun captures one simulated run's observability artifacts:
// its profile, counter registry, captured event stream (when enabled)
// and the critical-path grain set (for fully analyzed runs).
type InstrumentedRun struct {
	Label    string
	Trace    *profile.Trace
	Metrics  *trace.Metrics
	Events   []trace.Event
	Dropped  uint64
	Critical map[profile.GrainID]bool
}

// Instrumentation makes every simulated run in this package double as a
// runtime-health report: when Instr is non-nil, each rts.Run performed
// by Run/Makespan attaches a metrics registry (and, with CaptureEvents,
// a bounded ring-buffer event sink) and records the result in Runs.
// The cmds enable it for their -trace / -stats flags.
//
// Recording is serialized internally, but figures always append their
// batches in request order (see runBatch), so Runs has the same contents
// in the same order at every parallelism level.
type Instrumentation struct {
	// CaptureEvents attaches a trace.RingSink of Capacity events to each
	// run (Perfetto export needs it); metrics alone are much cheaper.
	CaptureEvents bool
	// Capacity is the per-run ring-buffer size; <= 0 uses the default.
	Capacity int
	// PrintFooter makes each figure regenerator append a runtime-metrics
	// footer covering the runs it performed.
	PrintFooter bool

	Runs []*InstrumentedRun

	mu         sync.Mutex
	footerMark int // Runs already covered by a previous footer
}

// Instr, when non-nil, instruments every simulated run in this package.
// Set it once before running figures, not while they execute.
var Instr *Instrumentation

// record appends instrumented runs to the global stream.
func record(iruns []*InstrumentedRun) {
	ins := Instr
	if ins == nil || len(iruns) == 0 {
		return
	}
	ins.mu.Lock()
	ins.Runs = append(ins.Runs, iruns...)
	ins.mu.Unlock()
}

// runLabel names an instrumented run after its workload and config.
func runLabel(program string, cfg Config, cores int, suffix string) string {
	l := fmt.Sprintf("%s p%d %s/%s seed%d", program, cores, cfg.Flavor, cfg.Scheduler, cfg.Seed)
	if suffix != "" {
		l += " " + suffix
	}
	return l
}

// WriteFooter prints a one-line runtime-metrics summary for every run
// recorded since the previous footer, then advances the mark.
func (ins *Instrumentation) WriteFooter(w io.Writer) {
	ins.mu.Lock()
	defer ins.mu.Unlock()
	runs := ins.Runs[ins.footerMark:]
	ins.footerMark = len(ins.Runs)
	if len(runs) == 0 {
		return
	}
	fmt.Fprintln(w, "runtime metrics:")
	for _, r := range runs {
		fmt.Fprintf(w, "  %s: %s\n", r.Label, r.Metrics.Summary())
	}
}

// footer appends the runtime-metrics footer to a figure's output when
// instrumentation with footers is enabled.
func footer(w io.Writer) {
	if w == nil || Instr == nil || !Instr.PrintFooter {
		return
	}
	Instr.WriteFooter(w)
}

// Result bundles a fully analyzed run.
type Result struct {
	Trace      *profile.Trace
	Graph      *core.Graph
	Report     *metrics.Report
	Assessment *highlight.Assessment

	// sidecarLod/sidecarQuery hold the raw derived-artifact payloads a
	// columnar v2 decode carried (nil otherwise). Lod and GrainTable
	// adopt them lazily and fall back to a fresh build when absent or
	// structurally unsound.
	sidecarLod   []byte
	sidecarQuery []byte

	lodOnce sync.Once
	lodIx   *lod.Index

	qtOnce sync.Once
	qtPool *runpool.Runner
	qt     *query.Table
}

// Lod returns the level-of-detail summary index for this result, adopting
// the decoded sidecar when one rode along with the artifact and building
// fresh otherwise. The index is computed once and shared; both paths
// produce byte-identical tables and windows.
func (res *Result) Lod() *lod.Index {
	res.lodOnce.Do(func() {
		if res.sidecarLod != nil {
			if ix, err := lod.DecodeIndex(res.Graph, res.sidecarLod); err == nil {
				res.lodIx = ix
				return
			}
		}
		res.lodIx = lod.Build(res.Graph, res.Assessment)
	})
	return res.lodIx
}

// GrainTable returns the per-grain query metric table, adopting the
// decoded sidecar when present (after checking its row count against the
// report) and deriving it from the report otherwise. The table is
// computed once; pool only matters for the first call's derivation.
func (res *Result) GrainTable(pool *runpool.Runner) *query.Table {
	res.qtOnce.Do(func() {
		if res.sidecarQuery != nil {
			if t, err := query.DecodeTable(res.sidecarQuery); err == nil && t.NumRows() == len(res.Report.Grains) {
				res.qt = t
				return
			}
		}
		res.qt = QueryTable(res, pool)
	})
	return res.qt
}

// Config shapes a harness run.
type Config struct {
	Cores     int
	Flavor    rts.Flavor
	Scheduler rts.SchedulerKind
	Policy    machine.Policy
	Seed      uint64
	// Baseline enables the extra single-core run used for work deviation.
	Baseline bool
	// WorkDeviationMax overrides the problem threshold (0 = default 2).
	WorkDeviationMax float64
}

// rtsConfig translates a harness Config into a run configuration.
func rtsConfig(inst workloads.Instance, cfg Config) rts.Config {
	return rts.Config{
		Program:   inst.Name(),
		Cores:     cfg.Cores,
		Flavor:    cfg.Flavor,
		Scheduler: cfg.Scheduler,
		Seed:      cfg.Seed,
		Policy:    cfg.Policy,
	}
}

// runOne is Run without the instrumentation recording: it returns the
// instrumented runs it produced so batch callers can record them in
// request order after the whole batch completes. parent, when non-nil,
// roots the analysis phase spans (see analyze).
func runOne(inst workloads.Instance, cfg Config, parent *obs.Span) (*Result, []*InstrumentedRun, error) {
	rcfg := rtsConfig(inst, cfg)

	var iruns []*InstrumentedRun
	var baseline *profile.Trace
	if cfg.Baseline {
		bcfg := rcfg
		bcfg.Cores = 1
		tr, irun, err := simulate(inst, bcfg, runLabel(inst.Name(), cfg, 1, "baseline"))
		if irun != nil {
			iruns = append(iruns, irun)
		}
		if err != nil {
			return nil, iruns, fmt.Errorf("baseline run: %w", err)
		}
		baseline = tr
	}
	tr, irun, err := simulate(inst, rcfg, runLabel(inst.Name(), cfg, cfg.Cores, ""))
	if irun != nil {
		iruns = append(iruns, irun)
	}
	if err != nil {
		return nil, iruns, fmt.Errorf("parallel run: %w", err)
	}
	res := analyze(tr, baseline, cfg.Cores, cfg.WorkDeviationMax, parent, nil)
	if irun != nil {
		irun.Critical = res.Graph.CriticalGrains()
	}
	return res, iruns, nil
}

// Run executes inst under cfg, verifies its computational result, and
// derives the full metric set.
func Run(inst workloads.Instance, cfg Config) (*Result, error) {
	return RunSpan(inst, cfg, nil)
}

// RunSpan is Run with the analysis phase spans rooted under parent — the
// cmds pass their top-level span so a live run's whole pipeline lands in
// one tree. A nil parent (or disabled self-observability) is exactly Run.
func RunSpan(inst workloads.Instance, cfg Config, parent *obs.Span) (*Result, error) {
	res, iruns, err := runOne(inst, cfg, parent)
	record(iruns)
	return res, err
}

// AnalyzeTrace derives the full metric set from an already-recorded trace
// (typically a grain-profile artifact loaded with ggp.ReadFile) without
// executing the simulator. baseline may be nil, in which case work
// deviation is unavailable, exactly as with Config.Baseline off. The
// pipeline is runOne's analysis half verbatim — graph build, metrics,
// highlighting — so a saved artifact analyzes byte-identically to the live
// run it recorded. cfg.Cores <= 0 takes the core count from the trace.
func AnalyzeTrace(tr, baseline *profile.Trace, cfg Config) *Result {
	return AnalyzeTraceSpan(tr, baseline, cfg, nil)
}

// AnalyzeTraceSpan is AnalyzeTrace with the phase spans rooted under
// parent (nil behaves exactly like AnalyzeTrace).
func AnalyzeTraceSpan(tr, baseline *profile.Trace, cfg Config, parent *obs.Span) *Result {
	return AnalyzeTraceOn(nil, tr, baseline, cfg, parent)
}

// AnalyzeTraceOn is AnalyzeTrace running its parallel kernels on an
// explicit pool instead of the shared package-level one set by
// SetParallelism. It is the re-entrant entry point for concurrent callers
// (the grainserved artifact server analyzes independent requests on pools
// it owns): the analysis touches no package-level pool state, so
// concurrent AnalyzeTraceOn calls never race with each other or with a
// CLI-style SetParallelism elsewhere in the process. A nil pool selects
// the shared pool, which is only safe when nothing mutates it
// concurrently. The output is byte-identical at every pool width.
func AnalyzeTraceOn(pool *runpool.Runner, tr, baseline *profile.Trace, cfg Config, parent *obs.Span) *Result {
	cores := cfg.Cores
	if cores <= 0 {
		cores = tr.Cores
	}
	return analyze(tr, baseline, cores, cfg.WorkDeviationMax, parent, pool)
}

// makespanOne is Makespan without the instrumentation recording.
func makespanOne(inst workloads.Instance, cfg Config) (uint64, []*InstrumentedRun, error) {
	rcfg := rtsConfig(inst, cfg)
	tr, irun, err := simulate(inst, rcfg, runLabel(inst.Name(), cfg, cfg.Cores, "makespan"))
	var iruns []*InstrumentedRun
	if irun != nil {
		iruns = append(iruns, irun)
	}
	if err != nil {
		return 0, iruns, err
	}
	return tr.Makespan(), iruns, nil
}

// Makespan runs inst and returns its virtual makespan (verifying results).
func Makespan(inst workloads.Instance, cfg Config) (uint64, error) {
	mk, iruns, err := makespanOne(inst, cfg)
	record(iruns)
	return mk, err
}

// Speedup returns makespan(1 core) / makespan(cores). The two runs are
// independent and execute through the pool.
func Speedup(mk func() workloads.Instance, cfg Config) (float64, error) {
	one := cfg
	one.Cores = 1
	mks, err := makespanBatch([]runReq{
		{mk: mk, cfg: one},
		{mk: mk, cfg: cfg},
	})
	if err != nil {
		return 0, err
	}
	return float64(mks[0]) / float64(mks[1]), nil
}

// table starts a tabwriter for aligned console tables.
func table(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// pct formats a 0..1 fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
