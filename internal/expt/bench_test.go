package expt

import (
	"runtime"
	"testing"
)

// figure1Bench regenerates Figure 1 at the given parallelism with a cold
// memo cache, so every simulation executes for real and the serial/parallel
// pair measures the pool itself.
func figure1Bench(b *testing.B, jobs int) {
	prev := Parallelism()
	SetParallelism(jobs)
	defer SetParallelism(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ResetMemo()
		if _, err := Figure1(nil, 48); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1Serial is the -j 1 half of the speedup pair: all 35 runs
// execute sequentially on the calling goroutine.
func BenchmarkFigure1Serial(b *testing.B) { figure1Bench(b, 1) }

// BenchmarkFigure1Parallel is the -j GOMAXPROCS half: the same 35 runs fan
// out across the worker pool. On an N-core machine the wall-time ratio to
// BenchmarkFigure1Serial approaches min(N, 35); on one core it is ~1.
func BenchmarkFigure1Parallel(b *testing.B) {
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	figure1Bench(b, 0)
}

// BenchmarkMemoizedFigure1 measures the warm-cache path: after the first
// regeneration, every run request is a memo hit and regeneration cost is
// pure analysis.
func BenchmarkMemoizedFigure1(b *testing.B) {
	prev := Parallelism()
	SetParallelism(1)
	defer SetParallelism(prev)
	ResetMemo()
	if _, err := Figure1(nil, 48); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Figure1(nil, 48); err != nil {
			b.Fatal(err)
		}
	}
}
