package expt

import (
	"bytes"
	"fmt"
	"io"
	"testing"
)

// allFigures regenerates every figure and table into w, in the grainbench
// step order.
func allFigures(w io.Writer) error {
	steps := []struct {
		id  string
		run func(io.Writer) error
	}{
		{"1", func(w io.Writer) error { _, err := Figure1(w, 48); return err }},
		{"2", func(w io.Writer) error { _, err := Figure2(w); return err }},
		{"4", func(w io.Writer) error { _, err := Figure4(w); return err }},
		{"5", func(w io.Writer) error { _, err := Figure5(w); return err }},
		{"sort", func(w io.Writer) error { _, err := SortPageTable(w); return err }},
		{"6", func(w io.Writer) error { _, err := Figure6(w); return err }},
		{"7", func(w io.Writer) error { _, err := Figure7(w); return err }},
		{"8", func(w io.Writer) error { _, err := Figure8(w); return err }},
		{"9", func(w io.Writer) error { _, err := Figure9Table1(w); return err }},
		{"11", func(w io.Writer) error { _, err := Figure11(w); return err }},
		{"others", func(w io.Writer) error { _, err := OtherBenchmarks(w); return err }},
	}
	for _, s := range steps {
		if err := s.run(w); err != nil {
			return fmt.Errorf("figure %s: %w", s.id, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// regenerate renders every figure at the given parallelism with a cold memo
// cache and instrumentation footers on, returning the bytes produced and
// the number of simulations that actually executed.
func regenerate(t *testing.T, jobs int) ([]byte, uint64) {
	t.Helper()
	ResetMemo()
	SetParallelism(jobs)
	Instr = &Instrumentation{PrintFooter: true}
	defer func() { Instr = nil }()
	simBefore, _ := MemoStats()
	var buf bytes.Buffer
	if err := allFigures(&buf); err != nil {
		t.Fatalf("-j %d: %v", jobs, err)
	}
	sim, _ := MemoStats()
	return buf.Bytes(), sim - simBefore
}

// TestFiguresDeterministicAcrossParallelism is the engine's headline
// guarantee: the full figure set — tables, sparklines and runtime-metrics
// footers — is byte-identical at -j 1 (strict serial fallback) and -j 8
// (pooled execution), and both sides execute the same number of
// simulations.
func TestFiguresDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every figure twice; skipped in -short")
	}
	prev := Parallelism()
	defer func() { SetParallelism(prev); ResetMemo() }()

	serial, serialSims := regenerate(t, 1)
	parallel, parallelSims := regenerate(t, 8)

	if !bytes.Equal(serial, parallel) {
		d := diffLine(serial, parallel)
		t.Fatalf("-j 1 and -j 8 outputs differ (first differing line %d):\nserial:   %q\nparallel: %q",
			d, lineAt(serial, d), lineAt(parallel, d))
	}
	if serialSims != parallelSims {
		t.Errorf("simulation counts differ: %d at -j 1, %d at -j 8", serialSims, parallelSims)
	}
	if serialSims == 0 {
		t.Error("no simulations executed; memo reset did not take effect")
	}
}

// TestSingleFigureDeterministicShort keeps a fast determinism check in
// -short runs: the Sort table at -j 1 vs -j 8.
func TestSingleFigureDeterministicShort(t *testing.T) {
	prev := Parallelism()
	defer func() { SetParallelism(prev); ResetMemo() }()

	render := func(jobs int) []byte {
		ResetMemo()
		SetParallelism(jobs)
		var buf bytes.Buffer
		if _, err := SortPageTable(&buf); err != nil {
			t.Fatalf("-j %d: %v", jobs, err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("sort table differs:\n-j 1:\n%s\n-j 8:\n%s", serial, parallel)
	}
}

// diffLine returns the 0-based index of the first line where a and b
// differ.
func diffLine(a, b []byte) int {
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(la) && i < len(lb); i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return i
		}
	}
	if len(la) < len(lb) {
		return len(la)
	}
	return len(lb)
}

// lineAt returns line i of text, or "" past the end.
func lineAt(text []byte, i int) string {
	lines := bytes.Split(text, []byte("\n"))
	if i < 0 || i >= len(lines) {
		return ""
	}
	return string(lines[i])
}
