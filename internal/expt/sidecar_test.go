package expt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"graingraph/internal/core"
	"graingraph/internal/export"
	"graingraph/internal/ggp"
	"graingraph/internal/lod"
	"graingraph/internal/query"
	"graingraph/internal/runpool"
	"graingraph/internal/workloads"
)

// analysisOutputs renders every analysis product the CLIs expose —
// summary, highlight report, what-if ranking, windowed level-of-detail
// export, and a query plan over both sources — into one byte stream.
func analysisOutputs(t *testing.T, res *Result, pool *runpool.Runner) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSummary(&buf, res); err != nil {
		t.Fatal(err)
	}
	if err := WriteHighlight(&buf, res); err != nil {
		t.Fatal(err)
	}
	ps, err := WhatIfRank(res, pool, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteWhatIfTable(&buf, res, ps); err != nil {
		t.Fatal(err)
	}
	wg, _, err := res.Lod().Window(lod.WindowOptions{Depth: 2, Top: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := export.DOT(&buf, wg, res.Assessment, export.ViewStructure); err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{
		"from grains | filter exec > 0 | sort exec desc, id asc | topk 10 by exec",
		"from tasks | sort subwork desc, id asc | topk 5 by subwork",
	} {
		plan, err := query.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := WritePlanSpan(&buf, res, plan, pool, nil); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestV2AnalysisByteIdentical is the tentpole's acceptance gate: the same
// run analyzed from the v1 event-stream artifact, from a bare columnar v2
// artifact, and from a v2 artifact with full derived sidecars must render
// every analysis product byte-identically, at serial and pooled
// parallelism alike.
func TestV2AnalysisByteIdentical(t *testing.T) {
	inst, err := workloads.Get("fib", "")
	if err != nil {
		t.Fatal(err)
	}
	live, err := Run(inst, Config{Cores: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	v1Path := filepath.Join(dir, "run.ggp")
	v2Path := filepath.Join(dir, "run.v2.ggp")
	v2ScPath := filepath.Join(dir, "run.v2sc.ggp")
	if err := ggp.WriteFile(v1Path, live.Trace); err != nil {
		t.Fatal(err)
	}
	if err := ggp.WriteFileV2(v2Path, live.Trace, core.Build(live.Trace), nil); err != nil {
		t.Fatal(err)
	}
	if err := UpgradeArtifact(v1Path, v2ScPath, nil); err != nil {
		t.Fatal(err)
	}

	var want []byte
	for _, jobs := range []int{1, 8} {
		pool := runpool.New(jobs)
		var outs [][]byte
		for _, p := range []string{v1Path, v2Path, v2ScPath} {
			dec, err := ggp.DecodeFile(p, pool, nil)
			if err != nil {
				t.Fatalf("jobs=%d %s: %v", jobs, p, err)
			}
			if p == v2ScPath && !dec.HasSidecars() {
				t.Fatalf("upgraded artifact %s decoded without sidecars", p)
			}
			res := AnalyzeDecodedOn(pool, dec, nil, Config{}, nil)
			outs = append(outs, analysisOutputs(t, res, pool))
		}
		for i, out := range outs {
			if want == nil {
				want = out
				continue
			}
			if !bytes.Equal(out, want) {
				d := diffLine(want, out)
				t.Fatalf("jobs=%d artifact #%d: analysis output differs (first differing line %d):\nwant: %q\ngot:  %q",
					jobs, i, d, lineAt(want, d), lineAt(out, d))
			}
		}
	}
}

// TestRecordV2RoundTrip pins the -ggp-v2 recording path: with v2
// recording enabled, the artifact on disk is columnar, replays through
// the same engine path, and analyzes byte-identically to the v1
// recording of the same run.
func TestRecordV2RoundTrip(t *testing.T) {
	defer func() { SetRecordV2(false); resetArtifactDirs() }()
	inst, err := workloads.Get("fib", "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Cores: 4, Seed: 9}

	record := func(v2 bool, dir string) []byte {
		t.Helper()
		ResetMemo()
		ResetArtifactMemo()
		SetRecordV2(v2)
		SetRecordDir(dir)
		defer SetRecordDir("")
		if _, err := Run(inst, cfg); err != nil {
			t.Fatal(err)
		}
		ents, err := os.ReadDir(dir)
		if err != nil || len(ents) != 1 {
			t.Fatalf("expected 1 artifact in %s: %v (%d entries)", dir, err, len(ents))
		}
		raw, err := os.ReadFile(filepath.Join(dir, ents[0].Name()))
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	rawV1 := record(false, t.TempDir())
	rawV2 := record(true, t.TempDir())
	if rawV1[len(ggp.Magic)] != 1 || rawV2[len(ggp.Magic)] != 2 {
		t.Fatalf("recorded versions: v1 byte %d, v2 byte %d", rawV1[len(ggp.Magic)], rawV2[len(ggp.Magic)])
	}

	d1, err := ggp.Decode(rawV1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ggp.Decode(rawV2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := analysisOutputs(t, AnalyzeDecoded(d1, nil, Config{}), nil)
	b := analysisOutputs(t, AnalyzeDecoded(d2, nil, Config{}), nil)
	if !bytes.Equal(a, b) {
		d := diffLine(a, b)
		t.Fatalf("v1/v2 recorded analysis differs (line %d):\nv1: %q\nv2: %q", d, lineAt(a, d), lineAt(b, d))
	}
}
