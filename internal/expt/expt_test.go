package expt

import (
	"bytes"
	"strings"
	"testing"

	"graingraph/internal/rts"
	"graingraph/internal/workloads"
)

func TestRunVerifiesAndAnalyzes(t *testing.T) {
	res, err := Run(workloads.NewFib(workloads.FibParams{N: 18, Cutoff: 5}), Config{Cores: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Graph == nil || res.Report == nil || res.Assessment == nil {
		t.Fatal("incomplete result")
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
}

func TestSpeedupSanity(t *testing.T) {
	mk := func() workloads.Instance { return workloads.NewFib(workloads.FibParams{N: 22, Cutoff: 7}) }
	sp, err := Speedup(mk, Config{Cores: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sp < 2 || sp > 8 {
		t.Errorf("fib 8-core speedup = %.2f, want within (2,8]", sp)
	}
}

func TestFigure2Shape(t *testing.T) {
	res, err := Figure2(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The broken cutoff creates a task per node (+ a search task per point);
	// the fix bounds the graph: paper's Figure 2 story.
	if res.BuggyGrains < 4*res.FixedGrains {
		t.Errorf("buggy grains %d not >> fixed %d", res.BuggyGrains, res.FixedGrains)
	}
	if res.BuggyDepth <= res.FixedDepth {
		t.Errorf("buggy depth %d not deeper than fixed %d", res.BuggyDepth, res.FixedDepth)
	}
	if res.BuggyGrains < 300 || res.BuggyGrains > 1500 {
		t.Errorf("buggy grains = %d, want paper's order (~740)", res.BuggyGrains)
	}
}

func TestFigure4Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := Figure4(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.LoadImbalance <= 1 {
		t.Errorf("timeline shows no imbalance: %.2f", res.LoadImbalance)
	}
	if res.LowIPAffected <= 0.05 {
		t.Errorf("grain graph flags only %.1f%% low-IP grains", 100*res.LowIPAffected)
	}
	if !strings.Contains(buf.String(), "load imbalance") {
		t.Error("render missing")
	}
}

func TestSortPageTableShape(t *testing.T) {
	res, err := SortPageTable(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin page distribution reduces work inflation (paper: 68.5% →
	// 37.1%) and poor utilization (56.1% → 30.1%).
	if res.InflationAfter >= res.InflationBefore {
		t.Errorf("inflation did not drop: %.1f%% -> %.1f%%",
			100*res.InflationBefore, 100*res.InflationAfter)
	}
	if res.InflationBefore < 0.25 {
		t.Errorf("before-inflation %.1f%% too low to be 'widespread'", 100*res.InflationBefore)
	}
	if res.UtilizationAfter > res.UtilizationBefore {
		t.Errorf("poor MHU increased: %.1f%% -> %.1f%%",
			100*res.UtilizationBefore, 100*res.UtilizationAfter)
	}
}

func TestFigure6Shape(t *testing.T) {
	res, err := Figure6(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.InflationAfter >= res.InflationBefore {
		t.Errorf("loop interchange did not reduce inflation: %.1f%% -> %.1f%%",
			100*res.InflationBefore, 100*res.InflationAfter)
	}
	if !strings.Contains(res.CulpritDef, "bmod") {
		t.Errorf("culprit = %q, want bmod (paper pinpoints sparselu.c:246)", res.CulpritDef)
	}
	// bmod grains dominate by creation count.
	if res.TasksPerDef["sparselu.go:246(bmod)"] <= res.TasksPerDef["sparselu.go:229(fwd)"] {
		t.Error("bmod not the most frequent definition")
	}
}

func TestFigure7And8Shape(t *testing.T) {
	f7, err := Figure7(nil)
	if err != nil {
		t.Fatal(err)
	}
	if f7.BeforeLowPB < 0.5 {
		t.Errorf("original FFT low-PB fraction %.1f%%, want most grains", 100*f7.BeforeLowPB)
	}
	if f7.AfterLowPB > 0.2 {
		t.Errorf("optimized FFT still has %.1f%% low-PB grains", 100*f7.AfterLowPB)
	}
	if f7.AfterGrains >= f7.BeforeGrains/10 {
		t.Errorf("cutoffs kept %d of %d grains", f7.AfterGrains, f7.BeforeGrains)
	}
	// The heaviest definition is the fft_aux spawn site (paper: fft.c:4680).
	if len(f7.PerDefBefore) == 0 || !strings.Contains(f7.PerDefBefore[0].Loc.String(), "fft_aux") {
		t.Error("heaviest definition is not fft_aux")
	}

	f8, err := Figure8(nil)
	if err != nil {
		t.Fatal(err)
	}
	if f8.Grains < 3000 || f8.Grains > 8000 {
		t.Errorf("figure 8 grains = %d, want paper's order (4591)", f8.Grains)
	}
	if f8.PoorMHU < 0.4 {
		t.Errorf("poor MHU %.1f%%, want widespread", 100*f8.PoorMHU)
	}
}

func TestFigure9Table1Shape(t *testing.T) {
	res, err := Figure9Table1(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks != 1292 {
		t.Errorf("dominant FPGF chunks = %d, want 1292", res.Chunks)
	}
	if res.LoadBalance48 < 10 {
		t.Errorf("48-core load balance = %.1f, want >> 1 (paper 35.5)", res.LoadBalance48)
	}
	if res.MinCores < 5 || res.MinCores > 10 {
		t.Errorf("bin-packed cores = %d, want ~7", res.MinCores)
	}
	if res.LoadBalanceMin > 1.5 {
		t.Errorf("min-core load balance = %.2f, want ~1 (paper 1.06)", res.LoadBalanceMin)
	}
	if res.LowPB < 0.5 {
		t.Errorf("low-PB fraction %.1f%%, want most grains small", 100*res.LowPB)
	}
	for _, row := range res.Table1 {
		if row.Speedup < 4 || row.Speedup > 12 {
			t.Errorf("%v speedup = %.2f, want ~6.6-7.2", row.Flavor, row.Speedup)
		}
		// 7-core time within 1.5x of 48-core time ("7 cores are sufficient
		// to maintain performance").
		if float64(row.ExecMinCores) > 1.5*float64(row.Exec48Cycles) {
			t.Errorf("%v min-core exec %d not close to 48-core %d",
				row.Flavor, row.ExecMinCores, row.Exec48Cycles)
		}
	}
}

func TestFigure11Shape(t *testing.T) {
	res, err := Figure11(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.BuggyGrainsSCHigh != res.BuggyGrainsSCLow {
		t.Errorf("buggy grain count varies with SC: %d vs %d (hard-coded cutoff should dominate)",
			res.BuggyGrainsSCHigh, res.BuggyGrainsSCLow)
	}
	if res.FixedGrains < 4*res.BuggyGrainsSCLow {
		t.Errorf("fix exposes %d grains vs buggy %d; want much more", res.FixedGrains, res.BuggyGrainsSCLow)
	}
	if res.ScatterCQ <= res.ScatterWS {
		t.Errorf("central queue scatter %.1f%% not above work stealing %.1f%%",
			100*res.ScatterCQ, 100*res.ScatterWS)
	}
	if res.SpeedupCQ >= res.SpeedupWS {
		t.Errorf("central queue speedup %.1f not below work stealing %.1f",
			res.SpeedupCQ, res.SpeedupWS)
	}
}

func TestOtherBenchmarksShape(t *testing.T) {
	res, err := OtherBenchmarks(nil)
	if err != nil {
		t.Fatal(err)
	}
	bs := res.Get("Blackscholes")
	if bs == nil || bs.PoorMHU < 0.5 {
		t.Errorf("Blackscholes poor MHU = %+v, want > 65%% of chunks", bs)
	}
	nq := res.Get("NQueens")
	if nq == nil || nq.Speedup < 20 {
		t.Errorf("NQueens speedup = %+v, want near-linear", nq)
	}
	fib := res.Get("Fibonacci")
	if fib == nil || fib.LowPB < 0.2 {
		t.Errorf("Fibonacci low PB = %+v, want flagged problems", fib)
	}
	uts := res.Get("UTS")
	if uts == nil || uts.LowPB < 0.8 {
		t.Errorf("UTS low PB = %+v, want poor parallel benefit for most grains", uts)
	}
	algn := res.Get("358.botsalgn")
	if algn == nil || algn.Speedup < 30 || algn.LowPB > 0.1 || algn.PoorMHU > 0.1 {
		t.Errorf("358.botsalgn = %+v, want linear scaling with clean metrics", algn)
	}
	fp := res.Get("Floorplan")
	if fp == nil || fp.Speedup < 5 {
		t.Errorf("Floorplan = %+v, want real scaling", fp)
	}
}

func TestFigure1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 1 sweep is expensive")
	}
	res, err := Figure1(nil, 48)
	if err != nil {
		t.Fatal(err)
	}
	for _, program := range []string{"376.kdtree", "Sort", "359.botsspar", "FFT", "Strassen"} {
		before := res.Get(program, "before", rts.FlavorMIR)
		after := res.Get(program, "after", rts.FlavorMIR)
		if before <= 0 || after <= 0 {
			t.Fatalf("%s rows missing: %f %f", program, before, after)
		}
		if after <= before {
			t.Errorf("%s: optimization did not improve speedup: %.1f -> %.1f",
				program, before, after)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 5 lowered-cutoff run is expensive")
	}
	res, err := Figure5(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.LoweredGrains < 10*res.TunedGrains {
		t.Errorf("lowered cutoffs: %d grains vs tuned %d; want explosion", res.LoweredGrains, res.TunedGrains)
	}
	if res.LoweredLowPB < 0.3 {
		t.Errorf("lowered low PB = %.1f%%, want ~48%% (paper)", 100*res.LoweredLowPB)
	}
	if res.TunedLowIP < 0.1 {
		t.Errorf("tuned low IP = %.1f%%, want a visible fraction", 100*res.TunedLowIP)
	}
	// Lowering cutoffs must not be a performance win (paper: "does not
	// improve performance").
	if float64(res.LoweredMakespan) < 0.9*float64(res.TunedMakespan) {
		t.Errorf("lowered cutoffs won: %d vs %d", res.LoweredMakespan, res.TunedMakespan)
	}
}
