package expt

import (
	"fmt"
	"io"

	"graingraph/internal/highlight"
	"graingraph/internal/machine"
	"graingraph/internal/workloads"
)

// lowParallelismProblem and friends keep the highlight bitmask names out of
// signature noise in this package.
func lowParallelismProblem() highlight.Problem  { return highlight.LowParallelism }
func lowBenefitProblem() highlight.Problem      { return highlight.LowParallelBenefit }
func workInflationProblem() highlight.Problem   { return highlight.WorkInflation }
func poorUtilizationProblem() highlight.Problem { return highlight.PoorUtilization }
func highScatterProblem() highlight.Problem     { return highlight.HighScatter }

// Fig5Result is the data behind Figure 5: Sort's non-uniform parallelism
// (a) and the cutoff-lowering experiment that backfires (b).
type Fig5Result struct {
	// (a) well-tuned cutoffs: grains, fraction with instantaneous
	// parallelism below the 48 cores, and the parallelism timeline.
	TunedGrains   int
	TunedLowIP    float64
	TunedTimeline []int
	TunedMakespan uint64
	// (b) lowered cutoffs: many more grains, large low-parallel-benefit
	// fraction, and no performance win.
	LoweredGrains   int
	LoweredLowPB    float64
	LoweredMakespan uint64
	Tuned, Lowered  *Result
}

// Figure5 regenerates Figure 5: Sort's instantaneous-parallelism problem
// and the failed fix of lowering cutoffs.
func Figure5(w io.Writer) (*Fig5Result, error) {
	tunedP := workloads.DefaultSortParams()
	loweredP := tunedP
	loweredP.SeqCutoff = tunedP.SeqCutoff / 128
	loweredP.MergeCutoff = tunedP.MergeCutoff / 128
	results, err := runBatch([]runReq{
		{mk: func() workloads.Instance { return workloads.NewSort(tunedP) },
			cfg: Config{Cores: 48, Seed: 1}, wrap: "figure 5 tuned"},
		{mk: func() workloads.Instance { return workloads.NewSort(loweredP) },
			cfg: Config{Cores: 48, Seed: 1}, wrap: "figure 5 lowered"},
	})
	if err != nil {
		return nil, err
	}
	tuned, lowered := results[0], results[1]
	res := &Fig5Result{
		TunedGrains:     tuned.Trace.NumGrains(),
		TunedLowIP:      tuned.Assessment.Affected(lowParallelismProblem()),
		TunedTimeline:   tuned.Report.Timeline,
		TunedMakespan:   tuned.Trace.Makespan(),
		LoweredGrains:   lowered.Trace.NumGrains(),
		LoweredLowPB:    lowered.Assessment.Affected(lowBenefitProblem()),
		LoweredMakespan: lowered.Trace.Makespan(),
		Tuned:           tuned,
		Lowered:         lowered,
	}
	if w != nil {
		tw := table(w)
		fmt.Fprintln(tw, "Figure 5: Sort — low instantaneous parallelism is incurable")
		fmt.Fprintln(tw, "variant\tgrains\tlow-IP grains\tlow-PB grains\tmakespan")
		fmt.Fprintf(tw, "(a) best cutoffs\t%d\t%s\t-\t%d\n",
			res.TunedGrains, pct(res.TunedLowIP), res.TunedMakespan)
		fmt.Fprintf(tw, "(b) lowered cutoffs\t%d\t-\t%s\t%d\n",
			res.LoweredGrains, pct(res.LoweredLowPB), res.LoweredMakespan)
		tw.Flush()
		fmt.Fprintln(w, "parallelism timeline (a), waxing/waning phases:")
		renderSparkline(w, res.TunedTimeline, 48)
	}
	footer(w)
	return res, nil
}

// renderSparkline prints a compact bar series of parallelism over time.
func renderSparkline(w io.Writer, series []int, cores int) {
	if len(series) == 0 {
		return
	}
	// Downsample to at most 72 buckets.
	buckets := 72
	if len(series) < buckets {
		buckets = len(series)
	}
	marks := []byte(" .:-=+*#%@")
	out := make([]byte, buckets)
	for b := 0; b < buckets; b++ {
		lo := b * len(series) / buckets
		hi := (b + 1) * len(series) / buckets
		if hi == lo {
			hi = lo + 1
		}
		sum := 0
		for i := lo; i < hi; i++ {
			sum += series[i]
		}
		avg := float64(sum) / float64(hi-lo)
		idx := int(avg / float64(cores) * float64(len(marks)-1))
		if idx >= len(marks) {
			idx = len(marks) - 1
		}
		if idx < 0 {
			idx = 0
		}
		out[b] = marks[idx]
	}
	fmt.Fprintf(w, "|%s| (height = parallelism / %d cores)\n", out, cores)
}

// SortPageTableResult reproduces the §4.3.1 optimization table: affected
// grain percentages for work inflation and poor memory-hierarchy
// utilization, before (first-touch, serial init) and after (round-robin
// pages).
type SortPageTableResult struct {
	InflationBefore, InflationAfter     float64
	UtilizationBefore, UtilizationAfter float64
	Before, After                       *Result
}

// SortPageTable regenerates the Sort problem table.
func SortPageTable(w io.Writer) (*SortPageTableResult, error) {
	p := workloads.DefaultSortParams()
	results, err := runBatch([]runReq{
		{mk: func() workloads.Instance { return workloads.NewSort(p) },
			cfg:  Config{Cores: 48, Seed: 1, Policy: machine.FirstTouch, Baseline: true},
			wrap: "sort table before"},
		{mk: func() workloads.Instance { return workloads.NewSort(p) },
			cfg:  Config{Cores: 48, Seed: 1, Policy: machine.RoundRobin, Baseline: true},
			wrap: "sort table after"},
	})
	if err != nil {
		return nil, err
	}
	before, after := results[0], results[1]
	res := &SortPageTableResult{
		InflationBefore:   before.Assessment.Affected(workInflationProblem()),
		InflationAfter:    after.Assessment.Affected(workInflationProblem()),
		UtilizationBefore: before.Assessment.Affected(poorUtilizationProblem()),
		UtilizationAfter:  after.Assessment.Affected(poorUtilizationProblem()),
		Before:            before,
		After:             after,
	}
	if w != nil {
		tw := table(w)
		fmt.Fprintln(tw, "Sort problem table (§4.3.1): affected grains before/after round-robin pages")
		fmt.Fprintln(tw, "problem\tbefore\tafter")
		fmt.Fprintf(tw, "Work Inflation\t%s\t%s\n", pct(res.InflationBefore), pct(res.InflationAfter))
		fmt.Fprintf(tw, "Poor Memory Hierarchy Utilization\t%s\t%s\n",
			pct(res.UtilizationBefore), pct(res.UtilizationAfter))
		tw.Flush()
	}
	footer(w)
	return res, nil
}
