package expt

import (
	"fmt"

	"graingraph/internal/ggp"
	"graingraph/internal/obs"
	"graingraph/internal/profile"
	"graingraph/internal/query"
	"graingraph/internal/runpool"
)

// Columnar-artifact glue: the analysis entry points for ggp.Decoded
// results (which may carry a ready-made graph and derived-artifact
// sidecars), plus the writer side — turning a finished analysis back into
// the sidecars a v2 artifact persists so the next decode skips the builds.

// AnalyzeDecoded analyzes a decoded artifact. When the decode carried a
// materialized graph (columnar v2), the build phase is skipped; sidecar
// payloads riding along are threaded into the result for Lod/GrainTable.
// baseline may be nil, exactly as with AnalyzeTrace. cfg.Cores <= 0 takes
// the core count from the trace.
func AnalyzeDecoded(dec *ggp.Decoded, baseline *profile.Trace, cfg Config) *Result {
	return AnalyzeDecodedOn(nil, dec, baseline, cfg, nil)
}

// AnalyzeDecodedSpan is AnalyzeDecoded with the phase spans rooted under
// parent (nil behaves exactly like AnalyzeDecoded).
func AnalyzeDecodedSpan(dec *ggp.Decoded, baseline *profile.Trace, cfg Config, parent *obs.Span) *Result {
	return AnalyzeDecodedOn(nil, dec, baseline, cfg, parent)
}

// AnalyzeDecodedOn is AnalyzeDecoded running its parallel kernels on an
// explicit pool (nil selects the shared pool, as with AnalyzeTraceOn).
// The graph is taken from the decode result at most once — a second
// analysis of the same Decoded rebuilds from the trace, which produces
// the same graph.
func AnalyzeDecodedOn(pool *runpool.Runner, dec *ggp.Decoded, baseline *profile.Trace, cfg Config, parent *obs.Span) *Result {
	cores := cfg.Cores
	if cores <= 0 {
		cores = dec.Trace.Cores
	}
	res := analyzeWith(dec.Trace, dec.TakeGraph(), baseline, cores, cfg.WorkDeviationMax, parent, pool)
	res.sidecarLod = dec.LodSidecar()
	res.sidecarQuery = dec.QuerySidecar()
	return res
}

// Sidecars derives the persistable sidecar set from a finished analysis:
// the lod summary index and the per-grain query metric table (the
// topological-level sidecar is emitted by ggp.EncodeV2 itself from the
// graph's level structure, which this forces). Writing these alongside
// the graph sections lets the next decode of the artifact skip the
// corresponding builds entirely.
func Sidecars(res *Result, pool *runpool.Runner) []ggp.Sidecar {
	res.Graph.NumLevels() // force levels so EncodeV2 persists them
	return []ggp.Sidecar{
		{Kind: ggp.SidecarLod, Data: res.Lod().Encode()},
		{Kind: ggp.SidecarQuery, Data: query.EncodeTable(res.GrainTable(pool))},
	}
}

// UpgradeArtifact reads the artifact at src (either format), analyzes it,
// and writes a columnar v2 artifact with full sidecars to dst (which may
// equal src; the write is atomic). It is the ggpconv upgrade path and the
// server's warm-restart optimization.
func UpgradeArtifact(src, dst string, pool *runpool.Runner) error {
	dec, err := ggp.DecodeFile(src, pool, nil)
	if err != nil {
		return fmt.Errorf("upgrade artifact: %w", err)
	}
	res := AnalyzeDecodedOn(pool, dec, nil, Config{}, nil)
	if err := ggp.WriteFileV2(dst, res.Trace, res.Graph, Sidecars(res, pool)); err != nil {
		return fmt.Errorf("upgrade artifact: %w", err)
	}
	return nil
}
