package expt

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"graingraph/internal/export"
	"graingraph/internal/ggp"
	"graingraph/internal/lod"
	"graingraph/internal/profile"
	"graingraph/internal/whatif"
	"graingraph/internal/workloads"
)

// smokeGiantTrace simulates the reduced-size giant workload once per test
// process (≈16k grains; the full giant is benchmark-only) and shares the
// immutable trace between tests.
var smokeGiantTrace = sync.OnceValues(func() (*profile.Trace, error) {
	inst, err := workloads.Get("giant", workloads.VariantSmoke)
	if err != nil {
		return nil, err
	}
	res, err := Run(inst, Config{Cores: 48, Seed: 1})
	if err != nil {
		return nil, err
	}
	return res.Trace, nil
})

// TestGiantSmoke is the CI smoke check for the stress workload: the reduced
// giant simulates, verifies, and analyzes end to end on the pool, and its
// size lands in the expected band (full 4-ary trunk to depth 6 = 5461 forced
// nodes plus subcritical tails — far below the ~1M of the default variant,
// far above trivial).
func TestGiantSmoke(t *testing.T) {
	tr, err := smokeGiantTrace()
	if err != nil {
		t.Fatal(err)
	}
	prev := Parallelism()
	defer SetParallelism(prev)
	SetParallelism(8)

	res := AnalyzeTrace(tr, nil, Config{})
	grains := res.Graph.NumGrainNodes()
	if grains < 5_000 || grains > 100_000 {
		t.Errorf("smoke giant produced %d grain nodes, want 5k..100k", grains)
	}
	if res.Report == nil || res.Assessment == nil {
		t.Fatal("analysis did not produce a report and assessment")
	}
}

// artifactAnalysis renders the complete grainview artifact-serving output —
// what-if table, DOT and JSON with attached projections — at the given
// parallelism, from a saved .ggp artifact.
func artifactAnalysis(t *testing.T, path string, jobs int) []byte {
	t.Helper()
	prev := Parallelism()
	defer SetParallelism(prev)
	SetParallelism(jobs)

	tr, err := ggp.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res := AnalyzeTrace(tr, nil, Config{})
	eng := whatif.New(res.Graph, res.Report)
	projections, err := eng.Rank(res.Assessment, Pool(), whatif.RankOptions{TopN: 10})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := whatif.WriteTable(&buf, "what-if", projections); err != nil {
		t.Fatal(err)
	}
	if err := export.DOTWithWhatIfPool(&buf, res.Graph, res.Assessment, export.ViewParallelBenefit, projections, Pool()); err != nil {
		t.Fatal(err)
	}
	if err := export.JSONWithWhatIfPool(&buf, res.Graph, res.Assessment, projections, Pool()); err != nil {
		t.Fatal(err)
	}

	// Windowed level-of-detail view of the same graph: the index build, the
	// window query and its DOT/JSON exports all feed the byte-identity
	// check, so LoD output is pinned deterministic across -j too.
	ix := lod.Build(res.Graph, res.Assessment)
	wg, wstats, err := ix.Window(lod.WindowOptions{Depth: 2, Top: 4})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "window: %+v\n", wstats)
	if err := export.DOTWithWhatIfPool(&buf, wg, res.Assessment, export.ViewParallelBenefit, projections, Pool()); err != nil {
		t.Fatal(err)
	}
	if err := export.JSONWithWhatIfPool(&buf, wg, res.Assessment, projections, Pool()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestArtifactAnalysisDeterministicAcrossParallelism is the tentpole's
// end-to-end guarantee on the artifact path: record a run to a .ggp file,
// then analyze it at -j 1 and -j 8 — graph build, metric kernels,
// level-synchronous critical path, highlighting, what-if ranking and both
// sharded exports must produce byte-identical output.
func TestArtifactAnalysisDeterministicAcrossParallelism(t *testing.T) {
	tr, err := smokeGiantTrace()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "giant-smoke.ggp")
	if err := ggp.WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}

	serial := artifactAnalysis(t, path, 1)
	parallel := artifactAnalysis(t, path, 8)
	if !bytes.Equal(serial, parallel) {
		d := diffLine(serial, parallel)
		t.Fatalf("artifact analysis differs between -j 1 and -j 8 (first differing line %d):\nserial:   %q\nparallel: %q",
			d, lineAt(serial, d), lineAt(parallel, d))
	}
}

// giantTrace simulates the full ~1M-grain giant workload once per process,
// for the analysis benchmark only.
var giantTrace = sync.OnceValues(func() (*profile.Trace, error) {
	inst, err := workloads.Get("giant", workloads.VariantDefault)
	if err != nil {
		return nil, err
	}
	res, err := Run(inst, Config{Cores: 48, Seed: 1})
	if err != nil {
		return nil, err
	}
	return res.Trace, nil
})

// analyzeGiantOnce runs the full artifact-serving analysis path — graph
// build, metric kernels, critical path, highlighting, what-if ranking, DOT
// and JSON export — over the giant trace at the current parallelism.
func analyzeGiantOnce(b *testing.B, tr *profile.Trace) {
	res := AnalyzeTrace(tr, nil, Config{})
	eng := whatif.New(res.Graph, res.Report)
	projections, err := eng.Rank(res.Assessment, Pool(), whatif.RankOptions{TopN: 10})
	if err != nil {
		b.Fatal(err)
	}
	if err := export.DOTWithWhatIfPool(io.Discard, res.Graph, res.Assessment, export.ViewParallelBenefit, projections, Pool()); err != nil {
		b.Fatal(err)
	}
	if err := export.JSONWithWhatIfPool(io.Discard, res.Graph, res.Assessment, projections, Pool()); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRankGiant isolates the what-if ranking phase — candidate
// generation plus every hypothesis evaluation — over the ~1M-grain giant
// graph. This is the phase the sparse delta DP was built for; analysis and
// engine construction run once outside the timed region.
func BenchmarkRankGiant(b *testing.B) {
	tr, err := giantTrace()
	if err != nil {
		b.Fatal(err)
	}
	res := AnalyzeTrace(tr, nil, Config{})
	eng := whatif.New(res.Graph, res.Report)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Rank(res.Assessment, Pool(), whatif.RankOptions{TopN: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalSparse measures a single minimal-footprint hypothesis
// evaluation on the giant graph: scaling one of the deepest task grains
// edits a handful of weights, so the sparse path's cost is the dirty cone,
// not the 3.6M-node graph.
func BenchmarkEvalSparse(b *testing.B) {
	tr, err := giantTrace()
	if err != nil {
		b.Fatal(err)
	}
	res := AnalyzeTrace(tr, nil, Config{})
	eng := whatif.New(res.Graph, res.Report)
	var deep profile.GrainID
	depth := -1
	for _, gm := range res.Report.Grains {
		if d := strings.Count(string(gm.Grain.ID), "."); d > depth && strings.HasPrefix(string(gm.Grain.ID), "R") {
			deep, depth = gm.Grain.ID, d
		}
	}
	h := whatif.ScaleGrain{Grain: deep, Factor: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Eval(h)
	}
	b.StopTimer()
	if st := eng.Stats(); st.Sparse == 0 {
		b.Fatalf("no sparse evaluations recorded (stats %+v) — the benchmark is mis-measuring the fallback path", st)
	}
}

// BenchmarkWindowGiant measures one windowed level-of-detail query over the
// giant graph after the one-time index build — the <100ms interactive
// navigation budget from the paper's workflow.
func BenchmarkWindowGiant(b *testing.B) {
	tr, err := giantTrace()
	if err != nil {
		b.Fatal(err)
	}
	res := AnalyzeTrace(tr, nil, Config{})
	ix := lod.Build(res.Graph, res.Assessment)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.Window(lod.WindowOptions{Depth: 2, Top: 6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeGiant measures the end-to-end analysis path over the
// ~1M-grain giant workload, serial versus pooled. The simulation itself runs
// once outside the timed region; the numbers are recorded in EXPERIMENTS.md.
func BenchmarkAnalyzeGiant(b *testing.B) {
	tr, err := giantTrace()
	if err != nil {
		b.Fatal(err)
	}
	prev := Parallelism()
	defer SetParallelism(prev)

	for _, bench := range []struct {
		name string
		jobs int
	}{
		{"Serial", 1},
		{"Parallel8", 8},
	} {
		b.Run(bench.name, func(b *testing.B) {
			SetParallelism(bench.jobs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				analyzeGiantOnce(b, tr)
			}
		})
	}
}
