package expt

import (
	"io"

	"graingraph/internal/highlight"
	"graingraph/internal/obs"
	"graingraph/internal/query"
	"graingraph/internal/runpool"
)

// queryChunk is the row-chunk grain for building the query source table.
const queryChunk = 1024

// QueryTable builds the "from grains" source of the query grammar for an
// analyzed run: one row per grain, identity and timing columns first, then
// the metric columns the highlight thresholds read (same names, same
// values — ProblemQuery predicates run unchanged over this table):
//
//	id, kind, loc, parent  string  grain identity and source definition
//	depth                  int     spawn depth
//	start, end, exec       int     wall-clock span and execution cycles
//	core                   int     core of the first fragment
//	benefit, workdev, util float   highlight metric ratios
//	parallelism, scatter, stall    int highlight metric counts
func QueryTable(res *Result, pool *runpool.Runner) *query.Table {
	rep := res.Report
	n := len(rep.Grains)
	id := make([]string, n)
	kind := make([]string, n)
	loc := make([]string, n)
	parent := make([]string, n)
	depth := make([]int64, n)
	start := make([]int64, n)
	end := make([]int64, n)
	exec := make([]int64, n)
	core := make([]int64, n)
	runpool.ParallelFor(pool, n, queryChunk, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			g := rep.Grains[i].Grain
			id[i] = string(g.ID)
			kind[i] = g.Kind.String()
			loc[i] = g.Loc.String()
			parent[i] = string(g.Parent)
			depth[i] = int64(g.Depth)
			start[i] = int64(g.Start)
			end[i] = int64(g.End)
			exec[i] = int64(g.Exec)
			core[i] = int64(g.Core)
		}
	})
	t := query.NewTable(n).
		AddStr("id", id).
		AddStr("kind", kind).
		AddStr("loc", loc).
		AddStr("parent", parent).
		AddInt("depth", depth).
		AddInt("start", start).
		AddInt("end", end).
		AddInt("exec", exec).
		AddInt("core", core)
	for _, c := range highlight.MetricTable(rep, pool).Columns() {
		switch c.Kind {
		case query.Float:
			t.AddFloat(c.Name, c.F)
		case query.Int:
			t.AddInt(c.Name, c.I)
		default:
			t.AddStr(c.Name, c.S)
		}
	}
	return t
}

// WriteQuery compiles src as a query plan, runs it against the analyzed
// run, and renders the result table. grainview's -query flag and
// grainserved's /query endpoint both render through here, which is what
// keeps the two surfaces byte-identical for the same artifact and query —
// the CI smoke test diffs them.
func WriteQuery(w io.Writer, res *Result, src string, pool *runpool.Runner) error {
	plan, err := query.Parse(src)
	if err != nil {
		return err
	}
	return WritePlan(w, res, plan, pool)
}

// WritePlan is WriteQuery for a pre-compiled plan (the server parses up
// front so malformed queries fail fast, before cache admission). The
// "grains" source is the per-grain metric table; "tasks" builds the
// level-of-detail summary index on demand and queries its per-task
// subtree aggregates.
func WritePlan(w io.Writer, res *Result, plan *query.Plan, pool *runpool.Runner) error {
	return WritePlanSpan(w, res, plan, pool, nil)
}

// WritePlanSpan is WritePlan with source-table construction and plan
// execution reported as child phase spans under parent (nil behaves
// exactly like WritePlan), so `-phases` attributes the one-time index
// build separately from the per-query execution cost.
func WritePlanSpan(w io.Writer, res *Result, plan *query.Plan, pool *runpool.Runner, parent *obs.Span) error {
	tsp := parent.Child("query:table")
	var t *query.Table
	if plan.Source() == "tasks" {
		t = res.Lod().Table()
	} else {
		t = res.GrainTable(pool)
	}
	tsp.End()
	rsp := parent.Child("query:run")
	out, err := plan.Run(t, pool)
	rsp.End()
	if err != nil {
		return err
	}
	return query.WriteTable(w, out)
}
