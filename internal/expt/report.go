package expt

import (
	"fmt"
	"io"
	"strings"

	"graingraph/internal/obs"
	"graingraph/internal/runpool"
	"graingraph/internal/timeline"
	"graingraph/internal/whatif"
)

// Report writers shared by grainview and grainserved: both surfaces render
// an analyzed artifact through these exact functions, which is what makes
// the server's summary/highlight/what-if payloads byte-identical to the
// CLI's output for the same artifact — the CI smoke test diffs them.

// WriteSummary renders the problem summary and thread timeline for an
// analyzed run: the program header, critical-path share, per-problem grain
// counts, and the conventional-tools-eye view of the same execution.
func WriteSummary(w io.Writer, res *Result) error {
	s := res.Assessment.Summarize()
	tw := table(w)
	fmt.Fprintf(tw, "program\t%s\n", s.Program)
	fmt.Fprintf(tw, "cores\t%d\n", s.Cores)
	fmt.Fprintf(tw, "grains\t%d\n", s.TotalGrains)
	fmt.Fprintf(tw, "makespan\t%d cycles\n", s.Makespan)
	fmt.Fprintf(tw, "critical path\t%d cycles (%.1f%% of makespan)\n",
		s.CriticalLen, 100*float64(s.CriticalLen)/float64(s.Makespan))
	if s.WorstLoopLB > 0 {
		fmt.Fprintf(tw, "worst loop load balance\t%.2f (loop %d)\n", s.WorstLoopLB, s.WorstLoopLBLoop)
	}
	fmt.Fprintln(tw, "\nproblem\tgrains\taffected")
	for _, row := range s.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f%%\n", row.Problem, row.Count, 100*row.Affected)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nthread timeline (what conventional tools show):")
	return timeline.FromTrace(res.Trace).Render(w)
}

// highlightOffenders is how many worst offenders the highlight table names
// per problem, and highlightDefs how many source definitions.
const (
	highlightOffenders = 3
	highlightDefs      = 2
)

// WriteHighlight renders the highlight table: every problem with its grain
// count, affected share, and the worst offending grains (severity in
// parentheses), followed by the heaviest source definitions exhibiting each
// problem — the paper's "sort task definitions by work inflation" triage
// view in one screen. Output is deterministic: offender and definition
// rankings both break ties totally.
func WriteHighlight(w io.Writer, res *Result) error {
	a := res.Assessment
	s := a.Summarize()
	fmt.Fprintf(w, "highlight: %s (%d cores, %d grains)\n", s.Program, s.Cores, s.TotalGrains)
	tw := table(w)
	fmt.Fprintln(tw, "problem\tgrains\taffected\tworst offenders")
	for _, row := range s.Rows {
		offenders := "-"
		if row.Count > 0 {
			var parts []string
			for _, g := range a.TopOffenders(row.Problem, highlightOffenders) {
				sev, _ := a.Severity(g, row.Problem)
				parts = append(parts, fmt.Sprintf("%s(%.2f)", g.Metrics.Grain.ID, sev))
			}
			offenders = strings.Join(parts, " ")
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f%%\t%s\n", row.Problem, row.Count, 100*row.Affected, offenders)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	wroteHeader := false
	tw = table(w)
	for _, row := range s.Rows {
		if row.Count == 0 {
			continue
		}
		for i, ds := range a.ByDefinition(row.Problem) {
			if i >= highlightDefs {
				break
			}
			if ds.Flagged == 0 {
				continue
			}
			if !wroteHeader {
				fmt.Fprintln(w, "\nhot definitions:")
				fmt.Fprintln(tw, "problem\tdefinition\tflagged\texec cycles")
				wroteHeader = true
			}
			fmt.Fprintf(tw, "%s\t%s\t%d/%d\t%d\n",
				row.Problem, ds.Loc, ds.Flagged, ds.Grains, ds.TotalExec)
		}
	}
	return tw.Flush()
}

// WhatIfRank generates and ranks the what-if opportunity table for an
// analyzed run on an explicit pool: candidate hypotheses from the highlight
// top offenders, projected via the incremental critical-path engine —
// exactly grainview's -whatif rank pipeline. parent, when non-nil, roots
// the engine's phase spans.
func WhatIfRank(res *Result, pool *runpool.Runner, parent *obs.Span) ([]whatif.Projection, error) {
	eng := whatif.New(res.Graph, res.Report)
	eng.Obs = parent
	return eng.Rank(res.Assessment, pool, whatif.RankOptions{TopN: 10})
}

// WriteWhatIfTable renders ranked projections with the standard
// "what-if: <program> (<cores> cores)" title grainview prints.
func WriteWhatIfTable(w io.Writer, res *Result, ps []whatif.Projection) error {
	title := fmt.Sprintf("what-if: %s (%d cores)", res.Trace.Program, res.Trace.Cores)
	return whatif.WriteTable(w, title, ps)
}
