package expt

import (
	"bytes"
	"encoding/xml"
	"io"
	"testing"

	"graingraph/internal/core"
	"graingraph/internal/export"
	"graingraph/internal/metrics"
	"graingraph/internal/profile"
	"graingraph/internal/rts"
	"graingraph/internal/workloads"
)

// randomTree builds a seeded irregular task-tree program.
func randomTree(seed uint64) func(rts.Ctx) {
	return func(c rts.Ctx) {
		r := c.Alloc("data", 1<<20)
		var rec func(c rts.Ctx, d int, s uint64)
		rec = func(c rts.Ctx, d int, s uint64) {
			c.Compute(200 + s%3000)
			if s%4 == 0 {
				c.Load(r, int64(s%1000)*64, 4096)
			}
			if d == 0 {
				return
			}
			kids := int(s%4) + 1
			for i := 0; i < kids; i++ {
				c.Spawn(profile.Loc("rand.go", i, "n"), func(c rts.Ctx) {
					rec(c, d-1, s*6364136223846793005+uint64(i)+1)
				})
			}
			c.TaskWait()
			c.Compute(100)
		}
		rec(c, 4, seed)
	}
}

// Property: the whole pipeline — run, build, reduce, analyze, export —
// holds its invariants on arbitrary task trees.
func TestPipelineInvariantsOnRandomTrees(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		tr := rts.Run(rts.Config{Program: "rand", Cores: int(seed*7)%48 + 1, Seed: seed},
			randomTree(seed))
		g := core.Build(tr)
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Reduction conserves total node weight and grain identity.
		rg := core.ReduceAll(g)
		if err := rg.Validate(); err != nil {
			t.Fatalf("seed %d reduced: %v", seed, err)
		}
		var w1, w2 uint64
		for n := core.NodeID(0); n < core.NodeID(g.NumNodes()); n++ {
			w1 += g.Weight(n)
		}
		for n := core.NodeID(0); n < core.NodeID(rg.NumNodes()); n++ {
			w2 += rg.Weight(n)
		}
		if w1 != w2 {
			t.Fatalf("seed %d: reduction changed total weight %d -> %d", seed, w1, w2)
		}
		if rg.NumNodes() >= g.NumNodes() {
			t.Fatalf("seed %d: reduction did not shrink the graph (%d -> %d)",
				seed, g.NumNodes(), rg.NumNodes())
		}

		// Critical path: at least the heaviest grain, at most the makespan.
		rep := metrics.Analyze(tr, g, nil, metrics.Options{})
		var maxExec uint64
		for _, gr := range tr.Grains() {
			if gr.Exec > maxExec {
				maxExec = gr.Exec
			}
		}
		if rep.CriticalPathLength < maxExec {
			t.Errorf("seed %d: critical path %d below heaviest grain %d",
				seed, rep.CriticalPathLength, maxExec)
		}
		if rep.CriticalPathLength > tr.Makespan() {
			t.Errorf("seed %d: critical path %d exceeds makespan %d",
				seed, rep.CriticalPathLength, tr.Makespan())
		}

		// Layout never overlaps two nodes at the same position.
		core.Layout(rg)
		type pos struct{ x, y float64 }
		seen := map[pos]bool{}
		for n := core.NodeID(0); n < core.NodeID(rg.NumNodes()); n++ {
			x, y, _, _ := rg.Geometry(n)
			p := pos{x, y}
			if seen[p] {
				t.Fatalf("seed %d: layout collision at %+v", seed, p)
			}
			seen[p] = true
		}

		// Exports stay well-formed.
		var buf bytes.Buffer
		if err := export.GraphML(&buf, rg, nil, export.ViewStructure); err != nil {
			t.Fatalf("seed %d graphml: %v", seed, err)
		}
		dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
		for {
			if _, err := dec.Token(); err != nil {
				if err == io.EOF {
					break
				}
				t.Fatalf("seed %d: GraphML malformed: %v", seed, err)
			}
		}
	}
}

// Metamorphic property: the pure compute cycles a program charges are
// machine-size invariant — only memory time and scheduling change with the
// core count.
func TestComputeConservedAcrossMachineSizes(t *testing.T) {
	total := func(cores int) uint64 {
		tr := rts.Run(rts.Config{Program: "c", Cores: cores, Seed: 9}, randomTree(123))
		var sum uint64
		for _, task := range tr.Tasks {
			sum += task.TotalCounters().Compute
		}
		return sum
	}
	c1, c8, c48 := total(1), total(8), total(48)
	if c1 != c8 || c8 != c48 {
		t.Errorf("compute cycles vary with machine size: %d / %d / %d", c1, c8, c48)
	}
}

// Metamorphic property: for every registered workload, the computational
// result verifies on 1, 7 and 48 cores, under both schedulers.
func TestAllWorkloadsVerifyEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload × config sweep")
	}
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, cores := range []int{1, 7, 48} {
				for _, sched := range []rts.SchedulerKind{rts.WorkStealing, rts.CentralQueueSched} {
					inst, err := workloads.Get(name, workloads.VariantDefault)
					if err != nil {
						t.Fatal(err)
					}
					rts.Run(rts.Config{Program: inst.Name(), Cores: cores,
						Scheduler: sched, Seed: 3}, inst.Program())
					if err := inst.Verify(); err != nil {
						t.Fatalf("%s on %d cores (%v): %v", name, cores, sched, err)
					}
				}
			}
		})
	}
}

// Work deviation of a compute-only program is exactly 1 at any machine
// size: only memory behaviour may deviate.
func TestWorkDeviationComputeOnlyIsOne(t *testing.T) {
	prog := func(c rts.Ctx) {
		for i := 0; i < 12; i++ {
			c.Spawn(profile.Loc("x.go", 1, "w"), func(c rts.Ctx) { c.Compute(50_000) })
		}
		c.TaskWait()
	}
	base := rts.Run(rts.Config{Program: "w", Cores: 1, Seed: 2}, prog)
	par := rts.Run(rts.Config{Program: "w", Cores: 48, Seed: 2}, prog)
	rep := metrics.Analyze(par, nil, base, metrics.Options{})
	for _, gm := range rep.Grains {
		if gm.Grain.ID == profile.RootID {
			continue
		}
		if gm.WorkDeviation != 1 {
			t.Errorf("grain %s: compute-only deviation = %f, want exactly 1",
				gm.Grain.ID, gm.WorkDeviation)
		}
	}
}

// Grain identity across machine sizes: the buggy kdtree produces the same
// grain ID multiset on 1 and 48 cores (the paper's prerequisite for
// comparing graphs and computing work deviation).
func TestKdTreeGrainIDsMachineSizeInvariant(t *testing.T) {
	ids := func(cores int) map[profile.GrainID]bool {
		inst := workloads.NewKdTree(workloads.DefaultKdTreeParams())
		tr := rts.Run(rts.Config{Program: "kd", Cores: cores, Seed: 4}, inst.Program())
		out := map[profile.GrainID]bool{}
		for _, task := range tr.Tasks {
			out[task.ID] = true
		}
		return out
	}
	a, b := ids(1), ids(48)
	if len(a) != len(b) {
		t.Fatalf("grain counts differ: %d vs %d", len(a), len(b))
	}
	for id := range a {
		if !b[id] {
			t.Fatalf("grain %s missing on 48 cores", id)
		}
	}
}
