package expt

import (
	"bytes"
	"encoding/json"
	"testing"

	"graingraph/internal/export"
	"graingraph/internal/obs"
	"graingraph/internal/profile"
	"graingraph/internal/rts"
	"graingraph/internal/workloads"
)

// selfProfileJSON analyzes tr at parallelism j with self-observability on
// and returns the -selfprofile document bytes.
func selfProfileJSON(t *testing.T, tr *profile.Trace, j int) []byte {
	t.Helper()
	SetParallelism(j)
	p := obs.New()
	p.TrackMem = false // alloc deltas are scheduling-dependent; timings are zeroed anyway
	EnableSelfProfile(p)
	defer EnableSelfProfile(nil)

	res := AnalyzeTrace(tr, nil, Config{})
	if res == nil || res.Graph.NumNodes() == 0 {
		t.Fatal("analysis produced no graph")
	}
	prof, err := SelfProfile()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := export.SelfProfile(&buf, prof); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// normalizeSelfProfile strips everything timing- and scheduling-dependent
// from a self-profile document: event timestamps/durations and allocation
// args are zeroed, and the runpool section — whose worker breakdown depends
// on -j by construction — is dropped. What remains is the span structure:
// names, nesting (via track assignment), event order.
func normalizeSelfProfile(t *testing.T, raw []byte) []byte {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("self-profile is not valid JSON: %v", err)
	}
	if od, ok := doc["otherData"].(map[string]any); ok {
		delete(od, "runpool")
	}
	events, _ := doc["traceEvents"].([]any)
	for _, e := range events {
		ev, ok := e.(map[string]any)
		if !ok {
			continue
		}
		delete(ev, "ts")
		delete(ev, "dur")
		delete(ev, "args")
	}
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSelfProfileDeterministicAcrossParallelism pins the observability
// determinism contract: the same artifact analyzed at -j 1 and -j 8
// produces a -selfprofile whose structure — every span name, nesting and
// canonical order — is byte-identical once timings (and the inherently
// -j-dependent worker telemetry) are zeroed out.
func TestSelfProfileDeterministicAcrossParallelism(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)

	inst, err := workloads.Get("fib", "")
	if err != nil {
		t.Fatal(err)
	}
	tr := rts.Run(rts.Config{Program: inst.Name(), Cores: 8, Seed: 1}, inst.Program())

	serial := selfProfileJSON(t, tr, 1)
	parallel := selfProfileJSON(t, tr, 8)

	ns, np := normalizeSelfProfile(t, serial), normalizeSelfProfile(t, parallel)
	if !bytes.Equal(ns, np) {
		t.Fatalf("self-profile structure differs between -j 1 and -j 8:\n-j1: %s\n-j8: %s", ns, np)
	}

	// The structure must actually cover the pipeline: analyze root plus
	// the per-kernel children.
	for _, want := range []string{
		`"analyze:fib`, `"build"`, `"metric:rows"`, `"metric:critical"`,
		`"levels"`, `"metric:parallelism"`, `"metric:scatter"`,
		`"metric:loadbalance"`, `"highlight"`,
	} {
		if !bytes.Contains(ns, []byte(want)) {
			t.Errorf("self-profile missing span %s", want)
		}
	}
}

// TestSelfProfileMemoCounters pins that the registry reports the engine's
// memoization caches: a run executed twice hits the simulation memo, and
// the counters land in the pool snapshot.
func TestSelfProfileMemoCounters(t *testing.T) {
	prev := Parallelism()
	defer func() { SetParallelism(prev); EnableSelfProfile(nil) }()

	ResetMemo()
	SetParallelism(1)
	EnableSelfProfile(obs.New())

	inst, err := workloads.Get("fib", "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Cores: 8, Seed: 1}
	if _, err := Run(inst, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(inst, cfg); err != nil {
		t.Fatal(err)
	}

	prof, err := SelfProfile()
	if err != nil {
		t.Fatal(err)
	}
	if prof == nil || prof.Pool == nil {
		t.Fatal("self-profile has no pool telemetry")
	}
	var sim *obs.MemoCounters
	for i := range prof.Pool.Memos {
		if prof.Pool.Memos[i].Name == "simulate" {
			sim = &prof.Pool.Memos[i]
		}
	}
	if sim == nil {
		t.Fatalf("no simulate memo counters in %+v", prof.Pool.Memos)
	}
	if sim.Hits < 1 || sim.Misses < 1 {
		t.Errorf("simulate memo counters = %+v, want at least one hit and one miss", *sim)
	}
}
