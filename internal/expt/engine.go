// The experiment engine: every simulated run in this package flows through
// simulate(), which layers two mechanisms over rts.Run:
//
//   - A content-addressed memoization cache. Runs are keyed by (workload
//     content key, machine config, runtime knobs, instrumentation mode), so
//     a run shared between figures — the default Sort/48-core/seed-1 run
//     appears in Figure 4, Figure 5 and the §4.3.1 table — executes exactly
//     once per process, with single-flight semantics under concurrency.
//     The simulator is deterministic, so a cached trace is bit-identical to
//     the rerun it replaces.
//
//   - A bounded worker pool (internal/runpool). Figures batch their
//     independent runs through runBatch/makespanBatch, which fan out across
//     SetParallelism workers and assemble results strictly by submission
//     index — never by completion order — so figure output is byte-identical
//     for every -j, including the serial fallback -j 1.
//
// Each simulation is fully self-contained: rts.Run builds a private
// topology, memory, cache hierarchy and RNG per run, workload instances are
// constructed per request inside the worker that runs them, and the shared
// trace objects handed out by the cache are immutable after finalization
// (profile.Trace's lazy indexes are built under sync.Once).
package expt

import (
	"fmt"
	"sync"

	"graingraph/internal/profile"
	"graingraph/internal/rts"
	"graingraph/internal/runpool"
	"graingraph/internal/trace"
	"graingraph/internal/workloads"
)

var (
	poolMu sync.Mutex
	pool   = runpool.New(1) // serial by default; cmds and tests opt in to -j
)

// simMemo caches verified simulation runs for the life of the process.
var simMemo = runpool.NewCache[*simResult]()

// SetParallelism bounds how many simulations run concurrently: the -j flag.
// j == 1 is the strict serial fallback (runs execute in submission order on
// the calling goroutine); j <= 0 selects GOMAXPROCS.
//
// SetParallelism is a CLI-only convenience: it swaps the shared
// package-level pool, so it must run once at startup, before regenerating
// figures — never concurrently with analyses. Concurrent callers (servers,
// parallel tests) must not touch it; they pass an explicit pool to
// AnalyzeTraceOn (and to the pool-taking what-if/export entry points)
// instead, which leaves the shared pool alone. A call racing with in-flight
// work would strand chunked kernels mid-fan-out on the swapped-out pool.
func SetParallelism(j int) {
	poolMu.Lock()
	if j == 1 {
		pool = runpool.New(1)
	} else {
		pool = runpool.New(j)
	}
	p := pool
	poolMu.Unlock()
	// Keep pool telemetry attached across pool swaps (worker slots beyond
	// the telemetry's allocation clamp into the last slot).
	p.SetTelemetry(selfTelemetry())
}

// Parallelism returns the current worker bound.
func Parallelism() int {
	poolMu.Lock()
	defer poolMu.Unlock()
	return pool.Workers()
}

func currentPool() *runpool.Runner {
	poolMu.Lock()
	defer poolMu.Unlock()
	return pool
}

// Pool returns the experiment worker pool itself, for callers that drive
// pool-aware stages outside this package (what-if evaluation, sharded
// export) at the same -j the analyses ran with.
func Pool() *runpool.Runner { return currentPool() }

// ResetMemo drops every cached simulation. Benchmarks use it so that
// repeated regenerations measure real work, and the determinism tests use
// it so both sides of a -j comparison execute their runs for real.
func ResetMemo() { simMemo.Reset() }

// MemoStats reports how many simulations actually executed and how many
// requests were served from the cache since process start or the last
// ResetMemo.
func MemoStats() (simulated, memoized uint64) { return simMemo.Stats() }

// simResult is one verified simulation's immutable artifact set.
type simResult struct {
	trace   *profile.Trace
	metrics *trace.Metrics
	events  []trace.Event
	dropped uint64
}

// simKey content-addresses a run request, covering the workload's full
// input configuration and every runtime knob that shapes the trace. The
// second return is false when the request cannot be fingerprinted (workload
// without a content key, or a caller-supplied topology/sink we cannot
// hash); such runs execute unconditionally.
func simKey(inst workloads.Instance, rcfg rts.Config) (runpool.Key, bool) {
	keyed, ok := inst.(workloads.Keyed)
	if !ok || rcfg.Topology != nil || rcfg.Trace != nil || rcfg.Metrics != nil {
		return runpool.Key{}, false
	}
	instr := "plain"
	if ins := Instr; ins != nil {
		// Cached artifacts include the metrics registry and event stream, so
		// the instrumentation mode is part of the address.
		instr = fmt.Sprintf("instr|events=%v|cap=%d", ins.CaptureEvents, ins.Capacity)
	}
	cfgSig := fmt.Sprintf("%s|c%d|%v|%v|%v|t%d|s%d|%+v|%+v|%+v",
		rcfg.Program, rcfg.Cores, rcfg.Flavor, rcfg.Scheduler, rcfg.Policy,
		rcfg.ThrottleLimit, rcfg.Seed, rcfg.Cache, rcfg.Costs, rcfg.RootLoc)
	return runpool.KeyOf(keyed.Key(), cfgSig, instr), true
}

// simulate executes (or recalls) one verified simulation run. On a memo hit
// the workload does not re-execute — the cached trace is identical to what
// a rerun would produce, and verification already passed (or its error is
// replayed). The returned InstrumentedRun (nil when instrumentation is off)
// is a fresh per-call record carrying this call's label, so footers and
// trace exports list every request in submission order whether or not it
// was deduplicated.
func simulate(inst workloads.Instance, rcfg rts.Config, label string) (*profile.Trace, *InstrumentedRun, error) {
	ins := Instr
	key, keyed := simKey(inst, rcfg)
	recDir, repDir := artifactDirs()

	// Replay: a saved artifact stands in for the simulation. The recorded
	// run already passed workload verification, and the reader CRC-checks
	// and revalidates the trace, so the replayed trace analyzes
	// byte-identically to the live path with no re-execution.
	if keyed && ins == nil && repDir != "" {
		if tr, found, err := loadArtifact(repDir, key); err != nil {
			return nil, nil, err
		} else if found {
			return tr, nil, nil
		}
	}

	compute := func() (*simResult, error) {
		sp := SelfProfiler().Begin("simulate:" + label)
		defer sp.End()
		runCfg := rcfg
		r := &simResult{}
		var sink *trace.RingSink
		if ins != nil {
			r.metrics = trace.NewMetrics()
			runCfg.Metrics = r.metrics
			if ins.CaptureEvents {
				sink = trace.NewRingSink(ins.Capacity)
				runCfg.Trace = sink
			}
		}
		r.trace = rts.Run(runCfg, inst.Program())
		if sink != nil {
			r.events = sink.Events()
			r.dropped = sink.Dropped()
		}
		if err := inst.Verify(); err != nil {
			return r, err
		}
		if keyed && ins == nil && recDir != "" {
			rsp := sp.Child("record:artifact")
			werr := recordArtifact(recDir, key, r.trace)
			rsp.End()
			if werr != nil {
				return r, werr
			}
		}
		return r, nil
	}

	var (
		r   *simResult
		err error
	)
	if keyed {
		r, err, _ = simMemo.Do(key, compute)
	} else {
		r, err = compute()
	}
	if r == nil {
		return nil, nil, err
	}
	var irun *InstrumentedRun
	if ins != nil {
		irun = &InstrumentedRun{
			Label: label, Trace: r.trace, Metrics: r.metrics,
			Events: r.events, Dropped: r.dropped,
		}
	}
	return r.trace, irun, err
}

// runReq is one simulation request in a figure's batch: a workload factory
// (the instance is constructed inside the worker that runs it, keeping
// mutable workload state goroutine-local), a run configuration, and an
// error-context prefix.
type runReq struct {
	mk   func() workloads.Instance
	cfg  Config
	wrap string
}

func wrapErr(wrap string, err error) error {
	if err == nil || wrap == "" {
		return err
	}
	return fmt.Errorf("%s: %w", wrap, err)
}

// runBatch performs the requests' full analyses (expt.Run each) across the
// pool. Results are ordered by request index; instrumented runs are
// recorded in request order after the whole batch completes, so the
// observability stream is identical at every parallelism level. All
// requests execute even if some fail; the returned error is the failing
// request with the lowest index.
func runBatch(reqs []runReq) ([]*Result, error) {
	type out struct {
		res   *Result
		iruns []*InstrumentedRun
	}
	outs, err := runpool.Map(currentPool(), len(reqs), func(i int) (out, error) {
		res, iruns, rerr := runOne(reqs[i].mk(), reqs[i].cfg, nil)
		return out{res, iruns}, wrapErr(reqs[i].wrap, rerr)
	})
	results := make([]*Result, len(outs))
	for i, o := range outs {
		record(o.iruns)
		results[i] = o.res
	}
	return results, err
}

// makespanBatch performs the requests as makespan measurements (expt.
// Makespan each) across the pool, with the same ordering guarantees as
// runBatch.
func makespanBatch(reqs []runReq) ([]uint64, error) {
	type out struct {
		mk    uint64
		iruns []*InstrumentedRun
	}
	outs, err := runpool.Map(currentPool(), len(reqs), func(i int) (out, error) {
		mk, iruns, rerr := makespanOne(reqs[i].mk(), reqs[i].cfg)
		return out{mk, iruns}, wrapErr(reqs[i].wrap, rerr)
	})
	makespans := make([]uint64, len(outs))
	for i, o := range outs {
		record(o.iruns)
		makespans[i] = o.mk
	}
	return makespans, err
}
