package expt

import (
	"fmt"
	"io"

	"graingraph/internal/workloads"
)

// OtherRow summarizes one §4.3.6 program's metric profile.
type OtherRow struct {
	Program       string
	Grains        int
	Speedup       float64
	LowPB         float64
	PoorMHU       float64
	WorkInflation float64
	LowIP         float64
}

// OthersResult is the §4.3.6 summary ("Other benchmarks").
type OthersResult struct {
	Rows []OtherRow
}

// Get returns a program's row.
func (o *OthersResult) Get(program string) *OtherRow {
	for i := range o.Rows {
		if o.Rows[i].Program == program {
			return &o.Rows[i]
		}
	}
	return nil
}

// OtherBenchmarks regenerates the §4.3.6 summaries: Blackscholes (poor MHU
// and low PB on many chunks despite good speedup), NQueens (clean, linear),
// Fibonacci (work-deviation and parallel-benefit problems), and UTS (poor
// parallel benefit for most grains).
func OtherBenchmarks(w io.Writer) (*OthersResult, error) {
	cases := []struct {
		program  string
		baseline bool
		mk       func() workloads.Instance
	}{
		{"Blackscholes", false, func() workloads.Instance {
			return workloads.NewBlackscholes(workloads.DefaultBlackscholesParams())
		}},
		{"NQueens", false, func() workloads.Instance {
			return workloads.NewNQueens(workloads.DefaultNQueensParams())
		}},
		{"Fibonacci", true, func() workloads.Instance {
			return workloads.NewFib(workloads.DefaultFibParams())
		}},
		{"UTS", false, func() workloads.Instance {
			return workloads.NewUTS(workloads.DefaultUTSParams())
		}},
		{"358.botsalgn", false, func() workloads.Instance {
			return workloads.NewAlignment(workloads.DefaultAlignmentParams())
		}},
		{"Floorplan", false, func() workloads.Instance {
			return workloads.NewFloorplan(workloads.DefaultFloorplanParams())
		}},
	}
	res := &OthersResult{}

	// All six analyses in one batch, then the twelve speedup makespans in a
	// second (each program's 48-core makespan memo-hits its analysis run
	// above — the default-config programs share a content address).
	var runReqs, mkReqs []runReq
	for _, cs := range cases {
		runReqs = append(runReqs, runReq{
			mk:   cs.mk,
			cfg:  Config{Cores: 48, Seed: 1, Baseline: cs.baseline},
			wrap: fmt.Sprintf("others %s", cs.program),
		})
		wrap := fmt.Sprintf("others %s speedup", cs.program)
		mkReqs = append(mkReqs,
			runReq{mk: cs.mk, cfg: Config{Cores: 1, Seed: 1}, wrap: wrap},
			runReq{mk: cs.mk, cfg: Config{Cores: 48, Seed: 1}, wrap: wrap},
		)
	}
	results, err := runBatch(runReqs)
	if err != nil {
		return nil, err
	}
	mks, err := makespanBatch(mkReqs)
	if err != nil {
		return nil, err
	}
	for i, cs := range cases {
		r := results[i]
		res.Rows = append(res.Rows, OtherRow{
			Program:       cs.program,
			Grains:        r.Trace.NumGrains(),
			Speedup:       float64(mks[2*i]) / float64(mks[2*i+1]),
			LowPB:         r.Assessment.Affected(lowBenefitProblem()),
			PoorMHU:       r.Assessment.Affected(poorUtilizationProblem()),
			WorkInflation: r.Assessment.Affected(workInflationProblem()),
			LowIP:         r.Assessment.Affected(lowParallelismProblem()),
		})
	}
	if w != nil {
		tw := table(w)
		fmt.Fprintln(tw, "§4.3.6 Other benchmarks (48 cores)")
		fmt.Fprintln(tw, "program\tgrains\tspeedup\tlow PB\tpoor MHU\twork inflation\tlow IP")
		for _, row := range res.Rows {
			fmt.Fprintf(tw, "%s\t%d\t%.1f\t%s\t%s\t%s\t%s\n", row.Program, row.Grains,
				row.Speedup, pct(row.LowPB), pct(row.PoorMHU),
				pct(row.WorkInflation), pct(row.LowIP))
		}
		tw.Flush()
	}
	footer(w)
	return res, nil
}
