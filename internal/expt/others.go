package expt

import (
	"fmt"
	"io"

	"graingraph/internal/workloads"
)

// OtherRow summarizes one §4.3.6 program's metric profile.
type OtherRow struct {
	Program       string
	Grains        int
	Speedup       float64
	LowPB         float64
	PoorMHU       float64
	WorkInflation float64
	LowIP         float64
}

// OthersResult is the §4.3.6 summary ("Other benchmarks").
type OthersResult struct {
	Rows []OtherRow
}

// Get returns a program's row.
func (o *OthersResult) Get(program string) *OtherRow {
	for i := range o.Rows {
		if o.Rows[i].Program == program {
			return &o.Rows[i]
		}
	}
	return nil
}

// OtherBenchmarks regenerates the §4.3.6 summaries: Blackscholes (poor MHU
// and low PB on many chunks despite good speedup), NQueens (clean, linear),
// Fibonacci (work-deviation and parallel-benefit problems), and UTS (poor
// parallel benefit for most grains).
func OtherBenchmarks(w io.Writer) (*OthersResult, error) {
	cases := []struct {
		program  string
		baseline bool
		mk       func() workloads.Instance
	}{
		{"Blackscholes", false, func() workloads.Instance {
			return workloads.NewBlackscholes(workloads.DefaultBlackscholesParams())
		}},
		{"NQueens", false, func() workloads.Instance {
			return workloads.NewNQueens(workloads.DefaultNQueensParams())
		}},
		{"Fibonacci", true, func() workloads.Instance {
			return workloads.NewFib(workloads.DefaultFibParams())
		}},
		{"UTS", false, func() workloads.Instance {
			return workloads.NewUTS(workloads.DefaultUTSParams())
		}},
		{"358.botsalgn", false, func() workloads.Instance {
			return workloads.NewAlignment(workloads.DefaultAlignmentParams())
		}},
		{"Floorplan", false, func() workloads.Instance {
			return workloads.NewFloorplan(workloads.DefaultFloorplanParams())
		}},
	}
	res := &OthersResult{}
	for _, cs := range cases {
		r, err := Run(cs.mk(), Config{Cores: 48, Seed: 1, Baseline: cs.baseline})
		if err != nil {
			return nil, fmt.Errorf("others %s: %w", cs.program, err)
		}
		sp, err := Speedup(cs.mk, Config{Cores: 48, Seed: 1})
		if err != nil {
			return nil, fmt.Errorf("others %s speedup: %w", cs.program, err)
		}
		res.Rows = append(res.Rows, OtherRow{
			Program:       cs.program,
			Grains:        r.Trace.NumGrains(),
			Speedup:       sp,
			LowPB:         r.Assessment.Affected(lowBenefitProblem()),
			PoorMHU:       r.Assessment.Affected(poorUtilizationProblem()),
			WorkInflation: r.Assessment.Affected(workInflationProblem()),
			LowIP:         r.Assessment.Affected(lowParallelismProblem()),
		})
	}
	if w != nil {
		tw := table(w)
		fmt.Fprintln(tw, "§4.3.6 Other benchmarks (48 cores)")
		fmt.Fprintln(tw, "program\tgrains\tspeedup\tlow PB\tpoor MHU\twork inflation\tlow IP")
		for _, row := range res.Rows {
			fmt.Fprintf(tw, "%s\t%d\t%.1f\t%s\t%s\t%s\t%s\n", row.Program, row.Grains,
				row.Speedup, pct(row.LowPB), pct(row.PoorMHU),
				pct(row.WorkInflation), pct(row.LowIP))
		}
		tw.Flush()
	}
	footer(w)
	return res, nil
}
