package expt

import (
	"fmt"
	"io"

	"graingraph/internal/rts"
	"graingraph/internal/workloads"
)

// Fig11Result is the data behind Figure 11: Strassen's hard-coded cutoff
// flattens the graph regardless of SC (a); removing it exposes parallelism
// but surfaces poor memory-hierarchy utilization (b); and scheduler choice
// governs sibling scatter (c vs d).
type Fig11Result struct {
	// (a) buggy grain counts are identical across SC values.
	BuggyGrainsSCHigh, BuggyGrainsSCLow int
	// (b) fixed variant: grains and poor-MHU fraction.
	FixedGrains  int
	FixedPoorMHU float64
	// (c/d) scatter under work-stealing vs central queue + speedups.
	ScatterWS, ScatterCQ   float64 // affected fraction (beyond one socket)
	SpeedupWS, SpeedupCQ   float64
	Buggy, Fixed, CQResult *Result
}

// Figure11 regenerates Figure 11.
func Figure11(w io.Writer) (*Fig11Result, error) {
	res := &Fig11Result{}

	// (a) the hard-coded cutoff ignores SC.
	pHigh := workloads.DefaultStrassenParams()
	pHigh.SC = pHigh.N / 4
	buggyHigh, err := Run(workloads.NewStrassen(pHigh), Config{Cores: 48, Seed: 1})
	if err != nil {
		return nil, fmt.Errorf("figure 11a high SC: %w", err)
	}
	pLow := workloads.DefaultStrassenParams()
	pLow.SC = 8
	buggyLow, err := Run(workloads.NewStrassen(pLow), Config{Cores: 48, Seed: 1})
	if err != nil {
		return nil, fmt.Errorf("figure 11a low SC: %w", err)
	}
	res.BuggyGrainsSCHigh = buggyHigh.Trace.NumGrains()
	res.BuggyGrainsSCLow = buggyLow.Trace.NumGrains()
	res.Buggy = buggyLow

	// (b) fix exposes parallelism; poor MHU comes to the fore.
	fixed, err := Run(workloads.NewStrassen(workloads.FixedStrassenParams()), Config{Cores: 48, Seed: 1})
	if err != nil {
		return nil, fmt.Errorf("figure 11b: %w", err)
	}
	res.FixedGrains = fixed.Trace.NumGrains()
	res.FixedPoorMHU = fixed.Assessment.Affected(poorUtilizationProblem())
	res.Fixed = fixed
	res.ScatterWS = fixed.Assessment.Affected(highScatterProblem())

	// (d) central queue scatters siblings and hurts speedup.
	cq, err := Run(workloads.NewStrassen(workloads.FixedStrassenParams()), Config{
		Cores: 48, Seed: 1, Scheduler: rts.CentralQueueSched,
	})
	if err != nil {
		return nil, fmt.Errorf("figure 11d: %w", err)
	}
	res.ScatterCQ = cq.Assessment.Affected(highScatterProblem())
	res.CQResult = cq

	mkFixed := func() workloads.Instance {
		return workloads.NewStrassen(workloads.FixedStrassenParams())
	}
	res.SpeedupWS, err = Speedup(mkFixed, Config{Cores: 48, Seed: 1})
	if err != nil {
		return nil, err
	}
	res.SpeedupCQ, err = Speedup(mkFixed, Config{Cores: 48, Seed: 1, Scheduler: rts.CentralQueueSched})
	if err != nil {
		return nil, err
	}

	if w != nil {
		tw := table(w)
		fmt.Fprintln(tw, "Figure 11: Strassen")
		fmt.Fprintf(tw, "(a) buggy grains, SC=%d\t%d\n", pHigh.SC, res.BuggyGrainsSCHigh)
		fmt.Fprintf(tw, "(a) buggy grains, SC=%d\t%d\t(cutoff has no effect)\n", pLow.SC, res.BuggyGrainsSCLow)
		fmt.Fprintf(tw, "(b) fixed grains\t%d\n", res.FixedGrains)
		fmt.Fprintf(tw, "(b) fixed poor-MHU grains\t%s\n", pct(res.FixedPoorMHU))
		fmt.Fprintf(tw, "(c) scattered grains, work-stealing\t%s\t(speedup %.1f)\n", pct(res.ScatterWS), res.SpeedupWS)
		fmt.Fprintf(tw, "(d) scattered grains, central queue\t%s\t(speedup %.1f)\n", pct(res.ScatterCQ), res.SpeedupCQ)
		tw.Flush()
	}
	footer(w)
	return res, nil
}
