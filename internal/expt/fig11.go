package expt

import (
	"fmt"
	"io"

	"graingraph/internal/rts"
	"graingraph/internal/workloads"
)

// Fig11Result is the data behind Figure 11: Strassen's hard-coded cutoff
// flattens the graph regardless of SC (a); removing it exposes parallelism
// but surfaces poor memory-hierarchy utilization (b); and scheduler choice
// governs sibling scatter (c vs d).
type Fig11Result struct {
	// (a) buggy grain counts are identical across SC values.
	BuggyGrainsSCHigh, BuggyGrainsSCLow int
	// (b) fixed variant: grains and poor-MHU fraction.
	FixedGrains  int
	FixedPoorMHU float64
	// (c/d) scatter under work-stealing vs central queue + speedups.
	ScatterWS, ScatterCQ   float64 // affected fraction (beyond one socket)
	SpeedupWS, SpeedupCQ   float64
	Buggy, Fixed, CQResult *Result
}

// Figure11 regenerates Figure 11.
func Figure11(w io.Writer) (*Fig11Result, error) {
	res := &Fig11Result{}

	pHigh := workloads.DefaultStrassenParams()
	pHigh.SC = pHigh.N / 4
	pLow := workloads.DefaultStrassenParams()
	pLow.SC = 8
	mkFixed := func() workloads.Instance {
		return workloads.NewStrassen(workloads.FixedStrassenParams())
	}
	wsCfg := Config{Cores: 48, Seed: 1}
	cqCfg := Config{Cores: 48, Seed: 1, Scheduler: rts.CentralQueueSched}

	// (a) buggy at two SC values, (b) fixed, (d) fixed on the central
	// queue — four independent analyses, one batch.
	results, err := runBatch([]runReq{
		{mk: func() workloads.Instance { return workloads.NewStrassen(pHigh) },
			cfg: wsCfg, wrap: "figure 11a high SC"},
		{mk: func() workloads.Instance { return workloads.NewStrassen(pLow) },
			cfg: wsCfg, wrap: "figure 11a low SC"},
		{mk: mkFixed, cfg: wsCfg, wrap: "figure 11b"},
		{mk: mkFixed, cfg: cqCfg, wrap: "figure 11d"},
	})
	if err != nil {
		return nil, err
	}
	buggyHigh, buggyLow, fixed, cq := results[0], results[1], results[2], results[3]

	res.BuggyGrainsSCHigh = buggyHigh.Trace.NumGrains()
	res.BuggyGrainsSCLow = buggyLow.Trace.NumGrains()
	res.Buggy = buggyLow
	res.FixedGrains = fixed.Trace.NumGrains()
	res.FixedPoorMHU = fixed.Assessment.Affected(poorUtilizationProblem())
	res.Fixed = fixed
	res.ScatterWS = fixed.Assessment.Affected(highScatterProblem())
	res.ScatterCQ = cq.Assessment.Affected(highScatterProblem())
	res.CQResult = cq

	// (c/d) speedups: the two 48-core makespans are memo hits from the runs
	// above; only the 1-core references execute.
	oneWS, oneCQ := wsCfg, cqCfg
	oneWS.Cores, oneCQ.Cores = 1, 1
	mks, err := makespanBatch([]runReq{
		{mk: mkFixed, cfg: oneWS, wrap: "figure 11c"},
		{mk: mkFixed, cfg: wsCfg, wrap: "figure 11c"},
		{mk: mkFixed, cfg: oneCQ, wrap: "figure 11d speedup"},
		{mk: mkFixed, cfg: cqCfg, wrap: "figure 11d speedup"},
	})
	if err != nil {
		return nil, err
	}
	res.SpeedupWS = float64(mks[0]) / float64(mks[1])
	res.SpeedupCQ = float64(mks[2]) / float64(mks[3])

	if w != nil {
		tw := table(w)
		fmt.Fprintln(tw, "Figure 11: Strassen")
		fmt.Fprintf(tw, "(a) buggy grains, SC=%d\t%d\n", pHigh.SC, res.BuggyGrainsSCHigh)
		fmt.Fprintf(tw, "(a) buggy grains, SC=%d\t%d\t(cutoff has no effect)\n", pLow.SC, res.BuggyGrainsSCLow)
		fmt.Fprintf(tw, "(b) fixed grains\t%d\n", res.FixedGrains)
		fmt.Fprintf(tw, "(b) fixed poor-MHU grains\t%s\n", pct(res.FixedPoorMHU))
		fmt.Fprintf(tw, "(c) scattered grains, work-stealing\t%s\t(speedup %.1f)\n", pct(res.ScatterWS), res.SpeedupWS)
		fmt.Fprintf(tw, "(d) scattered grains, central queue\t%s\t(speedup %.1f)\n", pct(res.ScatterCQ), res.SpeedupCQ)
		tw.Flush()
	}
	footer(w)
	return res, nil
}
