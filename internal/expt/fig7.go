package expt

import (
	"fmt"
	"io"

	"graingraph/internal/highlight"
	"graingraph/internal/workloads"
)

// Fig7Result is the data behind Figure 7: FFT parallel benefit grouped by
// source definition, before and after adding cutoffs. "Not all grains are
// created in the optimized program due to cutoffs."
type Fig7Result struct {
	BeforeGrains, AfterGrains int
	BeforeLowPB, AfterLowPB   float64
	// PerDefBefore ranks definitions by total work and reports low-PB
	// prevalence (the paper's per-source-file bars).
	PerDefBefore, PerDefAfter []highlight.DefinitionStats
	Before, After             *Result
}

// Figure7 regenerates Figure 7.
func Figure7(w io.Writer) (*Fig7Result, error) {
	results, err := runBatch([]runReq{
		{mk: func() workloads.Instance { return workloads.NewFFT(workloads.DefaultFFTParams()) },
			cfg: Config{Cores: 48, Seed: 1}, wrap: "figure 7 before"},
		{mk: func() workloads.Instance { return workloads.NewFFT(workloads.OptimizedFFTParams()) },
			cfg: Config{Cores: 48, Seed: 1}, wrap: "figure 7 after"},
	})
	if err != nil {
		return nil, err
	}
	before, after := results[0], results[1]
	res := &Fig7Result{
		BeforeGrains: before.Trace.NumGrains(),
		AfterGrains:  after.Trace.NumGrains(),
		BeforeLowPB:  before.Assessment.Affected(lowBenefitProblem()),
		AfterLowPB:   after.Assessment.Affected(lowBenefitProblem()),
		PerDefBefore: before.Assessment.ByDefinition(lowBenefitProblem()),
		PerDefAfter:  after.Assessment.ByDefinition(lowBenefitProblem()),
		Before:       before,
		After:        after,
	}
	if w != nil {
		tw := table(w)
		fmt.Fprintln(tw, "Figure 7: FFT parallel benefit grouped by definition")
		fmt.Fprintln(tw, "variant\tgrains\tlow parallel benefit")
		fmt.Fprintf(tw, "original\t%d\t%s\n", res.BeforeGrains, pct(res.BeforeLowPB))
		fmt.Fprintf(tw, "with cutoffs\t%d\t%s\n", res.AfterGrains, pct(res.AfterLowPB))
		fmt.Fprintln(tw, "\noriginal, by definition (heaviest first):")
		fmt.Fprintln(tw, "definition\tgrains\ttotal exec\tlow-PB prevalence")
		for _, d := range res.PerDefBefore {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%s\n", d.Loc, d.Grains, d.TotalExec, pct(d.Prevalence))
		}
		tw.Flush()
	}
	footer(w)
	return res, nil
}

// Fig8Result is the data behind Figure 8: after the cutoff fix, poor
// memory-hierarchy utilization remains widespread — the next bottleneck.
type Fig8Result struct {
	Grains  int
	PoorMHU float64
	Run     *Result
}

// Figure8 regenerates Figure 8 on the optimized FFT at a memory-resident
// input size.
func Figure8(w io.Writer) (*Fig8Result, error) {
	r, err := Run(workloads.NewFFT(workloads.LargeFFTParams()), Config{Cores: 48, Seed: 1})
	if err != nil {
		return nil, fmt.Errorf("figure 8: %w", err)
	}
	res := &Fig8Result{
		Grains:  r.Trace.NumGrains(),
		PoorMHU: r.Assessment.Affected(poorUtilizationProblem()),
		Run:     r,
	}
	if w != nil {
		fmt.Fprintf(w, "Figure 8: optimized FFT — %d grains, %s with poor memory hierarchy utilization\n",
			res.Grains, pct(res.PoorMHU))
		fmt.Fprintln(w, "(algorithmic changes / locality-aware scheduling needed next; critical-path-only optimization will not suffice)")
	}
	footer(w)
	return res, nil
}
