package expt

import (
	"fmt"
	"io"

	"graingraph/internal/workloads"
)

// Fig2Result is the data behind Figure 2 (and the §2 kdtree analysis): the
// grain graph exposes the ineffective cutoff as a task explosion at
// unbounded recursion depth.
type Fig2Result struct {
	BuggyGrains int
	BuggyDepth  int
	FixedGrains int
	FixedDepth  int
	// BuggyResult/FixedResult carry the full analyses for export.
	Buggy, Fixed *Result
}

// Figure2 regenerates Figure 2: the 376.kdtree grain graph for the small
// input (tree size 200, radius, cutoff 2), before and after the missing
// depth increment is fixed.
func Figure2(w io.Writer) (*Fig2Result, error) {
	results, err := runBatch([]runReq{
		{mk: func() workloads.Instance { return workloads.NewKdTree(workloads.DefaultKdTreeParams()) },
			cfg: Config{Cores: 48, Seed: 1}, wrap: "figure 2 buggy"},
		{mk: func() workloads.Instance { return workloads.NewKdTree(workloads.FixedKdTreeParams()) },
			cfg: Config{Cores: 48, Seed: 1}, wrap: "figure 2 fixed"},
	})
	if err != nil {
		return nil, err
	}
	buggy, fixed := results[0], results[1]
	maxDepth := func(r *Result) int {
		d := 0
		for _, t := range r.Trace.Tasks {
			if t.Depth > d {
				d = t.Depth
			}
		}
		return d
	}
	res := &Fig2Result{
		BuggyGrains: buggy.Trace.NumGrains(),
		BuggyDepth:  maxDepth(buggy),
		FixedGrains: fixed.Trace.NumGrains(),
		FixedDepth:  maxDepth(fixed),
		Buggy:       buggy,
		Fixed:       fixed,
	}
	if w != nil {
		tw := table(w)
		fmt.Fprintln(tw, "Figure 2: 376.kdtree small input — cutoff 2 has no effect")
		fmt.Fprintln(tw, "variant\tgrains\tmax recursion depth")
		fmt.Fprintf(tw, "buggy (missing depth increment)\t%d\t%d\n", res.BuggyGrains, res.BuggyDepth)
		fmt.Fprintf(tw, "fixed (depth incremented)\t%d\t%d\n", res.FixedGrains, res.FixedDepth)
		tw.Flush()
	}
	footer(w)
	return res, nil
}
