package expt

import (
	"bytes"
	"strings"
	"testing"
)

// TestWhatIfTableDeterministicAcrossParallelism extends the engine's -j
// guarantee to the what-if pass: ranked hypothesis tables are byte-identical
// whether the runs and hypothesis evaluations execute serially or pooled.
func TestWhatIfTableDeterministicAcrossParallelism(t *testing.T) {
	prev := Parallelism()
	defer func() { SetParallelism(prev); ResetMemo() }()

	render := func(jobs int) []byte {
		ResetMemo()
		SetParallelism(jobs)
		var buf bytes.Buffer
		if _, err := WhatIfTable(&buf); err != nil {
			t.Fatalf("-j %d: %v", jobs, err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		d := diffLine(serial, parallel)
		t.Fatalf("what-if tables differ (first differing line %d):\n-j 1:  %q\n-j 8:  %q",
			d, lineAt(serial, d), lineAt(parallel, d))
	}
	if !strings.Contains(string(serial), "perfect cutoff") {
		t.Error("ranked table mentions no perfect-cutoff hypothesis")
	}
}

// TestWhatIfBrokenFibCutoffProjectsSpeedup pins the acceptance check from
// the paper's broken-cutoff story: on a fib run whose cutoff never trips,
// the perfect-cutoff hypothesis must project a strictly positive speedup.
func TestWhatIfBrokenFibCutoffProjectsSpeedup(t *testing.T) {
	prev := Parallelism()
	defer func() { SetParallelism(prev) }()
	SetParallelism(4)

	res, err := WhatIfTable(nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range res.FibRanked {
		if strings.HasPrefix(p.Label, "perfect cutoff") {
			found = true
			if p.Speedup <= 1 {
				t.Errorf("%s projects speedup %.3f, want > 1", p.Label, p.Speedup)
			}
		}
	}
	if !found {
		t.Error("no perfect-cutoff hypothesis ranked for the broken-cutoff fib run")
	}
	if len(res.SortRanked) == 0 {
		t.Error("sort run produced no ranked hypotheses")
	}
}
