package expt

import (
	"fmt"
	"io"

	"graingraph/internal/binpack"
	"graingraph/internal/profile"
	"graingraph/internal/rts"
	"graingraph/internal/workloads"
)

// Fig9Result covers Figures 9/10 and Table 1: Freqmine's FPGF loop has
// grains of wildly uneven size; load balance is terrible on 48 cores, and
// a bin-packer shows a handful of cores preserve the makespan.
type Fig9Result struct {
	Grains int
	// Chunks and load balance of the dominant (second) FPGF instance.
	Chunks         int
	LoadBalance48  float64
	LowPB          float64
	MinCores       int
	LoadBalanceMin float64 // load balance re-run with MinCores threads
	// Table 1 rows: per-flavour 48-core speedup and exec times.
	Table1        []Table1Row
	Full, Reduced *Result
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	Flavor       rts.Flavor
	Speedup      float64
	Exec48Cycles uint64
	ExecMinCores uint64
}

// dominantLoop returns the loop with the largest total chunk time.
func dominantLoop(r *Result) (loopID profile.LoopID, chunks int, durations []uint64) {
	totals := map[profile.LoopID]uint64{}
	counts := map[profile.LoopID]int{}
	for _, ck := range r.Trace.Chunks {
		totals[ck.Loop] += ck.Duration()
		counts[ck.Loop]++
	}
	// Map iteration order is random: break total-time ties by the lower
	// loop ID so the choice (and everything printed from it) is stable.
	best := profile.LoopID(-1)
	for id, tot := range totals {
		if best == -1 || tot > totals[best] || (tot == totals[best] && id < best) {
			best = id
		}
	}
	for _, ck := range r.Trace.Chunks {
		if ck.Loop == best {
			durations = append(durations, ck.Duration())
		}
	}
	return best, counts[best], durations
}

// Figure9Table1 regenerates Figures 9/10 and Table 1.
func Figure9Table1(w io.Writer) (*Fig9Result, error) {
	mk := func(threads int) workloads.Instance {
		p := workloads.DefaultFreqmineParams()
		p.NumThreads = threads
		return workloads.NewFreqmine(p)
	}
	full, err := Run(mk(0), Config{Cores: 48, Seed: 1})
	if err != nil {
		return nil, fmt.Errorf("figure 9 full: %w", err)
	}
	loopID, chunkCount, durations := dominantLoop(full)
	lb := full.Report.LoopLoadBalance[loopID]

	// Bin-pack: minimum cores preserving the dominant loop's makespan.
	loop := full.Trace.Loop(loopID)
	minCores := binpack.MinCores(durations, uint64(loop.End-loop.Start))

	reduced, err := Run(mk(minCores), Config{Cores: 48, Seed: 1})
	if err != nil {
		return nil, fmt.Errorf("figure 10 reduced: %w", err)
	}
	redLoopID, _, _ := dominantLoop(reduced)
	lbMin := reduced.Report.LoopLoadBalance[redLoopID]

	res := &Fig9Result{
		Grains:         full.Trace.NumGrains(),
		Chunks:         chunkCount,
		LoadBalance48:  lb,
		LowPB:          full.Assessment.Affected(lowBenefitProblem()),
		MinCores:       minCores,
		LoadBalanceMin: lbMin,
		Full:           full,
		Reduced:        reduced,
	}

	// Table 1: per-flavour speedups and 48-core vs min-core times, as one
	// batch of 3 flavours × (1-core, 48-core, min-core) makespans. The
	// 48-core run doubles as the speedup denominator.
	flavors := []rts.Flavor{rts.FlavorICC, rts.FlavorGCC, rts.FlavorMIR}
	var reqs []runReq
	for _, fl := range flavors {
		cfg := Config{Cores: 48, Flavor: fl, Seed: 1}
		one := cfg
		one.Cores = 1
		wrap := fmt.Sprintf("table 1 %v", fl)
		reqs = append(reqs,
			runReq{mk: func() workloads.Instance { return mk(0) }, cfg: one, wrap: wrap},
			runReq{mk: func() workloads.Instance { return mk(0) }, cfg: cfg, wrap: wrap},
			runReq{mk: func() workloads.Instance { return mk(minCores) }, cfg: cfg, wrap: wrap},
		)
	}
	mks, err := makespanBatch(reqs)
	if err != nil {
		return nil, err
	}
	for i, fl := range flavors {
		t1, t48, tmin := mks[3*i], mks[3*i+1], mks[3*i+2]
		res.Table1 = append(res.Table1, Table1Row{Flavor: fl,
			Speedup: float64(t1) / float64(t48), Exec48Cycles: t48, ExecMinCores: tmin})
	}

	if w != nil {
		tw := table(w)
		fmt.Fprintln(tw, "Figures 9/10: Freqmine FPGF loop")
		fmt.Fprintf(tw, "grains\t%d\n", res.Grains)
		fmt.Fprintf(tw, "chunks in dominant FPGF instance\t%d\n", res.Chunks)
		fmt.Fprintf(tw, "low parallel benefit grains\t%s\n", pct(res.LowPB))
		fmt.Fprintf(tw, "load balance on 48 cores\t%.1f\n", res.LoadBalance48)
		fmt.Fprintf(tw, "bin-packed minimum cores\t%d\n", res.MinCores)
		fmt.Fprintf(tw, "load balance on %d cores\t%.2f\n", res.MinCores, res.LoadBalanceMin)
		fmt.Fprintln(tw, "\nTable 1: RTS\tspeedup\t48-core exec\tmin-core exec")
		for _, row := range res.Table1 {
			fmt.Fprintf(tw, "%v\t%.2f\t%d\t%d\n", row.Flavor, row.Speedup,
				row.Exec48Cycles, row.ExecMinCores)
		}
		tw.Flush()
	}
	footer(w)
	return res, nil
}
