// Package machine models the hardware substrate the simulated runtime
// executes on: a multi-socket NUMA topology with a distance table, and a
// paged memory with configurable page-placement policies.
//
// The model stands in for the paper's 48-core four-socket AMD Opteron 6172
// test machine. Only the properties the grain-graph analyses depend on are
// modelled: which socket a core belongs to, how far apart two cores are
// (for the scatter metric), and which NUMA node owns each memory page (for
// remote-access latency and the work-inflation experiments).
package machine

import "fmt"

// Topology describes a machine as sockets × cores-per-socket with a
// symmetric NUMA distance table between sockets.
type Topology struct {
	sockets        int
	coresPerSocket int
	distance       [][]int // socket × socket, ACPI-SLIT style (10 = local)
}

// New builds a topology with the given socket count and cores per socket.
// The NUMA distance between sockets i and j is 10 + 6*ring(i,j), where
// ring is the minimal hop count on a ring interconnect; the diagonal is 10,
// matching the convention of ACPI SLIT tables.
func New(sockets, coresPerSocket int) *Topology {
	if sockets <= 0 || coresPerSocket <= 0 {
		panic(fmt.Sprintf("machine: invalid topology %dx%d", sockets, coresPerSocket))
	}
	d := make([][]int, sockets)
	for i := range d {
		d[i] = make([]int, sockets)
		for j := range d[i] {
			hops := i - j
			if hops < 0 {
				hops = -hops
			}
			if wrap := sockets - hops; wrap < hops {
				hops = wrap
			}
			d[i][j] = 10 + 6*hops
		}
	}
	return &Topology{sockets: sockets, coresPerSocket: coresPerSocket, distance: d}
}

// Default48 returns the paper's evaluation machine shape: four sockets of
// twelve cores each (48 cores total).
func Default48() *Topology { return New(4, 12) }

// NumCores returns the total number of cores.
func (t *Topology) NumCores() int { return t.sockets * t.coresPerSocket }

// NumSockets returns the number of sockets (== NUMA nodes in this model).
func (t *Topology) NumSockets() int { return t.sockets }

// CoresPerSocket returns the number of cores on each socket.
func (t *Topology) CoresPerSocket() int { return t.coresPerSocket }

// Socket returns the socket (NUMA node) a core belongs to.
func (t *Topology) Socket(core int) int {
	if core < 0 || core >= t.NumCores() {
		panic(fmt.Sprintf("machine: core %d out of range [0,%d)", core, t.NumCores()))
	}
	return core / t.coresPerSocket
}

// NodeDistance returns the SLIT-style distance between two NUMA nodes.
func (t *Topology) NodeDistance(a, b int) int { return t.distance[a][b] }

// CoreDistance returns the distance between two cores used by the scatter
// metric. Following the paper ("by subtracting core identifiers in some
// topologies"), it is the absolute difference of core identifiers, which
// makes the problem threshold "farther than one socket" equal to
// CoresPerSocket.
func (t *Topology) CoreDistance(a, b int) int {
	if a > b {
		a, b = b, a
	}
	return b - a
}

// SameSocket reports whether two cores share a socket.
func (t *Topology) SameSocket(a, b int) bool { return t.Socket(a) == t.Socket(b) }
