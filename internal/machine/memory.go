package machine

import "fmt"

// PageSize is the granularity of NUMA placement, in bytes.
const PageSize = 4096

// Policy selects how memory pages are assigned to NUMA nodes.
type Policy int

const (
	// FirstTouch assigns a page to the NUMA node of the core that first
	// accesses it. This is the Linux default and the "before" configuration
	// in the paper's Sort experiment: the master thread initializes the
	// array, so every page lands on node 0 and all other sockets pay remote
	// latency.
	FirstTouch Policy = iota
	// RoundRobin interleaves pages across NUMA nodes in address order.
	// This is the paper's Sort optimization ("round-robin memory page
	// distribution to different NUMA nodes").
	RoundRobin
	// Node0 pins every page to node 0 regardless of who touches it.
	Node0
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case FirstTouch:
		return "first-touch"
	case RoundRobin:
		return "round-robin"
	case Node0:
		return "node0"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Region is a named contiguous allocation in the simulated address space.
// Workloads allocate regions for their major data structures and express
// memory accesses as offsets into them.
type Region struct {
	Name string
	Base int64 // byte address, PageSize aligned
	Size int64 // bytes
}

// End returns the first byte address past the region.
func (r *Region) End() int64 { return r.Base + r.Size }

// Memory is the simulated physical memory: an allocator plus a page table
// mapping pages to NUMA nodes under the configured placement policy.
//
// The page table is a flat array indexed by page number: the bump allocator
// hands out addresses densely from zero, so the table stays proportional to
// the allocated footprint, and the per-access node lookup — one of the
// simulator's hottest operations — is an array load instead of the map
// probe it replaced.
type Memory struct {
	topo   *Topology
	policy Policy
	next   int64   // bump allocator cursor
	pages  []int16 // page index -> NUMA node; -1 = not yet placed
	placed int     // pages assigned so far
	rr     int     // next node for round-robin placement
}

// NewMemory creates an empty memory for the given topology and policy.
func NewMemory(topo *Topology, policy Policy) *Memory {
	return &Memory{topo: topo, policy: policy}
}

// Policy returns the placement policy in effect.
func (m *Memory) Policy() Policy { return m.policy }

// Alloc reserves size bytes and returns the region. The region is
// page-aligned; placement of its pages follows the memory's policy and, for
// first-touch, happens lazily at first access.
func (m *Memory) Alloc(name string, size int64) *Region {
	if size <= 0 {
		panic(fmt.Sprintf("machine: Alloc(%q, %d): size must be positive", name, size))
	}
	base := m.next
	aligned := (size + PageSize - 1) / PageSize * PageSize
	m.next += aligned
	return &Region{Name: name, Base: base, Size: size}
}

// NodeOf resolves the NUMA node owning the page containing addr, assigning
// it per policy if this is the first access. touchingCore identifies the
// core performing the access (used by first-touch).
func (m *Memory) NodeOf(addr int64, touchingCore int) int {
	page := addr / PageSize
	if page < int64(len(m.pages)) {
		if node := m.pages[page]; node >= 0 {
			return int(node)
		}
	} else {
		m.growPages(page)
	}
	var node int
	switch m.policy {
	case FirstTouch:
		node = m.topo.Socket(touchingCore)
	case RoundRobin:
		node = m.rr
		m.rr = (m.rr + 1) % m.topo.NumSockets()
	case Node0:
		node = 0
	default:
		panic(fmt.Sprintf("machine: unknown policy %v", m.policy))
	}
	m.pages[page] = int16(node)
	m.placed++
	return node
}

// growPages extends the page table to cover page, marking new slots
// unplaced.
func (m *Memory) growPages(page int64) {
	n := int64(len(m.pages))
	if n == 0 {
		n = 1 << 10
	}
	for n <= page {
		n *= 2
	}
	np := make([]int16, n)
	for i := len(m.pages); i < len(np); i++ {
		np[i] = -1
	}
	copy(np, m.pages)
	m.pages = np
}

// PlacedPages returns how many pages have been assigned to each node so
// far. Useful in tests and for reporting placement skew.
func (m *Memory) PlacedPages() []int {
	counts := make([]int, m.topo.NumSockets())
	for _, node := range m.pages {
		if node >= 0 {
			counts[node]++
		}
	}
	return counts
}

// NumPlaced returns the total number of pages assigned so far.
func (m *Memory) NumPlaced() int { return m.placed }

// Reset forgets all page placements (but not allocations), so a fresh run
// can re-apply first-touch placement.
func (m *Memory) Reset() {
	for i := range m.pages {
		m.pages[i] = -1
	}
	m.placed = 0
	m.rr = 0
}
