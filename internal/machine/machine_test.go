package machine

import (
	"testing"
	"testing/quick"
)

func TestTopologyShape(t *testing.T) {
	topo := Default48()
	if got := topo.NumCores(); got != 48 {
		t.Fatalf("NumCores = %d, want 48", got)
	}
	if got := topo.NumSockets(); got != 4 {
		t.Fatalf("NumSockets = %d, want 4", got)
	}
	if got := topo.CoresPerSocket(); got != 12 {
		t.Fatalf("CoresPerSocket = %d, want 12", got)
	}
}

func TestSocketAssignment(t *testing.T) {
	topo := Default48()
	cases := []struct{ core, socket int }{
		{0, 0}, {11, 0}, {12, 1}, {23, 1}, {24, 2}, {47, 3},
	}
	for _, c := range cases {
		if got := topo.Socket(c.core); got != c.socket {
			t.Errorf("Socket(%d) = %d, want %d", c.core, got, c.socket)
		}
	}
}

func TestSocketPanicsOutOfRange(t *testing.T) {
	topo := Default48()
	for _, core := range []int{-1, 48, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Socket(%d) did not panic", core)
				}
			}()
			topo.Socket(core)
		}()
	}
}

func TestNodeDistanceProperties(t *testing.T) {
	topo := Default48()
	for i := 0; i < 4; i++ {
		if got := topo.NodeDistance(i, i); got != 10 {
			t.Errorf("NodeDistance(%d,%d) = %d, want 10", i, i, got)
		}
		for j := 0; j < 4; j++ {
			if topo.NodeDistance(i, j) != topo.NodeDistance(j, i) {
				t.Errorf("distance not symmetric at (%d,%d)", i, j)
			}
			if i != j && topo.NodeDistance(i, j) <= 10 {
				t.Errorf("remote distance (%d,%d) = %d, want > 10", i, j, topo.NodeDistance(i, j))
			}
		}
	}
	// Ring: sockets 0 and 2 are two hops apart, 0 and 1 one hop.
	if topo.NodeDistance(0, 2) <= topo.NodeDistance(0, 1) {
		t.Errorf("two-hop distance %d not greater than one-hop %d",
			topo.NodeDistance(0, 2), topo.NodeDistance(0, 1))
	}
}

func TestCoreDistance(t *testing.T) {
	topo := Default48()
	if got := topo.CoreDistance(3, 3); got != 0 {
		t.Errorf("CoreDistance(3,3) = %d, want 0", got)
	}
	if got := topo.CoreDistance(0, 47); got != 47 {
		t.Errorf("CoreDistance(0,47) = %d, want 47", got)
	}
	if got := topo.CoreDistance(47, 0); got != 47 {
		t.Errorf("CoreDistance(47,0) = %d, want 47", got)
	}
}

func TestCoreDistanceSymmetric(t *testing.T) {
	topo := Default48()
	f := func(a, b uint8) bool {
		x, y := int(a)%48, int(b)%48
		return topo.CoreDistance(x, y) == topo.CoreDistance(y, x) &&
			topo.CoreDistance(x, y) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocAlignmentAndDisjointness(t *testing.T) {
	mem := NewMemory(Default48(), FirstTouch)
	a := mem.Alloc("a", 100)
	b := mem.Alloc("b", PageSize+1)
	c := mem.Alloc("c", 1)
	regions := []*Region{a, b, c}
	for _, r := range regions {
		if r.Base%PageSize != 0 {
			t.Errorf("region %s base %d not page aligned", r.Name, r.Base)
		}
	}
	for i := 0; i < len(regions); i++ {
		for j := i + 1; j < len(regions); j++ {
			ri, rj := regions[i], regions[j]
			if ri.Base < rj.End() && rj.Base < ri.End() {
				t.Errorf("regions %s and %s overlap", ri.Name, rj.Name)
			}
		}
	}
}

func TestAllocPanicsOnNonPositive(t *testing.T) {
	mem := NewMemory(Default48(), FirstTouch)
	defer func() {
		if recover() == nil {
			t.Error("Alloc(0) did not panic")
		}
	}()
	mem.Alloc("zero", 0)
}

func TestFirstTouchPlacement(t *testing.T) {
	topo := Default48()
	mem := NewMemory(topo, FirstTouch)
	r := mem.Alloc("data", 10*PageSize)
	// Core 13 (socket 1) touches page 0; the page must land on node 1 and
	// stay there even when another core touches it later.
	if got := mem.NodeOf(r.Base, 13); got != 1 {
		t.Fatalf("first touch by core 13: node = %d, want 1", got)
	}
	if got := mem.NodeOf(r.Base, 40); got != 1 {
		t.Fatalf("subsequent touch: node = %d, want sticky 1", got)
	}
	// A different page first touched by core 40 (socket 3) goes to node 3.
	if got := mem.NodeOf(r.Base+PageSize, 40); got != 3 {
		t.Fatalf("first touch by core 40: node = %d, want 3", got)
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	topo := Default48()
	mem := NewMemory(topo, RoundRobin)
	r := mem.Alloc("data", 8*PageSize)
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i, w := range want {
		if got := mem.NodeOf(r.Base+int64(i)*PageSize, 5); got != w {
			t.Errorf("page %d: node = %d, want %d", i, got, w)
		}
	}
	counts := mem.PlacedPages()
	for node, n := range counts {
		if n != 2 {
			t.Errorf("node %d has %d pages, want 2", node, n)
		}
	}
}

func TestNode0Placement(t *testing.T) {
	mem := NewMemory(Default48(), Node0)
	r := mem.Alloc("data", 4*PageSize)
	for i := int64(0); i < 4; i++ {
		if got := mem.NodeOf(r.Base+i*PageSize, 47); got != 0 {
			t.Errorf("page %d: node = %d, want 0", i, got)
		}
	}
}

func TestMemoryReset(t *testing.T) {
	mem := NewMemory(Default48(), FirstTouch)
	r := mem.Alloc("data", PageSize)
	if got := mem.NodeOf(r.Base, 13); got != 1 {
		t.Fatalf("pre-reset node = %d, want 1", got)
	}
	mem.Reset()
	if got := mem.NodeOf(r.Base, 40); got != 3 {
		t.Fatalf("post-reset node = %d, want fresh first-touch 3", got)
	}
}

func TestPolicyString(t *testing.T) {
	if FirstTouch.String() != "first-touch" || RoundRobin.String() != "round-robin" || Node0.String() != "node0" {
		t.Error("unexpected policy names")
	}
	if Policy(99).String() == "" {
		t.Error("unknown policy should still stringify")
	}
}
