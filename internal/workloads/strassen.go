package workloads

import (
	"fmt"

	"graingraph/internal/machine"
	"graingraph/internal/profile"
	"graingraph/internal/rts"
)

// StrassenParams configures the BOTS Strassen port: recursive matrix
// multiplication with seven subproblem tasks per level, controlled by the
// smallest-submatrix-size cutoff SC.
//
// The original program contains a hard-coded cutoff that overrides SC and
// keeps the recursion shallow regardless of input (paper §4.3.5,
// Figure 11a); HardcodedCutoffBug reproduces it.
type StrassenParams struct {
	N  int // matrix dimension, power of two
	SC int // smallest submatrix size: recursion stops at N <= SC
	// HardcodedCutoffBug reproduces the original BOTS bug: decomposition
	// stops after a fixed recursion depth no matter what SC says.
	HardcodedCutoffBug bool
	Seed               uint64
}

// hardcodedDepth is the buggy fixed recursion limit.
const hardcodedDepth = 2

// DefaultStrassenParams mirrors the paper's small input (2048×2048,
// SC=128) scaled down; the bug is active as in the original program.
func DefaultStrassenParams() StrassenParams {
	return StrassenParams{N: 256, SC: 16, HardcodedCutoffBug: true, Seed: 3}
}

// FixedStrassenParams disables the hard-coded cutoff, the paper's fix.
func FixedStrassenParams() StrassenParams {
	p := DefaultStrassenParams()
	p.HardcodedCutoffBug = false
	p.SC = 32
	return p
}

// StrassenInstance is a runnable Strassen workload.
type StrassenInstance struct {
	P       StrassenParams
	a, b, c []float64 // row-major N×N
}

// NewStrassen creates a Strassen instance. N must be a power of two.
func NewStrassen(p StrassenParams) *StrassenInstance {
	if p.N == 0 || p.N&(p.N-1) != 0 {
		panic(fmt.Sprintf("workloads: Strassen size %d not a power of two", p.N))
	}
	n := p.N * p.N
	return &StrassenInstance{P: p, a: make([]float64, n), b: make([]float64, n), c: make([]float64, n)}
}

// Name implements Instance.
func (s *StrassenInstance) Name() string {
	bug := "fixed"
	if s.P.HardcodedCutoffBug {
		bug = "buggy"
	}
	return fmt.Sprintf("strassen-n%d-sc%d-%s", s.P.N, s.P.SC, bug)
}

// Key implements Keyed: the content address covers every parameter.
func (s *StrassenInstance) Key() string { return paramKey("strassen", s.P) }

// mat is a view into a row-major matrix backed by a simulated region, so
// footprint accounting follows the data wherever it lives (operands,
// result, or recursion temporaries).
type mat struct {
	data     []float64
	n        int // view dimension
	stride   int // row stride in elements
	reg      *machine.Region
	row, col int // origin within the backing allocation
	full     int // backing allocation's row stride in elements
}

func (m mat) at(i, j int) float64     { return m.data[i*m.stride+j] }
func (m mat) set(i, j int, v float64) { m.data[i*m.stride+j] = v }
func (m mat) quad(qi, qj int) mat {
	h := m.n / 2
	out := m
	out.data = m.data[qi*h*m.stride+qj*h:]
	out.n = h
	out.row = m.row + qi*h
	out.col = m.col + qj*h
	return out
}

// offset returns the byte offset of element (i,0) in the backing region.
func (m mat) offset(i int) int64 { return int64((m.row+i)*m.full+m.col) * 8 }

// loadRow / storeRow / loadCol charge real-layout accesses.
func (m mat) loadRow(c rts.Ctx, i int)  { c.Load(m.reg, m.offset(i), int64(m.n)*8) }
func (m mat) storeRow(c rts.Ctx, i int) { c.Store(m.reg, m.offset(i), int64(m.n)*8) }
func (m mat) loadCol(c rts.Ctx, j int) {
	c.LoadStrided(m.reg, int64(m.row*m.full+m.col+j)*8, m.n, int64(m.full)*8)
}

func (m mat) loadAll(c rts.Ctx) {
	for i := 0; i < m.n; i++ {
		m.loadRow(c, i)
	}
}

func (m mat) storeAll(c rts.Ctx) {
	for i := 0; i < m.n; i++ {
		m.storeRow(c, i)
	}
}

// newTemp allocates an h×h temporary with its own simulated region.
func newTemp(c rts.Ctx, h int) mat {
	return mat{
		data:   make([]float64, h*h),
		n:      h,
		stride: h,
		reg:    c.Alloc("strassen-tmp", int64(h)*int64(h)*8),
		full:   h,
	}
}

func addMat(dst, x, y mat) {
	for i := 0; i < dst.n; i++ {
		for j := 0; j < dst.n; j++ {
			dst.set(i, j, x.at(i, j)+y.at(i, j))
		}
	}
}

func subMat(dst, x, y mat) {
	for i := 0; i < dst.n; i++ {
		for j := 0; j < dst.n; j++ {
			dst.set(i, j, x.at(i, j)-y.at(i, j))
		}
	}
}

// mulSeq is the standard multiply at recursion leaves (really executed).
func mulSeq(dst, x, y mat) {
	n := dst.n
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k < n; k++ {
				sum += x.at(i, k) * y.at(k, j)
			}
			dst.set(i, j, sum)
		}
	}
}

// chargeLeaf accounts a leaf multiply's footprint: per output row one scan
// of the x row and a strided walk of each y column, plus the result store.
func chargeLeaf(c rts.Ctx, dst, x, y mat) {
	n := dst.n
	for i := 0; i < n; i++ {
		x.loadRow(c, i)
		y.loadCol(c, i)
	}
	dst.storeAll(c)
	c.Compute(uint64(n) * uint64(n) * uint64(n) * 2 * costFlop)
}

// Program implements Instance.
func (s *StrassenInstance) Program() func(rts.Ctx) {
	return func(c rts.Ctx) {
		n := s.P.N
		rng := newRNG(s.P.Seed)
		for i := range s.a {
			s.a[i] = rng.Float64()*2 - 1
			s.b[i] = rng.Float64()*2 - 1
			s.c[i] = 0
		}
		bytes := int64(n) * int64(n) * 8
		ra := c.Alloc("A", bytes)
		rb := c.Alloc("B", bytes)
		rc := c.Alloc("C", bytes)
		c.Store(ra, 0, bytes)
		c.Store(rb, 0, bytes)
		c.Compute(uint64(n*n) * costArith)

		A := mat{data: s.a, n: n, stride: n, reg: ra, full: n}
		B := mat{data: s.b, n: n, stride: n, reg: rb, full: n}
		C := mat{data: s.c, n: n, stride: n, reg: rc, full: n}

		var strassen func(c rts.Ctx, dst, x, y mat, depth int)
		strassen = func(c rts.Ctx, dst, x, y mat, depth int) {
			stop := dst.n <= s.P.SC
			if s.P.HardcodedCutoffBug && depth >= hardcodedDepth {
				// The original program's hidden cutoff: decomposition stops
				// here regardless of SC, limiting exposed parallelism.
				stop = true
			}
			if stop {
				mulSeq(dst, x, y)
				chargeLeaf(c, dst, x, y)
				return
			}
			h := dst.n / 2
			x11, x12, x21, x22 := x.quad(0, 0), x.quad(0, 1), x.quad(1, 0), x.quad(1, 1)
			y11, y12, y21, y22 := y.quad(0, 0), y.quad(0, 1), y.quad(1, 0), y.quad(1, 1)

			m := make([]mat, 7)
			type operands struct {
				lf   func(dst, a, b mat)
				la   mat
				lb   mat
				rf   func(dst, a, b mat)
				ra   mat
				rb   mat
				line int
			}
			jobs := []operands{
				{addMat, x11, x22, addMat, y11, y22, 610},
				{addMat, x21, x22, nil, y11, y11, 611},
				{nil, x11, x11, subMat, y12, y22, 612},
				{nil, x22, x22, subMat, y21, y11, 613},
				{addMat, x11, x12, nil, y22, y22, 614},
				{subMat, x21, x11, addMat, y11, y12, 615},
				{subMat, x12, x22, addMat, y21, y22, 616},
			}
			for i, j := range jobs {
				i, j := i, j
				c.Spawn(profile.Loc("strassen.go", j.line, "OptimizedStrassenMultiply"), func(c rts.Ctx) {
					lhs, rhs := j.la, j.ra
					if j.lf != nil {
						lhs = newTemp(c, h)
						j.lf(lhs, j.la, j.lb)
						j.la.loadAll(c)
						j.lb.loadAll(c)
						lhs.storeAll(c)
						c.Compute(uint64(h*h) * costFlop)
					}
					if j.rf != nil {
						rhs = newTemp(c, h)
						j.rf(rhs, j.ra, j.rb)
						j.ra.loadAll(c)
						j.rb.loadAll(c)
						rhs.storeAll(c)
						c.Compute(uint64(h*h) * costFlop)
					}
					m[i] = newTemp(c, h)
					strassen(c, m[i], lhs, rhs, depth+1)
				})
			}
			c.TaskWait()
			// Combine the seven products into dst, one task per row band so
			// the O(h²) combine does not serialize the recursion's join.
			bands := 4
			if h < bands {
				bands = 1
			}
			for b := 0; b < bands; b++ {
				rlo, rhi := b*h/bands, (b+1)*h/bands
				c.Spawn(profile.Loc("strassen.go", 650, "combine"), func(c rts.Ctx) {
					for i := rlo; i < rhi; i++ {
						for j := 0; j < h; j++ {
							p1, p2, p3, p4 := m[0].at(i, j), m[1].at(i, j), m[2].at(i, j), m[3].at(i, j)
							p5, p6, p7 := m[4].at(i, j), m[5].at(i, j), m[6].at(i, j)
							dst.set(i, j, p1+p4-p5+p7)
							dst.set(i, j+h, p3+p5)
							dst.set(i+h, j, p2+p4)
							dst.set(i+h, j+h, p1-p2+p3+p6)
						}
						for _, mi := range m {
							mi.loadRow(c, i)
						}
						dst.storeRow(c, i)
						dst.storeRow(c, i+h)
					}
					c.Compute(uint64((rhi-rlo)*h) * 8 * costFlop)
				})
			}
			c.TaskWait()
		}
		strassen(c, C, A, B, 0)
		c.TaskWait()
	}
}

// Verify implements Instance: checks C = A×B against a direct multiply on
// sampled rows (full check for small N).
func (s *StrassenInstance) Verify() error {
	n := s.P.N
	rows := []int{0, 1, n / 2, n - 1}
	if n <= 64 {
		rows = rows[:0]
		for i := 0; i < n; i++ {
			rows = append(rows, i)
		}
	}
	for _, i := range rows {
		for j := 0; j < n; j++ {
			var want float64
			for k := 0; k < n; k++ {
				want += s.a[i*n+k] * s.b[k*n+j]
			}
			got := s.c[i*n+j]
			diff := got - want
			if diff > 1e-6 || diff < -1e-6 {
				return fmt.Errorf("strassen: C[%d][%d] = %g, want %g", i, j, got, want)
			}
		}
	}
	return nil
}
