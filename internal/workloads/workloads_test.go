package workloads

import (
	"testing"

	"graingraph/internal/profile"
	"graingraph/internal/rts"
)

// runOn executes an instance and verifies its computational result.
func runOn(t *testing.T, inst Instance, cores int) *profile.Trace {
	t.Helper()
	tr := rts.Run(rts.Config{Program: inst.Name(), Cores: cores, Seed: 42}, inst.Program())
	if err := inst.Verify(); err != nil {
		t.Fatalf("%s on %d cores: %v", inst.Name(), cores, err)
	}
	return tr
}

func TestSortCorrectAcrossCores(t *testing.T) {
	for _, cores := range []int{1, 4, 16} {
		inst := NewSort(SortParams{N: 1 << 12, SeqCutoff: 256, InsertionCutoff: 16, Seed: 1})
		tr := runOn(t, inst, cores)
		if len(tr.Tasks) < 2*(1<<12)/256-5 {
			t.Errorf("sort on %d cores created %d tasks, want ~%d", cores, len(tr.Tasks), 2*(1<<12)/256)
		}
	}
}

func TestSortLowerCutoffMoreGrains(t *testing.T) {
	big := runOn(t, NewSort(SortParams{N: 1 << 12, SeqCutoff: 512, InsertionCutoff: 16, Seed: 1}), 4)
	small := runOn(t, NewSort(SortParams{N: 1 << 12, SeqCutoff: 64, InsertionCutoff: 16, Seed: 1}), 4)
	if len(small.Tasks) <= len(big.Tasks)*4 {
		t.Errorf("cutoff 64 gave %d tasks vs cutoff 512's %d; expected ~8x", len(small.Tasks), len(big.Tasks))
	}
}

func TestFibCorrect(t *testing.T) {
	inst := NewFib(FibParams{N: 20, Cutoff: 6})
	runOn(t, inst, 4)
	if inst.result != 6765 {
		t.Errorf("fib(20) = %d", inst.result)
	}
}

func TestNQueensKnownCounts(t *testing.T) {
	for _, c := range []struct{ n, want int }{{6, 4}, {8, 92}} {
		inst := NewNQueens(NQueensParams{N: c.n, Cutoff: 2})
		runOn(t, inst, 4)
		if inst.Solution != uint64(c.want) {
			t.Errorf("nqueens(%d) = %d, want %d", c.n, inst.Solution, c.want)
		}
	}
}

func TestFFTCorrectSmall(t *testing.T) {
	inst := NewFFT(FFTParams{N: 128, Cutoff: 0, Seed: 2})
	runOn(t, inst, 4)
}

func TestFFTCutoffReducesGrains(t *testing.T) {
	orig := runOn(t, NewFFT(FFTParams{N: 1 << 10, Cutoff: 0, Seed: 2}), 4)
	opt := runOn(t, NewFFT(FFTParams{N: 1 << 10, Cutoff: 128, Seed: 2}), 4)
	if len(opt.Tasks)*10 > len(orig.Tasks) {
		t.Errorf("cutoff kept %d of %d tasks; expected a big reduction", len(opt.Tasks), len(orig.Tasks))
	}
	// Optimized grains must have much better parallel benefit on average:
	// compare mean exec time per task.
	mean := func(tr *profile.Trace) float64 {
		var sum uint64
		for _, task := range tr.Tasks {
			sum += task.ExecTime()
		}
		return float64(sum) / float64(len(tr.Tasks))
	}
	if mean(opt) < 4*mean(orig) {
		t.Errorf("optimized mean grain %f not much larger than original %f", mean(opt), mean(orig))
	}
}

func TestStrassenCorrectBothVariants(t *testing.T) {
	for _, p := range []StrassenParams{
		{N: 64, SC: 16, HardcodedCutoffBug: true, Seed: 3},
		{N: 64, SC: 16, HardcodedCutoffBug: false, Seed: 3},
		{N: 32, SC: 8, HardcodedCutoffBug: false, Seed: 4},
	} {
		runOn(t, NewStrassen(p), 4)
	}
}

func TestStrassenHardcodedCutoffLimitsDepth(t *testing.T) {
	// With the bug, lowering SC must NOT increase the task count ("the
	// behavior contradicts the intuition that balance should improve when
	// more tasks are created").
	buggyHi := runOn(t, NewStrassen(StrassenParams{N: 128, SC: 32, HardcodedCutoffBug: true, Seed: 3}), 4)
	buggyLo := runOn(t, NewStrassen(StrassenParams{N: 128, SC: 8, HardcodedCutoffBug: true, Seed: 3}), 4)
	if len(buggyHi.Tasks) != len(buggyLo.Tasks) {
		t.Errorf("buggy Strassen task count changed with SC: %d vs %d",
			len(buggyHi.Tasks), len(buggyLo.Tasks))
	}
	fixed := runOn(t, NewStrassen(StrassenParams{N: 128, SC: 8, HardcodedCutoffBug: false, Seed: 3}), 4)
	if len(fixed.Tasks) <= 2*len(buggyLo.Tasks) {
		t.Errorf("fixed Strassen exposes %d tasks vs buggy %d; expected much more parallelism",
			len(fixed.Tasks), len(buggyLo.Tasks))
	}
}

func TestSparseLUCorrectBothVariants(t *testing.T) {
	for _, interchange := range []bool{false, true} {
		inst := NewSparseLU(SparseLUParams{NB: 5, BS: 12, LoopInterchange: interchange, Seed: 9})
		runOn(t, inst, 4)
	}
}

func TestSparseLUPhaseStructure(t *testing.T) {
	inst := NewSparseLU(SparseLUParams{NB: 5, BS: 8, Seed: 9})
	tr := runOn(t, inst, 4)
	// Tasks must come from the three expected definitions.
	locs := map[string]int{}
	for _, task := range tr.Tasks {
		locs[task.Loc.String()]++
	}
	for _, want := range []string{"sparselu.go:229(fwd)", "sparselu.go:235(bdiv)", "sparselu.go:246(bmod)"} {
		if locs[want] == 0 {
			t.Errorf("no tasks from %s; got %v", want, locs)
		}
	}
	// bmod dominates (the paper: most frequent since it feeds the larger
	// parallelism phase).
	if locs["sparselu.go:246(bmod)"] <= locs["sparselu.go:229(fwd)"] {
		t.Errorf("bmod (%d) not dominant over fwd (%d)",
			locs["sparselu.go:246(bmod)"], locs["sparselu.go:229(fwd)"])
	}
}

func TestSparseLUInterchangeReducesStalls(t *testing.T) {
	run := func(interchange bool) (uint64, uint64) {
		inst := NewSparseLU(SparseLUParams{NB: 5, BS: 32, LoopInterchange: interchange, Seed: 9})
		tr := runOn(t, inst, 8)
		var stall, compute uint64
		for _, task := range tr.Tasks {
			if task.Loc.Func == "bmod" {
				cnt := task.TotalCounters()
				stall += cnt.Stall
				compute += cnt.Compute
			}
		}
		return stall, compute
	}
	origStall, origCompute := run(false)
	optStall, optCompute := run(true)
	if origCompute != optCompute {
		t.Errorf("compute changed with interchange: %d vs %d", origCompute, optCompute)
	}
	if optStall >= origStall {
		t.Errorf("loop interchange did not reduce stalls: %d vs %d", optStall, origStall)
	}
}

func TestKdTreeCorrectBothVariants(t *testing.T) {
	for _, p := range []KdTreeParams{DefaultKdTreeParams(), FixedKdTreeParams()} {
		p.N = 100
		inst := NewKdTree(p)
		runOn(t, inst, 4)
	}
}

func TestKdTreeBugCreatesTaskPerNode(t *testing.T) {
	buggy := runOn(t, NewKdTree(DefaultKdTreeParams()), 4)
	fixed := runOn(t, NewKdTree(FixedKdTreeParams()), 4)
	// Buggy: a sweep task per tree node plus a find_neighbors task per
	// point: > 2N tasks. Fixed: bounded by the sweep cutoff.
	if len(buggy.Tasks) < 2*200 {
		t.Errorf("buggy kdtree created %d tasks, want >= 400", len(buggy.Tasks))
	}
	if len(fixed.Tasks) >= len(buggy.Tasks) {
		t.Errorf("fix did not reduce task count: %d vs %d", len(fixed.Tasks), len(buggy.Tasks))
	}
	// The bug shows as unbounded depth: max task depth ~ tree depth.
	maxDepth := func(tr *profile.Trace) int {
		d := 0
		for _, task := range tr.Tasks {
			if task.Depth > d {
				d = task.Depth
			}
		}
		return d
	}
	if maxDepth(buggy) <= maxDepth(fixed) {
		t.Errorf("buggy depth %d not deeper than fixed %d", maxDepth(buggy), maxDepth(fixed))
	}
}

func TestFreqmineCorrect(t *testing.T) {
	inst := NewFreqmine(FreqmineParams{Items: 100, Transactions: 400, AvgLen: 6, HotItems: 2, MinSupport: 3, Seed: 17})
	runOn(t, inst, 4)
}

func TestFreqmineUnevenChunks(t *testing.T) {
	inst := NewFreqmine(FreqmineParams{Items: 300, Transactions: 1500, AvgLen: 8, HotItems: 4, MinSupport: 4, Seed: 17})
	tr := runOn(t, inst, 8)
	if len(tr.Loops) != 3 {
		t.Fatalf("loops = %d, want 3 FPGF instances", len(tr.Loops))
	}
	// Chunk durations must be heavy-tailed: max >> median.
	var durations []uint64
	for _, ck := range tr.Chunks {
		if ck.Loop == 1 { // dominant instance
			durations = append(durations, ck.Duration())
		}
	}
	if len(durations) != 300 {
		t.Fatalf("instance-2 chunks = %d, want 300", len(durations))
	}
	var max, sum uint64
	for _, d := range durations {
		if d > max {
			max = d
		}
		sum += d
	}
	mean := sum / uint64(len(durations))
	if max < 20*mean {
		t.Errorf("chunk durations not heavy-tailed: max %d vs mean %d", max, mean)
	}
}

func TestUTSCorrectAndUnbalanced(t *testing.T) {
	inst := NewUTS(UTSParams{BranchFactor: 4, ProbPercent: 22, MaxDepth: 100, Seed: 19})
	tr := runOn(t, inst, 4)
	if inst.Nodes < 10 {
		t.Fatalf("uts tree trivially small: %d nodes", inst.Nodes)
	}
	if uint64(len(tr.Tasks)) != inst.Nodes+1 { // +1 root master
		t.Errorf("tasks = %d, want one per node (%d)", len(tr.Tasks), inst.Nodes+1)
	}
}

func TestUTSCutoffReducesTasks(t *testing.T) {
	p := UTSParams{BranchFactor: 4, ProbPercent: 22, MaxDepth: 100, Seed: 19}
	orig := runOn(t, NewUTS(p), 4)
	p.Cutoff = 3
	cut := runOn(t, NewUTS(p), 4)
	if len(cut.Tasks) >= len(orig.Tasks) {
		t.Errorf("cutoff did not reduce tasks: %d vs %d", len(cut.Tasks), len(orig.Tasks))
	}
}

func TestBlackscholesCorrect(t *testing.T) {
	inst := NewBlackscholes(BlackscholesParams{N: 5000, ChunkSize: 128, Seed: 23})
	tr := runOn(t, inst, 8)
	if len(tr.Chunks) == 0 {
		t.Error("no chunks recorded")
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	mk := func() Instance { return NewSort(SortParams{N: 1 << 10, SeqCutoff: 128, InsertionCutoff: 8, Seed: 7}) }
	t1 := rts.Run(rts.Config{Program: "d", Cores: 4, Seed: 5}, mk().Program())
	t2 := rts.Run(rts.Config{Program: "d", Cores: 4, Seed: 5}, mk().Program())
	if t1.Makespan() != t2.Makespan() || len(t1.Tasks) != len(t2.Tasks) {
		t.Errorf("sort not deterministic: %d/%d cycles, %d/%d tasks",
			t1.Makespan(), t2.Makespan(), len(t1.Tasks), len(t2.Tasks))
	}
}

func TestInstanceNames(t *testing.T) {
	insts := []Instance{
		NewSort(DefaultSortParams()),
		NewFib(DefaultFibParams()),
		NewNQueens(DefaultNQueensParams()),
		NewFFT(DefaultFFTParams()),
		NewStrassen(DefaultStrassenParams()),
		NewSparseLU(DefaultSparseLUParams()),
		NewKdTree(DefaultKdTreeParams()),
		NewFreqmine(DefaultFreqmineParams()),
		NewUTS(DefaultUTSParams()),
		NewBlackscholes(DefaultBlackscholesParams()),
	}
	seen := map[string]bool{}
	for _, in := range insts {
		n := in.Name()
		if n == "" || seen[n] {
			t.Errorf("instance name %q empty or duplicate", n)
		}
		seen[n] = true
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 13 {
		t.Fatalf("registry has %d workloads, want 13: %v", len(names), names)
	}
	for _, name := range names {
		inst, err := Get(name, VariantDefault)
		if err != nil {
			t.Fatalf("Get(%s): %v", name, err)
		}
		if inst.Name() == "" {
			t.Errorf("%s instance has empty name", name)
		}
	}
	if _, err := Get("kdtree", VariantAfter); err != nil {
		t.Errorf("kdtree after variant: %v", err)
	}
	if _, err := Get("nope", VariantDefault); err == nil {
		t.Error("unknown workload did not error")
	}
	if _, err := Get("fib", Variant("weird")); err == nil {
		t.Error("unknown variant did not error")
	}
	if len(Describe()) != len(names) {
		t.Error("Describe and Names disagree")
	}
}

func TestAlignmentCorrect(t *testing.T) {
	inst := NewAlignment(AlignmentParams{Sequences: 12, MinLen: 20, MaxLen: 50, Seed: 29})
	tr := runOn(t, inst, 8)
	// One task per pair.
	if want := 12*11/2 + 1; len(tr.Tasks) != want {
		t.Errorf("tasks = %d, want %d", len(tr.Tasks), want)
	}
}

func TestAlignmentScalesLinearly(t *testing.T) {
	mk := func() *AlignmentInstance { return NewAlignment(DefaultAlignmentParams()) }
	i1 := mk()
	t1 := runOn(t, i1, 1).Makespan()
	i2 := mk()
	t8 := runOn(t, i2, 8).Makespan()
	if sp := float64(t1) / float64(t8); sp < 5 {
		t.Errorf("8-core alignment speedup = %.1f, want near-linear", sp)
	}
}

func TestFloorplanFindsOptimum(t *testing.T) {
	for _, cores := range []int{1, 4, 16} {
		inst := NewFloorplan(DefaultFloorplanParams())
		runOn(t, inst, cores)
		if inst.BestArea <= 0 {
			t.Fatalf("no placement found on %d cores", cores)
		}
	}
}

func TestFloorplanShapeDependsOnSchedule(t *testing.T) {
	// The paper: "the shape of the graph changes for different thread
	// counts" because pruning depends on when the bound improves. The
	// RESULT must not change; the task count may.
	counts := map[int]int{}
	for _, cores := range []int{1, 48} {
		inst := NewFloorplan(DefaultFloorplanParams())
		tr := runOn(t, inst, cores)
		counts[cores] = len(tr.Tasks)
	}
	if counts[1] == counts[48] {
		t.Logf("note: task counts happened to match (%d); pruning non-determinism not exercised by this instance", counts[1])
	} else {
		t.Logf("task counts differ across machine sizes as the paper describes: %v", counts)
	}
}
