package workloads

// The giant stress workload: a UTS-shaped tree sized to produce on the
// order of a million grains, the scale the parallel analysis kernels are
// built for. The classic UTS geometric process only reaches that size at
// the critical point q·m → 1, where the variance explodes and tree size is
// a lottery on the seed; instead, giant forces fertility down to FullDepth
// (a complete m-ary trunk of known size) and lets the usual subcritical
// geometric tails hang below it, so the node count concentrates tightly
// around trunk·(1 + tail) and is exactly reproducible per seed.
//
// With m=4, q=18% (tail mean 0.72, expected tail size 1/(1−0.72) ≈ 3.6)
// and FullDepth 9 (trunk (4^10−1)/3 = 349 525 nodes, 262 144 leaves), the
// expected total is ≈ 349 525 + 262 144·2.57 ≈ 1.02 M grains. The smoke
// variant keeps the exact shape three levels shallower for CI.

// GiantUTSParams sizes the default ~1M-grain stress tree.
func GiantUTSParams() UTSParams {
	return UTSParams{BranchFactor: 4, ProbPercent: 18, MaxDepth: 200, FullDepth: 9, Seed: 46}
}

// SmokeGiantParams is the reduced-size giant for CI smoke runs: identical
// shape, FullDepth 6 (trunk 5 461 nodes), landing in the tens of thousands
// of grains — big enough to exercise every parallel kernel's multi-chunk
// path, small enough for a pull-request gate.
func SmokeGiantParams() UTSParams {
	return UTSParams{BranchFactor: 4, ProbPercent: 18, MaxDepth: 200, FullDepth: 6, Seed: 46}
}

// NewGiant creates the giant stress instance.
func NewGiant(p UTSParams) *UTSInstance { return NewUTS(p) }
