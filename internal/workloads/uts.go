package workloads

import (
	"fmt"

	"graingraph/internal/profile"
	"graingraph/internal/rts"
)

// UTSParams configures the Unbalanced Tree Search port: count the nodes of
// an implicitly defined, highly unbalanced tree whose shape derives from a
// splittable hash of node identifiers. The paper reports UTS suffers poor
// parallel benefit for most of its (millions of) grains and would profit
// from inlining or depth cutoffs (§4.3.6).
type UTSParams struct {
	// BranchFactor m and Probability q define the geometric distribution:
	// each node has m children with probability q (expected size stays
	// finite for q*m < 1).
	BranchFactor int
	ProbPercent  int // q in percent
	MaxDepth     int // safety bound
	// Cutoff stops task creation below this depth (0 = a task per node,
	// the troubled original).
	Cutoff int
	// FullDepth forces fertility for every node shallower than it, so the
	// tree is a complete m-ary tree down to FullDepth with geometric
	// subcritical tails below — the knob the giant stress workload uses to
	// dial tree size deterministically without riding the critical point of
	// the pure geometric process. 0 (the default) is the classic UTS shape.
	FullDepth int
	Seed      uint64
}

// DefaultUTSParams is the troubled original: a task per tree node.
func DefaultUTSParams() UTSParams {
	return UTSParams{BranchFactor: 4, ProbPercent: 24, MaxDepth: 200, Cutoff: 0, Seed: 46}
}

// UTSInstance is a runnable UTS workload.
type UTSInstance struct {
	P     UTSParams
	Nodes uint64 // counted tree size
}

// NewUTS creates a UTS instance.
func NewUTS(p UTSParams) *UTSInstance { return &UTSInstance{P: p} }

// Name implements Instance.
func (u *UTSInstance) Name() string {
	if u.P.FullDepth > 0 {
		return fmt.Sprintf("uts-m%d-q%d-full%d-cut%d",
			u.P.BranchFactor, u.P.ProbPercent, u.P.FullDepth, u.P.Cutoff)
	}
	return fmt.Sprintf("uts-m%d-q%d-cut%d", u.P.BranchFactor, u.P.ProbPercent, u.P.Cutoff)
}

// Key implements Keyed: the content address covers every parameter.
func (u *UTSInstance) Key() string { return paramKey("uts", u.P) }

// mix is the splittable hash defining the tree shape deterministically.
func mix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// hasChildren decides a node's fertility from its hash and depth: nodes
// above FullDepth are unconditionally fertile, the rest follow the
// geometric distribution.
func (u *UTSInstance) hasChildren(h uint64, depth int) bool {
	return depth < u.P.FullDepth || int(h%100) < u.P.ProbPercent
}

// countSeqTree counts the subtree rooted at h serially, returning node
// count and hash evaluations.
func (u *UTSInstance) countSeqTree(h uint64, depth int) (uint64, uint64) {
	nodes, hashes := uint64(1), uint64(1)
	if depth >= u.P.MaxDepth || !u.hasChildren(h, depth) {
		return nodes, hashes
	}
	for i := 0; i < u.P.BranchFactor; i++ {
		n, hh := u.countSeqTree(mix(h+uint64(i)+1), depth+1)
		nodes += n
		hashes += hh
	}
	return nodes, hashes
}

// Program implements Instance: a task per node (or per subtree below the
// cutoff); each task evaluates the node's hash (real work) and spawns its
// children.
func (u *UTSInstance) Program() func(rts.Ctx) {
	return func(c rts.Ctx) {
		var total uint64
		var visit func(c rts.Ctx, h uint64, depth int)
		visit = func(c rts.Ctx, h uint64, depth int) {
			if u.P.Cutoff > 0 && depth >= u.P.Cutoff {
				nodes, hashes := u.countSeqTree(h, depth)
				total += nodes
				c.Compute(hashes * costHash * 8)
				return
			}
			total++
			c.Compute(costHash * 8)
			if depth >= u.P.MaxDepth || !u.hasChildren(h, depth) {
				return
			}
			for i := 0; i < u.P.BranchFactor; i++ {
				child := mix(h + uint64(i) + 1)
				c.Spawn(profile.Loc("uts.go", 77, "parTreeSearch"), func(c rts.Ctx) {
					visit(c, child, depth+1)
				})
			}
			c.TaskWait()
		}
		total = 0
		// The root hash: ensure a non-trivial tree by forcing fertility at
		// the root (retry seeds deterministically).
		h := mix(u.P.Seed)
		for !u.hasChildren(h, 0) {
			h = mix(h)
		}
		c.Spawn(profile.Loc("uts.go", 70, "parTreeSearch"), func(c rts.Ctx) {
			visit(c, h, 0)
		})
		c.TaskWait()
		u.Nodes = total
	}
}

// Verify implements Instance: the task-parallel count must match the
// sequential traversal.
func (u *UTSInstance) Verify() error {
	h := mix(u.P.Seed)
	for !u.hasChildren(h, 0) {
		h = mix(h)
	}
	want, _ := u.countSeqTree(h, 0)
	if u.Nodes != want {
		return fmt.Errorf("uts: counted %d nodes, want %d", u.Nodes, want)
	}
	return nil
}
