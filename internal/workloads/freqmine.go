package workloads

import (
	"fmt"

	"graingraph/internal/profile"
	"graingraph/internal/rts"
)

// FreqmineParams configures the Parsec Freqmine port. The program mines a
// transaction database for frequent itemsets (array-based FP-growth); its
// performance is dominated by the dynamically scheduled parallel for-loop
// in FP_tree::FP_growth_first() — "FPGF" — whose grains are wildly uneven:
// most iterations process items with tiny conditional pattern bases, while
// a few heavy items take orders of magnitude longer and sit "spaced
// irregularly across the iteration range" (paper §4.3.4, Figures 9/10), so
// the greedy dynamic schedule cannot balance them.
type FreqmineParams struct {
	Items        int // loop iterations of the FPGF instance (items to mine)
	Transactions int // synthetic database size
	AvgLen       int // dust items per transaction
	// HotItems is the number of heavy items (the paper's data shows a
	// handful of large grains; 7 cores suffice for the whole loop).
	HotItems   int
	MinSupport int
	// NumThreads caps the loop's thread count; 0 = all. Setting it to the
	// bin-packed minimum is the paper's resource optimization.
	NumThreads int
	Seed       uint64
}

// DefaultFreqmineParams shapes the dominant FPGF instance like Figure 10:
// 1292 chunks of disproportionate size, heavy items irregularly spaced.
func DefaultFreqmineParams() FreqmineParams {
	return FreqmineParams{Items: 1292, Transactions: 4000, AvgLen: 16,
		HotItems: 6, MinSupport: 4, Seed: 17}
}

// FreqmineInstance is a runnable Freqmine workload.
type FreqmineInstance struct {
	P FreqmineParams
	// db[t] is transaction t's item list.
	db [][]int32
	// bases[i] is item i's conditional-pattern-base size (support),
	// precomputed from the database once at construction.
	bases []int
	// Frequent counts per item (the mining result we verify).
	Frequent []int64
}

// hotItemID scatters the j-th heavy item pseudo-randomly across the
// iteration range — the irregular spacing that defeats greedy scheduling.
func hotItemID(j, items int) int32 { return int32((j*997 + 173) % items) }

// NewFreqmine creates a Freqmine instance with a synthetic transaction
// database: a handful of very popular items (huge conditional trees) at
// irregular positions plus uniform dust.
func NewFreqmine(p FreqmineParams) *FreqmineInstance {
	f := &FreqmineInstance{P: p}
	rng := newRNG(p.Seed)
	hot := make([]int32, p.HotItems)
	for j := range hot {
		hot[j] = hotItemID(j, p.Items)
	}
	f.db = make([][]int32, p.Transactions)
	for t := range f.db {
		var tx []int32
		// Each heavy item appears in ~half the transactions.
		for _, h := range hot {
			if rng.IntN(2) == 0 {
				tx = append(tx, h)
			}
		}
		for i := 0; i < p.AvgLen; i++ {
			tx = append(tx, int32(rng.IntN(p.Items)))
		}
		f.db[t] = tx
	}
	// Precompute conditional-pattern-base sizes (one real counting pass).
	f.bases = make([]int, p.Items)
	seen := make([]int32, p.Items) // last tx that counted the item, +1
	for t, tx := range f.db {
		for _, it := range tx {
			if seen[it] != int32(t)+1 {
				seen[it] = int32(t) + 1
				f.bases[it]++
			}
		}
	}
	return f
}

// Name implements Instance.
func (f *FreqmineInstance) Name() string {
	return fmt.Sprintf("freqmine-i%d-t%d-p%d", f.P.Items, f.P.Transactions, f.P.NumThreads)
}

// Key implements Keyed: the content address covers every parameter.
func (f *FreqmineInstance) Key() string { return paramKey("freqmine", f.P) }

// Program implements Instance: three instances of the FPGF loop (the
// paper: "the loop is instantiated thrice and the second instance takes up
// 70% of the program execution time"), dynamic schedule with chunk size 1.
func (f *FreqmineInstance) Program() func(rts.Ctx) {
	return func(c rts.Ctx) {
		items := f.P.Items
		f.Frequent = make([]int64, items)
		dbBytes := int64(0)
		for _, tx := range f.db {
			dbBytes += int64(len(tx)) * 4
		}
		dbRegion := c.Alloc("fpdb", dbBytes)
		treeRegion := c.Alloc("fptree", int64(f.P.Transactions)*256)
		c.Store(dbRegion, 0, dbBytes)
		c.Compute(uint64(f.P.Transactions) * costArith)

		opt := rts.ForOpt{Schedule: profile.ScheduleDynamic, Chunk: 1}
		// The paper's optimization sets num_threads only on the dominant
		// (second) instance in the source code.
		opt2 := opt
		opt2.NumThreads = f.P.NumThreads
		mine := func(scale uint64) func(c rts.Ctx, lo, hi int) {
			return func(c rts.Ctx, lo, hi int) {
				for i := lo; i < hi; i++ {
					// Real mining step: accumulate support over the item's
					// conditional pattern base (a real reduction, verified),
					// with conditional-tree construction cost growing
					// super-linearly in the base size.
					base := f.bases[i]
					var acc int64
					for k := 0; k < base; k++ {
						acc += int64(k&7) + 1
					}
					if base >= f.P.MinSupport {
						f.Frequent[i] += int64(base)
					}
					_ = acc
					work := uint64(base) * uint64(base) / 8
					c.Load(dbRegion, 0, int64(base+1)*64)
					c.LoadStrided(treeRegion, int64(i%64)*64, base/4+1, 4096)
					c.Compute((uint64(base)*20 + work*scale) * costCompare)
				}
			}
		}
		// Instance 1: initial projection (lighter).
		c.For(profile.Loc("fp_tree.cpp", 1849, "FP_growth_first"), 0, items, opt, mine(1))
		// Instance 2: the dominant one (~70% of execution time).
		c.For(profile.Loc("fp_tree.cpp", 1849, "FP_growth_first"), 0, items, opt2, mine(5))
		// Instance 3: residue.
		c.For(profile.Loc("fp_tree.cpp", 1849, "FP_growth_first"), 0, items, opt, mine(1))
	}
}

// Verify implements Instance: the mined support counts must match a fresh
// sequential recount of the database.
func (f *FreqmineInstance) Verify() error {
	if len(f.Frequent) == 0 {
		return fmt.Errorf("freqmine: not run")
	}
	recount := make([]int, f.P.Items)
	seen := make([]int, f.P.Items)
	for t, tx := range f.db {
		for _, it := range tx {
			if seen[it] != t+1 {
				seen[it] = t + 1
				recount[it]++
			}
		}
	}
	for i := range f.Frequent {
		var want int64
		if recount[i] >= f.P.MinSupport {
			want = int64(recount[i]) * 3 // three loop instances accumulate
		}
		if f.Frequent[i] != want {
			return fmt.Errorf("freqmine: item %d support %d, want %d", i, f.Frequent[i], want)
		}
	}
	return nil
}
