package workloads

import (
	"fmt"

	"graingraph/internal/machine"
	"graingraph/internal/profile"
	"graingraph/internal/rts"
)

// SortParams configures the BOTS Sort port: three-phase divide-and-conquer
// (parallel merge sort → sequential quick sort → insertion sort), with the
// cutoffs the paper calls "crucial for performance".
type SortParams struct {
	N int // elements
	// SeqCutoff switches to sequential quick sort below this subarray size
	// (phase 2). Lowering it creates more, smaller grains — the experiment
	// of Figure 5b.
	SeqCutoff int
	// MergeCutoff switches the parallel (cilkmerge-style) merge to a
	// sequential merge below this output size; 0 derives it from SeqCutoff.
	MergeCutoff int
	// InsertionCutoff switches quick sort to insertion sort (phase 3).
	InsertionCutoff int
	Seed            uint64
}

// DefaultSortParams mirrors the paper's well-tuned configuration at laptop
// scale: the array (2×16 MiB with the ping-pong buffer) exceeds a socket's
// L3 so memory placement matters, and the cutoff is sized so the grain
// graph lands near the paper's 815 grains (Figure 5a).
func DefaultSortParams() SortParams {
	return SortParams{N: 1 << 22, SeqCutoff: 16384, MergeCutoff: 65536, InsertionCutoff: 20, Seed: 11}
}

// SortInstance is a runnable Sort workload.
type SortInstance struct {
	P    SortParams
	data []int32
	tmp  []int32
}

// NewSort creates a Sort instance.
func NewSort(p SortParams) *SortInstance {
	return &SortInstance{P: p, data: make([]int32, p.N), tmp: make([]int32, p.N)}
}

// Name implements Instance.
func (s *SortInstance) Name() string { return fmt.Sprintf("sort-n%d-cut%d", s.P.N, s.P.SeqCutoff) }

// Key implements Keyed: the content address covers every parameter.
func (s *SortInstance) Key() string { return paramKey("sort", s.P) }

// Program implements Instance: the master initializes the array
// (first-touching every page), then sorts it with recursive tasks.
func (s *SortInstance) Program() func(rts.Ctx) {
	return func(c rts.Ctx) {
		n := s.P.N
		arr := c.Alloc("array", int64(n)*4)
		tmp := c.Alloc("tmp", int64(n)*4)

		// Sequential initialization by the master: under first-touch
		// placement every page lands on node 0 — the root cause of the
		// work inflation the paper fixes with round-robin placement.
		rng := newRNG(s.P.Seed)
		for i := range s.data {
			s.data[i] = int32(rng.Int32())
		}
		c.Store(arr, 0, int64(n)*4)
		c.Store(tmp, 0, int64(n)*4)
		c.Compute(uint64(n) * costArith)

		mergeCutoff := s.P.MergeCutoff
		if mergeCutoff <= 0 {
			mergeCutoff = 4 * s.P.SeqCutoff
		}

		// buf abstracts the two ping-pong buffers (BOTS cilksort alternates
		// merge direction between levels instead of copying back).
		type buf struct {
			d []int32
			r *machine.Region
		}
		bufA := buf{s.data, arr}
		bufB := buf{s.tmp, tmp}
		other := func(b buf) buf {
			if &b.d[0] == &s.data[0] {
				return bufB
			}
			return bufA
		}

		// pmerge merges the sorted runs src[alo:ahi] and src[blo:bhi] into
		// dst[out:...], splitting recursively like BOTS/cilkmerge: take the
		// midpoint of the larger run, binary-search its value in the other,
		// and merge the two halves as independent tasks.
		var pmerge func(c rts.Ctx, src, dst buf, alo, ahi, blo, bhi, out int)
		pmerge = func(c rts.Ctx, src, dst buf, alo, ahi, blo, bhi, out int) {
			an, bn := ahi-alo, bhi-blo
			if an < bn {
				alo, ahi, blo, bhi = blo, bhi, alo, ahi
				an, bn = bn, an
			}
			if an+bn <= mergeCutoff || bn == 0 {
				s.seqMerge(c, src.d, dst.d, src.r, dst.r, alo, ahi, blo, bhi, out)
				return
			}
			amid := alo + an/2
			pivot := src.d[amid]
			lo2, hi2 := blo, bhi
			for lo2 < hi2 {
				m := (lo2 + hi2) / 2
				if src.d[m] < pivot {
					lo2 = m + 1
				} else {
					hi2 = m
				}
			}
			bmid := lo2
			c.Compute(uint64(16) * costCompare) // binary search
			left := (amid - alo) + (bmid - blo)
			c.Spawn(profile.Loc("sort.go", 61, "pmerge"), func(c rts.Ctx) {
				pmerge(c, src, dst, alo, amid, blo, bmid, out)
			})
			c.Spawn(profile.Loc("sort.go", 62, "pmerge"), func(c rts.Ctx) {
				pmerge(c, src, dst, amid, ahi, bmid, bhi, out+left)
			})
			c.TaskWait()
		}

		// msort sorts [lo,hi) leaving the result in dst; recursion sorts the
		// halves into the other buffer and merges across.
		var msort func(c rts.Ctx, dst buf, lo, hi int)
		msort = func(c rts.Ctx, dst buf, lo, hi int) {
			size := hi - lo
			if size <= s.P.SeqCutoff {
				s.seqSortInto(c, dst.d, dst.r, lo, hi)
				return
			}
			mid := lo + size/2
			src := other(dst)
			c.Spawn(profile.Loc("sort.go", 42, "msort"), func(c rts.Ctx) { msort(c, src, lo, mid) })
			c.Spawn(profile.Loc("sort.go", 43, "msort"), func(c rts.Ctx) { msort(c, src, mid, hi) })
			c.TaskWait()
			pmerge(c, src, dst, lo, mid, mid, hi, lo)
			c.TaskWait()
		}
		msort(c, bufA, 0, n)
		c.TaskWait()
	}
}

// seqMerge really merges two sorted runs of src into dst[out:] and charges
// the scan cost.
func (s *SortInstance) seqMerge(c rts.Ctx, d, t []int32, srcReg, dstReg *machine.Region, alo, ahi, blo, bhi, out int) {
	i, j, k := alo, blo, out
	for i < ahi && j < bhi {
		if d[i] <= d[j] {
			t[k] = d[i]
			i++
		} else {
			t[k] = d[j]
			j++
		}
		k++
	}
	for ; i < ahi; i++ {
		t[k] = d[i]
		k++
	}
	for ; j < bhi; j++ {
		t[k] = d[j]
		k++
	}
	size := int64(k - out)
	c.Load(srcReg, int64(alo)*4, int64(ahi-alo)*4)
	c.Load(srcReg, int64(blo)*4, int64(bhi-blo)*4)
	c.Store(dstReg, int64(out)*4, size*4)
	c.Compute(uint64(size) * 3 * costCompare)
}

// seqSortInto really quick-sorts the input values of [lo,hi) into dst
// (with insertion sort below the cutoff) and charges the equivalent
// simulated cost. Input values always originate in s.data; when dst is the
// other buffer they are copied across first, as the real alternating-buffer
// cilksort does.
func (s *SortInstance) seqSortInto(c rts.Ctx, dst []int32, dstReg *machine.Region, lo, hi int) {
	if &dst[0] != &s.data[0] {
		copy(dst[lo:hi], s.data[lo:hi])
	}
	comparisons := s.quicksort(dst, lo, hi-1)
	c.Load(dstReg, int64(lo)*4, int64(hi-lo)*4)
	c.Store(dstReg, int64(lo)*4, int64(hi-lo)*4)
	c.Compute(uint64(comparisons) * costCompare)
}

// quicksort sorts d[lo..hi] inclusive and returns the comparison count.
func (s *SortInstance) quicksort(d []int32, lo, hi int) uint64 {
	var comps uint64
	for lo < hi {
		if hi-lo < s.P.InsertionCutoff {
			comps += s.insertion(d, lo, hi)
			return comps
		}
		p, cc := s.partition(d, lo, hi)
		comps += cc
		// Recurse into the smaller side to bound stack depth.
		if p-lo < hi-p {
			comps += s.quicksort(d, lo, p-1)
			lo = p + 1
		} else {
			comps += s.quicksort(d, p+1, hi)
			hi = p - 1
		}
	}
	return comps
}

func (s *SortInstance) partition(d []int32, lo, hi int) (int, uint64) {
	mid := lo + (hi-lo)/2
	// Median-of-three pivot.
	if d[mid] < d[lo] {
		d[mid], d[lo] = d[lo], d[mid]
	}
	if d[hi] < d[lo] {
		d[hi], d[lo] = d[lo], d[hi]
	}
	if d[hi] < d[mid] {
		d[hi], d[mid] = d[mid], d[hi]
	}
	pivot := d[mid]
	d[mid], d[hi-1] = d[hi-1], d[mid]
	i, j := lo, hi-1
	var comps uint64
	for {
		for i++; d[i] < pivot; i++ {
			comps++
		}
		for j--; d[j] > pivot; j-- {
			comps++
		}
		comps += 2
		if i >= j {
			break
		}
		d[i], d[j] = d[j], d[i]
	}
	d[i], d[hi-1] = d[hi-1], d[i]
	return i, comps
}

func (s *SortInstance) insertion(d []int32, lo, hi int) uint64 {
	var comps uint64
	for i := lo + 1; i <= hi; i++ {
		v := d[i]
		j := i - 1
		for j >= lo && d[j] > v {
			d[j+1] = d[j]
			j--
			comps++
		}
		d[j+1] = v
		comps++
	}
	return comps
}

// Verify implements Instance.
func (s *SortInstance) Verify() error {
	for i := 1; i < len(s.data); i++ {
		if s.data[i-1] > s.data[i] {
			return fmt.Errorf("sort: data[%d]=%d > data[%d]=%d", i-1, s.data[i-1], i, s.data[i])
		}
	}
	// Checksum invariance is checked by tests regenerating the input.
	return nil
}
