package workloads

import (
	"fmt"

	"graingraph/internal/profile"
	"graingraph/internal/rts"
)

// AlignmentParams configures the BOTS Alignment (SPEC 358.botsalgn) port:
// Smith-Waterman local alignment of every protein pair, one task per pair.
// The paper reports it scales linearly with all metrics clean (§4.3.6).
type AlignmentParams struct {
	Sequences int // number of protein sequences
	MinLen    int // sequence lengths are uniform in [MinLen, MaxLen]
	MaxLen    int
	Seed      uint64
}

// DefaultAlignmentParams is the paper's prot.200.aa shape at laptop scale.
func DefaultAlignmentParams() AlignmentParams {
	return AlignmentParams{Sequences: 40, MinLen: 40, MaxLen: 120, Seed: 29}
}

// AlignmentInstance is a runnable Alignment workload.
type AlignmentInstance struct {
	P    AlignmentParams
	seqs [][]byte
	// Scores[i*n+j] is the best local-alignment score of pair (i,j), i<j.
	Scores []int32
}

// NewAlignment creates an Alignment instance with deterministic synthetic
// protein sequences (20-letter alphabet).
func NewAlignment(p AlignmentParams) *AlignmentInstance {
	a := &AlignmentInstance{P: p}
	rng := newRNG(p.Seed)
	a.seqs = make([][]byte, p.Sequences)
	for i := range a.seqs {
		l := p.MinLen + rng.IntN(p.MaxLen-p.MinLen+1)
		s := make([]byte, l)
		for j := range s {
			s[j] = byte('A' + rng.IntN(20))
		}
		a.seqs[i] = s
	}
	return a
}

// Name implements Instance.
func (a *AlignmentInstance) Name() string { return fmt.Sprintf("alignment-s%d", a.P.Sequences) }

// Key implements Keyed: the content address covers every parameter.
func (a *AlignmentInstance) Key() string { return paramKey("alignment", a.P) }

// smithWaterman really computes the best local-alignment score with linear
// gap penalty (match +2, mismatch -1, gap -1), returning the score and the
// number of DP cells evaluated.
func smithWaterman(x, y []byte) (int32, uint64) {
	prev := make([]int32, len(y)+1)
	cur := make([]int32, len(y)+1)
	var best int32
	for i := 1; i <= len(x); i++ {
		for j := 1; j <= len(y); j++ {
			sub := int32(-1)
			if x[i-1] == y[j-1] {
				sub = 2
			}
			v := prev[j-1] + sub
			if g := prev[j] - 1; g > v {
				v = g
			}
			if g := cur[j-1] - 1; g > v {
				v = g
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
	}
	return best, uint64(len(x)) * uint64(len(y))
}

// Program implements Instance: the master spawns one task per sequence
// pair, exactly like BOTS align's doubly nested loop of tasks.
func (a *AlignmentInstance) Program() func(rts.Ctx) {
	return func(c rts.Ctx) {
		n := a.P.Sequences
		a.Scores = make([]int32, n*n)
		var total int64
		for _, s := range a.seqs {
			total += int64(len(s))
		}
		seqR := c.Alloc("sequences", total)
		c.Store(seqR, 0, total)
		offsets := make([]int64, n+1)
		for i, s := range a.seqs {
			offsets[i+1] = offsets[i] + int64(len(s))
		}

		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				i, j := i, j
				c.Spawn(profile.Loc("sequence.c", 583, "pairalign"), func(c rts.Ctx) {
					score, cells := smithWaterman(a.seqs[i], a.seqs[j])
					a.Scores[i*n+j] = score
					c.Load(seqR, offsets[i], int64(len(a.seqs[i])))
					c.Load(seqR, offsets[j], int64(len(a.seqs[j])))
					c.Compute(cells * 6 * costArith)
				})
			}
		}
		c.TaskWait()
	}
}

// Verify implements Instance: recompute a sample of pairs sequentially.
func (a *AlignmentInstance) Verify() error {
	if len(a.Scores) == 0 {
		return fmt.Errorf("alignment: not run")
	}
	n := a.P.Sequences
	for i := 0; i < n; i += 7 {
		for j := i + 1; j < n; j += 5 {
			want, _ := smithWaterman(a.seqs[i], a.seqs[j])
			if a.Scores[i*n+j] != want {
				return fmt.Errorf("alignment: pair (%d,%d) score %d, want %d",
					i, j, a.Scores[i*n+j], want)
			}
		}
	}
	return nil
}
