package workloads

import (
	"fmt"

	"graingraph/internal/profile"
	"graingraph/internal/rts"
)

// FloorplanParams configures the BOTS Floorplan port: branch-and-bound
// search for the minimum-area placement of rectangular cells on a grid.
// Because branches are pruned against a bound that other tasks update
// concurrently, the program has "non-deterministic behavior built-in": the
// set of tasks created — and hence the grain graph's shape — legitimately
// changes with the thread count (paper §4.3.6).
type FloorplanParams struct {
	// Cells to place; each is WxH. Kept small: the search is exponential.
	Cells [][2]int
	// GridW/GridH bound the floor area.
	GridW, GridH int
	// Cutoff stops task creation below this search depth.
	Cutoff int
}

// DefaultFloorplanParams is a 6-cell instance.
func DefaultFloorplanParams() FloorplanParams {
	return FloorplanParams{
		Cells: [][2]int{{3, 2}, {2, 2}, {1, 4}, {2, 1}, {3, 1}, {1, 1}},
		GridW: 6, GridH: 6,
		Cutoff: 3,
	}
}

// FloorplanInstance is a runnable Floorplan workload.
type FloorplanInstance struct {
	P FloorplanParams
	// BestArea is the minimum bounding-box area found.
	BestArea int32
}

// NewFloorplan creates a Floorplan instance.
func NewFloorplan(p FloorplanParams) *FloorplanInstance { return &FloorplanInstance{P: p} }

// Name implements Instance.
func (f *FloorplanInstance) Name() string { return fmt.Sprintf("floorplan-c%d", len(f.P.Cells)) }

// Key implements Keyed: the content address covers every parameter.
func (f *FloorplanInstance) Key() string { return paramKey("floorplan", f.P) }

// grid is an occupancy bitmap.
type fpGrid struct {
	w, h  int
	cells []bool
}

func (g *fpGrid) clone() *fpGrid {
	return &fpGrid{w: g.w, h: g.h, cells: append([]bool{}, g.cells...)}
}

func (g *fpGrid) fits(x, y, w, h int) bool {
	if x+w > g.w || y+h > g.h {
		return false
	}
	for i := 0; i < w; i++ {
		for j := 0; j < h; j++ {
			if g.cells[(y+j)*g.w+x+i] {
				return false
			}
		}
	}
	return true
}

func (g *fpGrid) place(x, y, w, h int, v bool) {
	for i := 0; i < w; i++ {
		for j := 0; j < h; j++ {
			g.cells[(y+j)*g.w+x+i] = v
		}
	}
}

// area of the bounding box covering all placed cells.
func boundingArea(placed [][4]int) int32 {
	maxX, maxY := 0, 0
	for _, p := range placed {
		if p[0]+p[2] > maxX {
			maxX = p[0] + p[2]
		}
		if p[1]+p[3] > maxY {
			maxY = p[1] + p[3]
		}
	}
	return int32(maxX) * int32(maxY)
}

// Program implements Instance: branch-and-bound with a shared best bound.
// Below the task cutoff (or when the bound prunes) branches run serially.
// The shared bound is read/updated by tasks as they run — the source of the
// schedule-dependent pruning the paper describes.
func (f *FloorplanInstance) Program() func(rts.Ctx) {
	return func(c rts.Ctx) {
		best := int32(f.P.GridW*f.P.GridH) + 1
		// The simulator runs task bodies one at a time, so the shared bound
		// needs no lock; its VALUE still depends on execution order.
		var search func(c rts.Ctx, g *fpGrid, idx int, placed [][4]int, depth int)
		tryPlacements := func(c rts.Ctx, g *fpGrid, idx int, placed [][4]int, depth int, spawn bool) {
			cell := f.P.Cells[idx]
			for _, dims := range [][2]int{{cell[0], cell[1]}, {cell[1], cell[0]}} {
				w, h := dims[0], dims[1]
				for y := 0; y < g.h; y++ {
					for x := 0; x < g.w; x++ {
						c.Compute(uint64(w*h) * costCompare)
						if !g.fits(x, y, w, h) {
							continue
						}
						next := append(append([][4]int{}, placed...), [4]int{x, y, w, h})
						// Prune against the shared bound.
						if boundingArea(next) >= best {
							continue
						}
						ng := g.clone()
						ng.place(x, y, w, h, true)
						if spawn {
							c.Spawn(profile.Loc("floorplan.c", 188, "add_cell"), func(c rts.Ctx) {
								search(c, ng, idx+1, next, depth+1)
							})
						} else {
							search(c, ng, idx+1, next, depth+1)
						}
					}
				}
			}
		}
		search = func(c rts.Ctx, g *fpGrid, idx int, placed [][4]int, depth int) {
			if idx == len(f.P.Cells) {
				if a := boundingArea(placed); a < best {
					best = a
				}
				c.Compute(10 * costArith)
				return
			}
			spawn := depth < f.P.Cutoff
			tryPlacements(c, g, idx, placed, depth, spawn)
			if spawn {
				c.TaskWait()
			}
		}
		g := &fpGrid{w: f.P.GridW, h: f.P.GridH, cells: make([]bool, f.P.GridW*f.P.GridH)}
		search(c, g, 0, nil, 0)
		c.TaskWait()
		f.BestArea = best
	}
}

// Verify implements Instance: the found optimum must match an exhaustive
// serial search (the optimum is schedule-independent even though the
// explored tree is not).
func (f *FloorplanInstance) Verify() error {
	best := int32(f.P.GridW*f.P.GridH) + 1
	var search func(g *fpGrid, idx int, placed [][4]int)
	search = func(g *fpGrid, idx int, placed [][4]int) {
		if idx == len(f.P.Cells) {
			if a := boundingArea(placed); a < best {
				best = a
			}
			return
		}
		cell := f.P.Cells[idx]
		for _, dims := range [][2]int{{cell[0], cell[1]}, {cell[1], cell[0]}} {
			w, h := dims[0], dims[1]
			for y := 0; y < g.h; y++ {
				for x := 0; x < g.w; x++ {
					if !g.fits(x, y, w, h) {
						continue
					}
					next := append(append([][4]int{}, placed...), [4]int{x, y, w, h})
					if boundingArea(next) >= best {
						continue
					}
					g.place(x, y, w, h, true)
					search(g, idx+1, next)
					g.place(x, y, w, h, false)
				}
			}
		}
	}
	g := &fpGrid{w: f.P.GridW, h: f.P.GridH, cells: make([]bool, f.P.GridW*f.P.GridH)}
	search(g, 0, nil)
	if f.BestArea != best {
		return fmt.Errorf("floorplan: best area %d, want %d", f.BestArea, best)
	}
	return nil
}
