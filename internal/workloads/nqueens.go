package workloads

import (
	"fmt"

	"graingraph/internal/profile"
	"graingraph/internal/rts"
)

// NQueensParams configures the BOTS NQueens port: count all placements of
// N queens, spawning a task per first-levels branch with a depth cutoff.
// The paper reports NQueens scales linearly with all metrics clean.
type NQueensParams struct {
	N      int
	Cutoff int // rows below which the search runs serially
}

// DefaultNQueensParams is the paper's shape (input 14) at laptop scale.
func DefaultNQueensParams() NQueensParams { return NQueensParams{N: 10, Cutoff: 3} }

// NQueensInstance is a runnable NQueens workload.
type NQueensInstance struct {
	P        NQueensParams
	Solution uint64
}

// NewNQueens creates an NQueens instance.
func NewNQueens(p NQueensParams) *NQueensInstance { return &NQueensInstance{P: p} }

// Name implements Instance.
func (q *NQueensInstance) Name() string { return fmt.Sprintf("nqueens-n%d", q.P.N) }

// Key implements Keyed: the content address covers every parameter.
func (q *NQueensInstance) Key() string { return paramKey("nqueens", q.P) }

// safe reports whether a queen may go at row len(cols) column col.
func safe(cols []int, col int) bool {
	row := len(cols)
	for r, c := range cols {
		if c == col || c-col == row-r || col-c == row-r {
			return false
		}
	}
	return true
}

// countSeq exhaustively counts solutions below the task cutoff, returning
// the solution count and the number of board positions probed.
func countSeq(n int, cols []int) (uint64, uint64) {
	if len(cols) == n {
		return 1, 1
	}
	var sols, probes uint64
	for col := 0; col < n; col++ {
		probes++
		if safe(cols, col) {
			s, p := countSeq(n, append(cols, col))
			sols += s
			probes += p
		}
	}
	return sols, probes
}

// Program implements Instance.
func (q *NQueensInstance) Program() func(rts.Ctx) {
	return func(c rts.Ctx) {
		n := q.P.N
		var total uint64 // mutated by tasks; the simulator is sequential
		var rec func(c rts.Ctx, cols []int)
		rec = func(c rts.Ctx, cols []int) {
			if len(cols) >= q.P.Cutoff {
				sols, probes := countSeq(n, cols)
				c.Compute(probes * costCompare * uint64(len(cols)+1))
				total += sols
				return
			}
			for col := 0; col < n; col++ {
				c.Compute(costCompare * uint64(len(cols)+1))
				if safe(cols, col) {
					branch := append(append([]int{}, cols...), col)
					c.Spawn(profile.Loc("nqueens.go", 47, "nqueens"), func(c rts.Ctx) {
						rec(c, branch)
					})
				}
			}
			c.TaskWait()
		}
		total = 0
		rec(c, nil)
		c.TaskWait()
		q.Solution = total
	}
}

// Verify implements Instance.
func (q *NQueensInstance) Verify() error {
	want, _ := countSeq(q.P.N, nil)
	if q.Solution != want {
		return fmt.Errorf("nqueens(%d) = %d, want %d", q.P.N, q.Solution, want)
	}
	return nil
}
