package workloads

import (
	"fmt"
	"sort"
	"strings"
)

// Variant selects a workload configuration by name; most workloads have the
// paper's "before" (troubled) and "after" (optimized) variants.
type Variant string

// Registry entries.
const (
	VariantDefault Variant = ""
	VariantBefore  Variant = "before"
	VariantAfter   Variant = "after"
	// VariantSmoke is a reduced-size configuration for CI smoke runs.
	VariantSmoke Variant = "smoke"
)

// Spec describes a registered workload.
type Spec struct {
	Name        string
	Description string
	Variants    []Variant
	Make        func(v Variant) (Instance, error)
}

var registry = []Spec{
	{
		Name:        "sort",
		Description: "BOTS Sort: parallel merge sort + quick/insertion phases (before = first-touch pages; use -policy for the fix)",
		Variants:    []Variant{VariantDefault, VariantBefore, VariantAfter},
		Make: func(v Variant) (Instance, error) {
			return NewSort(DefaultSortParams()), nil
		},
	},
	{
		Name:        "fft",
		Description: "BOTS FFT: recursive Cooley-Tukey (before = no cutoff; after = recursion cutoffs)",
		Variants:    []Variant{VariantDefault, VariantBefore, VariantAfter},
		Make: func(v Variant) (Instance, error) {
			if v == VariantAfter {
				return NewFFT(OptimizedFFTParams()), nil
			}
			return NewFFT(DefaultFFTParams()), nil
		},
	},
	{
		Name:        "strassen",
		Description: "BOTS Strassen: matrix multiply (before = hard-coded cutoff bug; after = SC honoured)",
		Variants:    []Variant{VariantDefault, VariantBefore, VariantAfter},
		Make: func(v Variant) (Instance, error) {
			if v == VariantAfter {
				return NewStrassen(FixedStrassenParams()), nil
			}
			return NewStrassen(DefaultStrassenParams()), nil
		},
	},
	{
		Name:        "sparselu",
		Description: "SPEC 359.botsspar: blocked sparse LU (before = cache-hostile bmod; after = loop interchange)",
		Variants:    []Variant{VariantDefault, VariantBefore, VariantAfter},
		Make: func(v Variant) (Instance, error) {
			if v == VariantAfter {
				return NewSparseLU(OptimizedSparseLUParams()), nil
			}
			return NewSparseLU(DefaultSparseLUParams()), nil
		},
	},
	{
		Name:        "kdtree",
		Description: "SPEC 376.kdtree: neighbour sweep (before = missing depth increment bug; after = fixed cutoffs)",
		Variants:    []Variant{VariantDefault, VariantBefore, VariantAfter},
		Make: func(v Variant) (Instance, error) {
			if v == VariantAfter {
				return NewKdTree(FixedKdTreeParams()), nil
			}
			return NewKdTree(DefaultKdTreeParams()), nil
		},
	},
	{
		Name:        "freqmine",
		Description: "Parsec Freqmine: FP-growth FPGF loop with wildly uneven chunks",
		Variants:    []Variant{VariantDefault},
		Make: func(v Variant) (Instance, error) {
			return NewFreqmine(DefaultFreqmineParams()), nil
		},
	},
	{
		Name:        "nqueens",
		Description: "BOTS NQueens: solution counting with a depth cutoff (scales linearly)",
		Variants:    []Variant{VariantDefault},
		Make: func(v Variant) (Instance, error) {
			return NewNQueens(DefaultNQueensParams()), nil
		},
	},
	{
		Name:        "fib",
		Description: "Task-parallel Fibonacci with a depth cutoff (the classic illustration)",
		Variants:    []Variant{VariantDefault},
		Make: func(v Variant) (Instance, error) {
			return NewFib(DefaultFibParams()), nil
		},
	},
	{
		Name:        "uts",
		Description: "Unbalanced Tree Search: a task per node (poor parallel benefit for most grains)",
		Variants:    []Variant{VariantDefault},
		Make: func(v Variant) (Instance, error) {
			return NewUTS(DefaultUTSParams()), nil
		},
	},
	{
		Name:        "giant",
		Description: "Giant stress tree: UTS-shaped, ~1M grains (smoke = reduced size for CI); exercises the parallel analysis kernels",
		Variants:    []Variant{VariantDefault, VariantSmoke},
		Make: func(v Variant) (Instance, error) {
			if v == VariantSmoke {
				return NewGiant(SmokeGiantParams()), nil
			}
			return NewGiant(GiantUTSParams()), nil
		},
	},
	{
		Name:        "alignment",
		Description: "BOTS Alignment (SPEC 358.botsalgn): Smith-Waterman per protein pair (scales linearly)",
		Variants:    []Variant{VariantDefault},
		Make: func(v Variant) (Instance, error) {
			return NewAlignment(DefaultAlignmentParams()), nil
		},
	},
	{
		Name:        "floorplan",
		Description: "BOTS Floorplan: branch-and-bound placement with schedule-dependent pruning",
		Variants:    []Variant{VariantDefault},
		Make: func(v Variant) (Instance, error) {
			return NewFloorplan(DefaultFloorplanParams()), nil
		},
	},
	{
		Name:        "blackscholes",
		Description: "Parsec Blackscholes: one parallel for-loop pricing a portfolio",
		Variants:    []Variant{VariantDefault},
		Make: func(v Variant) (Instance, error) {
			return NewBlackscholes(DefaultBlackscholesParams()), nil
		},
	},
}

// Names lists registered workloads alphabetically.
func Names() []string {
	out := make([]string, 0, len(registry))
	for _, s := range registry {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

// Describe returns the registry's specs for help text.
func Describe() []Spec { return append([]Spec{}, registry...) }

// Get builds a workload instance by name and variant.
func Get(name string, variant Variant) (Instance, error) {
	for _, s := range registry {
		if s.Name != name {
			continue
		}
		ok := variant == VariantDefault
		for _, v := range s.Variants {
			if v == variant {
				ok = true
			}
		}
		if !ok {
			return nil, fmt.Errorf("workloads: %s has no variant %q (have %v)", name, variant, s.Variants)
		}
		return s.Make(variant)
	}
	return nil, fmt.Errorf("workloads: unknown workload %q (have %s)", name, strings.Join(Names(), ", "))
}
