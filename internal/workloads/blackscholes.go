package workloads

import (
	"fmt"
	"math"

	"graingraph/internal/profile"
	"graingraph/internal/rts"
)

// BlackscholesParams configures the Parsec Blackscholes port: one parallel
// for-loop pricing a portfolio of European options with the Black-Scholes
// closed-form formula. The paper reports >65% of its chunks have poor
// memory-hierarchy utilization and ~33% low parallel benefit despite good
// overall speedup (§4.3.6).
type BlackscholesParams struct {
	N         int // options
	ChunkSize int
	Schedule  profile.ScheduleKind
	Seed      uint64
}

// DefaultBlackscholesParams is the paper's shape at laptop scale.
func DefaultBlackscholesParams() BlackscholesParams {
	return BlackscholesParams{N: 100_000, ChunkSize: 256, Schedule: profile.ScheduleStatic, Seed: 23}
}

type option struct {
	s, k, r, v, t float64
	call          bool
}

// BlackscholesInstance is a runnable Blackscholes workload.
type BlackscholesInstance struct {
	P       BlackscholesParams
	options []option
	Prices  []float64
}

// NewBlackscholes creates an instance with a deterministic portfolio.
func NewBlackscholes(p BlackscholesParams) *BlackscholesInstance {
	b := &BlackscholesInstance{P: p, options: make([]option, p.N), Prices: make([]float64, p.N)}
	rng := newRNG(p.Seed)
	for i := range b.options {
		b.options[i] = option{
			s:    50 + 100*rng.Float64(),
			k:    50 + 100*rng.Float64(),
			r:    0.01 + 0.05*rng.Float64(),
			v:    0.1 + 0.5*rng.Float64(),
			t:    0.25 + 2*rng.Float64(),
			call: rng.IntN(2) == 0,
		}
	}
	return b
}

// Name implements Instance.
func (b *BlackscholesInstance) Name() string {
	return fmt.Sprintf("blackscholes-n%d-c%d", b.P.N, b.P.ChunkSize)
}

// Key implements Keyed: the content address covers every parameter.
func (b *BlackscholesInstance) Key() string { return paramKey("blackscholes", b.P) }

// cnd is the cumulative normal distribution (Abramowitz-Stegun polynomial,
// as in the Parsec source).
func cnd(x float64) float64 {
	sign := false
	if x < 0 {
		x = -x
		sign = true
	}
	k := 1.0 / (1.0 + 0.2316419*x)
	poly := k * (0.319381530 + k*(-0.356563782+k*(1.781477937+k*(-1.821255978+k*1.330274429))))
	n := 1.0 - 1.0/math.Sqrt(2*math.Pi)*math.Exp(-x*x/2)*poly
	if sign {
		return 1.0 - n
	}
	return n
}

// price evaluates the closed-form Black-Scholes formula.
func price(o option) float64 {
	d1 := (math.Log(o.s/o.k) + (o.r+o.v*o.v/2)*o.t) / (o.v * math.Sqrt(o.t))
	d2 := d1 - o.v*math.Sqrt(o.t)
	if o.call {
		return o.s*cnd(d1) - o.k*math.Exp(-o.r*o.t)*cnd(d2)
	}
	return o.k*math.Exp(-o.r*o.t)*cnd(-d2) - o.s*cnd(-d1)
}

// Program implements Instance.
func (b *BlackscholesInstance) Program() func(rts.Ctx) {
	return func(c rts.Ctx) {
		n := b.P.N
		in := c.Alloc("options", int64(n)*48)
		out := c.Alloc("prices", int64(n)*8)
		c.Store(in, 0, int64(n)*48)
		c.Compute(uint64(n) * costArith)

		c.For(profile.Loc("blackscholes.c", 358, "bs_thread"), 0, n,
			rts.ForOpt{Schedule: b.P.Schedule, Chunk: b.P.ChunkSize},
			func(c rts.Ctx, lo, hi int) {
				for i := lo; i < hi; i++ {
					b.Prices[i] = price(b.options[i])
				}
				size := int64(hi - lo)
				c.Load(in, int64(lo)*48, size*48)
				c.Store(out, int64(lo)*8, size*8)
				// ~40 flops + 2 transcendentals per option; the formula is
				// cheap relative to its streaming footprint, which is what
				// starves the memory hierarchy.
				c.Compute(uint64(size) * 60 * costFlop)
			})
	}
}

// Verify implements Instance: spot-checks prices against an independent
// evaluation, including put-call parity.
func (b *BlackscholesInstance) Verify() error {
	if len(b.Prices) == 0 {
		return fmt.Errorf("blackscholes: not run")
	}
	for i := 0; i < len(b.options); i += 997 {
		o := b.options[i]
		want := price(o)
		if d := math.Abs(b.Prices[i] - want); d > 1e-12 {
			return fmt.Errorf("blackscholes: option %d price %g, want %g", i, b.Prices[i], want)
		}
		// Put-call parity: C - P = S - K e^{-rT}.
		call, put := o, o
		call.call, put.call = true, false
		parity := price(call) - price(put) - (o.s - o.k*math.Exp(-o.r*o.t))
		if math.Abs(parity) > 1e-3*o.s {
			return fmt.Errorf("blackscholes: put-call parity violated by %g at %d", parity, i)
		}
	}
	return nil
}
