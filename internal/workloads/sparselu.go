package workloads

import (
	"fmt"
	"math"

	"graingraph/internal/machine"
	"graingraph/internal/profile"
	"graingraph/internal/rts"
)

// SparseLUParams configures the SPEC 359.botsspar port: LU factorization of
// a sparse matrix of NB×NB blocks, each BS×BS, with tasks for the fwd,
// bdiv and bmod kernels. The program exposes two interleaved phases per
// outer iteration — fwd/bdiv (little parallelism) then bmod (lots) — and
// suffers widespread work inflation whose root cause is bmod's
// cache-unfriendly triple-nested loop (paper §4.3.2, Figure 6).
type SparseLUParams struct {
	NB int // blocks per dimension
	BS int // block size
	// LoopInterchange applies the paper's fix: interchanging bmod's loops
	// into a cache-friendly (ikj) access pattern.
	LoopInterchange bool
	Seed            uint64
}

// DefaultSparseLUParams mirrors the paper's figure input shape at laptop
// scale, with the original cache-hostile bmod.
func DefaultSparseLUParams() SparseLUParams {
	return SparseLUParams{NB: 10, BS: 32, LoopInterchange: false, Seed: 9}
}

// OptimizedSparseLUParams applies the loop interchange.
func OptimizedSparseLUParams() SparseLUParams {
	p := DefaultSparseLUParams()
	p.LoopInterchange = true
	return p
}

// SparseLUInstance is a runnable SparseLU workload.
type SparseLUInstance struct {
	P SparseLUParams
	// blocks[i*NB+j] is nil for empty blocks (sparse occupancy as in BOTS).
	blocks []([]float64)
	orig   []([]float64) // copy of the input for verification
	regs   []*machine.Region
}

// NewSparseLU creates a SparseLU instance with the BOTS occupancy pattern.
func NewSparseLU(p SparseLUParams) *SparseLUInstance {
	s := &SparseLUInstance{P: p}
	s.blocks = make([][]float64, p.NB*p.NB)
	s.orig = make([][]float64, p.NB*p.NB)
	return s
}

// Name implements Instance.
func (s *SparseLUInstance) Name() string {
	opt := "orig"
	if s.P.LoopInterchange {
		opt = "interchanged"
	}
	return fmt.Sprintf("sparselu-nb%d-bs%d-%s", s.P.NB, s.P.BS, opt)
}

// Key implements Keyed: the content address covers every parameter.
func (s *SparseLUInstance) Key() string { return paramKey("sparselu", s.P) }

// occupied reproduces BOTS genmat's sparsity pattern (null_entry logic).
func occupied(ii, jj, nb int) bool {
	nullEntry := false
	if ii < jj && ii%3 != 0 {
		nullEntry = true
	}
	if ii > jj && jj%3 != 0 {
		nullEntry = true
	}
	if ii%2 == 1 {
		nullEntry = true
	}
	if jj%2 == 1 {
		nullEntry = true
	}
	if ii == jj {
		nullEntry = false
	}
	if ii == jj-1 || ii-1 == jj {
		nullEntry = false
	}
	return !nullEntry
}

func (s *SparseLUInstance) allocBlock(c rts.Ctx, ii, jj int) []float64 {
	bs := s.P.BS
	blk := make([]float64, bs*bs)
	s.blocks[ii*s.P.NB+jj] = blk
	if s.regs[ii*s.P.NB+jj] == nil {
		// Regions are padded 8×: a column walk of this row-major block uses
		// only one of the eight elements in every cache line it fetches, so
		// its effective footprint — and the address range the cache-hostile
		// bmod variant touches — is eight times the dense block size.
		s.regs[ii*s.P.NB+jj] = c.Alloc(fmt.Sprintf("blk%d_%d", ii, jj), int64(bs*bs)*64)
	}
	return blk
}

func (s *SparseLUInstance) reg(ii, jj int) *machine.Region { return s.regs[ii*s.P.NB+jj] }

// Program implements Instance: the master creates tasks per outer
// iteration — lu0 inline, then fwd+bdiv tasks (phase 1), taskwait, then
// bmod tasks (phase 2), taskwait — the two interleaved phases of Figure 6a.
func (s *SparseLUInstance) Program() func(rts.Ctx) {
	return func(c rts.Ctx) {
		nb, bs := s.P.NB, s.P.BS
		s.regs = make([]*machine.Region, nb*nb)
		rng := newRNG(s.P.Seed)
		for ii := 0; ii < nb; ii++ {
			for jj := 0; jj < nb; jj++ {
				s.blocks[ii*nb+jj] = nil
				if occupied(ii, jj, nb) {
					blk := s.allocBlock(c, ii, jj)
					for k := range blk {
						blk[k] = rng.Float64()*2 - 1
					}
					// Diagonal dominance keeps the factorization stable.
					if ii == jj {
						for d := 0; d < bs; d++ {
							blk[d*bs+d] += float64(2 * bs)
						}
					}
					c.Store(s.reg(ii, jj), 0, int64(bs*bs)*8)
				}
			}
		}
		for i := range s.blocks {
			if s.blocks[i] != nil {
				s.orig[i] = append([]float64(nil), s.blocks[i]...)
			} else {
				s.orig[i] = nil
			}
		}
		c.Compute(uint64(nb*nb*bs) * costArith)

		for k := 0; k < nb; k++ {
			k := k
			// lu0 on the diagonal block, inline in the master.
			s.lu0(c, k)

			// Phase 1: fwd on row k, bdiv on column k.
			for j := k + 1; j < nb; j++ {
				j := j
				if s.blocks[k*nb+j] != nil {
					c.Spawn(profile.Loc("sparselu.go", 229, "fwd"), func(c rts.Ctx) {
						s.fwd(c, k, j)
					})
				}
				if s.blocks[j*nb+k] != nil {
					c.Spawn(profile.Loc("sparselu.go", 235, "bdiv"), func(c rts.Ctx) {
						s.bdiv(c, k, j)
					})
				}
			}
			c.TaskWait()

			// Phase 2: bmod on the trailing submatrix.
			for i := k + 1; i < nb; i++ {
				for j := k + 1; j < nb; j++ {
					i, j := i, j
					if s.blocks[i*nb+k] != nil && s.blocks[k*nb+j] != nil {
						c.Spawn(profile.Loc("sparselu.go", 246, "bmod"), func(c rts.Ctx) {
							s.bmod(c, i, j, k)
						})
					}
				}
			}
			c.TaskWait()
		}
	}
}

// lu0 factorizes the diagonal block in place (Doolittle, no pivoting).
func (s *SparseLUInstance) lu0(c rts.Ctx, k int) {
	bs := s.P.BS
	d := s.blocks[k*s.P.NB+k]
	for i := 1; i < bs; i++ {
		for j := 0; j < i; j++ {
			d[i*bs+j] /= d[j*bs+j]
			for l := j + 1; l < bs; l++ {
				d[i*bs+l] -= d[i*bs+j] * d[j*bs+l]
			}
		}
	}
	c.Load(s.reg(k, k), 0, int64(bs*bs)*8)
	c.Store(s.reg(k, k), 0, int64(bs*bs)*8)
	c.Compute(uint64(bs) * uint64(bs) * uint64(bs) / 3 * 2 * costFlop)
}

// fwd solves L * X = B for a row-k block: B := L^-1 B with L unit lower
// triangular from the diagonal block.
func (s *SparseLUInstance) fwd(c rts.Ctx, k, j int) {
	bs := s.P.BS
	diag := s.blocks[k*s.P.NB+k]
	b := s.blocks[k*s.P.NB+j]
	for i := 1; i < bs; i++ {
		for l := 0; l < i; l++ {
			f := diag[i*bs+l]
			for col := 0; col < bs; col++ {
				b[i*bs+col] -= f * b[l*bs+col]
			}
		}
	}
	c.Load(s.reg(k, k), 0, int64(bs*bs)*8)
	c.Load(s.reg(k, j), 0, int64(bs*bs)*8)
	c.Store(s.reg(k, j), 0, int64(bs*bs)*8)
	c.Compute(uint64(bs) * uint64(bs) * uint64(bs) * costFlop)
}

// bdiv solves X * U = B for a column-k block: B := B U^-1 with U upper
// triangular from the diagonal block.
func (s *SparseLUInstance) bdiv(c rts.Ctx, k, i int) {
	bs := s.P.BS
	diag := s.blocks[k*s.P.NB+k]
	b := s.blocks[i*s.P.NB+k]
	for r := 0; r < bs; r++ {
		for jc := 0; jc < bs; jc++ {
			b[r*bs+jc] /= diag[jc*bs+jc]
			for l := jc + 1; l < bs; l++ {
				b[r*bs+l] -= b[r*bs+jc] * diag[jc*bs+l]
			}
		}
	}
	c.Load(s.reg(k, k), 0, int64(bs*bs)*8)
	c.Load(s.reg(i, k), 0, int64(bs*bs)*8)
	c.Store(s.reg(i, k), 0, int64(bs*bs)*8)
	c.Compute(uint64(bs) * uint64(bs) * uint64(bs) * costFlop)
}

// bmod computes A[i][j] -= A[i][k] * A[k][j], allocating A[i][j] if it was
// an empty block (fill-in, as in BOTS). The original loop nest walks the
// right operand down columns — a stride-BS access per inner step; the
// paper's loop interchange makes it stride-1.
func (s *SparseLUInstance) bmod(c rts.Ctx, i, j, k int) {
	nb, bs := s.P.NB, s.P.BS
	a := s.blocks[i*nb+k]
	b := s.blocks[k*nb+j]
	dst := s.blocks[i*nb+j]
	if dst == nil {
		dst = s.allocBlock(c, i, j)
		s.orig[i*nb+j] = nil // fill-in block: zero in the original matrix
	}
	if s.P.LoopInterchange {
		// Cache-friendly ikj: inner loop streams rows of b and dst.
		for r := 0; r < bs; r++ {
			for l := 0; l < bs; l++ {
				f := a[r*bs+l]
				for col := 0; col < bs; col++ {
					dst[r*bs+col] -= f * b[l*bs+col]
				}
			}
		}
		// Streaming reads of b's dense prefix: every fetched line is fully
		// used, and the block stays resident across output rows.
		for r := 0; r < bs; r++ {
			c.Load(s.reg(i, k), int64(r*bs)*8, int64(bs)*8)
			c.Load(s.reg(k, j), 0, int64(bs*bs)*8)
			c.Load(s.reg(i, j), int64(r*bs)*8, int64(bs)*8)
			c.Store(s.reg(i, j), int64(r*bs)*8, int64(bs)*8)
		}
	} else {
		// Original ijk: the inner product walks b column-wise, a
		// stride-BS*8 access pattern that thrashes the caches.
		for r := 0; r < bs; r++ {
			for col := 0; col < bs; col++ {
				var sum float64
				for l := 0; l < bs; l++ {
					sum += a[r*bs+l] * b[l*bs+col]
				}
				dst[r*bs+col] -= sum
			}
		}
		// Column walks over b waste 7/8 of every fetched line; in the padded
		// region model that is a strided sweep over the 8×-shadow address
		// range, whose working set overflows the private caches.
		for r := 0; r < bs; r++ {
			c.Load(s.reg(i, k), int64(r*bs)*8, int64(bs)*8)
			c.LoadStrided(s.reg(k, j), int64(r%8)*64, bs*bs/8, 512)
			c.Load(s.reg(i, j), int64(r*bs)*8, int64(bs)*8)
			c.Store(s.reg(i, j), int64(r*bs)*8, int64(bs)*8)
		}
	}
	c.Compute(uint64(bs) * uint64(bs) * uint64(bs) * 2 * costFlop)
}

// Verify implements Instance: reconstructs L×U on the block level and
// compares against the original matrix. Works on the dense representation
// assembled from blocks.
func (s *SparseLUInstance) Verify() error {
	nb, bs := s.P.NB, s.P.BS
	n := nb * bs
	dense := func(src [][]float64) []float64 {
		out := make([]float64, n*n)
		for ii := 0; ii < nb; ii++ {
			for jj := 0; jj < nb; jj++ {
				blk := src[ii*nb+jj]
				if blk == nil {
					continue
				}
				for r := 0; r < bs; r++ {
					copy(out[(ii*bs+r)*n+jj*bs:(ii*bs+r)*n+jj*bs+bs], blk[r*bs:r*bs+bs])
				}
			}
		}
		return out
	}
	lu := dense(s.blocks)
	orig := dense(s.orig)

	// Rebuild A = L*U from the packed factorization and compare.
	var maxErr, ref float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			kmax := i
			if j < i {
				kmax = j
			}
			for k := 0; k < kmax; k++ {
				sum += lu[i*n+k] * lu[k*n+j]
			}
			if j >= i { // diagonal of L is 1
				sum += lu[i*n+j]
			} else {
				sum += lu[i*n+j] * lu[j*n+j]
			}
			diff := math.Abs(sum - orig[i*n+j])
			if diff > maxErr {
				maxErr = diff
			}
			if a := math.Abs(orig[i*n+j]); a > ref {
				ref = a
			}
		}
	}
	if maxErr > 1e-6*ref*float64(n) {
		return fmt.Errorf("sparselu: reconstruction error %g (ref %g)", maxErr, ref)
	}
	return nil
}
