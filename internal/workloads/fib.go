package workloads

import (
	"fmt"

	"graingraph/internal/profile"
	"graingraph/internal/rts"
)

// FibParams configures the classic task-parallel Fibonacci example the
// paper uses to illustrate how depth cutoffs control recursion depth and
// leaf grain size (§4.3.6).
type FibParams struct {
	N      int
	Cutoff int // spawn tasks only above this depth-from-root... below n
}

// DefaultFibParams matches the paper's shape (input 48, cutoff 12) scaled
// to laptop size: the serial leaves still dominate total work.
func DefaultFibParams() FibParams { return FibParams{N: 28, Cutoff: 8} }

// FibInstance is a runnable Fibonacci workload.
type FibInstance struct {
	P      FibParams
	result uint64
}

// NewFib creates a Fib instance.
func NewFib(p FibParams) *FibInstance { return &FibInstance{P: p} }

// Name implements Instance.
func (f *FibInstance) Name() string { return fmt.Sprintf("fib-n%d-cut%d", f.P.N, f.P.Cutoff) }

// Key implements Keyed: the content address covers every parameter.
func (f *FibInstance) Key() string { return paramKey("fib", f.P) }

// fibSeq computes fib(n) and the number of recursive calls performed.
func fibSeq(n int) (uint64, uint64) {
	if n < 2 {
		return uint64(n), 1
	}
	a, ca := fibSeq(n - 1)
	b, cb := fibSeq(n - 2)
	return a + b, ca + cb + 1
}

// Program implements Instance: task-parallel fib with a depth cutoff; below
// the cutoff the leaf computes serially (really, and charges cost
// proportional to the call tree it evaluated).
func (f *FibInstance) Program() func(rts.Ctx) {
	return func(c rts.Ctx) {
		var fib func(c rts.Ctx, n, depth int) uint64
		fib = func(c rts.Ctx, n, depth int) uint64 {
			if n < 2 {
				c.Compute(costArith)
				return uint64(n)
			}
			if depth >= f.P.Cutoff {
				v, calls := fibSeq(n)
				c.Compute(calls * costArith * 2)
				return v
			}
			var a, b uint64
			c.Spawn(profile.Loc("fib.go", 30, "fib"), func(c rts.Ctx) { a = fib(c, n-1, depth+1) })
			c.Spawn(profile.Loc("fib.go", 31, "fib"), func(c rts.Ctx) { b = fib(c, n-2, depth+1) })
			c.TaskWait()
			c.Compute(costArith)
			return a + b
		}
		f.result = fib(c, f.P.N, 0)
	}
}

// Verify implements Instance.
func (f *FibInstance) Verify() error {
	want, _ := fibSeq(f.P.N)
	if f.result != want {
		return fmt.Errorf("fib(%d) = %d, want %d", f.P.N, f.result, want)
	}
	return nil
}
