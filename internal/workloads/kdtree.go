package workloads

import (
	"fmt"
	"sort"

	"graingraph/internal/profile"
	"graingraph/internal/rts"
)

// KdTreeParams configures the SPEC 376.kdtree port: build a 2-d tree over
// random points, then sweep it with tasks finding neighbours within a
// radius for every point.
//
// The original program takes a cutoff that should stop task creation below
// a recursion depth, but kdnode::sweeptree() forgets to increment the depth
// on its recursive calls, so the cutoff never engages and the program
// creates a task per tree node (paper §2, Figure 2). MissingDepthIncrement
// reproduces the bug; the fixed variant increments depth and uses a
// separate sweep cutoff, as in the paper's optimization.
type KdTreeParams struct {
	N      int     // points
	Radius float64 // neighbour search radius
	Cutoff int     // task-creation depth cutoff
	// SweepCutoff is the separate cutoff the fix introduces for the sweep
	// phase (ignored while the bug is active).
	SweepCutoff int
	// MissingDepthIncrement reproduces the original bug.
	MissingDepthIncrement bool
	Seed                  uint64
}

// DefaultKdTreeParams mirrors the paper's small input (tree size 200,
// radius 10, cutoff 2) — the configuration of Figure 2.
func DefaultKdTreeParams() KdTreeParams {
	return KdTreeParams{N: 200, Radius: 0.1, Cutoff: 2, SweepCutoff: 2,
		MissingDepthIncrement: true, Seed: 13}
}

// FixedKdTreeParams applies the paper's fix: depth increments on recursive
// calls, original cutoff raised, separate sweep cutoff.
func FixedKdTreeParams() KdTreeParams {
	return KdTreeParams{N: 200, Radius: 0.1, Cutoff: 8, SweepCutoff: 4,
		MissingDepthIncrement: false, Seed: 13}
}

// PerfKdTreeParams is the performance-evaluation input for Figure 1: big
// enough that the per-node task explosion's overhead dominates the small
// per-point searches.
func PerfKdTreeParams(fixed bool) KdTreeParams {
	p := KdTreeParams{N: 4000, Radius: 0.02, Cutoff: 2, SweepCutoff: 2,
		MissingDepthIncrement: true, Seed: 13}
	if fixed {
		p.MissingDepthIncrement = false
		p.Cutoff = 8
		p.SweepCutoff = 6
	}
	return p
}

type kdPoint struct{ x, y float64 }

type kdNode struct {
	pt          kdPoint
	axis        int
	left, right *kdNode
	index       int // node index for footprint accounting
}

// KdTreeInstance is a runnable kdtree workload.
type KdTreeInstance struct {
	P      KdTreeParams
	points []kdPoint
	root   *kdNode
	counts []int // neighbours found per point
}

// NewKdTree creates a kdtree instance.
func NewKdTree(p KdTreeParams) *KdTreeInstance {
	return &KdTreeInstance{P: p, points: make([]kdPoint, p.N), counts: make([]int, p.N)}
}

// Name implements Instance.
func (k *KdTreeInstance) Name() string {
	bug := "fixed"
	if k.P.MissingDepthIncrement {
		bug = "buggy"
	}
	return fmt.Sprintf("kdtree-n%d-cut%d-%s", k.P.N, k.P.Cutoff, bug)
}

// Key implements Keyed: the content address covers every parameter.
func (k *KdTreeInstance) Key() string { return paramKey("kdtree", k.P) }

// buildTree really builds a balanced 2-d tree (median splits).
func buildTree(pts []kdPoint, axis int, next *int) *kdNode {
	if len(pts) == 0 {
		return nil
	}
	sort.Slice(pts, func(i, j int) bool {
		if axis == 0 {
			return pts[i].x < pts[j].x
		}
		return pts[i].y < pts[j].y
	})
	mid := len(pts) / 2
	n := &kdNode{pt: pts[mid], axis: axis, index: *next}
	*next++
	n.left = buildTree(append([]kdPoint{}, pts[:mid]...), 1-axis, next)
	n.right = buildTree(append([]kdPoint{}, pts[mid+1:]...), 1-axis, next)
	return n
}

// searchRadius counts points within radius of q, returning the count and
// the number of nodes visited.
func searchRadius(n *kdNode, q kdPoint, r float64) (int, int) {
	if n == nil {
		return 0, 0
	}
	count, visited := 0, 1
	dx, dy := n.pt.x-q.x, n.pt.y-q.y
	if dx*dx+dy*dy <= r*r {
		count++
	}
	var diff float64
	if n.axis == 0 {
		diff = q.x - n.pt.x
	} else {
		diff = q.y - n.pt.y
	}
	near, far := n.left, n.right
	if diff > 0 {
		near, far = n.right, n.left
	}
	cn, vn := searchRadius(near, q, r)
	count += cn
	visited += vn
	if diff*diff <= r*r {
		cf, vf := searchRadius(far, q, r)
		count += cf
		visited += vf
	}
	return count, visited
}

// Program implements Instance: builds the tree in the master, then sweeps
// it with tasks. The sweep recursion spawns a task per node visited until
// the depth cutoff engages — which, with the bug, is never.
func (k *KdTreeInstance) Program() func(rts.Ctx) {
	return func(c rts.Ctx) {
		rng := newRNG(k.P.Seed)
		for i := range k.points {
			k.points[i] = kdPoint{rng.Float64(), rng.Float64()}
		}
		next := 0
		k.root = buildTree(append([]kdPoint{}, k.points...), 0, &next)
		nodes := c.Alloc("kdnodes", int64(k.P.N)*48)
		c.Store(nodes, 0, int64(k.P.N)*48)
		c.Compute(uint64(k.P.N) * 20 * costCompare) // build cost

		idx := 0 // point result slot allocator (sequential simulator)
		var sweep func(c rts.Ctx, n *kdNode, depth int)
		sweep = func(c rts.Ctx, n *kdNode, depth int) {
			if n == nil {
				return
			}
			// A separate task finds neighbours for this node's point ("tasks
			// are used to sweep the tree ... and to find neighbors for each
			// point", paper §2).
			slot := idx
			idx++
			c.Spawn(profile.Loc("kdtree.go", 120, "find_neighbors"), func(c rts.Ctx) {
				cnt, visited := searchRadius(k.root, n.pt, k.P.Radius)
				k.counts[slot] = cnt
				c.LoadStrided(nodes, int64(n.index)*48, visited, 48)
				c.Compute(uint64(visited) * 6 * costCompare)
			})

			cutoff := k.P.Cutoff
			if !k.P.MissingDepthIncrement {
				cutoff = k.P.SweepCutoff
			}
			childDepth := depth + 1
			if k.P.MissingDepthIncrement {
				// THE BUG (376.kdtree): recursive calls pass the same depth,
				// so "depth >= cutoff" below never becomes true and a task
				// is created for every tree node.
				childDepth = depth
			}
			if depth >= cutoff {
				// Serial sweep below the cutoff.
				var serial func(n *kdNode)
				serial = func(n *kdNode) {
					if n == nil {
						return
					}
					slot := idx
					idx++
					cnt, visited := searchRadius(k.root, n.pt, k.P.Radius)
					k.counts[slot] = cnt
					c.LoadStrided(nodes, int64(n.index)*48, visited, 48)
					c.Compute(uint64(visited) * 6 * costCompare)
					serial(n.left)
					serial(n.right)
				}
				serial(n.left)
				serial(n.right)
				c.TaskWait() // join the find_neighbors task spawned above
				return
			}
			if n.left != nil {
				c.Spawn(profile.Loc("kdtree.go", 88, "sweeptree"), func(c rts.Ctx) {
					sweep(c, n.left, childDepth)
				})
			}
			if n.right != nil {
				c.Spawn(profile.Loc("kdtree.go", 89, "sweeptree"), func(c rts.Ctx) {
					sweep(c, n.right, childDepth)
				})
			}
			c.TaskWait()
		}
		sweep(c, k.root, 0)
		c.TaskWait()
	}
}

// Verify implements Instance: neighbour counts must match brute force.
// Counts are order-independent (we compare multisets via sorted copies).
func (k *KdTreeInstance) Verify() error {
	want := make([]int, len(k.points))
	r2 := k.P.Radius * k.P.Radius
	for i, p := range k.points {
		for _, q := range k.points {
			dx, dy := p.x-q.x, p.y-q.y
			if dx*dx+dy*dy <= r2 {
				want[i]++
			}
		}
	}
	got := append([]int{}, k.counts...)
	sort.Ints(got)
	sort.Ints(want)
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("kdtree: neighbour count multiset differs at %d: %d vs %d", i, got[i], want[i])
		}
	}
	return nil
}
