package workloads

import (
	"fmt"
	"math"
	"math/cmplx"

	"graingraph/internal/profile"
	"graingraph/internal/rts"
)

// FFTParams configures the BOTS FFT port: recursive radix-2 Cooley-Tukey
// over complex samples, spawning tasks per divide. The original program has
// no effective cutoff and drowns in tiny grains (paper §4.3.3, Figure 7);
// the optimized variant adds the recursion cutoff the grain graph's
// parallel-benefit view motivates.
type FFTParams struct {
	N int // samples, power of two
	// Cutoff stops task creation below this subproblem size; 0 reproduces
	// the original program (tasks down to two-sample leaves).
	Cutoff int
	Seed   uint64
}

// DefaultFFTParams is the troubled original configuration at laptop scale.
func DefaultFFTParams() FFTParams { return FFTParams{N: 1 << 13, Cutoff: 0, Seed: 5} }

// OptimizedFFTParams adds the cutoff the paper derives from the grain
// graph.
func OptimizedFFTParams() FFTParams { return FFTParams{N: 1 << 13, Cutoff: 1 << 9, Seed: 5} }

// LargeFFTParams is the optimized program on a memory-resident input — the
// configuration of Figure 8, whose grain graph (≈4.6k grains) shows that
// poor memory-hierarchy utilization remains widespread after the cutoff
// fix.
func LargeFFTParams() FFTParams { return FFTParams{N: 1 << 20, Cutoff: 1 << 9, Seed: 5} }

// FFTInstance is a runnable FFT workload.
type FFTInstance struct {
	P     FFTParams
	out   []complex128
	input []complex128 // preserved for verification
}

// NewFFT creates an FFT instance. N must be a power of two.
func NewFFT(p FFTParams) *FFTInstance {
	if p.N == 0 || p.N&(p.N-1) != 0 {
		panic(fmt.Sprintf("workloads: FFT size %d not a power of two", p.N))
	}
	return &FFTInstance{
		P:     p,
		out:   make([]complex128, p.N),
		input: make([]complex128, p.N),
	}
}

// Name implements Instance.
func (f *FFTInstance) Name() string { return fmt.Sprintf("fft-n%d-cut%d", f.P.N, f.P.Cutoff) }

// Key implements Keyed: the content address covers every parameter.
func (f *FFTInstance) Key() string { return paramKey("fft", f.P) }

// log2 of a power of two.
func ilog2(n int) uint64 {
	l := uint64(0)
	for v := n; v > 1; v >>= 1 {
		l++
	}
	return l
}

// serialFFT really computes the transform of in (with the given stride)
// into out.
func serialFFT(out, in []complex128, n, stride int) {
	if n == 1 {
		out[0] = in[0]
		return
	}
	half := n / 2
	even := make([]complex128, half)
	odd := make([]complex128, half)
	serialFFT(even, in, half, stride*2)
	serialFFT(odd, in[stride:], half, stride*2)
	for k := 0; k < half; k++ {
		w := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
		out[k] = even[k] + w*odd[k]
		out[k+half] = even[k] - w*odd[k]
	}
}

// Program implements Instance: recursive decimation-in-time FFT with two
// tasks per divide, like BOTS fft.c:4680's fft_aux.
func (f *FFTInstance) Program() func(rts.Ctx) {
	return func(c rts.Ctx) {
		n := f.P.N
		rng := newRNG(f.P.Seed)
		data := make([]complex128, n)
		for i := 0; i < n; i++ {
			v := complex(rng.Float64()*2-1, rng.Float64()*2-1)
			data[i] = v
			f.input[i] = v
		}
		inR := c.Alloc("fft-in", int64(n)*16)
		outR := c.Alloc("fft-out", int64(n)*16)
		c.Store(inR, 0, int64(n)*16)
		c.Compute(uint64(n) * costArith)

		cutoff := f.P.Cutoff
		if cutoff < 2 {
			cutoff = 2 // leaves of size <= 2 always run serially
		}

		// off is the subproblem's position in the output region (the
		// natural index space for the simulated footprint).
		var fft func(c rts.Ctx, out, in []complex128, off int64, n, stride int)
		fft = func(c rts.Ctx, out, in []complex128, off int64, n, stride int) {
			if n <= cutoff {
				serialFFT(out, in, n, stride)
				c.Load(inR, off*16, int64(n)*16)
				c.Store(outR, off*16, int64(n)*16)
				c.Compute(uint64(n) * ilog2(n) * 10 * costArith)
				return
			}
			half := n / 2
			even := make([]complex128, half)
			odd := make([]complex128, half)
			c.Spawn(profile.Loc("fft.go", 4680, "fft_aux"), func(c rts.Ctx) {
				fft(c, even, in, off, half, stride*2)
			})
			c.Spawn(profile.Loc("fft.go", 4681, "fft_aux"), func(c rts.Ctx) {
				fft(c, odd, in[stride:], off+int64(half), half, stride*2)
			})
			c.TaskWait()
			for k := 0; k < half; k++ {
				w := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
				out[k] = even[k] + w*odd[k]
				out[k+half] = even[k] - w*odd[k]
			}
			c.Load(outR, off*16, int64(n)*16)
			c.Store(outR, off*16, int64(n)*16)
			c.Compute(uint64(n) * 10 * costArith)
		}
		fft(c, f.out, data, 0, n, 1)
		c.TaskWait()
	}
}

// Verify implements Instance: compares against a direct O(n^2) DFT — every
// bin on small inputs, a sample of bins on large ones.
func (f *FFTInstance) Verify() error {
	n := f.P.N
	bins := []int{0, 1, n / 2, n - 1}
	if n <= 256 {
		bins = bins[:0]
		for k := 0; k < n; k++ {
			bins = append(bins, k)
		}
	}
	for _, k := range bins {
		var want complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			want += f.input[t] * cmplx.Exp(complex(0, angle))
		}
		if d := cmplx.Abs(f.out[k] - want); d > 1e-6*float64(n) {
			return fmt.Errorf("fft: bin %d differs by %g", k, d)
		}
	}
	return nil
}
