// Package workloads ports the paper's benchmark programs to the simulated
// tasking runtime: Sort, FFT and Strassen (BOTS), SparseLU (SPEC
// 359.botsspar), KdTree (SPEC 376.kdtree), the Freqmine FPGF loop (Parsec),
// NQueens, Fib, UTS and Blackscholes.
//
// Each workload performs *real* computation on real data — arrays really
// get sorted, matrices really multiplied — so tests can verify results,
// while charging the simulated machine explicit compute cycles and memory
// accesses that mirror the real work's footprint. Crucially, the ports
// preserve the structural properties the paper's analyses hinge on,
// including the bugs: kdtree's missing depth increment, Strassen's
// hard-coded cutoff, SparseLU's cache-hostile bmod loop, Freqmine's
// irregular grain sizes.
package workloads

import (
	"fmt"
	"math/rand/v2"

	"graingraph/internal/rts"
)

// Cost constants: cycles per element for common operations. They size the
// virtual-time cost of real work and were chosen so default-parameter grain
// durations land in the regimes the paper reports (thousands of cycles for
// healthy grains, below the ~1000-cycle parallelization overhead for
// grains the parallel-benefit metric should flag).
const (
	costCompare = 1  // one comparison + branch
	costArith   = 1  // one arithmetic op
	costFlop    = 4  // one floating-point op
	costHash    = 10 // one hash/mix step
)

// newRNG returns a deterministic PCG for workload data generation.
func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
}

// Keyed is implemented by instances whose full input configuration can be
// content-addressed. The experiment harness memoizes simulation runs by
// (workload key, machine config, runtime knobs); two instances with equal
// keys must produce byte-identical traces under equal run configurations.
// All workloads in this package implement it; an instance that does not is
// simply never memoized.
type Keyed interface {
	// Key returns a deterministic fingerprint of the workload identity and
	// every parameter that influences its simulated execution.
	Key() string
}

// paramKey renders a workload's parameter struct into its content-address
// fragment. Params structs hold only values (ints, strings, value slices),
// so the %+v rendering is deterministic and collision-free per kind.
func paramKey(kind string, params any) string {
	return fmt.Sprintf("%s|%+v", kind, params)
}

// Instance is a configured, runnable, verifiable workload.
type Instance interface {
	// Name identifies the workload and variant.
	Name() string
	// Program returns the body to pass to rts.Run. Each invocation of the
	// returned program regenerates input data, so one Instance can run
	// repeatedly (e.g. a 1-core baseline followed by a 48-core run).
	Program() func(rts.Ctx)
	// Verify checks the result of the most recent run; it reports an error
	// describing the first mismatch against a sequential reference.
	Verify() error
}
