// Package binpack solves the makespan-preserving core-minimization problem
// the paper hands to Gecode in §4.3.4: given the grain (chunk) durations of
// an inherently imbalanced loop, find the minimum number of cores that can
// execute them within the same makespan. Freqmine's FPGF loop packs into 7
// cores this way.
//
// The solver is first-fit decreasing with an exact branch-and-bound
// fallback; FFD's result is provably optimal whenever it matches the
// capacity lower bound, which it does for makespan-dominated workloads like
// FPGF (the longest grain pins the capacity).
package binpack

import (
	"sort"
)

// LowerBound returns ceil(sum(items)/capacity), the fractional bin bound.
// Items longer than the capacity make the instance infeasible; they count
// as one bin each here, matching their treatment in Pack.
func LowerBound(items []uint64, capacity uint64) int {
	if capacity == 0 {
		return len(items)
	}
	var sum uint64
	for _, it := range items {
		sum += it
	}
	return int((sum + capacity - 1) / capacity)
}

// Result is a packing: bin index per item plus the bin loads.
type Result struct {
	Bins    int
	Assign  []int    // item index -> bin
	Loads   []uint64 // bin -> total load
	Optimal bool     // true when provably minimal
}

// Pack computes a packing of items into bins of the given capacity using
// first-fit decreasing, then attempts to prove optimality via the lower
// bound and (for small instances) exact branch and bound.
func Pack(items []uint64, capacity uint64) Result {
	n := len(items)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if items[order[a]] != items[order[b]] {
			return items[order[a]] > items[order[b]]
		}
		return order[a] < order[b]
	})

	assign := make([]int, n)
	var loads []uint64
	for _, idx := range order {
		it := items[idx]
		placed := false
		for b := range loads {
			if loads[b]+it <= capacity {
				loads[b] += it
				assign[idx] = b
				placed = true
				break
			}
		}
		if !placed {
			assign[idx] = len(loads)
			loads = append(loads, it)
		}
	}
	res := Result{Bins: len(loads), Assign: assign, Loads: loads}

	lb := LowerBound(items, capacity)
	if res.Bins == lb {
		res.Optimal = true
		return res
	}
	// Try to close the gap exactly on small instances.
	if n <= 24 {
		if exact, ok := branchAndBound(items, capacity, res.Bins); ok {
			return exact
		}
	}
	return res
}

// MinCores answers the paper's question directly: the minimum number of
// cores that preserves the given makespan for these grain durations.
func MinCores(durations []uint64, makespan uint64) int {
	return Pack(durations, makespan).Bins
}

// branchAndBound searches assignments exhaustively with pruning, bounded by
// ub (the FFD solution). Suitable only for small n.
func branchAndBound(items []uint64, capacity uint64, ub int) (Result, bool) {
	n := len(items)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return items[order[a]] > items[order[b]] })

	best := ub
	bestAssign := make([]int, n)
	cur := make([]int, n)
	loads := make([]uint64, n)
	found := false
	nodes := 0
	const nodeBudget = 2_000_000

	var rec func(pos, bins int) bool // returns false when budget exhausted
	rec = func(pos, bins int) bool {
		nodes++
		if nodes > nodeBudget {
			return false
		}
		if bins >= best {
			return true // prune
		}
		if pos == n {
			best = bins
			copy(bestAssign, cur)
			found = true
			return true
		}
		idx := order[pos]
		it := items[idx]
		seenEmpty := false
		for b := 0; b < bins+1 && b < best; b++ {
			if b == bins {
				if seenEmpty {
					break
				}
				seenEmpty = true
			}
			if loads[b]+it > capacity {
				continue
			}
			loads[b] += it
			cur[idx] = b
			nb := bins
			if b == bins {
				nb++
			}
			ok := rec(pos+1, nb)
			loads[b] -= it
			if !ok {
				return false
			}
		}
		return true
	}
	complete := rec(0, 0)
	if !found {
		return Result{}, false
	}
	res := Result{Bins: best, Assign: bestAssign, Optimal: complete}
	res.Loads = make([]uint64, best)
	for i, b := range bestAssign {
		res.Loads[b] += items[i]
	}
	return res, true
}
