package binpack

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestLowerBound(t *testing.T) {
	if lb := LowerBound([]uint64{5, 5, 5}, 10); lb != 2 {
		t.Errorf("LowerBound = %d, want 2", lb)
	}
	if lb := LowerBound([]uint64{10, 10}, 10); lb != 2 {
		t.Errorf("exact fit LowerBound = %d, want 2", lb)
	}
	if lb := LowerBound([]uint64{1, 1}, 0); lb != 2 {
		t.Errorf("zero capacity LowerBound = %d, want item count", lb)
	}
}

func TestPackSimple(t *testing.T) {
	res := Pack([]uint64{6, 4, 5, 5}, 10)
	if res.Bins != 2 {
		t.Errorf("bins = %d, want 2", res.Bins)
	}
	if !res.Optimal {
		t.Error("2-bin packing should be provably optimal (matches lower bound)")
	}
	validate(t, []uint64{6, 4, 5, 5}, 10, res)
}

func TestPackSingleWhale(t *testing.T) {
	// The Freqmine shape: one item ~= capacity plus many small ones.
	items := []uint64{100, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3}
	res := Pack(items, 100)
	// Whale takes one bin; 30 units of smalls need 1 more bin.
	if res.Bins != 2 {
		t.Errorf("bins = %d, want 2", res.Bins)
	}
	validate(t, items, 100, res)
}

func TestPackFFDHardInstanceExact(t *testing.T) {
	// FFD alone needs 3 bins here; exact packing needs 2:
	// capacity 12: {6,4,2} {5,4,3} fits in 2, FFD gives {6,5}(11) {4,4,3}(11) {2}? ->
	// FFD order 6 5 4 4 3 2: b1=6+5? 11, +4 no, b2=4+4+3=11, then 2 -> b1=13 no, b2=13 no, b3.
	items := []uint64{6, 5, 4, 4, 3, 2}
	res := Pack(items, 12)
	if res.Bins != 2 {
		t.Errorf("bins = %d, want exact optimum 2", res.Bins)
	}
	if !res.Optimal {
		t.Error("small instance should be solved optimally")
	}
	validate(t, items, 12, res)
}

func TestMinCoresMakespanPreserving(t *testing.T) {
	// 48-core run with makespan pinned by one long chunk of length 1000 and
	// 6000 units of small chunks: 7 cores suffice (1 + ceil(6000/1000)).
	durations := []uint64{1000}
	for i := 0; i < 600; i++ {
		durations = append(durations, 10)
	}
	if got := MinCores(durations, 1000); got != 7 {
		t.Errorf("MinCores = %d, want 7", got)
	}
}

func TestPackOversizedItem(t *testing.T) {
	// Items exceeding capacity each get their own bin rather than vanishing.
	items := []uint64{150, 50}
	res := Pack(items, 100)
	if res.Bins != 2 {
		t.Errorf("bins = %d, want 2", res.Bins)
	}
	if res.Assign[0] == res.Assign[1] {
		t.Error("oversized item shares a bin")
	}
}

func TestPackEmpty(t *testing.T) {
	res := Pack(nil, 100)
	if res.Bins != 0 || len(res.Assign) != 0 {
		t.Errorf("empty pack = %+v", res)
	}
}

// Property: packings are always feasible (no bin over capacity, unless a
// single item alone exceeds it) and never beat the lower bound.
func TestPackFeasibilityProperty(t *testing.T) {
	f := func(raw []uint16, capRaw uint16) bool {
		if len(raw) > 40 {
			raw = raw[:40]
		}
		capacity := uint64(capRaw)%1000 + 1
		items := make([]uint64, len(raw))
		for i, r := range raw {
			items[i] = uint64(r)%capacity + 1
		}
		res := Pack(items, capacity)
		if res.Bins < LowerBound(items, capacity) {
			return false
		}
		loads := make([]uint64, res.Bins)
		for i, b := range res.Assign {
			if b < 0 || b >= res.Bins {
				return false
			}
			loads[b] += items[i]
		}
		for b, l := range loads {
			if l > capacity {
				return false
			}
			if l != res.Loads[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: first-fit leaves at most one bin at most half full, so the
// packing never exceeds 2*LB + 1 bins (the testable corollary of FFD's
// quality guarantees against the fractional lower bound).
func TestPackQualityProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	for trial := 0; trial < 200; trial++ {
		capacity := uint64(rng.IntN(900) + 100)
		n := rng.IntN(60) + 1
		items := make([]uint64, n)
		for i := range items {
			items[i] = uint64(rng.IntN(int(capacity))) + 1
		}
		res := Pack(items, capacity)
		lb := LowerBound(items, capacity)
		if res.Bins > 2*lb+1 {
			t.Fatalf("FFD quality violated: %d bins for lower bound %d", res.Bins, lb)
		}
	}
}

func validate(t *testing.T, items []uint64, capacity uint64, res Result) {
	t.Helper()
	loads := make([]uint64, res.Bins)
	for i, b := range res.Assign {
		loads[b] += items[i]
	}
	for b, l := range loads {
		if l > capacity && l != items[0] { // oversized singleton allowed
			t.Errorf("bin %d overloaded: %d > %d", b, l, capacity)
		}
	}
}
