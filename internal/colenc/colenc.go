// Package colenc provides the self-describing column codecs shared by the
// columnar .ggp v2 sections and the derived-index sidecars (lod summary
// index, query metric table). Every vector is written as a uvarint element
// count followed by the element data, so a decoder can bounds-check the
// claimed size against the remaining payload *before* allocating — corrupt
// or truncated input fails with a structured error instead of an OOM or a
// panic.
//
// Fixed-width vectors (U64s/U32s/F64s) are little-endian and decode at
// near-memcpy cost. Varint vectors (U64sVar/I64sVar) trade decode speed for
// size on columns that are mostly small or zero (hardware counters, line
// numbers). String vectors store one shared blob plus monotonic end
// offsets; decoding materializes a single Go string and slices it, so a
// million labels cost one allocation for the backing store.
package colenc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt is wrapped by every decode error so callers can classify
// malformed input without matching message text.
var ErrCorrupt = errors.New("colenc: corrupt column")

// Buf is an append-only column encoder. The zero value is ready to use.
type Buf struct {
	b []byte
}

// Bytes returns the encoded payload. The slice aliases the builder's
// internal buffer; further appends may invalidate it.
func (e *Buf) Bytes() []byte { return e.b }

// Len returns the number of bytes encoded so far.
func (e *Buf) Len() int { return len(e.b) }

// Uvarint appends a single unsigned varint.
func (e *Buf) Uvarint(v uint64) {
	e.b = binary.AppendUvarint(e.b, v)
}

// Str appends a single length-prefixed string.
func (e *Buf) Str(s string) {
	e.Uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// U64s appends a fixed-width vector of 8-byte little-endian values.
func (e *Buf) U64s(v []uint64) {
	e.Uvarint(uint64(len(v)))
	e.b = growBy(e.b, 8*len(v))
	for _, x := range v {
		e.b = binary.LittleEndian.AppendUint64(e.b, x)
	}
}

// U32s appends a fixed-width vector of 4-byte little-endian values.
func (e *Buf) U32s(v []uint32) {
	e.Uvarint(uint64(len(v)))
	e.b = growBy(e.b, 4*len(v))
	for _, x := range v {
		e.b = binary.LittleEndian.AppendUint32(e.b, x)
	}
}

// F64s appends a fixed-width vector of float64 raw bits, little-endian.
// Round-tripping preserves every bit pattern, including NaNs.
func (e *Buf) F64s(v []float64) {
	e.Uvarint(uint64(len(v)))
	e.b = growBy(e.b, 8*len(v))
	for _, x := range v {
		e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(x))
	}
}

// U64sVar appends a vector of unsigned varints. Best for columns that are
// mostly zero or small (hardware counters).
func (e *Buf) U64sVar(v []uint64) {
	e.Uvarint(uint64(len(v)))
	for _, x := range v {
		e.b = binary.AppendUvarint(e.b, x)
	}
}

// I64sVar appends a vector of zigzag-encoded signed varints.
func (e *Buf) I64sVar(v []int64) {
	e.Uvarint(uint64(len(v)))
	for _, x := range v {
		e.b = binary.AppendVarint(e.b, x)
	}
}

// U8s appends a raw byte vector (node kinds, boundary kinds).
func (e *Buf) U8s(v []uint8) {
	e.Uvarint(uint64(len(v)))
	e.b = append(e.b, v...)
}

// Bools appends a bool vector, one byte per element.
func (e *Buf) Bools(v []bool) {
	e.Uvarint(uint64(len(v)))
	e.b = growBy(e.b, len(v))
	for _, x := range v {
		if x {
			e.b = append(e.b, 1)
		} else {
			e.b = append(e.b, 0)
		}
	}
}

// Strs appends a string vector as count, monotonic 4-byte end offsets, and
// one concatenated blob. The total blob size must fit in uint32.
func (e *Buf) Strs(v []string) {
	e.Uvarint(uint64(len(v)))
	total := 0
	for _, s := range v {
		total += len(s)
	}
	if uint64(total) > math.MaxUint32 {
		panic("colenc: string blob exceeds 4 GiB")
	}
	e.b = growBy(e.b, 4*len(v)+total)
	end := uint32(0)
	for _, s := range v {
		end += uint32(len(s))
		e.b = binary.LittleEndian.AppendUint32(e.b, end)
	}
	for _, s := range v {
		e.b = append(e.b, s...)
	}
}

// growBy ensures capacity for n more bytes without changing the length.
func growBy(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b
	}
	nb := make([]byte, len(b), len(b)+n+len(b)/2)
	copy(nb, b)
	return nb
}

// Reader decodes columns from a payload in sequence. Every accessor
// validates the claimed element count against the remaining bytes before
// allocating.
type Reader struct {
	b   []byte
	off int
}

// NewReader wraps a payload for sequential column decoding. Decoded
// vectors never alias b except for Strs blobs, which are copied into one
// fresh string per call.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Remaining returns the number of undecoded bytes.
func (d *Reader) Remaining() int { return len(d.b) - d.off }

// Done reports whether the payload was consumed exactly; decoders use it
// to reject sections with trailing garbage.
func (d *Reader) Done() bool { return d.off == len(d.b) }

func (d *Reader) corrupt(what string) error {
	return fmt.Errorf("%w: %s at offset %d", ErrCorrupt, what, d.off)
}

// Uvarint decodes a single unsigned varint.
func (d *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, d.corrupt("bad uvarint")
	}
	d.off += n
	return v, nil
}

// Str decodes a single length-prefixed string (a copy, not an alias).
func (d *Reader) Str() (string, error) {
	n, err := d.Uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(d.Remaining()) {
		return "", d.corrupt("string length exceeds payload")
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// count decodes a vector length and validates that n elements of width
// bytes each fit in the remaining payload (width 0 skips the check, for
// varint vectors whose minimum element size is 1).
func (d *Reader) count(width int) (int, error) {
	v, err := d.Uvarint()
	if err != nil {
		return 0, err
	}
	w := width
	if w == 0 {
		w = 1
	}
	if v > uint64(d.Remaining())/uint64(w) {
		return 0, d.corrupt("vector length exceeds payload")
	}
	return int(v), nil
}

// U64s decodes a fixed-width uint64 vector. Returns nil for length 0.
func (d *Reader) U64s() ([]uint64, error) {
	n, err := d.count(8)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	v := make([]uint64, n)
	for i := range v {
		v[i] = binary.LittleEndian.Uint64(d.b[d.off:])
		d.off += 8
	}
	return v, nil
}

// U32s decodes a fixed-width uint32 vector. Returns nil for length 0.
func (d *Reader) U32s() ([]uint32, error) {
	n, err := d.count(4)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	v := make([]uint32, n)
	for i := range v {
		v[i] = binary.LittleEndian.Uint32(d.b[d.off:])
		d.off += 4
	}
	return v, nil
}

// F64s decodes a fixed-width float64 vector. Returns nil for length 0.
func (d *Reader) F64s() ([]float64, error) {
	n, err := d.count(8)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
		d.off += 8
	}
	return v, nil
}

// U64sVar decodes an unsigned-varint vector. Returns nil for length 0.
func (d *Reader) U64sVar() ([]uint64, error) {
	n, err := d.count(0)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	v := make([]uint64, n)
	for i := range v {
		x, err := d.Uvarint()
		if err != nil {
			return nil, err
		}
		v[i] = x
	}
	return v, nil
}

// I64sVar decodes a zigzag signed-varint vector. Returns nil for length 0.
func (d *Reader) I64sVar() ([]int64, error) {
	n, err := d.count(0)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	v := make([]int64, n)
	for i := range v {
		x, w := binary.Varint(d.b[d.off:])
		if w <= 0 {
			return nil, d.corrupt("bad varint")
		}
		d.off += w
		v[i] = x
	}
	return v, nil
}

// U8s decodes a raw byte vector. Returns nil for length 0. The result is
// a copy, never an alias of the payload.
func (d *Reader) U8s() ([]uint8, error) {
	n, err := d.count(1)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	v := make([]uint8, n)
	copy(v, d.b[d.off:d.off+n])
	d.off += n
	return v, nil
}

// Bools decodes a bool vector. Any nonzero byte is true. Returns nil for
// length 0.
func (d *Reader) Bools() ([]bool, error) {
	n, err := d.count(1)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	v := make([]bool, n)
	for i := range v {
		v[i] = d.b[d.off+i] != 0
	}
	d.off += n
	return v, nil
}

// Strs decodes a string vector. All strings share one backing allocation.
// Returns nil for length 0.
func (d *Reader) Strs() ([]string, error) {
	n, err := d.count(4)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	ends := make([]uint32, n)
	prev := uint32(0)
	for i := range ends {
		e := binary.LittleEndian.Uint32(d.b[d.off:])
		d.off += 4
		if e < prev {
			return nil, d.corrupt("string offsets not monotonic")
		}
		ends[i] = e
		prev = e
	}
	blobLen := int(prev)
	if blobLen > d.Remaining() {
		return nil, d.corrupt("string blob exceeds payload")
	}
	blob := string(d.b[d.off : d.off+blobLen])
	d.off += blobLen
	v := make([]string, n)
	start := uint32(0)
	for i, e := range ends {
		v[i] = blob[start:e]
		start = e
	}
	return v, nil
}
