package colenc

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var e Buf
	u64 := []uint64{0, 1, math.MaxUint64, 42}
	u32 := []uint32{0, 7, math.MaxUint32}
	f64 := []float64{0, -1.5, math.Inf(1), math.NaN()}
	uv := []uint64{0, 0, 300, 1 << 50}
	iv := []int64{0, -1, 1, math.MinInt64, math.MaxInt64}
	u8 := []uint8{0, 255, 3}
	bs := []bool{true, false, true}
	ss := []string{"", "a", "hello world", ""}
	e.U64s(u64)
	e.U32s(u32)
	e.F64s(f64)
	e.U64sVar(uv)
	e.I64sVar(iv)
	e.U8s(u8)
	e.Bools(bs)
	e.Strs(ss)
	e.Uvarint(99)

	d := NewReader(e.Bytes())
	check := func(name string, got any, err error, want any) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			// NaN != NaN under DeepEqual for floats; handled below.
			t.Fatalf("%s: got %v want %v", name, got, want)
		}
	}
	g64, err := d.U64s()
	check("u64", g64, err, u64)
	g32, err := d.U32s()
	check("u32", g32, err, u32)
	gf, err := d.F64s()
	if err != nil {
		t.Fatal(err)
	}
	for i := range f64 {
		if math.Float64bits(gf[i]) != math.Float64bits(f64[i]) {
			t.Fatalf("f64[%d]: got %v want %v", i, gf[i], f64[i])
		}
	}
	guv, err := d.U64sVar()
	check("u64var", guv, err, uv)
	giv, err := d.I64sVar()
	check("i64var", giv, err, iv)
	g8, err := d.U8s()
	check("u8", g8, err, u8)
	gb, err := d.Bools()
	check("bools", gb, err, bs)
	gs, err := d.Strs()
	check("strs", gs, err, ss)
	v, err := d.Uvarint()
	if err != nil || v != 99 {
		t.Fatalf("uvarint: got %d, %v", v, err)
	}
	if !d.Done() {
		t.Fatalf("reader not done, %d bytes left", d.Remaining())
	}
}

func TestEmptyVectorsDecodeNil(t *testing.T) {
	var e Buf
	e.U64s(nil)
	e.Strs([]string{})
	d := NewReader(e.Bytes())
	if v, err := d.U64s(); err != nil || v != nil {
		t.Fatalf("empty u64s: %v, %v", v, err)
	}
	if v, err := d.Strs(); err != nil || v != nil {
		t.Fatalf("empty strs: %v, %v", v, err)
	}
}

func TestCorruptInputsFailClosed(t *testing.T) {
	// Oversized count claim: n=2^40 u64s in a 3-byte payload must be
	// rejected before allocation.
	var e Buf
	e.Uvarint(1 << 40)
	d := NewReader(e.Bytes())
	if _, err := d.U64s(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized count: got %v", err)
	}

	// Truncated fixed-width vector.
	var e2 Buf
	e2.U64s([]uint64{1, 2, 3})
	d = NewReader(e2.Bytes()[:10])
	if _, err := d.U64s(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated u64s: got %v", err)
	}

	// Non-monotonic string offsets.
	var e3 Buf
	e3.Strs([]string{"ab", "cd"})
	b := append([]byte(nil), e3.Bytes()...)
	b[1], b[5] = b[5], b[1] // swap first bytes of the two end offsets
	d = NewReader(b)
	if _, err := d.Strs(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("non-monotonic strs: got %v", err)
	}

	// String blob larger than payload.
	var e4 Buf
	e4.Strs([]string{"hello"})
	d = NewReader(e4.Bytes()[:7])
	if _, err := d.Strs(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated blob: got %v", err)
	}

	// Truncated varint mid-vector.
	var e5 Buf
	e5.U64sVar([]uint64{1, 1 << 40})
	d = NewReader(e5.Bytes()[:3])
	if _, err := d.U64sVar(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated varint: got %v", err)
	}
}
