package timeline

import (
	"bytes"
	"strings"
	"testing"

	"graingraph/internal/profile"
	"graingraph/internal/rts"
	"graingraph/internal/trace"
)

func TestFromTraceAccounting(t *testing.T) {
	tr := rts.Run(rts.Config{Program: "tl", Cores: 2, Seed: 1}, func(c rts.Ctx) {
		c.Spawn(profile.Loc("a.go", 1, "w"), func(c rts.Ctx) { c.Compute(100_000) })
		c.Spawn(profile.Loc("a.go", 2, "w"), func(c rts.Ctx) { c.Compute(100_000) })
		c.TaskWait()
	})
	v := FromTrace(tr)
	if len(v.Rows) != 2 {
		t.Fatalf("rows = %d", len(v.Rows))
	}
	for _, r := range v.Rows {
		if r.Busy+r.Overhead+r.Idle != v.Makespan {
			t.Errorf("worker %d: busy+overhead+idle = %d, makespan %d",
				r.Worker, r.Busy+r.Overhead+r.Idle, v.Makespan)
		}
	}
}

func TestLoadImbalanceDetection(t *testing.T) {
	// One huge task + tiny ones on 4 cores: classic imbalance.
	tr := rts.Run(rts.Config{Program: "tl", Cores: 4, Seed: 1}, func(c rts.Ctx) {
		c.Spawn(profile.Loc("a.go", 1, "whale"), func(c rts.Ctx) { c.Compute(10_000_000) })
		for i := 0; i < 3; i++ {
			c.Spawn(profile.Loc("a.go", 2, "minnow"), func(c rts.Ctx) { c.Compute(1000) })
		}
		c.TaskWait()
	})
	v := FromTrace(tr)
	if li := v.LoadImbalance(); li < 2 {
		t.Errorf("load imbalance = %.2f, want >> 1", li)
	}

	// Balanced work: imbalance near 1.
	tr2 := rts.Run(rts.Config{Program: "tl", Cores: 4, Seed: 1}, func(c rts.Ctx) {
		for i := 0; i < 16; i++ {
			c.Spawn(profile.Loc("a.go", 1, "even"), func(c rts.Ctx) { c.Compute(500_000) })
		}
		c.TaskWait()
	})
	v2 := FromTrace(tr2)
	if li := v2.LoadImbalance(); li > 1.5 {
		t.Errorf("balanced load imbalance = %.2f, want ~1", li)
	}
}

func TestRender(t *testing.T) {
	tr := rts.Run(rts.Config{Program: "tl", Cores: 2, Seed: 1}, func(c rts.Ctx) {
		c.Spawn(profile.Loc("a.go", 1, "w"), func(c rts.Ctx) { c.Compute(50_000) })
		c.TaskWait()
	})
	var buf bytes.Buffer
	if err := FromTrace(tr).Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "T00") || !strings.Contains(out, "T01") {
		t.Errorf("render missing thread rows:\n%s", out)
	}
	if !strings.Contains(out, "load imbalance") {
		t.Error("render missing imbalance summary")
	}
}

// instrumented runs a steal-heavy workload with a metrics registry.
func instrumented(t *testing.T) (*profile.Trace, *trace.Metrics) {
	t.Helper()
	met := trace.NewMetrics()
	var fib func(c rts.Ctx, n int)
	fib = func(c rts.Ctx, n int) {
		if n < 2 {
			c.Compute(100)
			return
		}
		c.Spawn(profile.Loc("a.go", 1, "fib"), func(c rts.Ctx) { fib(c, n-1) })
		c.Spawn(profile.Loc("a.go", 1, "fib"), func(c rts.Ctx) { fib(c, n-2) })
		c.TaskWait()
	}
	tr := rts.Run(rts.Config{Program: "tl", Cores: 4, Seed: 1, Metrics: met},
		func(c rts.Ctx) { fib(c, 10) })
	return tr, met
}

// TestFromMetricsMatchesFromTrace: the registry-derived view and the
// trace-reconstructed view must be identical row for row.
func TestFromMetricsMatchesFromTrace(t *testing.T) {
	tr, met := instrumented(t)
	vt := FromTrace(tr)
	vm := FromMetrics(tr.Program, met)
	if vm.Makespan != vt.Makespan || len(vm.Rows) != len(vt.Rows) {
		t.Fatalf("shape mismatch: makespan %d/%d, rows %d/%d",
			vm.Makespan, vt.Makespan, len(vm.Rows), len(vt.Rows))
	}
	for i := range vt.Rows {
		if vt.Rows[i] != vm.Rows[i] {
			t.Errorf("worker %d rows differ: trace %+v, metrics %+v", i, vt.Rows[i], vm.Rows[i])
		}
	}
}

// TestCrossCheck: a real run passes; corrupting any conserved quantity
// in the registry makes the check fail loudly.
func TestCrossCheck(t *testing.T) {
	tr, met := instrumented(t)
	v := FromTrace(tr)
	if err := v.CrossCheck(met); err != nil {
		t.Fatalf("cross-check of an honest run failed: %v", err)
	}

	busy := met.Workers[1].Busy
	met.Workers[1].Busy++
	if err := v.CrossCheck(met); err == nil {
		t.Error("cross-check missed a corrupted busy counter")
	}
	met.Workers[1].Busy = busy

	met.Workers[2].OverheadBy[trace.OvSteal] += 5
	if err := v.CrossCheck(met); err == nil {
		t.Error("cross-check missed a corrupted overhead split")
	}
	met.Workers[2].OverheadBy[trace.OvSteal] -= 5

	met.Workers[0].Idle += 3
	if err := v.CrossCheck(met); err == nil {
		t.Error("cross-check missed busy+overhead+idle ≠ makespan")
	}
	met.Workers[0].Idle -= 3

	met.Makespan++
	if err := v.CrossCheck(met); err == nil {
		t.Error("cross-check missed a makespan mismatch")
	}
	met.Makespan--

	if err := v.CrossCheck(met); err != nil {
		t.Fatalf("restored registry should pass again: %v", err)
	}
}

func TestEmptyView(t *testing.T) {
	v := &View{}
	if v.LoadImbalance() != 0 {
		t.Error("empty view imbalance should be 0")
	}
	r := ThreadRow{}
	if r.BusyFraction(0) != 0 {
		t.Error("zero makespan busy fraction should be 0")
	}
}
