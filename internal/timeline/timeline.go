// Package timeline reproduces the baseline visualization existing tools
// offer (paper Figure 4, Intel VTune and friends): per-thread aggregate
// time split into busy / runtime-overhead / idle. It shows load imbalance
// but — by construction — nothing that links the imbalance to culprit
// grains, which is exactly the gap grain graphs fill.
package timeline

import (
	"fmt"
	"io"
	"strings"

	"graingraph/internal/profile"
	"graingraph/internal/trace"
)

// ThreadRow is one worker's aggregate time split.
type ThreadRow struct {
	Worker   int
	Busy     profile.Time // executing grain code
	Overhead profile.Time // runtime bookkeeping (spawn/steal/queue ops)
	Idle     profile.Time // neither
}

// BusyFraction returns busy time over the makespan.
func (r *ThreadRow) BusyFraction(makespan profile.Time) float64 {
	if makespan == 0 {
		return 0
	}
	return float64(r.Busy) / float64(makespan)
}

// View is the per-thread aggregate timeline.
type View struct {
	Program  string
	Makespan profile.Time
	Rows     []ThreadRow
}

// FromTrace builds the timeline view from a profiled trace. It panics if
// any worker's busy+overhead exceeds the makespan: idle is derived as the
// remainder, so an overshoot means busy+overhead+idle ≠ makespan·workers —
// a runtime accounting bug that must not be papered over.
func FromTrace(tr *profile.Trace) *View {
	v := &View{Program: tr.Program, Makespan: tr.Makespan()}
	for i, ws := range tr.Workers {
		row := ThreadRow{Worker: i, Busy: ws.Busy, Overhead: ws.Overhead}
		if used := ws.Busy + ws.Overhead; used > v.Makespan {
			panic(fmt.Sprintf(
				"timeline: worker %d busy+overhead = %d exceeds makespan %d — runtime time accounting is broken",
				i, used, v.Makespan))
		} else {
			row.Idle = v.Makespan - used
		}
		v.Rows = append(v.Rows, row)
	}
	return v
}

// FromMetrics builds the timeline view directly from the runtime's
// counter registry instead of the trace reconstruction — the two must
// agree (see CrossCheck).
func FromMetrics(program string, m *trace.Metrics) *View {
	v := &View{Program: program, Makespan: m.Makespan}
	for i := range m.Workers {
		wm := &m.Workers[i]
		v.Rows = append(v.Rows, ThreadRow{
			Worker: i, Busy: wm.Busy, Overhead: wm.Overhead, Idle: wm.Idle,
		})
	}
	return v
}

// CrossCheck verifies the trace-reconstructed view against the runtime's
// own metrics registry: per-worker busy and overhead must match
// cycle-for-cycle, the registry's per-kind overhead split must sum to its
// total, and busy+overhead+idle must equal the makespan for every worker.
func (v *View) CrossCheck(m *trace.Metrics) error {
	if len(v.Rows) != len(m.Workers) {
		return fmt.Errorf("timeline: view has %d workers, metrics registry %d",
			len(v.Rows), len(m.Workers))
	}
	if v.Makespan != m.Makespan {
		return fmt.Errorf("timeline: makespan mismatch: view %d, metrics %d",
			v.Makespan, m.Makespan)
	}
	for i := range v.Rows {
		r, wm := &v.Rows[i], &m.Workers[i]
		if r.Busy != wm.Busy {
			return fmt.Errorf("timeline: worker %d busy mismatch: trace %d, metrics %d",
				i, r.Busy, wm.Busy)
		}
		if r.Overhead != wm.Overhead {
			return fmt.Errorf("timeline: worker %d overhead mismatch: trace %d, metrics %d",
				i, r.Overhead, wm.Overhead)
		}
		if byKind := m.OverheadOf(i); byKind != wm.Overhead {
			return fmt.Errorf("timeline: worker %d overhead split sums to %d, total says %d",
				i, byKind, wm.Overhead)
		}
		if sum := r.Busy + r.Overhead + r.Idle; sum != v.Makespan {
			return fmt.Errorf("timeline: worker %d busy+overhead+idle = %d ≠ makespan %d",
				i, sum, v.Makespan)
		}
		if sum := wm.Busy + wm.Overhead + wm.Idle; sum != m.Makespan {
			return fmt.Errorf("timeline: metrics worker %d busy+overhead+idle = %d ≠ makespan %d",
				i, sum, m.Makespan)
		}
	}
	return nil
}

// LoadImbalance is the classic thread-level statistic the paper says is
// all existing tools surface: max busy time over mean busy time.
func (v *View) LoadImbalance() float64 {
	if len(v.Rows) == 0 {
		return 0
	}
	var max, sum profile.Time
	for i := range v.Rows {
		b := v.Rows[i].Busy
		sum += b
		if b > max {
			max = b
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(v.Rows))
	return float64(max) / mean
}

// Render writes an ASCII per-thread bar chart: '#' busy, '+' overhead,
// '.' idle — the flavour of insight a VTune screenshot gives.
func (v *View) Render(w io.Writer) error {
	const width = 60
	if _, err := fmt.Fprintf(w, "%s — thread timeline (makespan %d cycles)\n", v.Program, v.Makespan); err != nil {
		return err
	}
	for i := range v.Rows {
		r := &v.Rows[i]
		busy, over := 0, 0
		if v.Makespan > 0 {
			busy = int(float64(r.Busy) / float64(v.Makespan) * width)
			over = int(float64(r.Overhead) / float64(v.Makespan) * width)
		}
		if busy+over > width {
			over = width - busy
		}
		idle := width - busy - over
		bar := strings.Repeat("#", busy) + strings.Repeat("+", over) + strings.Repeat(".", idle)
		if _, err := fmt.Fprintf(w, "T%02d |%s| busy %5.1f%%\n", r.Worker, bar,
			100*r.BusyFraction(v.Makespan)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "load imbalance (max/mean busy): %.2f\n", v.LoadImbalance())
	return err
}
