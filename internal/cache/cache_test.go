package cache

import (
	"testing"
	"testing/quick"

	"graingraph/internal/machine"
)

func newTestHierarchy(policy machine.Policy) (*Hierarchy, *machine.Memory, *machine.Topology) {
	topo := machine.Default48()
	mem := machine.NewMemory(topo, policy)
	return New(DefaultConfig(), topo, mem), mem, topo
}

func TestColdMissThenHit(t *testing.T) {
	h, mem, _ := newTestHierarchy(machine.FirstTouch)
	r := mem.Alloc("a", 4096)
	var c Counters
	lat := h.Access(0, r.Base, false, 0, &c)
	if lat != h.cfg.MemLat { // local node via first touch, distance 10
		t.Fatalf("cold access latency = %d, want %d", lat, h.cfg.MemLat)
	}
	if c.L1Miss != 1 || c.L2Miss != 1 || c.L3Miss != 1 {
		t.Fatalf("cold access misses = %+v, want miss at every level", c)
	}
	lat = h.Access(0, r.Base, false, 0, &c)
	if lat != h.cfg.L1Lat {
		t.Fatalf("warm access latency = %d, want L1 hit %d", lat, h.cfg.L1Lat)
	}
	if c.Accesses != 2 || c.L1Miss != 1 {
		t.Fatalf("counters after hit = %+v", c)
	}
}

func TestSameLineDifferentOffsetsHit(t *testing.T) {
	h, mem, _ := newTestHierarchy(machine.FirstTouch)
	r := mem.Alloc("a", 4096)
	h.Access(0, r.Base, false, 0, nil)
	if lat := h.Access(0, r.Base+63, false, 0, nil); lat != h.cfg.L1Lat {
		t.Fatalf("same-line offset access latency = %d, want L1 hit", lat)
	}
}

func TestRemoteAccessCostsMore(t *testing.T) {
	h, mem, topo := newTestHierarchy(machine.FirstTouch)
	r := mem.Alloc("a", machine.PageSize)
	// Core 0 (socket 0) touches first: page on node 0.
	local := h.Access(0, r.Base, false, 0, nil)
	h.Flush()
	// Core 47 (socket 3) now reads the same page: remote access.
	var c Counters
	remote := h.Access(47, r.Base, false, 0, &c)
	if remote <= local {
		t.Fatalf("remote latency %d not greater than local %d", remote, local)
	}
	if c.Remote != 1 {
		t.Fatalf("remote counter = %d, want 1", c.Remote)
	}
	wantDist := uint64(topo.NodeDistance(3, 0))
	if want := h.cfg.MemLat * wantDist / 10; remote != want {
		t.Fatalf("remote latency = %d, want %d", remote, want)
	}
}

func TestCoherenceInvalidationOnWrite(t *testing.T) {
	h, mem, _ := newTestHierarchy(machine.FirstTouch)
	r := mem.Alloc("a", 4096)
	// Core 0 reads, warms its caches.
	h.Access(0, r.Base, false, 0, nil)
	if lat := h.Access(0, r.Base, false, 0, nil); lat != h.cfg.L1Lat {
		t.Fatalf("expected warm L1 hit, got %d", lat)
	}
	// Core 1 writes the line, invalidating core 0's copy.
	h.Access(1, r.Base, true, 0, nil)
	var c Counters
	lat := h.Access(0, r.Base, false, 0, &c)
	if lat == h.cfg.L1Lat {
		t.Fatalf("core 0 still hits L1 after core 1's write; coherence broken")
	}
	if c.L1Miss != 1 {
		t.Fatalf("coherence miss not counted: %+v", c)
	}
}

func TestWriterKeepsOwnLineWarm(t *testing.T) {
	h, mem, _ := newTestHierarchy(machine.FirstTouch)
	r := mem.Alloc("a", 4096)
	h.Access(0, r.Base, true, 0, nil) // establish ownership
	// Repeated writes by the same core stay cheap.
	if lat := h.Access(0, r.Base, true, 0, nil); lat != h.cfg.L1Lat {
		t.Fatalf("second write by owner cost %d, want L1 hit %d", lat, h.cfg.L1Lat)
	}
	if lat := h.Access(0, r.Base, false, 0, nil); lat != h.cfg.L1Lat {
		t.Fatalf("read after own write cost %d, want L1 hit %d", lat, h.cfg.L1Lat)
	}
}

func TestCapacityEviction(t *testing.T) {
	h, mem, _ := newTestHierarchy(machine.FirstTouch)
	cfg := h.Config()
	// Scan four times the L1 size; re-scanning must miss in L1 (capacity),
	// but hit in L2 which is large enough.
	size := 4 * int64(cfg.L1Size)
	r := mem.Alloc("big", size)
	var warm Counters
	h.AccessRange(0, r.Base, size, false, 0, nil)
	h.AccessRange(0, r.Base, size, false, 0, &warm)
	lines := uint64(size / cfg.LineSize)
	if warm.L1Miss == 0 {
		t.Fatalf("re-scan of 4x L1 had no L1 misses")
	}
	if warm.L1Miss < lines/2 {
		t.Fatalf("re-scan L1 misses = %d, want most of %d lines", warm.L1Miss, lines)
	}
	if warm.L2Miss != 0 {
		t.Fatalf("re-scan should fit in L2, got %d L2 misses", warm.L2Miss)
	}
}

func TestSharedL3WithinSocket(t *testing.T) {
	h, mem, _ := newTestHierarchy(machine.FirstTouch)
	r := mem.Alloc("a", 4096)
	h.Access(0, r.Base, false, 0, nil) // core 0 warms socket 0's L3
	var c Counters
	lat := h.Access(5, r.Base, false, 0, &c) // core 5, same socket
	if lat != h.cfg.L3Lat {
		t.Fatalf("same-socket access latency = %d, want L3 hit %d", lat, h.cfg.L3Lat)
	}
	// A core on another socket misses L3 too.
	var c2 Counters
	lat2 := h.Access(20, r.Base, false, 0, &c2)
	if lat2 <= h.cfg.L3Lat {
		t.Fatalf("cross-socket access latency = %d, want memory", lat2)
	}
}

func TestAccessRangeLineCount(t *testing.T) {
	h, mem, _ := newTestHierarchy(machine.FirstTouch)
	r := mem.Alloc("a", 1<<20)
	var c Counters
	h.AccessRange(0, r.Base, 1024, false, 0, &c)
	if c.Accesses != 1024/64 {
		t.Fatalf("sequential 1024B scan issued %d accesses, want %d", c.Accesses, 1024/64)
	}
	// Unaligned range spanning an extra line.
	var c2 Counters
	h.AccessRange(0, r.Base+32, 64, false, 0, &c2)
	if c2.Accesses != 2 {
		t.Fatalf("unaligned 64B scan issued %d accesses, want 2", c2.Accesses)
	}
	if h.AccessRange(0, r.Base, 0, false, 0, nil) != 0 {
		t.Fatal("zero-length range should cost nothing")
	}
}

func TestAccessStrided(t *testing.T) {
	h, mem, _ := newTestHierarchy(machine.FirstTouch)
	r := mem.Alloc("a", 1<<20)
	var c Counters
	h.AccessStrided(0, r.Base, 10, 4096, false, 0, &c)
	if c.Accesses != 10 {
		t.Fatalf("strided access count = %d, want 10", c.Accesses)
	}
	if c.L1Miss != 10 {
		t.Fatalf("page-strided accesses should all miss, got %d", c.L1Miss)
	}
}

func TestFlush(t *testing.T) {
	h, mem, _ := newTestHierarchy(machine.FirstTouch)
	r := mem.Alloc("a", 4096)
	h.Access(0, r.Base, false, 0, nil)
	h.Flush()
	var c Counters
	h.Access(0, r.Base, false, 0, &c)
	if c.L1Miss != 1 {
		t.Fatalf("access after flush should cold-miss, got %+v", c)
	}
}

func TestCountersAddAndRatios(t *testing.T) {
	a := Counters{Accesses: 10, L1Miss: 2, Stall: 100, Compute: 300}
	b := Counters{Accesses: 5, L1Miss: 3, Stall: 50, Compute: 100}
	a.Add(b)
	if a.Accesses != 15 || a.L1Miss != 5 || a.Stall != 150 || a.Compute != 400 {
		t.Fatalf("Add result = %+v", a)
	}
	if got := a.L1MissRatio(); got != 5.0/15.0 {
		t.Fatalf("L1MissRatio = %v", got)
	}
	if got := a.Utilization(); got != 400.0/150.0 {
		t.Fatalf("Utilization = %v", got)
	}
	var zero Counters
	if zero.L1MissRatio() != 0 || zero.Utilization() != 0 {
		t.Fatal("zero counters should yield zero ratios")
	}
	noStall := Counters{Compute: 7}
	if noStall.Utilization() != 7 {
		t.Fatalf("no-stall utilization = %v", noStall.Utilization())
	}
}

// Property: counter conservation — misses never exceed accesses, and deeper
// level misses never exceed shallower ones.
func TestMissOrderingProperty(t *testing.T) {
	h, mem, _ := newTestHierarchy(machine.RoundRobin)
	r := mem.Alloc("a", 1<<22)
	var c Counters
	f := func(off uint32, write bool, core uint8) bool {
		addr := r.Base + int64(off)%r.Size
		h.Access(int(core)%48, addr, write, 0, &c)
		return c.L1Miss <= c.Accesses && c.L2Miss <= c.L1Miss && c.L3Miss <= c.L2Miss
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: latency is always one of the configured levels or a NUMA
// multiple of MemLat.
func TestLatencyValuesProperty(t *testing.T) {
	topo := machine.Default48()
	mem := machine.NewMemory(topo, machine.RoundRobin)
	cfg := DefaultConfig()
	cfg.MemServiceCycles = 0 // disable queueing so latencies are exact
	h := New(cfg, topo, mem)
	r := mem.Alloc("a", 1<<22)
	valid := map[uint64]bool{h.cfg.L1Lat: true, h.cfg.L2Lat: true, h.cfg.L3Lat: true}
	for s := 0; s < topo.NumSockets(); s++ {
		for d := 0; d < topo.NumSockets(); d++ {
			dist := uint64(topo.NodeDistance(s, d))
			valid[h.cfg.MemLat*dist/10] = true             // memory
			valid[h.cfg.L3Lat+h.cfg.MemLat*dist/20] = true // cache-to-cache
		}
	}
	f := func(off uint32, write bool, core uint8) bool {
		addr := r.Base + int64(off)%r.Size
		lat := h.Access(int(core)%48, addr, write, 0, nil)
		return valid[lat]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccessWarm(b *testing.B) {
	h, mem, _ := newTestHierarchy(machine.FirstTouch)
	r := mem.Alloc("a", 4096)
	h.Access(0, r.Base, false, 0, nil)
	var c Counters
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, r.Base, false, 0, &c)
	}
}

func BenchmarkAccessRangeScan(b *testing.B) {
	h, mem, _ := newTestHierarchy(machine.FirstTouch)
	size := int64(1 << 20)
	r := mem.Alloc("a", size)
	var c Counters
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AccessRange(0, r.Base, size, false, 0, &c)
	}
}
