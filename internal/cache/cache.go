// Package cache simulates a three-level cache hierarchy with write-invalidate
// coherence and NUMA-aware memory latency. It substitutes for the PAPI
// hardware counters the paper reads: per-grain access, miss and stall-cycle
// counts are accumulated into Counters, from which the memory-hierarchy
// utilization metric and work inflation are derived.
//
// The model is deliberately simple but directionally faithful:
//
//   - L1 and L2 are private per core; L3 is shared per socket. All levels are
//     set-associative with LRU replacement.
//   - Coherence uses a per-line version number: every write bumps the line's
//     version, so copies cached by other cores become stale and their next
//     access misses all the way to memory (a coherence miss).
//   - A memory access pays a latency scaled by the NUMA distance between the
//     accessing core's socket and the node owning the page, so page placement
//     policies (first-touch vs round-robin) change observed stall cycles.
package cache

import (
	"fmt"

	"graingraph/internal/machine"
)

// Config sets the geometry and latencies of the simulated hierarchy.
// Sizes are in bytes; latencies in cycles.
type Config struct {
	LineSize int64

	L1Size int64
	L1Ways int
	L2Size int64
	L2Ways int
	L3Size int64 // per socket, shared by its cores
	L3Ways int

	L1Lat, L2Lat, L3Lat uint64
	// MemLat is the memory latency at local NUMA distance (10); an access to
	// a node at distance d costs MemLat*d/10 cycles.
	MemLat uint64
	// MemServiceCycles is each NUMA node's memory-channel occupancy per
	// cache-line transfer. Misses destined for the same node queue behind
	// each other, so concentrating pages on one node (first-touch by a
	// serial initializer) throttles the whole machine — the contention the
	// paper's round-robin page distribution relieves. 0 disables the model.
	MemServiceCycles uint64
}

// DefaultConfig models a machine in the spirit of the paper's Opteron 6172,
// with capacities scaled down consistently with the laptop-scale inputs the
// reproduction runs (the paper's experiments used inputs several times the
// aggregate L3; so do ours): 32 KiB 8-way L1, 256 KiB 8-way L2, 2 MiB
// 16-way shared L3 per socket.
func DefaultConfig() Config {
	return Config{
		LineSize: 64,
		L1Size:   32 << 10, L1Ways: 8,
		L2Size: 256 << 10, L2Ways: 8,
		L3Size: 2 << 20, L3Ways: 16,
		L1Lat: 1, L2Lat: 10, L3Lat: 40,
		MemLat:           120,
		MemServiceCycles: 40,
	}
}

// Counters accumulates per-grain memory behaviour. The simulated runtime
// points the hierarchy at the counters of whichever grain is executing.
type Counters struct {
	Accesses uint64 // cache-line accesses issued
	L1Miss   uint64
	L2Miss   uint64
	L3Miss   uint64
	Remote   uint64 // memory accesses served by a remote NUMA node
	Stall    uint64 // cycles stalled beyond an L1 hit
	Compute  uint64 // pure compute cycles (charged by the runtime, not here)
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Accesses += other.Accesses
	c.L1Miss += other.L1Miss
	c.L2Miss += other.L2Miss
	c.L3Miss += other.L3Miss
	c.Remote += other.Remote
	c.Stall += other.Stall
	c.Compute += other.Compute
}

// L1MissRatio returns L1 misses per access, or 0 when idle.
func (c *Counters) L1MissRatio() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.L1Miss) / float64(c.Accesses)
}

// Utilization returns the memory-hierarchy utilization metric: compute
// cycles divided by stall cycles. A grain that never stalls has perfect
// utilization, reported as +Inf-like large value via ok=false semantics:
// callers should treat Stall==0 as unproblematic.
func (c *Counters) Utilization() float64 {
	if c.Stall == 0 {
		if c.Compute == 0 {
			return 0
		}
		return float64(c.Compute) // effectively unbounded
	}
	return float64(c.Compute) / float64(c.Stall)
}

// level is one set-associative cache. Ways of a set are stored contiguously
// in flat arrays; the set index is computed with a precomputed mask when the
// set count is a power of two (it always is under DefaultConfig), falling
// back to a modulo only for exotic geometries.
type level struct {
	sets int64
	mask int64 // sets-1 when sets is a power of two, else -1
	ways int
	tags []int64 // line address, -1 = invalid
	vers []uint32
	tick []uint64 // LRU stamps
	now  uint64
}

func newLevel(size int64, ways int, lineSize int64) *level {
	if size <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cache: invalid level geometry size=%d ways=%d", size, ways))
	}
	sets := size / (int64(ways) * lineSize)
	if sets < 1 {
		sets = 1
	}
	mask := int64(-1)
	if sets&(sets-1) == 0 {
		mask = sets - 1
	}
	n := sets * int64(ways)
	l := &level{sets: sets, mask: mask, ways: ways,
		tags: make([]int64, n), vers: make([]uint32, n), tick: make([]uint64, n)}
	for i := range l.tags {
		l.tags[i] = -1
	}
	return l
}

// setBase returns the flat-array offset of line's set.
func (l *level) setBase(line int64) int64 {
	if l.mask >= 0 {
		return (line & l.mask) * int64(l.ways)
	}
	return (line % l.sets) * int64(l.ways)
}

// lookup reports whether line is present with the given version, updating
// LRU on hit.
func (l *level) lookup(line int64, version uint32) bool {
	base := l.setBase(line)
	l.now++
	tags := l.tags[base : base+int64(l.ways)]
	for i := range tags {
		if tags[i] == line && l.vers[base+int64(i)] == version {
			l.tick[base+int64(i)] = l.now
			return true
		}
	}
	return false
}

// fill inserts line with version, evicting the LRU way of its set.
func (l *level) fill(line int64, version uint32) {
	base := l.setBase(line)
	l.now++
	tags := l.tags[base : base+int64(l.ways)]
	tick := l.tick[base : base+int64(l.ways)]
	victim := 0
	oldest := tick[0]
	for i := range tags {
		if tags[i] == line { // update in place (stale version refresh)
			l.vers[base+int64(i)] = version
			tick[i] = l.now
			return
		}
		if tags[i] == -1 {
			victim = i
			oldest = 0
			break
		}
		if tick[i] < oldest {
			oldest = tick[i]
			victim = i
		}
	}
	tags[victim] = line
	l.vers[base+int64(victim)] = version
	tick[victim] = l.now
}

func (l *level) reset() {
	for i := range l.tags {
		l.tags[i] = -1
		l.vers[i] = 0
		l.tick[i] = 0
	}
	l.now = 0
}

// Hierarchy is the full machine cache system: private L1/L2 per core and a
// shared L3 per socket, backed by NUMA memory.
type Hierarchy struct {
	cfg    Config
	topo   *machine.Topology
	mem    *machine.Memory
	l1, l2 []*level
	l3     []*level
	// version is the per-line write-version table, indexed by line number.
	// Simulated memory is a bump allocator from address zero, so lines are
	// dense and a flat array beats the map it replaced (which dominated CPU
	// profiles at ~1/3 of total simulation time); lines beyond the slice are
	// at version 0. Grown on write only.
	version []uint32
	// socketOf caches topo.Socket per core (probed on every access).
	socketOf []int
	// nodeDemand[n] accumulates the service cycles requested from node n's
	// memory channel; demand/time gives the channel utilization that drives
	// queueing delay. (An absolute busy-until time would be corrupted by
	// the simulator's per-worker clock skew; utilization is insensitive to
	// processing order.)
	nodeDemand []uint64
}

// New builds a hierarchy for the topology, backed by mem for page placement.
func New(cfg Config, topo *machine.Topology, mem *machine.Memory) *Hierarchy {
	h := &Hierarchy{cfg: cfg, topo: topo, mem: mem}
	for i := 0; i < topo.NumCores(); i++ {
		h.l1 = append(h.l1, newLevel(cfg.L1Size, cfg.L1Ways, cfg.LineSize))
		h.l2 = append(h.l2, newLevel(cfg.L2Size, cfg.L2Ways, cfg.LineSize))
		h.socketOf = append(h.socketOf, topo.Socket(i))
	}
	for s := 0; s < topo.NumSockets(); s++ {
		h.l3 = append(h.l3, newLevel(cfg.L3Size, cfg.L3Ways, cfg.LineSize))
	}
	h.nodeDemand = make([]uint64, topo.NumSockets())
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Access simulates one access by core to addr at virtual time now and
// returns the cycles it costs (including any memory-channel queueing).
// Counters (may be nil) receive the access/miss/stall accounting.
func (h *Hierarchy) Access(core int, addr int64, write bool, now uint64, c *Counters) uint64 {
	return h.access(core, addr, write, now, false, c)
}

// access adds the streamed flag: lines fetched in the body of a detected
// sequential scan have their latency hidden by the prefetcher — they pay
// only the bandwidth cost (queueing + channel occupancy), not the full
// memory round trip. Scans with sub-line strides stream too (see
// AccessStrided); wider strides and random accesses never do.
func (h *Hierarchy) access(core int, addr int64, write bool, now uint64, streamed bool, c *Counters) uint64 {
	line := addr / h.cfg.LineSize
	var ver uint32
	if line < int64(len(h.version)) {
		ver = h.version[line]
	}
	if write {
		ver++
		if line >= int64(len(h.version)) {
			h.growVersion(line)
		}
		h.version[line] = ver
	}
	lat, l1m, l2m, l3m, remote := h.accessLine(core, line, ver, write, now)
	if streamed && l1m {
		// Prefetch-covered: the latency component collapses to the channel
		// occupancy; queueing (already folded into lat beyond the base
		// latency for memory accesses) still applies via the bandwidth term.
		if capped := h.streamedCost(l3m, lat); capped < lat {
			lat = capped
		}
	}
	if c != nil {
		c.Accesses++
		if l1m {
			c.L1Miss++
			c.Stall += lat - h.cfg.L1Lat
		}
		if l2m {
			c.L2Miss++
		}
		if l3m {
			c.L3Miss++
		}
		if remote {
			c.Remote++
		}
	}
	return lat
}

func (h *Hierarchy) accessLine(core int, line int64, ver uint32, write bool, now uint64) (lat uint64, l1m, l2m, l3m, remote bool) {
	socket := h.socketOf[core]
	// A write looks up the line at its pre-bump version: hitting your own
	// latest copy is cheap; a line last written by another core (or never
	// cached here) misses and pays the read-for-ownership path to wherever
	// the line lives — that is the coherence/NUMA cost of writes.
	lookupVer := ver
	if write {
		lookupVer = ver - 1
	}
	lat, l1m, l2m, l3m, remote = h.probeAndFill(core, socket, line, lookupVer, now)
	if write {
		// The writer's caches now hold the new version.
		h.l1[core].fill(line, ver)
		h.l2[core].fill(line, ver)
		h.l3[socket].fill(line, ver)
	}
	return lat, l1m, l2m, l3m, remote
}

// probeAndFill walks the hierarchy for line at lookupVer, filling the levels
// between the serving level and the accessing core on the way back.
func (h *Hierarchy) probeAndFill(core, socket int, line int64, lookupVer uint32, now uint64) (lat uint64, l1m, l2m, l3m, remote bool) {
	if h.l1[core].lookup(line, lookupVer) {
		return h.cfg.L1Lat, false, false, false, false
	}
	l1m = true
	if h.l2[core].lookup(line, lookupVer) {
		h.l1[core].fill(line, lookupVer)
		return h.cfg.L2Lat, l1m, false, false, false
	}
	l2m = true
	if h.l3[socket].lookup(line, lookupVer) {
		h.l2[core].fill(line, lookupVer)
		h.l1[core].fill(line, lookupVer)
		return h.cfg.L3Lat, l1m, l2m, false, false
	}
	// Probe the other sockets' L3s: a hit there is a cache-to-cache
	// transfer over the interconnect — slower than local L3, cheaper than
	// memory, and it does not occupy a memory channel.
	for s2 := range h.l3 {
		if s2 == socket {
			continue
		}
		if h.l3[s2].lookup(line, lookupVer) {
			dist := uint64(h.topo.NodeDistance(socket, s2))
			lat = h.cfg.L3Lat + h.cfg.MemLat*dist/20
			h.l3[socket].fill(line, lookupVer)
			h.l2[core].fill(line, lookupVer)
			h.l1[core].fill(line, lookupVer)
			return lat, l1m, l2m, false, true
		}
	}
	l3m = true
	node := h.mem.NodeOf(line*h.cfg.LineSize, core)
	dist := uint64(h.topo.NodeDistance(socket, node))
	lat = h.cfg.MemLat * dist / 10
	if h.cfg.MemServiceCycles > 0 {
		h.nodeDemand[node] += h.cfg.MemServiceCycles
		if now > 0 {
			// M/M/1-flavoured queueing: delay grows with the channel's
			// utilization (lifetime demand over elapsed virtual time),
			// bounded by a finite queue depth of 64 transfers.
			u := float64(h.nodeDemand[node]) / float64(now)
			if u > 0.98 {
				u = 0.98
			}
			queue := uint64(float64(h.cfg.MemServiceCycles) * u / (1 - u))
			if max := 64 * h.cfg.MemServiceCycles; queue > max {
				queue = max
			}
			lat += queue
		}
	}
	remote = node != socket
	h.l3[socket].fill(line, lookupVer)
	h.l2[core].fill(line, lookupVer)
	h.l1[core].fill(line, lookupVer)
	return lat, l1m, l2m, l3m, remote
}

// AccessRange simulates a sequential scan of length bytes starting at addr
// at virtual time now and returns the total cycles. Each distinct line is
// touched once; time advances within the scan.
func (h *Hierarchy) AccessRange(core int, addr, length int64, write bool, now uint64, c *Counters) uint64 {
	if length <= 0 {
		return 0
	}
	first := addr / h.cfg.LineSize
	last := (addr + length - 1) / h.cfg.LineSize
	var total uint64
	for line := first; line <= last; line++ {
		// The first line of a scan pays full latency; the prefetcher covers
		// the rest.
		total += h.access(core, line*h.cfg.LineSize, write, now+total, line != first, c)
	}
	return total
}

// streamedCost is the cost of a prefetch-covered line: memory-destined
// lines pay bandwidth (occupancy + any queueing already included in lat
// beyond the base); cache-served lines pay an L2-ish pipeline bubble.
func (h *Hierarchy) streamedCost(wentToMemory bool, lat uint64) uint64 {
	if !wentToMemory {
		return h.cfg.L2Lat
	}
	// lat = base memory latency + queue; keep the queue, swap the base
	// round-trip for the channel occupancy.
	queue := uint64(0)
	// Base latency is at least MemLat (distance >= 10); anything above
	// 3*MemLat must be queueing at any distance in a 4-socket ring.
	if lat > 3*h.cfg.MemLat {
		queue = lat - 3*h.cfg.MemLat
	}
	return h.cfg.MemServiceCycles + queue
}

// AccessStrided simulates count accesses starting at addr with the given
// byte stride at virtual time now and returns the total cycles. A forward
// stride within one cache line is a sequential scan from the prefetcher's
// point of view — hardware stream detectors key on line-address monotonicity,
// not element width — so those accesses go through the streamed path exactly
// like AccessRange: the first access pays full latency, the rest are
// prefetch-covered. Wider (or backward) strides defeat the stream detector
// and pay full latency per access.
func (h *Hierarchy) AccessStrided(core int, addr int64, count int, stride int64, write bool, now uint64, c *Counters) uint64 {
	sequential := stride > 0 && stride <= h.cfg.LineSize
	var total uint64
	for i := 0; i < count; i++ {
		streamed := sequential && i != 0
		total += h.access(core, addr+int64(i)*stride, write, now+total, streamed, c)
	}
	return total
}

// Flush invalidates all cache contents and forgets line versions, leaving
// page placement intact. Use between measurement runs.
func (h *Hierarchy) Flush() {
	for _, l := range h.l1 {
		l.reset()
	}
	for _, l := range h.l2 {
		l.reset()
	}
	for _, l := range h.l3 {
		l.reset()
	}
	clear(h.version)
	for i := range h.nodeDemand {
		h.nodeDemand[i] = 0
	}
}

// growVersion extends the version table to cover line (power-of-two sizing
// to amortize growth over the bump allocator's monotone address space).
func (h *Hierarchy) growVersion(line int64) {
	n := int64(len(h.version))
	if n == 0 {
		n = 1 << 10
	}
	for n <= line {
		n *= 2
	}
	nv := make([]uint32, n)
	copy(nv, h.version)
	h.version = nv
}
