package cache

import (
	"reflect"
	"testing"

	"graingraph/internal/machine"
)

// TestStridedLineStrideMatchesRange pins AccessStrided's streamed-access
// routing: a stride of exactly one line over n elements touches the same
// line sequence as an n-line AccessRange scan, so on identical fresh
// hierarchies the two must agree on total cycles and every counter.
// (Before the fix, AccessStrided bypassed the streamed path entirely and
// charged full memory latency per line.)
func TestStridedLineStrideMatchesRange(t *testing.T) {
	const n = 64
	hr, memr, _ := newTestHierarchy(machine.FirstTouch)
	hs, mems, _ := newTestHierarchy(machine.FirstTouch)
	rr := memr.Alloc("a", 1<<20)
	rs := mems.Alloc("a", 1<<20)
	if rr.Base != rs.Base {
		t.Fatalf("allocators disagree: %d vs %d", rr.Base, rs.Base)
	}
	line := hr.cfg.LineSize

	var cr, cs Counters
	latRange := hr.AccessRange(0, rr.Base, n*line, false, 0, &cr)
	latStride := hs.AccessStrided(0, rs.Base, n, line, false, 0, &cs)

	if latStride != latRange {
		t.Errorf("line-stride scan cost %d cycles, AccessRange cost %d — should be identical", latStride, latRange)
	}
	if cr != cs {
		t.Errorf("counters diverge: range %+v, strided %+v", cr, cs)
	}
}

// TestStridedSmallStrideStreams checks that sub-line strides ride the
// prefetcher while page strides defeat it: scanning the same number of
// cold lines, the page-strided walk must cost strictly more.
func TestStridedSmallStrideStreams(t *testing.T) {
	const lines = 32
	hSeq, memSeq, _ := newTestHierarchy(machine.FirstTouch)
	hWide, memWide, _ := newTestHierarchy(machine.FirstTouch)
	rSeq := memSeq.Alloc("a", 1<<22)
	rWide := memWide.Alloc("a", 1<<22)
	line := hSeq.cfg.LineSize

	// 8-byte stride: 8 elements per line, lines touched sequentially.
	perLine := int(line / 8)
	seq := hSeq.AccessStrided(0, rSeq.Base, lines*perLine, 8, false, 0, nil)
	// Page stride: same distinct-line count, no stream for the prefetcher.
	wide := hWide.AccessStrided(0, rWide.Base, lines, 4096, false, 0, nil)

	if seq >= wide {
		t.Errorf("sequential 8B-stride scan of %d lines cost %d cycles, page-strided scan cost %d — streaming should be cheaper", lines, seq, wide)
	}
}

// TestCountersAddCoversAllFields walks Counters by reflection and verifies
// Add accumulates every field, so a field added to the struct without
// extending Add fails here instead of silently dropping counts at grain
// boundaries.
func TestCountersAddCoversAllFields(t *testing.T) {
	var a, b Counters
	av := reflect.ValueOf(&a).Elem()
	bv := reflect.ValueOf(&b).Elem()
	typ := av.Type()
	for i := 0; i < typ.NumField(); i++ {
		if typ.Field(i).Type.Kind() != reflect.Uint64 {
			t.Fatalf("Counters.%s is %s; this test assumes uint64 fields — extend it", typ.Field(i).Name, typ.Field(i).Type)
		}
		av.Field(i).SetUint(uint64(100 + i))
		bv.Field(i).SetUint(uint64(1 + i))
	}
	a.Add(b)
	for i := 0; i < typ.NumField(); i++ {
		want := uint64(100+i) + uint64(1+i)
		if got := av.Field(i).Uint(); got != want {
			t.Errorf("Counters.Add drops field %s: got %d, want %d", typ.Field(i).Name, got, want)
		}
	}
}
