package cache

import (
	"math/rand/v2"
	"testing"

	"graingraph/internal/machine"
)

// benchHierarchy builds a default hierarchy over the 48-core machine.
func benchHierarchy() *Hierarchy {
	topo := machine.Default48()
	mem := machine.NewMemory(topo, machine.FirstTouch)
	return New(DefaultConfig(), topo, mem)
}

// BenchmarkAccessSequential measures the streamed read path: one core
// scanning a multi-megabyte region line by line, the dominant pattern in
// Sort/FFT array phases.
func BenchmarkAccessSequential(b *testing.B) {
	h := benchHierarchy()
	var c Counters
	const span = 8 << 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := int64(i*64) % span
		h.Access(0, addr, false, uint64(i), &c)
	}
}

// BenchmarkAccessRandom measures the unstreamed path with set-index and
// version-table lookups on effectively random lines.
func BenchmarkAccessRandom(b *testing.B) {
	h := benchHierarchy()
	var c Counters
	rng := rand.New(rand.NewPCG(1, 2))
	const span = 8 << 20
	addrs := make([]int64, 4096)
	for i := range addrs {
		addrs[i] = rng.Int64N(span)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(i%48, addrs[i%len(addrs)], false, uint64(i), &c)
	}
}

// BenchmarkAccessWriteInvalidate measures the coherence write path: cores
// on different sockets ping-ponging writes to a small shared region, which
// exercises the per-line version table on every access.
func BenchmarkAccessWriteInvalidate(b *testing.B) {
	h := benchHierarchy()
	var c Counters
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core := (i % 4) * 12 // one core per socket
		addr := int64(i%64) * 64
		h.Access(core, addr, true, uint64(i), &c)
	}
}

// BenchmarkVersionLookup isolates the line-version table, the structure the
// coherence check consults on every single access.
func BenchmarkVersionLookup(b *testing.B) {
	h := benchHierarchy()
	// Touch a realistic footprint so the table is grown and populated.
	for i := int64(0); i < 1<<16; i++ {
		h.Access(int(i)%48, i*64, true, uint64(i), nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := int64(i) & (1<<16 - 1)
		if line < int64(len(h.version)) {
			_ = h.version[line]
		}
	}
}
