package query

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"graingraph/internal/runpool"
)

// randomTable builds a rows-long table with mixed-kind columns from a
// seeded generator: f (float, including negatives and repeats), n (int,
// small range so groups collide), w (int, wide range), g (string group
// label with few distinct values), s (string id, unique).
func randomTable(rng *rand.Rand, rows int) *Table {
	f := make([]float64, rows)
	n := make([]int64, rows)
	w := make([]int64, rows)
	g := make([]string, rows)
	s := make([]string, rows)
	groups := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < rows; i++ {
		f[i] = math.Round(rng.NormFloat64()*100) / 10
		n[i] = int64(rng.Intn(7)) - 3
		w[i] = rng.Int63n(1_000_000)
		g[i] = groups[rng.Intn(len(groups))]
		s[i] = fmt.Sprintf("id%04d", i)
	}
	return NewTable(rows).
		AddFloat("f", f).
		AddInt("n", n).
		AddInt("w", w).
		AddStr("g", g).
		AddStr("s", s)
}

// run compiles and executes src over t on pool, failing the test on error.
func run(t *testing.T, tab *Table, src string, pool *runpool.Runner) *Table {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	out, err := p.Run(tab, pool)
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return out
}

// TestAggregatesAgainstBruteForce cross-checks every aggregate — global and
// grouped — against straight loops over randomized tables.
func TestAggregatesAgainstBruteForce(t *testing.T) {
	pool := runpool.New(4)
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(10_000)
		tab := randomTable(rng, rows)
		f, n, w, g := tab.Col("f").F, tab.Col("n").I, tab.Col("w").I, tab.Col("g").S

		// Global aggregates.
		out := run(t, tab, "agg count, sum(f), sum(w), mean(n), max(f), min(w), quantile(f,0.5), quantile(w,0.9)", pool)
		if out.NumRows() != 1 {
			t.Fatalf("seed %d: global agg rows = %d", seed, out.NumRows())
		}
		var sumF, sumN float64
		var sumW int64
		maxF := math.Inf(-1)
		minW := w[0]
		for i := 0; i < rows; i++ {
			sumF += f[i]
			sumN += float64(n[i])
			sumW += w[i]
			if f[i] > maxF {
				maxF = f[i]
			}
			if w[i] < minW {
				minW = w[i]
			}
		}
		sortedF := append([]float64(nil), f...)
		sort.Float64s(sortedF)
		sortedW := append([]int64(nil), w...)
		sort.Slice(sortedW, func(a, b int) bool { return sortedW[a] < sortedW[b] })
		nearest := func(nn int, q float64) int {
			r := int(math.Ceil(float64(nn) * q))
			if r < 1 {
				r = 1
			}
			return r - 1
		}
		checkF := func(col string, want float64) {
			c := out.Col(col)
			if c == nil || c.Kind != Float {
				t.Fatalf("seed %d: column %s missing or not float", seed, col)
			}
			if got := c.F[0]; got != want && math.Abs(got-want) > 1e-9*math.Abs(want) {
				t.Errorf("seed %d: %s = %v, brute force %v", seed, col, got, want)
			}
		}
		checkI := func(col string, want int64) {
			c := out.Col(col)
			if c == nil || c.Kind != Int {
				t.Fatalf("seed %d: column %s missing or not int", seed, col)
			}
			if got := c.I[0]; got != want {
				t.Errorf("seed %d: %s = %d, brute force %d", seed, col, got, want)
			}
		}
		checkI("count", int64(rows))
		checkF("sum_f", sumF)
		checkI("sum_w", sumW)
		checkF("mean_n", sumN/float64(rows))
		checkF("max_f", maxF)
		checkI("min_w", minW)
		checkF("p50_f", sortedF[nearest(rows, 0.5)])
		checkI("p90_w", sortedW[nearest(rows, 0.9)])

		// Grouped aggregates: first-appearance group order, per-group sums.
		out = run(t, tab, "groupby g | agg count, sum(w), mean(f), max(n), quantile(w,0.25)", pool)
		type acc struct {
			count int64
			sumW  int64
			sumF  float64
			maxN  int64
			ws    []int64
		}
		order := []string{}
		byKey := map[string]*acc{}
		for i := 0; i < rows; i++ {
			a := byKey[g[i]]
			if a == nil {
				a = &acc{maxN: math.MinInt64}
				byKey[g[i]] = a
				order = append(order, g[i])
			}
			a.count++
			a.sumW += w[i]
			a.sumF += f[i]
			if n[i] > a.maxN {
				a.maxN = n[i]
			}
			a.ws = append(a.ws, w[i])
		}
		if out.NumRows() != len(order) {
			t.Fatalf("seed %d: grouped rows = %d, want %d", seed, out.NumRows(), len(order))
		}
		for gi, key := range order {
			a := byKey[key]
			if got := out.Col("g").S[gi]; got != key {
				t.Fatalf("seed %d: group %d = %q, want %q (first-appearance order)", seed, gi, got, key)
			}
			if got := out.Col("count").I[gi]; got != a.count {
				t.Errorf("seed %d: group %s count = %d, want %d", seed, key, got, a.count)
			}
			if got := out.Col("sum_w").I[gi]; got != a.sumW {
				t.Errorf("seed %d: group %s sum_w = %d, want %d", seed, key, got, a.sumW)
			}
			want := a.sumF / float64(a.count)
			if got := out.Col("mean_f").F[gi]; math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Errorf("seed %d: group %s mean_f = %v, want %v", seed, key, got, want)
			}
			if got := out.Col("max_n").I[gi]; got != a.maxN {
				t.Errorf("seed %d: group %s max_n = %d, want %d", seed, key, got, a.maxN)
			}
			sort.Slice(a.ws, func(x, y int) bool { return a.ws[x] < a.ws[y] })
			if got, want := out.Col("p25_w").I[gi], a.ws[nearest(len(a.ws), 0.25)]; got != want {
				t.Errorf("seed %d: group %s p25_w = %d, want %d", seed, key, got, want)
			}
		}
	}
}

// TestFilterSortTopKAgainstBruteForce cross-checks the row verbs against
// direct evaluation.
func TestFilterSortTopKAgainstBruteForce(t *testing.T) {
	pool := runpool.New(4)
	rng := rand.New(rand.NewSource(42))
	rows := 9000 // above topKChunkMin so TopKPool's parallel path runs
	tab := randomTable(rng, rows)
	f, n, s := tab.Col("f").F, tab.Col("n").I, tab.Col("s").S

	out := run(t, tab, `filter f > 0 && n != 0 || prefix(s, "id000")`, pool)
	var want []int
	for i := 0; i < rows; i++ {
		if (f[i] > 0 && n[i] != 0) || strings.HasPrefix(s[i], "id000") {
			want = append(want, i)
		}
	}
	if out.NumRows() != len(want) {
		t.Fatalf("filter rows = %d, want %d", out.NumRows(), len(want))
	}
	for i, r := range want {
		if out.Col("s").S[i] != s[r] {
			t.Fatalf("filter row %d = %q, want %q (ascending row order)", i, out.Col("s").S[i], s[r])
		}
	}

	// sort: composite keys, stability on equal keys.
	out = run(t, tab, "sort n asc, f desc", pool)
	idx := make([]int, rows)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if n[idx[a]] != n[idx[b]] {
			return n[idx[a]] < n[idx[b]]
		}
		return f[idx[a]] > f[idx[b]]
	})
	for i := 0; i < rows; i++ {
		if out.Col("s").S[i] != s[idx[i]] {
			t.Fatalf("sort row %d = %q, want %q", i, out.Col("s").S[i], s[idx[i]])
		}
	}

	// topk by w desc equals full sort + truncate under the total order
	// (w desc, row asc).
	const k = 37
	out = run(t, tab, fmt.Sprintf("topk %d by w", k), pool)
	w := tab.Col("w").I
	widx := make([]int, rows)
	for i := range widx {
		widx[i] = i
	}
	sort.SliceStable(widx, func(a, b int) bool { return w[widx[a]] > w[widx[b]] })
	if out.NumRows() != k {
		t.Fatalf("topk rows = %d, want %d", out.NumRows(), k)
	}
	for i := 0; i < k; i++ {
		if out.Col("s").S[i] != s[widx[i]] {
			t.Fatalf("topk row %d = %q, want %q", i, out.Col("s").S[i], s[widx[i]])
		}
	}
}

// TestPipelineByteIdenticalAcrossPools renders the full verb set at pool
// sizes 1 and 8 and requires byte-identical tables.
func TestPipelineByteIdenticalAcrossPools(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := randomTable(rng, 20_000)
	srcs := []string{
		"filter f > -5 | groupby g, n | agg count, sum(w), mean(f), min(w), max(f), quantile(w,0.5) | sort sum_w desc, g asc | select g,n,count,sum_w,mean_f,p50_w",
		"filter n >= 0 | sort f desc, s asc | topk 25 by w asc | select s,w,f",
		"agg count, quantile(f,0), quantile(f,1), mean(w)",
		`filter prefix(s, "id0") && !(n == 0) | topk 100 | groupby g | agg count, max(w)`,
	}
	p1 := runpool.New(1)
	p8 := runpool.New(8)
	for _, src := range srcs {
		var b1, b8 bytes.Buffer
		if err := WriteTable(&b1, run(t, tab, src, p1)); err != nil {
			t.Fatal(err)
		}
		if err := WriteTable(&b8, run(t, tab, src, p8)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b8.Bytes()) {
			t.Errorf("query %q: output differs between pool sizes 1 and 8", src)
		}
	}
}

// TestParseErrors verifies malformed queries fail with *Error (the usage
// classification the CLI and server map to exit 2 / HTTP 400) and never
// reach execution.
func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"frobnicate x > 1",
		"filter",
		"filter f >",
		"filter f ~ 1",
		"groupby g", // groupby without agg
		"groupby g | sort f",
		"agg bogus(f)",
		"agg quantile(f)",
		"agg quantile(f, 2)",
		"sort",
		"sort f sideways",
		"topk",
		"topk -3",
		"topk 5 by",
		"select",
		"from nowhere | filter f > 0",
		"filter f > 0 | from tasks",
	}
	for _, src := range bad {
		p, err := Parse(src)
		if err == nil {
			t.Errorf("Parse(%q): expected error, got plan %v", src, p)
			continue
		}
		if _, ok := err.(*Error); !ok {
			t.Errorf("Parse(%q): error type %T, want *Error", src, err)
		}
	}

	// Binding failures surface at Run time, also as *Error.
	tab := randomTable(rand.New(rand.NewSource(1)), 10)
	for _, src := range []string{
		"filter nosuch > 1",
		"sort nosuch",
		"agg sum(nosuch)",
		"agg sum(s)", // string column in numeric aggregate
		"select nosuch",
		"filter s + 1 > 0",  // string in arithmetic
		`filter s < "a"`,    // strings support only == and !=
		"filter f > 0 && n", // non-predicate operand
	} {
		p, err := Parse(src)
		if err != nil {
			if _, ok := err.(*Error); !ok {
				t.Errorf("Parse(%q): error type %T, want *Error", src, err)
			}
			continue
		}
		if _, err := p.Run(tab, nil); err == nil {
			t.Errorf("Run(%q): expected binding error", src)
		} else if _, ok := err.(*Error); !ok {
			t.Errorf("Run(%q): error type %T, want *Error", src, err)
		}
	}
}

// TestTopKEqualsSortTruncate property-checks TopK and TopKPool against
// sort+truncate under a randomized total order.
func TestTopKEqualsSortTruncate(t *testing.T) {
	pool := runpool.New(8)
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30_000)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(50)) // heavy ties: row index must break them
		}
		above := func(i, j int) bool {
			if vals[i] != vals[j] {
				return vals[i] > vals[j]
			}
			return i < j
		}
		for _, k := range []int{0, 1, 7, 100, n, n + 10} {
			want := SortRows(n, func(i, j int) bool { return above(i, j) })
			lim := k
			if lim > n {
				lim = n
			}
			if lim < 0 {
				lim = 0
			}
			want = want[:lim]
			got := TopK(n, k, above)
			gotPool := TopKPool(pool, n, k, above)
			if len(got) != len(want) || len(gotPool) != len(want) {
				t.Fatalf("seed %d n %d k %d: len got %d pool %d want %d", seed, n, k, len(got), len(gotPool), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d n %d k %d: TopK[%d] = %d, sort+truncate %d", seed, n, k, i, got[i], want[i])
				}
				if gotPool[i] != want[i] {
					t.Fatalf("seed %d n %d k %d: TopKPool[%d] = %d, sort+truncate %d", seed, n, k, i, gotPool[i], want[i])
				}
			}
		}
	}
}

// TestExprSemantics spot-checks operators the refactored callers rely on.
func TestExprSemantics(t *testing.T) {
	tab := NewTable(4).
		AddFloat("f", []float64{1.5, -2, 0, math.Inf(1)}).
		AddInt("n", []int64{-1, 0, 3, 7}).
		AddStr("s", []string{"R", "R.0", "R.0.1", "R.1"})
	cases := []struct {
		src  string
		want []bool
	}{
		{"f > 0", []bool{true, false, false, true}},
		{"abs(f) >= 1.5", []bool{true, true, false, true}},
		{"-n < 0", []bool{false, false, true, true}},
		{"f * 2 + 1 > n", []bool{true, false, false, true}},
		{`s == "R.0"`, []bool{false, true, false, false}},
		{`s != "R"`, []bool{false, true, true, true}},
		{`prefix(s, "R.0")`, []bool{false, true, true, false}},
		{`under(s, "R.0")`, []bool{false, true, true, false}},
		{`under(s, "R")`, []bool{true, true, true, true}},
		{"f > 0 && n <= 0 || f == 0", []bool{true, false, true, false}},
		{"!(n == 3)", []bool{true, true, false, true}},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", c.src, err)
		}
		out := make([]bool, 4)
		if err := e.EvalBool(tab, nil, out); err != nil {
			t.Fatalf("EvalBool(%q): %v", c.src, err)
		}
		for i := range c.want {
			if out[i] != c.want[i] {
				t.Errorf("%q row %d = %v, want %v", c.src, i, out[i], c.want[i])
			}
		}
	}
}
