package query

import (
	"math"
	"strconv"
	"strings"
	"sync"
)

// Chunk-sized operand scratch, pooled across kernel invocations: a deep
// expression over a million-row table evaluates every tree node once per
// chunk, and allocating fresh operand buffers each time generates enough
// garbage to tax the phases running next to the query (the highlight
// threshold scan lives inside the analysis pipeline). Buffers are fully
// overwritten by the child eval before they are read, so reuse cannot
// change results. Ranges wider than exprChunk (callers outside ParallelFor
// chunking) fall back to a plain allocation.
var (
	numScratch  = sync.Pool{New: func() any { s := make([]float64, exprChunk); return &s }}
	boolScratch = sync.Pool{New: func() any { s := make([]bool, exprChunk); return &s }}
)

func getNum(n int) (*[]float64, []float64) {
	if n > exprChunk {
		return nil, make([]float64, n)
	}
	p := numScratch.Get().(*[]float64)
	return p, (*p)[:n]
}

func putNum(p *[]float64) {
	if p != nil {
		numScratch.Put(p)
	}
}

func getBool(n int) (*[]bool, []bool) {
	if n > exprChunk {
		return nil, make([]bool, n)
	}
	p := boolScratch.Get().(*[]bool)
	return p, (*p)[:n]
}

func putBool(p *[]bool) {
	if p != nil {
		boolScratch.Put(p)
	}
}

// Expr is a compiled scalar expression over table columns: arithmetic over
// numeric columns and literals, comparisons (numeric or string), boolean
// combinators, and the prefix(col, "lit") grain-subtree test. Compilation
// (ParseExpr) is schema-free; binding against a concrete table happens at
// evaluation time so one compiled expression serves many tables.
type Expr struct {
	root exprNode
	src  string
}

// Src returns the source text the expression was compiled from.
func (e *Expr) Src() string { return e.src }

// ParseExpr compiles one scalar expression.
func ParseExpr(src string) (*Expr, error) {
	p := &exprParser{toks: lex(src), src: src}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, errf(src, "unexpected %q after expression", p.peek().text)
	}
	return &Expr{root: n, src: src}, nil
}

// exprNode is one compiled AST node. eval writes the node's value for rows
// [lo,hi) of t into a fresh or scratch vector.
type exprNode interface {
	// check validates the node against t's schema and returns the node's
	// result class: true when boolean, false when numeric or string.
	check(t *Table) (isBool bool, isStr bool, err error)
	// evalNum fills out[0:hi-lo] with the numeric value of rows [lo,hi).
	evalNum(t *Table, lo, hi int, out []float64)
	// evalBool fills out[0:hi-lo] with the boolean value of rows [lo,hi).
	evalBool(t *Table, lo, hi int, out []bool)
	// evalStr returns the string value of row i (string nodes only — string
	// data is only compared, never transformed, so no vector form needed).
	evalStr(t *Table, i int) string
}

// baseNode provides panicking defaults so each node implements only the
// class check allows it to be.
type baseNode struct{}

func (baseNode) evalNum(*Table, int, int, []float64) { panic("query: not a numeric expression") }
func (baseNode) evalBool(*Table, int, int, []bool)   { panic("query: not a boolean expression") }
func (baseNode) evalStr(*Table, int) string          { panic("query: not a string expression") }

// numLit is a numeric literal.
type numLit struct {
	baseNode
	v float64
}

func (numLit) check(*Table) (bool, bool, error) { return false, false, nil }
func (n numLit) evalNum(_ *Table, lo, hi int, out []float64) {
	for i := range out[:hi-lo] {
		out[i] = n.v
	}
}

// strLit is a quoted string literal.
type strLit struct {
	baseNode
	v string
}

func (strLit) check(*Table) (bool, bool, error) { return false, true, nil }
func (s strLit) evalStr(*Table, int) string     { return s.v }

// colRef reads a table column by name.
type colRef struct {
	baseNode
	name string
}

func (c colRef) check(t *Table) (bool, bool, error) {
	col := t.Col(c.name)
	if col == nil {
		return false, false, errf(c.name, "unknown column (have %s)", columnNames(t))
	}
	return false, col.Kind == Str, nil
}

func (c colRef) evalNum(t *Table, lo, hi int, out []float64) {
	col := t.Col(c.name)
	if col.Kind == Float {
		copy(out, col.F[lo:hi])
		return
	}
	for i, v := range col.I[lo:hi] {
		out[i] = float64(v)
	}
}

func (c colRef) evalStr(t *Table, i int) string { return t.Col(c.name).S[i] }

// unaryOp is numeric negation or boolean not.
type unaryOp struct {
	baseNode
	op string // "-" or "!"
	x  exprNode
}

func (u unaryOp) check(t *Table) (bool, bool, error) {
	xb, xs, err := u.x.check(t)
	if err != nil {
		return false, false, err
	}
	if u.op == "!" {
		if !xb {
			return false, false, errf(u.op, "operand of ! must be boolean")
		}
		return true, false, nil
	}
	if xb || xs {
		return false, false, errf(u.op, "operand of unary - must be numeric")
	}
	return false, false, nil
}

func (u unaryOp) evalNum(t *Table, lo, hi int, out []float64) {
	u.x.evalNum(t, lo, hi, out)
	for i := range out[:hi-lo] {
		out[i] = -out[i]
	}
}

func (u unaryOp) evalBool(t *Table, lo, hi int, out []bool) {
	u.x.evalBool(t, lo, hi, out)
	for i := range out[:hi-lo] {
		out[i] = !out[i]
	}
}

// arithOp is + - * / over numeric operands.
type arithOp struct {
	baseNode
	op   string
	l, r exprNode
}

func (a arithOp) check(t *Table) (bool, bool, error) {
	for _, x := range []exprNode{a.l, a.r} {
		b, s, err := x.check(t)
		if err != nil {
			return false, false, err
		}
		if b || s {
			return false, false, errf(a.op, "operands of %s must be numeric", a.op)
		}
	}
	return false, false, nil
}

func (a arithOp) evalNum(t *Table, lo, hi int, out []float64) {
	n := hi - lo
	rp, rhs := getNum(n)
	defer putNum(rp)
	a.l.evalNum(t, lo, hi, out)
	a.r.evalNum(t, lo, hi, rhs)
	switch a.op {
	case "+":
		for i := 0; i < n; i++ {
			out[i] += rhs[i]
		}
	case "-":
		for i := 0; i < n; i++ {
			out[i] -= rhs[i]
		}
	case "*":
		for i := 0; i < n; i++ {
			out[i] *= rhs[i]
		}
	default: // "/" — IEEE semantics: x/0 is ±Inf or NaN, same as Go float64
		for i := 0; i < n; i++ {
			out[i] /= rhs[i]
		}
	}
}

// cmpOp compares two numeric or two string operands.
type cmpOp struct {
	baseNode
	op   string
	l, r exprNode
	str  bool // set by check: string comparison
}

func (c *cmpOp) check(t *Table) (bool, bool, error) {
	lb, ls, err := c.l.check(t)
	if err != nil {
		return false, false, err
	}
	rb, rs, err := c.r.check(t)
	if err != nil {
		return false, false, err
	}
	if lb || rb {
		return false, false, errf(c.op, "cannot compare boolean values with %s", c.op)
	}
	if ls != rs {
		return false, false, errf(c.op, "cannot compare string with number")
	}
	c.str = ls
	if c.str && c.op != "==" && c.op != "!=" {
		return false, false, errf(c.op, "strings support only == and !=")
	}
	return true, false, nil
}

func (c *cmpOp) evalBool(t *Table, lo, hi int, out []bool) {
	n := hi - lo
	if c.str {
		for i := 0; i < n; i++ {
			eq := c.l.evalStr(t, lo+i) == c.r.evalStr(t, lo+i)
			out[i] = eq == (c.op == "==")
		}
		return
	}
	lp, lhs := getNum(n)
	rp, rhs := getNum(n)
	defer putNum(lp)
	defer putNum(rp)
	c.l.evalNum(t, lo, hi, lhs)
	c.r.evalNum(t, lo, hi, rhs)
	switch c.op {
	case "<":
		for i := 0; i < n; i++ {
			out[i] = lhs[i] < rhs[i]
		}
	case "<=":
		for i := 0; i < n; i++ {
			out[i] = lhs[i] <= rhs[i]
		}
	case ">":
		for i := 0; i < n; i++ {
			out[i] = lhs[i] > rhs[i]
		}
	case ">=":
		for i := 0; i < n; i++ {
			out[i] = lhs[i] >= rhs[i]
		}
	case "==":
		for i := 0; i < n; i++ {
			out[i] = lhs[i] == rhs[i]
		}
	default: // "!="
		for i := 0; i < n; i++ {
			out[i] = lhs[i] != rhs[i]
		}
	}
}

// boolOp is && or || over boolean operands. Both sides evaluate fully
// (vectorized, no short-circuit) — expressions are pure, so this only costs
// cycles, never changes results.
type boolOp struct {
	baseNode
	op   string
	l, r exprNode
}

func (b boolOp) check(t *Table) (bool, bool, error) {
	for _, x := range []exprNode{b.l, b.r} {
		xb, _, err := x.check(t)
		if err != nil {
			return false, false, err
		}
		if !xb {
			return false, false, errf(b.op, "operands of %s must be boolean", b.op)
		}
	}
	return true, false, nil
}

func (b boolOp) evalBool(t *Table, lo, hi int, out []bool) {
	n := hi - lo
	rp, rhs := getBool(n)
	defer putBool(rp)
	b.l.evalBool(t, lo, hi, out)
	b.r.evalBool(t, lo, hi, rhs)
	if b.op == "&&" {
		for i := 0; i < n; i++ {
			out[i] = out[i] && rhs[i]
		}
		return
	}
	for i := 0; i < n; i++ {
		out[i] = out[i] || rhs[i]
	}
}

// prefixFn is prefix(strExpr, strExpr): true when the first operand starts
// with the second — the grain-ID subtree test ("every grain under R.2" is
// prefix(id, "R.2.") || id == "R.2").
type prefixFn struct {
	baseNode
	s, pre exprNode
}

func (p prefixFn) check(t *Table) (bool, bool, error) {
	for _, x := range []exprNode{p.s, p.pre} {
		_, xs, err := x.check(t)
		if err != nil {
			return false, false, err
		}
		if !xs {
			return false, false, errf("prefix", "arguments must be strings")
		}
	}
	return true, false, nil
}

func (p prefixFn) evalBool(t *Table, lo, hi int, out []bool) {
	for i := range out[:hi-lo] {
		out[i] = strings.HasPrefix(p.s.evalStr(t, lo+i), p.pre.evalStr(t, lo+i))
	}
}

// underFn is under(strExpr, strExpr): true when the first operand (a
// dot-separated grain ID) lies in the subtree rooted at the second — equal
// to it, or having it as a dotted ancestor prefix.
type underFn struct {
	baseNode
	s, root exprNode
}

func (u underFn) check(t *Table) (bool, bool, error) {
	return prefixFn{s: u.s, pre: u.root}.check(t)
}

func (u underFn) evalBool(t *Table, lo, hi int, out []bool) {
	for i := range out[:hi-lo] {
		s, root := u.s.evalStr(t, lo+i), u.root.evalStr(t, lo+i)
		out[i] = s == root || (strings.HasPrefix(s, root) && len(s) > len(root) && s[len(root)] == '.')
	}
}

// absFn is abs(numExpr).
type absFn struct {
	baseNode
	x exprNode
}

func (a absFn) check(t *Table) (bool, bool, error) {
	b, s, err := a.x.check(t)
	if err != nil {
		return false, false, err
	}
	if b || s {
		return false, false, errf("abs", "argument must be numeric")
	}
	return false, false, nil
}

func (a absFn) evalNum(t *Table, lo, hi int, out []float64) {
	a.x.evalNum(t, lo, hi, out)
	for i := range out[:hi-lo] {
		out[i] = math.Abs(out[i])
	}
}

// --- lexer ---

type token struct {
	kind tokKind
	text string
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokNum
	tokStr
	tokIdent
	tokOp
	tokLParen
	tokRParen
	tokComma
)

// lex splits src into tokens; unknown characters become operator tokens the
// parser rejects with a position-bearing error.
func lex(src string) []token {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ","})
			i++
		case c == '"' || c == '\'':
			q := c
			j := i + 1
			for j < len(src) && src[j] != q {
				j++
			}
			if j >= len(src) {
				toks = append(toks, token{tokOp, src[i:]}) // unterminated: parser errors
				i = len(src)
				break
			}
			toks = append(toks, token{tokStr, src[i+1 : j]})
			i = j + 1
		case c >= '0' && c <= '9' || c == '.' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' ||
				src[j] == 'e' || src[j] == 'E' ||
				(src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E')) {
				j++
			}
			toks = append(toks, token{tokNum, src[i:j]})
			i = j
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j]})
			i = j
		default:
			// Multi-char operators first.
			for _, op := range []string{"&&", "||", "<=", ">=", "==", "!="} {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, token{tokOp, op})
					i += len(op)
					goto next
				}
			}
			toks = append(toks, token{tokOp, string(c)})
			i++
		next:
		}
	}
	return append(toks, token{tokEOF, ""})
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '.' || c == ':'
}

// --- parser (precedence climbing) ---

type exprParser struct {
	toks []token
	pos  int
	src  string
}

func (p *exprParser) peek() token { return p.toks[p.pos] }
func (p *exprParser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *exprParser) eof() bool   { return p.peek().kind == tokEOF }

func (p *exprParser) acceptOp(ops ...string) (string, bool) {
	t := p.peek()
	if t.kind != tokOp {
		return "", false
	}
	for _, op := range ops {
		if t.text == op {
			p.pos++
			return op, true
		}
	}
	return "", false
}

func (p *exprParser) parseOr() (exprNode, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := p.acceptOp("||"); !ok {
			return l, nil
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = boolOp{op: "||", l: l, r: r}
	}
}

func (p *exprParser) parseAnd() (exprNode, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := p.acceptOp("&&"); !ok {
			return l, nil
		}
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = boolOp{op: "&&", l: l, r: r}
	}
}

func (p *exprParser) parseCmp() (exprNode, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	op, ok := p.acceptOp("<", "<=", ">", ">=", "==", "!=")
	if !ok {
		return l, nil
	}
	r, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	return &cmpOp{op: op, l: l, r: r}, nil
}

func (p *exprParser) parseAdd() (exprNode, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := p.acceptOp("+", "-")
		if !ok {
			return l, nil
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = arithOp{op: op, l: l, r: r}
	}
}

func (p *exprParser) parseMul() (exprNode, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := p.acceptOp("*", "/")
		if !ok {
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = arithOp{op: op, l: l, r: r}
	}
}

func (p *exprParser) parseUnary() (exprNode, error) {
	if op, ok := p.acceptOp("!", "-"); ok {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryOp{op: op, x: x}, nil
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (exprNode, error) {
	t := p.next()
	switch t.kind {
	case tokNum:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errf(t.text, "bad number")
		}
		return numLit{v: v}, nil
	case tokStr:
		return strLit{v: t.text}, nil
	case tokLParen:
		n, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.next().kind != tokRParen {
			return nil, errf(p.src, "missing )")
		}
		return n, nil
	case tokIdent:
		if p.peek().kind != tokLParen {
			return colRef{name: t.text}, nil
		}
		p.next() // (
		var args []exprNode
		for p.peek().kind != tokRParen {
			a, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.peek().kind == tokComma {
				p.next()
			}
		}
		p.next() // )
		switch t.text {
		case "prefix":
			if len(args) != 2 {
				return nil, errf(t.text, "want prefix(<string>, <string>)")
			}
			return prefixFn{s: args[0], pre: args[1]}, nil
		case "under":
			if len(args) != 2 {
				return nil, errf(t.text, "want under(<id>, <root>)")
			}
			return underFn{s: args[0], root: args[1]}, nil
		case "abs":
			if len(args) != 1 {
				return nil, errf(t.text, "want abs(<number>)")
			}
			return absFn{x: args[0]}, nil
		default:
			return nil, errf(t.text, "unknown function (want prefix, under, abs)")
		}
	case tokEOF:
		return nil, errf(p.src, "unexpected end of expression")
	default:
		return nil, errf(t.text, "unexpected token")
	}
}

// columnNames renders a table's schema for error messages.
func columnNames(t *Table) string {
	names := make([]string, len(t.cols))
	for i, c := range t.cols {
		names[i] = c.Name
	}
	return strings.Join(names, ", ")
}
