// Package query is a small vectorized dataframe engine over columnar
// tables. The analysis layers (metric highlight thresholds, what-if
// candidate ranking, level-of-detail windowing) all need the same handful
// of relational verbs — filter rows by a predicate over attribute columns,
// group and aggregate, rank, take the top k — and before this package each
// implemented its own bespoke scan. Here the verbs are compiled once from a
// compact string grammar (see Parse) and executed with chunked
// runpool.ParallelFor/ParallelReduce kernels whose chunk boundaries depend
// only on the row count, so every plan produces byte-identical results at
// every worker count, including the serial fallback.
//
// A Table is a set of equally long named columns, each float64, int64 or
// string. Tables are cheap views: verbs materialize fresh column slices but
// never copy the source, and string columns share their backing data.
package query

import "fmt"

// Kind is a column's element type.
type Kind uint8

const (
	// Float columns hold float64 values (metric ratios, severities).
	Float Kind = iota
	// Int columns hold int64 values (counts, cycle times, depths).
	Int
	// Str columns hold string values (grain IDs, source locations).
	Str
)

func (k Kind) String() string {
	switch k {
	case Float:
		return "float"
	case Int:
		return "int"
	case Str:
		return "string"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Column is one named attribute vector. Exactly one of F, I, S is non-nil,
// matching Kind; all rows of a Table have the same length.
type Column struct {
	Name string
	Kind Kind
	F    []float64
	I    []int64
	S    []string
}

// len returns the column's row count.
func (c *Column) len() int {
	switch c.Kind {
	case Float:
		return len(c.F)
	case Int:
		return len(c.I)
	default:
		return len(c.S)
	}
}

// num returns row i as a float64; Str columns must not reach here (the
// binder rejects them in numeric position).
func (c *Column) num(i int) float64 {
	if c.Kind == Float {
		return c.F[i]
	}
	return float64(c.I[i])
}

// Table is a columnar dataset: named typed columns of one shared length.
type Table struct {
	rows   int
	cols   []*Column
	byName map[string]*Column
}

// NewTable returns an empty table expecting rows-long columns.
func NewTable(rows int) *Table {
	return &Table{rows: rows, byName: make(map[string]*Column)}
}

// NumRows returns the table's row count.
func (t *Table) NumRows() int { return t.rows }

// Columns returns the columns in insertion order.
func (t *Table) Columns() []*Column { return t.cols }

// Col returns the named column, or nil.
func (t *Table) Col(name string) *Column { return t.byName[name] }

func (t *Table) add(c *Column) *Table {
	if c.len() != t.rows {
		panic(fmt.Sprintf("query: column %q has %d rows, table has %d", c.Name, c.len(), t.rows))
	}
	if _, dup := t.byName[c.Name]; dup {
		panic(fmt.Sprintf("query: duplicate column %q", c.Name))
	}
	t.cols = append(t.cols, c)
	t.byName[c.Name] = c
	return t
}

// AddFloat appends a float64 column. The slice is adopted, not copied.
func (t *Table) AddFloat(name string, v []float64) *Table {
	return t.add(&Column{Name: name, Kind: Float, F: v})
}

// AddInt appends an int64 column. The slice is adopted, not copied.
func (t *Table) AddInt(name string, v []int64) *Table {
	return t.add(&Column{Name: name, Kind: Int, I: v})
}

// AddStr appends a string column. The slice is adopted, not copied.
func (t *Table) AddStr(name string, v []string) *Table {
	return t.add(&Column{Name: name, Kind: Str, S: v})
}

// gather materializes the rows named by idx (in idx order) into a fresh
// table with the same schema.
func (t *Table) gather(idx []int32) *Table {
	out := NewTable(len(idx))
	for _, c := range t.cols {
		nc := &Column{Name: c.Name, Kind: c.Kind}
		switch c.Kind {
		case Float:
			nc.F = make([]float64, len(idx))
			for i, r := range idx {
				nc.F[i] = c.F[r]
			}
		case Int:
			nc.I = make([]int64, len(idx))
			for i, r := range idx {
				nc.I[i] = c.I[r]
			}
		default:
			nc.S = make([]string, len(idx))
			for i, r := range idx {
				nc.S[i] = c.S[r]
			}
		}
		out.add(nc)
	}
	return out
}

// Error is a query compilation or binding failure: a malformed source
// string, an unknown column, a type mismatch. Surfaces map it to a usage
// failure (CLI exit 2, HTTP 400) — it always means the query, not the
// engine, is at fault.
type Error struct {
	Src string // the offending source fragment
	Msg string
}

func (e *Error) Error() string {
	if e.Src == "" {
		return "query: " + e.Msg
	}
	return fmt.Sprintf("query: %q: %s", e.Src, e.Msg)
}

func errf(src, format string, args ...any) *Error {
	return &Error{Src: src, Msg: fmt.Sprintf(format, args...)}
}
