package query

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"graingraph/internal/runpool"
)

// A Plan is a compiled verb pipeline. The grammar is a '|'-separated chain
// in the spirit of the what-if spec grammar:
//
//	[from grains|tasks |] verb | verb | ...
//
// with verbs
//
//	filter <expr>                      keep rows satisfying a predicate
//	groupby <col>[,<col>...]           group rows (must be followed by agg)
//	agg <call>[,<call>...]             aggregate: sum(c) mean(c) max(c)
//	                                   min(c) count() quantile(c,q)
//	sort <col> [asc|desc][, ...]       order rows (stable; default asc)
//	topk <n> [by <col> [asc|desc]]     keep the n best rows (default desc)
//	select <col>[,<col>...]            project columns
//
// Aggregate output columns are named sum_c, mean_c, max_c, min_c, count
// and p<100q>_c (quantile(work,0.9) → p90_work, by the nearest-rank rule);
// later verbs reference them by those names. sum/max/min/quantile keep the
// source column's kind (integer cycle counts stay integers); mean is
// always float; count is an integer.
//
// Example — the paper's "which loop grains under R have low parallel
// benefit and high work deviation?":
//
//	filter kind == "chunk" && under(id, "R") && benefit < 1 && workdev > 2
//	  | sort exec desc | topk 10 | select id,loc,exec,benefit,workdev
type Plan struct {
	src    string
	source string // "grains" (default) or "tasks"
	ops    []planOp
}

// Src returns the source text the plan was compiled from.
func (p *Plan) Src() string { return p.src }

// Source names the table the plan runs over: "grains" (the per-grain
// metric rows, default) or "tasks" (the level-of-detail summary index).
func (p *Plan) Source() string { return p.source }

type planOp interface {
	run(t *Table, pool *runpool.Runner) (*Table, error)
}

// Parse compiles a verb pipeline. All failures are *Error values: the
// query is malformed, the engine is fine.
func Parse(src string) (*Plan, error) {
	p := &Plan{src: src, source: "grains"}
	stages := splitStages(src)
	var pendingGroup []string
	for si, stage := range stages {
		stage = strings.TrimSpace(stage)
		if stage == "" {
			if len(stages) == 1 {
				return nil, errf(src, "empty query")
			}
			return nil, errf(src, "empty pipeline stage")
		}
		verb, rest, _ := strings.Cut(stage, " ")
		rest = strings.TrimSpace(rest)
		if verb == "from" {
			if si != 0 {
				return nil, errf(stage, "from must be the first stage")
			}
			if rest != "grains" && rest != "tasks" {
				return nil, errf(stage, "unknown source %q (want grains or tasks)", rest)
			}
			p.source = rest
			continue
		}
		if pendingGroup != nil && verb != "agg" {
			return nil, errf(stage, "groupby must be followed by agg")
		}
		switch verb {
		case "filter":
			e, err := ParseExpr(rest)
			if err != nil {
				return nil, err
			}
			p.ops = append(p.ops, filterOp{expr: e})
		case "groupby":
			cols, err := splitNames(stage, rest)
			if err != nil {
				return nil, err
			}
			pendingGroup = cols
		case "agg":
			aggs, err := parseAggs(rest)
			if err != nil {
				return nil, err
			}
			p.ops = append(p.ops, aggOp{keys: pendingGroup, aggs: aggs})
			pendingGroup = nil
		case "sort":
			keys, err := parseSortKeys(stage, rest)
			if err != nil {
				return nil, err
			}
			p.ops = append(p.ops, sortOp{keys: keys})
		case "topk":
			op, err := parseTopK(stage, rest)
			if err != nil {
				return nil, err
			}
			p.ops = append(p.ops, op)
		case "select":
			cols, err := splitNames(stage, rest)
			if err != nil {
				return nil, err
			}
			p.ops = append(p.ops, selectOp{cols: cols})
		default:
			return nil, errf(verb, "unknown verb (want filter, groupby, agg, sort, topk, select)")
		}
	}
	if pendingGroup != nil {
		return nil, errf(src, "groupby must be followed by agg")
	}
	if len(p.ops) == 0 {
		return nil, errf(src, "empty query")
	}
	return p, nil
}

// Run executes the plan over t across the pool and returns the result
// table. t is never mutated. Results are byte-identical at every pool
// size, including nil (serial).
func (p *Plan) Run(t *Table, pool *runpool.Runner) (*Table, error) {
	var err error
	for _, op := range p.ops {
		t, err = op.run(t, pool)
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// splitStages splits a plan source on single '|' stage separators, leaving
// '||' operators and quoted string literals intact — "filter a > 0 || b > 0"
// is one stage, not three.
func splitStages(src string) []string {
	var stages []string
	start := 0
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '\'', '"':
			q := src[i]
			for i++; i < len(src) && src[i] != q; i++ {
			}
		case '|':
			if i+1 < len(src) && src[i+1] == '|' {
				i++
				continue
			}
			stages = append(stages, src[start:i])
			start = i + 1
		}
	}
	return append(stages, src[start:])
}

func splitNames(stage, rest string) ([]string, error) {
	if rest == "" {
		return nil, errf(stage, "missing column list")
	}
	var cols []string
	for _, c := range strings.Split(rest, ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			return nil, errf(stage, "empty column name")
		}
		cols = append(cols, c)
	}
	return cols, nil
}

// --- filter ---

type filterOp struct{ expr *Expr }

func (f filterOp) run(t *Table, pool *runpool.Runner) (*Table, error) {
	idx, err := FilterRows(t, f.expr, pool)
	if err != nil {
		return nil, err
	}
	return t.gather(idx), nil
}

// --- select ---

type selectOp struct{ cols []string }

func (s selectOp) run(t *Table, _ *runpool.Runner) (*Table, error) {
	out := NewTable(t.rows)
	for _, name := range s.cols {
		c := t.Col(name)
		if c == nil {
			return nil, errf(name, "unknown column (have %s)", columnNames(t))
		}
		out.add(c)
	}
	return out, nil
}

// --- sort ---

type sortKey struct {
	col  string
	desc bool
}

func parseSortKeys(stage, rest string) ([]sortKey, error) {
	if rest == "" {
		return nil, errf(stage, "missing sort key")
	}
	var keys []sortKey
	for _, part := range strings.Split(rest, ",") {
		fields := strings.Fields(part)
		switch len(fields) {
		case 1:
			keys = append(keys, sortKey{col: fields[0]})
		case 2:
			switch fields[1] {
			case "asc":
				keys = append(keys, sortKey{col: fields[0]})
			case "desc":
				keys = append(keys, sortKey{col: fields[0], desc: true})
			default:
				return nil, errf(part, "want <col> [asc|desc]")
			}
		default:
			return nil, errf(part, "want <col> [asc|desc]")
		}
	}
	return keys, nil
}

type sortOp struct{ keys []sortKey }

// keyLess builds the composite comparator for a key list; ties are broken
// by the caller (stable sort keeps row order; topk uses row index).
func keyLess(t *Table, keys []sortKey) (func(i, j int) bool, error) {
	type cmp struct {
		c    *Column
		desc bool
	}
	cs := make([]cmp, len(keys))
	for k, key := range keys {
		c := t.Col(key.col)
		if c == nil {
			return nil, errf(key.col, "unknown column (have %s)", columnNames(t))
		}
		cs[k] = cmp{c: c, desc: key.desc}
	}
	return func(i, j int) bool {
		for _, k := range cs {
			var lt, gt bool
			switch k.c.Kind {
			case Str:
				lt, gt = k.c.S[i] < k.c.S[j], k.c.S[i] > k.c.S[j]
			case Int:
				lt, gt = k.c.I[i] < k.c.I[j], k.c.I[i] > k.c.I[j]
			default:
				lt, gt = floatLess(k.c.F[i], k.c.F[j]), floatLess(k.c.F[j], k.c.F[i])
			}
			if k.desc {
				lt, gt = gt, lt
			}
			if lt {
				return true
			}
			if gt {
				return false
			}
		}
		return false
	}, nil
}

// floatLess is a total order over float64: NaN sorts before everything
// (and equal to itself), so sorting is deterministic even on NaN metrics.
func floatLess(a, b float64) bool {
	if a != a {
		return b == b
	}
	if b != b {
		return false
	}
	return a < b
}

func (s sortOp) run(t *Table, _ *runpool.Runner) (*Table, error) {
	less, err := keyLess(t, s.keys)
	if err != nil {
		return nil, err
	}
	return t.gather(SortRows(t.rows, less)), nil
}

// --- topk ---

type topkOp struct {
	n    int
	keys []sortKey // empty: keep the first n rows in current order
}

func parseTopK(stage, rest string) (topkOp, error) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return topkOp{}, errf(stage, "want topk <n> [by <col> [asc|desc]]")
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n < 0 {
		return topkOp{}, errf(stage, "bad count %q", fields[0])
	}
	op := topkOp{n: n}
	if len(fields) == 1 {
		return op, nil
	}
	if fields[1] != "by" || len(fields) < 3 || len(fields) > 4 {
		return topkOp{}, errf(stage, "want topk <n> [by <col> [asc|desc]]")
	}
	key := sortKey{col: fields[2], desc: true} // ranking defaults to best-first
	if len(fields) == 4 {
		switch fields[3] {
		case "asc":
			key.desc = false
		case "desc":
		default:
			return topkOp{}, errf(stage, "want asc or desc, got %q", fields[3])
		}
	}
	op.keys = []sortKey{key}
	return op, nil
}

func (op topkOp) run(t *Table, pool *runpool.Runner) (*Table, error) {
	if len(op.keys) == 0 {
		n := op.n
		if n > t.rows {
			n = t.rows
		}
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		return t.gather(idx), nil
	}
	less, err := keyLess(t, op.keys)
	if err != nil {
		return nil, err
	}
	// above is the strict total order "i ranks before j": the key order
	// with ascending row index breaking ties, exactly what sort+truncate
	// would produce.
	above := func(i, j int) bool {
		if less(i, j) {
			return true
		}
		if less(j, i) {
			return false
		}
		return i < j
	}
	return t.gather(TopKPool(pool, t.rows, op.n, above)), nil
}

// --- groupby / agg ---

type aggSpec struct {
	fn   string // sum mean max min count quantile
	col  string
	q    float64 // quantile only
	name string  // output column name
}

// parseAggs parses the agg call list, splitting on top-level commas only
// (quantile's own comma stays inside its parentheses).
func parseAggs(rest string) ([]aggSpec, error) {
	if strings.TrimSpace(rest) == "" {
		return nil, errf("agg", "missing aggregate list")
	}
	var specs []aggSpec
	depth, start := 0, 0
	flush := func(call string) error {
		call = strings.TrimSpace(call)
		if call == "" {
			return errf(rest, "empty aggregate")
		}
		spec, err := parseAggCall(call)
		if err != nil {
			return err
		}
		specs = append(specs, spec)
		return nil
	}
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				if err := flush(rest[start:i]); err != nil {
					return nil, err
				}
				start = i + 1
			}
		}
	}
	if err := flush(rest[start:]); err != nil {
		return nil, err
	}
	return specs, nil
}

func parseAggCall(call string) (aggSpec, error) {
	if call == "count" || call == "count()" {
		return aggSpec{fn: "count", name: "count"}, nil
	}
	fn, rest, ok := strings.Cut(call, "(")
	if !ok || !strings.HasSuffix(rest, ")") {
		return aggSpec{}, errf(call, "want fn(col): sum, mean, max, min, count, quantile")
	}
	args := strings.Split(strings.TrimSuffix(rest, ")"), ",")
	for i := range args {
		args[i] = strings.TrimSpace(args[i])
	}
	switch fn {
	case "sum", "mean", "max", "min":
		if len(args) != 1 || args[0] == "" {
			return aggSpec{}, errf(call, "want %s(<col>)", fn)
		}
		return aggSpec{fn: fn, col: args[0], name: fn + "_" + args[0]}, nil
	case "quantile":
		if len(args) != 2 {
			return aggSpec{}, errf(call, "want quantile(<col>, <q>)")
		}
		q, err := strconv.ParseFloat(args[1], 64)
		if err != nil || q < 0 || q > 1 {
			return aggSpec{}, errf(call, "bad quantile %q (want 0..1)", args[1])
		}
		name := fmt.Sprintf("p%s_%s", strconv.FormatFloat(100*q, 'g', -1, 64), args[0])
		return aggSpec{fn: "quantile", col: args[0], q: q, name: name}, nil
	default:
		return aggSpec{}, errf(call, "unknown aggregate %q (want sum, mean, max, min, count, quantile)", fn)
	}
}

type aggOp struct {
	keys []string // group-by columns; empty = one global group
	aggs []aggSpec
}

// groupAcc accumulates one group's partial aggregates within one chunk.
type groupAcc struct {
	firstRow int32 // source row the group key was first seen at
	count    int64
	sumF     []float64 // per agg spec
	sumI     []int64
	maxF     []float64
	maxI     []int64
	minSet   []bool
	vals     [][]float64 // quantile collection (float path)
	valsI    [][]int64   // quantile collection (int path)
}

// chunkGroups is one chunk's local grouping: accumulators in
// first-appearance order plus the key lookup.
type chunkGroups struct {
	order []string
	m     map[string]*groupAcc
}

func (op aggOp) run(t *Table, pool *runpool.Runner) (*Table, error) {
	// Bind the inputs once, up front.
	keyCols := make([]*Column, len(op.keys))
	for i, k := range op.keys {
		c := t.Col(k)
		if c == nil {
			return nil, errf(k, "unknown column (have %s)", columnNames(t))
		}
		keyCols[i] = c
	}
	aggCols := make([]*Column, len(op.aggs))
	for i, a := range op.aggs {
		if a.fn == "count" {
			continue
		}
		c := t.Col(a.col)
		if c == nil {
			return nil, errf(a.col, "unknown column (have %s)", columnNames(t))
		}
		if c.Kind == Str {
			return nil, errf(a.col, "%s needs a numeric column", a.fn)
		}
		aggCols[i] = c
	}

	// Phase 1: chunk-local grouping across the pool. Each chunk builds its
	// own accumulator set in first-appearance order; nothing is shared.
	rows := t.rows
	chunks := runpool.Chunks(rows, exprChunk)
	if chunks == 0 {
		chunks = 1 // an empty table still aggregates (count 0 global group)
	}
	locals := make([]*chunkGroups, chunks)
	runpool.ParallelFor(pool, rows, exprChunk, func(c, lo, hi int) {
		locals[c] = op.accumulate(t, keyCols, aggCols, lo, hi)
	})

	// Phase 2: merge the chunk-local groups in ascending chunk order, so
	// group identity and order equal the serial first-appearance scan.
	merged := &chunkGroups{m: make(map[string]*groupAcc)}
	for _, local := range locals {
		if local == nil {
			continue
		}
		for _, key := range local.order {
			src := local.m[key]
			dst, ok := merged.m[key]
			if !ok {
				merged.order = append(merged.order, key)
				merged.m[key] = src
				continue
			}
			dst.merge(src, op.aggs)
		}
	}
	if len(op.keys) == 0 && len(merged.order) == 0 {
		// Global aggregate over zero rows: one empty group, so count()
		// reports 0 instead of vanishing.
		merged.order = append(merged.order, "")
		merged.m[""] = op.newAcc(-1)
	}

	return op.emit(t, keyCols, aggCols, merged)
}

func (op aggOp) newAcc(firstRow int32) *groupAcc {
	n := len(op.aggs)
	return &groupAcc{
		firstRow: firstRow,
		sumF:     make([]float64, n),
		sumI:     make([]int64, n),
		maxF:     make([]float64, n),
		maxI:     make([]int64, n),
		minSet:   make([]bool, n),
		vals:     make([][]float64, n),
		valsI:    make([][]int64, n),
	}
}

// accumulate scans rows [lo, hi) into a fresh local grouping.
func (op aggOp) accumulate(t *Table, keyCols, aggCols []*Column, lo, hi int) *chunkGroups {
	local := &chunkGroups{m: make(map[string]*groupAcc)}
	var keyBuf []byte
	for r := lo; r < hi; r++ {
		keyBuf = keyBuf[:0]
		for _, kc := range keyCols {
			switch kc.Kind {
			case Str:
				keyBuf = append(keyBuf, kc.S[r]...)
			case Int:
				keyBuf = strconv.AppendInt(keyBuf, kc.I[r], 10)
			default:
				keyBuf = strconv.AppendFloat(keyBuf, kc.F[r], 'g', -1, 64)
			}
			keyBuf = append(keyBuf, 0)
		}
		key := string(keyBuf)
		acc, ok := local.m[key]
		if !ok {
			acc = op.newAcc(int32(r))
			local.m[key] = acc
			local.order = append(local.order, key)
		}
		acc.count++
		for i, spec := range op.aggs {
			c := aggCols[i]
			if c == nil { // count
				continue
			}
			switch spec.fn {
			case "sum":
				if c.Kind == Int {
					acc.sumI[i] += c.I[r]
				} else {
					acc.sumF[i] += c.F[r]
				}
			case "mean":
				acc.sumF[i] += c.num(r)
			case "max":
				if c.Kind == Int {
					if !acc.minSet[i] || c.I[r] > acc.maxI[i] {
						acc.maxI[i] = c.I[r]
					}
				} else if !acc.minSet[i] || c.F[r] > acc.maxF[i] {
					acc.maxF[i] = c.F[r]
				}
				acc.minSet[i] = true
			case "min":
				if c.Kind == Int {
					if !acc.minSet[i] || c.I[r] < acc.maxI[i] {
						acc.maxI[i] = c.I[r]
					}
				} else if !acc.minSet[i] || c.F[r] < acc.maxF[i] {
					acc.maxF[i] = c.F[r]
				}
				acc.minSet[i] = true
			case "quantile":
				if c.Kind == Int {
					acc.valsI[i] = append(acc.valsI[i], c.I[r])
				} else {
					acc.vals[i] = append(acc.vals[i], c.F[r])
				}
			}
		}
	}
	return local
}

// merge folds src (a later chunk) into dst.
func (acc *groupAcc) merge(src *groupAcc, aggs []aggSpec) {
	acc.count += src.count
	for i, spec := range aggs {
		switch spec.fn {
		case "sum", "mean":
			acc.sumF[i] += src.sumF[i]
			acc.sumI[i] += src.sumI[i]
		case "max":
			if src.minSet[i] {
				if !acc.minSet[i] || src.maxI[i] > acc.maxI[i] {
					acc.maxI[i] = src.maxI[i]
				}
				if !acc.minSet[i] || src.maxF[i] > acc.maxF[i] {
					acc.maxF[i] = src.maxF[i]
				}
				acc.minSet[i] = true
			}
		case "min":
			if src.minSet[i] {
				if !acc.minSet[i] || src.maxI[i] < acc.maxI[i] {
					acc.maxI[i] = src.maxI[i]
				}
				if !acc.minSet[i] || src.maxF[i] < acc.maxF[i] {
					acc.maxF[i] = src.maxF[i]
				}
				acc.minSet[i] = true
			}
		case "quantile":
			acc.vals[i] = append(acc.vals[i], src.vals[i]...)
			acc.valsI[i] = append(acc.valsI[i], src.valsI[i]...)
		}
	}
}

// emit materializes the merged groups as the output table: the group key
// columns (gathered from each group's first row, preserving kind) followed
// by one column per aggregate.
func (op aggOp) emit(t *Table, keyCols, aggCols []*Column, merged *chunkGroups) (*Table, error) {
	n := len(merged.order)
	out := NewTable(n)
	firstRows := make([]int32, n)
	for g, key := range merged.order {
		firstRows[g] = merged.m[key].firstRow
	}
	for _, kc := range keyCols {
		nc := &Column{Name: kc.Name, Kind: kc.Kind}
		switch kc.Kind {
		case Float:
			nc.F = make([]float64, n)
			for g, r := range firstRows {
				nc.F[g] = kc.F[r]
			}
		case Int:
			nc.I = make([]int64, n)
			for g, r := range firstRows {
				nc.I[g] = kc.I[r]
			}
		default:
			nc.S = make([]string, n)
			for g, r := range firstRows {
				nc.S[g] = kc.S[r]
			}
		}
		out.add(nc)
	}
	for i, spec := range op.aggs {
		if out.Col(spec.name) != nil {
			return nil, errf(spec.name, "duplicate aggregate output column")
		}
		srcInt := aggCols[i] != nil && aggCols[i].Kind == Int
		switch {
		case spec.fn == "count":
			v := make([]int64, n)
			for g, key := range merged.order {
				v[g] = merged.m[key].count
			}
			out.AddInt(spec.name, v)
		case spec.fn == "mean":
			// mean accumulates in float regardless of source kind.
			v := make([]float64, n)
			for g, key := range merged.order {
				acc := merged.m[key]
				if acc.count > 0 {
					v[g] = acc.sumF[i] / float64(acc.count)
				}
			}
			out.AddFloat(spec.name, v)
		case spec.fn == "sum" && srcInt:
			v := make([]int64, n)
			for g, key := range merged.order {
				v[g] = merged.m[key].sumI[i]
			}
			out.AddInt(spec.name, v)
		case spec.fn == "sum":
			v := make([]float64, n)
			for g, key := range merged.order {
				v[g] = merged.m[key].sumF[i]
			}
			out.AddFloat(spec.name, v)
		case (spec.fn == "max" || spec.fn == "min") && srcInt:
			v := make([]int64, n)
			for g, key := range merged.order {
				v[g] = merged.m[key].maxI[i]
			}
			out.AddInt(spec.name, v)
		case spec.fn == "max" || spec.fn == "min":
			v := make([]float64, n)
			for g, key := range merged.order {
				v[g] = merged.m[key].maxF[i]
			}
			out.AddFloat(spec.name, v)
		case spec.fn == "quantile" && srcInt:
			v := make([]int64, n)
			for g, key := range merged.order {
				vals := merged.m[key].valsI[i]
				sorted := append([]int64(nil), vals...)
				sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
				v[g] = quantileInt(sorted, spec.q)
			}
			out.AddInt(spec.name, v)
		default: // quantile, float
			v := make([]float64, n)
			for g, key := range merged.order {
				vals := merged.m[key].vals[i]
				sorted := append([]float64(nil), vals...)
				sort.Float64s(sorted)
				v[g] = quantileFloat(sorted, spec.q)
			}
			out.AddFloat(spec.name, v)
		}
	}
	return out, nil
}

// quantileInt is the nearest-rank quantile over a sorted slice (the same
// rule grainload uses for its latency percentiles): rank ceil(q·n),
// clamped to [1, n]; 0 on empty input.
func quantileInt(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[quantileRank(len(sorted), q)]
}

func quantileFloat(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[quantileRank(len(sorted), q)]
}

// quantileRank returns the 0-based nearest-rank index for q over n values.
func quantileRank(n int, q float64) int {
	r := int(math.Ceil(float64(n) * q))
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return r - 1
}
