package query

import (
	"sort"

	"graingraph/internal/runpool"
)

// TopK returns the indices of the k highest-ranked rows of [0, n) under
// above — a strict total order: above(i, j) reports whether row i outranks
// row j — in rank order, best first. One bounded-selection pass: O(n·k)
// worst case but O(n + k²) on typical inputs, and no allocation beyond the
// result. Because the order is total, the result equals sorting all n rows
// and truncating, which is what the callers (highlight top offenders,
// what-if candidate truncation, window child selection, the topk verb)
// previously each implemented by hand.
func TopK(n, k int, above func(i, j int) bool) []int32 {
	if k <= 0 || n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	top := make([]int32, 0, k)
	for r := 0; r < n; r++ {
		if len(top) == k && !above(r, int(top[k-1])) {
			continue
		}
		pos := len(top)
		for pos > 0 && above(r, int(top[pos-1])) {
			pos--
		}
		if len(top) < k {
			top = append(top, 0)
		}
		copy(top[pos+1:], top[pos:])
		top[pos] = int32(r)
	}
	return top
}

// topKChunkMin is the row count below which TopKPool stays serial: the
// merge overhead is not worth fanning out a few thousand comparisons.
const topKChunkMin = 8192

// TopKPool is TopK across the pool: fixed row chunks select their local
// top k, and the partial rankings merge in ascending chunk order. The
// total order makes the top-k set and its rank order unique, so the result
// is byte-identical to the serial pass at every worker count.
func TopKPool(pool *runpool.Runner, n, k int, above func(i, j int) bool) []int32 {
	if k <= 0 || n <= 0 {
		return nil
	}
	if n < topKChunkMin {
		return TopK(n, k, above)
	}
	return runpool.ParallelReduce(pool, n, topKChunkMin, nil,
		func(_, lo, hi int, _ []int32) []int32 {
			return topKRange(lo, hi, k, above)
		},
		func(a, b []int32) []int32 {
			return mergeTopK(a, b, k, above)
		})
}

// topKRange is TopK restricted to global rows [lo, hi).
func topKRange(lo, hi, k int, above func(i, j int) bool) []int32 {
	if k > hi-lo {
		k = hi - lo
	}
	top := make([]int32, 0, k)
	for r := lo; r < hi; r++ {
		if len(top) == k && !above(r, int(top[k-1])) {
			continue
		}
		pos := len(top)
		for pos > 0 && above(r, int(top[pos-1])) {
			pos--
		}
		if len(top) < k {
			top = append(top, 0)
		}
		copy(top[pos+1:], top[pos:])
		top[pos] = int32(r)
	}
	return top
}

// mergeTopK merges two rank-ordered partial selections, keeping k.
func mergeTopK(a, b []int32, k int, above func(i, j int) bool) []int32 {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	lim := k
	if len(a)+len(b) < lim {
		lim = len(a) + len(b)
	}
	out := make([]int32, 0, lim)
	i, j := 0, 0
	for len(out) < k && (i < len(a) || j < len(b)) {
		switch {
		case i >= len(a):
			out = append(out, b[j])
			j++
		case j >= len(b):
			out = append(out, a[i])
			i++
		case above(int(b[j]), int(a[i])):
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
		}
	}
	return out
}

// SortRows returns the permutation of [0, n) ordered by less, with equal
// rows keeping their original relative order (stable). Sorting is serial —
// a permutation has no chunk-local structure to exploit deterministically —
// so the result is trivially identical at every worker count.
func SortRows(n int, less func(i, j int) bool) []int32 {
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool { return less(int(idx[a]), int(idx[b])) })
	return idx
}
