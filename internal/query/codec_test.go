package query

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestTableCodecRoundTrip: encode → decode must reproduce the table
// bit-exactly (including NaN float bits), and a query plan over the
// decoded table must print byte-identically to the same plan over the
// original.
func TestTableCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := randomTable(rng, 200)
	tab.cols[0].F[3] = math.NaN()
	tab.cols[0].F[4] = math.Inf(-1)

	dec, err := DecodeTable(EncodeTable(tab))
	if err != nil {
		t.Fatal(err)
	}
	if dec.rows != tab.rows || len(dec.cols) != len(tab.cols) {
		t.Fatalf("shape: got %dx%d, want %dx%d", dec.rows, len(dec.cols), tab.rows, len(tab.cols))
	}
	for i, c := range tab.cols {
		d := dec.cols[i]
		if d.Name != c.Name || d.Kind != c.Kind {
			t.Fatalf("column %d: got %q/%d, want %q/%d", i, d.Name, d.Kind, c.Name, c.Kind)
		}
		switch c.Kind {
		case Float:
			for j := range c.F {
				if math.Float64bits(c.F[j]) != math.Float64bits(d.F[j]) {
					t.Fatalf("column %q row %d: float bits differ", c.Name, j)
				}
			}
		case Int:
			for j := range c.I {
				if c.I[j] != d.I[j] {
					t.Fatalf("column %q row %d: %d != %d", c.Name, j, d.I[j], c.I[j])
				}
			}
		case Str:
			for j := range c.S {
				if c.S[j] != d.S[j] {
					t.Fatalf("column %q row %d: %q != %q", c.Name, j, d.S[j], c.S[j])
				}
			}
		}
	}

	src := "filter w > 1000 | sort f desc | topk 20 by w"
	want := planOutput(t, tab, src)
	got := planOutput(t, dec, src)
	if want != got {
		t.Fatalf("plan output over decoded table differs:\n--- original\n%s\n--- decoded\n%s", want, got)
	}
}

func planOutput(t *testing.T, tab *Table, src string) string {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Run(tab, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, out); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestTableCodecEmpty covers the zero-row table: columns decode to
// non-nil empty slices so the shape check holds.
func TestTableCodecEmpty(t *testing.T) {
	tab := NewTable(0).AddFloat("f", nil).AddInt("i", nil).AddStr("s", nil)
	dec, err := DecodeTable(EncodeTable(tab))
	if err != nil {
		t.Fatal(err)
	}
	if dec.rows != 0 || len(dec.cols) != 3 {
		t.Fatalf("got %d rows, %d cols", dec.rows, len(dec.cols))
	}
}

// TestTableCodecRejectsMalformed fails closed on the corruption classes
// a stale or damaged sidecar can present.
func TestTableCodecRejectsMalformed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := randomTable(rng, 16)
	enc := EncodeTable(tab)

	cases := map[string][]byte{
		"empty":     {},
		"truncated": enc[:len(enc)/2],
		"trailing":  append(bytes.Clone(enc), 0xAB),
	}
	for name, data := range cases {
		if _, err := DecodeTable(data); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}

	// Unknown column kind.
	bad := bytes.Clone(enc)
	// Column kinds live right after each name; flip the first one by
	// locating the name "f" (encoded as uvarint len 1 + 'f') at offset 2.
	if bad[2] != 1 || bad[3] != 'f' {
		t.Fatalf("encoding layout changed; fix this test's offset math")
	}
	bad[5] = 9 // kind byte inside the 1-element U8s vector
	if _, err := DecodeTable(bad); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Errorf("unknown kind: got %v", err)
	}
}
