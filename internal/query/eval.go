package query

import "graingraph/internal/runpool"

// exprChunk is the fixed chunk size for the vectorized expression kernels.
// Chunk boundaries depend only on the row count — never the worker count —
// so evaluation is byte-identical at every parallelism level.
const exprChunk = 4096

// EvalBool evaluates e as a row predicate over t, filling out (which must
// be NumRows long) across the pool. A nil pool is the strict serial
// schedule; results are identical either way.
func (e *Expr) EvalBool(t *Table, pool *runpool.Runner, out []bool) error {
	isBool, _, err := e.root.check(t)
	if err != nil {
		return err
	}
	if !isBool {
		return errf(e.src, "expression is not a predicate (use a comparison)")
	}
	runpool.ParallelFor(pool, t.rows, exprChunk, func(_, lo, hi int) {
		e.root.evalBool(t, lo, hi, out[lo:hi])
	})
	return nil
}

// EvalNum evaluates e as a numeric row expression over t, filling out
// (NumRows long) across the pool.
func (e *Expr) EvalNum(t *Table, pool *runpool.Runner, out []float64) error {
	isBool, isStr, err := e.root.check(t)
	if err != nil {
		return err
	}
	if isBool || isStr {
		return errf(e.src, "expression is not numeric")
	}
	runpool.ParallelFor(pool, t.rows, exprChunk, func(_, lo, hi int) {
		e.root.evalNum(t, lo, hi, out[lo:hi])
	})
	return nil
}

// FilterRows returns the row indices of t satisfying e, in ascending row
// order: the predicate evaluates in fixed chunks across the pool, and the
// per-chunk matches assemble in chunk order, so the selection is identical
// at every worker count.
func FilterRows(t *Table, e *Expr, pool *runpool.Runner) ([]int32, error) {
	match := make([]bool, t.rows)
	if err := e.EvalBool(t, pool, match); err != nil {
		return nil, err
	}
	chunks := runpool.Chunks(t.rows, exprChunk)
	counts := make([]int, chunks)
	runpool.ParallelFor(pool, t.rows, exprChunk, func(c, lo, hi int) {
		n := 0
		for i := lo; i < hi; i++ {
			if match[i] {
				n++
			}
		}
		counts[c] = n
	})
	offsets := make([]int, chunks+1)
	for c, n := range counts {
		offsets[c+1] = offsets[c] + n
	}
	idx := make([]int32, offsets[chunks])
	runpool.ParallelFor(pool, t.rows, exprChunk, func(c, lo, hi int) {
		at := offsets[c]
		for i := lo; i < hi; i++ {
			if match[i] {
				idx[at] = int32(i)
				at++
			}
		}
	})
	return idx, nil
}
