package query

import (
	"fmt"

	"graingraph/internal/colenc"
)

// Sidecar codec for tables: the columnar .ggp v2 format persists the
// per-grain metric table after first analysis so a warm restart serves
// query plans without re-running the metric pass. Float columns are
// stored as raw float64 bits, so an encode/decode round trip is
// bit-exact and query output over a decoded table is byte-identical to
// output over the freshly built one.

// EncodeTable serializes a table's schema and columns.
func EncodeTable(t *Table) []byte {
	var e colenc.Buf
	e.Uvarint(uint64(t.rows))
	e.Uvarint(uint64(len(t.cols)))
	for _, c := range t.cols {
		e.Str(c.Name)
		e.U8s([]uint8{uint8(c.Kind)})
		switch c.Kind {
		case Float:
			e.F64s(c.F)
		case Int:
			e.I64sVar(c.I)
		default:
			e.Strs(c.S)
		}
	}
	return e.Bytes()
}

// DecodeTable reconstructs a table from an EncodeTable payload. Malformed
// input — unknown column kind, row-count mismatch, duplicate names,
// trailing bytes — yields an error, never a panic; the caller falls back
// to rebuilding the table.
func DecodeTable(data []byte) (*Table, error) {
	d := colenc.NewReader(data)
	rows, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	ncols, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if rows > uint64(1)<<31 || ncols > 4096 {
		return nil, fmt.Errorf("query: decode: implausible table shape %d x %d", rows, ncols)
	}
	t := NewTable(int(rows))
	for ci := uint64(0); ci < ncols; ci++ {
		name, err := d.Str()
		if err != nil {
			return nil, err
		}
		kindv, err := d.U8s()
		if err != nil {
			return nil, err
		}
		if len(kindv) != 1 {
			return nil, fmt.Errorf("query: decode: column %q has malformed kind", name)
		}
		if _, dup := t.byName[name]; dup {
			return nil, fmt.Errorf("query: decode: duplicate column %q", name)
		}
		c := &Column{Name: name, Kind: Kind(kindv[0])}
		switch c.Kind {
		case Float:
			if c.F, err = d.F64s(); err != nil {
				return nil, err
			}
			if c.F == nil {
				c.F = []float64{}
			}
		case Int:
			if c.I, err = d.I64sVar(); err != nil {
				return nil, err
			}
			if c.I == nil {
				c.I = []int64{}
			}
		case Str:
			if c.S, err = d.Strs(); err != nil {
				return nil, err
			}
			if c.S == nil {
				c.S = []string{}
			}
		default:
			return nil, fmt.Errorf("query: decode: column %q has unknown kind %d", name, kindv[0])
		}
		if c.len() != int(rows) {
			return nil, fmt.Errorf("query: decode: column %q has %d rows, table claims %d", name, c.len(), rows)
		}
		t.cols = append(t.cols, c)
		t.byName[name] = c
	}
	if !d.Done() {
		return nil, fmt.Errorf("query: decode: %d trailing bytes", d.Remaining())
	}
	return t, nil
}
