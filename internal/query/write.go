package query

import (
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"
)

// WriteTable renders t as an aligned console table: a header row of column
// names, one row per table row, and a row-count footer. Formatting is
// fixed and deterministic — floats use the shortest round-trip form — so
// the CLI and server can diff rendered bytes directly.
func WriteTable(w io.Writer, t *Table) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, c := range t.Columns() {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, c.Name)
	}
	fmt.Fprintln(tw)
	for r := 0; r < t.NumRows(); r++ {
		for i, c := range t.Columns() {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			switch c.Kind {
			case Float:
				fmt.Fprint(tw, strconv.FormatFloat(c.F[r], 'g', -1, 64))
			case Int:
				fmt.Fprint(tw, strconv.FormatInt(c.I[r], 10))
			default:
				fmt.Fprint(tw, c.S[r])
			}
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if t.NumRows() == 1 {
		_, err := fmt.Fprintln(w, "(1 row)")
		return err
	}
	_, err := fmt.Fprintf(w, "(%d rows)\n", t.NumRows())
	return err
}
