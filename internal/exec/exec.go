// Package exec is a native work-stealing task executor: the same tasking
// surface as the simulated runtime (Spawn/TaskWait with tied help-first
// joins, Chase-Lev deques per worker), but running real Go code on real
// goroutines and profiling with wall-clock time.
//
// It produces the same profile.Trace the simulator does, so grain graphs,
// metrics, and exports work unchanged — demonstrating the paper's claim
// that "the grain graph visualization works irrespective of the profiling
// method". Counters that need hardware support (cache misses, stalls) stay
// zero; time-based metrics (parallel benefit, load balance, instantaneous
// parallelism, critical path, scatter over workers) are fully populated,
// and work deviation works by re-running with Workers=1.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"graingraph/internal/ggp"
	"graingraph/internal/profile"
	"graingraph/internal/sched"
)

// Ctx is the native tasking API. It is intentionally the spawn/wait subset
// of the simulator's rts.Ctx: native code does real work instead of
// charging simulated cycles.
type Ctx interface {
	// Spawn creates a child task running body.
	Spawn(loc profile.SrcLoc, body func(Ctx))
	// TaskWait blocks until all children spawned so far finish; the worker
	// executes other tasks while waiting (help-first join).
	TaskWait()
	// Worker returns the executing worker's ID.
	Worker() int
	// Depth returns the task's spawn-tree depth.
	Depth() int
}

// Config configures a native run.
type Config struct {
	Program string
	Workers int // defaults to GOMAXPROCS
	// Profile, when non-nil, receives the finished run's records as a GGP
	// artifact stream once the pool drains. The caller owns the writer:
	// closing it seals the artifact and surfaces any emission error.
	Profile *ggp.Writer
}

// task is a native task instance.
type task struct {
	rec         *profile.TaskRecord
	body        func(Ctx)
	parent      *task
	outstanding atomic.Int64
}

// ctx is the per-execution context handed to a task body. It lives on the
// executing goroutine's stack frame; all mutation is single-goroutine.
type ctx struct {
	p           *pool
	w           *worker
	t           *task
	spawnSeq    int
	pendingJoin []profile.GrainID
	fragStart   uint64
}

// worker is one executor thread.
type worker struct {
	id    int
	deque *sched.ChaseLev
	rng   uint64
	busy  atomic.Uint64 // accumulated busy nanos
}

// pool is the executor.
type pool struct {
	cfg      Config
	start    time.Time
	workers  []*worker
	mu       sync.Mutex // guards records
	records  []*profile.TaskRecord
	live     atomic.Int64
	done     chan struct{}
	doneOnce sync.Once
}

func (p *pool) now() uint64 { return uint64(time.Since(p.start)) }

// Run executes program on a native work-stealing pool and returns its
// profiled trace.
func Run(cfg Config, program func(Ctx)) *profile.Trace {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Program == "" {
		cfg.Program = "native"
	}
	p := &pool{cfg: cfg, start: time.Now(), done: make(chan struct{})}
	for i := 0; i < cfg.Workers; i++ {
		p.workers = append(p.workers, &worker{
			id:    i,
			deque: sched.NewChaseLev(),
			rng:   uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
		})
	}

	root := &task{
		rec: &profile.TaskRecord{ID: profile.RootID, Loc: profile.Loc(cfg.Program+".go", 1, "main")},
	}
	root.body = func(c Ctx) {
		program(c)
		c.TaskWait()
	}
	p.addRecord(root.rec)
	p.live.Store(1)

	var wg sync.WaitGroup
	for _, w := range p.workers[1:] {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.workerLoop(w)
		}()
	}
	// Worker 0 runs the root, then joins the loop until everything ends.
	p.execute(p.workers[0], root)
	p.workerLoop(p.workers[0])
	wg.Wait()

	tr := &profile.Trace{
		Program:   cfg.Program,
		Cores:     cfg.Workers,
		Sockets:   1,
		Scheduler: "work-stealing(native)",
		Flavor:    "native",
		Start:     0,
		End:       p.now(),
	}
	p.mu.Lock()
	tr.Tasks = append(tr.Tasks, p.records...)
	p.mu.Unlock()
	for _, w := range p.workers {
		tr.Workers = append(tr.Workers, profile.WorkerStat{Busy: w.busy.Load()})
	}
	if cfg.Profile != nil {
		// Errors are sticky in the writer; the caller's Close surfaces them.
		_ = cfg.Profile.Emit(tr)
	}
	return tr
}

func (p *pool) addRecord(rec *profile.TaskRecord) {
	p.mu.Lock()
	p.records = append(p.records, rec)
	p.mu.Unlock()
}

// workerLoop pops/steals tasks until the pool drains.
func (p *pool) workerLoop(w *worker) {
	backoff := 0
	for {
		if p.live.Load() == 0 {
			p.doneOnce.Do(func() { close(p.done) })
			return
		}
		if t := p.find(w); t != nil {
			p.execute(w, t)
			backoff = 0
			continue
		}
		select {
		case <-p.done:
			return
		default:
		}
		backoff++
		if backoff > 64 {
			time.Sleep(10 * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
}

// find pops the worker's own deque, falling back to stealing.
func (p *pool) find(w *worker) *task {
	if v, ok := w.deque.PopBottom(); ok {
		return v.(*task)
	}
	n := len(p.workers)
	for i := 0; i < 2*n; i++ {
		w.rng = w.rng*6364136223846793005 + 1442695040888963407
		victim := p.workers[(w.rng>>33)%uint64(n)]
		if victim == w {
			continue
		}
		if v, ok := victim.deque.StealTop(); ok {
			return v.(*task)
		}
	}
	return nil
}

// execute runs t to completion on w (nested helps execute inline).
func (p *pool) execute(w *worker, t *task) {
	begin := p.now()
	t.rec.StartTime = begin
	c := &ctx{p: p, w: w, t: t, fragStart: begin}
	t.body(c)
	end := p.now()
	c.closeFragment(end)
	t.rec.EndTime = end
	w.busy.Add(t.rec.ExecTime())
	if t.parent != nil {
		t.parent.outstanding.Add(-1)
	}
	p.live.Add(-1)
}

// closeFragment records the current fragment ending at ts.
func (c *ctx) closeFragment(ts uint64) {
	c.t.rec.Fragments = append(c.t.rec.Fragments, profile.Fragment{
		Start: c.fragStart, End: ts, Core: c.w.id,
	})
	c.fragStart = ts
}

// Spawn implements Ctx.
func (c *ctx) Spawn(loc profile.SrcLoc, body func(Ctx)) {
	at := c.p.now()
	c.closeFragment(at)

	childID := profile.ChildID(c.t.rec.ID, c.spawnSeq)
	c.spawnSeq++
	c.pendingJoin = append(c.pendingJoin, childID)
	child := &task{
		rec: &profile.TaskRecord{
			ID: childID, Parent: c.t.rec.ID, Loc: loc,
			Depth: c.t.rec.Depth + 1, CreatedBy: c.w.id,
			CreateTime: at,
		},
		body:   body,
		parent: c.t,
	}
	c.t.outstanding.Add(1)
	c.p.live.Add(1)
	c.p.addRecord(child.rec)
	c.t.rec.Boundaries = append(c.t.rec.Boundaries, profile.Boundary{
		Kind: profile.BoundaryFork, At: at, Child: childID,
	})
	created := c.p.now()
	// Finish all writes to the child's record before publishing it: a thief
	// may start executing the instant it lands in the deque.
	child.rec.CreateCost = created - at
	c.w.deque.PushBottom(child)
	c.fragStart = created
}

// TaskWait implements Ctx: help-first blocking join — the worker executes
// other tasks (typically this task's own children) until the outstanding
// count drains.
func (c *ctx) TaskWait() {
	if len(c.pendingJoin) == 0 && c.t.outstanding.Load() == 0 {
		return
	}
	at := c.p.now()
	c.closeFragment(at)
	joined := c.pendingJoin
	c.pendingJoin = nil

	var helped uint64
	for c.t.outstanding.Load() > 0 {
		if t := c.p.find(c.w); t != nil {
			h0 := c.p.now()
			c.p.execute(c.w, t)
			helped += c.p.now() - h0
			continue
		}
		runtime.Gosched()
	}
	resumed := c.p.now()
	suspended := resumed - at
	wait := suspended - helped
	c.t.rec.Boundaries = append(c.t.rec.Boundaries, profile.Boundary{
		Kind: profile.BoundaryJoin, At: at, Joined: joined,
		Wait: wait, Suspended: suspended,
	})
	c.fragStart = resumed
}

// Worker implements Ctx.
func (c *ctx) Worker() int { return c.w.id }

// Depth implements Ctx.
func (c *ctx) Depth() int { return c.t.rec.Depth }

// ParallelFor is a convenience built on tasks: it splits [lo,hi) into
// roughly chunk-sized tasks and waits for them — the native stand-in for
// the simulator's loop support.
func ParallelFor(c Ctx, loc profile.SrcLoc, lo, hi, chunk int, body func(lo, hi int)) {
	if chunk <= 0 {
		chunk = 1
	}
	for s := lo; s < hi; s += chunk {
		e := s + chunk
		if e > hi {
			e = hi
		}
		s, e := s, e
		c.Spawn(loc, func(Ctx) { body(s, e) })
	}
	c.TaskWait()
}
