package exec

import (
	"runtime"
	"sync/atomic"
	"testing"

	"graingraph/internal/core"
	"graingraph/internal/metrics"
	"graingraph/internal/profile"
)

func loc(line int, fn string) profile.SrcLoc { return profile.Loc("t.go", line, fn) }

func TestSingleTask(t *testing.T) {
	ran := false
	tr := Run(Config{Program: "one", Workers: 2}, func(c Ctx) { ran = true })
	if !ran {
		t.Fatal("program did not run")
	}
	if len(tr.Tasks) != 1 {
		t.Fatalf("tasks = %d, want 1", len(tr.Tasks))
	}
	if tr.Makespan() == 0 {
		t.Error("zero makespan")
	}
}

func TestForkJoinComputesCorrectly(t *testing.T) {
	var fib func(c Ctx, n int) uint64
	fib = func(c Ctx, n int) uint64 {
		if n < 2 {
			return uint64(n)
		}
		if n < 10 {
			return serialFib(n)
		}
		var a, b uint64
		c.Spawn(loc(1, "fib"), func(c Ctx) { a = fib(c, n-1) })
		c.Spawn(loc(2, "fib"), func(c Ctx) { b = fib(c, n-2) })
		c.TaskWait()
		return a + b
	}
	var result uint64
	tr := Run(Config{Workers: 4}, func(c Ctx) { result = fib(c, 20) })
	if result != 6765 {
		t.Fatalf("fib(20) = %d, want 6765", result)
	}
	if len(tr.Tasks) < 10 {
		t.Errorf("tasks = %d, want a real tree", len(tr.Tasks))
	}
}

func serialFib(n int) uint64 {
	if n < 2 {
		return uint64(n)
	}
	return serialFib(n-1) + serialFib(n-2)
}

func TestAllTasksExecuteExactlyOnce(t *testing.T) {
	const n = 500
	var count atomic.Int64
	Run(Config{Workers: 8}, func(c Ctx) {
		for i := 0; i < n; i++ {
			c.Spawn(loc(1, "w"), func(c Ctx) {
				count.Add(1)
			})
		}
		c.TaskWait()
	})
	if got := count.Load(); got != n {
		t.Fatalf("executed %d tasks, want %d", got, n)
	}
}

func TestNestedWaits(t *testing.T) {
	var total atomic.Int64
	tr := Run(Config{Workers: 4}, func(c Ctx) {
		var rec func(c Ctx, d int)
		rec = func(c Ctx, d int) {
			total.Add(1)
			if d == 0 {
				return
			}
			for i := 0; i < 3; i++ {
				c.Spawn(loc(1, "n"), func(c Ctx) { rec(c, d-1) })
			}
			c.TaskWait()
			total.Add(1)
		}
		rec(c, 4)
	})
	// Nodes: 1+3+9+27+81 = 121; internal nodes count twice: +40.
	if got := total.Load(); got != 121+40 {
		t.Fatalf("total = %d, want 161", got)
	}
	checkStructure(t, tr)
}

func checkStructure(t *testing.T, tr *profile.Trace) {
	t.Helper()
	ids := map[profile.GrainID]bool{}
	for _, task := range tr.Tasks {
		if ids[task.ID] {
			t.Errorf("duplicate grain ID %s", task.ID)
		}
		ids[task.ID] = true
		if len(task.Fragments) != len(task.Boundaries)+1 {
			t.Errorf("task %s: %d fragments vs %d boundaries",
				task.ID, len(task.Fragments), len(task.Boundaries))
		}
		if task.EndTime < task.StartTime {
			t.Errorf("task %s: negative duration", task.ID)
		}
	}
	// Every non-root task's parent exists.
	for _, task := range tr.Tasks {
		if task.ID != profile.RootID && !ids[task.Parent] {
			t.Errorf("task %s has unknown parent %s", task.ID, task.Parent)
		}
	}
}

func TestGrainGraphFromNativeTrace(t *testing.T) {
	tr := Run(Config{Workers: 4}, func(c Ctx) {
		for i := 0; i < 8; i++ {
			c.Spawn(loc(1, "w"), func(c Ctx) {
				busyWork(2000)
			})
		}
		c.TaskWait()
	})
	g := core.Build(tr)
	if err := g.Validate(); err != nil {
		t.Fatalf("native trace produced invalid grain graph: %v", err)
	}
	rep := metrics.Analyze(tr, g, nil, metrics.Options{})
	if rep.CriticalPathLength == 0 {
		t.Error("no critical path")
	}
	if len(rep.Grains) != 9 {
		t.Errorf("grains = %d, want 9", len(rep.Grains))
	}
}

func TestWorkDeviationAcrossWorkerCounts(t *testing.T) {
	prog := func(c Ctx) {
		for i := 0; i < 16; i++ {
			c.Spawn(loc(1, "w"), func(c Ctx) { busyWork(20000) })
		}
		c.TaskWait()
	}
	base := Run(Config{Workers: 1}, prog)
	par := Run(Config{Workers: 4}, prog)
	rep := metrics.Analyze(par, nil, base, metrics.Options{})
	matched := 0
	for _, gm := range rep.Grains {
		if gm.WorkDeviation > 0 {
			matched++
		}
	}
	if matched < 16 {
		t.Errorf("work deviation matched %d grains, want >= 16", matched)
	}
}

func TestParallelForCoversRange(t *testing.T) {
	var hits [100]atomic.Int32
	Run(Config{Workers: 4}, func(c Ctx) {
		ParallelFor(c, loc(1, "loop"), 0, 100, 7, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
	})
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("iteration %d executed %d times", i, hits[i].Load())
		}
	}
}

func TestUsesMultipleWorkers(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >= 2 OS-schedulable processors for stealing to engage")
	}
	tr := Run(Config{Workers: 4}, func(c Ctx) {
		for i := 0; i < 32; i++ {
			c.Spawn(loc(1, "w"), func(c Ctx) { busyWork(100000) })
		}
		c.TaskWait()
	})
	cores := map[int]bool{}
	for _, task := range tr.Tasks {
		if task.ID != profile.RootID && len(task.Fragments) > 0 {
			cores[task.Fragments[0].Core] = true
		}
	}
	if len(cores) < 2 {
		t.Errorf("all tasks ran on one worker; stealing broken?")
	}
}

// busyWork spins for roughly n iterations of real work.
//
//go:noinline
func busyWork(n int) uint64 {
	var acc uint64 = 1
	for i := 0; i < n; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	return acc
}
