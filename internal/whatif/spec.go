package whatif

import (
	"fmt"
	"strconv"
	"strings"

	"graingraph/internal/profile"
)

// ParseSpecs parses a comma-separated list of what-if hypothesis specs, the
// grammar behind the -whatif command-line flags:
//
//	scale:<grain>:<factor>          scale one grain's execution weight
//	scale-subtree:<grain>:<factor>  scale a whole spawn subtree
//	collapse:<grain>                perfect cutoff: subtree runs inline
//	cutoff:<depth>                  perfect cutoff at a spawn-tree depth
//	deinflate:<grain>               remove one grain's measured inflation
//	deinflate:all                   remove every grain's measured inflation
//	infcores                        infinite cores (critical-path bound)
//	rank                            auto-generate and rank candidates
//
// "rank" is handled by the callers (it selects the ranking pass rather than
// a single hypothesis) and is rejected here.
func ParseSpecs(s string) ([]Hypothesis, error) {
	var hs []Hypothesis
	for _, raw := range strings.Split(s, ",") {
		spec := strings.TrimSpace(raw)
		if spec == "" {
			continue
		}
		h, err := parseSpec(spec)
		if err != nil {
			return nil, err
		}
		hs = append(hs, h)
	}
	if len(hs) == 0 {
		return nil, fmt.Errorf("whatif: empty hypothesis spec")
	}
	return hs, nil
}

func parseSpec(spec string) (Hypothesis, error) {
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "scale", "scale-subtree":
		if len(parts) != 3 {
			return nil, fmt.Errorf("whatif: %q: want %s:<grain>:<factor>", spec, parts[0])
		}
		f, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || f < 0 || f > MaxScaleFactor || f != f {
			return nil, fmt.Errorf("whatif: %q: bad factor %q (want 0..%g)", spec, parts[2], MaxScaleFactor)
		}
		return ScaleGrain{
			Grain:   profile.GrainID(parts[1]),
			Factor:  f,
			Subtree: parts[0] == "scale-subtree",
		}, nil
	case "collapse":
		if len(parts) != 2 || parts[1] == "" {
			return nil, fmt.Errorf("whatif: %q: want collapse:<grain>", spec)
		}
		return CollapseSubtree{Root: profile.GrainID(parts[1])}, nil
	case "cutoff":
		if len(parts) != 2 {
			return nil, fmt.Errorf("whatif: %q: want cutoff:<depth>", spec)
		}
		d, err := strconv.Atoi(parts[1])
		if err != nil || d < 0 {
			return nil, fmt.Errorf("whatif: %q: bad depth %q", spec, parts[1])
		}
		return CollapseAtDepth{Depth: d}, nil
	case "deinflate":
		if len(parts) != 2 || parts[1] == "" {
			return nil, fmt.Errorf("whatif: %q: want deinflate:<grain|all>", spec)
		}
		if parts[1] == "all" {
			return ZeroInflation{All: true}, nil
		}
		return ZeroInflation{Grain: profile.GrainID(parts[1])}, nil
	case "infcores":
		if len(parts) != 1 {
			return nil, fmt.Errorf("whatif: %q: infcores takes no arguments", spec)
		}
		return InfiniteCores{}, nil
	default:
		return nil, fmt.Errorf("whatif: unknown hypothesis %q (want scale, scale-subtree, collapse, cutoff, deinflate, infcores)", spec)
	}
}
