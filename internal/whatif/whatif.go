// Package whatif is a causal-profiling layer over the grain graph: it
// applies hypothetical transformations to a recorded run — scale a grain's
// (or subtree's) work, collapse a broken-cutoff subtree into its parent,
// remove measured work inflation, lift the core count to infinity — and
// recomputes critical path, average parallelism and projected makespan
// *without re-running the simulation*, in the spirit of TASKPROF's what-if
// analyses. The paper's workflow (diagnose → fix → re-profile, §5) tells
// the programmer where to act; this layer estimates how much each candidate
// fix would pay, so it answers "fix this first".
//
// Evaluation is incremental: a hypothesis edits a sparse overlay over the
// baseline weight vector instead of copying it, projected work is tracked
// as BaseWork + Δ, and the projected span is recomputed by a delta-aware
// critical-path DP (metrics.CriticalPathDelta) that relaxes only the edited
// nodes' downstream cone against the baseline distances. Hypotheses whose
// edit set or dirty cone covers too much of the graph spill to a dense
// vector and take the exact full DP — the same path EvalFull always takes,
// kept as the bit-exact oracle the sparse path is tested against.
//
// Soundness: weight transformations (ScaleGrain, ZeroInflation) are exact
// with respect to the model — the graph's structure is unchanged, so the
// recomputed critical path is the true critical path of the transformed
// DAG, and the makespan projection only assumes the removed work was spread
// evenly across cores. Structural transformations (CollapseSubtree,
// CollapseAtDepth) are approximate: serializing a subtree into its root
// changes scheduling in ways a fixed DAG cannot fully capture, so their
// projections carry Approximate=true. See DESIGN.md §7 and §11.
package whatif

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"graingraph/internal/core"
	"graingraph/internal/metrics"
	"graingraph/internal/obs"
	"graingraph/internal/profile"
	"graingraph/internal/runpool"
)

// Hypothesis is one hypothetical transformation of a recorded grain graph.
type Hypothesis interface {
	// Label names the hypothesis for tables and annotations. Labels are
	// unique per generated candidate set and serve as deterministic
	// tie-breakers.
	Label() string
	// Approximate reports whether the projection changes graph structure
	// (serialization) rather than applying sound weight algebra.
	Approximate() bool
	// apply writes the hypothesis's weight edits into the overlay and
	// reports whether the hypothesis models an unbounded core count.
	apply(e *Engine, w *weightOverlay) (infiniteCores bool)
}

// Projection is the outcome of evaluating one hypothesis.
type Projection struct {
	Label       string
	Approximate bool

	// Projected quantities: total work (sum of node weights), critical
	// path length, and makespan under the transformation.
	Work, Span, Makespan profile.Time

	// Baseline quantities for reference.
	BaseWork, BaseSpan, BaseMakespan profile.Time

	// Speedup is BaseMakespan / Makespan; above 1 the hypothesis pays.
	Speedup float64
	// AvgParallelism is projected work over projected makespan.
	AvgParallelism float64
}

// WorkDelta returns the fraction of baseline work the hypothesis removes
// (negative when it adds work).
func (p Projection) WorkDelta() float64 {
	if p.BaseWork == 0 {
		return 0
	}
	return (float64(p.BaseWork) - float64(p.Work)) / float64(p.BaseWork)
}

// Sparse-evaluation thresholds. Below spillMinEdits the overlay never
// spills and the delta DP never declines, so small graphs (every unit test)
// take the sparse path unconditionally — the oracle tests pin it to the
// full DP bit for bit. On large graphs a hypothesis editing more than
// 1/spillFraction of the nodes materializes a dense vector up front (map
// overhead would dwarf the DP), and a sparse evaluation whose dirty cone
// exceeds 1/dirtyFraction of the nodes abandons the delta DP for the exact
// full relaxation.
const (
	spillMinEdits = 4096
	spillFraction = 16
	dirtyFraction = 128
)

// EvalStats counts how evaluations were satisfied since engine creation.
type EvalStats struct {
	// Sparse evaluations completed on the delta DP alone.
	Sparse uint64
	// Full evaluations that ran the dense full DP (EvalFull calls plus
	// sparse fallbacks).
	Full uint64
	// Fallback counts the subset of Full where Eval started sparse but the
	// edit set spilled or the dirty cone exceeded the fallback fraction.
	Fallback uint64
}

// Engine evaluates hypotheses against one recorded run. Construction
// precomputes the baseline — work, the critical-path DP state reused by
// every sparse evaluation, the loop-owner map and the deepest task depth —
// and forces the graph's adjacency and level indexes, so Eval is safe to
// call concurrently from EvalAll's worker pool: every evaluation works on
// its own sparse overlay and only reads the shared baseline.
type Engine struct {
	G   *core.Graph
	Rep *metrics.Report // optional; required for inflation hypotheses

	Cores        int
	BaseMakespan profile.Time
	BaseWork     profile.Time
	BaseSpan     profile.Time

	// Obs, when set, receives child spans for every evaluation
	// ("whatif:eval", with "whatif:eval:fulldp" nested under full-DP
	// evaluations), feeding the -phases/-benchjson accounting. May be nil.
	Obs *obs.Span

	// baseW is the immutable baseline weight vector shared by all
	// evaluations; cpBase is the settled critical-path DP over it.
	baseW  []profile.Time
	cpBase *metrics.CPBaseline

	// loopOwner maps each loop to the task that executed it, resolved from
	// the graph's book-keeping nodes (chunk nodes carry chunk grain IDs, so
	// subtree membership for chunks goes through their loop's owner).
	loopOwner map[profile.LoopID]profile.GrainID

	// deviation holds each grain's measured work deviation above 1, pulled
	// from the report once — inflation hypotheses used to rebuild this map
	// on every evaluation, which dominated their cost on million-grain
	// reports.
	deviation map[profile.GrainID]float64

	// maxTaskDepth is the deepest spawn-tree depth among task grains,
	// computed once here so Candidates does not re-scan the node table per
	// Rank call.
	maxTaskDepth int

	// Interned owner-task table: collapse hypotheses touch every node, so
	// their per-node owner resolution must be array reads, not string or
	// map work. ownerOf maps each node to the slot of its owning task
	// (chunks resolve through loopOwner); per slot, the table records the
	// task's grain ID, spawn-tree depth (-1 for non-task owners), parent
	// task slot (-1 at the root; the closure interns ancestors that own no
	// nodes themselves) and entry fragment (-1 when the task has none).
	ownerOf     []int32
	ownerIDs    []profile.GrainID
	ownerDepth  []int32
	ownerParent []int32
	ownerEntry  []int32

	// Scratch pools for the two node-sized per-evaluation buffers (the
	// spilled dense weight vector and the collapse moved-work accumulator).
	// A ranking pass runs ~20 dense evaluations back to back; without
	// reuse each one allocates tens of MB that the collector has to chase.
	densePool sync.Pool
	movedPool sync.Pool

	sparseEvals, fullEvals, fallbackEvals atomic.Uint64
}

// getDense returns a node-sized weight buffer with arbitrary contents
// (spill overwrites every element); putDense recycles it.
func (e *Engine) getDense() []profile.Time {
	if b, ok := e.densePool.Get().(*[]profile.Time); ok && len(*b) == e.G.NumNodes() {
		return *b
	}
	return make([]profile.Time, e.G.NumNodes())
}

func (e *Engine) putDense(b []profile.Time) {
	if len(b) == e.G.NumNodes() {
		e.densePool.Put(&b)
	}
}

// getMoved returns a zeroed node-sized accumulator; putMoved recycles it
// (clearing on get keeps the put path free even on error exits).
func (e *Engine) getMoved() []int64 {
	if b, ok := e.movedPool.Get().(*[]int64); ok && len(*b) == e.G.NumNodes() {
		m := *b
		for i := range m {
			m[i] = 0
		}
		return m
	}
	return make([]int64, e.G.NumNodes())
}

func (e *Engine) putMoved(b []int64) {
	if len(b) == e.G.NumNodes() {
		e.movedPool.Put(&b)
	}
}

// New builds an engine over a grain graph and its (optional) metric report.
// The graph's trace supplies core count and observed makespan; hand-built
// graphs without timing fall back to the work/span bound.
func New(g *core.Graph, rep *metrics.Report) *Engine {
	e := &Engine{G: g, Rep: rep, Cores: 1}
	if g.Trace != nil {
		if g.Trace.Cores > 0 {
			e.Cores = g.Trace.Cores
		}
		e.BaseMakespan = g.Trace.Makespan()
	}
	if g.NumNodes() > 0 {
		// Force every lazy index evaluation touches (out/in adjacency and
		// the topological level index used by the critical-path DPs) before
		// EvalAll fans evaluations across the pool: building them is not
		// goroutine-safe, reading them is.
		g.Out(0)
		g.In(0)
		g.NumLevels()
	}
	// One DP run settles the baseline distances every sparse evaluation
	// relaxes against; its weight copy doubles as the shared baseline
	// vector.
	e.cpBase = metrics.NewCPBaseline(g, nil, nil)
	e.baseW = e.cpBase.Weights()
	for _, w := range e.baseW {
		e.BaseWork += w
	}
	e.BaseSpan = e.cpBase.Span()
	if e.BaseMakespan == 0 {
		// No recorded timing (synthetic graph): Brent's bound as baseline.
		e.BaseMakespan = e.BaseSpan
		if perCore := e.BaseWork / profile.Time(e.Cores); perCore > e.BaseMakespan {
			e.BaseMakespan = perCore
		}
	}
	e.loopOwner = make(map[profile.LoopID]profile.GrainID)
	for n := core.NodeID(0); n < core.NodeID(g.NumNodes()); n++ {
		if g.Kind(n) == core.NodeBookkeep {
			e.loopOwner[g.Loop(n)] = g.Grain(n)
		}
	}
	if rep != nil {
		e.deviation = make(map[profile.GrainID]float64)
		for _, gm := range rep.Grains {
			if gm.WorkDeviation > 1 {
				e.deviation[gm.Grain.ID] = gm.WorkDeviation
			}
		}
	}
	e.internOwners()
	// The deepest populated spawn depth falls out of the slot table — owner
	// depths cover every task grain (chunk grains are not tasks and never
	// carry a depth).
	for _, d := range e.ownerDepth {
		if int(d) > e.maxTaskDepth {
			e.maxTaskDepth = int(d)
		}
	}
	return e
}

// internOwners builds the owner-task slot table. Two passes: assign every
// node its owner slot (a run cache skips the map for consecutive nodes of
// one task, the common layout), then close the table over parents — the
// slice grows while the loop walks it, interning spawn-tree ancestors that
// own no nodes — and resolve each slot's entry fragment: the grain's
// FirstNode when recorded, else its first fragment in node order (the same
// resolution entryNode falls back to).
func (e *Engine) internOwners() {
	g := e.G
	numNodes := core.NodeID(g.NumNodes())
	slots := make(map[profile.GrainID]int32)
	intern := func(id profile.GrainID) int32 {
		if si, ok := slots[id]; ok {
			return si
		}
		si := int32(len(e.ownerIDs))
		slots[id] = si
		e.ownerIDs = append(e.ownerIDs, id)
		d := int32(-1)
		if td, ok := taskDepth(id); ok {
			d = int32(td)
		}
		e.ownerDepth = append(e.ownerDepth, d)
		e.ownerEntry = append(e.ownerEntry, -1)
		return si
	}

	e.ownerOf = make([]int32, numNodes)
	var lastOwner profile.GrainID
	lastSlot := int32(-1)
	for n := core.NodeID(0); n < numNodes; n++ {
		owner := g.Grain(n)
		if g.Kind(n) == core.NodeChunk {
			owner = e.loopOwner[g.Loop(n)]
		}
		if lastSlot < 0 || owner != lastOwner {
			lastOwner, lastSlot = owner, intern(owner)
		}
		e.ownerOf[n] = lastSlot
	}

	for si := int32(0); si < int32(len(e.ownerIDs)); si++ {
		p := int32(-1)
		if d := e.ownerDepth[si]; d > 0 {
			p = intern(ancestorAt(e.ownerIDs[si], int(d)-1))
		}
		e.ownerParent = append(e.ownerParent, p)
	}

	for n := core.NodeID(0); n < numNodes; n++ {
		if g.Kind(n) != core.NodeFragment {
			continue
		}
		if si := e.ownerOf[n]; e.ownerEntry[si] < 0 {
			e.ownerEntry[si] = int32(n)
		}
	}
	for si, id := range e.ownerIDs {
		if n, ok := g.FirstNode[id]; ok {
			e.ownerEntry[si] = int32(n)
		}
	}
}

// Stats reports how many evaluations ran sparse versus full since the
// engine was built. Safe to call concurrently with evaluations.
func (e *Engine) Stats() EvalStats {
	return EvalStats{
		Sparse:   e.sparseEvals.Load(),
		Full:     e.fullEvals.Load(),
		Fallback: e.fallbackEvals.Load(),
	}
}

// weightOverlay collects a hypothesis's weight edits as a sparse map over
// the shared baseline vector, spilling to a private dense copy when the
// edit set grows past spillAt. workDelta tracks Σ(new − old) so projected
// work is BaseWork + Δ with no re-summation.
type weightOverlay struct {
	base    []profile.Time
	edits   map[core.NodeID]profile.Time
	dense   []profile.Time // non-nil once spilled: the full edited vector
	spillAt int
	delta   int64
	// alloc, when set, supplies the dense buffer on spill (pooled scratch
	// from the engine); nil allocates fresh.
	alloc func() []profile.Time
}

func newOverlay(base []profile.Time, spillAt int) *weightOverlay {
	return &weightOverlay{base: base, spillAt: spillAt}
}

// At returns node n's effective weight under the edits so far.
func (v *weightOverlay) At(n core.NodeID) profile.Time {
	if v.dense != nil {
		return v.dense[n]
	}
	if w, ok := v.edits[n]; ok {
		return w
	}
	return v.base[n]
}

// Set records node n's new weight. No-op writes (new value == effective
// current value) are dropped so zeroing an already-zero overhead node does
// not grow the edit set.
func (v *weightOverlay) Set(n core.NodeID, w profile.Time) {
	old := v.At(n)
	if w == old {
		return
	}
	v.delta += int64(w) - int64(old)
	if v.dense != nil {
		v.dense[n] = w
		return
	}
	if v.edits == nil {
		v.edits = make(map[core.NodeID]profile.Time)
	}
	v.edits[n] = w
	if len(v.edits) > v.spillAt {
		v.spill()
	}
}

// spill materializes the dense edited vector; subsequent edits write
// through directly.
func (v *weightOverlay) spill() {
	if v.dense != nil {
		return
	}
	if v.alloc != nil {
		v.dense = v.alloc()
	} else {
		v.dense = make([]profile.Time, len(v.base))
	}
	copy(v.dense, v.base)
	for n, w := range v.edits {
		v.dense[n] = w
	}
	v.edits = nil
}

// Eval projects one hypothesis incrementally: the hypothesis writes its
// edits into a sparse overlay, projected work is BaseWork + Δ, and the
// projected span comes from the delta-aware critical-path DP seeded at the
// edited nodes. When the edit set spills or the dirty cone exceeds the
// fallback fraction, the evaluation completes on the exact full DP instead
// — the result is identical either way (see the oracle tests), only the
// cost differs. The makespan model is unchanged: max(new span, observed
// makespan minus the removed work spread evenly over the cores); infinite-
// core hypotheses collapse to the span.
func (e *Engine) Eval(h Hypothesis) Projection {
	return e.eval(h, false)
}

// EvalFull is the oracle path: it materializes the full edited weight
// vector up front, recomputes work by summation and the span by the exact
// full critical-path DP — the evaluation strategy Eval had before sparse
// evaluation existed. The sparse path is tested against it bit for bit.
func (e *Engine) EvalFull(h Hypothesis) Projection {
	return e.eval(h, true)
}

func (e *Engine) eval(h Hypothesis, forceFull bool) Projection {
	sp := e.Obs.Child("whatif:eval")
	defer sp.End()

	n := e.G.NumNodes()
	spillAt := n / spillFraction
	if spillAt < spillMinEdits {
		spillAt = spillMinEdits
	}
	maxDirty := n / dirtyFraction
	if maxDirty < spillMinEdits {
		maxDirty = spillMinEdits
	}

	v := newOverlay(e.baseW, spillAt)
	v.alloc = e.getDense
	if forceFull {
		v.spill()
	}
	if dh, ok := h.(denseHint); ok && dh.likelyDense(e) {
		v.spill()
	}
	inf := h.apply(e, v)

	var work, span profile.Time
	sparse := false
	if v.dense == nil {
		if s, ok := metrics.CriticalPathDelta(e.cpBase, v.edits, maxDirty); ok {
			span = s
			sparse = true
		} else {
			v.spill()
		}
	}
	if sparse {
		work = profile.Time(int64(e.BaseWork) + v.delta)
		e.sparseEvals.Add(1)
	} else {
		fsp := sp.Child("whatif:eval:fulldp")
		if forceFull {
			// The oracle recomputes work by summation; the incremental
			// BaseWork + Δ accounting is one of the things it checks.
			for _, w := range v.dense {
				work += w
			}
		} else {
			work = profile.Time(int64(e.BaseWork) + v.delta)
		}
		dist := e.getDense()
		span = metrics.CriticalSpanOver(e.G, v.dense, dist, nil)
		e.putDense(dist)
		fsp.End()
		e.fullEvals.Add(1)
		if !forceFull {
			e.fallbackEvals.Add(1)
		}
	}
	if v.dense != nil {
		e.putDense(v.dense)
		v.dense = nil
	}

	cores := int64(e.Cores)
	if cores < 1 {
		cores = 1
	}
	proj := int64(e.BaseMakespan) - (int64(e.BaseWork)-int64(work))/cores
	if inf {
		proj = int64(span)
	}
	if proj < int64(span) {
		proj = int64(span)
	}
	if proj < 1 {
		proj = 1
	}

	p := Projection{
		Label:        h.Label(),
		Approximate:  h.Approximate(),
		Work:         work,
		Span:         span,
		Makespan:     profile.Time(proj),
		BaseWork:     e.BaseWork,
		BaseSpan:     e.BaseSpan,
		BaseMakespan: e.BaseMakespan,
	}
	p.Speedup = float64(e.BaseMakespan) / float64(p.Makespan)
	p.AvgParallelism = float64(work) / float64(p.Makespan)
	return p
}

// EvalAll evaluates independent hypotheses across the pool (nil or
// single-worker pools run serially) and returns projections in hypothesis
// order — never completion order — so output is deterministic at every
// parallelism level.
func (e *Engine) EvalAll(pool *runpool.Runner, hs []Hypothesis) []Projection {
	out, _ := runpool.Map(pool, len(hs), func(i int) (Projection, error) {
		return e.Eval(hs[i]), nil
	})
	return out
}

// taskDepth returns the spawn-tree depth encoded in a task grain's
// path-enumeration ID ("R" = 0, "R.3.1" = 2); ok is false for chunk grains.
func taskDepth(id profile.GrainID) (int, bool) {
	if id == profile.RootID {
		return 0, true
	}
	s := string(id)
	if !strings.HasPrefix(s, string(profile.RootID)+".") {
		return 0, false
	}
	return strings.Count(s, "."), true
}

// inSubtree reports whether task grain id lies in the spawn subtree rooted
// at root (inclusive).
func inSubtree(id, root profile.GrainID) bool {
	return id == root || strings.HasPrefix(string(id), string(root)+".")
}

// ancestorAt truncates a task grain ID to its spawn-tree ancestor at depth
// d ("R.a.b.c" at depth 1 → "R.a"). The result is a substring of id — no
// allocation — because path IDs place one dot per level: the ancestor at
// depth d ends where the (d+1)-th dot begins.
func ancestorAt(id profile.GrainID, d int) profile.GrainID {
	s := string(id)
	dots := 0
	for i := 0; i < len(s); i++ {
		if s[i] != '.' {
			continue
		}
		if dots == d {
			return profile.GrainID(s[:i])
		}
		dots++
	}
	return id
}

// entryNode returns the node that absorbs serialized work for a task grain:
// its first fragment.
func (e *Engine) entryNode(id profile.GrainID) (core.NodeID, bool) {
	if n, ok := e.G.FirstNode[id]; ok {
		return n, true
	}
	for n := core.NodeID(0); n < core.NodeID(e.G.NumNodes()); n++ {
		if e.G.Grain(n) == id && e.G.Kind(n) == core.NodeFragment {
			return n, true
		}
	}
	return 0, false
}

// ScaleGrain scales the execution weight of one grain — or its whole spawn
// subtree — by Factor, modelling "optimize this region by 1/Factor×"
// (TASKPROF's classic what-if). Overhead nodes are untouched.
type ScaleGrain struct {
	Grain   profile.GrainID
	Factor  float64
	Subtree bool
}

// Label implements Hypothesis.
func (h ScaleGrain) Label() string {
	if h.Subtree {
		return fmt.Sprintf("scale subtree %s x%.2f", h.Grain, h.Factor)
	}
	return fmt.Sprintf("scale %s x%.2f", h.Grain, h.Factor)
}

// Approximate implements Hypothesis: pure weight algebra is exact.
func (h ScaleGrain) Approximate() bool { return false }

func (h ScaleGrain) apply(e *Engine, v *weightOverlay) bool {
	g := e.G
	for n := core.NodeID(0); n < core.NodeID(g.NumNodes()); n++ {
		if k := g.Kind(n); k != core.NodeFragment && k != core.NodeChunk {
			continue
		}
		if id := g.Grain(n); id == h.Grain || (h.Subtree && inSubtree(id, h.Grain)) {
			v.Set(n, profile.Time(float64(v.At(n))*h.Factor+0.5))
		}
	}
	return false
}

// ZeroInflation removes the measured work-inflation component of one grain:
// its execution weight is divided by its work deviation (parallel exec time
// over single-core exec time), projecting the grain running at its 1-core
// speed — the separation of work inflation from parallelism loss that Acar
// et al. argue for. Requires a report computed against a baseline run;
// grains without a deviation above 1 are untouched.
type ZeroInflation struct {
	Grain profile.GrainID
	// All de-inflates every grain in the report instead of just Grain.
	All bool
}

// Label implements Hypothesis.
func (h ZeroInflation) Label() string {
	if h.All {
		return "de-inflate all grains"
	}
	return fmt.Sprintf("de-inflate %s", h.Grain)
}

// Approximate implements Hypothesis: deviation-scaled weights are exact
// with respect to the measured baseline.
func (h ZeroInflation) Approximate() bool { return false }

// likelyDense reports that whole-report de-inflation on a large graph edits
// most weighted nodes; single-grain de-inflation stays sparse.
func (h ZeroInflation) likelyDense(e *Engine) bool {
	return h.All && e.G.NumNodes() > 8*spillMinEdits
}

func (h ZeroInflation) apply(e *Engine, v *weightOverlay) bool {
	if e.Rep == nil {
		return false
	}
	g := e.G
	for n := core.NodeID(0); n < core.NodeID(g.NumNodes()); n++ {
		if k := g.Kind(n); k != core.NodeFragment && k != core.NodeChunk {
			continue
		}
		if !h.All && g.Grain(n) != h.Grain {
			continue
		}
		if wd, ok := e.deviation[g.Grain(n)]; ok {
			v.Set(n, profile.Time(float64(v.At(n))/wd+0.5))
		}
	}
	return false
}

// InfiniteCores lifts the core count to infinity: the projected makespan is
// the critical path itself — the upper bound on what any scheduling fix can
// achieve without reducing work or span.
type InfiniteCores struct{}

// Label implements Hypothesis.
func (InfiniteCores) Label() string { return "infinite cores (span bound)" }

// Approximate implements Hypothesis.
func (InfiniteCores) Approximate() bool { return false }

func (InfiniteCores) apply(e *Engine, v *weightOverlay) bool { return true }

// CollapseSubtree models a perfect cutoff at one task: the entire spawn
// subtree below Root executes inline in Root — all fork/join/book-keeping
// overhead inside the subtree disappears, and every descendant's execution
// weight is serialized into Root's first fragment. Loops executed by
// subtree tasks serialize too (their chunks' work moves to Root). The
// projection trades lost parallelism (longer span) against saved overhead
// (less work); for broken cutoffs spawning tiny grains the overhead wins.
type CollapseSubtree struct {
	Root profile.GrainID
}

// Label implements Hypothesis.
func (h CollapseSubtree) Label() string { return fmt.Sprintf("perfect cutoff at %s", h.Root) }

// Approximate implements Hypothesis: serialization changes structure.
func (h CollapseSubtree) Approximate() bool { return true }

func (h CollapseSubtree) apply(e *Engine, v *weightOverlay) bool {
	entry := int32(-1)
	if en, ok := e.entryNode(h.Root); ok {
		entry = int32(en)
	}
	rootDepth := int32(-1)
	if d, ok := taskDepth(h.Root); ok {
		rootDepth = int32(d)
	}
	rootEntry := newRootEntryCache(len(e.ownerIDs))
	collapseInto(e, v, rootDepth, func(si int32) int32 {
		if r := rootEntry[si]; r != entryUnresolved {
			return r
		}
		r := int32(-1)
		if entry >= 0 && inSubtree(e.ownerIDs[si], h.Root) {
			r = entry
		}
		rootEntry[si] = r
		return r
	})
	return false
}

// CollapseAtDepth models raising the task cutoff to spawn-tree depth Depth:
// every task at that depth absorbs its subtree serially, exactly as
// CollapseSubtree does per root. Depth 0 is the fully-serial hypothesis.
type CollapseAtDepth struct {
	Depth int
}

// Label implements Hypothesis.
func (h CollapseAtDepth) Label() string { return fmt.Sprintf("perfect cutoff at depth %d", h.Depth) }

// Approximate implements Hypothesis.
func (h CollapseAtDepth) Approximate() bool { return true }

func (h CollapseAtDepth) apply(e *Engine, v *weightOverlay) bool {
	d := int32(h.Depth)
	rootEntry := newRootEntryCache(len(e.ownerIDs))
	var resolve func(si int32) int32
	resolve = func(si int32) int32 {
		if r := rootEntry[si]; r != entryUnresolved {
			return r
		}
		r := int32(-1)
		switch dep := e.ownerDepth[si]; {
		case dep < d:
			// Above the cutoff, or not on a task path at all: untouched.
		case dep == d:
			r = e.ownerEntry[si]
		default:
			// Strict descendant: its root is its ancestor's root. The parent
			// closure guarantees the chain up to depth d exists.
			if p := e.ownerParent[si]; p >= 0 {
				r = resolve(p)
			}
		}
		rootEntry[si] = r
		return r
	}
	collapseInto(e, v, d, resolve)
	return false
}

// denseHint lets a hypothesis declare up front that its edit set will cover
// a large fraction of the graph, so evaluation materializes the dense
// vector immediately instead of churning the sparse map until it spills.
// Purely a cost hint: the dense path computes the exact full DP either way,
// so a wrong guess costs time, never correctness.
type denseHint interface {
	likelyDense(e *Engine) bool
}

// likelyDense reports that cutoff collapses on large graphs edit most of
// the node table: every candidate the ranking pass generates on the giant
// artifact spills regardless of depth, so skip the map phase entirely.
// Small graphs stay sparse, keeping the delta DP exercised by tests.
func (h CollapseAtDepth) likelyDense(e *Engine) bool {
	return e.G.NumNodes() > 8*spillMinEdits
}

// entryUnresolved marks a rootEntry cache slot whose collapse root has not
// been resolved yet; resolved slots hold the root's entry node or -1 for
// "leave this owner's nodes untouched" (outside every collapsed region, or
// the region's root has no entry fragment to absorb the work).
const entryUnresolved = int32(-2)

func newRootEntryCache(n int) []int32 {
	c := make([]int32, n)
	for i := range c {
		c[i] = entryUnresolved
	}
	return c
}

// collapseInto is the shared serialization machinery behind both collapse
// hypotheses: rootEntryOf resolves an owner-task slot to the entry fragment
// absorbing its collapsed region (-1: untouched). Within a region, fork/
// join/book-keeping weights vanish; fragment weights of strict descendants
// — recognized by depth, since inside a region only the root itself sits at
// rootDepth — and chunk weights of owned loops accumulate into the entry.
// Roots without an entry keep their subtree unmodified rather than dropping
// its work (rootEntryOf already returns -1 for them).
//
// One pass over the node table with nothing but array reads per node, plus
// a dense moved-work accumulator indexed by entry node: the overlay read of
// a node precedes its own write, so moved sums see baseline weights exactly
// as a one-shot vector edit would.
func collapseInto(e *Engine, v *weightOverlay, rootDepth int32, rootEntryOf func(si int32) int32) {
	g := e.G
	numNodes := core.NodeID(g.NumNodes())
	moved := e.getMoved()
	defer e.putMoved(moved)
	any := false
	for n := core.NodeID(0); n < numNodes; n++ {
		si := e.ownerOf[n]
		entry := rootEntryOf(si)
		if entry < 0 {
			continue
		}
		switch g.Kind(n) {
		case core.NodeFork, core.NodeJoin, core.NodeBookkeep:
			// Parallelization overhead inside the collapsed region vanishes.
			v.Set(n, 0)
		case core.NodeFragment:
			if e.ownerDepth[si] != rootDepth {
				moved[entry] += int64(v.At(n))
				v.Set(n, 0)
				any = true
			}
		case core.NodeChunk:
			moved[entry] += int64(v.At(n))
			v.Set(n, 0)
			any = true
		}
	}
	if !any {
		return
	}
	for n := core.NodeID(0); n < numNodes; n++ {
		if m := moved[n]; m != 0 {
			v.Set(n, v.At(n)+profile.Time(m))
		}
	}
}
