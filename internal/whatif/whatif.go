// Package whatif is a causal-profiling layer over the grain graph: it
// applies hypothetical transformations to a recorded run — scale a grain's
// (or subtree's) work, collapse a broken-cutoff subtree into its parent,
// remove measured work inflation, lift the core count to infinity — and
// recomputes critical path, average parallelism and projected makespan
// *without re-running the simulation*, in the spirit of TASKPROF's what-if
// analyses. The paper's workflow (diagnose → fix → re-profile, §5) tells
// the programmer where to act; this layer estimates how much each candidate
// fix would pay, so it answers "fix this first".
//
// Soundness: weight transformations (ScaleGrain, ZeroInflation) are exact
// with respect to the model — the graph's structure is unchanged, so the
// recomputed critical path is the true critical path of the transformed
// DAG, and the makespan projection only assumes the removed work was spread
// evenly across cores. Structural transformations (CollapseSubtree,
// CollapseAtDepth) are approximate: serializing a subtree into its root
// changes scheduling in ways a fixed DAG cannot fully capture, so their
// projections carry Approximate=true. See DESIGN.md §7.
package whatif

import (
	"fmt"
	"strings"

	"graingraph/internal/core"
	"graingraph/internal/metrics"
	"graingraph/internal/profile"
	"graingraph/internal/runpool"
)

// Hypothesis is one hypothetical transformation of a recorded grain graph.
type Hypothesis interface {
	// Label names the hypothesis for tables and annotations. Labels are
	// unique per generated candidate set and serve as deterministic
	// tie-breakers.
	Label() string
	// Approximate reports whether the projection changes graph structure
	// (serialization) rather than applying sound weight algebra.
	Approximate() bool
	// apply mutates the weight vector in place and reports whether the
	// hypothesis models an unbounded core count.
	apply(e *Engine, w []profile.Time) (infiniteCores bool)
}

// Projection is the outcome of evaluating one hypothesis.
type Projection struct {
	Label       string
	Approximate bool

	// Projected quantities: total work (sum of node weights), critical
	// path length, and makespan under the transformation.
	Work, Span, Makespan profile.Time

	// Baseline quantities for reference.
	BaseWork, BaseSpan, BaseMakespan profile.Time

	// Speedup is BaseMakespan / Makespan; above 1 the hypothesis pays.
	Speedup float64
	// AvgParallelism is projected work over projected makespan.
	AvgParallelism float64
}

// WorkDelta returns the fraction of baseline work the hypothesis removes
// (negative when it adds work).
func (p Projection) WorkDelta() float64 {
	if p.BaseWork == 0 {
		return 0
	}
	return (float64(p.BaseWork) - float64(p.Work)) / float64(p.BaseWork)
}

// Engine evaluates hypotheses against one recorded run. Construction
// precomputes the baseline and forces the graph's adjacency index, so Eval
// is safe to call concurrently from EvalAll's worker pool: every evaluation
// works on its own weight vector and only reads the shared graph.
type Engine struct {
	G   *core.Graph
	Rep *metrics.Report // optional; required for inflation hypotheses

	Cores        int
	BaseMakespan profile.Time
	BaseWork     profile.Time
	BaseSpan     profile.Time

	// loopOwner maps each loop to the task that executed it, resolved from
	// the graph's book-keeping nodes (chunk nodes carry chunk grain IDs, so
	// subtree membership for chunks goes through their loop's owner).
	loopOwner map[profile.LoopID]profile.GrainID
}

// New builds an engine over a grain graph and its (optional) metric report.
// The graph's trace supplies core count and observed makespan; hand-built
// graphs without timing fall back to the work/span bound.
func New(g *core.Graph, rep *metrics.Report) *Engine {
	e := &Engine{G: g, Rep: rep, Cores: 1}
	if g.Trace != nil {
		if g.Trace.Cores > 0 {
			e.Cores = g.Trace.Cores
		}
		e.BaseMakespan = g.Trace.Makespan()
	}
	if g.NumNodes() > 0 {
		// Force every lazy index Eval touches (out/in adjacency and the
		// topological level index used by the critical-path DP) before
		// EvalAll fans evaluations across the pool: building them is not
		// goroutine-safe, reading them is.
		g.Out(0)
		g.In(0)
		g.NumLevels()
	}
	for _, w := range g.Weights() {
		e.BaseWork += w
	}
	e.BaseSpan, _ = metrics.CriticalPathOver(g, nil)
	if e.BaseMakespan == 0 {
		// No recorded timing (synthetic graph): Brent's bound as baseline.
		e.BaseMakespan = e.BaseSpan
		if perCore := e.BaseWork / profile.Time(e.Cores); perCore > e.BaseMakespan {
			e.BaseMakespan = perCore
		}
	}
	e.loopOwner = make(map[profile.LoopID]profile.GrainID)
	for n := core.NodeID(0); n < core.NodeID(g.NumNodes()); n++ {
		if g.Kind(n) == core.NodeBookkeep {
			e.loopOwner[g.Loop(n)] = g.Grain(n)
		}
	}
	return e
}

// Eval projects one hypothesis: copy the weight vector, apply the
// transformation, recompute work and critical path, and model the makespan
// as max(new span, observed makespan minus the removed work spread evenly
// over the cores). Infinite-core hypotheses collapse to the span.
func (e *Engine) Eval(h Hypothesis) Projection {
	w := e.G.Weights()
	inf := h.apply(e, w)

	var work profile.Time
	for _, v := range w {
		work += v
	}
	span, _ := metrics.CriticalPathOver(e.G, w)

	cores := int64(e.Cores)
	if cores < 1 {
		cores = 1
	}
	proj := int64(e.BaseMakespan) - (int64(e.BaseWork)-int64(work))/cores
	if inf {
		proj = int64(span)
	}
	if proj < int64(span) {
		proj = int64(span)
	}
	if proj < 1 {
		proj = 1
	}

	p := Projection{
		Label:        h.Label(),
		Approximate:  h.Approximate(),
		Work:         work,
		Span:         span,
		Makespan:     profile.Time(proj),
		BaseWork:     e.BaseWork,
		BaseSpan:     e.BaseSpan,
		BaseMakespan: e.BaseMakespan,
	}
	p.Speedup = float64(e.BaseMakespan) / float64(p.Makespan)
	p.AvgParallelism = float64(work) / float64(p.Makespan)
	return p
}

// EvalAll evaluates independent hypotheses across the pool (nil or
// single-worker pools run serially) and returns projections in hypothesis
// order — never completion order — so output is deterministic at every
// parallelism level.
func (e *Engine) EvalAll(pool *runpool.Runner, hs []Hypothesis) []Projection {
	out, _ := runpool.Map(pool, len(hs), func(i int) (Projection, error) {
		return e.Eval(hs[i]), nil
	})
	return out
}

// taskDepth returns the spawn-tree depth encoded in a task grain's
// path-enumeration ID ("R" = 0, "R.3.1" = 2); ok is false for chunk grains.
func taskDepth(id profile.GrainID) (int, bool) {
	if id == profile.RootID {
		return 0, true
	}
	s := string(id)
	if !strings.HasPrefix(s, string(profile.RootID)+".") {
		return 0, false
	}
	return strings.Count(s, "."), true
}

// inSubtree reports whether task grain id lies in the spawn subtree rooted
// at root (inclusive).
func inSubtree(id, root profile.GrainID) bool {
	return id == root || strings.HasPrefix(string(id), string(root)+".")
}

// ancestorAt truncates a task grain ID to its spawn-tree ancestor at depth
// d ("R.a.b.c" at depth 1 → "R.a").
func ancestorAt(id profile.GrainID, d int) profile.GrainID {
	parts := strings.Split(string(id), ".")
	if d+1 >= len(parts) {
		return id
	}
	return profile.GrainID(strings.Join(parts[:d+1], "."))
}

// entryNode returns the node that absorbs serialized work for a task grain:
// its first fragment.
func (e *Engine) entryNode(id profile.GrainID) (core.NodeID, bool) {
	if n, ok := e.G.FirstNode[id]; ok {
		return n, true
	}
	for n := core.NodeID(0); n < core.NodeID(e.G.NumNodes()); n++ {
		if e.G.Grain(n) == id && e.G.Kind(n) == core.NodeFragment {
			return n, true
		}
	}
	return 0, false
}

// ScaleGrain scales the execution weight of one grain — or its whole spawn
// subtree — by Factor, modelling "optimize this region by 1/Factor×"
// (TASKPROF's classic what-if). Overhead nodes are untouched.
type ScaleGrain struct {
	Grain   profile.GrainID
	Factor  float64
	Subtree bool
}

// Label implements Hypothesis.
func (h ScaleGrain) Label() string {
	if h.Subtree {
		return fmt.Sprintf("scale subtree %s x%.2f", h.Grain, h.Factor)
	}
	return fmt.Sprintf("scale %s x%.2f", h.Grain, h.Factor)
}

// Approximate implements Hypothesis: pure weight algebra is exact.
func (h ScaleGrain) Approximate() bool { return false }

func (h ScaleGrain) apply(e *Engine, w []profile.Time) bool {
	g := e.G
	for n := core.NodeID(0); n < core.NodeID(g.NumNodes()); n++ {
		if k := g.Kind(n); k != core.NodeFragment && k != core.NodeChunk {
			continue
		}
		if id := g.Grain(n); id == h.Grain || (h.Subtree && inSubtree(id, h.Grain)) {
			w[n] = profile.Time(float64(w[n])*h.Factor + 0.5)
		}
	}
	return false
}

// ZeroInflation removes the measured work-inflation component of one grain:
// its execution weight is divided by its work deviation (parallel exec time
// over single-core exec time), projecting the grain running at its 1-core
// speed — the separation of work inflation from parallelism loss that Acar
// et al. argue for. Requires a report computed against a baseline run;
// grains without a deviation above 1 are untouched.
type ZeroInflation struct {
	Grain profile.GrainID
	// All de-inflates every grain in the report instead of just Grain.
	All bool
}

// Label implements Hypothesis.
func (h ZeroInflation) Label() string {
	if h.All {
		return "de-inflate all grains"
	}
	return fmt.Sprintf("de-inflate %s", h.Grain)
}

// Approximate implements Hypothesis: deviation-scaled weights are exact
// with respect to the measured baseline.
func (h ZeroInflation) Approximate() bool { return false }

func (h ZeroInflation) apply(e *Engine, w []profile.Time) bool {
	if e.Rep == nil {
		return false
	}
	deviation := make(map[profile.GrainID]float64, len(e.Rep.Grains))
	for _, gm := range e.Rep.Grains {
		if gm.WorkDeviation > 1 {
			deviation[gm.Grain.ID] = gm.WorkDeviation
		}
	}
	deflate := func(id profile.GrainID) float64 {
		if wd, ok := deviation[id]; ok {
			return wd
		}
		return 1
	}
	g := e.G
	for n := core.NodeID(0); n < core.NodeID(g.NumNodes()); n++ {
		if k := g.Kind(n); k != core.NodeFragment && k != core.NodeChunk {
			continue
		}
		if !h.All && g.Grain(n) != h.Grain {
			continue
		}
		if wd := deflate(g.Grain(n)); wd > 1 {
			w[n] = profile.Time(float64(w[n])/wd + 0.5)
		}
	}
	return false
}

// InfiniteCores lifts the core count to infinity: the projected makespan is
// the critical path itself — the upper bound on what any scheduling fix can
// achieve without reducing work or span.
type InfiniteCores struct{}

// Label implements Hypothesis.
func (InfiniteCores) Label() string { return "infinite cores (span bound)" }

// Approximate implements Hypothesis.
func (InfiniteCores) Approximate() bool { return false }

func (InfiniteCores) apply(e *Engine, w []profile.Time) bool { return true }

// CollapseSubtree models a perfect cutoff at one task: the entire spawn
// subtree below Root executes inline in Root — all fork/join/book-keeping
// overhead inside the subtree disappears, and every descendant's execution
// weight is serialized into Root's first fragment. Loops executed by
// subtree tasks serialize too (their chunks' work moves to Root). The
// projection trades lost parallelism (longer span) against saved overhead
// (less work); for broken cutoffs spawning tiny grains the overhead wins.
type CollapseSubtree struct {
	Root profile.GrainID
}

// Label implements Hypothesis.
func (h CollapseSubtree) Label() string { return fmt.Sprintf("perfect cutoff at %s", h.Root) }

// Approximate implements Hypothesis: serialization changes structure.
func (h CollapseSubtree) Approximate() bool { return true }

func (h CollapseSubtree) apply(e *Engine, w []profile.Time) bool {
	collapseRoots(e, w, func(id profile.GrainID) (profile.GrainID, bool) {
		if inSubtree(id, h.Root) {
			return h.Root, true
		}
		return "", false
	})
	return false
}

// CollapseAtDepth models raising the task cutoff to spawn-tree depth Depth:
// every task at that depth absorbs its subtree serially, exactly as
// CollapseSubtree does per root. Depth 0 is the fully-serial hypothesis.
type CollapseAtDepth struct {
	Depth int
}

// Label implements Hypothesis.
func (h CollapseAtDepth) Label() string { return fmt.Sprintf("perfect cutoff at depth %d", h.Depth) }

// Approximate implements Hypothesis.
func (h CollapseAtDepth) Approximate() bool { return true }

func (h CollapseAtDepth) apply(e *Engine, w []profile.Time) bool {
	collapseRoots(e, w, func(id profile.GrainID) (profile.GrainID, bool) {
		d, ok := taskDepth(id)
		if !ok || d < h.Depth {
			return "", false
		}
		return ancestorAt(id, h.Depth), true
	})
	return false
}

// collapseRoots is the shared serialization machinery: rootOf maps a task
// grain to the collapse root owning it (ok=false for tasks outside every
// collapsed subtree). For every owned task, fork/join/book-keeping weights
// vanish; fragment weights of strict descendants (and chunk weights of
// owned loops) accumulate into the root's first fragment. Roots without an
// entry node keep their subtree unmodified rather than dropping its work.
func collapseRoots(e *Engine, w []profile.Time,
	rootOf func(profile.GrainID) (profile.GrainID, bool)) {

	type change struct {
		zero  []core.NodeID
		moved profile.Time
	}
	pending := make(map[profile.GrainID]*change)
	get := func(root profile.GrainID) *change {
		c := pending[root]
		if c == nil {
			c = &change{}
			pending[root] = c
		}
		return c
	}

	g := e.G
	for n := core.NodeID(0); n < core.NodeID(g.NumNodes()); n++ {
		// Resolve the task grain that owns this node: chunks go through
		// their loop's executing task, everything else carries it directly.
		kind := g.Kind(n)
		owner := g.Grain(n)
		if kind == core.NodeChunk {
			owner = e.loopOwner[g.Loop(n)]
		}
		root, ok := rootOf(owner)
		if !ok {
			continue
		}
		c := get(root)
		switch kind {
		case core.NodeFork, core.NodeJoin, core.NodeBookkeep:
			// Parallelization overhead inside the collapsed region vanishes.
			c.zero = append(c.zero, n)
		case core.NodeFragment:
			if g.Grain(n) != root {
				c.zero = append(c.zero, n)
				c.moved += w[n]
			}
		case core.NodeChunk:
			c.zero = append(c.zero, n)
			c.moved += w[n]
		}
	}

	for root, c := range pending {
		entry, ok := e.entryNode(root)
		if !ok {
			continue
		}
		for _, id := range c.zero {
			w[id] = 0
		}
		w[entry] += c.moved
	}
}
