package whatif

import (
	"fmt"
	"math"

	"graingraph/internal/highlight"
	"graingraph/internal/profile"
	"graingraph/internal/query"
	"graingraph/internal/runpool"
)

// RankOptions tunes candidate generation.
type RankOptions struct {
	// TopN truncates the ranked result (0 = keep every candidate).
	TopN int
	// MaxDepth caps the deepest perfect-cutoff level explored (default 12).
	MaxDepth int
	// ScaleFactor is the hypothetical optimization factor applied to
	// threshold-crossing grains (default 0.5 — "make it twice as fast").
	ScaleFactor float64
	// PerProblem bounds how many top offenders per problem class get
	// individual hypotheses (default 3).
	PerProblem int
}

func (o RankOptions) withDefaults() RankOptions {
	if o.MaxDepth == 0 {
		o.MaxDepth = 12
	}
	if o.ScaleFactor == 0 {
		o.ScaleFactor = 0.5
	}
	if o.PerProblem == 0 {
		o.PerProblem = 3
	}
	return o
}

// MaxScaleFactor bounds hypothetical scale factors: beyond it a projection
// is numeric noise, not a plausible "optimize this region" probe. Specs and
// RankOptions sharing the bound keeps CLI and API behavior aligned.
const MaxScaleFactor = 1e6

// Validate rejects option values that would silently produce nonsense
// projections: negative (or absurdly large, or non-finite) scale factors
// and negative depth/count limits. Zero values remain "use the default".
func (o RankOptions) Validate() error {
	if o.TopN < 0 {
		return fmt.Errorf("whatif: negative TopN %d", o.TopN)
	}
	if o.MaxDepth < 0 {
		return fmt.Errorf("whatif: negative MaxDepth %d", o.MaxDepth)
	}
	if o.PerProblem < 0 {
		return fmt.Errorf("whatif: negative PerProblem %d", o.PerProblem)
	}
	if o.ScaleFactor < 0 || o.ScaleFactor > MaxScaleFactor || math.IsNaN(o.ScaleFactor) {
		return fmt.Errorf("whatif: scale factor %v out of range [0, %g]", o.ScaleFactor, MaxScaleFactor)
	}
	return nil
}

// Candidates generates the hypothesis set the ranking pass evaluates, in a
// deterministic order:
//
//   - the span bound (infinite cores), as the reference ceiling;
//   - a perfect-cutoff hypothesis per populated spawn depth ("raise the
//     cutoff to depth d"), the fix for broken cutoffs;
//   - de-inflation of all grains plus the top work-inflation offenders
//     individually, when a baseline-backed report is available;
//   - a ScaleFactor weight scaling per top offender of every highlight
//     problem class — the TASKPROF-style "optimize this region" probe.
//
// a may be nil, which limits generation to the structural hypotheses.
func (e *Engine) Candidates(a *highlight.Assessment, opt RankOptions) []Hypothesis {
	opt = opt.withDefaults()
	hs := []Hypothesis{InfiniteCores{}}

	// Perfect cutoffs: one per depth that still has tasks below it. The
	// deepest populated depth was computed once in New — Candidates used to
	// re-scan every node here on each Rank call.
	limit := e.maxTaskDepth - 1 // collapsing at the deepest level is a no-op
	if limit > opt.MaxDepth {
		limit = opt.MaxDepth
	}
	for d := 0; d <= limit; d++ {
		hs = append(hs, CollapseAtDepth{Depth: d})
	}

	if a != nil {
		// Work-inflation removal, when deviations were measured (the engine
		// caches the >1 deviations at construction).
		if len(e.deviation) > 0 {
			hs = append(hs, ZeroInflation{All: true})
			for _, ga := range a.TopOffenders(highlight.WorkInflation, opt.PerProblem) {
				hs = append(hs, ZeroInflation{Grain: ga.Metrics.Grain.ID})
			}
		}

		// Scale the worst offender grains of every problem class, deduped.
		seen := make(map[profile.GrainID]bool)
		for _, p := range highlight.AllProblems {
			for _, ga := range a.TopOffenders(p, opt.PerProblem) {
				id := ga.Metrics.Grain.ID
				if seen[id] {
					continue
				}
				seen[id] = true
				hs = append(hs, ScaleGrain{Grain: id, Factor: opt.ScaleFactor})
			}
		}
	}
	return hs
}

// Rank generates candidates from the highlighted assessment, evaluates them
// in parallel across the pool, and returns projections ordered by projected
// makespan reduction (largest first; label breaks ties), truncated to
// opt.TopN. The result is deterministic at every pool size. Invalid options
// (negative limits, out-of-range scale factor) return an error instead of
// silently producing nonsense projections.
func (e *Engine) Rank(a *highlight.Assessment, pool *runpool.Runner, opt RankOptions) ([]Projection, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	ps := e.EvalAll(pool, e.Candidates(a, opt))
	// Projected makespan ascending, label breaking ties — a total order,
	// so bounded selection (TopN set) and stable sort (full ranking) agree
	// with the sort-and-truncate this replaced.
	above := func(i, j int) bool {
		if ps[i].Makespan != ps[j].Makespan {
			return ps[i].Makespan < ps[j].Makespan
		}
		return ps[i].Label < ps[j].Label
	}
	var order []int32
	if opt.TopN > 0 && len(ps) > opt.TopN {
		order = query.TopK(len(ps), opt.TopN, above)
	} else {
		order = query.SortRows(len(ps), above)
	}
	out := make([]Projection, len(order))
	for i, r := range order {
		out[i] = ps[r]
	}
	return out, nil
}
