package whatif

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// WriteTable renders ranked projections as the what-if summary table shown
// by grainbench -whatif and grainview -whatif rank. Formatting is fixed and
// deterministic: the golden-output tests and the -j determinism guarantee
// both depend on it.
func WriteTable(w io.Writer, title string, ps []Projection) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if title != "" {
		fmt.Fprintln(tw, title)
	}
	fmt.Fprintln(tw, "#\thypothesis\tproj makespan\tspeedup\twork Δ\tproj span\tnote")
	for i, p := range ps {
		note := "exact"
		if p.Approximate {
			note = "approx"
		}
		delta := -100 * p.WorkDelta()
		if delta == 0 {
			delta = 0 // avoid "-0.0%" when the hypothesis leaves work untouched
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\t%.2fx\t%+.1f%%\t%d\t%s\n",
			i+1, p.Label, p.Makespan, p.Speedup, delta, p.Span, note)
	}
	if len(ps) > 0 {
		p := ps[0]
		fmt.Fprintf(tw, "-\tbaseline (observed)\t%d\t1.00x\t+0.0%%\t%d\tmeasured\n",
			p.BaseMakespan, p.BaseSpan)
	}
	return tw.Flush()
}
