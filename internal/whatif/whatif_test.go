package whatif

import (
	"bytes"
	"reflect"
	"testing"

	"graingraph/internal/core"
	"graingraph/internal/highlight"
	"graingraph/internal/metrics"
	"graingraph/internal/profile"
	"graingraph/internal/rts"
	"graingraph/internal/runpool"
)

// overheadGraph hand-builds a tiny broken-cutoff shape: root R spawns two
// children whose creation+join overhead (40 each) dwarfs their execution
// weight (10 each).
//
//	n0 R frag(5) → n1 fork(40) → n3 R.0 frag(10) → n5 join(40)
//	             → n2 fork(40) → n4 R.1 frag(10) ↗
//	n5 → n6 R frag(5)
func overheadGraph() *core.Graph {
	tr := &profile.Trace{Program: "synthetic", Cores: 2, Start: 0, End: 200}
	g := core.NewGraph(tr)
	add := func(kind core.NodeKind, grain profile.GrainID, w profile.Time) core.NodeID {
		return g.AddNode(core.Node{Kind: kind, Grain: grain, Weight: w})
	}
	n0 := add(core.NodeFragment, "R", 5)
	n1 := add(core.NodeFork, "R", 40)
	n2 := add(core.NodeFork, "R", 40)
	n3 := add(core.NodeFragment, "R.0", 10)
	n4 := add(core.NodeFragment, "R.1", 10)
	n5 := add(core.NodeJoin, "R", 40)
	n6 := add(core.NodeFragment, "R", 5)
	g.FirstNode["R"] = n0
	g.FirstNode["R.0"] = n3
	g.FirstNode["R.1"] = n4
	g.AddEdge(n0, n1, core.EdgeContinuation)
	g.AddEdge(n1, n2, core.EdgeContinuation)
	g.AddEdge(n1, n3, core.EdgeCreation)
	g.AddEdge(n2, n4, core.EdgeCreation)
	g.AddEdge(n3, n5, core.EdgeJoin)
	g.AddEdge(n4, n5, core.EdgeJoin)
	g.AddEdge(n2, n5, core.EdgeContinuation)
	g.AddEdge(n5, n6, core.EdgeContinuation)
	return g
}

func TestEngineBaseline(t *testing.T) {
	e := New(overheadGraph(), nil)
	if e.BaseWork != 150 {
		t.Errorf("base work = %d, want 150", e.BaseWork)
	}
	if e.BaseMakespan != 200 {
		t.Errorf("base makespan = %d, want 200 (from trace)", e.BaseMakespan)
	}
	if e.BaseSpan != 140 {
		t.Errorf("base span = %d, want 140 (path through a child)", e.BaseSpan)
	}
	if e.BaseSpan == 0 || e.BaseSpan > e.BaseWork {
		t.Errorf("base span = %d out of range", e.BaseSpan)
	}
}

func TestScaleGrainProjection(t *testing.T) {
	g := overheadGraph()
	e := New(g, nil)
	p := e.Eval(ScaleGrain{Grain: "R.0", Factor: 0.5})
	if p.Approximate {
		t.Error("weight scaling marked approximate")
	}
	if p.Work != e.BaseWork-5 {
		t.Errorf("projected work = %d, want %d", p.Work, e.BaseWork-5)
	}
	if p.Speedup < 1 {
		t.Errorf("halving a grain projects slowdown: %.2f", p.Speedup)
	}
	// The recorded graph must be untouched.
	if g.Weight(3) != 10 {
		t.Error("Eval mutated recorded weights")
	}
}

func TestCollapseSubtreeRemovesOverheadSerializesWork(t *testing.T) {
	e := New(overheadGraph(), nil)
	p := e.Eval(CollapseSubtree{Root: "R"})
	if !p.Approximate {
		t.Error("structural collapse not marked approximate")
	}
	// All 120 cycles of fork/join overhead vanish; the 20 cycles of child
	// exec serialize into R: projected work = 5+10+10+5 = 30.
	if p.Work != 30 {
		t.Errorf("projected work = %d, want 30", p.Work)
	}
	// Span is now the serial chain: 5+20+5 = 30.
	if p.Span != 30 {
		t.Errorf("projected span = %d, want 30", p.Span)
	}
	// Overhead dominated → the collapse pays.
	if p.Speedup <= 1 {
		t.Errorf("broken-cutoff collapse projects speedup %.2f, want > 1", p.Speedup)
	}
}

func TestCollapseAtDepthEqualsSubtreeCollapseAtRoot(t *testing.T) {
	e := New(overheadGraph(), nil)
	byDepth := e.Eval(CollapseAtDepth{Depth: 0})
	byRoot := e.Eval(CollapseSubtree{Root: "R"})
	if byDepth.Work != byRoot.Work || byDepth.Span != byRoot.Span || byDepth.Makespan != byRoot.Makespan {
		t.Errorf("depth-0 collapse %+v differs from root collapse %+v", byDepth, byRoot)
	}
}

func TestInfiniteCoresProjectsSpan(t *testing.T) {
	e := New(overheadGraph(), nil)
	p := e.Eval(InfiniteCores{})
	if p.Makespan != p.Span {
		t.Errorf("infinite cores makespan = %d, want span %d", p.Makespan, p.Span)
	}
	if p.Work != e.BaseWork {
		t.Errorf("infinite cores changed work: %d", p.Work)
	}
}

func TestZeroInflationUsesDeviation(t *testing.T) {
	g := overheadGraph()
	rep := &metrics.Report{
		Trace: g.Trace,
		Grains: []*metrics.GrainMetrics{
			{Grain: &profile.Grain{ID: "R.0"}, WorkDeviation: 2.0},
			{Grain: &profile.Grain{ID: "R.1"}, WorkDeviation: 0.9},
		},
	}
	e := New(g, rep)
	p := e.Eval(ZeroInflation{Grain: "R.0"})
	// R.0's 10 cycles deflate to 5; R.1 (deviation < 1) is untouched.
	if p.Work != e.BaseWork-5 {
		t.Errorf("projected work = %d, want %d", p.Work, e.BaseWork-5)
	}
	all := e.Eval(ZeroInflation{All: true})
	if all.Work != e.BaseWork-5 {
		t.Errorf("de-inflate all work = %d, want %d (R.1 not inflated)", all.Work, e.BaseWork-5)
	}
}

func TestEvalAllDeterministicAcrossPoolSizes(t *testing.T) {
	e := New(overheadGraph(), nil)
	hs := e.Candidates(nil, RankOptions{})
	serial := e.EvalAll(runpool.New(1), hs)
	parallel := e.EvalAll(runpool.New(8), hs)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("projections differ across pool sizes:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

func TestRankOrdersByProjectedMakespan(t *testing.T) {
	e := New(overheadGraph(), nil)
	ps, err := e.Rank(nil, nil, RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) == 0 {
		t.Fatal("no candidates ranked")
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].Makespan < ps[i-1].Makespan {
			t.Fatalf("rank not ordered at %d: %d before %d", i, ps[i-1].Makespan, ps[i].Makespan)
		}
	}
	top, err := e.Rank(nil, nil, RankOptions{TopN: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Errorf("TopN=2 returned %d rows", len(top))
	}
}

// TestBrokenCutoffFibShapeProjectsPositiveSpeedup drives the engine over a
// real simulated run shaped like the paper's broken-cutoff fib: a deep
// spawn tree of tiny tasks where creation overhead rivals the work. Some
// perfect-cutoff hypothesis must project a strictly positive speedup.
func TestBrokenCutoffFibShapeProjectsPositiveSpeedup(t *testing.T) {
	tr := rts.Run(rts.Config{Program: "fib-broken", Cores: 8, Seed: 1}, func(c rts.Ctx) {
		var fib func(c rts.Ctx, n int) int
		fib = func(c rts.Ctx, n int) int {
			if n < 2 {
				c.Compute(20)
				return n
			}
			var a, b int
			c.Spawn(profile.Loc("fib.go", 1, "fib"), func(c rts.Ctx) { a = fib(c, n-1) })
			c.Spawn(profile.Loc("fib.go", 2, "fib"), func(c rts.Ctx) { b = fib(c, n-2) })
			c.TaskWait()
			c.Compute(20)
			return a + b
		}
		fib(c, 12)
	})
	g := core.Build(tr)
	rep := metrics.Analyze(tr, g, nil, metrics.Options{})
	a := highlight.Evaluate(rep, highlight.Defaults(tr.Cores, 4))
	e := New(g, rep)
	ps, err := e.Rank(a, runpool.New(4), RankOptions{})
	if err != nil {
		t.Fatal(err)
	}

	best := 0.0
	for _, p := range ps {
		if p.Approximate && p.Speedup > best {
			best = p.Speedup
		}
	}
	if best <= 1 {
		t.Errorf("no perfect-cutoff hypothesis projects speedup > 1 on a broken-cutoff tree (best %.3f)", best)
	}
}

func TestParseSpecs(t *testing.T) {
	hs, err := ParseSpecs("scale:R.0:0.5, collapse:R.1,cutoff:3,deinflate:all,infcores,scale-subtree:R:0.25,deinflate:R.2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Hypothesis{
		ScaleGrain{Grain: "R.0", Factor: 0.5},
		CollapseSubtree{Root: "R.1"},
		CollapseAtDepth{Depth: 3},
		ZeroInflation{All: true},
		InfiniteCores{},
		ScaleGrain{Grain: "R", Factor: 0.25, Subtree: true},
		ZeroInflation{Grain: "R.2"},
	}
	if !reflect.DeepEqual(hs, want) {
		t.Errorf("parsed %+v, want %+v", hs, want)
	}
	for _, bad := range []string{"", "bogus", "scale:R", "scale:R:x", "cutoff:-1", "cutoff:x", "collapse:", "deinflate:", "infcores:3"} {
		if _, err := ParseSpecs(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

// TestWriteTableGolden pins the what-if summary table's exact bytes: the
// expt regenerator and the -j determinism guarantee both build on this
// formatting.
func TestWriteTableGolden(t *testing.T) {
	e := New(overheadGraph(), nil)
	ps := []Projection{
		e.Eval(CollapseSubtree{Root: "R"}),
		e.Eval(InfiniteCores{}),
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, "what-if: synthetic", ps); err != nil {
		t.Fatal(err)
	}
	const golden = "what-if: synthetic\n" +
		"#  hypothesis                   proj makespan  speedup  work Δ  proj span  note\n" +
		"1  perfect cutoff at R          140            1.43x    -80.0%  30         approx\n" +
		"2  infinite cores (span bound)  140            1.43x    +0.0%   140        exact\n" +
		"-  baseline (observed)          200            1.00x    +0.0%   140        measured\n"
	if got := buf.String(); got != golden {
		t.Errorf("table mismatch:\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

// oracleSubjects builds the workload shapes the sparse/full oracle test
// runs over: the hand-built overhead graph, a broken-cutoff fib tree, and a
// chunked parallel-loop run (so chunk nodes and loop ownership are covered).
func oracleSubjects(t *testing.T) map[string]struct {
	g   *core.Graph
	rep *metrics.Report
	a   *highlight.Assessment
} {
	t.Helper()
	subjects := make(map[string]struct {
		g   *core.Graph
		rep *metrics.Report
		a   *highlight.Assessment
	})
	add := func(name string, tr *profile.Trace) {
		g := core.Build(tr)
		rep := metrics.Analyze(tr, g, nil, metrics.Options{})
		a := highlight.Evaluate(rep, highlight.Defaults(tr.Cores, 4))
		subjects[name] = struct {
			g   *core.Graph
			rep *metrics.Report
			a   *highlight.Assessment
		}{g, rep, a}
	}

	fibTr := rts.Run(rts.Config{Program: "fib-broken", Cores: 8, Seed: 1}, func(c rts.Ctx) {
		var fib func(c rts.Ctx, n int) int
		fib = func(c rts.Ctx, n int) int {
			if n < 2 {
				c.Compute(20)
				return n
			}
			var a, b int
			c.Spawn(profile.Loc("fib.go", 1, "fib"), func(c rts.Ctx) { a = fib(c, n-1) })
			c.Spawn(profile.Loc("fib.go", 2, "fib"), func(c rts.Ctx) { b = fib(c, n-2) })
			c.TaskWait()
			c.Compute(20)
			return a + b
		}
		fib(c, 11)
	})
	add("fib-broken", fibTr)

	loopTr := rts.Run(rts.Config{Program: "loop", Cores: 8, Seed: 1}, func(c rts.Ctx) {
		c.Compute(50)
		c.For(profile.Loc("loop.go", 1, "main"), 0, 64,
			rts.ForOpt{Schedule: profile.ScheduleStatic, Chunk: 4},
			func(c rts.Ctx, lo, hi int) {
				c.Compute(profile.Time(10 * (hi - lo)))
			})
		c.Compute(50)
	})
	add("loop", loopTr)

	og := overheadGraph()
	subjects["overhead"] = struct {
		g   *core.Graph
		rep *metrics.Report
		a   *highlight.Assessment
	}{og, nil, nil}
	return subjects
}

// TestEvalMatchesFullOracle is the tentpole's exactness guarantee: for every
// generated candidate on every subject shape, the sparse path (overlay edits
// + delta work accounting + delta critical-path DP) must produce the same
// projection — bit for bit, every field — as the materialize-and-rescan
// oracle path the engine used before sparse evaluation existed.
func TestEvalMatchesFullOracle(t *testing.T) {
	for name, s := range oracleSubjects(t) {
		e := New(s.g, s.rep)
		hs := e.Candidates(s.a, RankOptions{})
		// Explicit hypotheses beyond the generated set: subtree scaling and
		// single-grain collapse have no candidate generator.
		hs = append(hs,
			ScaleGrain{Grain: "R.0", Factor: 0.25, Subtree: true},
			ScaleGrain{Grain: "R.0", Factor: 3.0},
			CollapseSubtree{Root: "R.0"},
			CollapseSubtree{Root: "R"},
			CollapseSubtree{Root: "R.does-not-exist"},
			ZeroInflation{All: true},
		)
		for _, h := range hs {
			sparse := e.Eval(h)
			full := e.EvalFull(h)
			if !reflect.DeepEqual(sparse, full) {
				t.Errorf("%s: %q: sparse projection differs from full oracle:\nsparse: %+v\nfull:   %+v",
					name, h.Label(), sparse, full)
			}
		}
		st := e.Stats()
		if st.Sparse == 0 {
			t.Errorf("%s: no evaluation took the sparse path (stats %+v)", name, st)
		}
		if st.Full == 0 {
			t.Errorf("%s: no evaluation took the full oracle path (stats %+v)", name, st)
		}
	}
}

// TestRankOptionValidation pins the error contract for out-of-range options.
func TestRankOptionValidation(t *testing.T) {
	e := New(overheadGraph(), nil)
	bad := []RankOptions{
		{TopN: -1},
		{MaxDepth: -2},
		{PerProblem: -1},
		{ScaleFactor: -0.5},
		{ScaleFactor: 2e6},
	}
	for _, opt := range bad {
		if _, err := e.Rank(nil, nil, opt); err == nil {
			t.Errorf("Rank accepted invalid options %+v", opt)
		}
	}
	if _, err := e.Rank(nil, nil, RankOptions{TopN: 3, ScaleFactor: 0.5}); err != nil {
		t.Errorf("Rank rejected valid options: %v", err)
	}
}
