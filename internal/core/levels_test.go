package core

import (
	"math/rand/v2"
	"testing"

	"graingraph/internal/profile"
)

// diamond builds the 4-node diamond 0 -> {1,2} -> 3.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(&profile.Trace{})
	for i := 0; i < 4; i++ {
		g.AddNode(Node{Kind: NodeFragment, Weight: 1})
	}
	g.AddEdge(0, 1, EdgeContinuation)
	g.AddEdge(0, 2, EdgeContinuation)
	g.AddEdge(1, 3, EdgeContinuation)
	g.AddEdge(2, 3, EdgeContinuation)
	return g
}

func TestLevelsDiamond(t *testing.T) {
	g := diamond(t)
	if got := g.NumLevels(); got != 3 {
		t.Fatalf("NumLevels = %d, want 3", got)
	}
	want := [][]int32{{0}, {1, 2}, {3}}
	for l, w := range want {
		nodes := g.LevelNodes(l)
		if len(nodes) != len(w) {
			t.Fatalf("level %d has %d nodes, want %d", l, len(nodes), len(w))
		}
		for i := range w {
			if nodes[i] != w[i] {
				t.Errorf("level %d node %d = %d, want %d", l, i, nodes[i], w[i])
			}
		}
	}
}

// TestLevelsLongestPathDepth checks level(n) is the longest-path depth, not
// the BFS depth: a node reachable both directly and via a chain sits at the
// chain's level.
func TestLevelsLongestPathDepth(t *testing.T) {
	g := NewGraph(&profile.Trace{})
	for i := 0; i < 4; i++ {
		g.AddNode(Node{Kind: NodeFragment, Weight: 1})
	}
	// 0 -> 3 directly, and 0 -> 1 -> 2 -> 3.
	g.AddEdge(0, 3, EdgeContinuation)
	g.AddEdge(0, 1, EdgeContinuation)
	g.AddEdge(1, 2, EdgeContinuation)
	g.AddEdge(2, 3, EdgeContinuation)
	if got := g.NumLevels(); got != 4 {
		t.Fatalf("NumLevels = %d, want 4", got)
	}
	if nodes := g.LevelNodes(3); len(nodes) != 1 || nodes[0] != 3 {
		t.Errorf("level 3 = %v, want [3]", nodes)
	}
}

// TestLevelsInvariants checks, on a random DAG, that every node appears
// exactly once, every edge crosses to a strictly higher level, and levels
// list nodes in ascending NodeID order — the guarantees the parallel DP
// relies on. Edge insertion order must not matter.
func TestLevelsInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	n := 300
	type edge struct{ from, to NodeID }
	var edges []edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.IntN(40) == 0 {
				edges = append(edges, edge{NodeID(i), NodeID(j)})
			}
		}
	}
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })

	g := NewGraph(&profile.Trace{})
	for i := 0; i < n; i++ {
		g.AddNode(Node{Kind: NodeFragment, Weight: profile.Time(i + 1)})
	}
	for _, e := range edges {
		g.AddEdge(e.from, e.to, EdgeContinuation)
	}

	levelOf := make([]int, n)
	seen := make([]bool, n)
	for l := 0; l < g.NumLevels(); l++ {
		nodes := g.LevelNodes(l)
		for i, id := range nodes {
			if seen[id] {
				t.Fatalf("node %d appears in two levels", id)
			}
			seen[id] = true
			levelOf[id] = l
			if i > 0 && nodes[i-1] >= id {
				t.Fatalf("level %d not in ascending NodeID order", l)
			}
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("node %d missing from level index", i)
		}
	}
	for _, e := range edges {
		if levelOf[e.from] >= levelOf[e.to] {
			t.Fatalf("edge %d->%d does not cross levels (%d >= %d)",
				e.from, e.to, levelOf[e.from], levelOf[e.to])
		}
	}
}

// TestLevelsInvalidation checks the index rebuilds after mutation.
func TestLevelsInvalidation(t *testing.T) {
	g := diamond(t)
	if g.NumLevels() != 3 {
		t.Fatal("unexpected initial levels")
	}
	id := g.AddNode(Node{Kind: NodeFragment, Weight: 1})
	g.AddEdge(3, id, EdgeContinuation)
	if got := g.NumLevels(); got != 4 {
		t.Fatalf("NumLevels after append = %d, want 4", got)
	}
}
