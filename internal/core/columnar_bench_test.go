package core_test

import (
	"testing"

	. "graingraph/internal/core"
	"graingraph/internal/profile"
	"graingraph/internal/rts"
	"graingraph/internal/workloads"
)

// The benchmarks below compare the columnar GraphStore against a replica
// of the representation it replaced — one heap-allocated node object per
// vertex with per-node adjacency slices of edge pointers — on the two hot
// analysis passes the refactor targeted: the critical-path DP and the
// whole-graph field scan behind the scatter metric. The workload is the
// paper's Sort benchmark (scaled down so the one-time simulation stays
// cheap), whose ~thousand-grain graph is the shape the analyzers see most.

// ptrNode mirrors the pre-columnar *Node: every vertex its own allocation,
// adjacency as slices of *ptrEdge.
type ptrNode struct {
	ID         NodeID
	Kind       NodeKind
	Grain      profile.GrainID
	Loop       profile.LoopID
	Seq        int
	Label      string
	Start, End profile.Time
	Weight     profile.Time
	Core       int
	Members    int
	Critical   bool
	X, Y, W, H float64
	Out, In    []*ptrEdge
}

type ptrEdge struct {
	From, To *ptrNode
	Kind     EdgeKind
	Critical bool
}

type ptrGraph struct {
	Nodes []*ptrNode
	Edges []*ptrEdge
}

// pointerReplica materializes g in the pointer-based representation.
func pointerReplica(g *Graph) *ptrGraph {
	pg := &ptrGraph{Nodes: make([]*ptrNode, g.NumNodes())}
	for id := NodeID(0); id < NodeID(g.NumNodes()); id++ {
		n := g.NodeAt(id)
		pg.Nodes[id] = &ptrNode{
			ID: n.ID, Kind: n.Kind, Grain: n.Grain, Loop: n.Loop, Seq: n.Seq,
			Label: n.Label, Start: n.Start, End: n.End, Weight: n.Weight,
			Core: n.Core, Members: n.Members, Critical: n.Critical,
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.EdgeAt(i)
		pe := &ptrEdge{From: pg.Nodes[e.From], To: pg.Nodes[e.To], Kind: e.Kind}
		pe.From.Out = append(pe.From.Out, pe)
		pe.To.In = append(pe.To.In, pe)
		pg.Edges = append(pg.Edges, pe)
	}
	return pg
}

// sortGraph simulates the scaled-down Sort workload once and builds its
// grain graph.
func sortGraph(b *testing.B) *Graph {
	b.Helper()
	inst := workloads.NewSort(workloads.SortParams{
		N: 1 << 20, SeqCutoff: 4096, MergeCutoff: 16384, InsertionCutoff: 20, Seed: 11,
	})
	tr := rts.Run(rts.Config{Program: inst.Name(), Cores: 48, Seed: 1}, inst.Program())
	if err := inst.Verify(); err != nil {
		b.Fatal(err)
	}
	return Build(tr)
}

// criticalColumnar is the critical-path DP over the columnar store: one
// flat weight column, CSR adjacency, distances indexed by NodeID.
func criticalColumnar(g *Graph, topo []NodeID, dist []profile.Time) profile.Time {
	for i := range dist {
		dist[i] = 0
	}
	var best profile.Time
	for _, n := range topo {
		d := dist[n] + g.Weight(n)
		if d > best {
			best = d
		}
		for _, ei := range g.Out(n) {
			if to := g.EdgeTo(int(ei)); d > dist[to] {
				dist[to] = d
			}
		}
	}
	return best
}

// criticalPointer is the same DP chasing node and edge pointers.
func criticalPointer(pg *ptrGraph, topo []NodeID, dist []profile.Time) profile.Time {
	for i := range dist {
		dist[i] = 0
	}
	var best profile.Time
	for _, id := range topo {
		n := pg.Nodes[id]
		d := dist[n.ID] + n.Weight
		if d > best {
			best = d
		}
		for _, e := range n.Out {
			if d > dist[e.To.ID] {
				dist[e.To.ID] = d
			}
		}
	}
	return best
}

func BenchmarkCriticalPathColumnar(b *testing.B) {
	g := sortGraph(b)
	topo := g.Topological()
	dist := make([]profile.Time, g.NumNodes())
	g.Out(0) // force CSR construction outside the timed region
	b.ReportAllocs()
	b.ResetTimer()
	var sink profile.Time
	for i := 0; i < b.N; i++ {
		sink = criticalColumnar(g, topo, dist)
	}
	_ = sink
}

func BenchmarkCriticalPathPointer(b *testing.B) {
	g := sortGraph(b)
	topo := g.Topological()
	pg := pointerReplica(g)
	dist := make([]profile.Time, g.NumNodes())
	b.ReportAllocs()
	b.ResetTimer()
	var sink profile.Time
	for i := 0; i < b.N; i++ {
		sink = criticalPointer(pg, topo, dist)
	}
	_ = sink
}

// scatterScan is the field pattern behind the scatter metric and the
// exporters' per-node loops: touch kind, core, weight and span of every
// node. Columnar reads stream four flat arrays; the pointer layout
// dereferences every node object.

func BenchmarkScatterScanColumnar(b *testing.B) {
	g := sortGraph(b)
	perCore := make([]profile.Time, 48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range perCore {
			perCore[j] = 0
		}
		var span profile.Time
		for n := NodeID(0); n < NodeID(g.NumNodes()); n++ {
			if g.Kind(n) == NodeFork || g.Kind(n) == NodeJoin {
				continue
			}
			perCore[g.Core(n)] += g.Weight(n)
			if e := g.End(n); e > span {
				span = e
			}
		}
		_ = span
	}
}

func BenchmarkScatterScanPointer(b *testing.B) {
	g := sortGraph(b)
	pg := pointerReplica(g)
	perCore := make([]profile.Time, 48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range perCore {
			perCore[j] = 0
		}
		var span profile.Time
		for _, n := range pg.Nodes {
			if n.Kind == NodeFork || n.Kind == NodeJoin {
				continue
			}
			perCore[n.Core] += n.Weight
			if n.End > span {
				span = n.End
			}
		}
		_ = span
	}
}

// The full critical-path pass — materialize the representation, then run
// the DP over it — is where the allocation difference shows: columnar
// assembly amortizes into a handful of growing slices, the pointer
// representation pays one allocation per node and per edge.

func BenchmarkCriticalPathPassColumnar(b *testing.B) {
	src := sortGraph(b)
	topo := src.Topological()
	n, m := src.NumNodes(), src.NumEdges()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := &Graph{}
		for id := NodeID(0); id < NodeID(n); id++ {
			g.AddNode(src.NodeAt(id))
		}
		for j := 0; j < m; j++ {
			e := src.EdgeAt(j)
			g.AddEdge(e.From, e.To, e.Kind)
		}
		dist := make([]profile.Time, n)
		if criticalColumnar(g, topo, dist) == 0 {
			b.Fatal("empty critical path")
		}
	}
}

func BenchmarkCriticalPathPassPointer(b *testing.B) {
	src := sortGraph(b)
	topo := src.Topological()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pg := pointerReplica(src)
		dist := make([]profile.Time, len(pg.Nodes))
		if criticalPointer(pg, topo, dist) == 0 {
			b.Fatal("empty critical path")
		}
	}
}

// Graph assembly: the allocation story. Columnar appendNode/appendEdge
// amortize into a handful of growing slices; the pointer representation
// pays one allocation per node plus per-edge adjacency growth.

func BenchmarkAssembleColumnar(b *testing.B) {
	src := sortGraph(b)
	n, m := src.NumNodes(), src.NumEdges()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s GraphStore
		for id := NodeID(0); id < NodeID(n); id++ {
			s.AddNode(src.NodeAt(id))
		}
		for j := 0; j < m; j++ {
			e := src.EdgeAt(j)
			s.AddEdge(e.From, e.To, e.Kind)
		}
		if s.NumNodes() != n {
			b.Fatal("bad assembly")
		}
	}
}

func BenchmarkAssemblePointer(b *testing.B) {
	src := sortGraph(b)
	n, m := src.NumNodes(), src.NumEdges()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pg := &ptrGraph{}
		for id := NodeID(0); id < NodeID(n); id++ {
			nd := src.NodeAt(id)
			pg.Nodes = append(pg.Nodes, &ptrNode{
				ID: nd.ID, Kind: nd.Kind, Grain: nd.Grain, Loop: nd.Loop,
				Seq: nd.Seq, Label: nd.Label, Start: nd.Start, End: nd.End,
				Weight: nd.Weight, Core: nd.Core, Members: nd.Members,
			})
		}
		for j := 0; j < m; j++ {
			e := src.EdgeAt(j)
			pe := &ptrEdge{From: pg.Nodes[e.From], To: pg.Nodes[e.To], Kind: e.Kind}
			pe.From.Out = append(pe.From.Out, pe)
			pe.To.In = append(pe.To.In, pe)
			pg.Edges = append(pg.Edges, pe)
		}
		if len(pg.Nodes) != n {
			b.Fatal("bad assembly")
		}
	}
}
