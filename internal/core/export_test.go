package core

// ColWidthForTest re-exports the layout column pitch for the external
// test package (kept external so it can import rts and workloads without
// cycling through ggp, which imports core for column adoption).
const ColWidthForTest = colWidth
