package core

import (
	"fmt"

	"graingraph/internal/cache"
	"graingraph/internal/profile"
)

// This file is the serialization boundary of the columnar store: the .ggp
// v2 codec in internal/ggp exports a built graph's attribute columns for
// writing, and adopts decoded columns back into a Graph without replaying
// core.Build. Only construction-time state crosses the boundary — critical
// flags, layout geometry, adjacency and level indexes are derived and are
// rebuilt (or adopted separately, for levels) on the reader side, which is
// what makes a post-analysis graph encode byte-identically to a freshly
// built one.

// GraphColumns is the read-only column view of a built graph that the v2
// writer serializes. All slices alias the store: read, don't mutate.
type GraphColumns struct {
	Kind     []uint8
	Grain    []profile.GrainID
	Loop     []int32
	Seq      []int32
	Label    []string
	Start    []profile.Time
	End      []profile.Time
	Weight   []profile.Time
	Core     []int32
	Counters []cache.Counters
	Members  []int32

	EdgeFrom []int32
	EdgeTo   []int32
	EdgeKind []uint8
}

// ExportColumns returns the serializable column view of g.
func (g *Graph) ExportColumns() GraphColumns {
	s := &g.GraphStore
	return GraphColumns{
		Kind:     s.kind,
		Grain:    s.grain,
		Loop:     s.loop,
		Seq:      s.seq,
		Label:    s.label,
		Start:    s.start,
		End:      s.end,
		Weight:   s.weight,
		Core:     s.core,
		Counters: s.counters,
		Members:  s.members,
		EdgeFrom: s.edgeFrom,
		EdgeTo:   s.edgeTo,
		EdgeKind: s.edgeKind,
	}
}

// AdoptGraph assembles a Graph directly from decoded columns, taking
// ownership of every slice. It performs the structural validation a decoder
// needs — column lengths agree, enum values are in range, edge endpoints
// are in bounds, entry/exit nodes exist — but does not re-run the full
// acyclicity check; the v2 reader's per-section checksums guard against
// corruption, exactly as the v1 stream checksum guards the event decoder.
// Derived columns (critical flags, geometry, edge criticality) are
// allocated zeroed; adjacency and level indexes stay lazy.
func AdoptGraph(tr *profile.Trace, c GraphColumns, first, last map[profile.GrainID]NodeID) (*Graph, error) {
	n := len(c.Kind)
	for name, l := range map[string]int{
		"grain":    len(c.Grain),
		"loop":     len(c.Loop),
		"seq":      len(c.Seq),
		"label":    len(c.Label),
		"start":    len(c.Start),
		"end":      len(c.End),
		"weight":   len(c.Weight),
		"core":     len(c.Core),
		"counters": len(c.Counters),
		"members":  len(c.Members),
	} {
		if l != n {
			return nil, fmt.Errorf("core: adopt: %s column has %d rows, want %d", name, l, n)
		}
	}
	e := len(c.EdgeFrom)
	if len(c.EdgeTo) != e || len(c.EdgeKind) != e {
		return nil, fmt.Errorf("core: adopt: edge columns disagree (%d/%d/%d)", e, len(c.EdgeTo), len(c.EdgeKind))
	}
	for i := 0; i < n; i++ {
		if c.Kind[i] > uint8(NodeChunk) {
			return nil, fmt.Errorf("core: adopt: node %d has invalid kind %d", i, c.Kind[i])
		}
		if c.Members[i] < 1 {
			return nil, fmt.Errorf("core: adopt: node %d has members %d < 1", i, c.Members[i])
		}
	}
	for i := 0; i < e; i++ {
		if c.EdgeFrom[i] < 0 || int(c.EdgeFrom[i]) >= n || c.EdgeTo[i] < 0 || int(c.EdgeTo[i]) >= n {
			return nil, fmt.Errorf("core: adopt: edge %d endpoints (%d,%d) out of range [0,%d)", i, c.EdgeFrom[i], c.EdgeTo[i], n)
		}
		if c.EdgeKind[i] > uint8(EdgeContinuation) {
			return nil, fmt.Errorf("core: adopt: edge %d has invalid kind %d", i, c.EdgeKind[i])
		}
	}
	for id, nd := range first {
		if nd < 0 || int(nd) >= n {
			return nil, fmt.Errorf("core: adopt: first node of %q out of range", id)
		}
	}
	for id, nd := range last {
		if nd < 0 || int(nd) >= n {
			return nil, fmt.Errorf("core: adopt: last node of %q out of range", id)
		}
	}
	if first == nil {
		first = make(map[profile.GrainID]NodeID)
	}
	if last == nil {
		last = make(map[profile.GrainID]NodeID)
	}
	g := &Graph{Trace: tr, FirstNode: first, LastNode: last}
	s := &g.GraphStore
	s.kind = c.Kind
	s.grain = c.Grain
	s.loop = c.Loop
	s.seq = c.Seq
	s.label = c.Label
	s.start = c.Start
	s.end = c.End
	s.weight = c.Weight
	s.core = c.Core
	s.counters = c.Counters
	s.members = c.Members
	s.critical = make([]bool, n)
	s.geoX = make([]float64, n)
	s.geoY = make([]float64, n)
	s.geoW = make([]float64, n)
	s.geoH = make([]float64, n)
	s.edgeFrom = c.EdgeFrom
	s.edgeTo = c.EdgeTo
	s.edgeKind = c.EdgeKind
	s.edgeCritical = make([]bool, e)
	return g, nil
}

// ExportLevels returns the topological level index columns (offsets,
// level-ordered node list, per-node level), or nils if the index has not
// been built. The slices alias the store: read, don't mutate.
func (g *Graph) ExportLevels() (off, nodes, level []int32) {
	s := &g.GraphStore
	return s.levelOff, s.levelNodes, s.nodeLevel
}

// AdoptLevels installs a decoded level index, taking ownership of the
// slices. It validates the index structurally against the current node
// count — monotonic offsets covering all nodes exactly once, per-node
// levels agreeing with the bucket a node sits in, ascending NodeID order
// within each level (the determinism contract LevelNodes documents) — so a
// stale or hand-edited sidecar is rejected rather than trusted.
func (g *Graph) AdoptLevels(off, nodes, level []int32) error {
	s := &g.GraphStore
	n := len(s.kind)
	if len(nodes) != n || len(level) != n {
		return fmt.Errorf("core: adopt levels: index covers %d/%d nodes, graph has %d", len(nodes), len(level), n)
	}
	if len(off) < 1 || off[0] != 0 || int(off[len(off)-1]) != n {
		return fmt.Errorf("core: adopt levels: bad offsets")
	}
	seen := make([]bool, n)
	for l := 0; l < len(off)-1; l++ {
		lo, hi := off[l], off[l+1]
		if hi < lo {
			return fmt.Errorf("core: adopt levels: offsets not monotonic at level %d", l)
		}
		prev := int32(-1)
		for _, nd := range nodes[lo:hi] {
			if nd < 0 || int(nd) >= n {
				return fmt.Errorf("core: adopt levels: node %d out of range", nd)
			}
			if nd <= prev {
				return fmt.Errorf("core: adopt levels: level %d not in ascending node order", l)
			}
			prev = nd
			if seen[nd] {
				return fmt.Errorf("core: adopt levels: node %d listed twice", nd)
			}
			seen[nd] = true
			if level[nd] != int32(l) {
				return fmt.Errorf("core: adopt levels: node %d bucketed at level %d but labeled %d", nd, l, level[nd])
			}
		}
	}
	s.levelOff, s.levelNodes, s.nodeLevel = off, nodes, level
	return nil
}
