package core

import (
	"fmt"

	"graingraph/internal/profile"
)

// Reductions group nodes to speed up rendering (paper §3.1, Figure 3d-e,h).
// Grouped nodes retain the aggregate weights of their members (Weight,
// Counters, Members); Start/End span the members' extent.
//
// The canonical pipeline is ReduceAll = fragments → forks → book-keeping,
// matching the paper's presentation order.

// ReduceAll applies fragment, fork and book-keeping reduction in order.
func ReduceAll(g *Graph) *Graph {
	return ReduceBookkeeping(ReduceForks(ReduceFragments(g)))
}

// ReduceFragments merges each task's fragments into a single node
// (Figure 3d). Fork and join nodes remain, hanging off the merged node;
// the continuation edges that would loop back from a boundary node into the
// same task are dropped, exactly as in the paper's drawings.
func ReduceFragments(g *Graph) *Graph {
	return g.reduceBy(
		func(g *Graph, n NodeID) (string, bool) {
			if g.Kind(n) == NodeFragment {
				return "f:" + string(g.Grain(n)), true
			}
			return "", false
		},
		func(g *Graph, from, to NodeID, kind EdgeKind) bool {
			// Drop boundary → own-task-fragment continuations (back-edges
			// into the merged node).
			fk := g.Kind(from)
			return kind == EdgeContinuation &&
				(fk == NodeFork || fk == NodeJoin) &&
				g.Kind(to) == NodeFragment && g.Grain(from) == g.Grain(to)
		},
	)
}

// ReduceForks combines the fork nodes of a task that precede the same join
// (Figure 3e): the group node carries one creation edge per child. Apply
// after ReduceFragments.
func ReduceForks(g *Graph) *Graph {
	// Key forks by (grain, index of the next join boundary at or after the
	// fork) using the trace's boundary lists.
	nextJoin := make(map[profile.GrainID][]int) // boundary idx -> next join idx
	for _, task := range g.Trace.Tasks {
		idx := make([]int, len(task.Boundaries))
		next := len(task.Boundaries) // "no further join"
		for i := len(task.Boundaries) - 1; i >= 0; i-- {
			if task.Boundaries[i].Kind == profile.BoundaryJoin {
				next = i
			}
			idx[i] = next
		}
		nextJoin[task.ID] = idx
	}
	return g.reduceBy(
		func(g *Graph, n NodeID) (string, bool) {
			if g.Kind(n) != NodeFork {
				return "", false
			}
			idx := nextJoin[g.Grain(n)]
			if g.Seq(n) >= len(idx) {
				return "", false
			}
			return fmt.Sprintf("k:%s:%d", g.Grain(n), idx[g.Seq(n)]), true
		},
		nil,
	)
}

// ReduceBookkeeping merges each thread's book-keeping nodes per loop
// (Figure 3h) and re-hangs that thread's chunks as siblings of the merged
// node: merged-bk → chunk continuations remain; chunk → bk back-edges are
// dropped so chunks appear executable in parallel, as they are by
// definition.
func ReduceBookkeeping(g *Graph) *Graph {
	return g.reduceBy(
		func(g *Graph, n NodeID) (string, bool) {
			if g.Kind(n) == NodeBookkeep {
				return fmt.Sprintf("b:%d:%d", g.Loop(n), g.Core(n)), true
			}
			return "", false
		},
		func(g *Graph, from, to NodeID, kind EdgeKind) bool {
			// Drop chunk → merged bookkeeping back-edges.
			return g.Kind(from) == NodeChunk && g.Kind(to) == NodeBookkeep &&
				g.Loop(from) == g.Loop(to) && g.Core(from) == g.Core(to)
		},
	)
}

// reduceBy builds a new graph where nodes sharing a group key merge into
// one node. dropEdge (optional) filters remapped edges; self-loops and
// duplicate edges are always removed.
func (g *Graph) reduceBy(groupKey func(*Graph, NodeID) (string, bool),
	dropEdge func(g *Graph, from, to NodeID, kind EdgeKind) bool) *Graph {

	ng := newGraph(g.Trace)
	newID := make([]NodeID, g.NumNodes())
	groups := make(map[string]NodeID)

	for n := NodeID(0); n < NodeID(g.NumNodes()); n++ {
		key, grouped := groupKey(g, n)
		if grouped {
			if rep, ok := groups[key]; ok {
				// Merge into the existing representative: accumulate the
				// aggregate columns and widen the time span.
				s := &ng.GraphStore
				s.weight[rep] += g.weight[n]
				s.counters[rep].Add(g.counters[n])
				s.members[rep] += g.members[n]
				nStart, nEnd := g.start[n], g.end[n]
				if nStart < s.start[rep] || s.start[rep] == 0 {
					if nStart != 0 || nEnd != 0 {
						if s.start[rep] == 0 && s.end[rep] == 0 {
							s.start[rep], s.end[rep] = nStart, nEnd
						} else if nStart < s.start[rep] {
							s.start[rep] = nStart
						}
					}
				}
				if nEnd > s.end[rep] {
					s.end[rep] = nEnd
				}
				newID[n] = rep
				continue
			}
		}
		cp := g.NodeAt(n)
		cp.X, cp.Y, cp.W, cp.H = 0, 0, 0, 0
		if grouped {
			cp.Label += "*"
		}
		nn := ng.appendNode(cp)
		newID[n] = nn
		if grouped {
			groups[key] = nn
		}
	}

	type edgeKey struct {
		from, to NodeID
		kind     EdgeKind
	}
	seen := make(map[edgeKey]bool)
	for i := 0; i < g.NumEdges(); i++ {
		oldFrom, oldTo, kind := g.EdgeFrom(i), g.EdgeTo(i), g.EdgeKindAt(i)
		from, to := newID[oldFrom], newID[oldTo]
		if from == to {
			continue
		}
		if dropEdge != nil && dropEdge(g, oldFrom, oldTo, kind) {
			continue
		}
		k := edgeKey{from, to, kind}
		if seen[k] {
			continue
		}
		seen[k] = true
		ng.appendEdge(from, to, kind)
	}

	for id, nid := range g.FirstNode {
		ng.FirstNode[id] = newID[nid]
	}
	for id, nid := range g.LastNode {
		ng.LastNode[id] = newID[nid]
	}
	return ng
}
