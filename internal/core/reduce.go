package core

import (
	"fmt"

	"graingraph/internal/profile"
)

// Reductions group nodes to speed up rendering (paper §3.1, Figure 3d-e,h).
// Grouped nodes retain the aggregate weights of their members (Weight,
// Counters, Members); Start/End span the members' extent.
//
// The canonical pipeline is ReduceAll = fragments → forks → book-keeping,
// matching the paper's presentation order.

// ReduceAll applies fragment, fork and book-keeping reduction in order.
func ReduceAll(g *Graph) *Graph {
	return ReduceBookkeeping(ReduceForks(ReduceFragments(g)))
}

// ReduceFragments merges each task's fragments into a single node
// (Figure 3d). Fork and join nodes remain, hanging off the merged node;
// the continuation edges that would loop back from a boundary node into the
// same task are dropped, exactly as in the paper's drawings.
func ReduceFragments(g *Graph) *Graph {
	return g.reduceBy(
		func(n *Node) (string, bool) {
			if n.Kind == NodeFragment {
				return "f:" + string(n.Grain), true
			}
			return "", false
		},
		func(from, to *Node, kind EdgeKind) bool {
			// Drop boundary → own-task-fragment continuations (back-edges
			// into the merged node).
			return kind == EdgeContinuation &&
				(from.Kind == NodeFork || from.Kind == NodeJoin) &&
				to.Kind == NodeFragment && from.Grain == to.Grain
		},
	)
}

// ReduceForks combines the fork nodes of a task that precede the same join
// (Figure 3e): the group node carries one creation edge per child. Apply
// after ReduceFragments.
func ReduceForks(g *Graph) *Graph {
	// Key forks by (grain, index of the next join boundary at or after the
	// fork) using the trace's boundary lists.
	nextJoin := make(map[profile.GrainID][]int) // boundary idx -> next join idx
	for _, task := range g.Trace.Tasks {
		idx := make([]int, len(task.Boundaries))
		next := len(task.Boundaries) // "no further join"
		for i := len(task.Boundaries) - 1; i >= 0; i-- {
			if task.Boundaries[i].Kind == profile.BoundaryJoin {
				next = i
			}
			idx[i] = next
		}
		nextJoin[task.ID] = idx
	}
	return g.reduceBy(
		func(n *Node) (string, bool) {
			if n.Kind != NodeFork {
				return "", false
			}
			idx := nextJoin[n.Grain]
			if n.Seq >= len(idx) {
				return "", false
			}
			return fmt.Sprintf("k:%s:%d", n.Grain, idx[n.Seq]), true
		},
		nil,
	)
}

// ReduceBookkeeping merges each thread's book-keeping nodes per loop
// (Figure 3h) and re-hangs that thread's chunks as siblings of the merged
// node: merged-bk → chunk continuations remain; chunk → bk back-edges are
// dropped so chunks appear executable in parallel, as they are by
// definition.
func ReduceBookkeeping(g *Graph) *Graph {
	return g.reduceBy(
		func(n *Node) (string, bool) {
			if n.Kind == NodeBookkeep {
				return fmt.Sprintf("b:%d:%d", n.Loop, n.Core), true
			}
			return "", false
		},
		func(from, to *Node, kind EdgeKind) bool {
			// Drop chunk → merged bookkeeping back-edges.
			return from.Kind == NodeChunk && to.Kind == NodeBookkeep &&
				from.Loop == to.Loop && from.Core == to.Core
		},
	)
}

// reduceBy builds a new graph where nodes sharing a group key merge into
// one node. dropEdge (optional) filters remapped edges; self-loops and
// duplicate edges are always removed.
func (g *Graph) reduceBy(groupKey func(*Node) (string, bool), dropEdge func(from, to *Node, kind EdgeKind) bool) *Graph {
	ng := newGraph(g.Trace)
	newID := make([]NodeID, len(g.Nodes))
	groups := make(map[string]NodeID)

	for _, n := range g.Nodes {
		key, grouped := groupKey(n)
		if grouped {
			if rep, ok := groups[key]; ok {
				// Merge into the existing representative.
				r := ng.Nodes[rep]
				r.Weight += n.Weight
				r.Counters.Add(n.Counters)
				r.Members += n.Members
				if n.Start < r.Start || r.Start == 0 {
					if n.Start != 0 || n.End != 0 {
						if r.Start == 0 && r.End == 0 {
							r.Start, r.End = n.Start, n.End
						} else if n.Start < r.Start {
							r.Start = n.Start
						}
					}
				}
				if n.End > r.End {
					r.End = n.End
				}
				newID[n.ID] = rep
				continue
			}
		}
		cp := *n
		cp.X, cp.Y, cp.W, cp.H = 0, 0, 0, 0
		nn := ng.addNode(cp)
		newID[n.ID] = nn.ID
		if grouped {
			groups[key] = nn.ID
			nn.Label = nn.Label + "*"
		}
	}

	type edgeKey struct {
		from, to NodeID
		kind     EdgeKind
	}
	seen := make(map[edgeKey]bool)
	for i := range g.Edges {
		e := &g.Edges[i]
		from, to := newID[e.From], newID[e.To]
		if from == to {
			continue
		}
		if dropEdge != nil && dropEdge(g.Nodes[e.From], g.Nodes[e.To], e.Kind) {
			continue
		}
		k := edgeKey{from, to, e.Kind}
		if seen[k] {
			continue
		}
		seen[k] = true
		ng.addEdge(from, to, e.Kind)
	}

	for id, nid := range g.FirstNode {
		ng.FirstNode[id] = newID[nid]
	}
	for id, nid := range g.LastNode {
		ng.LastNode[id] = newID[nid]
	}
	return ng
}
