package core

import (
	"graingraph/internal/cache"
	"graingraph/internal/profile"
)

// GraphStore is the columnar (struct-of-arrays) node and edge storage
// behind Graph. Every node attribute lives in its own parallel slice
// indexed by NodeID, and every edge attribute in a slice indexed by edge
// index; adjacency is a CSR-style pair of flat arrays (offsets + edge
// indices) built lazily. Compared to the previous pointer-per-node
// []*Node layout this removes one heap object and one pointer chase per
// node on the hot critical-path and reduction loops, keeps same-typed
// attributes densely packed for scans that touch only a column or two
// (weights, kinds), and makes a finished graph cheaply shareable across
// concurrent analyses — readers touch disjoint immutable slices.
//
// All mutation happens through appendNode/appendEdge plus the narrow
// setters (critical flags, labels, geometry); consumers outside this
// package read through the accessor methods, which are trivially
// inlinable single-slice loads.
type GraphStore struct {
	// Node columns, indexed by NodeID.
	kind     []uint8
	grain    []profile.GrainID
	loop     []int32
	seq      []int32
	label    []string
	start    []profile.Time
	end      []profile.Time
	weight   []profile.Time
	core     []int32
	counters []cache.Counters
	members  []int32
	critical []bool
	// Layout geometry columns (set by Layout, read by the exporters).
	geoX, geoY, geoW, geoH []float64

	// Edge columns, indexed by edge index.
	edgeFrom     []int32
	edgeTo       []int32
	edgeKind     []uint8
	edgeCritical []bool

	// CSR adjacency: node n's outgoing edge indices are
	// outIdx[outOff[n]:outOff[n+1]] (likewise inOff/inIdx for incoming).
	// Built lazily by Out/In; nil when stale.
	outOff, outIdx []int32
	inOff, inIdx   []int32

	// Topological level index: level l's nodes (ascending NodeID) are
	// levelNodes[levelOff[l]:levelOff[l+1]], and nodeLevel[n] is node n's
	// own level. Built lazily by NumLevels / LevelNodes / Level (see
	// levels.go); nil when stale.
	levelOff, levelNodes []int32
	nodeLevel            []int32
}

// NumNodes returns the node count.
func (s *GraphStore) NumNodes() int { return len(s.kind) }

// NumEdges returns the edge count.
func (s *GraphStore) NumEdges() int { return len(s.edgeFrom) }

// Kind returns node n's kind.
func (s *GraphStore) Kind(n NodeID) NodeKind { return NodeKind(s.kind[n]) }

// Grain returns node n's owning grain ID.
func (s *GraphStore) Grain(n NodeID) profile.GrainID { return s.grain[n] }

// Loop returns node n's loop ID (meaningful for bookkeep/chunk nodes and
// loop-expanded fork/join nodes).
func (s *GraphStore) Loop(n NodeID) profile.LoopID { return profile.LoopID(s.loop[n]) }

// Seq returns node n's sibling sequence number.
func (s *GraphStore) Seq(n NodeID) int { return int(s.seq[n]) }

// Label returns node n's display label.
func (s *GraphStore) Label(n NodeID) string { return s.label[n] }

// Start returns node n's start time.
func (s *GraphStore) Start(n NodeID) profile.Time { return s.start[n] }

// End returns node n's end time.
func (s *GraphStore) End(n NodeID) profile.Time { return s.end[n] }

// Weight returns node n's time contribution.
func (s *GraphStore) Weight(n NodeID) profile.Time { return s.weight[n] }

// Core returns the core that executed node n.
func (s *GraphStore) Core(n NodeID) int { return int(s.core[n]) }

// CountersAt returns node n's hardware-counter readings.
func (s *GraphStore) CountersAt(n NodeID) cache.Counters { return s.counters[n] }

// Members returns how many original nodes a grouped node represents.
func (s *GraphStore) Members(n NodeID) int { return int(s.members[n]) }

// Critical reports whether node n lies on the marked critical path.
func (s *GraphStore) Critical(n NodeID) bool { return s.critical[n] }

// SetCritical marks (or clears) node n's critical-path membership.
func (s *GraphStore) SetCritical(n NodeID, v bool) { s.critical[n] = v }

// Geometry returns node n's layout rectangle.
func (s *GraphStore) Geometry(n NodeID) (x, y, w, h float64) {
	return s.geoX[n], s.geoY[n], s.geoW[n], s.geoH[n]
}

// SetGeometry assigns node n's layout rectangle.
func (s *GraphStore) SetGeometry(n NodeID, x, y, w, h float64) {
	s.geoX[n], s.geoY[n], s.geoW[n], s.geoH[n] = x, y, w, h
}

// NodeAt materializes node n as a Node value — the convenient row view
// for cold paths (export, tests). Hot loops should read the individual
// columns instead.
func (s *GraphStore) NodeAt(n NodeID) Node {
	return Node{
		ID:       n,
		Kind:     s.Kind(n),
		Grain:    s.grain[n],
		Loop:     s.Loop(n),
		Seq:      s.Seq(n),
		Label:    s.label[n],
		Start:    s.start[n],
		End:      s.end[n],
		Weight:   s.weight[n],
		Core:     s.Core(n),
		Counters: s.counters[n],
		Members:  s.Members(n),
		Critical: s.critical[n],
		X:        s.geoX[n],
		Y:        s.geoY[n],
		W:        s.geoW[n],
		H:        s.geoH[n],
	}
}

// EdgeAt materializes edge i as an Edge value.
func (s *GraphStore) EdgeAt(i int) Edge {
	return Edge{
		From:     NodeID(s.edgeFrom[i]),
		To:       NodeID(s.edgeTo[i]),
		Kind:     EdgeKind(s.edgeKind[i]),
		Critical: s.edgeCritical[i],
	}
}

// EdgeFrom returns edge i's source node.
func (s *GraphStore) EdgeFrom(i int) NodeID { return NodeID(s.edgeFrom[i]) }

// EdgeTo returns edge i's target node.
func (s *GraphStore) EdgeTo(i int) NodeID { return NodeID(s.edgeTo[i]) }

// EdgeKindAt returns edge i's kind.
func (s *GraphStore) EdgeKindAt(i int) EdgeKind { return EdgeKind(s.edgeKind[i]) }

// EdgeCritical reports whether edge i lies on the marked critical path.
func (s *GraphStore) EdgeCritical(i int) bool { return s.edgeCritical[i] }

// SetEdgeCritical marks (or clears) edge i's critical-path membership.
func (s *GraphStore) SetEdgeCritical(i int, v bool) { s.edgeCritical[i] = v }

// Weights returns a copy of the node weight column, indexed by NodeID —
// the starting point for what-if weight transformations.
func (s *GraphStore) Weights() []profile.Time {
	w := make([]profile.Time, len(s.weight))
	copy(w, s.weight)
	return w
}

// appendNode appends a node row and returns its ID. A zero Members is
// normalized to 1 (an unreduced node represents itself).
// Reserve grows the node and edge columns to hold at least nodes and edges
// entries without reallocating. Build calls it with its node/edge estimate
// so million-node assembly grows each column once instead of ~20 doublings
// per column (slice memmove and the GC scans of half-dead backing arrays
// dominated large builds).
func (s *GraphStore) Reserve(nodes, edges int) {
	if n := nodes - cap(s.kind); n > 0 {
		s.kind = append(make([]uint8, 0, nodes), s.kind...)
		s.grain = append(make([]profile.GrainID, 0, nodes), s.grain...)
		s.loop = append(make([]int32, 0, nodes), s.loop...)
		s.seq = append(make([]int32, 0, nodes), s.seq...)
		s.label = append(make([]string, 0, nodes), s.label...)
		s.start = append(make([]profile.Time, 0, nodes), s.start...)
		s.end = append(make([]profile.Time, 0, nodes), s.end...)
		s.weight = append(make([]profile.Time, 0, nodes), s.weight...)
		s.core = append(make([]int32, 0, nodes), s.core...)
		s.counters = append(make([]cache.Counters, 0, nodes), s.counters...)
		s.members = append(make([]int32, 0, nodes), s.members...)
		s.critical = append(make([]bool, 0, nodes), s.critical...)
		s.geoX = append(make([]float64, 0, nodes), s.geoX...)
		s.geoY = append(make([]float64, 0, nodes), s.geoY...)
		s.geoW = append(make([]float64, 0, nodes), s.geoW...)
		s.geoH = append(make([]float64, 0, nodes), s.geoH...)
	}
	if n := edges - cap(s.edgeFrom); n > 0 {
		s.edgeFrom = append(make([]int32, 0, edges), s.edgeFrom...)
		s.edgeTo = append(make([]int32, 0, edges), s.edgeTo...)
		s.edgeKind = append(make([]uint8, 0, edges), s.edgeKind...)
		s.edgeCritical = append(make([]bool, 0, edges), s.edgeCritical...)
	}
}

// AddNode appends a node row (the ID field is ignored and assigned fresh)
// and returns its ID. Graph shadows this with its own AddNode; the store
// method serves callers assembling a bare GraphStore.
func (s *GraphStore) AddNode(n Node) NodeID { return s.appendNode(n) }

// AddEdge appends an edge row.
func (s *GraphStore) AddEdge(from, to NodeID, kind EdgeKind) { s.appendEdge(from, to, kind) }

func (s *GraphStore) appendNode(n Node) NodeID {
	id := NodeID(len(s.kind))
	if n.Members == 0 {
		n.Members = 1
	}
	s.kind = append(s.kind, uint8(n.Kind))
	s.grain = append(s.grain, n.Grain)
	s.loop = append(s.loop, int32(n.Loop))
	s.seq = append(s.seq, int32(n.Seq))
	s.label = append(s.label, n.Label)
	s.start = append(s.start, n.Start)
	s.end = append(s.end, n.End)
	s.weight = append(s.weight, n.Weight)
	s.core = append(s.core, int32(n.Core))
	s.counters = append(s.counters, n.Counters)
	s.members = append(s.members, int32(n.Members))
	s.critical = append(s.critical, n.Critical)
	s.geoX = append(s.geoX, n.X)
	s.geoY = append(s.geoY, n.Y)
	s.geoW = append(s.geoW, n.W)
	s.geoH = append(s.geoH, n.H)
	s.invalidateCSR()
	return id
}

// appendEdge appends an edge row.
func (s *GraphStore) appendEdge(from, to NodeID, kind EdgeKind) {
	s.edgeFrom = append(s.edgeFrom, int32(from))
	s.edgeTo = append(s.edgeTo, int32(to))
	s.edgeKind = append(s.edgeKind, uint8(kind))
	s.edgeCritical = append(s.edgeCritical, false)
	s.invalidateCSR()
}

// invalidateCSR drops the adjacency and level arrays; they rebuild on next
// use.
func (s *GraphStore) invalidateCSR() {
	s.outOff, s.outIdx = nil, nil
	s.inOff, s.inIdx = nil, nil
	s.levelOff, s.levelNodes = nil, nil
	s.nodeLevel = nil
}

// buildCSR (re)builds both adjacency indexes as flat offset/index arrays:
// two passes over the edge columns, four allocations total, independent of
// node degree distribution.
func (s *GraphStore) buildCSR() {
	n, e := len(s.kind), len(s.edgeFrom)
	outOff := make([]int32, n+1)
	inOff := make([]int32, n+1)
	for i := 0; i < e; i++ {
		outOff[s.edgeFrom[i]+1]++
		inOff[s.edgeTo[i]+1]++
	}
	for i := 0; i < n; i++ {
		outOff[i+1] += outOff[i]
		inOff[i+1] += inOff[i]
	}
	outIdx := make([]int32, e)
	inIdx := make([]int32, e)
	outCur := make([]int32, n)
	inCur := make([]int32, n)
	for i := 0; i < e; i++ {
		f, t := s.edgeFrom[i], s.edgeTo[i]
		outIdx[outOff[f]+outCur[f]] = int32(i)
		outCur[f]++
		inIdx[inOff[t]+inCur[t]] = int32(i)
		inCur[t]++
	}
	s.outOff, s.outIdx = outOff, outIdx
	s.inOff, s.inIdx = inOff, inIdx
}

// Out returns the indexes of n's outgoing edges (pass them to EdgeTo /
// EdgeKindAt / EdgeAt). The returned slice aliases the CSR arrays: read,
// don't mutate. Building the index is not goroutine-safe; concurrent
// readers must force it first (call Out once, or Topological) exactly as
// the what-if engine does.
func (s *GraphStore) Out(n NodeID) []int32 {
	if s.outOff == nil {
		s.buildCSR()
	}
	return s.outIdx[s.outOff[n]:s.outOff[n+1]]
}

// In returns the indexes of n's incoming edges, with the same aliasing and
// concurrency contract as Out.
func (s *GraphStore) In(n NodeID) []int32 {
	if s.inOff == nil {
		s.buildCSR()
	}
	return s.inIdx[s.inOff[n]:s.inOff[n+1]]
}
