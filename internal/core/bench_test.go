package core_test

import (
	"testing"

	. "graingraph/internal/core"
	"graingraph/internal/profile"
	"graingraph/internal/rts"
)

// benchTrace profiles a moderately deep fork-join tree (2^depth leaf
// tasks), the shape Build spends most of its time on when analyzing the
// recursive BOTS programs.
func benchTrace(depth int) *profile.Trace {
	var tree func(c rts.Ctx, d int)
	tree = func(c rts.Ctx, d int) {
		if d == 0 {
			c.Compute(500)
			return
		}
		c.Spawn(profile.Loc("bench.go", 10+d, "left"), func(c rts.Ctx) { tree(c, d-1) })
		c.Spawn(profile.Loc("bench.go", 20+d, "right"), func(c rts.Ctx) { tree(c, d-1) })
		c.Compute(100)
		c.TaskWait()
	}
	return rts.Run(rts.Config{Program: "bench-tree", Cores: 48, Seed: 7}, func(c rts.Ctx) {
		tree(c, depth)
	})
}

// BenchmarkBuild measures grain-graph construction (node/edge assembly plus
// the critical-path pass) from an 8k-task trace.
func BenchmarkBuild(b *testing.B) {
	tr := benchTrace(12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := Build(tr)
		if g == nil {
			b.Fatal("nil graph")
		}
	}
}
