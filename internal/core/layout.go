package core

import "sort"

// Layout geometry constants (points, yEd-friendly).
const (
	colWidth   = 70.0
	rowGap     = 18.0
	grainWidth = 34.0
	ctrlSize   = 14.0 // fork/join/bookkeep node size
	minGrainH  = 14.0
	maxGrainH  = 260.0
)

// Layout assigns X/Y/W/H to every node so the graph renders with children
// local to their parent and fragments aligned in sequence, edges never
// crossing — the properties the paper requires to convey recursive task
// creation. Placement uses creation edges only; timing is deliberately not
// a constraint (paper §3.1).
func Layout(g *Graph) {
	if g.NumNodes() == 0 {
		return
	}
	scale := g.heightScale()
	s := &g.GraphStore

	// Node sizes first.
	for n := 0; n < g.NumNodes(); n++ {
		switch NodeKind(s.kind[n]) {
		case NodeFragment, NodeChunk:
			h := float64(s.weight[n]) / scale
			if h < minGrainH {
				h = minGrainH
			}
			if h > maxGrainH {
				h = maxGrainH
			}
			s.geoW[n], s.geoH[n] = grainWidth, h
		default:
			s.geoW[n], s.geoH[n] = ctrlSize, ctrlSize
		}
	}

	// continuation successor(s) and creation children per node.
	contOut := make(map[NodeID][]NodeID)
	createOut := make(map[NodeID][]NodeID)
	hasIn := make([]bool, g.NumNodes())
	for i := 0; i < g.NumEdges(); i++ {
		from, to := g.EdgeFrom(i), g.EdgeTo(i)
		switch g.EdgeKindAt(i) {
		case EdgeContinuation:
			contOut[from] = append(contOut[from], to)
			hasIn[to] = true
		case EdgeCreation:
			createOut[from] = append(createOut[from], to)
			hasIn[to] = true
		case EdgeJoin:
			// join edges do not affect placement
		}
	}
	// Deterministic child ordering: by target node ID (creation order).
	for _, m := range []map[NodeID][]NodeID{contOut, createOut} {
		for k := range m {
			kids := m[k]
			sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		}
	}

	nextCol := 0
	visited := make([]bool, g.NumNodes())

	// layoutChain places the continuation chain rooted at n into a fresh
	// column starting at y, recursing into children to the right.
	var layoutChain func(n NodeID, y float64)
	layoutChain = func(n NodeID, y float64) {
		col := nextCol
		nextCol++
		x := float64(col) * colWidth
		for {
			if visited[n] {
				return
			}
			visited[n] = true
			s.geoX[n], s.geoY[n] = x, y
			y += s.geoH[n] + rowGap

			childY := s.geoY[n] + s.geoH[n] + rowGap
			for _, child := range createOut[n] {
				if !visited[child] {
					layoutChain(child, childY)
				}
			}
			succ := contOut[n]
			if len(succ) == 0 {
				return
			}
			// First successor continues the column; extra continuation
			// targets (reduced book-keeping fan-out) become side columns.
			for _, extra := range succ[1:] {
				if !visited[extra] {
					layoutChain(extra, childY)
				}
			}
			n = succ[0]
		}
	}

	// Roots: nodes without incoming placement edges, in ID order.
	for i := range visited {
		if !hasIn[i] && !visited[i] {
			layoutChain(NodeID(i), 0)
		}
	}
	// Any leftovers (shouldn't happen in well-formed graphs).
	for i := range visited {
		if !visited[i] {
			layoutChain(NodeID(i), 0)
		}
	}
}

// heightScale returns cycles-per-point so that the median grain renders at
// a readable height.
func (g *Graph) heightScale() float64 {
	var weights []float64
	for n := 0; n < g.NumNodes(); n++ {
		k := NodeKind(g.kind[n])
		if (k == NodeFragment || k == NodeChunk) && g.weight[n] > 0 {
			weights = append(weights, float64(g.weight[n]))
		}
	}
	if len(weights) == 0 {
		return 1
	}
	sort.Float64s(weights)
	median := weights[len(weights)/2]
	scale := median / 40.0 // median grain ≈ 40pt tall
	if scale < 1 {
		scale = 1
	}
	return scale
}
