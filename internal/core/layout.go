package core

import "sort"

// Layout geometry constants (points, yEd-friendly).
const (
	colWidth   = 70.0
	rowGap     = 18.0
	grainWidth = 34.0
	ctrlSize   = 14.0 // fork/join/bookkeep node size
	minGrainH  = 14.0
	maxGrainH  = 260.0
)

// Layout assigns X/Y/W/H to every node so the graph renders with children
// local to their parent and fragments aligned in sequence, edges never
// crossing — the properties the paper requires to convey recursive task
// creation. Placement uses creation edges only; timing is deliberately not
// a constraint (paper §3.1).
func Layout(g *Graph) {
	if len(g.Nodes) == 0 {
		return
	}
	scale := g.heightScale()

	// Node sizes first.
	for _, n := range g.Nodes {
		switch n.Kind {
		case NodeFragment, NodeChunk:
			h := float64(n.Weight) / scale
			if h < minGrainH {
				h = minGrainH
			}
			if h > maxGrainH {
				h = maxGrainH
			}
			n.W, n.H = grainWidth, h
		default:
			n.W, n.H = ctrlSize, ctrlSize
		}
	}

	// continuation successor(s) and creation children per node.
	contOut := make(map[NodeID][]NodeID)
	createOut := make(map[NodeID][]NodeID)
	hasIn := make([]bool, len(g.Nodes))
	for i := range g.Edges {
		e := &g.Edges[i]
		switch e.Kind {
		case EdgeContinuation:
			contOut[e.From] = append(contOut[e.From], e.To)
			hasIn[e.To] = true
		case EdgeCreation:
			createOut[e.From] = append(createOut[e.From], e.To)
			hasIn[e.To] = true
		case EdgeJoin:
			// join edges do not affect placement
		}
	}
	// Deterministic child ordering: by target node ID (creation order).
	for _, m := range []map[NodeID][]NodeID{contOut, createOut} {
		for k := range m {
			s := m[k]
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		}
	}

	nextCol := 0
	visited := make([]bool, len(g.Nodes))

	// layoutChain places the continuation chain rooted at n into a fresh
	// column starting at y, recursing into children to the right.
	var layoutChain func(n NodeID, y float64)
	layoutChain = func(n NodeID, y float64) {
		col := nextCol
		nextCol++
		x := float64(col) * colWidth
		for {
			node := g.Nodes[n]
			if visited[n] {
				return
			}
			visited[n] = true
			node.X, node.Y = x, y
			y += node.H + rowGap

			childY := node.Y + node.H + rowGap
			for _, child := range createOut[n] {
				if !visited[child] {
					layoutChain(child, childY)
				}
			}
			succ := contOut[n]
			if len(succ) == 0 {
				return
			}
			// First successor continues the column; extra continuation
			// targets (reduced book-keeping fan-out) become side columns.
			for _, extra := range succ[1:] {
				if !visited[extra] {
					layoutChain(extra, childY)
				}
			}
			n = succ[0]
		}
	}

	// Roots: nodes without incoming placement edges, in ID order.
	for i := range g.Nodes {
		if !hasIn[i] && !visited[i] {
			layoutChain(NodeID(i), 0)
		}
	}
	// Any leftovers (shouldn't happen in well-formed graphs).
	for i := range g.Nodes {
		if !visited[i] {
			layoutChain(NodeID(i), 0)
		}
	}
}

// heightScale returns cycles-per-point so that the median grain renders at
// a readable height.
func (g *Graph) heightScale() float64 {
	var weights []float64
	for _, n := range g.Nodes {
		if (n.Kind == NodeFragment || n.Kind == NodeChunk) && n.Weight > 0 {
			weights = append(weights, float64(n.Weight))
		}
	}
	if len(weights) == 0 {
		return 1
	}
	sort.Float64s(weights)
	median := weights[len(weights)/2]
	scale := median / 40.0 // median grain ≈ 40pt tall
	if scale < 1 {
		scale = 1
	}
	return scale
}
