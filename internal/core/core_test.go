package core_test

import (
	"testing"

	. "graingraph/internal/core"
	"graingraph/internal/profile"
	"graingraph/internal/rts"
)

func loc(line int, fn string) profile.SrcLoc { return profile.Loc("test.go", line, fn) }

// fig3aTrace runs the paper's Figure 3a program: task foo creates bar and
// baz with computation in between and synchronizes with both.
func fig3aTrace(t *testing.T, cores int) *profile.Trace {
	t.Helper()
	return rts.Run(rts.Config{Program: "fig3a", Cores: cores, Seed: 7}, func(c rts.Ctx) {
		c.Compute(1000) // foo fragment 1
		c.Spawn(loc(10, "bar"), func(c rts.Ctx) { c.Compute(4000) })
		c.Compute(1000) // foo fragment 2
		c.Spawn(loc(11, "baz"), func(c rts.Ctx) { c.Compute(3000) })
		c.Compute(1000) // foo fragment 3
		c.TaskWait()
		c.Compute(1000) // foo fragment 4
	})
}

// fig3bTrace runs the paper's Figure 3b program: a 20-iteration loop in
// chunks of 4 on two threads.
func fig3bTrace(t *testing.T) *profile.Trace {
	t.Helper()
	return rts.Run(rts.Config{Program: "fig3b", Cores: 2, Seed: 7}, func(c rts.Ctx) {
		c.For(loc(20, "loop"), 0, 20,
			rts.ForOpt{Schedule: profile.ScheduleDynamic, Chunk: 4},
			func(c rts.Ctx, lo, hi int) { c.Compute(uint64(hi-lo) * 1000) })
	})
}

func countKinds(g *Graph) map[NodeKind]int {
	m := map[NodeKind]int{}
	for n := NodeID(0); n < NodeID(g.NumNodes()); n++ {
		m[g.Kind(n)]++
	}
	return m
}

func countEdgeKinds(g *Graph) map[EdgeKind]int {
	m := map[EdgeKind]int{}
	for i := 0; i < g.NumEdges(); i++ {
		m[g.EdgeKindAt(i)]++
	}
	return m
}

func TestBuildFig3aStructure(t *testing.T) {
	tr := fig3aTrace(t, 2)
	g := Build(tr)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	kinds := countKinds(g)
	// foo: 4 fragments; bar, baz: 1 each = 6 fragments, 2 forks, 1 join.
	if kinds[NodeFragment] != 6 {
		t.Errorf("fragments = %d, want 6", kinds[NodeFragment])
	}
	if kinds[NodeFork] != 2 {
		t.Errorf("forks = %d, want 2", kinds[NodeFork])
	}
	if kinds[NodeJoin] != 1 {
		t.Errorf("joins = %d, want 1", kinds[NodeJoin])
	}
	ek := countEdgeKinds(g)
	if ek[EdgeCreation] != 2 {
		t.Errorf("creation edges = %d, want 2", ek[EdgeCreation])
	}
	if ek[EdgeJoin] != 2 {
		t.Errorf("join edges = %d, want 2", ek[EdgeJoin])
	}
	// Continuations: foo chain F0-k1-F1-k2-F2-j-F3 = 6.
	if ek[EdgeContinuation] != 6 {
		t.Errorf("continuation edges = %d, want 6", ek[EdgeContinuation])
	}
	if g.NumGrainNodes() != 6 {
		t.Errorf("grain nodes = %d, want 6", g.NumGrainNodes())
	}
}

func TestFragmentNodesCarryWeights(t *testing.T) {
	tr := fig3aTrace(t, 2)
	g := Build(tr)
	bar := g.NodeAt(g.FirstNode["R.0"])
	if bar.Kind != NodeFragment || bar.Weight != 4000 {
		t.Errorf("bar node = kind %v weight %d, want fragment/4000", bar.Kind, bar.Weight)
	}
	// Fork nodes carry the child's creation cost.
	for n := NodeID(0); n < NodeID(g.NumNodes()); n++ {
		if g.Kind(n) == NodeFork && g.Weight(n) == 0 {
			t.Errorf("fork node %d has zero weight", n)
		}
	}
}

func TestBuildFig3bLoopStructure(t *testing.T) {
	tr := fig3bTrace(t)
	g := Build(tr)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	kinds := countKinds(g)
	if kinds[NodeChunk] != 5 {
		t.Errorf("chunks = %d, want 5 (20 iters / chunk 4)", kinds[NodeChunk])
	}
	// Each chunk is preceded by a bookkeep node; each thread has one final
	// bookkeep: 5 + 2 = 7.
	if kinds[NodeBookkeep] != 7 {
		t.Errorf("bookkeeps = %d, want 7", kinds[NodeBookkeep])
	}
	// Loop fork + loop join, master has 2 fragments (before/after loop).
	if kinds[NodeFork] != 1 || kinds[NodeJoin] != 1 {
		t.Errorf("fork/join = %d/%d, want 1/1", kinds[NodeFork], kinds[NodeJoin])
	}
	if kinds[NodeFragment] != 2 {
		t.Errorf("master fragments = %d, want 2", kinds[NodeFragment])
	}
	ek := countEdgeKinds(g)
	// One creation edge per participating thread chain.
	if ek[EdgeCreation] != 2 {
		t.Errorf("creation edges = %d, want 2", ek[EdgeCreation])
	}
	// One join edge per thread (final bookkeep → loop join).
	if ek[EdgeJoin] != 2 {
		t.Errorf("join edges = %d, want 2", ek[EdgeJoin])
	}
}

func TestChunkChainAlternates(t *testing.T) {
	tr := fig3bTrace(t)
	g := Build(tr)
	// Walk each thread chain from the loop fork: bookkeep and chunk nodes
	// must alternate, ending with a bookkeep into the join.
	fork := NodeID(-1)
	for n := NodeID(0); n < NodeID(g.NumNodes()); n++ {
		if g.Kind(n) == NodeFork {
			fork = n
		}
	}
	chains := 0
	for _, ei := range g.Out(fork) {
		e := g.EdgeAt(int(ei))
		if e.Kind != EdgeCreation {
			continue
		}
		chains++
		cur := e.To
		wantBk := true
		for {
			n := g.NodeAt(cur)
			if wantBk && n.Kind != NodeBookkeep {
				t.Fatalf("expected bookkeep, got %v", n.Kind)
			}
			if !wantBk && n.Kind != NodeChunk {
				t.Fatalf("expected chunk, got %v", n.Kind)
			}
			var next NodeID = -1
			done := false
			for _, oi := range g.Out(cur) {
				oe := g.EdgeAt(int(oi))
				if oe.Kind == EdgeContinuation {
					next = oe.To
				}
				if oe.Kind == EdgeJoin {
					done = true
				}
			}
			if done {
				if n.Kind != NodeBookkeep {
					t.Fatalf("chain must end at a bookkeep node, got %v", n.Kind)
				}
				break
			}
			if next < 0 {
				t.Fatal("chain broke without reaching the join")
			}
			cur = next
			wantBk = !wantBk
		}
	}
	if chains != 2 {
		t.Fatalf("chains = %d, want 2", chains)
	}
}

func TestGraphIndependentOfMachineSize(t *testing.T) {
	// For a deterministic task-based program, the grain graph is
	// independent of machine size (paper §3.1): node and edge multisets by
	// grain must match between 1-core and 8-core executions.
	prog := func(c rts.Ctx) {
		var rec func(c rts.Ctx, d int)
		rec = func(c rts.Ctx, d int) {
			if d == 0 {
				c.Compute(500)
				return
			}
			c.Spawn(loc(1, "a"), func(c rts.Ctx) { rec(c, d-1) })
			c.Spawn(loc(2, "b"), func(c rts.Ctx) { rec(c, d-1) })
			c.TaskWait()
		}
		rec(c, 4)
	}
	g1 := Build(rts.Run(rts.Config{Program: "p", Cores: 1, Seed: 1}, prog))
	g8 := Build(rts.Run(rts.Config{Program: "p", Cores: 8, Seed: 99}, prog))
	if g1.NumNodes() != g8.NumNodes() || g1.NumEdges() != g8.NumEdges() {
		t.Fatalf("graph shape differs: %d/%d nodes, %d/%d edges",
			g1.NumNodes(), g8.NumNodes(), g1.NumEdges(), g8.NumEdges())
	}
	sig := func(g *Graph) map[string]int {
		m := map[string]int{}
		for n := NodeID(0); n < NodeID(g.NumNodes()); n++ {
			m[string(g.Grain(n))+"|"+g.Kind(n).String()]++
		}
		return m
	}
	s1, s8 := sig(g1), sig(g8)
	for k, v := range s1 {
		if s8[k] != v {
			t.Errorf("signature mismatch at %s: %d vs %d", k, v, s8[k])
		}
	}
}

func TestReduceFragments(t *testing.T) {
	tr := fig3aTrace(t, 2)
	g := Build(tr)
	rg := ReduceFragments(g)
	if err := rg.Validate(); err != nil {
		t.Fatalf("Validate reduced: %v", err)
	}
	kinds := countKinds(rg)
	// foo's 4 fragments merge to 1; bar and baz stay single: 3 fragments.
	if kinds[NodeFragment] != 3 {
		t.Errorf("reduced fragments = %d, want 3", kinds[NodeFragment])
	}
	// Aggregated weight preserved.
	foo := rg.NodeAt(rg.FirstNode[profile.RootID])
	if foo.Members != 4 {
		t.Errorf("merged foo members = %d, want 4", foo.Members)
	}
	if foo.Weight != 4000 { // 4 fragments x 1000
		t.Errorf("merged foo weight = %d, want 4000", foo.Weight)
	}
	// Total grain weight is conserved by reduction.
	var wg, wr uint64
	for n := NodeID(0); n < NodeID(g.NumNodes()); n++ {
		wg += g.Weight(n)
	}
	for n := NodeID(0); n < NodeID(rg.NumNodes()); n++ {
		wr += rg.Weight(n)
	}
	if wg != wr {
		t.Errorf("reduction changed total weight: %d -> %d", wg, wr)
	}
}

func TestReduceForks(t *testing.T) {
	tr := fig3aTrace(t, 2)
	rg := ReduceForks(ReduceFragments(Build(tr)))
	if err := rg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	kinds := countKinds(rg)
	// Both forks precede the same join: merged into one.
	if kinds[NodeFork] != 1 {
		t.Errorf("reduced forks = %d, want 1", kinds[NodeFork])
	}
	fork := NodeID(-1)
	for n := NodeID(0); n < NodeID(rg.NumNodes()); n++ {
		if rg.Kind(n) == NodeFork {
			fork = n
		}
	}
	if rg.Members(fork) != 2 {
		t.Errorf("merged fork members = %d, want 2", rg.Members(fork))
	}
	creations := 0
	for _, ei := range rg.Out(fork) {
		if rg.EdgeKindAt(int(ei)) == EdgeCreation {
			creations++
		}
	}
	if creations != 2 {
		t.Errorf("merged fork creation edges = %d, want 2", creations)
	}
}

func TestReduceBookkeeping(t *testing.T) {
	tr := fig3bTrace(t)
	rg := ReduceAll(Build(tr))
	if err := rg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	kinds := countKinds(rg)
	// One merged bookkeep node per thread.
	if kinds[NodeBookkeep] != 2 {
		t.Errorf("reduced bookkeeps = %d, want 2", kinds[NodeBookkeep])
	}
	if kinds[NodeChunk] != 5 {
		t.Errorf("chunks must survive reduction, got %d", kinds[NodeChunk])
	}
	// Chunks no longer point at bookkeeping nodes: they are siblings.
	for i := 0; i < rg.NumEdges(); i++ {
		if rg.Kind(rg.EdgeFrom(i)) == NodeChunk && rg.Kind(rg.EdgeTo(i)) == NodeBookkeep {
			t.Errorf("chunk → bookkeep edge survived reduction")
		}
	}
}

func TestReductionPreservesGrainCount(t *testing.T) {
	tr := fig3aTrace(t, 4)
	g := Build(tr)
	rg := ReduceAll(g)
	// Every grain keeps exactly one representative node.
	grains := map[profile.GrainID]bool{}
	for n := NodeID(0); n < NodeID(rg.NumNodes()); n++ {
		if k := rg.Kind(n); k == NodeFragment || k == NodeChunk {
			id := rg.Grain(n)
			if grains[id] {
				t.Errorf("grain %s has multiple nodes after reduction", id)
			}
			grains[id] = true
		}
	}
	if len(grains) != 3 {
		t.Errorf("reduced grain count = %d, want 3", len(grains))
	}
}

func TestLayoutProperties(t *testing.T) {
	tr := fig3aTrace(t, 2)
	g := Build(tr)
	Layout(g)
	// All nodes placed, no two nodes at identical positions, grains sized
	// by execution time.
	type pos struct{ x, y float64 }
	seen := map[pos]bool{}
	for id := NodeID(0); id < NodeID(g.NumNodes()); id++ {
		n := g.NodeAt(id)
		if n.W == 0 || n.H == 0 {
			t.Errorf("node %d (%v) not sized", n.ID, n.Kind)
		}
		p := pos{n.X, n.Y}
		if seen[p] {
			t.Errorf("two nodes at %v", p)
		}
		seen[p] = true
	}
	// bar computed 4000, baz 3000: bar's node must be at least as tall.
	bar := g.NodeAt(g.FirstNode["R.0"])
	baz := g.NodeAt(g.FirstNode["R.1"])
	if bar.H < baz.H {
		t.Errorf("bar height %f < baz height %f despite more work", bar.H, baz.H)
	}
}

func TestLayoutChildrenLocalToParent(t *testing.T) {
	tr := fig3aTrace(t, 2)
	g := Build(tr)
	Layout(g)
	// Children columns are to the right of the parent's column.
	rootX := g.NodeAt(g.FirstNode[profile.RootID]).X
	for _, id := range []profile.GrainID{"R.0", "R.1"} {
		if g.NodeAt(g.FirstNode[id]).X <= rootX {
			t.Errorf("child %s not to the right of parent", id)
		}
	}
	// Children appear below their creating fork.
	for i := 0; i < g.NumEdges(); i++ {
		if g.EdgeKindAt(i) == EdgeCreation {
			if g.NodeAt(g.EdgeTo(i)).Y <= g.NodeAt(g.EdgeFrom(i)).Y {
				t.Errorf("child node %d not below its fork", g.EdgeTo(i))
			}
		}
	}
}

func TestLayoutDeepRecursion(t *testing.T) {
	tr := rts.Run(rts.Config{Program: "deep", Cores: 4, Seed: 3}, func(c rts.Ctx) {
		var rec func(c rts.Ctx, d int)
		rec = func(c rts.Ctx, d int) {
			if d == 0 {
				c.Compute(100)
				return
			}
			c.Spawn(loc(1, "x"), func(c rts.Ctx) { rec(c, d-1) })
			c.TaskWait()
		}
		rec(c, 30)
	})
	g := Build(tr)
	Layout(g)
	// Depth must show as monotonically increasing X along the spine.
	maxX := 0.0
	for n := NodeID(0); n < NodeID(g.NumNodes()); n++ {
		x, _, _, _ := g.Geometry(n)
		if x > maxX {
			maxX = x
		}
	}
	if maxX < 29*ColWidthForTest {
		t.Errorf("deep recursion flattened: maxX = %f", maxX)
	}
}

func TestTopologicalOrder(t *testing.T) {
	tr := fig3aTrace(t, 2)
	g := Build(tr)
	order := g.Topological()
	if len(order) != g.NumNodes() {
		t.Fatalf("topological order covers %d of %d nodes", len(order), g.NumNodes())
	}
	posOf := make([]int, g.NumNodes())
	for i, n := range order {
		posOf[n] = i
	}
	for i := 0; i < g.NumEdges(); i++ {
		from, to := g.EdgeFrom(i), g.EdgeTo(i)
		if posOf[from] >= posOf[to] {
			t.Errorf("edge %d→%d violates topological order", from, to)
		}
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	tr := fig3aTrace(t, 2)
	g := Build(tr)
	// Inject a back edge.
	g.AddEdge(NodeID(g.NumNodes()-1), 0, EdgeContinuation)
	g.AddEdge(0, NodeID(g.NumNodes()-1), EdgeContinuation)
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted a cyclic graph")
	}
}

func TestInlinedTasksStillInGraph(t *testing.T) {
	cfg := rts.Config{Program: "inline", Cores: 1, Seed: 5, Flavor: rts.FlavorICC, ThrottleLimit: 1}
	tr := rts.Run(cfg, func(c rts.Ctx) {
		for i := 0; i < 6; i++ {
			c.Spawn(loc(1, "w"), func(c rts.Ctx) { c.Compute(200) })
		}
		c.TaskWait()
	})
	g := Build(tr)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// All 6 children present regardless of inlining.
	for i := 0; i < 6; i++ {
		id := profile.ChildID(profile.RootID, i)
		if _, ok := g.FirstNode[id]; !ok {
			t.Errorf("grain %s missing from graph", id)
		}
	}
}
