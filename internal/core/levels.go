package core

// Topological levels over the columnar store: level(n) is n's longest-path
// depth — 0 for sources, otherwise 1 + the maximum level among its
// predecessors. Every edge crosses from a strictly lower level to a higher
// one, so a level-synchronous pass (process level 0, then 1, …) may relax
// all nodes of one level concurrently: each node reads only state settled
// by earlier levels and writes only its own slot. The parallel
// critical-path DP in internal/metrics is built on exactly this guarantee.
//
// The index is stored CSR-style (levelOff offsets into levelNodes) and
// built lazily like the adjacency arrays; within a level, nodes appear in
// ascending NodeID order, so the slices returned by LevelNodes — and any
// fixed chunking over them — are deterministic regardless of edge insertion
// order. Building is not goroutine-safe; concurrent readers must force the
// index first (call NumLevels once), exactly as with Out/In.

// buildLevels computes the level of every node and the level index. It
// panics on a cyclic graph, mirroring Topological.
func (s *GraphStore) buildLevels() {
	n, e := len(s.kind), len(s.edgeFrom)
	level := make([]int32, n)
	indeg := make([]int32, n)
	for i := 0; i < e; i++ {
		indeg[s.edgeTo[i]]++
	}
	if s.outOff == nil {
		s.buildCSR()
	}
	queue := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	visited := 0
	maxLevel := int32(-1)
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		visited++
		if level[v] > maxLevel {
			maxLevel = level[v]
		}
		for _, ei := range s.outIdx[s.outOff[v]:s.outOff[v+1]] {
			to := s.edgeTo[ei]
			if l := level[v] + 1; l > level[to] {
				level[to] = l
			}
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if visited != n {
		panic("core: level index requested on cyclic graph")
	}
	s.nodeLevel = level

	// Counting sort by level: stable over ascending NodeID, so each level's
	// node list comes out sorted by ID.
	numLevels := int(maxLevel) + 1
	off := make([]int32, numLevels+1)
	for _, l := range level {
		off[l+1]++
	}
	for i := 0; i < numLevels; i++ {
		off[i+1] += off[i]
	}
	nodes := make([]int32, n)
	cur := make([]int32, numLevels)
	for i := 0; i < n; i++ {
		l := level[i]
		nodes[off[l]+cur[l]] = int32(i)
		cur[l]++
	}
	s.levelOff, s.levelNodes = off, nodes
}

// NumLevels returns the number of topological levels (0 for an empty
// graph), building the level index if needed. Like Out/In, building is not
// goroutine-safe: force the index before concurrent reads.
func (s *GraphStore) NumLevels() int {
	if len(s.kind) == 0 {
		return 0
	}
	if s.levelOff == nil {
		s.buildLevels()
	}
	return len(s.levelOff) - 1
}

// LevelNodes returns the NodeIDs at level l in ascending order. The slice
// aliases the level index: read, don't mutate.
func (s *GraphStore) LevelNodes(l int) []int32 {
	if s.levelOff == nil {
		s.buildLevels()
	}
	return s.levelNodes[s.levelOff[l]:s.levelOff[l+1]]
}

// Level returns node n's topological level (its longest-path depth), with
// the same lazy-build and concurrency contract as NumLevels: force the index
// before concurrent reads. The delta-aware critical-path DP uses it to order
// its dirty frontier without re-walking untouched levels.
func (s *GraphStore) Level(n NodeID) int {
	if s.levelOff == nil {
		s.buildLevels()
	}
	return int(s.nodeLevel[n])
}
