package core

import (
	"fmt"
	"sort"
	"strconv"

	"graingraph/internal/profile"
)

// Build constructs the grain graph from a profiled trace.
//
// Construction is two-pass: the first pass creates each task's fragment,
// fork and join nodes (expanding parallel for-loops into book-keeping/chunk
// chains) and wires intra-context continuation edges; the second pass wires
// creation edges (fork → child's first fragment) and join edges (child's
// last fragment → join node) across contexts.
func Build(tr *profile.Trace) *Graph {
	g := newGraph(tr)
	g.Reserve(estimateSize(tr))

	// boundaryNodes[taskIdx][boundaryIdx] is the fork/join node created for
	// that boundary (loops record their fork node here).
	boundaryNodes := make([][]NodeID, len(tr.Tasks))

	// Per-(loop,thread) bookkeeping totals, for the final book-keeping node.
	type loopThreadKey struct {
		loop   profile.LoopID
		thread int
	}
	bkTotals := make(map[loopThreadKey]*profile.BookkeepRecord)
	for _, bk := range tr.Bookkeeps {
		bkTotals[loopThreadKey{bk.Loop, bk.Thread}] = bk
	}
	chunksByLoop := make(map[profile.LoopID][]*profile.ChunkRecord)
	for _, ck := range tr.Chunks {
		chunksByLoop[ck.Loop] = append(chunksByLoop[ck.Loop], ck)
	}

	// Pass 1: nodes and intra-context edges.
	for ti, task := range tr.Tasks {
		var prev NodeID = -1
		for fi := range task.Fragments {
			f := &task.Fragments[fi]
			n := g.appendNode(Node{
				Kind:     NodeFragment,
				Grain:    task.ID,
				Seq:      fi,
				Label:    string(task.ID) + "/" + strconv.Itoa(fi),
				Start:    f.Start,
				End:      f.End,
				Weight:   f.Duration(),
				Core:     f.Core,
				Counters: f.Counters,
			})
			if fi == 0 {
				g.FirstNode[task.ID] = n
			}
			g.LastNode[task.ID] = n
			if prev >= 0 {
				g.appendEdge(prev, n, EdgeContinuation)
			}
			prev = n

			if fi < len(task.Boundaries) {
				b := &task.Boundaries[fi]
				var bn NodeID
				switch b.Kind {
				case profile.BoundaryFork:
					var cost profile.Time
					if child := tr.Task(b.Child); child != nil {
						cost = child.CreateCost
					}
					bn = g.appendNode(Node{
						Kind:   NodeFork,
						Grain:  task.ID,
						Seq:    fi,
						Label:  "fork",
						Start:  b.At,
						End:    b.At + cost,
						Weight: cost,
						Core:   f.Core,
					})
				case profile.BoundaryJoin:
					bn = g.appendNode(Node{
						Kind:   NodeJoin,
						Grain:  task.ID,
						Seq:    fi,
						Label:  "join",
						Start:  b.At,
						End:    b.At + b.Suspended,
						Weight: b.Wait,
						Core:   f.Core,
					})
				case profile.BoundaryLoop:
					bn = g.expandLoop(b.Loop, task, fi, chunksByLoop[b.Loop], func(thread int) *profile.BookkeepRecord {
						return bkTotals[loopThreadKey{b.Loop, thread}]
					})
				}
				g.appendEdge(prev, bn, EdgeContinuation)
				// The node the NEXT fragment hangs off: for loops that is the
				// loop's join node, recorded by expandLoop via lastLoopJoin.
				next := bn
				if b.Kind == profile.BoundaryLoop {
					next = g.lastLoopJoin
				}
				boundaryNodes[ti] = append(boundaryNodes[ti], bn)
				prev = next
			}
		}
	}

	// Pass 2: cross-context creation and join edges.
	for ti, task := range tr.Tasks {
		for fi := range task.Boundaries {
			b := &task.Boundaries[fi]
			bn := boundaryNodes[ti][fi]
			switch b.Kind {
			case profile.BoundaryFork:
				if first, ok := g.FirstNode[b.Child]; ok {
					g.appendEdge(bn, first, EdgeCreation)
				}
			case profile.BoundaryJoin:
				for _, child := range b.Joined {
					if last, ok := g.LastNode[child]; ok {
						g.appendEdge(last, bn, EdgeJoin)
					}
				}
			}
		}
	}
	return g
}

// estimateSize predicts Build's node and edge counts from the trace so the
// columnar store can be reserved in one shot. The node count is exact for
// the construction below (fragments, one fork/join per non-loop boundary,
// and per loop: fork + join + a book-keeping node per chunk and per
// participating thread + a chunk node per chunk); the edge estimate errs a
// few percent high (joins with absent children), which only costs slack
// capacity, never a mid-build reallocation.
func estimateSize(tr *profile.Trace) (nodes, edges int) {
	for _, task := range tr.Tasks {
		nodes += len(task.Fragments)
		for i := range task.Boundaries {
			if task.Boundaries[i].Kind != profile.BoundaryLoop {
				nodes++
				// continuation in, plus creation out (fork) or joined-children
				// edges in (join).
				edges += 2 + len(task.Boundaries[i].Joined)
			}
		}
		if len(task.Fragments) > 1 {
			edges += len(task.Fragments) - 1
		}
	}
	for _, l := range tr.Loops {
		// fork + join + final book-keeping node per thread; each thread chain
		// contributes one creation edge, per-node continuation edges and one
		// join edge.
		nodes += 2 + len(l.Threads)
		edges += 1 + 2*len(l.Threads)
	}
	// Each chunk adds a book-keeping + chunk node pair and two chain edges.
	nodes += 2 * len(tr.Chunks)
	edges += 2 * len(tr.Chunks)
	return nodes, edges
}

// expandLoop creates the loop's fork node, per-thread
// bookkeeping/chunk chains, and join node; returns the fork node and
// records the join node in g.lastLoopJoin.
func (g *Graph) expandLoop(id profile.LoopID, master *profile.TaskRecord, fi int,
	chunks []*profile.ChunkRecord,
	bkFor func(thread int) *profile.BookkeepRecord) NodeID {

	tr := g.Trace
	loop := tr.Loop(id)

	fork := g.appendNode(Node{
		Kind:    NodeFork,
		Grain:   master.ID,
		Loop:    id,
		Seq:     fi,
		Label:   fmt.Sprintf("loop %s", loop.Loc),
		Start:   loop.Start,
		End:     loop.Start,
		Core:    loop.StartThread,
		Members: len(loop.Threads), // conceptually one fork per thread chain
	})
	join := g.appendNode(Node{
		Kind:  NodeJoin,
		Grain: master.ID,
		Loop:  id,
		Seq:   fi,
		Label: "loop join",
		Start: loop.End,
		End:   loop.End,
		Core:  loop.StartThread,
	})

	byThread := make(map[int][]*profile.ChunkRecord)
	for _, ck := range chunks {
		byThread[ck.Thread] = append(byThread[ck.Thread], ck)
	}
	for _, cks := range byThread {
		sort.Slice(cks, func(i, j int) bool { return cks[i].Start < cks[j].Start })
	}

	for _, thread := range loop.Threads {
		cks := byThread[thread]
		var bkSpent profile.Time
		prev := NodeID(-1)
		for _, ck := range cks {
			bk := g.appendNode(Node{
				Kind:   NodeBookkeep,
				Grain:  master.ID,
				Loop:   id,
				Seq:    ck.Seq,
				Label:  "bk",
				Start:  ck.Start - ck.Bookkeep,
				End:    ck.Start,
				Weight: ck.Bookkeep,
				Core:   thread,
			})
			bkSpent += ck.Bookkeep
			if prev < 0 {
				g.appendEdge(fork, bk, EdgeCreation)
			} else {
				g.appendEdge(prev, bk, EdgeContinuation)
			}
			cid := tr.ChunkGrainID(ck)
			cn := g.appendNode(Node{
				Kind:     NodeChunk,
				Grain:    cid,
				Loop:     id,
				Seq:      ck.Seq,
				Label:    fmt.Sprintf("[%d,%d)", ck.Lo, ck.Hi),
				Start:    ck.Start,
				End:      ck.End,
				Weight:   ck.Duration(),
				Core:     thread,
				Counters: ck.Counters,
			})
			g.FirstNode[cid] = cn
			g.LastNode[cid] = cn
			g.appendEdge(bk, cn, EdgeContinuation)
			prev = cn
		}
		// Final (empty) book-keeping grab before joining the barrier.
		var finalCost profile.Time
		if rec := bkFor(thread); rec != nil && rec.Total > bkSpent {
			finalCost = rec.Total - bkSpent
		}
		fbk := g.appendNode(Node{
			Kind:   NodeBookkeep,
			Grain:  master.ID,
			Loop:   id,
			Seq:    len(cks),
			Label:  "bk",
			Weight: finalCost,
			Core:   thread,
		})
		if prev < 0 {
			g.appendEdge(fork, fbk, EdgeCreation)
		} else {
			g.appendEdge(prev, fbk, EdgeContinuation)
		}
		g.appendEdge(fbk, join, EdgeJoin)
	}

	g.lastLoopJoin = join
	return fork
}
