// Package core implements the paper's primary contribution: the grain
// graph, a directed acyclic graph that captures the order of creation and
// synchronization between grains (task instances and parallel for-loop
// chunk instances) from a predictable program perspective.
//
// The graph has five node kinds — fragment, fork, join, book-keeping and
// chunk (paper §3.1, Figure 3) — and three control-flow edge kinds —
// creation, join (synchronization) and continuation. Parent and child grains
// are placed in close proximity via creation edges, without timing as a
// placement constraint, so structural anomalies (broken cutoffs, runaway
// recursion) are immediately visible.
package core

import (
	"fmt"

	"graingraph/internal/cache"
	"graingraph/internal/profile"
)

// NodeID indexes a node within its Graph.
type NodeID int

// NodeKind is one of the five grain-graph node types.
type NodeKind int

const (
	// NodeFragment is the execution of a task between creation and
	// synchronization points.
	NodeFragment NodeKind = iota
	// NodeFork denotes task creation (drawn green in the paper).
	NodeFork
	// NodeJoin denotes task synchronization (drawn orange).
	NodeJoin
	// NodeBookkeep is the computation threads perform to divide the
	// iteration space and grab chunks (drawn turquoise).
	NodeBookkeep
	// NodeChunk is the computation of one loop chunk (green rectangles).
	NodeChunk
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case NodeFragment:
		return "fragment"
	case NodeFork:
		return "fork"
	case NodeJoin:
		return "join"
	case NodeBookkeep:
		return "bookkeep"
	case NodeChunk:
		return "chunk"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is one grain-graph vertex. Fragment, book-keeping and chunk nodes
// are weighted with metrics measured during execution; fork and join nodes
// carry the parallelization overheads paid at them.
type Node struct {
	ID   NodeID
	Kind NodeKind

	// Grain is the owning grain: the task a fragment belongs to (fork/join
	// nodes belong to the task that executed them), or the chunk's ID.
	Grain profile.GrainID
	// Loop is set for bookkeep/chunk nodes and fork/join nodes expanded
	// from a BoundaryLoop.
	Loop profile.LoopID
	// Seq orders sibling nodes within their context (fragment index within
	// the task, chunk sequence within the loop).
	Seq int

	Label      string
	Start, End profile.Time
	// Weight is the node's time contribution: execution time for fragments
	// and chunks, creation cost for forks, synchronization overhead for
	// joins, delivery cost for book-keeping nodes.
	Weight   profile.Time
	Core     int
	Counters cache.Counters

	// Members counts how many original nodes a grouped (reduced) node
	// represents; 1 for unreduced nodes.
	Members int

	// Critical marks membership of the graph's critical path (set by the
	// metrics pass).
	Critical bool

	// Layout coordinates (set by Layout; used by the exporters).
	X, Y, W, H float64
}

// EdgeKind is one of the three control-flow edge types.
type EdgeKind int

const (
	// EdgeCreation connects a fork node to the first fragment of a child
	// (green in the paper).
	EdgeCreation EdgeKind = iota
	// EdgeJoin connects the last fragment of a synchronizing child to the
	// parent's join node (orange).
	EdgeJoin
	// EdgeContinuation connects fragments to fork or join nodes within the
	// same context (black).
	EdgeContinuation
)

// String names the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeCreation:
		return "creation"
	case EdgeJoin:
		return "join"
	case EdgeContinuation:
		return "continuation"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// Edge is one directed grain-graph edge.
type Edge struct {
	From, To NodeID
	Kind     EdgeKind
	Critical bool
}

// Graph is the grain graph: a DAG over Nodes connected by Edges, plus an
// index from grain IDs to their node spans.
type Graph struct {
	Trace *profile.Trace
	Nodes []*Node
	Edges []Edge

	// FirstNode / LastNode map a grain to its entry and exit nodes (first
	// and last fragment for tasks; the chunk node itself for chunks).
	FirstNode map[profile.GrainID]NodeID
	LastNode  map[profile.GrainID]NodeID

	out, in [][]int // adjacency into Edges, built lazily

	// lastLoopJoin carries the most recent loop's join node between
	// expandLoop and the builder (construction is single-goroutine).
	lastLoopJoin NodeID
}

// newGraph allocates an empty graph bound to tr.
func newGraph(tr *profile.Trace) *Graph {
	return &Graph{
		Trace:     tr,
		FirstNode: make(map[profile.GrainID]NodeID),
		LastNode:  make(map[profile.GrainID]NodeID),
	}
}

// NewGraph allocates an empty graph bound to tr, for callers that assemble
// graphs by hand (synthetic what-if scenarios, determinism tests) rather
// than through Build.
func NewGraph(tr *profile.Trace) *Graph { return newGraph(tr) }

// AddNode appends a node (its ID field is assigned) and returns its ID.
// FirstNode/LastNode bookkeeping is the caller's responsibility.
func (g *Graph) AddNode(n Node) NodeID { return g.addNode(n).ID }

// AddEdge appends an edge.
func (g *Graph) AddEdge(from, to NodeID, kind EdgeKind) { g.addEdge(from, to, kind) }

// Weights returns a copy of the node weight vector, indexed by NodeID —
// the starting point for what-if weight transformations.
func (g *Graph) Weights() []profile.Time {
	w := make([]profile.Time, len(g.Nodes))
	for i, n := range g.Nodes {
		w[i] = n.Weight
	}
	return w
}

// addNode appends a node and returns it.
func (g *Graph) addNode(n Node) *Node {
	n.ID = NodeID(len(g.Nodes))
	if n.Members == 0 {
		n.Members = 1
	}
	g.Nodes = append(g.Nodes, &n)
	g.out, g.in = nil, nil
	return g.Nodes[n.ID]
}

// addEdge appends an edge.
func (g *Graph) addEdge(from, to NodeID, kind EdgeKind) {
	g.Edges = append(g.Edges, Edge{From: from, To: to, Kind: kind})
	g.out, g.in = nil, nil
}

// buildAdjacency (re)builds the adjacency indexes.
func (g *Graph) buildAdjacency() {
	g.out = make([][]int, len(g.Nodes))
	g.in = make([][]int, len(g.Nodes))
	for i := range g.Edges {
		e := &g.Edges[i]
		g.out[e.From] = append(g.out[e.From], i)
		g.in[e.To] = append(g.in[e.To], i)
	}
}

// Out returns the indexes (into Edges) of n's outgoing edges.
func (g *Graph) Out(n NodeID) []int {
	if g.out == nil {
		g.buildAdjacency()
	}
	return g.out[n]
}

// In returns the indexes (into Edges) of n's incoming edges.
func (g *Graph) In(n NodeID) []int {
	if g.in == nil {
		g.buildAdjacency()
	}
	return g.in[n]
}

// NumGrainNodes counts fragment and chunk nodes (the "grains" rendered as
// rectangles).
func (g *Graph) NumGrainNodes() int {
	n := 0
	for _, nd := range g.Nodes {
		if nd.Kind == NodeFragment || nd.Kind == NodeChunk {
			n++
		}
	}
	return n
}

// Validate checks structural invariants: the graph is a DAG, edges respect
// the paper's connection constraints (a fork connects to exactly one child
// fragment via creation; at least one fragment connects to every join;
// continuation edges stay within a context). It returns the first violation.
func (g *Graph) Validate() error {
	// Connection constraints.
	for _, n := range g.Nodes {
		switch n.Kind {
		case NodeFork:
			creations := 0
			for _, ei := range g.Out(n.ID) {
				if g.Edges[ei].Kind == EdgeCreation {
					creations++
				}
			}
			if n.Members == 1 && creations != 1 {
				return fmt.Errorf("fork node %d has %d creation edges, want 1", n.ID, creations)
			}
			if n.Members > 1 && creations < 1 {
				return fmt.Errorf("grouped fork node %d has no creation edges", n.ID)
			}
		case NodeJoin:
			joins := 0
			for _, ei := range g.In(n.ID) {
				if g.Edges[ei].Kind == EdgeJoin {
					joins++
				}
			}
			if joins == 0 {
				return fmt.Errorf("join node %d has no incoming join edges", n.ID)
			}
		}
	}
	// Acyclicity via Kahn's algorithm.
	indeg := make([]int, len(g.Nodes))
	for i := range g.Edges {
		indeg[g.Edges[i].To]++
	}
	queue := make([]NodeID, 0, len(g.Nodes))
	for i := range g.Nodes {
		if indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	visited := 0
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		visited++
		for _, ei := range g.Out(n) {
			to := g.Edges[ei].To
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if visited != len(g.Nodes) {
		return fmt.Errorf("grain graph has a cycle: visited %d of %d nodes", visited, len(g.Nodes))
	}
	return nil
}

// Topological returns the nodes in a topological order. It panics if the
// graph has a cycle (Validate would have reported it).
func (g *Graph) Topological() []NodeID {
	indeg := make([]int, len(g.Nodes))
	for i := range g.Edges {
		indeg[g.Edges[i].To]++
	}
	var order []NodeID
	var queue []NodeID
	for i := range g.Nodes {
		if indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, ei := range g.Out(n) {
			to := g.Edges[ei].To
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(order) != len(g.Nodes) {
		panic("core: Topological called on cyclic graph")
	}
	return order
}

// CriticalGrains returns the set of grain IDs whose fragment or chunk
// nodes lie on the marked critical path. Run metrics.CriticalPath (or
// metrics.Analyze) first; before that no node carries the Critical flag
// and the result is empty.
func (g *Graph) CriticalGrains() map[profile.GrainID]bool {
	crit := make(map[profile.GrainID]bool)
	for _, n := range g.Nodes {
		if n.Critical && (n.Kind == NodeFragment || n.Kind == NodeChunk) {
			crit[n.Grain] = true
		}
	}
	return crit
}
