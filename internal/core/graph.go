// Package core implements the paper's primary contribution: the grain
// graph, a directed acyclic graph that captures the order of creation and
// synchronization between grains (task instances and parallel for-loop
// chunk instances) from a predictable program perspective.
//
// The graph has five node kinds — fragment, fork, join, book-keeping and
// chunk (paper §3.1, Figure 3) — and three control-flow edge kinds —
// creation, join (synchronization) and continuation. Parent and child grains
// are placed in close proximity via creation edges, without timing as a
// placement constraint, so structural anomalies (broken cutoffs, runaway
// recursion) are immediately visible.
//
// Storage is columnar: node and edge attributes live in the parallel
// slices of the embedded GraphStore (see store.go), accessed through
// per-column methods; Node and Edge remain as materialized row views for
// construction and cold paths.
package core

import (
	"fmt"

	"graingraph/internal/cache"
	"graingraph/internal/profile"
)

// NodeID indexes a node within its Graph.
type NodeID int

// NodeKind is one of the five grain-graph node types.
type NodeKind int

const (
	// NodeFragment is the execution of a task between creation and
	// synchronization points.
	NodeFragment NodeKind = iota
	// NodeFork denotes task creation (drawn green in the paper).
	NodeFork
	// NodeJoin denotes task synchronization (drawn orange).
	NodeJoin
	// NodeBookkeep is the computation threads perform to divide the
	// iteration space and grab chunks (drawn turquoise).
	NodeBookkeep
	// NodeChunk is the computation of one loop chunk (green rectangles).
	NodeChunk
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case NodeFragment:
		return "fragment"
	case NodeFork:
		return "fork"
	case NodeJoin:
		return "join"
	case NodeBookkeep:
		return "bookkeep"
	case NodeChunk:
		return "chunk"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is the materialized row view of one grain-graph vertex: the input
// to AddNode and the output of NodeAt. Fragment, book-keeping and chunk
// nodes are weighted with metrics measured during execution; fork and join
// nodes carry the parallelization overheads paid at them.
type Node struct {
	ID   NodeID
	Kind NodeKind

	// Grain is the owning grain: the task a fragment belongs to (fork/join
	// nodes belong to the task that executed them), or the chunk's ID.
	Grain profile.GrainID
	// Loop is set for bookkeep/chunk nodes and fork/join nodes expanded
	// from a BoundaryLoop.
	Loop profile.LoopID
	// Seq orders sibling nodes within their context (fragment index within
	// the task, chunk sequence within the loop).
	Seq int

	Label      string
	Start, End profile.Time
	// Weight is the node's time contribution: execution time for fragments
	// and chunks, creation cost for forks, synchronization overhead for
	// joins, delivery cost for book-keeping nodes.
	Weight   profile.Time
	Core     int
	Counters cache.Counters

	// Members counts how many original nodes a grouped (reduced) node
	// represents; 1 for unreduced nodes.
	Members int

	// Critical marks membership of the graph's critical path (set by the
	// metrics pass).
	Critical bool

	// Layout coordinates (set by Layout; used by the exporters).
	X, Y, W, H float64
}

// EdgeKind is one of the three control-flow edge types.
type EdgeKind int

const (
	// EdgeCreation connects a fork node to the first fragment of a child
	// (green in the paper).
	EdgeCreation EdgeKind = iota
	// EdgeJoin connects the last fragment of a synchronizing child to the
	// parent's join node (orange).
	EdgeJoin
	// EdgeContinuation connects fragments to fork or join nodes within the
	// same context (black).
	EdgeContinuation
)

// String names the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeCreation:
		return "creation"
	case EdgeJoin:
		return "join"
	case EdgeContinuation:
		return "continuation"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// Edge is the materialized row view of one directed grain-graph edge.
type Edge struct {
	From, To NodeID
	Kind     EdgeKind
	Critical bool
}

// Graph is the grain graph: a DAG stored columnarly in the embedded
// GraphStore, plus an index from grain IDs to their node spans.
type Graph struct {
	Trace *profile.Trace
	GraphStore

	// FirstNode / LastNode map a grain to its entry and exit nodes (first
	// and last fragment for tasks; the chunk node itself for chunks).
	FirstNode map[profile.GrainID]NodeID
	LastNode  map[profile.GrainID]NodeID

	// lastLoopJoin carries the most recent loop's join node between
	// expandLoop and the builder (construction is single-goroutine).
	lastLoopJoin NodeID
}

// newGraph allocates an empty graph bound to tr. The entry/exit maps hold
// one entry per task and chunk grain; sizing them upfront avoids ~20
// incremental rehashes on million-grain traces.
func newGraph(tr *profile.Trace) *Graph {
	grains := len(tr.Tasks) + len(tr.Chunks)
	return &Graph{
		Trace:     tr,
		FirstNode: make(map[profile.GrainID]NodeID, grains),
		LastNode:  make(map[profile.GrainID]NodeID, grains),
	}
}

// NewGraph allocates an empty graph bound to tr, for callers that assemble
// graphs by hand (synthetic what-if scenarios, determinism tests) rather
// than through Build.
func NewGraph(tr *profile.Trace) *Graph { return newGraph(tr) }

// AddNode appends a node (its ID field is ignored and assigned fresh) and
// returns its ID. FirstNode/LastNode bookkeeping is the caller's
// responsibility.
func (g *Graph) AddNode(n Node) NodeID { return g.appendNode(n) }

// AddEdge appends an edge.
func (g *Graph) AddEdge(from, to NodeID, kind EdgeKind) { g.appendEdge(from, to, kind) }

// NumGrainNodes counts fragment and chunk nodes (the "grains" rendered as
// rectangles).
func (g *Graph) NumGrainNodes() int {
	n := 0
	for _, k := range g.kind {
		if NodeKind(k) == NodeFragment || NodeKind(k) == NodeChunk {
			n++
		}
	}
	return n
}

// Validate checks structural invariants: the graph is a DAG, edges respect
// the paper's connection constraints (a fork connects to exactly one child
// fragment via creation; at least one fragment connects to every join;
// continuation edges stay within a context). It returns the first violation.
func (g *Graph) Validate() error {
	// Connection constraints.
	for n := NodeID(0); n < NodeID(g.NumNodes()); n++ {
		switch g.Kind(n) {
		case NodeFork:
			creations := 0
			for _, ei := range g.Out(n) {
				if g.EdgeKindAt(int(ei)) == EdgeCreation {
					creations++
				}
			}
			if g.Members(n) == 1 && creations != 1 {
				return fmt.Errorf("fork node %d has %d creation edges, want 1", n, creations)
			}
			if g.Members(n) > 1 && creations < 1 {
				return fmt.Errorf("grouped fork node %d has no creation edges", n)
			}
		case NodeJoin:
			joins := 0
			for _, ei := range g.In(n) {
				if g.EdgeKindAt(int(ei)) == EdgeJoin {
					joins++
				}
			}
			if joins == 0 {
				return fmt.Errorf("join node %d has no incoming join edges", n)
			}
		}
	}
	// Acyclicity via Kahn's algorithm.
	indeg := make([]int, g.NumNodes())
	for i := 0; i < g.NumEdges(); i++ {
		indeg[g.EdgeTo(i)]++
	}
	queue := make([]NodeID, 0, g.NumNodes())
	for i := range indeg {
		if indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	visited := 0
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		visited++
		for _, ei := range g.Out(n) {
			to := g.EdgeTo(int(ei))
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if visited != g.NumNodes() {
		return fmt.Errorf("grain graph has a cycle: visited %d of %d nodes", visited, g.NumNodes())
	}
	return nil
}

// Topological returns the nodes in a topological order. It panics if the
// graph has a cycle (Validate would have reported it). As a side effect it
// forces the adjacency index, making the graph safe for concurrent
// read-only traversal afterwards.
func (g *Graph) Topological() []NodeID {
	indeg := make([]int, g.NumNodes())
	for i := 0; i < g.NumEdges(); i++ {
		indeg[g.EdgeTo(i)]++
	}
	var order []NodeID
	var queue []NodeID
	for i := range indeg {
		if indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, ei := range g.Out(n) {
			to := g.EdgeTo(int(ei))
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(order) != g.NumNodes() {
		panic("core: Topological called on cyclic graph")
	}
	return order
}

// CriticalGrains returns the set of grain IDs whose fragment or chunk
// nodes lie on the marked critical path. Run metrics.CriticalPath (or
// metrics.Analyze) first; before that no node carries the Critical flag
// and the result is empty.
func (g *Graph) CriticalGrains() map[profile.GrainID]bool {
	crit := make(map[profile.GrainID]bool)
	for n := NodeID(0); n < NodeID(g.NumNodes()); n++ {
		if g.Critical(n) && (g.Kind(n) == NodeFragment || g.Kind(n) == NodeChunk) {
			crit[g.Grain(n)] = true
		}
	}
	return crit
}
