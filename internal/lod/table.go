package lod

import "graingraph/internal/query"

// Table exposes the summary index as a columnar query table — the
// "from tasks" source of the query grammar. One row per task slot in
// interning order (the order Build discovered owners, which is
// deterministic), with the per-task aggregates the window selector reads:
//
//	id       string  task grain ID
//	depth    int     spawn-tree depth (-1 for non-task owners)
//	parent   string  parent task ID ("" for roots)
//	ownwork  int     work of the task's own nodes
//	subwork  int     subtree work rollup (self included)
//	subnodes int     subtree node count
//	subtasks int     subtree task count
//	subprobs int     subtree highlight-problem count
//	crit     int     1 when the subtree touches the critical path
//	start    int     earliest node start in the subtree (0 = unknown)
//	end      int     latest node end in the subtree
//
// Column slices are fresh copies, so plans over the table never alias the
// index's internals.
func (ix *Index) Table() *query.Table {
	n := len(ix.ids)
	id := make([]string, n)
	parent := make([]string, n)
	depth := make([]int64, n)
	ownwork := make([]int64, n)
	subwork := make([]int64, n)
	subnodes := make([]int64, n)
	subtasks := make([]int64, n)
	subprobs := make([]int64, n)
	crit := make([]int64, n)
	start := make([]int64, n)
	end := make([]int64, n)
	for si := 0; si < n; si++ {
		id[si] = string(ix.ids[si])
		if p := ix.par[si]; p >= 0 {
			parent[si] = string(ix.ids[p])
		}
		depth[si] = int64(ix.depth[si])
		ownwork[si] = ix.ownWork[si]
		subwork[si] = ix.subWork[si]
		subnodes[si] = int64(ix.subNodes[si])
		subtasks[si] = int64(ix.subTasks[si])
		subprobs[si] = int64(ix.subProbs[si])
		if ix.critSub[si] {
			crit[si] = 1
		}
		start[si] = int64(ix.startMin[si])
		end[si] = int64(ix.endMax[si])
	}
	t := query.NewTable(n)
	t.AddStr("id", id)
	t.AddInt("depth", depth)
	t.AddStr("parent", parent)
	t.AddInt("ownwork", ownwork)
	t.AddInt("subwork", subwork)
	t.AddInt("subnodes", subnodes)
	t.AddInt("subtasks", subtasks)
	t.AddInt("subprobs", subprobs)
	t.AddInt("crit", crit)
	t.AddInt("start", start)
	t.AddInt("end", end)
	return t
}
