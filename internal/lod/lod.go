// Package lod builds a level-of-detail summary index over a grain graph and
// answers windowed queries against it. The paper's workflow is navigation —
// zoom into a subtree, collapse what you are not looking at, follow the
// critical path — yet a million-grain run renders as a 3.6M-node DOT file
// no tool can open. The index aggregates every task's spawn subtree
// (work, node/task counts, highlight-problem counts, time extents,
// critical-path membership) in one pass; Window then materializes a small
// core.Graph for a chosen root, depth and fan-out budget, collapsing
// everything else into super-nodes while keeping the critical-path spine
// exact: a subtree containing critical nodes is always expanded down to the
// critical grains themselves, whatever the depth and top limits say.
//
// The windowed graph is a fresh *core.Graph sharing the original Trace, so
// the existing DOT/JSON exporters and the layout pass consume it unchanged.
// Queries do no string parsing and no full-graph scans — cost is
// proportional to the nodes and edges actually shown — so any window over a
// multi-million-node graph answers in milliseconds after the one-time
// index build.
package lod

import (
	"fmt"
	"strings"

	"graingraph/internal/core"
	"graingraph/internal/highlight"
	"graingraph/internal/profile"
	"graingraph/internal/query"
)

// Index is the hierarchical summary: one record per task grain (slot),
// parent-linked as a spawn tree, with subtree aggregates rolled up from the
// leaves. Building is a handful of linear passes; the index is immutable
// afterwards and safe for concurrent Window calls.
type Index struct {
	g *core.Graph

	slots map[profile.GrainID]int32
	ids   []profile.GrainID
	depth []int32
	par   []int32

	// children CSR, each parent's children sorted by descending subtree
	// work (slot index breaks ties) — Window's top-N selection reads a
	// prefix.
	childOff []int32
	childIdx []int32

	// ownerOf maps every node to its owning task slot (chunks through
	// their loop's book-keeping owner); nodesOf is the inverse CSR.
	ownerOf  []int32
	nodeOff  []int32
	nodeIdx  []int32
	ownWork  []int64
	critSelf []bool
	probSelf []int32

	// Subtree rollups (self included).
	subWork  []int64
	subNodes []int32
	subTasks []int32
	subProbs []int32
	critSub  []bool
	startMin []profile.Time
	endMax   []profile.Time
}

// Build constructs the summary index. a may be nil (no problem counts).
func Build(g *core.Graph, a *highlight.Assessment) *Index {
	ix := &Index{g: g, slots: make(map[profile.GrainID]int32)}
	numNodes := core.NodeID(g.NumNodes())

	// Loop owners first: chunk nodes attribute to the task that ran the
	// loop, recorded on its book-keeping nodes.
	loopOwner := make(map[profile.LoopID]profile.GrainID)
	for n := core.NodeID(0); n < numNodes; n++ {
		if g.Kind(n) == core.NodeBookkeep {
			loopOwner[g.Loop(n)] = g.Grain(n)
		}
	}

	intern := func(id profile.GrainID) int32 {
		if si, ok := ix.slots[id]; ok {
			return si
		}
		si := int32(len(ix.ids))
		ix.slots[id] = si
		ix.ids = append(ix.ids, id)
		ix.depth = append(ix.depth, taskDepth(id))
		ix.ownWork = append(ix.ownWork, 0)
		ix.critSelf = append(ix.critSelf, false)
		ix.probSelf = append(ix.probSelf, 0)
		ix.startMin = append(ix.startMin, 0)
		ix.endMax = append(ix.endMax, 0)
		return si
	}

	ix.ownerOf = make([]int32, numNodes)
	var lastOwner profile.GrainID
	lastSlot := int32(-1)
	for n := core.NodeID(0); n < numNodes; n++ {
		owner := g.Grain(n)
		if g.Kind(n) == core.NodeChunk {
			owner = loopOwner[g.Loop(n)]
		}
		if lastSlot < 0 || owner != lastOwner {
			lastOwner, lastSlot = owner, intern(owner)
		}
		si := lastSlot
		ix.ownerOf[n] = si
		ix.ownWork[si] += int64(g.Weight(n))
		if g.Critical(n) {
			ix.critSelf[si] = true
		}
		if s := g.Start(n); ix.startMin[si] == 0 || (s != 0 && s < ix.startMin[si]) {
			ix.startMin[si] = s
		}
		if e := g.End(n); e > ix.endMax[si] {
			ix.endMax[si] = e
		}
	}

	// Problem counts: flagged task grains count against their own slot,
	// flagged chunk grains against the owning task's slot (their recorded
	// parent is the loop pseudo-grain, resolved through the loop's owner).
	if a != nil {
		loopParentOwner := make(map[profile.GrainID]profile.GrainID, len(loopOwner))
		for lid, owner := range loopOwner {
			loopParentOwner[profile.LoopParentID(lid)] = owner
		}
		for _, ga := range a.Grains {
			if ga.Mask == 0 {
				continue
			}
			id := ga.Metrics.Grain.ID
			si, ok := ix.slots[id]
			if !ok {
				if owner, isLoop := loopParentOwner[ga.Metrics.Grain.Parent]; isLoop {
					si, ok = ix.slots[owner]
				}
			}
			if ok {
				ix.probSelf[si]++
			}
		}
	}

	// Parent closure: interning an ancestor appends a slot, and the loop
	// bound re-reads len(ids), so ancestors that own no nodes are walked
	// too.
	for si := int32(0); si < int32(len(ix.ids)); si++ {
		p := int32(-1)
		if d := ix.depth[si]; d > 0 {
			p = intern(ancestorAt(ix.ids[si], int(d)-1))
		}
		ix.par = append(ix.par, p)
	}
	numSlots := len(ix.ids)

	// Owned-node CSR via counting sort.
	ix.nodeOff = make([]int32, numSlots+1)
	for _, si := range ix.ownerOf {
		ix.nodeOff[si+1]++
	}
	for i := 0; i < numSlots; i++ {
		ix.nodeOff[i+1] += ix.nodeOff[i]
	}
	ix.nodeIdx = make([]int32, numNodes)
	fill := make([]int32, numSlots)
	for n := core.NodeID(0); n < numNodes; n++ {
		si := ix.ownerOf[n]
		ix.nodeIdx[ix.nodeOff[si]+fill[si]] = int32(n)
		fill[si]++
	}

	// Rollups, deepest depth first so children settle before parents.
	ix.subWork = make([]int64, numSlots)
	ix.subNodes = make([]int32, numSlots)
	ix.subTasks = make([]int32, numSlots)
	ix.subProbs = make([]int32, numSlots)
	ix.critSub = make([]bool, numSlots)
	maxDepth := int32(0)
	for _, d := range ix.depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	byDepth := make([][]int32, maxDepth+1)
	for si := 0; si < numSlots; si++ {
		d := ix.depth[si]
		if d < 0 {
			d = 0 // non-task owners roll up nowhere; treat as roots
		}
		byDepth[d] = append(byDepth[d], int32(si))
	}
	for si := 0; si < numSlots; si++ {
		ix.subWork[si] = ix.ownWork[si]
		ix.subNodes[si] = ix.nodeOff[si+1] - ix.nodeOff[si]
		ix.subTasks[si] = 1
		ix.subProbs[si] = ix.probSelf[si]
		ix.critSub[si] = ix.critSelf[si]
	}
	for d := maxDepth; d > 0; d-- {
		for _, si := range byDepth[d] {
			p := ix.par[si]
			if p < 0 {
				continue
			}
			ix.subWork[p] += ix.subWork[si]
			ix.subNodes[p] += ix.subNodes[si]
			ix.subTasks[p] += ix.subTasks[si]
			ix.subProbs[p] += ix.subProbs[si]
			if ix.critSub[si] {
				ix.critSub[p] = true
			}
			if s := ix.startMin[si]; s != 0 && (ix.startMin[p] == 0 || s < ix.startMin[p]) {
				ix.startMin[p] = s
			}
			if e := ix.endMax[si]; e > ix.endMax[p] {
				ix.endMax[p] = e
			}
		}
	}

	// Children CSR, sorted by (subWork desc, slot asc) per parent with an
	// insertion pass — fan-outs are small compared to the graph.
	ix.childOff = make([]int32, numSlots+1)
	for _, p := range ix.par {
		if p >= 0 {
			ix.childOff[p+1]++
		}
	}
	for i := 0; i < numSlots; i++ {
		ix.childOff[i+1] += ix.childOff[i]
	}
	ix.childIdx = make([]int32, 0, numSlots)
	ix.childIdx = ix.childIdx[:cap(ix.childIdx)]
	cfill := make([]int32, numSlots)
	for si := int32(0); si < int32(numSlots); si++ {
		p := ix.par[si]
		if p < 0 {
			continue
		}
		ix.childIdx[ix.childOff[p]+cfill[p]] = si
		cfill[p]++
	}
	for p := 0; p < numSlots; p++ {
		kids := ix.childIdx[ix.childOff[p]:ix.childOff[p+1]]
		for i := 1; i < len(kids); i++ {
			k := kids[i]
			j := i
			for j > 0 && (ix.subWork[kids[j-1]] < ix.subWork[k] ||
				(ix.subWork[kids[j-1]] == ix.subWork[k] && kids[j-1] > k)) {
				kids[j] = kids[j-1]
				j--
			}
			kids[j] = k
		}
	}
	return ix
}

// NumTasks returns the number of task slots in the index.
func (ix *Index) NumTasks() int { return len(ix.ids) }

// SubtreeWork returns the aggregated work of id's spawn subtree, and
// whether the task exists.
func (ix *Index) SubtreeWork(id profile.GrainID) (profile.Time, bool) {
	si, ok := ix.slots[id]
	if !ok {
		return 0, false
	}
	return profile.Time(ix.subWork[si]), true
}

// taskDepth returns the spawn-tree depth of a task grain ID, or -1 for
// non-task grains (chunk IDs, unknown owners).
func taskDepth(id profile.GrainID) int32 {
	if id == profile.RootID {
		return 0
	}
	s := string(id)
	if !strings.HasPrefix(s, string(profile.RootID)+".") {
		return -1
	}
	return int32(strings.Count(s, "."))
}

// ancestorAt truncates a task grain ID to its ancestor at depth d; the
// result is a substring (no allocation).
func ancestorAt(id profile.GrainID, d int) profile.GrainID {
	s := string(id)
	dots := 0
	for i := 0; i < len(s); i++ {
		if s[i] != '.' {
			continue
		}
		if dots == d {
			return profile.GrainID(s[:i])
		}
		dots++
	}
	return id
}

// WindowOptions selects what a windowed query shows.
type WindowOptions struct {
	// Root is the subtree to render (default: the whole-program root "R").
	Root profile.GrainID
	// Depth is how many spawn levels below Root stay expanded (default 3).
	Depth int
	// Top bounds how many children of each expanded task are shown
	// individually, heaviest subtree first (default 8); the rest collapse
	// into one "rest" super-node per parent. Subtrees containing
	// critical-path nodes are always expanded, beyond both limits.
	Top int
}

func (o WindowOptions) withDefaults() (WindowOptions, error) {
	if o.Root == "" {
		o.Root = profile.RootID
	}
	if o.Depth == 0 {
		o.Depth = 3
	}
	if o.Top == 0 {
		o.Top = 8
	}
	if o.Depth < 0 {
		return o, fmt.Errorf("lod: negative window depth %d", o.Depth)
	}
	if o.Top < 0 {
		return o, fmt.Errorf("lod: negative window top %d", o.Top)
	}
	return o, nil
}

// WindowStats summarizes what a windowed query kept and collapsed.
type WindowStats struct {
	Expanded   int // tasks shown in full
	SuperNodes int // collapsed subtree / loop-rest / sibling-rest nodes
	Nodes      int // nodes in the windowed graph
	Edges      int // edges in the windowed graph
	SourceSize int // nodes in the underlying full graph
}

// windowBuild carries the per-query state of one Window materialization.
type windowBuild struct {
	ix  *Index
	opt WindowOptions
	out *core.Graph

	nodeMap   []int32       // original node -> new node + 1, 0 when not shown
	included  []core.NodeID // original IDs of copied nodes, in emission order
	regionRep []int32       // slot -> super-node absorbing its subtree, -1 none
	loopRest  map[profile.LoopID]int32
	stats     WindowStats
}

// Window materializes the level-of-detail view described by opt as a fresh
// grain graph sharing the original trace. Expanded tasks keep their real
// nodes; collapsed subtrees, overflowing siblings and oversized loops
// become aggregate super-nodes. The construction is fully deterministic:
// child order comes from the index, node and edge emission follow original
// node order, and no map iteration reaches the output.
func (ix *Index) Window(opt WindowOptions) (*core.Graph, WindowStats, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, WindowStats{}, err
	}
	rootSlot, ok := ix.slots[opt.Root]
	if !ok {
		return nil, WindowStats{}, fmt.Errorf("lod: unknown window root %q", opt.Root)
	}

	b := &windowBuild{
		ix:        ix,
		opt:       opt,
		out:       core.NewGraph(ix.g.Trace),
		nodeMap:   make([]int32, ix.g.NumNodes()),
		regionRep: make([]int32, len(ix.ids)),
		loopRest:  make(map[profile.LoopID]int32),
	}
	for i := range b.regionRep {
		b.regionRep[i] = -1
	}
	b.stats.SourceSize = ix.g.NumNodes()

	b.expand(rootSlot, 0)
	b.emitEdges()
	b.stats.Nodes = b.out.NumNodes()
	b.stats.Edges = b.out.NumEdges()
	return b.out, b.stats, nil
}

// expand includes task slot si's own nodes, decides which children stay
// expanded (top-N by subtree work within the depth budget, plus every
// critical subtree), and collapses the rest into super-nodes.
func (b *windowBuild) expand(si int32, rel int) {
	ix := b.ix
	b.stats.Expanded++

	// Own nodes, grouped so oversized loops collapse: non-chunk nodes copy
	// straight through; a loop's chunks copy only when the loop is small
	// enough or critical chunks force them (critical chunks always copy,
	// the rest collapse into one loop super-node).
	type loopAgg struct {
		loop    profile.LoopID
		rest    int32
		work    int64
		started bool
	}
	owned := ix.nodeIdx[ix.nodeOff[si]:ix.nodeOff[si+1]]
	chunkCount := make(map[profile.LoopID]int32)
	for _, ni := range owned {
		if ix.g.Kind(core.NodeID(ni)) == core.NodeChunk {
			chunkCount[ix.g.Loop(core.NodeID(ni))]++
		}
	}
	chunkLimit := int32(b.opt.Top)
	if chunkLimit < 8 {
		chunkLimit = 8
	}
	var aggs []*loopAgg
	agg := make(map[profile.LoopID]*loopAgg)
	for _, ni := range owned {
		n := core.NodeID(ni)
		if ix.g.Kind(n) != core.NodeChunk {
			b.copyNode(n)
			continue
		}
		loop := ix.g.Loop(n)
		if chunkCount[loop] <= chunkLimit || ix.g.Critical(n) {
			b.copyNode(n)
			continue
		}
		a := agg[loop]
		if a == nil {
			a = &loopAgg{loop: loop}
			agg[loop] = a
			aggs = append(aggs, a)
		}
		a.work += int64(ix.g.Weight(n))
		a.rest++
	}
	for _, a := range aggs {
		nid := b.out.AddNode(core.Node{
			Kind:    core.NodeChunk,
			Grain:   ix.ids[si],
			Loop:    a.loop,
			Label:   fmt.Sprintf("%d chunks · work %d", a.rest, a.work),
			Weight:  profile.Time(a.work),
			Members: int(a.rest),
		})
		b.loopRest[a.loop] = int32(nid)
		b.stats.SuperNodes++
	}

	// Children: expand critical subtrees unconditionally; of the rest, the
	// heaviest Top within the depth budget. The heaviest-first choice runs
	// through query.TopK — the same bounded-selection kernel behind the
	// query grammar's topk verb — under (subtree work desc, slot asc), the
	// order the children CSR is already sorted by, so the selected set and
	// the emission order match the sorted-prefix scan this replaced.
	kids := ix.childIdx[ix.childOff[si]:ix.childOff[si+1]]
	keep := make([]bool, len(kids))
	var nonCrit []int32
	for i, c := range kids {
		if ix.critSub[c] {
			keep[i] = true
		} else {
			nonCrit = append(nonCrit, int32(i))
		}
	}
	if rel < b.opt.Depth {
		for _, r := range query.TopK(len(nonCrit), b.opt.Top, func(i, j int) bool {
			ci, cj := kids[nonCrit[i]], kids[nonCrit[j]]
			if ix.subWork[ci] != ix.subWork[cj] {
				return ix.subWork[ci] > ix.subWork[cj]
			}
			return ci < cj
		}) {
			keep[nonCrit[r]] = true
		}
	}
	var rest []int32
	for i, c := range kids {
		if keep[i] {
			b.expand(c, rel+1)
		} else {
			rest = append(rest, c)
		}
	}
	if len(rest) > 0 {
		var work, probs int64
		var nodes, tasks int32
		var start, end profile.Time
		for _, c := range rest {
			work += ix.subWork[c]
			probs += int64(ix.subProbs[c])
			nodes += ix.subNodes[c]
			tasks += ix.subTasks[c]
			if s := ix.startMin[c]; s != 0 && (start == 0 || s < start) {
				start = s
			}
			if e := ix.endMax[c]; e > end {
				end = e
			}
		}
		label := fmt.Sprintf("%d subtrees of %s · %d tasks · %d nodes · work %d",
			len(rest), ix.ids[si], tasks, nodes, work)
		if probs > 0 {
			label += fmt.Sprintf(" · %d problems", probs)
		}
		nid := b.out.AddNode(core.Node{
			Kind:    core.NodeFragment,
			Grain:   ix.ids[si],
			Label:   label,
			Start:   start,
			End:     end,
			Weight:  profile.Time(work),
			Members: int(nodes),
		})
		for _, c := range rest {
			b.regionRep[c] = int32(nid)
		}
		b.stats.SuperNodes++
	}
}

// copyNode includes one original node verbatim (modulo layout, recomputed
// later) and maintains the grain entry/exit maps of the windowed graph.
func (b *windowBuild) copyNode(n core.NodeID) {
	row := b.ix.g.NodeAt(n)
	row.X, row.Y, row.W, row.H = 0, 0, 0, 0
	nid := b.out.AddNode(row)
	b.nodeMap[n] = int32(nid) + 1
	b.included = append(b.included, n)
	if _, ok := b.out.FirstNode[row.Grain]; !ok {
		b.out.FirstNode[row.Grain] = nid
	}
	b.out.LastNode[row.Grain] = nid
}

// rep resolves an original node to its windowed representative: itself when
// shown, its loop's rest super-node for collapsed chunks, else the
// super-node absorbing the nearest collapsed ancestor subtree; -1 when the
// node is outside the window entirely.
func (b *windowBuild) rep(n core.NodeID) int32 {
	if m := b.nodeMap[n]; m > 0 {
		return m - 1
	}
	if b.ix.g.Kind(n) == core.NodeChunk {
		if r, ok := b.loopRest[b.ix.g.Loop(n)]; ok {
			return r
		}
	}
	for si := b.ix.ownerOf[n]; si >= 0; si = b.ix.par[si] {
		if r := b.regionRep[si]; r >= 0 {
			return r
		}
	}
	return -1
}

// emitEdges walks the shown nodes — only those; window cost must not scale
// with the source graph — and maps each adjacent edge through rep,
// deduplicating parallel edges between the same windowed endpoints
// (critical-path membership ORs across the merged set). Edges wholly inside
// one collapsed region vanish with it. The walk follows expand's emission
// order, which is deterministic, so edge order is too.
func (b *windowBuild) emitEdges() {
	g := b.ix.g
	type key struct {
		from, to int32
		kind     core.EdgeKind
	}
	seen := make(map[key]int)
	add := func(from, to int32, kind core.EdgeKind, critical bool) {
		if from < 0 || to < 0 || from == to {
			return
		}
		k := key{from, to, kind}
		if ei, ok := seen[k]; ok {
			if critical && !b.out.EdgeCritical(ei) {
				b.out.SetEdgeCritical(ei, true)
			}
			return
		}
		b.out.AddEdge(core.NodeID(from), core.NodeID(to), kind)
		ei := b.out.NumEdges() - 1
		if critical {
			b.out.SetEdgeCritical(ei, true)
		}
		seen[key{from, to, kind}] = ei
	}
	for _, n := range b.included {
		nid := b.nodeMap[n] - 1
		for _, ei := range g.Out(n) {
			e := int(ei)
			add(nid, b.rep(g.EdgeTo(e)), g.EdgeKindAt(e), g.EdgeCritical(e))
		}
		for _, ei := range g.In(n) {
			e := int(ei)
			from := g.EdgeFrom(e)
			if b.nodeMap[from] > 0 {
				continue // emitted by the source's own out-pass
			}
			add(b.rep(from), nid, g.EdgeKindAt(e), g.EdgeCritical(e))
		}
	}
}
