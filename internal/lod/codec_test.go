package lod

import (
	"bytes"
	"testing"

	"graingraph/internal/export"
	"graingraph/internal/query"
)

// TestIndexCodecRoundTrip: a built index must survive Encode → DecodeIndex
// with its summary table and windowed views byte-identical to the
// original's, and the decoded bytes must re-encode identically.
func TestIndexCodecRoundTrip(t *testing.T) {
	for name, s := range subjects(t) {
		ix := Build(s.g, s.a)
		enc := ix.Encode()
		dec, err := DecodeIndex(s.g, enc)
		if err != nil {
			t.Fatalf("%s: DecodeIndex: %v", name, err)
		}
		if !bytes.Equal(dec.Encode(), enc) {
			t.Errorf("%s: decoded index re-encodes differently", name)
		}

		var want, got bytes.Buffer
		if err := query.WriteTable(&want, ix.Table()); err != nil {
			t.Fatal(err)
		}
		if err := query.WriteTable(&got, dec.Table()); err != nil {
			t.Fatal(err)
		}
		if want.String() != got.String() {
			t.Errorf("%s: summary table differs after codec round trip", name)
		}

		for _, opt := range []WindowOptions{{Depth: 1, Top: 1}, {Depth: 3, Top: 8}} {
			wg, wst, err := ix.Window(opt)
			if err != nil {
				t.Fatal(err)
			}
			gg, gst, err := dec.Window(opt)
			if err != nil {
				t.Fatal(err)
			}
			if wst != gst {
				t.Errorf("%s: window stats differ: %+v vs %+v", name, wst, gst)
			}
			want.Reset()
			got.Reset()
			if err := export.DOT(&want, wg, s.a, export.ViewStructure); err != nil {
				t.Fatal(err)
			}
			if err := export.DOT(&got, gg, s.a, export.ViewStructure); err != nil {
				t.Fatal(err)
			}
			if want.String() != got.String() {
				t.Errorf("%s: window %+v differs after codec round trip", name, opt)
			}
		}
	}
}

// TestIndexCodecRejectsMalformed fails closed on damaged payloads and on
// structurally valid payloads attached to the wrong graph.
func TestIndexCodecRejectsMalformed(t *testing.T) {
	subj := subjects(t)
	fib, loop := subj["fib"], subj["loop"]
	enc := Build(fib.g, fib.a).Encode()

	if _, err := DecodeIndex(fib.g, enc[:len(enc)/2]); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := DecodeIndex(fib.g, append(bytes.Clone(enc), 0x00)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := DecodeIndex(loop.g, enc); err == nil {
		t.Error("index for fib accepted against loop graph")
	}
	if _, err := DecodeIndex(fib.g, nil); err == nil {
		t.Error("empty payload accepted")
	}
}
