package lod

import (
	"bytes"
	"strings"
	"testing"

	"graingraph/internal/core"
	"graingraph/internal/export"
	"graingraph/internal/highlight"
	"graingraph/internal/metrics"
	"graingraph/internal/profile"
	"graingraph/internal/rts"
)

// subject is an analyzed small run: graph with critical flags set, report
// and assessment, as the analysis pipeline produces them.
type subject struct {
	g *core.Graph
	a *highlight.Assessment
}

func subjects(t *testing.T) map[string]subject {
	t.Helper()
	out := make(map[string]subject)
	add := func(name string, tr *profile.Trace) {
		g := core.Build(tr)
		rep := metrics.Analyze(tr, g, nil, metrics.Options{})
		a := highlight.Evaluate(rep, highlight.Defaults(tr.Cores, 4))
		out[name] = subject{g, a}
	}

	fibTr := rts.Run(rts.Config{Program: "fib", Cores: 8, Seed: 1}, func(c rts.Ctx) {
		var fib func(c rts.Ctx, n int) int
		fib = func(c rts.Ctx, n int) int {
			if n < 2 {
				c.Compute(20)
				return n
			}
			var a, b int
			c.Spawn(profile.Loc("fib.go", 1, "fib"), func(c rts.Ctx) { a = fib(c, n-1) })
			c.Spawn(profile.Loc("fib.go", 2, "fib"), func(c rts.Ctx) { b = fib(c, n-2) })
			c.TaskWait()
			c.Compute(20)
			return a + b
		}
		fib(c, 10)
	})
	add("fib", fibTr)

	loopTr := rts.Run(rts.Config{Program: "loop", Cores: 8, Seed: 1}, func(c rts.Ctx) {
		c.Compute(50)
		c.For(profile.Loc("loop.go", 1, "main"), 0, 256,
			rts.ForOpt{Schedule: profile.ScheduleStatic, Chunk: 4},
			func(c rts.Ctx, lo, hi int) {
				c.Compute(profile.Time(10 * (hi - lo)))
			})
		c.Compute(50)
	})
	add("loop", loopTr)
	return out
}

func totalWeight(g *core.Graph) int64 {
	var sum int64
	for n := core.NodeID(0); n < core.NodeID(g.NumNodes()); n++ {
		sum += int64(g.Weight(n))
	}
	return sum
}

func criticalNodes(g *core.Graph) int {
	count := 0
	for n := core.NodeID(0); n < core.NodeID(g.NumNodes()); n++ {
		if g.Critical(n) {
			count++
		}
	}
	return count
}

// TestIndexRootRollup pins the index's core invariant: every node's weight
// rolls up into the root task's subtree aggregate, so SubtreeWork("R") is
// the whole graph's work.
func TestIndexRootRollup(t *testing.T) {
	for name, s := range subjects(t) {
		ix := Build(s.g, s.a)
		if ix.NumTasks() == 0 {
			t.Errorf("%s: index has no tasks", name)
		}
		w, ok := ix.SubtreeWork(profile.RootID)
		if !ok {
			t.Fatalf("%s: root subtree missing from index", name)
		}
		if int64(w) != totalWeight(s.g) {
			t.Errorf("%s: root subtree work = %d, want total graph weight %d", name, w, totalWeight(s.g))
		}
		if _, ok := ix.SubtreeWork("R.does-not-exist"); ok {
			t.Errorf("%s: unknown grain reported a subtree", name)
		}
	}
}

// TestWindowCollapsesAndConserves drives a tight window over each subject:
// the view must be much smaller than the source, collapse the remainder
// into super-nodes, and conserve total work exactly (expanded nodes carry
// their own weight; super-nodes carry the aggregated rest).
func TestWindowCollapsesAndConserves(t *testing.T) {
	for name, s := range subjects(t) {
		ix := Build(s.g, s.a)
		wg, stats, err := ix.Window(WindowOptions{Depth: 1, Top: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if stats.Nodes >= s.g.NumNodes() {
			t.Errorf("%s: window kept %d of %d nodes — nothing collapsed", name, stats.Nodes, s.g.NumNodes())
		}
		if stats.SuperNodes == 0 {
			t.Errorf("%s: tight window produced no super-nodes", name)
		}
		if stats.SourceSize != s.g.NumNodes() {
			t.Errorf("%s: stats source size %d, want %d", name, stats.SourceSize, s.g.NumNodes())
		}
		if got, want := totalWeight(wg), totalWeight(s.g); got != want {
			t.Errorf("%s: windowed graph work %d, want %d (collapse must conserve work)", name, got, want)
		}
	}
}

// TestWindowCriticalSpineExact is the navigation guarantee: however tight
// the depth/top budget, every critical-path node of the source graph
// appears verbatim in the window — critical subtrees expand past the limits
// and critical chunks never fold into loop super-nodes.
func TestWindowCriticalSpineExact(t *testing.T) {
	for name, s := range subjects(t) {
		want := criticalNodes(s.g)
		if want == 0 {
			t.Fatalf("%s: analysis marked no critical nodes; test subject is useless", name)
		}
		ix := Build(s.g, s.a)
		wg, _, err := ix.Window(WindowOptions{Depth: 1, Top: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := criticalNodes(wg); got != want {
			t.Errorf("%s: window shows %d critical nodes, want all %d", name, got, want)
		}
	}
}

// TestWindowLoopChunksCollapse checks the loop-specific fold: a loop with
// more chunks than the fan-out budget renders as one aggregate chunk node
// (plus any critical chunks kept verbatim), with Members recording how many
// it absorbed.
func TestWindowLoopChunksCollapse(t *testing.T) {
	s := subjects(t)["loop"]
	chunks := 0
	for n := core.NodeID(0); n < core.NodeID(s.g.NumNodes()); n++ {
		if s.g.Kind(n) == core.NodeChunk {
			chunks++
		}
	}
	if chunks <= 8 {
		t.Fatalf("loop subject has only %d chunks; cannot exercise the collapse", chunks)
	}
	ix := Build(s.g, s.a)
	wg, _, err := ix.Window(WindowOptions{Depth: 4, Top: 2})
	if err != nil {
		t.Fatal(err)
	}
	wchunks, members := 0, 0
	for n := core.NodeID(0); n < core.NodeID(wg.NumNodes()); n++ {
		if wg.Kind(n) != core.NodeChunk {
			continue
		}
		wchunks++
		if m := wg.NodeAt(n).Members; m > 1 {
			members += m
		} else {
			members++
		}
	}
	if wchunks >= chunks {
		t.Errorf("window kept %d chunk nodes of %d — oversized loop did not collapse", wchunks, chunks)
	}
	if members != chunks {
		t.Errorf("windowed chunk nodes account for %d source chunks, want %d", members, chunks)
	}
}

// TestWindowErrors pins the validation surface: unknown roots and negative
// budgets fail loudly instead of rendering an empty or infinite view.
func TestWindowErrors(t *testing.T) {
	s := subjects(t)["fib"]
	ix := Build(s.g, s.a)
	cases := []WindowOptions{
		{Root: "R.does-not-exist"},
		{Depth: -1},
		{Top: -3},
	}
	for _, opt := range cases {
		if _, _, err := ix.Window(opt); err == nil {
			t.Errorf("Window(%+v) succeeded, want error", opt)
		}
	}
}

// TestWindowDeterministic renders the same window twice and requires
// byte-identical DOT — node order, edge order, labels, everything. The
// index is also shared across the two queries, pinning its immutability.
func TestWindowDeterministic(t *testing.T) {
	for name, s := range subjects(t) {
		ix := Build(s.g, s.a)
		render := func() []byte {
			wg, _, err := ix.Window(WindowOptions{Depth: 2, Top: 2})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			var buf bytes.Buffer
			if err := export.DOT(&buf, wg, s.a, export.ViewStructure); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return buf.Bytes()
		}
		first, second := render(), render()
		if !bytes.Equal(first, second) {
			t.Errorf("%s: two identical window queries rendered different DOT", name)
		}
		if !strings.Contains(string(first), "digraph") {
			t.Errorf("%s: windowed DOT looks malformed", name)
		}
	}
}
