package lod

import (
	"fmt"
	"strconv"
	"strings"

	"graingraph/internal/profile"
)

// ParseWindow parses the "root=R.3,depth=2,top=8" window spec shared by
// grainview's -window flag and grainserved's window endpoint into
// WindowOptions. Every key is optional and order-free; Window supplies the
// defaults for whatever is missing.
func ParseWindow(s string) (WindowOptions, error) {
	var o WindowOptions
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return o, fmt.Errorf("window: %q is not key=value (want root=..,depth=..,top=..)", part)
		}
		switch k {
		case "root":
			o.Root = profile.GrainID(v)
		case "depth":
			n, err := strconv.Atoi(v)
			if err != nil {
				return o, fmt.Errorf("window depth %q: not a number", v)
			}
			o.Depth = n
		case "top":
			n, err := strconv.Atoi(v)
			if err != nil {
				return o, fmt.Errorf("window top %q: not a number", v)
			}
			o.Top = n
		default:
			return o, fmt.Errorf("unknown window key %q (want root, depth, top)", k)
		}
	}
	return o, nil
}
