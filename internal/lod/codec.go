package lod

import (
	"fmt"

	"graingraph/internal/colenc"
	"graingraph/internal/core"
	"graingraph/internal/profile"
)

// Sidecar codec for the summary index: the columnar .ggp v2 format
// persists a built Index after first analysis so a later decode skips the
// full Build pass. Encode/DecodeIndex serialize exactly the fields Build
// computes — the slot interning map is rebuilt from the id column, and
// the graph handle is supplied by the caller at decode time. Staleness is
// handled a layer down (ggp content keys); DecodeIndex still validates
// the column structure against the graph it is attached to, so a payload
// that slipped past the key check can not index out of bounds.

// Encode serializes the index columns.
func (ix *Index) Encode() []byte {
	ids := make([]string, len(ix.ids))
	for i, id := range ix.ids {
		ids[i] = string(id)
	}
	var e colenc.Buf
	e.Strs(ids)
	e.I64sVar(int32s(ix.depth))
	e.I64sVar(int32s(ix.par))
	e.U32s(uint32s(ix.childOff))
	// Build over-allocates childIdx to numSlots; only the CSR-covered
	// prefix carries data, so serialize exactly that.
	e.U32s(uint32s(ix.childIdx[:ix.childOff[len(ix.childOff)-1]]))
	e.U32s(uint32s(ix.ownerOf))
	e.U32s(uint32s(ix.nodeOff))
	e.U32s(uint32s(ix.nodeIdx))
	e.I64sVar(ix.ownWork)
	e.Bools(ix.critSelf)
	e.I64sVar(int32s(ix.probSelf))
	e.I64sVar(ix.subWork)
	e.I64sVar(int32s(ix.subNodes))
	e.I64sVar(int32s(ix.subTasks))
	e.I64sVar(int32s(ix.subProbs))
	e.Bools(ix.critSub)
	e.U64s(ix.startMin)
	e.U64s(ix.endMax)
	return e.Bytes()
}

// DecodeIndex reconstructs an index from an encoded payload and attaches
// it to g. Structural mismatches — column length disagreement, CSR bounds
// violations, node ownership not covering g — yield an error; the caller
// falls back to Build.
func DecodeIndex(g *core.Graph, data []byte) (*Index, error) {
	d := colenc.NewReader(data)
	ix := &Index{g: g}
	ids, err := d.Strs()
	if err != nil {
		return nil, err
	}
	n := len(ids)
	ix.ids = make([]profile.GrainID, n)
	ix.slots = make(map[profile.GrainID]int32, n)
	for i, s := range ids {
		id := profile.GrainID(s)
		ix.ids[i] = id
		if _, dup := ix.slots[id]; dup {
			return nil, fmt.Errorf("lod: decode: duplicate slot id %q", id)
		}
		ix.slots[id] = int32(i)
	}
	if ix.depth, err = decI32(d); err != nil {
		return nil, err
	}
	if ix.par, err = decI32(d); err != nil {
		return nil, err
	}
	if ix.childOff, err = decU32I32(d); err != nil {
		return nil, err
	}
	if ix.childIdx, err = decU32I32(d); err != nil {
		return nil, err
	}
	if ix.ownerOf, err = decU32I32(d); err != nil {
		return nil, err
	}
	if ix.nodeOff, err = decU32I32(d); err != nil {
		return nil, err
	}
	if ix.nodeIdx, err = decU32I32(d); err != nil {
		return nil, err
	}
	if ix.ownWork, err = d.I64sVar(); err != nil {
		return nil, err
	}
	if ix.critSelf, err = d.Bools(); err != nil {
		return nil, err
	}
	if ix.probSelf, err = decI32(d); err != nil {
		return nil, err
	}
	if ix.subWork, err = d.I64sVar(); err != nil {
		return nil, err
	}
	if ix.subNodes, err = decI32(d); err != nil {
		return nil, err
	}
	if ix.subTasks, err = decI32(d); err != nil {
		return nil, err
	}
	if ix.subProbs, err = decI32(d); err != nil {
		return nil, err
	}
	if ix.critSub, err = d.Bools(); err != nil {
		return nil, err
	}
	if ix.startMin, err = d.U64s(); err != nil {
		return nil, err
	}
	if ix.endMax, err = d.U64s(); err != nil {
		return nil, err
	}
	if !d.Done() {
		return nil, fmt.Errorf("lod: decode: %d trailing bytes", d.Remaining())
	}

	for name, l := range map[string]int{
		"depth": len(ix.depth), "par": len(ix.par), "ownWork": len(ix.ownWork),
		"critSelf": len(ix.critSelf), "probSelf": len(ix.probSelf),
		"subWork": len(ix.subWork), "subNodes": len(ix.subNodes),
		"subTasks": len(ix.subTasks), "subProbs": len(ix.subProbs),
		"critSub": len(ix.critSub), "startMin": len(ix.startMin), "endMax": len(ix.endMax),
	} {
		if l != n {
			return nil, fmt.Errorf("lod: decode: column %s has %d rows, want %d", name, l, n)
		}
	}
	for _, p := range ix.par {
		if p < -1 || int(p) >= n {
			return nil, fmt.Errorf("lod: decode: parent slot %d out of range", p)
		}
	}
	if err := checkCSR("children", ix.childOff, ix.childIdx, n, n); err != nil {
		return nil, err
	}
	nn := g.NumNodes()
	if len(ix.ownerOf) != nn {
		return nil, fmt.Errorf("lod: decode: ownerOf covers %d nodes, graph has %d", len(ix.ownerOf), nn)
	}
	for _, o := range ix.ownerOf {
		if o < 0 || int(o) >= n {
			return nil, fmt.Errorf("lod: decode: owner slot %d out of range", o)
		}
	}
	if err := checkCSR("nodes", ix.nodeOff, ix.nodeIdx, n, nn); err != nil {
		return nil, err
	}
	return ix, nil
}

// checkCSR validates an offset/index CSR pair: n+1 monotonic offsets
// spanning the index column, every index within [0, bound).
func checkCSR(name string, off, idx []int32, n, bound int) error {
	if len(off) != n+1 || off[0] != 0 || int(off[n]) != len(idx) {
		return fmt.Errorf("lod: decode: %s CSR offsets malformed", name)
	}
	for i := 0; i < n; i++ {
		if off[i+1] < off[i] {
			return fmt.Errorf("lod: decode: %s CSR offsets not monotonic", name)
		}
	}
	for _, v := range idx {
		if v < 0 || int(v) >= bound {
			return fmt.Errorf("lod: decode: %s CSR index %d out of range [0,%d)", name, v, bound)
		}
	}
	return nil
}

func int32s(v []int32) []int64 {
	out := make([]int64, len(v))
	for i, x := range v {
		out[i] = int64(x)
	}
	return out
}

func uint32s(v []int32) []uint32 {
	out := make([]uint32, len(v))
	for i, x := range v {
		out[i] = uint32(x)
	}
	return out
}

func decI32(d *colenc.Reader) ([]int32, error) {
	v, err := d.I64sVar()
	if err != nil {
		return nil, err
	}
	out := make([]int32, len(v))
	for i, x := range v {
		if x < -(1<<31) || x >= (1<<31) {
			return nil, fmt.Errorf("lod: decode: value %d overflows int32", x)
		}
		out[i] = int32(x)
	}
	return out, nil
}

func decU32I32(d *colenc.Reader) ([]int32, error) {
	v, err := d.U32s()
	if err != nil {
		return nil, err
	}
	out := make([]int32, len(v))
	for i, x := range v {
		if x >= 1<<31 {
			return nil, fmt.Errorf("lod: decode: value %d overflows int32", x)
		}
		out[i] = int32(x)
	}
	return out, nil
}
