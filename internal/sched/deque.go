// Package sched provides the scheduler queue structures used by both the
// simulated runtime (internal/rts) and the native executor (internal/exec):
//
//   - Deque: a plain double-ended work-stealing queue. The simulator is
//     logically single-threaded, so no synchronization is needed; the owner
//     pushes and pops at the bottom (LIFO) and thieves steal from the top
//     (FIFO), matching the Chase-Lev discipline the paper's MIR runtime uses.
//   - ChaseLev: a lock-free dynamic circular work-stealing deque
//     (Chase & Lev, SPAA'05) built on sync/atomic for the native executor.
//   - CentralQueue: a single FIFO shared by all workers, the paper's
//     "central queue-based task scheduler" baseline whose scatter behaviour
//     Figure 11d demonstrates.
package sched

// Deque is an unsynchronized double-ended queue for the simulated runtime.
// The zero value is ready to use.
type Deque[T any] struct {
	items []T
}

// PushBottom adds an item at the owner's end.
func (d *Deque[T]) PushBottom(v T) { d.items = append(d.items, v) }

// PopBottom removes the most recently pushed item (owner side, LIFO).
func (d *Deque[T]) PopBottom() (T, bool) {
	var zero T
	n := len(d.items)
	if n == 0 {
		return zero, false
	}
	v := d.items[n-1]
	d.items[n-1] = zero
	d.items = d.items[:n-1]
	return v, true
}

// StealTop removes the oldest item (thief side, FIFO).
func (d *Deque[T]) StealTop() (T, bool) {
	var zero T
	if len(d.items) == 0 {
		return zero, false
	}
	v := d.items[0]
	d.items[0] = zero
	d.items = d.items[1:]
	return v, true
}

// PeekBottom returns the owner-side item without removing it.
func (d *Deque[T]) PeekBottom() (T, bool) {
	var zero T
	if len(d.items) == 0 {
		return zero, false
	}
	return d.items[len(d.items)-1], true
}

// PeekTop returns the thief-side item without removing it.
func (d *Deque[T]) PeekTop() (T, bool) {
	var zero T
	if len(d.items) == 0 {
		return zero, false
	}
	return d.items[0], true
}

// Len returns the number of queued items.
func (d *Deque[T]) Len() int { return len(d.items) }

// CentralQueue is a single shared FIFO task queue. The simulator models its
// lock serialization separately (see rts.CostModel); the structure itself is
// a plain queue.
type CentralQueue[T any] struct {
	items []T
}

// Enqueue appends an item.
func (q *CentralQueue[T]) Enqueue(v T) { q.items = append(q.items, v) }

// Dequeue removes the oldest item.
func (q *CentralQueue[T]) Dequeue() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

// Peek returns the oldest item without removing it.
func (q *CentralQueue[T]) Peek() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	return q.items[0], true
}

// Len returns the number of queued items.
func (q *CentralQueue[T]) Len() int { return len(q.items) }
