package sched

import (
	"sync/atomic"
)

// ChaseLev is a lock-free dynamic circular work-stealing deque after
// Chase & Lev, "Dynamic Circular Work-Stealing Deque" (SPAA'05) — the same
// structure the paper's MIR runtime uses for its task queues.
//
// The owner goroutine calls PushBottom and PopBottom; any number of thief
// goroutines may call StealTop concurrently. Items are stored as interface
// values inside an atomically swapped circular array, so the deque grows
// without locking.
type ChaseLev struct {
	top    atomic.Int64
	bottom atomic.Int64
	array  atomic.Pointer[clArray]
}

type clArray struct {
	logSize uint
	items   []atomic.Value
}

func newCLArray(logSize uint) *clArray {
	return &clArray{logSize: logSize, items: make([]atomic.Value, 1<<logSize)}
}

func (a *clArray) size() int64 { return int64(1) << a.logSize }

func (a *clArray) get(i int64) any { return a.items[i&(a.size()-1)].Load() }

func (a *clArray) put(i int64, v any) { a.items[i&(a.size()-1)].Store(v) }

func (a *clArray) grow(bottom, top int64) *clArray {
	na := newCLArray(a.logSize + 1)
	for i := top; i < bottom; i++ {
		na.put(i, a.get(i))
	}
	return na
}

// NewChaseLev returns an empty deque with a small initial capacity.
func NewChaseLev() *ChaseLev {
	d := &ChaseLev{}
	d.array.Store(newCLArray(5)) // 32 slots
	return d
}

// PushBottom adds v at the owner's end. Only the owner may call it.
func (d *ChaseLev) PushBottom(v any) {
	b := d.bottom.Load()
	t := d.top.Load()
	a := d.array.Load()
	if b-t >= a.size()-1 {
		a = a.grow(b, t)
		d.array.Store(a)
	}
	a.put(b, v)
	d.bottom.Store(b + 1)
}

// PopBottom removes the item at the owner's end. Only the owner may call it.
func (d *ChaseLev) PopBottom() (any, bool) {
	b := d.bottom.Load() - 1
	a := d.array.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	size := b - t
	if size < 0 {
		d.bottom.Store(t)
		return nil, false
	}
	v := a.get(b)
	if size > 0 {
		return v, true
	}
	// Last element: race with thieves via CAS on top.
	ok := d.top.CompareAndSwap(t, t+1)
	d.bottom.Store(t + 1)
	if !ok {
		return nil, false
	}
	return v, true
}

// StealTop removes the item at the thieves' end. Any goroutine may call it.
// It returns ok=false both when the deque is empty and when the steal lost a
// race; callers retry as they would in any work-stealing loop.
func (d *ChaseLev) StealTop() (any, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if b-t <= 0 {
		return nil, false
	}
	a := d.array.Load()
	v := a.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil, false
	}
	return v, true
}

// Len returns a point-in-time size estimate (owner's view).
func (d *ChaseLev) Len() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}
