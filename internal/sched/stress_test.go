package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestChaseLevNearEmptyStress hammers the deque's hardest regime: the
// owner pushing one or two items and immediately popping while a pack of
// thieves spins on StealTop, so almost every operation races on the last
// element (the PopBottom/StealTop CAS arbitration). Run under -race this
// doubles as a memory-model check on the top/bottom loads.
//
// Invariants checked: every pushed value is taken exactly once, by either
// the owner or a thief, and nothing is invented.
func TestChaseLevNearEmptyStress(t *testing.T) {
	const (
		thieves = 8
		rounds  = 20000
	)
	d := NewChaseLev()
	taken := make([]atomic.Int32, rounds*2)
	var stolen, popped atomic.Int64
	var stop atomic.Bool

	var wg sync.WaitGroup
	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if v, ok := d.StealTop(); ok {
					taken[v.(int)].Add(1)
					stolen.Add(1)
				} else {
					runtime.Gosched()
				}
			}
			// Drain whatever remains after the owner finishes.
			for {
				v, ok := d.StealTop()
				if !ok {
					return
				}
				taken[v.(int)].Add(1)
				stolen.Add(1)
			}
		}()
	}

	// Owner: keep the deque at one or two items so nearly every pop races a
	// steal on the same element.
	next := 0
	for r := 0; r < rounds; r++ {
		d.PushBottom(next)
		next++
		if r%2 == 1 {
			d.PushBottom(next)
			next++
		}
		if v, ok := d.PopBottom(); ok {
			taken[v.(int)].Add(1)
			popped.Add(1)
		}
	}
	stop.Store(true)
	wg.Wait()

	for v := 0; v < next; v++ {
		if n := taken[v].Load(); n != 1 {
			t.Fatalf("value %d taken %d times, want exactly once", v, n)
		}
	}
	if got := stolen.Load() + popped.Load(); got != int64(next) {
		t.Fatalf("stole %d + popped %d = %d operations, want %d",
			stolen.Load(), popped.Load(), stolen.Load()+popped.Load(), next)
	}
	if testing.Verbose() {
		t.Logf("near-empty stress: %d values, %d stolen, %d popped",
			next, stolen.Load(), popped.Load())
	}
}

// TestChaseLevGrowthUnderSteals forces the circular array to grow while
// thieves are actively reading it, covering the grow/publish path against
// concurrent top-index access.
func TestChaseLevGrowthUnderSteals(t *testing.T) {
	const total = 1 << 14 // crosses several doublings from the initial size
	d := NewChaseLev()
	taken := make([]atomic.Int32, total)
	var wg sync.WaitGroup
	var done atomic.Bool
	for th := 0; th < 4; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.StealTop(); ok {
					taken[v.(int)].Add(1)
				} else if done.Load() && d.Len() == 0 {
					return
				} else {
					runtime.Gosched()
				}
			}
		}()
	}
	for v := 0; v < total; v++ {
		d.PushBottom(v)
	}
	// Owner drains from its end too, racing the thieves on the shrinking
	// middle.
	for {
		v, ok := d.PopBottom()
		if !ok {
			break
		}
		taken[v.(int)].Add(1)
	}
	done.Store(true)
	wg.Wait()
	for v := 0; v < total; v++ {
		if n := taken[v].Load(); n != 1 {
			t.Fatalf("value %d taken %d times, want exactly once", v, n)
		}
	}
}
