package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestDequeLIFOOwner(t *testing.T) {
	var d Deque[int]
	for i := 1; i <= 3; i++ {
		d.PushBottom(i)
	}
	for want := 3; want >= 1; want-- {
		v, ok := d.PopBottom()
		if !ok || v != want {
			t.Fatalf("PopBottom = %d,%v, want %d,true", v, ok, want)
		}
	}
	if _, ok := d.PopBottom(); ok {
		t.Fatal("PopBottom on empty deque succeeded")
	}
}

func TestDequeFIFOThief(t *testing.T) {
	var d Deque[int]
	for i := 1; i <= 3; i++ {
		d.PushBottom(i)
	}
	for want := 1; want <= 3; want++ {
		v, ok := d.StealTop()
		if !ok || v != want {
			t.Fatalf("StealTop = %d,%v, want %d,true", v, ok, want)
		}
	}
	if _, ok := d.StealTop(); ok {
		t.Fatal("StealTop on empty deque succeeded")
	}
}

func TestDequeMixedEnds(t *testing.T) {
	var d Deque[string]
	d.PushBottom("a")
	d.PushBottom("b")
	d.PushBottom("c")
	if v, _ := d.StealTop(); v != "a" {
		t.Fatalf("steal got %q, want a", v)
	}
	if v, _ := d.PopBottom(); v != "c" {
		t.Fatalf("pop got %q, want c", v)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

// Property: any interleaving of pushes, pops and steals keeps the multiset
// of extracted+remaining items equal to the pushed items, with pops LIFO and
// steals FIFO relative to remaining content.
func TestDequePermutationProperty(t *testing.T) {
	f := func(ops []bool, values []int16) bool {
		var d Deque[int16]
		var model []int16 // mirror slice: bottom at end, top at front
		vi := 0
		for _, op := range ops {
			switch {
			case op && vi < len(values):
				d.PushBottom(values[vi])
				model = append(model, values[vi])
				vi++
			case len(model) > 0 && len(model)%2 == 0:
				v, ok := d.PopBottom()
				if !ok || v != model[len(model)-1] {
					return false
				}
				model = model[:len(model)-1]
			case len(model) > 0:
				v, ok := d.StealTop()
				if !ok || v != model[0] {
					return false
				}
				model = model[1:]
			default:
				if _, ok := d.PopBottom(); ok {
					return false
				}
			}
		}
		return d.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCentralQueueFIFO(t *testing.T) {
	var q CentralQueue[int]
	for i := 0; i < 5; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < 5; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("Dequeue = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("Dequeue on empty queue succeeded")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
}

func TestChaseLevSequential(t *testing.T) {
	d := NewChaseLev()
	if _, ok := d.PopBottom(); ok {
		t.Fatal("empty PopBottom succeeded")
	}
	if _, ok := d.StealTop(); ok {
		t.Fatal("empty StealTop succeeded")
	}
	for i := 0; i < 100; i++ { // exceeds the initial 32-slot array: must grow
		d.PushBottom(i)
	}
	if d.Len() != 100 {
		t.Fatalf("Len = %d, want 100", d.Len())
	}
	if v, ok := d.StealTop(); !ok || v.(int) != 0 {
		t.Fatalf("StealTop = %v,%v, want 0", v, ok)
	}
	if v, ok := d.PopBottom(); !ok || v.(int) != 99 {
		t.Fatalf("PopBottom = %v,%v, want 99", v, ok)
	}
}

func TestChaseLevSingleElementRace(t *testing.T) {
	// Push one element; pop it; both empty afterwards.
	d := NewChaseLev()
	d.PushBottom(42)
	if v, ok := d.PopBottom(); !ok || v.(int) != 42 {
		t.Fatalf("PopBottom = %v,%v", v, ok)
	}
	if _, ok := d.PopBottom(); ok {
		t.Fatal("second PopBottom succeeded")
	}
	if _, ok := d.StealTop(); ok {
		t.Fatal("StealTop after drain succeeded")
	}
}

// Concurrent stress: one owner pushing/popping, several thieves stealing.
// Every pushed value must be extracted exactly once.
func TestChaseLevConcurrentExactlyOnce(t *testing.T) {
	const (
		total   = 20000
		thieves = 4
	)
	d := NewChaseLev()
	var seen [total]atomic.Int32
	var extracted atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	record := func(v any) {
		i := v.(int)
		seen[i].Add(1)
		extracted.Add(1)
	}

	for k := 0; k < thieves; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.StealTop(); ok {
					record(v)
					continue
				}
				select {
				case <-stop:
					// Final drain after owner finished.
					for {
						v, ok := d.StealTop()
						if !ok {
							if d.Len() == 0 {
								return
							}
							continue
						}
						record(v)
					}
				default:
				}
			}
		}()
	}

	// Owner: push all values, popping occasionally.
	for i := 0; i < total; i++ {
		d.PushBottom(i)
		if i%3 == 0 {
			if v, ok := d.PopBottom(); ok {
				record(v)
			}
		}
	}
	// Owner drains what remains.
	for {
		v, ok := d.PopBottom()
		if !ok {
			break
		}
		record(v)
	}
	close(stop)
	wg.Wait()

	if got := extracted.Load(); got != total {
		t.Fatalf("extracted %d values, want %d", got, total)
	}
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("value %d extracted %d times", i, n)
		}
	}
}

func BenchmarkChaseLevOwnerOnly(b *testing.B) {
	d := NewChaseLev()
	for i := 0; i < b.N; i++ {
		d.PushBottom(i)
		d.PopBottom()
	}
}

func BenchmarkDequePushPop(b *testing.B) {
	var d Deque[int]
	for i := 0; i < b.N; i++ {
		d.PushBottom(i)
		d.PopBottom()
	}
}
