// Package highlight applies the paper's problem thresholds (§3.3) to a
// metric report: grains whose derived metrics cross a threshold are flagged
// as likely problems, given a severity in [0,1], and summarized. Views
// colour problematic grains on a red-to-yellow gradient and dim everything
// else, exactly like the paper's figures.
package highlight

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"graingraph/internal/metrics"
	"graingraph/internal/obs"
	"graingraph/internal/profile"
	"graingraph/internal/query"
	"graingraph/internal/runpool"
)

// Problem is a bitmask of per-grain problem conditions.
type Problem uint

const (
	// LowParallelBenefit: parallel benefit below 1 — the grain does not pay
	// for its own parallelization; it should run serially (inline/cutoff).
	LowParallelBenefit Problem = 1 << iota
	// WorkInflation: work deviation above threshold — the grain takes
	// longer on the parallel run than on one core (NUMA/coherence losses).
	WorkInflation
	// LowParallelism: instantaneous parallelism below the core count while
	// this grain executes — cores idle for lack of work.
	LowParallelism
	// HighScatter: sibling grains executed farther apart than one socket.
	HighScatter
	// PoorUtilization: memory-hierarchy utilization below 2 — the grain
	// stalls on memory more than it computes.
	PoorUtilization
)

// String names a single problem bit (or a combination, '+'-joined).
func (p Problem) String() string {
	if p == 0 {
		return "none"
	}
	names := []struct {
		bit  Problem
		name string
	}{
		{LowParallelBenefit, "low-parallel-benefit"},
		{WorkInflation, "work-inflation"},
		{LowParallelism, "low-parallelism"},
		{HighScatter, "high-scatter"},
		{PoorUtilization, "poor-memory-hierarchy-utilization"},
	}
	out := ""
	for _, n := range names {
		if p&n.bit != 0 {
			if out != "" {
				out += "+"
			}
			out += n.name
		}
	}
	return out
}

// AllProblems lists the individual problem bits in display order.
var AllProblems = []Problem{
	LowParallelBenefit, WorkInflation, LowParallelism, HighScatter, PoorUtilization,
}

// Thresholds are the problem cut-offs. The paper's defaults: memory
// hierarchy utilization < 2, parallel benefit < 1, load balance > 1, work
// deviation > 2, instantaneous parallelism < cores used, scatter > cores
// per socket. Programmers can refine them (the paper lowers work deviation
// to 1.2 for 359.botsspar).
type Thresholds struct {
	ParallelBenefitMin float64
	WorkDeviationMax   float64
	ParallelismMin     int
	ScatterMax         int
	UtilizationMin     float64
	LoadBalanceMax     float64
}

// Defaults returns the paper's default thresholds for a run on the given
// core count and socket width.
func Defaults(cores, coresPerSocket int) Thresholds {
	return Thresholds{
		ParallelBenefitMin: 1,
		WorkDeviationMax:   2,
		ParallelismMin:     cores,
		ScatterMax:         coresPerSocket,
		UtilizationMin:     2,
		LoadBalanceMax:     1,
	}
}

// GrainAssessment is one grain's problem evaluation.
type GrainAssessment struct {
	Metrics *metrics.GrainMetrics
	Mask    Problem
}

// Has reports whether the grain has the given problem.
func (a *GrainAssessment) Has(p Problem) bool { return a.Mask&p != 0 }

// Assessment is the evaluation of a whole report against thresholds.
type Assessment struct {
	Thresholds Thresholds
	Report     *metrics.Report
	Grains     []*GrainAssessment

	byID map[profile.GrainID]*GrainAssessment
}

// evaluateGrain is the fixed chunk size for the threshold scan.
const evaluateGrain = 1024

// Evaluate flags every grain in rep against th.
func Evaluate(rep *metrics.Report, th Thresholds) *Assessment {
	return EvaluateWith(rep, th, nil)
}

// EvaluateWith is Evaluate with the threshold scan sharded across pool:
// each assessment row depends only on its own metric row, so the rows fill
// pre-sized slots in parallel (fixed chunk boundaries, byte-identical at
// every worker count) and only the ID index is built serially. A nil pool
// is the strict serial schedule.
func EvaluateWith(rep *metrics.Report, th Thresholds, pool *runpool.Runner) *Assessment {
	return EvaluateObs(rep, th, pool, nil)
}

// fnum formats a threshold as an exact round-trip query literal.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ProblemQuery returns the query-grammar predicate defining problem p over
// the metric table (see MetricTable) at the given thresholds. The
// threshold scan itself evaluates exactly these expressions, so a
// `grainview -query "filter <predicate>"` selects precisely the grains the
// highlight pass flags.
func ProblemQuery(p Problem, th Thresholds) string {
	switch p {
	case LowParallelBenefit:
		return "benefit < " + fnum(th.ParallelBenefitMin)
	case WorkInflation:
		return "workdev > " + fnum(th.WorkDeviationMax)
	case LowParallelism:
		return "parallelism < " + strconv.Itoa(th.ParallelismMin)
	case HighScatter:
		// ScatterUnknown (-1, unrecorded cores) is not evidence of a
		// problem: the sentinel is excluded, not treated as "packed".
		return "scatter != " + strconv.Itoa(metrics.ScatterUnknown) +
			" && scatter > " + strconv.Itoa(th.ScatterMax)
	case PoorUtilization:
		// Grains that never stall are fine regardless of the ratio; grains
		// with no memory activity are not memory problems either.
		return "stall > 0 && util < " + fnum(th.UtilizationMin)
	default:
		return "benefit < 0 && benefit > 0" // unknown problem: matches nothing
	}
}

// MetricTable exposes rep's per-grain metric rows as a columnar query
// table: benefit, workdev, parallelism, scatter, util, stall, one row per
// grain in report order. The columns are filled across the pool in fixed
// chunks. This is the table the threshold scan runs its problem predicates
// over; expt builds a superset of it (adding identity columns) for ad-hoc
// -query plans.
func MetricTable(rep *metrics.Report, pool *runpool.Runner) *query.Table {
	n := len(rep.Grains)
	benefit := make([]float64, n)
	workdev := make([]float64, n)
	parallelism := make([]int64, n)
	scatter := make([]int64, n)
	util := make([]float64, n)
	stall := make([]int64, n)
	runpool.ParallelFor(pool, n, evaluateGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			gm := rep.Grains[i]
			benefit[i] = gm.ParallelBenefit
			workdev[i] = gm.WorkDeviation
			parallelism[i] = int64(gm.InstParallelism)
			scatter[i] = int64(gm.Scatter)
			util[i] = gm.Utilization
			stall[i] = int64(gm.Grain.Counters.Stall)
		}
	})
	return query.NewTable(n).
		AddFloat("benefit", benefit).
		AddFloat("workdev", workdev).
		AddInt("parallelism", parallelism).
		AddInt("scatter", scatter).
		AddFloat("util", util).
		AddInt("stall", stall)
}

// EvaluateObs is EvaluateWith reporting its threshold scan as a phase span
// under parent (internal/obs). A nil parent is exactly EvaluateWith.
//
// The scan executes through the query engine: the metric rows become a
// columnar table (MetricTable), each problem's definition compiles from
// its ProblemQuery predicate, and the five predicates evaluate as
// vectorized chunked kernels before one final chunked pass folds the match
// vectors into assessment masks. Chunk boundaries depend only on the grain
// count, so the assessment is byte-identical at every worker count — and
// identical to the hand-rolled per-grain scan this replaced.
func EvaluateObs(rep *metrics.Report, th Thresholds, pool *runpool.Runner, parent *obs.Span) *Assessment {
	sp := parent.Child("highlight")
	defer sp.End()
	a := &Assessment{
		Thresholds: th,
		Report:     rep,
		Grains:     make([]*GrainAssessment, len(rep.Grains)),
		byID:       make(map[profile.GrainID]*GrainAssessment, len(rep.Grains)),
	}
	n := len(rep.Grains)
	t := MetricTable(rep, pool)
	match := make([][]bool, len(AllProblems))
	for pi, p := range AllProblems {
		e, err := query.ParseExpr(ProblemQuery(p, th))
		if err != nil {
			panic("highlight: bad problem predicate: " + err.Error())
		}
		match[pi] = make([]bool, n)
		if err := e.EvalBool(t, pool, match[pi]); err != nil {
			panic("highlight: problem predicate failed to bind: " + err.Error())
		}
	}
	runpool.ParallelFor(pool, n, evaluateGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			ga := &GrainAssessment{Metrics: rep.Grains[i]}
			for pi, p := range AllProblems {
				if match[pi][i] {
					ga.Mask |= p
				}
			}
			a.Grains[i] = ga
		}
	})
	for _, ga := range a.Grains {
		a.byID[ga.Metrics.Grain.ID] = ga
	}
	return a
}

// Get returns the assessment row for a grain, or nil.
func (a *Assessment) Get(id profile.GrainID) *GrainAssessment { return a.byID[id] }

// Affected returns the fraction (0..1) of grains flagged with problem p —
// the paper's "Affected grains (%)" (Sort's optimization table).
func (a *Assessment) Affected(p Problem) float64 {
	if len(a.Grains) == 0 {
		return 0
	}
	n := 0
	for _, g := range a.Grains {
		if g.Has(p) {
			n++
		}
	}
	return float64(n) / float64(len(a.Grains))
}

// Count returns how many grains carry problem p.
func (a *Assessment) Count(p Problem) int {
	n := 0
	for _, g := range a.Grains {
		if g.Has(p) {
			n++
		}
	}
	return n
}

// Severity maps a grain's metric distance past the threshold into [0,1]
// (1 = worst) for the given problem view; ok=false when the grain is not
// problematic in this view.
func (a *Assessment) Severity(ga *GrainAssessment, p Problem) (float64, bool) {
	if !ga.Has(p) {
		return 0, false
	}
	th := a.Thresholds
	gm := ga.Metrics
	switch p {
	case LowParallelBenefit:
		// 0 benefit = severity 1; at threshold = 0.
		return clamp01(1 - gm.ParallelBenefit/th.ParallelBenefitMin), true
	case WorkInflation:
		// Saturates at 3x the threshold.
		return clamp01((gm.WorkDeviation - th.WorkDeviationMax) / (2 * th.WorkDeviationMax)), true
	case LowParallelism:
		return clamp01(1 - float64(gm.InstParallelism)/float64(th.ParallelismMin)), true
	case HighScatter:
		return clamp01(float64(gm.Scatter-th.ScatterMax) / float64(3*th.ScatterMax)), true
	case PoorUtilization:
		return clamp01(1 - gm.Utilization/th.UtilizationMin), true
	default:
		return 0, false
	}
}

func clamp01(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// HeatColor renders severity on the paper's red-to-yellow linear gradient
// (red = severity 1) as a #rrggbb hex string.
func HeatColor(severity float64) string {
	s := clamp01(severity)
	g := int(255 * (1 - s))
	return fmt.Sprintf("#ff%02x00", g)
}

// DimColor is the colour of non-problematic (dimmed) graph elements.
const DimColor = "#d9d9d9"

// Summary is a printable overview of an assessment.
type Summary struct {
	Program     string
	Cores       int
	TotalGrains int
	Makespan    profile.Time
	CriticalLen profile.Time
	Rows        []SummaryRow
	// WorstLoopLB is the worst loop load balance and its loop ID.
	WorstLoopLB     float64
	WorstLoopLBLoop profile.LoopID
}

// SummaryRow is one problem's aggregate.
type SummaryRow struct {
	Problem  Problem
	Count    int
	Affected float64 // fraction 0..1
}

// Summarize aggregates the assessment into a Summary.
func (a *Assessment) Summarize() Summary {
	s := Summary{
		Program:     a.Report.Trace.Program,
		Cores:       a.Report.Trace.Cores,
		TotalGrains: len(a.Grains),
		Makespan:    a.Report.Trace.Makespan(),
		CriticalLen: a.Report.CriticalPathLength,
	}
	for _, p := range AllProblems {
		s.Rows = append(s.Rows, SummaryRow{Problem: p, Count: a.Count(p), Affected: a.Affected(p)})
	}
	// Map iteration order is random: break load-balance ties by the lower
	// loop ID so summaries are byte-stable across runs.
	for id, lb := range a.Report.LoopLoadBalance {
		if lb > s.WorstLoopLB || (lb == s.WorstLoopLB && lb > 0 && id < s.WorstLoopLBLoop) {
			s.WorstLoopLB = lb
			s.WorstLoopLBLoop = id
		}
	}
	return s
}

// TopOffenders returns the worst n grains for problem p, ranked by
// severity then execution time — the paper's "sorting task definitions by
// creation count and work inflation" workflow uses rankings like this.
//
// Selection runs through query.TopK (one bounded-selection pass, the same
// kernel behind the query grammar's topk verb) with severities computed
// once per affected grain: a problem like low-parallel-benefit can flag
// every grain of a million-grain report, and sorting them all (recomputing
// severity inside the comparator) to keep the top handful used to dominate
// what-if candidate generation.
func (a *Assessment) TopOffenders(p Problem, n int) []*GrainAssessment {
	if n <= 0 {
		return nil
	}
	var (
		cand []*GrainAssessment
		sev  []float64
	)
	for _, g := range a.Grains {
		if g.Has(p) {
			s, _ := a.Severity(g, p)
			cand = append(cand, g)
			sev = append(sev, s)
		}
	}
	// Higher severity, then longer execution, then lower grain ID — a
	// total order, so the bounded selection returns exactly what a full
	// sort-and-truncate would.
	top := query.TopK(len(cand), n, func(i, j int) bool {
		if sev[i] != sev[j] {
			return sev[i] > sev[j]
		}
		gi, gj := cand[i].Metrics.Grain, cand[j].Metrics.Grain
		if gi.Exec != gj.Exec {
			return gi.Exec > gj.Exec
		}
		return gi.ID < gj.ID
	})
	out := make([]*GrainAssessment, len(top))
	for i, r := range top {
		out[i] = cand[r]
	}
	return out
}

// ByDefinition aggregates problem prevalence per source definition — the
// grouping Figure 7 uses ("FFT performance grouped by definition in source
// files").
type DefinitionStats struct {
	Loc        profile.SrcLoc
	Grains     int
	TotalExec  profile.Time
	Flagged    int     // grains with the problem
	Prevalence float64 // Flagged / Grains
}

// ByDefinition computes per-definition stats for problem p, sorted by total
// execution time (heaviest definition first).
func (a *Assessment) ByDefinition(p Problem) []DefinitionStats {
	agg := map[string]*DefinitionStats{}
	for _, g := range a.Grains {
		key := g.Metrics.Grain.Loc.String()
		ds, ok := agg[key]
		if !ok {
			ds = &DefinitionStats{Loc: g.Metrics.Grain.Loc}
			agg[key] = ds
		}
		ds.Grains++
		ds.TotalExec += g.Metrics.Grain.Exec
		if g.Has(p) {
			ds.Flagged++
		}
	}
	out := make([]DefinitionStats, 0, len(agg))
	for _, ds := range agg {
		if ds.Grains > 0 {
			ds.Prevalence = float64(ds.Flagged) / float64(ds.Grains)
		}
		out = append(out, *ds)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalExec != out[j].TotalExec {
			return out[i].TotalExec > out[j].TotalExec
		}
		return out[i].Loc.String() < out[j].Loc.String()
	})
	return out
}
