package highlight

import (
	"strings"
	"testing"

	"graingraph/internal/metrics"
	"graingraph/internal/profile"
	"graingraph/internal/rts"
)

func loc(line int, fn string) profile.SrcLoc { return profile.Loc("test.go", line, fn) }

func analyzed(cores int, prog func(rts.Ctx)) *metrics.Report {
	tr := rts.Run(rts.Config{Program: "h", Cores: cores, Seed: 1}, prog)
	return metrics.Analyze(tr, nil, nil, metrics.Options{})
}

func TestDefaults(t *testing.T) {
	th := Defaults(48, 12)
	if th.ParallelBenefitMin != 1 || th.WorkDeviationMax != 2 ||
		th.ParallelismMin != 48 || th.ScatterMax != 12 ||
		th.UtilizationMin != 2 || th.LoadBalanceMax != 1 {
		t.Errorf("defaults = %+v", th)
	}
}

func TestLowParallelBenefitFlagged(t *testing.T) {
	rep := analyzed(2, func(c rts.Ctx) {
		c.Spawn(loc(1, "tiny"), func(c rts.Ctx) { c.Compute(10) })
		c.Spawn(loc(2, "big"), func(c rts.Ctx) { c.Compute(1_000_000) })
		c.TaskWait()
	})
	a := Evaluate(rep, Defaults(2, 12))
	if !a.Get("R.0").Has(LowParallelBenefit) {
		t.Error("tiny grain not flagged for low parallel benefit")
	}
	if a.Get("R.1").Has(LowParallelBenefit) {
		t.Error("big grain wrongly flagged")
	}
}

func TestSeverityOrderingAndColors(t *testing.T) {
	rep := analyzed(2, func(c rts.Ctx) {
		c.Spawn(loc(1, "worst"), func(c rts.Ctx) { c.Compute(1) })
		c.Spawn(loc(2, "borderline"), func(c rts.Ctx) { c.Compute(1000) })
		c.TaskWait()
	})
	a := Evaluate(rep, Defaults(2, 12))
	sw, okw := a.Severity(a.Get("R.0"), LowParallelBenefit)
	sb, okb := a.Severity(a.Get("R.1"), LowParallelBenefit)
	if !okw {
		t.Fatal("worst grain has no severity")
	}
	if okb && sb >= sw {
		t.Errorf("borderline severity %f >= worst %f", sb, sw)
	}
	// Red end for severe, yellow end for mild.
	if HeatColor(1) != "#ff0000" {
		t.Errorf("HeatColor(1) = %s", HeatColor(1))
	}
	if HeatColor(0) != "#ffff00" {
		t.Errorf("HeatColor(0) = %s", HeatColor(0))
	}
	if !strings.HasPrefix(HeatColor(0.5), "#ff") {
		t.Errorf("HeatColor(0.5) = %s", HeatColor(0.5))
	}
}

func TestSeverityFalseWhenNotFlagged(t *testing.T) {
	rep := analyzed(2, func(c rts.Ctx) {
		c.Spawn(loc(1, "big"), func(c rts.Ctx) { c.Compute(1_000_000) })
		c.TaskWait()
	})
	a := Evaluate(rep, Defaults(2, 12))
	if _, ok := a.Severity(a.Get("R.0"), LowParallelBenefit); ok {
		t.Error("severity reported for unflagged problem")
	}
}

func TestPoorUtilizationRequiresStalls(t *testing.T) {
	rep := analyzed(2, func(c rts.Ctx) {
		r := c.Alloc("d", 16<<20)
		c.Spawn(loc(1, "pure"), func(c rts.Ctx) { c.Compute(500_000) })
		c.Spawn(loc(2, "memory"), func(c rts.Ctx) {
			c.Compute(10)
			c.Load(r, 0, 8<<20)
		})
		c.TaskWait()
	})
	a := Evaluate(rep, Defaults(2, 12))
	if a.Get("R.0").Has(PoorUtilization) {
		t.Error("stall-free grain flagged for poor utilization")
	}
	if !a.Get("R.1").Has(PoorUtilization) {
		t.Error("memory-bound grain not flagged")
	}
}

func TestLowParallelismFlagged(t *testing.T) {
	// Serial chain on 4 cores: every grain sees parallelism < 4.
	rep := analyzed(4, func(c rts.Ctx) {
		var rec func(c rts.Ctx, d int)
		rec = func(c rts.Ctx, d int) {
			c.Compute(100_000)
			if d == 0 {
				return
			}
			c.Spawn(loc(1, "s"), func(c rts.Ctx) { rec(c, d-1) })
			c.TaskWait()
		}
		rec(c, 5)
	})
	a := Evaluate(rep, Defaults(4, 12))
	if got := a.Affected(LowParallelism); got < 0.9 {
		t.Errorf("low-parallelism affected fraction = %.2f, want ~1", got)
	}
}

func TestAffectedAndCountConsistent(t *testing.T) {
	rep := analyzed(2, func(c rts.Ctx) {
		for i := 0; i < 10; i++ {
			c.Spawn(loc(1, "t"), func(c rts.Ctx) { c.Compute(10) })
		}
		c.TaskWait()
	})
	a := Evaluate(rep, Defaults(2, 12))
	for _, p := range AllProblems {
		want := float64(a.Count(p)) / float64(len(a.Grains))
		if got := a.Affected(p); got != want {
			t.Errorf("Affected(%v) = %f, want %f", p, got, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	rep := analyzed(2, func(c rts.Ctx) {
		c.Spawn(loc(1, "t"), func(c rts.Ctx) { c.Compute(10) })
		c.TaskWait()
	})
	a := Evaluate(rep, Defaults(2, 12))
	s := a.Summarize()
	if s.TotalGrains != 2 || s.Cores != 2 || s.Program != "h" {
		t.Errorf("summary header = %+v", s)
	}
	if len(s.Rows) != len(AllProblems) {
		t.Errorf("summary rows = %d", len(s.Rows))
	}
	if s.Makespan == 0 || s.CriticalLen == 0 {
		t.Error("summary missing makespan / critical path")
	}
}

func TestTopOffenders(t *testing.T) {
	rep := analyzed(2, func(c rts.Ctx) {
		c.Spawn(loc(1, "a"), func(c rts.Ctx) { c.Compute(5) })
		c.Spawn(loc(2, "b"), func(c rts.Ctx) { c.Compute(500) })
		c.Spawn(loc(3, "c"), func(c rts.Ctx) { c.Compute(900_000) })
		c.TaskWait()
	})
	a := Evaluate(rep, Defaults(2, 12))
	top := a.TopOffenders(LowParallelBenefit, 10)
	if len(top) < 2 {
		t.Fatalf("offenders = %d, want >= 2", len(top))
	}
	// Worst (smallest benefit) first.
	s0, _ := a.Severity(top[0], LowParallelBenefit)
	s1, _ := a.Severity(top[1], LowParallelBenefit)
	if s0 < s1 {
		t.Error("offenders not sorted by severity")
	}
	if got := a.TopOffenders(LowParallelBenefit, 1); len(got) != 1 {
		t.Errorf("limit not applied: %d", len(got))
	}
}

func TestByDefinitionGrouping(t *testing.T) {
	rep := analyzed(2, func(c rts.Ctx) {
		for i := 0; i < 5; i++ {
			c.Spawn(loc(10, "tiny"), func(c rts.Ctx) { c.Compute(10) })
		}
		for i := 0; i < 3; i++ {
			c.Spawn(loc(20, "big"), func(c rts.Ctx) { c.Compute(400_000) })
		}
		c.TaskWait()
	})
	a := Evaluate(rep, Defaults(2, 12))
	defs := a.ByDefinition(LowParallelBenefit)
	if len(defs) != 3 { // tiny, big, root
		t.Fatalf("definitions = %d, want 3", len(defs))
	}
	// Sorted by total exec: big first.
	if defs[0].Loc.Func != "big" {
		t.Errorf("heaviest definition = %s, want big", defs[0].Loc)
	}
	for _, d := range defs {
		if d.Loc.Func == "tiny" {
			if d.Grains != 5 || d.Prevalence < 0.99 {
				t.Errorf("tiny stats = %+v", d)
			}
		}
	}
}

func TestProblemString(t *testing.T) {
	if Problem(0).String() != "none" {
		t.Error("zero problem name")
	}
	if LowParallelBenefit.String() != "low-parallel-benefit" {
		t.Errorf("name = %s", LowParallelBenefit.String())
	}
	combo := LowParallelBenefit | PoorUtilization
	if !strings.Contains(combo.String(), "+") {
		t.Errorf("combo name = %s", combo.String())
	}
}

func TestRefinedThreshold(t *testing.T) {
	// The paper lowers work deviation to 1.2 for botsspar; verify the
	// threshold is honoured.
	gm := &metrics.GrainMetrics{Grain: &profile.Grain{ID: "x"}, WorkDeviation: 1.5, ParallelBenefit: 10, InstParallelism: 100}
	rep := &metrics.Report{Grains: []*metrics.GrainMetrics{gm}, Trace: &profile.Trace{}}
	loose := Evaluate(rep, Thresholds{WorkDeviationMax: 2, ParallelismMin: 1, ParallelBenefitMin: 1})
	tight := Evaluate(rep, Thresholds{WorkDeviationMax: 1.2, ParallelismMin: 1, ParallelBenefitMin: 1})
	if loose.Grains[0].Has(WorkInflation) {
		t.Error("1.5 deviation flagged at threshold 2")
	}
	if !tight.Grains[0].Has(WorkInflation) {
		t.Error("1.5 deviation not flagged at threshold 1.2")
	}
}

func TestUnknownScatterNotFlagged(t *testing.T) {
	// ScatterUnknown (-1) means "could not measure", not "packed" and not
	// "scattered": the highlight pass must skip it even when the threshold
	// is negative enough that a naive comparison would flag it.
	unknown := &metrics.GrainMetrics{
		Grain: &profile.Grain{ID: "u"}, Scatter: metrics.ScatterUnknown,
		ParallelBenefit: 10, InstParallelism: 100,
	}
	scattered := &metrics.GrainMetrics{
		Grain: &profile.Grain{ID: "s"}, Scatter: 30,
		ParallelBenefit: 10, InstParallelism: 100,
	}
	rep := &metrics.Report{Grains: []*metrics.GrainMetrics{unknown, scattered}, Trace: &profile.Trace{}}
	a := Evaluate(rep, Thresholds{ScatterMax: 12, ParallelismMin: 1, ParallelBenefitMin: 1, WorkDeviationMax: 2})
	if a.Get("u").Has(HighScatter) {
		t.Error("unknown scatter flagged as high scatter")
	}
	if !a.Get("s").Has(HighScatter) {
		t.Error("genuinely scattered grain not flagged")
	}
}
