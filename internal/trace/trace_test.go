package trace

import (
	"strings"
	"testing"

	"graingraph/internal/cache"
	"graingraph/internal/profile"
)

func ev(i int) Event {
	return Event{Kind: KindTaskSpawn, At: profile.Time(i), Start: profile.Time(i), Worker: i}
}

func TestRingSinkUnwrapped(t *testing.T) {
	s := NewRingSink(8)
	for i := 0; i < 5; i++ {
		s.Emit(ev(i))
	}
	if s.Len() != 5 || s.Total() != 5 || s.Dropped() != 0 {
		t.Fatalf("len/total/dropped = %d/%d/%d, want 5/5/0", s.Len(), s.Total(), s.Dropped())
	}
	for i, e := range s.Events() {
		if e.Worker != i {
			t.Errorf("event %d has worker %d, want emission order preserved", i, e.Worker)
		}
	}
}

func TestRingSinkWrapAround(t *testing.T) {
	s := NewRingSink(4)
	for i := 0; i < 10; i++ {
		s.Emit(ev(i))
	}
	if s.Len() != 4 || s.Total() != 10 || s.Dropped() != 6 {
		t.Fatalf("len/total/dropped = %d/%d/%d, want 4/10/6", s.Len(), s.Total(), s.Dropped())
	}
	got := s.Events()
	for i, want := range []int{6, 7, 8, 9} {
		if got[i].Worker != want {
			t.Errorf("event %d has worker %d, want %d (most recent window, oldest first)",
				i, got[i].Worker, want)
		}
	}
}

func TestRingSinkDefaultCapacity(t *testing.T) {
	s := NewRingSink(0)
	if cap(s.buf) != DefaultRingCapacity {
		t.Errorf("default capacity = %d, want %d", cap(s.buf), DefaultRingCapacity)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindTaskSpawn, KindTaskStart, KindSteal, KindPark,
		KindResume, KindTaskEnd, KindFragment, KindChunk}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Errorf("kind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	for k := OverheadKind(0); k < numOverheadKinds; k++ {
		if k.String() == "unknown" {
			t.Errorf("overhead kind %d unnamed", k)
		}
	}
}

func TestMetricsTotalsAndOverheadSplit(t *testing.T) {
	m := NewMetrics()
	m.Reset(3)
	m.Makespan = 100
	for i := 0; i < 3; i++ {
		w := m.W(i)
		w.Steals = uint64(i)
		w.FailedSteals = uint64(2 * i)
		w.Parks = 1
		w.Resumes = 1
		w.Spawns = 5
		w.InlinedSpawns = 2
		w.DequePushes = 4
		w.DequePops = 3
		w.QueueOps = 1
		w.OverheadBy[OvSpawn] = 10
		w.OverheadBy[OvSteal] = 5
		w.Overhead = 15
		w.Busy = 60
		w.Idle = 25
	}
	if m.Steals() != 3 || m.FailedSteals() != 6 {
		t.Errorf("steals/failed = %d/%d, want 3/6", m.Steals(), m.FailedSteals())
	}
	if m.Parks() != 3 || m.Resumes() != 3 || m.Spawns() != 15 || m.InlinedSpawns() != 6 {
		t.Error("park/resume/spawn totals wrong")
	}
	if m.DequePushes() != 12 || m.DequePops() != 9 || m.QueueOps() != 3 {
		t.Error("deque/queue totals wrong")
	}
	for i := 0; i < 3; i++ {
		if m.OverheadOf(i) != m.Workers[i].Overhead {
			t.Errorf("worker %d overhead split %d != total %d",
				i, m.OverheadOf(i), m.Workers[i].Overhead)
		}
	}
	busy, over, idle := m.timeShares()
	if got := busy + over + idle; got < 0.999 || got > 1.001 {
		t.Errorf("time shares sum to %f, want 1", got)
	}
}

func TestMetricsSortedDefs(t *testing.T) {
	m := NewMetrics()
	m.Reset(1)
	a := m.Def(profile.Loc("a.go", 1, "light"))
	a.Exec, a.Grains = 10, 1
	b := m.Def(profile.Loc("b.go", 2, "heavy"))
	b.Exec, b.Grains = 1000, 4
	// Tie on Exec: broken by location string.
	c1 := m.Def(profile.Loc("c.go", 1, "tie"))
	c1.Exec = 10
	defs := m.SortedDefs()
	if len(defs) != 3 {
		t.Fatalf("defs = %d, want 3", len(defs))
	}
	if defs[0].Loc.Func != "heavy" {
		t.Errorf("heaviest def first, got %v", defs[0].Loc)
	}
	if defs[1].Loc.File != "a.go" || defs[2].Loc.File != "c.go" {
		t.Errorf("tie not broken by location: %v, %v", defs[1].Loc, defs[2].Loc)
	}
	// Def returns the same aggregate for the same location.
	if m.Def(profile.Loc("a.go", 1, "light")) != a {
		t.Error("Def not idempotent per location")
	}
}

func TestCacheHitRates(t *testing.T) {
	c := cache.Counters{Accesses: 100, L1Miss: 20, L2Miss: 10, L3Miss: 4, Remote: 1}
	l1, l2, l3, mem, remote := CacheHitRates(c)
	if l1 != 0.8 {
		t.Errorf("l1 = %f, want 0.8", l1)
	}
	if l2 != 0.5 {
		t.Errorf("l2 = %f, want 0.5", l2)
	}
	if l3 != 0.6 {
		t.Errorf("l3 = %f, want 0.6", l3)
	}
	if mem != 4 || remote != 0.25 {
		t.Errorf("mem/remote = %d/%f, want 4/0.25", mem, remote)
	}
	// No activity: perfect hit rates, no memory traffic.
	l1, _, _, mem, remote = CacheHitRates(cache.Counters{})
	if l1 != 1 || mem != 0 || remote != 0 {
		t.Errorf("empty counters: l1 %f mem %d remote %f", l1, mem, remote)
	}
}

func TestSummaryAndRenderStable(t *testing.T) {
	m := NewMetrics()
	m.Reset(2)
	m.Makespan = 1000
	m.W(0).Busy, m.W(0).Overhead, m.W(0).Idle = 600, 100, 300
	m.W(1).Busy, m.W(1).Idle = 500, 500
	d := m.Def(profile.Loc("a.go", 3, "f"))
	d.Grains, d.Exec = 7, 1100
	if s := m.Summary(); !strings.Contains(s, "steals 0") || !strings.Contains(s, "busy 55.0%") {
		t.Errorf("summary = %q", s)
	}
	var b1, b2 strings.Builder
	if err := m.Render(&b1); err != nil {
		t.Fatal(err)
	}
	if err := m.Render(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("Render not byte-stable across calls")
	}
	if !strings.Contains(b1.String(), "a.go:3(f)") {
		t.Errorf("render missing definition row:\n%s", b1.String())
	}
}
