package trace

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"graingraph/internal/cache"
	"graingraph/internal/profile"
)

// OverheadKind classifies runtime-overhead cycles. The per-kind split
// mirrors exactly what the engine adds to each worker's overhead clock,
// so the registry total reconciles cycle-for-cycle with the profile's
// WorkerStat.Overhead (internal/timeline cross-checks this).
type OverheadKind int

const (
	// OvSpawn is task-creation cost paid by the spawning worker.
	OvSpawn OverheadKind = iota
	// OvSteal is the thief-side cost of a successful steal.
	OvSteal
	// OvPop is the owner-side deque pop cost.
	OvPop
	// OvResume is the cost of resuming a suspended task.
	OvResume
	// OvTaskEnd is task teardown cost.
	OvTaskEnd
	// OvJoin is taskwait bookkeeping when all children already finished.
	OvJoin
	// OvQueue is central-queue enqueue/dequeue cost.
	OvQueue
	// OvBookkeep is parallel-for chunk-delivery bookkeeping.
	OvBookkeep

	numOverheadKinds
)

// String names the overhead kind.
func (k OverheadKind) String() string {
	switch k {
	case OvSpawn:
		return "spawn"
	case OvSteal:
		return "steal"
	case OvPop:
		return "pop"
	case OvResume:
		return "resume"
	case OvTaskEnd:
		return "task-end"
	case OvJoin:
		return "join"
	case OvQueue:
		return "queue"
	case OvBookkeep:
		return "bookkeep"
	default:
		return "unknown"
	}
}

// WorkerMetrics aggregates one worker's scheduler and cache counters.
type WorkerMetrics struct {
	// Time split in cycles; Busy+Overhead+Idle == Makespan once the run
	// finalizes.
	Busy, Overhead, Idle profile.Time

	Spawns        uint64 // tasks this worker created
	InlinedSpawns uint64 // of which executed undeferred (throttled)
	DequePushes   uint64 // local deque pushes
	DequePops     uint64 // local deque pops
	Steals        uint64 // successful steals by this worker (as thief)
	FailedSteals  uint64 // modeled empty-deque probes before each steal
	QueueOps      uint64 // central-queue enqueues/dequeues
	Parks         uint64 // taskwait suspensions of tasks owned here
	Resumes       uint64 // task resumptions executed here

	// OverheadBy splits Overhead by cause; the entries sum to Overhead.
	OverheadBy [numOverheadKinds]profile.Time

	// Cache aggregates the cache/NUMA counters of every fragment and
	// chunk this worker executed.
	Cache cache.Counters
}

// DefMetrics aggregates counters per grain source definition
// ("file:line(func)"), the grouping the paper uses throughout §4.
type DefMetrics struct {
	Loc    profile.SrcLoc
	Grains uint64       // task/chunk instances of this definition
	Exec   profile.Time // total execution cycles
	Cache  cache.Counters
}

// Metrics is the runtime counter registry. It is filled by rts.Run when
// attached via rts.Config.Metrics; all counters are plain increments on
// the simulator's single thread, so collection is always cheap.
type Metrics struct {
	Makespan profile.Time
	Workers  []WorkerMetrics
	// Defs maps SrcLoc.String() to per-definition aggregates. Iterate via
	// SortedDefs for deterministic output.
	Defs map[string]*DefMetrics
}

// NewMetrics returns an empty registry; rts.Run sizes it via Reset.
func NewMetrics() *Metrics {
	return &Metrics{Defs: make(map[string]*DefMetrics)}
}

// Reset clears the registry and sizes it for the given worker count.
func (m *Metrics) Reset(workers int) {
	m.Makespan = 0
	m.Workers = make([]WorkerMetrics, workers)
	m.Defs = make(map[string]*DefMetrics)
}

// W returns worker i's counters (for the runtime's increment sites).
func (m *Metrics) W(i int) *WorkerMetrics { return &m.Workers[i] }

// Def returns (creating if needed) the aggregate for a source definition.
func (m *Metrics) Def(loc profile.SrcLoc) *DefMetrics {
	key := loc.String()
	d := m.Defs[key]
	if d == nil {
		d = &DefMetrics{Loc: loc}
		m.Defs[key] = d
	}
	return d
}

// SortedDefs returns the per-definition aggregates ordered by total
// execution time (heaviest first; ties by location string) — the
// deterministic iteration order every renderer must use.
func (m *Metrics) SortedDefs() []*DefMetrics {
	out := make([]*DefMetrics, 0, len(m.Defs))
	for _, d := range m.Defs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Exec != out[j].Exec {
			return out[i].Exec > out[j].Exec
		}
		return out[i].Loc.String() < out[j].Loc.String()
	})
	return out
}

// sum folds one worker counter across all workers.
func (m *Metrics) sum(f func(*WorkerMetrics) uint64) uint64 {
	var t uint64
	for i := range m.Workers {
		t += f(&m.Workers[i])
	}
	return t
}

// Steals returns the total successful steals.
func (m *Metrics) Steals() uint64 {
	return m.sum(func(w *WorkerMetrics) uint64 { return w.Steals })
}

// FailedSteals returns the total modeled failed steal probes.
func (m *Metrics) FailedSteals() uint64 {
	return m.sum(func(w *WorkerMetrics) uint64 { return w.FailedSteals })
}

// Parks returns the total taskwait suspensions.
func (m *Metrics) Parks() uint64 {
	return m.sum(func(w *WorkerMetrics) uint64 { return w.Parks })
}

// Resumes returns the total task resumptions.
func (m *Metrics) Resumes() uint64 {
	return m.sum(func(w *WorkerMetrics) uint64 { return w.Resumes })
}

// Spawns returns the total task creations.
func (m *Metrics) Spawns() uint64 {
	return m.sum(func(w *WorkerMetrics) uint64 { return w.Spawns })
}

// InlinedSpawns returns the total throttled (undeferred) task creations.
func (m *Metrics) InlinedSpawns() uint64 {
	return m.sum(func(w *WorkerMetrics) uint64 { return w.InlinedSpawns })
}

// DequePushes returns the total local deque pushes.
func (m *Metrics) DequePushes() uint64 {
	return m.sum(func(w *WorkerMetrics) uint64 { return w.DequePushes })
}

// DequePops returns the total local deque pops.
func (m *Metrics) DequePops() uint64 {
	return m.sum(func(w *WorkerMetrics) uint64 { return w.DequePops })
}

// QueueOps returns the total central-queue operations.
func (m *Metrics) QueueOps() uint64 {
	return m.sum(func(w *WorkerMetrics) uint64 { return w.QueueOps })
}

// TotalCache aggregates the cache counters across all workers.
func (m *Metrics) TotalCache() cache.Counters {
	var c cache.Counters
	for i := range m.Workers {
		c.Add(m.Workers[i].Cache)
	}
	return c
}

// OverheadOf returns worker i's overhead as the sum of its per-kind
// split (which must equal WorkerMetrics.Overhead).
func (m *Metrics) OverheadOf(i int) profile.Time {
	var t profile.Time
	for _, v := range m.Workers[i].OverheadBy {
		t += v
	}
	return t
}

// CacheHitRates derives per-level hit rates from counters: level i's
// accesses are the misses of level i-1 (L1 sees every access). mem is
// the number of memory accesses and remote the fraction of those served
// by a remote NUMA node.
func CacheHitRates(c cache.Counters) (l1, l2, l3 float64, mem uint64, remote float64) {
	rate := func(hits, accesses uint64) float64 {
		if accesses == 0 {
			return 1
		}
		return float64(hits) / float64(accesses)
	}
	l1 = rate(c.Accesses-c.L1Miss, c.Accesses)
	l2 = rate(c.L1Miss-c.L2Miss, c.L1Miss)
	l3 = rate(c.L2Miss-c.L3Miss, c.L2Miss)
	mem = c.L3Miss
	if mem > 0 {
		remote = float64(c.Remote) / float64(mem)
	}
	return
}

// timeShares returns the busy/overhead/idle fractions of makespan·workers.
func (m *Metrics) timeShares() (busy, over, idle float64) {
	var b, o, id profile.Time
	for i := range m.Workers {
		b += m.Workers[i].Busy
		o += m.Workers[i].Overhead
		id += m.Workers[i].Idle
	}
	total := m.Makespan * profile.Time(len(m.Workers))
	if total == 0 {
		return 0, 0, 0
	}
	return float64(b) / float64(total), float64(o) / float64(total), float64(id) / float64(total)
}

// Summary renders the registry as one line — the figure-footer format:
// scheduler counters, time split and per-level cache hit rates.
func (m *Metrics) Summary() string {
	busy, over, idle := m.timeShares()
	l1, l2, l3, mem, remote := CacheHitRates(m.TotalCache())
	return fmt.Sprintf(
		"steals %d (%d failed probes), parks %d, resumes %d, spawns %d (%d inlined), "+
			"busy %.1f%% overhead %.1f%% idle %.1f%%, "+
			"L1 %.1f%% L2 %.1f%% L3 %.1f%% hit, mem %d (%.1f%% remote)",
		m.Steals(), m.FailedSteals(), m.Parks(), m.Resumes(), m.Spawns(), m.InlinedSpawns(),
		100*busy, 100*over, 100*idle, 100*l1, 100*l2, 100*l3, mem, 100*remote)
}

// Render writes the full multi-line stats report: global scheduler
// counters, the aggregate time split, per-level cache hit rates, and the
// heaviest grain definitions. Output is byte-stable across runs.
func (m *Metrics) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "makespan\t%d cycles × %d workers\n", m.Makespan, len(m.Workers))
	fmt.Fprintf(tw, "steals\t%d successful, %d failed probes\n", m.Steals(), m.FailedSteals())
	fmt.Fprintf(tw, "deque ops\t%d pushes, %d pops\n", m.DequePushes(), m.DequePops())
	if q := m.QueueOps(); q > 0 {
		fmt.Fprintf(tw, "central-queue ops\t%d\n", q)
	}
	fmt.Fprintf(tw, "parks / resumes\t%d / %d\n", m.Parks(), m.Resumes())
	fmt.Fprintf(tw, "spawns\t%d (%d inlined by throttling)\n", m.Spawns(), m.InlinedSpawns())
	busy, over, idle := m.timeShares()
	fmt.Fprintf(tw, "time split\tbusy %.1f%%, overhead %.1f%%, idle %.1f%%\n",
		100*busy, 100*over, 100*idle)
	c := m.TotalCache()
	l1, l2, l3, mem, remote := CacheHitRates(c)
	fmt.Fprintf(tw, "cache\tL1 %.1f%%, L2 %.1f%%, L3 %.1f%% hit\n", 100*l1, 100*l2, 100*l3)
	fmt.Fprintf(tw, "memory\t%d line transfers, %.1f%% remote, %d stall cycles\n",
		mem, 100*remote, c.Stall)
	defs := m.SortedDefs()
	if len(defs) > 0 {
		fmt.Fprintln(tw, "heaviest definitions\tgrains\texec cycles")
		max := 8
		if len(defs) < max {
			max = len(defs)
		}
		for _, d := range defs[:max] {
			fmt.Fprintf(tw, "  %s\t%d\t%d\n", d.Loc, d.Grains, d.Exec)
		}
	}
	return tw.Flush()
}
