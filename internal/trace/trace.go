// Package trace is the runtime observability layer: a structured,
// low-overhead event stream emitted by the simulated runtime
// (internal/rts) through a pluggable Sink, plus an always-cheap Metrics
// registry of scheduler and cache/NUMA counters.
//
// The event stream records what the runtime *did* (task spawn, start,
// steal, park, resume, end; chunk dispatch; per-fragment cache-counter
// snapshots) in virtual-time order, which is the substrate every later
// analysis — Perfetto export, what-if studies, regression detection — is
// built on. Both facilities are strictly opt-in: a nil Sink / nil Metrics
// in rts.Config keeps the hot path untouched.
package trace

import (
	"graingraph/internal/cache"
	"graingraph/internal/profile"
)

// Kind is the event type.
type Kind uint8

const (
	// KindTaskSpawn records a task creation by its parent.
	KindTaskSpawn Kind = iota
	// KindTaskStart records a task's first fragment beginning execution.
	KindTaskStart
	// KindSteal records a successful steal: Worker is the thief, Victim
	// the deque owner the task was taken from.
	KindSteal
	// KindPark records a task suspending at a taskwait.
	KindPark
	// KindResume records a suspended task resuming on its owner worker.
	KindResume
	// KindTaskEnd records a task finishing its last fragment.
	KindTaskEnd
	// KindFragment records a completed execution fragment of a task,
	// carrying the cache-counter snapshot accumulated over the fragment.
	KindFragment
	// KindChunk records a dispatched-and-executed parallel-for chunk,
	// carrying its cache-counter snapshot.
	KindChunk
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case KindTaskSpawn:
		return "spawn"
	case KindTaskStart:
		return "start"
	case KindSteal:
		return "steal"
	case KindPark:
		return "park"
	case KindResume:
		return "resume"
	case KindTaskEnd:
		return "end"
	case KindFragment:
		return "fragment"
	case KindChunk:
		return "chunk"
	default:
		return "unknown"
	}
}

// Event is one structured runtime event. Instant events (spawn, start,
// steal, park, resume, end) have Start == At; span events (fragment,
// chunk) cover [Start, At).
type Event struct {
	Kind   Kind
	Start  profile.Time // span begin; == At for instant events
	At     profile.Time // event time / span end
	Worker int          // executing (or thieving) worker
	Victim int          // KindSteal: the deque owner; -1 otherwise
	Grain  profile.GrainID
	Loc    profile.SrcLoc
	// Counters is the cache-counter snapshot of the fragment or chunk
	// (KindFragment / KindChunk only).
	Counters cache.Counters
}

// Sink receives runtime events in virtual-time emission order. The
// runtime is single-threaded per simulation, so implementations need no
// locking; a native (wall-clock) producer must wrap the sink itself.
type Sink interface {
	Emit(Event)
}

// DefaultRingCapacity is the RingSink capacity used when none is given.
const DefaultRingCapacity = 1 << 16

// RingSink is a bounded ring-buffer Sink. When full it overwrites the
// oldest events, so the buffer always holds the most recent window;
// Dropped reports how many events were overwritten.
type RingSink struct {
	buf   []Event
	next  int    // write cursor
	total uint64 // events ever emitted
}

// NewRingSink returns a ring sink holding at most capacity events
// (DefaultRingCapacity if capacity <= 0).
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &RingSink{buf: make([]Event, 0, capacity)}
}

// Emit appends e, overwriting the oldest event when full.
func (s *RingSink) Emit(e Event) {
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, e)
	} else {
		s.buf[s.next] = e
	}
	s.next = (s.next + 1) % cap(s.buf)
	s.total++
}

// Len returns the number of buffered events.
func (s *RingSink) Len() int { return len(s.buf) }

// Total returns the number of events ever emitted.
func (s *RingSink) Total() uint64 { return s.total }

// Dropped returns how many events were overwritten by newer ones.
func (s *RingSink) Dropped() uint64 { return s.total - uint64(len(s.buf)) }

// Events returns the buffered events in emission order (oldest first).
func (s *RingSink) Events() []Event {
	out := make([]Event, 0, len(s.buf))
	if len(s.buf) == cap(s.buf) { // wrapped: oldest is at the cursor
		out = append(out, s.buf[s.next:]...)
		out = append(out, s.buf[:s.next]...)
		return out
	}
	return append(out, s.buf...)
}
