package metrics

import (
	"sort"

	"graingraph/internal/profile"
	"graingraph/internal/runpool"
)

// scatterSetGrain is the fixed number of sibling sets per chunk: sets are
// independent, so they shard across the pool in chunks whose boundaries
// depend only on the set count.
const scatterSetGrain = 32

// scatter assigns each grain the median pairwise core distance of its
// sibling set (paper §3.2). Sets larger than opts.ScatterSample are
// deterministically subsampled (every k-th sibling) to bound the quadratic
// pairwise computation.
//
// Sibling sets partition the grains, so every set's computation is
// independent and writes disjoint metric rows: the sets run data-parallel
// across opts.Pool, ordered by parent grain ID so the chunking is
// deterministic, with per-worker scratch reusing the core and distance
// buffers across the sets a worker processes.
//
// Grains whose executing core was not recorded (Core < 0) cannot
// participate in the distance computation and receive ScatterUnknown, as
// does every member of a sibling set with fewer than two recorded cores —
// "we could not measure" must stay distinguishable from "perfectly packed"
// (scatter 0). Only children keep scatter 0: a grain with no siblings is
// trivially unscattered.
func scatter(grains []*profile.Grain, byID map[profile.GrainID]*GrainMetrics,
	tr *profile.Trace, opts Options) {

	bySet := profile.GrainsByParent(grains)
	parents := make([]profile.GrainID, 0, len(bySet))
	for p := range bySet {
		parents = append(parents, p)
	}
	sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })

	// Distances follow the paper's core-identifier convention
	// (machine.Topology.CoreDistance): |core_i - core_j|.
	type scratch struct {
		cores []int
		dists []int
	}
	runpool.ParallelForScratch(opts.Pool, len(parents), scatterSetGrain,
		func() *scratch { return &scratch{} },
		func(_, lo, hi int, s *scratch) {
			for si := lo; si < hi; si++ {
				siblings := bySet[parents[si]]
				if len(siblings) < 2 {
					for _, g := range siblings {
						if gm := byID[g.ID]; gm != nil {
							gm.Scatter = 0
						}
					}
					continue
				}
				s.cores = s.cores[:0]
				for _, g := range siblings {
					if g.Core >= 0 {
						s.cores = append(s.cores, g.Core)
					}
				}
				val := ScatterUnknown
				if len(s.cores) >= 2 {
					var med int
					med, s.dists = medianPairwiseDistanceBuf(
						subsampleCores(s.cores, opts.ScatterSample), s.dists)
					val = med
				}
				for _, g := range siblings {
					gm := byID[g.ID]
					if gm == nil {
						continue
					}
					if g.Core < 0 {
						gm.Scatter = ScatterUnknown
						continue
					}
					gm.Scatter = val
				}
			}
		})
}

// subsampleCores bounds the sibling set to at most limit cores by taking
// every step-th element. The stride uses ceiling division: floor division
// would produce step 1 for sets just under 2×limit (e.g. 4095 cores with
// limit 2048), returning the whole set and voiding the quadratic bound the
// cap promises. The result always satisfies len <= limit for limit >= 1.
// The returned slice may alias cores.
func subsampleCores(cores []int, limit int) []int {
	if limit <= 0 || len(cores) <= limit {
		return cores
	}
	step := (len(cores) + limit - 1) / limit
	sampled := cores[:0]
	for i := 0; i < len(cores); i += step {
		sampled = append(sampled, cores[i])
	}
	return sampled
}

// medianPairwiseDistance returns the median |a-b| over all unordered pairs.
// For an even pair count the upper-middle element is taken (index n/2 of the
// sorted distances) — the same convention MedianGrainLength and medianTimes
// use, biasing ties toward reporting scatter rather than hiding it.
func medianPairwiseDistance(cores []int) int {
	med, _ := medianPairwiseDistanceBuf(cores, nil)
	return med
}

// medianPairwiseDistanceBuf is medianPairwiseDistance reusing buf for the
// distance accumulation; it returns the (possibly grown) buffer so callers
// in the scatter kernel amortize the allocation across sibling sets.
func medianPairwiseDistanceBuf(cores []int, buf []int) (int, []int) {
	n := len(cores)
	if n < 2 {
		return 0, buf
	}
	dists := buf[:0]
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := cores[i] - cores[j]
			if d < 0 {
				d = -d
			}
			dists = append(dists, d)
		}
	}
	sort.Ints(dists)
	return dists[len(dists)/2], dists
}
