package metrics

import (
	"sort"

	"graingraph/internal/profile"
)

// scatter assigns each grain the median pairwise core distance of its
// sibling set (paper §3.2). Sets larger than opts.ScatterSample are
// deterministically subsampled (every k-th sibling) to bound the quadratic
// pairwise computation.
//
// Grains whose executing core was not recorded (Core < 0) cannot
// participate in the distance computation and receive ScatterUnknown, as
// does every member of a sibling set with fewer than two recorded cores —
// "we could not measure" must stay distinguishable from "perfectly packed"
// (scatter 0). Only children keep scatter 0: a grain with no siblings is
// trivially unscattered.
func scatter(grains []*profile.Grain, byID map[profile.GrainID]*GrainMetrics,
	tr *profile.Trace, opts Options) {

	// Distances follow the paper's core-identifier convention
	// (machine.Topology.CoreDistance): |core_i - core_j|.
	bySet := profile.GrainsByParent(grains)
	for _, siblings := range bySet {
		if len(siblings) < 2 {
			for _, g := range siblings {
				if gm := byID[g.ID]; gm != nil {
					gm.Scatter = 0
				}
			}
			continue
		}
		cores := make([]int, 0, len(siblings))
		for _, g := range siblings {
			if g.Core >= 0 {
				cores = append(cores, g.Core)
			}
		}
		val := ScatterUnknown
		if len(cores) >= 2 {
			val = medianPairwiseDistance(subsampleCores(cores, opts.ScatterSample))
		}
		for _, g := range siblings {
			gm := byID[g.ID]
			if gm == nil {
				continue
			}
			if g.Core < 0 {
				gm.Scatter = ScatterUnknown
				continue
			}
			gm.Scatter = val
		}
	}
}

// subsampleCores bounds the sibling set to at most limit cores by taking
// every step-th element. The stride uses ceiling division: floor division
// would produce step 1 for sets just under 2×limit (e.g. 4095 cores with
// limit 2048), returning the whole set and voiding the quadratic bound the
// cap promises. The result always satisfies len <= limit for limit >= 1.
func subsampleCores(cores []int, limit int) []int {
	if limit <= 0 || len(cores) <= limit {
		return cores
	}
	step := (len(cores) + limit - 1) / limit
	sampled := make([]int, 0, limit)
	for i := 0; i < len(cores); i += step {
		sampled = append(sampled, cores[i])
	}
	return sampled
}

// medianPairwiseDistance returns the median |a-b| over all unordered pairs.
// For an even pair count the upper-middle element is taken (index n/2 of the
// sorted distances) — the same convention MedianGrainLength and medianTimes
// use, biasing ties toward reporting scatter rather than hiding it.
func medianPairwiseDistance(cores []int) int {
	n := len(cores)
	if n < 2 {
		return 0
	}
	dists := make([]int, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := cores[i] - cores[j]
			if d < 0 {
				d = -d
			}
			dists = append(dists, d)
		}
	}
	sort.Ints(dists)
	return dists[len(dists)/2]
}
