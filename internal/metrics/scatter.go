package metrics

import (
	"sort"

	"graingraph/internal/profile"
)

// scatter assigns each grain the median pairwise core distance of its
// sibling set (paper §3.2). Sets larger than opts.ScatterSample are
// deterministically subsampled (every k-th sibling) to bound the quadratic
// pairwise computation.
func scatter(grains []*profile.Grain, byID map[profile.GrainID]*GrainMetrics,
	tr *profile.Trace, opts Options) {

	// Distances follow the paper's core-identifier convention
	// (machine.Topology.CoreDistance): |core_i - core_j|.
	bySet := profile.GrainsByParent(grains)
	for _, siblings := range bySet {
		if len(siblings) < 2 {
			for _, g := range siblings {
				if gm := byID[g.ID]; gm != nil {
					gm.Scatter = 0
				}
			}
			continue
		}
		cores := make([]int, 0, len(siblings))
		for _, g := range siblings {
			if g.Core >= 0 {
				cores = append(cores, g.Core)
			}
		}
		if len(cores) > opts.ScatterSample {
			step := len(cores) / opts.ScatterSample
			sampled := make([]int, 0, opts.ScatterSample)
			for i := 0; i < len(cores); i += step {
				sampled = append(sampled, cores[i])
			}
			cores = sampled
		}
		val := medianPairwiseDistance(cores)
		for _, g := range siblings {
			if gm := byID[g.ID]; gm != nil {
				gm.Scatter = val
			}
		}
	}
}

// medianPairwiseDistance returns the median |a-b| over all unordered pairs.
func medianPairwiseDistance(cores []int) int {
	n := len(cores)
	if n < 2 {
		return 0
	}
	dists := make([]int, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := cores[i] - cores[j]
			if d < 0 {
				d = -d
			}
			dists = append(dists, d)
		}
	}
	sort.Ints(dists)
	return dists[len(dists)/2]
}
