package metrics

import (
	"math/rand"
	"testing"

	"graingraph/internal/core"
	"graingraph/internal/profile"
	"graingraph/internal/rts"
)

// randomDAGTrace simulates a random spawn tree so the delta DP is exercised
// over realistic graph shapes (forks, joins, loop chunks) rather than
// hand-built toys.
func randomDAGTrace(t *testing.T, seed int64, depth int) *core.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr := rts.Run(rts.Config{Program: "delta-random", Cores: 4, Seed: uint64(seed)}, func(c rts.Ctx) {
		var walk func(c rts.Ctx, d int)
		walk = func(c rts.Ctx, d int) {
			c.Compute(profile.Time(1 + rng.Intn(40)))
			if d == 0 {
				return
			}
			kids := 1 + rng.Intn(3)
			for i := 0; i < kids; i++ {
				i := i
				c.Spawn(profile.Loc("delta.go", i, "walk"), func(c rts.Ctx) { walk(c, d-1) })
			}
			c.TaskWait()
			c.Compute(profile.Time(1 + rng.Intn(10)))
		}
		walk(c, depth)
	})
	return core.Build(tr)
}

// TestCriticalPathDeltaMatchesFullDP is the delta DP's oracle property: for
// random graphs and random sparse edits — including zeroings, inflations and
// edits on the critical path itself — CriticalPathDelta over the baseline
// must equal CriticalPathOver of the fully edited weight vector.
func TestCriticalPathDeltaMatchesFullDP(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := randomDAGTrace(t, seed, 4)
		n := g.NumNodes()
		b := NewCPBaseline(g, nil, nil)

		full := make([]profile.Time, n)
		rng := rand.New(rand.NewSource(seed * 977))
		for trial := 0; trial < 20; trial++ {
			edits := make(map[core.NodeID]profile.Time)
			numEdits := 1 + rng.Intn(8)
			for i := 0; i < numEdits; i++ {
				node := core.NodeID(rng.Intn(n))
				switch rng.Intn(3) {
				case 0:
					edits[node] = 0
				case 1:
					edits[node] = profile.Time(rng.Intn(500))
				default:
					edits[node] = b.Weights()[node] * 3
				}
			}

			copy(full, b.Weights())
			for nd, w := range edits {
				full[nd] = w
			}
			want, _ := CriticalPathOver(g, full)

			got, ok := CriticalPathDelta(b, edits, n+1)
			if !ok {
				t.Fatalf("seed %d trial %d: delta DP declined with maxDirty > n", seed, trial)
			}
			if got != want {
				t.Fatalf("seed %d trial %d: delta span %d, full DP %d (edits %v)",
					seed, trial, got, want, edits)
			}
		}
	}
}

// TestCriticalPathDeltaEmptyAndNoOpEdits pins the fast paths: no edits, and
// edits that restate the baseline weight, must return the baseline span
// without relaxation.
func TestCriticalPathDeltaEmptyAndNoOpEdits(t *testing.T) {
	g := randomDAGTrace(t, 42, 3)
	b := NewCPBaseline(g, nil, nil)
	if got, ok := CriticalPathDelta(b, nil, 0); !ok || got != b.Span() {
		t.Errorf("empty edits: got (%d, %v), want (%d, true)", got, ok, b.Span())
	}
	noop := map[core.NodeID]profile.Time{0: b.Weights()[0]}
	if got, ok := CriticalPathDelta(b, noop, 0); !ok || got != b.Span() {
		t.Errorf("no-op edit: got (%d, %v), want (%d, true)", got, ok, b.Span())
	}
}

// TestCriticalPathDeltaFallback pins the budget contract: when the dirty
// cone exceeds maxDirty, the call reports ok=false instead of a wrong span.
func TestCriticalPathDeltaFallback(t *testing.T) {
	g := randomDAGTrace(t, 7, 4)
	b := NewCPBaseline(g, nil, nil)
	// Editing a source node's weight dirties its whole downstream cone;
	// with a budget of 1 any non-trivial graph must decline.
	edits := map[core.NodeID]profile.Time{0: b.Weights()[0] + 1000}
	if _, ok := CriticalPathDelta(b, edits, 1); ok {
		t.Error("delta DP accepted a cone larger than maxDirty=1")
	}
}

// TestNewCPBaselineMatchesCriticalPathOver pins the baseline construction
// itself against the reference DP.
func TestNewCPBaselineMatchesCriticalPathOver(t *testing.T) {
	g := randomDAGTrace(t, 3, 4)
	want, _ := CriticalPath(g)
	b := NewCPBaseline(g, nil, nil)
	if b.Span() != want {
		t.Errorf("baseline span %d, want %d", b.Span(), want)
	}
	// Explicit weights are copied, not aliased.
	w := make([]profile.Time, g.NumNodes())
	for i := range w {
		w[i] = profile.Time(i)
	}
	b2 := NewCPBaseline(g, w, nil)
	w[0] = 999999
	if b2.Weights()[0] == 999999 {
		t.Error("NewCPBaseline aliased the caller's weight slice")
	}
}
