package metrics

import (
	"math"
	"testing"

	"graingraph/internal/core"
	"graingraph/internal/profile"
	"graingraph/internal/rts"
)

func loc(line int, fn string) profile.SrcLoc { return profile.Loc("test.go", line, fn) }

func run(cores int, seed uint64, prog func(rts.Ctx)) *profile.Trace {
	return rts.Run(rts.Config{Program: "m", Cores: cores, Seed: seed}, prog)
}

func TestParallelBenefitSeparatesCoarseAndFine(t *testing.T) {
	tr := run(2, 1, func(c rts.Ctx) {
		c.Spawn(loc(1, "tiny"), func(c rts.Ctx) { c.Compute(10) })
		c.Spawn(loc(2, "big"), func(c rts.Ctx) { c.Compute(1_000_000) })
		c.TaskWait()
	})
	rep := Analyze(tr, nil, nil, Options{})
	tiny := rep.Get("R.0")
	big := rep.Get("R.1")
	if tiny == nil || big == nil {
		t.Fatal("grains missing from report")
	}
	if tiny.ParallelBenefit >= 1 {
		t.Errorf("tiny grain parallel benefit = %f, want < 1", tiny.ParallelBenefit)
	}
	if big.ParallelBenefit <= 1 {
		t.Errorf("big grain parallel benefit = %f, want > 1", big.ParallelBenefit)
	}
	// The root has no parallelization cost.
	if !math.IsInf(rep.Get(profile.RootID).ParallelBenefit, 1) {
		t.Errorf("root parallel benefit = %f, want +Inf", rep.Get(profile.RootID).ParallelBenefit)
	}
}

func TestCriticalPathDominantChain(t *testing.T) {
	// One long chain (serial dependence) plus small independent tasks: the
	// critical path must include the chain's grains.
	tr := run(4, 1, func(c rts.Ctx) {
		c.Spawn(loc(1, "chain"), func(c rts.Ctx) {
			c.Compute(100_000)
			c.Spawn(loc(2, "chain2"), func(c rts.Ctx) {
				c.Compute(100_000)
				c.Spawn(loc(3, "chain3"), func(c rts.Ctx) { c.Compute(100_000) })
				c.TaskWait()
			})
			c.TaskWait()
		})
		for i := 0; i < 3; i++ {
			c.Spawn(loc(4, "small"), func(c rts.Ctx) { c.Compute(100) })
		}
		c.TaskWait()
	})
	g := core.Build(tr)
	rep := Analyze(tr, g, nil, Options{})
	if rep.CriticalPathLength < 300_000 {
		t.Errorf("critical path = %d, want >= 300000", rep.CriticalPathLength)
	}
	// The deepest chain grain must be marked critical.
	critical := map[profile.GrainID]bool{}
	for _, nid := range rep.CriticalNodes {
		critical[g.Grain(nid)] = true
	}
	if !critical["R.0.0.0"] {
		t.Errorf("chain leaf not on critical path; critical grains: %v", critical)
	}
	// Critical flags set on graph nodes.
	marked := 0
	for n := core.NodeID(0); n < core.NodeID(g.NumNodes()); n++ {
		if g.Critical(n) {
			marked++
		}
	}
	if marked != len(rep.CriticalNodes) {
		t.Errorf("marked %d nodes, path has %d", marked, len(rep.CriticalNodes))
	}
}

func TestWorkDeviationAgainstBaseline(t *testing.T) {
	prog := func(c rts.Ctx) {
		r := c.Alloc("data", 1<<20)
		// Initialize on the master: first-touch places pages on node 0.
		c.Store(r, 0, 1<<20)
		for i := 0; i < 8; i++ {
			i := i
			c.Spawn(loc(1, "scan"), func(c rts.Ctx) {
				c.Load(r, int64(i)*(1<<17), 1<<17)
				c.Compute(1000)
			})
		}
		c.TaskWait()
	}
	base := run(1, 1, prog)
	par := run(8, 1, prog)
	rep := Analyze(par, nil, base, Options{})
	matched := 0
	for _, gm := range rep.Grains {
		if gm.WorkDeviation > 0 {
			matched++
		}
	}
	if matched < 8 {
		t.Errorf("work deviation matched %d grains, want >= 8", matched)
	}
}

func TestWorkDeviationDetectsRemoteInflation(t *testing.T) {
	// All data first-touched by the master on node 0. Under 48 cores,
	// most workers access remotely => deviation above 1 for off-socket
	// grains relative to the 1-core run where everything is local... but
	// caches also differ. Assert the aggregate direction: mean deviation
	// of scan tasks > 0.9 and at least some grains inflate.
	prog := func(c rts.Ctx) {
		r := c.Alloc("data", 8<<20)
		c.Store(r, 0, 8<<20)
		for i := 0; i < 32; i++ {
			i := i
			c.Spawn(loc(1, "scan"), func(c rts.Ctx) {
				c.Load(r, int64(i)*(8<<20)/32, (8<<20)/32)
			})
		}
		c.TaskWait()
	}
	base := run(1, 1, prog)
	par := run(48, 1, prog)
	rep := Analyze(par, nil, base, Options{})
	inflated := 0
	for _, gm := range rep.Grains {
		if gm.Grain.Loc.Func == "scan" && gm.WorkDeviation > 1.05 {
			inflated++
		}
	}
	if inflated == 0 {
		t.Error("no scan grain shows work inflation on a 48-core NUMA run")
	}
}

func TestInstantaneousParallelismSerialVsParallel(t *testing.T) {
	// Serial chain: parallelism should be ~1 everywhere.
	serial := run(4, 1, func(c rts.Ctx) {
		var rec func(c rts.Ctx, d int)
		rec = func(c rts.Ctx, d int) {
			c.Compute(50_000)
			if d == 0 {
				return
			}
			c.Spawn(loc(1, "s"), func(c rts.Ctx) { rec(c, d-1) })
			c.TaskWait()
		}
		rec(c, 6)
	})
	rep := Analyze(serial, nil, nil, Options{})
	maxIP := 0
	for _, v := range rep.Timeline {
		if v > maxIP {
			maxIP = v
		}
	}
	if maxIP > 2 {
		t.Errorf("serial chain shows parallelism %d, want <= 2", maxIP)
	}

	// Wide fan-out: parallelism should reach ~4 on 4 cores.
	wide := run(4, 1, func(c rts.Ctx) {
		for i := 0; i < 16; i++ {
			c.Spawn(loc(1, "w"), func(c rts.Ctx) { c.Compute(500_000) })
		}
		c.TaskWait()
	})
	repW := Analyze(wide, nil, nil, Options{})
	maxW := 0
	for _, v := range repW.Timeline {
		if v > maxW {
			maxW = v
		}
	}
	if maxW < 4 {
		t.Errorf("wide program shows max parallelism %d, want >= 4", maxW)
	}
}

func TestConservativeLEQOptimistic(t *testing.T) {
	tr := run(4, 1, func(c rts.Ctx) {
		for i := 0; i < 10; i++ {
			c.Spawn(loc(1, "w"), func(c rts.Ctx) { c.Compute(100_000) })
		}
		c.TaskWait()
	})
	iv := profile.Time(10_000)
	opt := Analyze(tr, nil, nil, Options{Interval: iv, Flavor: IPOptimistic})
	con := Analyze(tr, nil, nil, Options{Interval: iv, Flavor: IPConservative})
	if len(opt.Timeline) != len(con.Timeline) {
		t.Fatalf("timeline lengths differ: %d vs %d", len(opt.Timeline), len(con.Timeline))
	}
	for i := range opt.Timeline {
		if con.Timeline[i] > opt.Timeline[i] {
			t.Fatalf("interval %d: conservative %d > optimistic %d", i, con.Timeline[i], opt.Timeline[i])
		}
	}
}

func TestScatterSiblingsNearWithWorkStealing(t *testing.T) {
	// Recursive divide-and-conquer with many more tasks than cores: with
	// work stealing most siblings run on the same or nearby cores (only the
	// top-level splits migrate), while a central queue lands siblings on
	// whichever cores won the contention — the paper's Figure 11c vs 11d.
	prog := func(c rts.Ctx) {
		var rec func(c rts.Ctx, d int)
		rec = func(c rts.Ctx, d int) {
			if d == 0 {
				c.Compute(20_000)
				return
			}
			c.Spawn(loc(1, "l"), func(c rts.Ctx) { rec(c, d-1) })
			c.Spawn(loc(2, "r"), func(c rts.Ctx) { rec(c, d-1) })
			c.TaskWait()
		}
		rec(c, 9)
	}
	tr := rts.Run(rts.Config{Program: "m", Cores: 48, Seed: 1}, prog)
	rep := Analyze(tr, nil, nil, Options{})
	var wsSum, wsN float64
	for _, gm := range rep.Grains {
		if gm.Grain.ID != profile.RootID {
			wsSum += float64(gm.Scatter)
			wsN++
		}
	}
	cfg := rts.Config{Program: "m", Cores: 48, Seed: 1, Scheduler: rts.CentralQueueSched}
	trC := rts.Run(cfg, prog)
	repC := Analyze(trC, nil, nil, Options{})
	var cqSum, cqN float64
	for _, gm := range repC.Grains {
		if gm.Grain.ID != profile.RootID {
			cqSum += float64(gm.Scatter)
			cqN++
		}
	}
	if wsSum/wsN >= cqSum/cqN {
		t.Errorf("work-stealing mean scatter %.2f not below central-queue %.2f",
			wsSum/wsN, cqSum/cqN)
	}
}

func TestLoopLoadBalanceImbalanced(t *testing.T) {
	// One whale iteration dominates: load balance far above 1 on many
	// cores, near 1 when few cores make chains long.
	prog := func(c rts.Ctx) {
		c.For(loc(1, "fpgf"), 0, 200, rts.ForOpt{Schedule: profile.ScheduleDynamic, Chunk: 1},
			func(c rts.Ctx, lo, hi int) {
				if lo == 57 {
					c.Compute(5_000_000)
				} else {
					c.Compute(10_000)
				}
			})
	}
	tr := rts.Run(rts.Config{Program: "m", Cores: 16, Seed: 1}, prog)
	rep := Analyze(tr, nil, nil, Options{})
	lb := rep.LoopLoadBalance[0]
	if lb < 3 {
		t.Errorf("imbalanced loop load balance = %.2f, want >> 1", lb)
	}

	tr2 := rts.Run(rts.Config{Program: "m", Cores: 2, Seed: 1}, prog)
	rep2 := Analyze(tr2, nil, nil, Options{})
	lb2 := rep2.LoopLoadBalance[0]
	if lb2 >= lb {
		t.Errorf("fewer cores should improve load balance: %.2f vs %.2f", lb2, lb)
	}
}

func TestLoopLoadBalanceBalanced(t *testing.T) {
	tr := rts.Run(rts.Config{Program: "m", Cores: 4, Seed: 1}, func(c rts.Ctx) {
		c.For(loc(1, "even"), 0, 64, rts.ForOpt{Schedule: profile.ScheduleDynamic, Chunk: 4},
			func(c rts.Ctx, lo, hi int) { c.Compute(uint64(hi-lo) * 10_000) })
	})
	rep := Analyze(tr, nil, nil, Options{})
	lb := rep.LoopLoadBalance[0]
	if lb > 1.2 {
		t.Errorf("balanced loop load balance = %.2f, want ~= 1 or below", lb)
	}
}

func TestUtilizationReflectsMemoryBehaviour(t *testing.T) {
	tr := run(2, 1, func(c rts.Ctx) {
		r := c.Alloc("data", 16<<20)
		c.Spawn(loc(1, "computey"), func(c rts.Ctx) {
			c.Compute(1_000_000)
			c.Load(r, 0, 4096)
		})
		c.Spawn(loc(2, "memory"), func(c rts.Ctx) {
			c.Compute(100)
			c.Load(r, 1<<20, 8<<20) // big cold scan
		})
		c.TaskWait()
	})
	rep := Analyze(tr, nil, nil, Options{})
	computey := rep.Get("R.0")
	memory := rep.Get("R.1")
	if computey.Utilization < 2 {
		t.Errorf("compute-bound grain utilization = %.2f, want >= 2", computey.Utilization)
	}
	if memory.Utilization >= 2 {
		t.Errorf("memory-bound grain utilization = %.2f, want < 2", memory.Utilization)
	}
}

func TestMedianAndMinGrainLength(t *testing.T) {
	grains := []*profile.Grain{
		{Exec: 10}, {Exec: 30}, {Exec: 20}, {Exec: 0},
	}
	if got := MedianGrainLength(grains); got != 20 {
		t.Errorf("median = %d, want 20", got)
	}
	if got := MinGrainLength(grains); got != 10 {
		t.Errorf("min = %d, want 10", got)
	}
	if MedianGrainLength(nil) != 1 || MinGrainLength(nil) != 1 {
		t.Error("empty grain lists should return 1")
	}
}

func TestMedianPairwiseDistance(t *testing.T) {
	if d := medianPairwiseDistance([]int{5}); d != 0 {
		t.Errorf("singleton distance = %d", d)
	}
	if d := medianPairwiseDistance([]int{0, 0, 0}); d != 0 {
		t.Errorf("same-core distance = %d", d)
	}
	if d := medianPairwiseDistance([]int{0, 24}); d != 24 {
		t.Errorf("pair distance = %d, want 24", d)
	}
}

func TestAnalyzeTimelineCap(t *testing.T) {
	tr := run(2, 1, func(c rts.Ctx) {
		for i := 0; i < 4; i++ {
			c.Spawn(loc(1, "w"), func(c rts.Ctx) { c.Compute(1_000_000) })
		}
		c.TaskWait()
	})
	rep := Analyze(tr, nil, nil, Options{Interval: 1, MaxIntervals: 64})
	if len(rep.Timeline) > 64 {
		t.Errorf("timeline length %d exceeds cap 64", len(rep.Timeline))
	}
	if rep.IntervalSize <= 1 {
		t.Errorf("interval not widened: %d", rep.IntervalSize)
	}
}
