package metrics

import (
	"math/rand"
	"sort"
	"testing"

	"graingraph/internal/profile"
)

// TestSubsampleStrideBound is the regression test for the floor-division
// stride bug: a sibling set of 4095 cores with ScatterSample 2048 used to
// get step 1 — no reduction at all — overflowing the sampled slice's
// declared capacity and voiding the quadratic bound. Ceiling division keeps
// len(sampled) <= limit at every boundary size.
func TestSubsampleStrideBound(t *testing.T) {
	limit := 2048
	sizes := []int{
		limit, limit + 1, 2*limit - 1, 2 * limit, 2*limit + 1,
		3*limit - 1, 3 * limit, 4*limit - 1, 4*limit + 1,
	}
	for _, n := range sizes {
		cores := make([]int, n)
		for i := range cores {
			cores[i] = i
		}
		sampled := subsampleCores(cores, limit)
		if len(sampled) > limit {
			t.Errorf("size %d: len(sampled) = %d, want <= %d", n, len(sampled), limit)
		}
		if len(sampled) == 0 {
			t.Errorf("size %d: sampling removed everything", n)
		}
		// The sample must be a subsequence of the input (every k-th element).
		for i := 1; i < len(sampled); i++ {
			if sampled[i] <= sampled[i-1] {
				t.Fatalf("size %d: sample not strictly increasing at %d", n, i)
			}
		}
	}
	// Small sets pass through untouched.
	small := []int{3, 1, 4}
	if got := subsampleCores(small, 2048); len(got) != 3 {
		t.Errorf("small set resampled: len = %d", len(got))
	}
}

// scatterFixture runs the scatter pass over hand-built grains.
func scatterFixture(t *testing.T, grains []*profile.Grain) map[profile.GrainID]*GrainMetrics {
	t.Helper()
	byID := make(map[profile.GrainID]*GrainMetrics, len(grains))
	for _, g := range grains {
		byID[g.ID] = &GrainMetrics{Grain: g}
	}
	scatter(grains, byID, &profile.Trace{}, Options{}.withDefaults())
	return byID
}

// TestScatterUnknownCoreSentinel: a grain with an unrecorded core must not
// inherit its siblings' median — it gets the ScatterUnknown sentinel, while
// siblings with recorded cores still get the median over recorded cores.
func TestScatterUnknownCoreSentinel(t *testing.T) {
	byID := scatterFixture(t, []*profile.Grain{
		{ID: "R.0", Parent: "R", Core: 0},
		{ID: "R.1", Parent: "R", Core: 24},
		{ID: "R.2", Parent: "R", Core: -1},
	})
	if got := byID["R.2"].Scatter; got != ScatterUnknown {
		t.Errorf("unrecorded-core grain scatter = %d, want ScatterUnknown (%d)", got, ScatterUnknown)
	}
	if got := byID["R.0"].Scatter; got != 24 {
		t.Errorf("recorded-core grain scatter = %d, want 24", got)
	}
	if got := byID["R.1"].Scatter; got != 24 {
		t.Errorf("recorded-core grain scatter = %d, want 24", got)
	}
}

// TestScatterTooFewRecordedCores: a sibling set with fewer than two
// recorded cores cannot report a distance; every member gets the sentinel,
// not a silent 0 indistinguishable from "perfectly packed".
func TestScatterTooFewRecordedCores(t *testing.T) {
	byID := scatterFixture(t, []*profile.Grain{
		{ID: "R.0", Parent: "R", Core: 5},
		{ID: "R.1", Parent: "R", Core: -1},
		{ID: "R.2", Parent: "R", Core: -1},
	})
	for _, id := range []profile.GrainID{"R.0", "R.1", "R.2"} {
		if got := byID[id].Scatter; got != ScatterUnknown {
			t.Errorf("%s scatter = %d, want ScatterUnknown", id, got)
		}
	}
}

// TestScatterOnlyChildStaysZero: an only child is trivially unscattered —
// scatter 0, even when its core went unrecorded.
func TestScatterOnlyChildStaysZero(t *testing.T) {
	byID := scatterFixture(t, []*profile.Grain{
		{ID: "R", Parent: "", Core: -1},
	})
	if got := byID["R"].Scatter; got != 0 {
		t.Errorf("only-child scatter = %d, want 0", got)
	}
}

// bruteMedianPairwise is the oracle: materialize every unordered pair
// distance, sort, take the upper-middle element.
func bruteMedianPairwise(cores []int) int {
	var dists []int
	for i := range cores {
		for j := i + 1; j < len(cores); j++ {
			d := cores[i] - cores[j]
			if d < 0 {
				d = -d
			}
			dists = append(dists, d)
		}
	}
	if len(dists) == 0 {
		return 0
	}
	sort.Sort(sort.Reverse(sort.IntSlice(dists)))
	// Upper middle of the ascending order = index (n-1) - n/2 descending.
	return dists[len(dists)-1-len(dists)/2]
}

// TestMedianPairwiseDistanceProperty checks medianPairwiseDistance against
// the brute-force oracle over random core sets, including even pair counts
// where the documented convention takes the upper-middle element.
func TestMedianPairwiseDistanceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(14)
		cores := make([]int, n)
		for i := range cores {
			cores[i] = rng.Intn(48)
		}
		got := medianPairwiseDistance(cores)
		want := bruteMedianPairwise(cores)
		if got != want {
			t.Fatalf("trial %d, cores %v: median = %d, oracle = %d", trial, cores, got, want)
		}
		// The median must be an actually occurring pair distance.
		found := false
		for i := range cores {
			for j := i + 1; j < n; j++ {
				d := cores[i] - cores[j]
				if d < 0 {
					d = -d
				}
				if d == got {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("trial %d: median %d is not a pair distance of %v", trial, got, cores)
		}
	}
}

// TestMedianPairwiseEvenTieConvention pins the documented convention: with
// an even number of pairs the upper-middle element is returned.
func TestMedianPairwiseEvenTieConvention(t *testing.T) {
	// Distances of {0,1,2,10}: [1,1,2,8,9,10] — six pairs, upper middle 8.
	if got := medianPairwiseDistance([]int{0, 1, 2, 10}); got != 8 {
		t.Errorf("even pair count median = %d, want 8 (upper middle)", got)
	}
}
