package metrics

import (
	"graingraph/internal/core"
	"graingraph/internal/profile"
	"graingraph/internal/runpool"
)

// topFinishK bounds the precomputed "heaviest finishing distances" list a
// CPBaseline keeps. After a sparse evaluation the new span is the max over
// the changed nodes' finishes and the best *unchanged* baseline finish; as
// long as some unchanged node appears among the topFinishK heaviest, the
// final reduction is a short list walk. A delta whose cone swallows the
// whole list declines (ok=false) — an effective-finish re-scan through the
// overlay maps costs more than the exact full DP the caller falls back to.
const topFinishK = 1024

// CPBaseline is the reusable state of one full critical-path DP run: the
// settled distance column, the weight vector it was computed under, and a
// small index of the heaviest finishing distances. CriticalPathDelta
// evaluates sparse weight edits against it without re-walking the graph;
// the baseline itself is immutable after construction (every evaluation
// keeps its changes in private overlays), so one baseline safely serves
// concurrent evaluations — the what-if engine's EvalAll fans candidates
// across the pool against a single shared CPBaseline.
type CPBaseline struct {
	g       *core.Graph
	weights []profile.Time // baseline weight vector (not aliased by callers)
	dist    []profile.Time // dist[n]: heaviest path weight strictly before n
	span    profile.Time   // max finish = the baseline critical-path length

	// Top finishes in descending order (ties broken toward lower NodeID,
	// matching the full DP's sink scan); finish values kept alongside so the
	// final reduction needs no recomputation.
	topNodes  []core.NodeID
	topFinish []profile.Time
}

// NewCPBaseline runs the level-synchronous critical-path DP once over
// weights (nil: the graph's recorded weight column — the slice is copied
// either way) and retains its state for delta evaluations. The graph's
// adjacency and level indexes are forced, so the returned baseline and the
// graph are safe for concurrent read-only use afterwards.
func NewCPBaseline(g *core.Graph, weights []profile.Time, pool *runpool.Runner) *CPBaseline {
	b := &CPBaseline{g: g}
	n := g.NumNodes()
	if weights == nil {
		weights = g.Weights()
	} else {
		w := make([]profile.Time, len(weights))
		copy(w, weights)
		weights = w
	}
	b.weights = weights
	if n == 0 {
		return b
	}
	numLevels := g.NumLevels()
	g.In(0)
	g.Level(0)
	b.dist = make([]profile.Time, n)
	for l := 0; l < numLevels; l++ {
		nodes := g.LevelNodes(l)
		runpool.ParallelFor(pool, len(nodes), criticalGrain, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				nd := core.NodeID(nodes[i])
				var d profile.Time
				for _, ei := range g.In(nd) {
					from := g.EdgeFrom(int(ei))
					if df := b.dist[from] + weights[from]; df > d {
						d = df
					}
				}
				b.dist[nd] = d
			}
		})
	}

	// Select the topFinishK heaviest finishes with a bounded insertion pass:
	// descending finish, lowest NodeID among ties.
	k := topFinishK
	if k > n {
		k = n
	}
	b.topNodes = make([]core.NodeID, 0, k)
	b.topFinish = make([]profile.Time, 0, k)
	for i := 0; i < n; i++ {
		f := b.dist[i] + weights[i]
		if f > b.span {
			b.span = f
		}
		if len(b.topFinish) == k && f <= b.topFinish[k-1] {
			continue
		}
		// Insertion position: after every entry with a strictly larger
		// finish or an equal finish and smaller ID (IDs arrive ascending, so
		// equal finishes need no swap).
		pos := len(b.topFinish)
		for pos > 0 && b.topFinish[pos-1] < f {
			pos--
		}
		if len(b.topFinish) < k {
			b.topNodes = append(b.topNodes, 0)
			b.topFinish = append(b.topFinish, 0)
		}
		copy(b.topNodes[pos+1:], b.topNodes[pos:])
		copy(b.topFinish[pos+1:], b.topFinish[pos:])
		b.topNodes[pos] = core.NodeID(i)
		b.topFinish[pos] = f
	}
	return b
}

// Span returns the baseline critical-path length (0 for an all-zero or
// empty graph, exactly as CriticalPathOver reports it).
func (b *CPBaseline) Span() profile.Time { return b.span }

// Weights returns the baseline weight vector. The slice is shared with the
// baseline: read, don't mutate.
func (b *CPBaseline) Weights() []profile.Time { return b.weights }

// levelHeap is a minimal binary min-heap over (level, node) keys packed into
// one int64: level-ordered pops give the delta relaxation the same
// "all predecessors settled first" guarantee the level-synchronous full DP
// gets from its level sweep, without materializing per-level buckets.
type levelHeap []int64

func (h *levelHeap) push(level, node int32) {
	*h = append(*h, int64(level)<<32|int64(uint32(node)))
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] <= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *levelHeap) pop() int32 {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && (*h)[l] < (*h)[small] {
			small = l
		}
		if r < last && (*h)[r] < (*h)[small] {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return int32(uint32(top))
}

// CriticalPathDelta computes the critical-path length of the graph under
// the baseline weights with edits overlaid (edits maps node → new weight),
// touching only the edited nodes' downstream cone. It seeds a dirty
// frontier at the edited nodes' successors and relaxes dirty nodes in
// ascending topological-level order, reading settled baseline distances
// everywhere the cone has not reached — a node whose recomputed distance
// equals its baseline distance stops the propagation through it.
//
// The result is exactly the full DP's: distances are pure maxima, so the
// value is independent of relaxation order, and the final span is the
// maximum effective finish, taken over the changed nodes directly and over
// the unchanged nodes via the baseline's top-finish index.
//
// ok is false when more than maxDirty nodes were relaxed (the edit's cone
// covers too much of the graph for sparse evaluation to win); the caller
// falls back to the full DP. All per-evaluation state lives in private
// maps, so concurrent evaluations against one baseline are safe.
func CriticalPathDelta(b *CPBaseline, edits map[core.NodeID]profile.Time, maxDirty int) (span profile.Time, ok bool) {
	if len(edits) == 0 {
		return b.span, true
	}
	g := b.g

	// distOverlay holds recomputed distances for the (few) nodes whose
	// distance actually changed; queued guards the frontier heap against
	// duplicate pushes.
	distOverlay := make(map[core.NodeID]profile.Time, len(edits))
	queued := make(map[core.NodeID]bool, len(edits))
	var frontier levelHeap

	weightOf := func(n core.NodeID) profile.Time {
		if w, hit := edits[n]; hit {
			return w
		}
		return b.weights[n]
	}
	distOf := func(n core.NodeID) profile.Time {
		if d, hit := distOverlay[n]; hit {
			return d
		}
		return b.dist[n]
	}
	dirty := func(n core.NodeID) {
		for _, ei := range g.Out(n) {
			to := g.EdgeTo(int(ei))
			if !queued[to] {
				queued[to] = true
				frontier.push(int32(g.Level(to)), int32(to))
			}
		}
	}

	for n, w := range edits {
		if w != b.weights[n] {
			dirty(n)
		}
	}

	relaxed := 0
	for len(frontier) > 0 {
		n := core.NodeID(frontier.pop())
		relaxed++
		if relaxed > maxDirty {
			return 0, false
		}
		var d profile.Time
		for _, ei := range g.In(n) {
			from := g.EdgeFrom(int(ei))
			if df := distOf(from) + weightOf(from); df > d {
				d = df
			}
		}
		if d == b.dist[n] {
			delete(distOverlay, n)
			continue
		}
		distOverlay[n] = d
		dirty(n)
	}

	// New span: max effective finish. Changed nodes (weight- or
	// distance-changed) are evaluated directly; the best unchanged node
	// comes from the baseline's top-finish index, or — when the change set
	// swallowed the whole index — one effective scan over all nodes.
	for n := range edits {
		if f := distOf(n) + weightOf(n); f > span {
			span = f
		}
	}
	for n := range distOverlay {
		if f := distOf(n) + weightOf(n); f > span {
			span = f
		}
	}
	for i, n := range b.topNodes {
		if _, changed := edits[n]; changed {
			continue
		}
		if _, changed := distOverlay[n]; changed {
			continue
		}
		if b.topFinish[i] > span {
			span = b.topFinish[i]
		}
		return span, true
	}
	if len(b.topNodes) == g.NumNodes() {
		// Every node is in the index and every indexed node changed: the
		// changed-node pass above already covered the maximum.
		return span, true
	}
	// The change set swallowed the whole top-finish index: resolving the
	// best unchanged finish would need a full effective scan through the
	// overlay maps, which costs more than the exact full DP. Decline.
	return 0, false
}
