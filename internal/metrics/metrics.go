// Package metrics derives the paper's per-grain performance metrics
// (§3.2) from a profiled trace and its grain graph: critical path, parallel
// benefit, load balance, work deviation, instantaneous parallelism, scatter
// and memory-hierarchy utilization.
package metrics

import (
	"math"
	"sort"

	"graingraph/internal/core"
	"graingraph/internal/obs"
	"graingraph/internal/profile"
	"graingraph/internal/runpool"
)

// metricGrain is the fixed chunk size for the per-grain metric kernels.
// Chunk boundaries depend only on the grain count, never the worker count,
// so every kernel below is byte-identical at every parallelism level.
const metricGrain = 1024

// GrainMetrics bundles the derived metrics of one grain.
type GrainMetrics struct {
	Grain *profile.Grain

	// ParallelBenefit is execution time divided by parallelization cost
	// (creation + share of the parent's synchronization overhead; chunks use
	// book-keeping cost). +Inf when the grain has no parallelization cost
	// (the root). Problematic below 1.
	ParallelBenefit float64

	// WorkDeviation is execution time on this run divided by the same
	// grain's execution time on a single core; 0 when no baseline grain
	// matched. Problematic ("work inflation") above threshold.
	WorkDeviation float64

	// InstParallelism is the smallest instantaneous parallelism among the
	// intervals overlapping this grain (optimistic flavour unless
	// configured otherwise). Problematic below the core count.
	InstParallelism int

	// Scatter is the median pairwise core distance among the grain's
	// sibling set; 0 for only children, ScatterUnknown when the grain's
	// core (or all but one sibling core) went unrecorded. Problematic
	// beyond a socket.
	Scatter int

	// Utilization is compute cycles per stall cycle. Problematic below 2.
	Utilization float64
}

// ScatterUnknown is the sentinel Scatter value for grains whose placement
// could not be measured: the grain's own core was unrecorded (Core < 0), or
// its sibling set has fewer than two recorded cores. It is distinct from 0
// ("perfectly packed") and is skipped by the highlight pass.
const ScatterUnknown = -1

// IPFlavor selects the instantaneous-parallelism counting rule.
type IPFlavor int

const (
	// IPOptimistic counts grains with any overlap of the interval.
	IPOptimistic IPFlavor = iota
	// IPConservative counts only grains executing for the full interval.
	IPConservative
)

// Options tunes the analysis.
type Options struct {
	// Interval is the instantaneous-parallelism interval size in cycles;
	// 0 selects the median grain length (the paper's default choice).
	Interval profile.Time
	// Flavor selects optimistic or conservative counting.
	Flavor IPFlavor
	// MaxIntervals caps the timeline resolution (default 4096).
	MaxIntervals int
	// ScatterSample caps the sibling-set size used for pairwise distances
	// (default 2048; larger sets are subsampled deterministically).
	ScatterSample int
	// Pool, when non-nil with more than one worker, runs the per-grain
	// metric kernels (rows, work deviation, scatter) and the critical-path
	// DP data-parallel across its workers. Output is byte-identical at
	// every worker count — nil is simply the serial schedule.
	Pool *runpool.Runner
	// Span, when non-nil, is the parent phase span each metric kernel
	// reports under (internal/obs): one child span per kernel, in the
	// fixed serial order the kernels run. Nil disables phase observation
	// at zero cost.
	Span *obs.Span
}

func (o Options) withDefaults() Options {
	if o.MaxIntervals == 0 {
		o.MaxIntervals = 4096
	}
	if o.ScatterSample == 0 {
		o.ScatterSample = 2048
	}
	return o
}

// Report is the full derived-metric set for one trace.
type Report struct {
	Trace  *profile.Trace
	Grains []*GrainMetrics

	// CriticalPathLength is the weight of the heaviest path through the
	// grain graph; CriticalNodes lists its nodes in order.
	CriticalPathLength profile.Time
	CriticalNodes      []core.NodeID

	// Timeline is the instantaneous parallelism per interval;
	// IntervalSize is the interval width used.
	Timeline     []int
	IntervalSize profile.Time

	// LoopLoadBalance maps each loop instance to its load-balance metric;
	// TaskLoadBalance is the program-level generalization over task grains.
	LoopLoadBalance map[profile.LoopID]float64
	TaskLoadBalance float64

	byID map[profile.GrainID]*GrainMetrics
}

// Get returns the metrics row for a grain ID, or nil.
func (r *Report) Get(id profile.GrainID) *GrainMetrics { return r.byID[id] }

// Analyze derives every metric for tr. The grain graph g must have been
// built from tr (pass nil to have Analyze build it). baseline, if non-nil,
// is a single-core trace of the same program used for work deviation.
func Analyze(tr *profile.Trace, g *core.Graph, baseline *profile.Trace, opts Options) *Report {
	opts = opts.withDefaults()
	if g == nil {
		sp := opts.Span.Child("build")
		g = core.Build(tr)
		sp.End()
	}
	grains := tr.Grains()
	rep := &Report{
		Trace:           tr,
		LoopLoadBalance: make(map[profile.LoopID]float64),
		byID:            make(map[profile.GrainID]*GrainMetrics, len(grains)),
	}

	// Per-grain local metrics (parallel benefit, memory-hierarchy
	// utilization): every row is independent, so the rows fill their
	// pre-sized slots across the pool; the ID index is built serially after
	// (map writes don't shard).
	sp := opts.Span.Child("metric:rows")
	rep.Grains = make([]*GrainMetrics, len(grains))
	runpool.ParallelFor(opts.Pool, len(grains), metricGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			gr := grains[i]
			rep.Grains[i] = &GrainMetrics{
				Grain:           gr,
				ParallelBenefit: parallelBenefit(gr),
				Utilization:     gr.Counters.Utilization(),
			}
		}
	})
	for _, gm := range rep.Grains {
		rep.byID[gm.Grain.ID] = gm
	}
	sp.End()

	// Work deviation against the single-core baseline: the baseline index
	// is built once, then read-only while the division shards.
	if baseline != nil {
		sp := opts.Span.Child("metric:workdev")
		bgrains := baseline.Grains()
		base := make(map[profile.GrainID]profile.Time, len(bgrains))
		for _, bg := range bgrains {
			base[bg.ID] = bg.Exec
		}
		runpool.ParallelFor(opts.Pool, len(rep.Grains), metricGrain, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				gm := rep.Grains[i]
				if b, ok := base[gm.Grain.ID]; ok && b > 0 {
					gm.WorkDeviation = float64(gm.Grain.Exec) / float64(b)
				}
			}
		})
		sp.End()
	}

	// Critical path on the grain graph: level-synchronous parallel DP over
	// the topological-level index. The index (and the CSRs it needs) builds
	// lazily on first touch; forcing it under its own span separates index
	// construction cost from the relaxation itself.
	sp = opts.Span.Child("metric:critical")
	lv := sp.Child("levels")
	g.NumLevels()
	g.In(0)
	lv.End()
	rep.CriticalPathLength, rep.CriticalNodes = CriticalPathPool(g, opts.Pool)
	sp.End()

	// Instantaneous parallelism.
	sp = opts.Span.Child("metric:parallelism")
	interval := opts.Interval
	if interval == 0 {
		interval = MedianGrainLength(grains)
	}
	rep.IntervalSize, rep.Timeline = instParallelism(tr, grains, rep.byID, interval, opts)
	sp.End()

	// Scatter per sibling set.
	sp = opts.Span.Child("metric:scatter")
	scatter(grains, rep.byID, tr, opts)
	sp.End()

	// Load balance.
	sp = opts.Span.Child("metric:loadbalance")
	for _, l := range tr.Loops {
		rep.LoopLoadBalance[l.ID] = LoopLoadBalance(tr, l.ID)
	}
	rep.TaskLoadBalance = TaskLoadBalance(tr)
	sp.End()

	return rep
}

// parallelBenefit implements the paper's definition: grain execution time
// over the parallelization cost its parent paid for it.
func parallelBenefit(g *profile.Grain) float64 {
	cost := g.ParallelizationCost()
	if cost == 0 {
		return math.Inf(1)
	}
	return float64(g.Exec) / float64(cost)
}

// MedianGrainLength returns the median execution time of the grains — the
// paper's default instantaneous-parallelism interval.
func MedianGrainLength(grains []*profile.Grain) profile.Time {
	if len(grains) == 0 {
		return 1
	}
	ls := make([]profile.Time, 0, len(grains))
	for _, g := range grains {
		if g.Exec > 0 {
			ls = append(ls, g.Exec)
		}
	}
	if len(ls) == 0 {
		return 1
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	return ls[len(ls)/2]
}

// MinGrainLength returns the smallest positive grain execution time — the
// paper's alternative interval choice.
func MinGrainLength(grains []*profile.Grain) profile.Time {
	min := profile.Time(0)
	for _, g := range grains {
		if g.Exec > 0 && (min == 0 || g.Exec < min) {
			min = g.Exec
		}
	}
	if min == 0 {
		return 1
	}
	return min
}
