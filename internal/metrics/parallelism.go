package metrics

import (
	"sort"

	"graingraph/internal/profile"
)

// interval execution spans per grain: tasks contribute each fragment,
// chunks their whole span.
type grainSpan struct {
	id         profile.GrainID
	start, end profile.Time
}

func executionSpans(tr *profile.Trace) []grainSpan {
	var spans []grainSpan
	for _, t := range tr.Tasks {
		for i := range t.Fragments {
			f := &t.Fragments[i]
			if f.End > f.Start {
				spans = append(spans, grainSpan{t.ID, f.Start, f.End})
			}
		}
	}
	for _, c := range tr.Chunks {
		if c.End > c.Start {
			spans = append(spans, grainSpan{tr.ChunkGrainID(c), c.Start, c.End})
		}
	}
	return spans
}

// instParallelism computes the per-interval parallelism timeline and fills
// each grain's InstParallelism (its minimum over overlapping intervals).
func instParallelism(tr *profile.Trace, grains []*profile.Grain,
	byID map[profile.GrainID]*GrainMetrics, interval profile.Time, opts Options) (profile.Time, []int) {

	makespan := tr.Makespan()
	if makespan == 0 || len(grains) == 0 {
		return interval, nil
	}
	if interval == 0 {
		interval = 1
	}
	// Cap resolution.
	if n := makespan / interval; n > profile.Time(opts.MaxIntervals) {
		interval = (makespan + profile.Time(opts.MaxIntervals) - 1) / profile.Time(opts.MaxIntervals)
	}
	nIntervals := int((makespan + interval - 1) / interval)
	counts := make([]int, nIntervals)

	spans := executionSpans(tr)
	// A grain counts once per interval even if several of its fragments
	// overlap the same interval: count per (grain, interval) via sweeping
	// grain spans, deduping with a last-marked stamp per grain. The stamps
	// live in a flat slice indexed by the grain's position in the (sorted)
	// grains slice — on million-grain traces the map of per-grain mark
	// allocations this replaces dominated the pass.
	idx := make(map[profile.GrainID]int32, len(grains))
	gms := make([]*GrainMetrics, len(grains))
	for i, g := range grains {
		idx[g.ID] = int32(i)
		gms[i] = byID[g.ID]
	}
	lastSeen := make([]int32, len(grains))
	for i := range lastSeen {
		lastSeen[i] = -1
	}

	// For the conservative flavour, a grain counts only in intervals its
	// span fully covers.
	for _, sp := range spans {
		var first, last int
		if opts.Flavor == IPConservative {
			// Intervals [i*iv, (i+1)*iv) fully inside [start,end).
			first = int((sp.start + interval - 1) / interval)
			last = int(sp.end/interval) - 1
		} else {
			first = int(sp.start / interval)
			last = int((sp.end - 1) / interval)
		}
		if first < 0 {
			first = 0
		}
		if last >= nIntervals {
			last = nIntervals - 1
		}
		gi, known := idx[sp.id]
		for i := first; i <= last; i++ {
			if known && lastSeen[gi] == int32(i) {
				continue // already counted this grain in this interval
			}
			counts[i]++
			if known {
				lastSeen[gi] = int32(i)
			}
		}
	}

	// Per-grain minimum over the intervals its *execution* overlaps (its
	// fragments — a task suspended in taskwait is not executing, so thin
	// intervals during its suspension do not count against it).
	for _, gm := range gms {
		if gm != nil {
			gm.InstParallelism = -1
		}
	}
	for _, sp := range spans {
		gi, known := idx[sp.id]
		if !known || gms[gi] == nil {
			continue
		}
		gm := gms[gi]
		first := int(sp.start / interval)
		last := int((sp.end - 1) / interval)
		if last >= nIntervals {
			last = nIntervals - 1
		}
		for i := first; i <= last; i++ {
			if gm.InstParallelism == -1 || counts[i] < gm.InstParallelism {
				gm.InstParallelism = counts[i]
			}
		}
	}
	for _, gm := range gms {
		if gm != nil && gm.InstParallelism == -1 {
			gm.InstParallelism = 0
		}
	}
	return interval, counts
}

// LoopLoadBalance computes the paper's load-balance metric for one loop
// instance: the length of the longest grain (chunk) divided by the median
// length of the per-thread chains of consecutive grains.
func LoopLoadBalance(tr *profile.Trace, loop profile.LoopID) float64 {
	var longest profile.Time
	chains := make(map[int]profile.Time)
	l := tr.Loop(loop)
	if l == nil {
		return 0
	}
	for _, th := range l.Threads {
		chains[th] = 0
	}
	for _, c := range tr.Chunks {
		if c.Loop != loop {
			continue
		}
		d := c.Duration()
		if d > longest {
			longest = d
		}
		chains[c.Thread] += d
	}
	med := medianTimes(chains)
	if med == 0 {
		return 0
	}
	return float64(longest) / float64(med)
}

// TaskLoadBalance generalizes load balance to task grains at program level:
// the longest task execution time divided by the median per-core busy time.
func TaskLoadBalance(tr *profile.Trace) float64 {
	var longest profile.Time
	for _, t := range tr.Tasks {
		if e := t.ExecTime(); e > longest {
			longest = e
		}
	}
	chains := make(map[int]profile.Time)
	for i, ws := range tr.Workers {
		chains[i] = ws.Busy
	}
	med := medianTimes(chains)
	if med == 0 {
		return 0
	}
	return float64(longest) / float64(med)
}

func medianTimes(m map[int]profile.Time) profile.Time {
	if len(m) == 0 {
		return 0
	}
	vals := make([]profile.Time, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals[len(vals)/2]
}
