package metrics

import (
	"graingraph/internal/core"
	"graingraph/internal/profile"
)

// CriticalPathOver computes the heaviest path through the grain graph under
// a hypothetical weight vector, without touching the graph's Critical flags.
// weights[i] substitutes the graph's recorded weight for node i; pass nil to
// use the recorded weight column. The what-if engine calls this with
// modified vectors to project the effect of optimizations without re-running
// the simulation, so it must be safe for concurrent use on a shared graph
// whose adjacency has already been built (force it with g.Out(0) or a prior
// Topological call).
//
// The pass iterates the columnar store directly — the weight column and the
// CSR adjacency arrays are flat slices, so the longest-path relaxation does
// no per-node pointer chasing and allocates only its own dist/pred arrays.
//
// Tie-breaking is explicit so output is deterministic regardless of edge
// insertion order: among sink nodes tied for the longest path the lowest
// NodeID wins, and among equal-length predecessor paths the lowest
// predecessor NodeID wins.
func CriticalPathOver(g *core.Graph, weights []profile.Time) (profile.Time, []core.NodeID) {
	if g.NumNodes() == 0 {
		return 0, nil
	}
	if weights == nil {
		weights = g.Weights()
	}
	order := g.Topological()
	dist := make([]profile.Time, g.NumNodes())
	pred := make([]core.NodeID, g.NumNodes())
	for i := range pred {
		pred[i] = -1
	}
	bestEnd := core.NodeID(-1)
	var best profile.Time
	for _, n := range order {
		d := dist[n] + weights[n]
		if d > best || (d == best && (bestEnd < 0 || n < bestEnd)) {
			best = d
			bestEnd = n
		}
		for _, ei := range g.Out(n) {
			to := g.EdgeTo(int(ei))
			if d > dist[to] || (d == dist[to] && (pred[to] < 0 || n < pred[to])) {
				dist[to] = d
				pred[to] = n
			}
		}
	}

	// An all-zero-weight graph has no meaningful critical path: report
	// length 0 with no path rather than an arbitrary single node.
	if best == 0 {
		return 0, nil
	}

	// Recover the path in forward order.
	var path []core.NodeID
	for n := bestEnd; n >= 0; n = pred[n] {
		path = append(path, n)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return best, path
}

// CriticalPath computes the heaviest path through the grain graph, weighting
// each node by its time contribution (execution time for grains, creation/
// synchronization overhead for fork/join nodes, delivery cost for
// book-keeping nodes). It marks the nodes and edges on the path via their
// Critical flags and returns the path length and node sequence. When every
// node weight is zero no path exists and nothing is marked.
func CriticalPath(g *core.Graph) (profile.Time, []core.NodeID) {
	best, path := CriticalPathOver(g, nil)
	for _, n := range path {
		g.SetCritical(n, true)
	}
	// Mark edges between consecutive path nodes.
	onPath := make(map[[2]core.NodeID]bool, len(path))
	for i := 1; i < len(path); i++ {
		onPath[[2]core.NodeID{path[i-1], path[i]}] = true
	}
	if len(onPath) > 0 {
		for i := 0; i < g.NumEdges(); i++ {
			if onPath[[2]core.NodeID{g.EdgeFrom(i), g.EdgeTo(i)}] {
				g.SetEdgeCritical(i, true)
			}
		}
	}
	return best, path
}
