package metrics

import (
	"graingraph/internal/core"
	"graingraph/internal/profile"
	"graingraph/internal/runpool"
)

// criticalGrain is the chunk size for the level-synchronous relaxation and
// the final sink scan: big enough that a chunk amortizes its scheduling, and
// fixed so chunk boundaries — and therefore the reduction — are identical at
// every worker count.
const criticalGrain = 2048

// CriticalPathOver computes the heaviest path through the grain graph under
// a hypothetical weight vector, without touching the graph's Critical flags.
// weights[i] substitutes the graph's recorded weight for node i; pass nil to
// use the recorded weight column. The what-if engine calls this with
// modified vectors to project the effect of optimizations without re-running
// the simulation, so it must be safe for concurrent use on a shared graph
// whose adjacency and level indexes have already been built (force them with
// g.NumLevels() and g.In(0), or construct the engine via whatif.New).
//
// It is CriticalPathOverPool with a nil pool: the serial fallback of the
// level-synchronous DP below.
func CriticalPathOver(g *core.Graph, weights []profile.Time) (profile.Time, []core.NodeID) {
	return CriticalPathOverPool(g, weights, nil)
}

// CriticalSpanOver is the span-only variant of CriticalPathOverPool for
// callers that discard the path: no predecessor tracking (dropping both the
// 8-bytes-per-node pred array and the tie-break branch in the inner loop)
// and dist is caller-provided scratch of at least NumNodes elements, every
// one of which is overwritten. Distances are pure maxima, so the returned
// span is bit-identical to CriticalPathOverPool's — the what-if engine's
// dense fallback runs ~20 of these back to back against pooled scratch.
func CriticalSpanOver(g *core.Graph, weights []profile.Time, dist []profile.Time, pool *runpool.Runner) profile.Time {
	if g.NumNodes() == 0 {
		return 0
	}
	if weights == nil {
		weights = g.Weights()
	}
	numLevels := g.NumLevels() // forces the level index (and out-CSR)
	g.In(0)                    // force the in-CSR the pull relaxation reads

	for l := 0; l < numLevels; l++ {
		nodes := g.LevelNodes(l)
		runpool.ParallelFor(pool, len(nodes), criticalGrain, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				n := core.NodeID(nodes[i])
				var d profile.Time
				for _, ei := range g.In(n) {
					from := g.EdgeFrom(int(ei))
					if df := dist[from] + weights[from]; df > d {
						d = df
					}
				}
				dist[n] = d
			}
		})
	}

	return runpool.ParallelReduce(pool, g.NumNodes(), criticalGrain,
		profile.Time(0),
		func(_, lo, hi int, acc profile.Time) profile.Time {
			for i := lo; i < hi; i++ {
				if d := dist[i] + weights[i]; d > acc {
					acc = d
				}
			}
			return acc
		},
		func(a, b profile.Time) profile.Time {
			if b > a {
				return b
			}
			return a
		})
}

// CriticalPathOverPool is the data-parallel critical-path DP: a pull-based,
// level-synchronous relaxation over the store's precomputed topological
// levels. Every edge crosses to a strictly higher level, so all nodes of one
// level relax concurrently — each reads only distances settled by earlier
// levels and writes only its own dist/pred slot. Chunk boundaries within a
// level are fixed (see runpool.ParallelFor), and the final sink reduction
// merges per-chunk partials in chunk index order, so the result is
// byte-identical at every worker count, including pool == nil.
//
// Tie-breaking matches the serial push DP this replaces, keeping output
// deterministic regardless of edge insertion order: among sink nodes tied
// for the longest path the lowest NodeID wins, and among equal-length
// predecessor paths the lowest predecessor NodeID wins. (A pull over a
// node's in-edges taking the max finishing distance with lowest-ID ties
// computes exactly what the push relaxation left in dist/pred: the max is
// order-independent, and both rules resolve equal distances — including the
// all-zero case against the implicit initial dist 0 / pred -1 — toward the
// smallest predecessor ID.)
func CriticalPathOverPool(g *core.Graph, weights []profile.Time, pool *runpool.Runner) (profile.Time, []core.NodeID) {
	if g.NumNodes() == 0 {
		return 0, nil
	}
	if weights == nil {
		weights = g.Weights()
	}
	numLevels := g.NumLevels() // forces the level index (and out-CSR)
	g.In(0)                    // force the in-CSR the pull relaxation reads
	dist := make([]profile.Time, g.NumNodes())
	pred := make([]core.NodeID, g.NumNodes())

	for l := 0; l < numLevels; l++ {
		nodes := g.LevelNodes(l)
		runpool.ParallelFor(pool, len(nodes), criticalGrain, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				n := core.NodeID(nodes[i])
				var d profile.Time
				p := core.NodeID(-1)
				for _, ei := range g.In(n) {
					from := g.EdgeFrom(int(ei))
					df := dist[from] + weights[from]
					if df > d || (df == d && (p < 0 || from < p)) {
						d = df
						p = from
					}
				}
				dist[n] = d
				pred[n] = p
			}
		})
	}

	// Sink selection: the heaviest finishing distance, lowest NodeID among
	// ties. Per-chunk winners merge in index order; ranges are ascending, so
	// the left-fold keeps the first (lowest-ID) chunk's winner on ties.
	type sink struct {
		best profile.Time
		end  core.NodeID
	}
	win := runpool.ParallelReduce(pool, g.NumNodes(), criticalGrain,
		sink{0, -1},
		func(_, lo, hi int, acc sink) sink {
			for i := lo; i < hi; i++ {
				n := core.NodeID(i)
				if d := dist[n] + weights[n]; d > acc.best || (d == acc.best && acc.end < 0) {
					acc.best = d
					acc.end = n
				}
			}
			return acc
		},
		func(a, b sink) sink {
			if b.best > a.best || (b.best == a.best && a.end < 0) {
				return b
			}
			return a
		})

	// An all-zero-weight graph has no meaningful critical path: report
	// length 0 with no path rather than an arbitrary single node.
	if win.best == 0 {
		return 0, nil
	}

	// Recover the path in forward order.
	var path []core.NodeID
	for n := win.end; n >= 0; n = pred[n] {
		path = append(path, n)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return win.best, path
}

// CriticalPath computes the heaviest path through the grain graph, weighting
// each node by its time contribution (execution time for grains, creation/
// synchronization overhead for fork/join nodes, delivery cost for
// book-keeping nodes). It marks the nodes and edges on the path via their
// Critical flags and returns the path length and node sequence. When every
// node weight is zero no path exists and nothing is marked.
func CriticalPath(g *core.Graph) (profile.Time, []core.NodeID) {
	return CriticalPathPool(g, nil)
}

// CriticalPathPool is CriticalPath running its DP and edge-marking scan
// across the pool (nil runs serially), with identical output.
func CriticalPathPool(g *core.Graph, pool *runpool.Runner) (profile.Time, []core.NodeID) {
	best, path := CriticalPathOverPool(g, nil, pool)
	for _, n := range path {
		g.SetCritical(n, true)
	}
	// Mark edges between consecutive path nodes. Each edge's flag depends
	// only on that edge's endpoints, so the scan shards freely.
	if len(path) > 1 {
		onPath := make(map[[2]core.NodeID]bool, len(path))
		for i := 1; i < len(path); i++ {
			onPath[[2]core.NodeID{path[i-1], path[i]}] = true
		}
		runpool.ParallelFor(pool, g.NumEdges(), criticalGrain, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				if onPath[[2]core.NodeID{g.EdgeFrom(i), g.EdgeTo(i)}] {
					g.SetEdgeCritical(i, true)
				}
			}
		})
	}
	return best, path
}
