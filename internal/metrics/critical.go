package metrics

import (
	"graingraph/internal/core"
	"graingraph/internal/profile"
)

// CriticalPath computes the heaviest path through the grain graph, weighting
// each node by its time contribution (execution time for grains, creation/
// synchronization overhead for fork/join nodes, delivery cost for
// book-keeping nodes). It marks the nodes and edges on the path via their
// Critical flags and returns the path length and node sequence.
func CriticalPath(g *core.Graph) (profile.Time, []core.NodeID) {
	if len(g.Nodes) == 0 {
		return 0, nil
	}
	order := g.Topological()
	dist := make([]profile.Time, len(g.Nodes))
	pred := make([]core.NodeID, len(g.Nodes))
	for i := range pred {
		pred[i] = -1
	}
	var bestEnd core.NodeID
	var best profile.Time
	for _, n := range order {
		d := dist[n] + g.Nodes[n].Weight
		if d > best {
			best = d
			bestEnd = n
		}
		for _, ei := range g.Out(n) {
			e := &g.Edges[ei]
			if d > dist[e.To] {
				dist[e.To] = d
				pred[e.To] = n
			}
		}
	}

	// Recover and mark the path.
	var path []core.NodeID
	for n := bestEnd; n >= 0; n = pred[n] {
		path = append(path, n)
		g.Nodes[n].Critical = true
	}
	// Reverse into forward order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	// Mark edges between consecutive path nodes.
	onPath := make(map[[2]core.NodeID]bool, len(path))
	for i := 1; i < len(path); i++ {
		onPath[[2]core.NodeID{path[i-1], path[i]}] = true
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		if onPath[[2]core.NodeID{e.From, e.To}] {
			e.Critical = true
		}
	}
	return best, path
}
