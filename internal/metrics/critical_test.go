package metrics

import (
	"testing"

	"graingraph/internal/core"
	"graingraph/internal/profile"
)

// tiedGraph builds a diamond with two equal-weight branches — n1 and n2 tie
// for every longest path — inserting edges in the given order. Node IDs are
// identical across orderings; only edge insertion order varies, which is
// exactly what the what-if engine's repeated recomputations must be immune
// to.
func tiedGraph(edgeOrder [][2]core.NodeID) *core.Graph {
	g := core.NewGraph(&profile.Trace{Program: "tied"})
	weights := []profile.Time{5, 10, 10, 3}
	for i, w := range weights {
		g.AddNode(core.Node{Kind: core.NodeFragment, Grain: profile.GrainID(rune('a' + i)), Weight: w})
	}
	for _, e := range edgeOrder {
		g.AddEdge(e[0], e[1], core.EdgeContinuation)
	}
	return g
}

// TestCriticalPathTieBreakDeterministic: with several sinks tied for the
// longest path, the reported endpoint and the marked critical set must not
// depend on edge insertion order — lowest NodeID wins both the endpoint and
// each predecessor tie.
func TestCriticalPathTieBreakDeterministic(t *testing.T) {
	forward := [][2]core.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}}
	shuffled := [][2]core.NodeID{{2, 3}, {0, 2}, {1, 3}, {0, 1}}

	gA := tiedGraph(forward)
	gB := tiedGraph(shuffled)
	lenA, pathA := CriticalPath(gA)
	lenB, pathB := CriticalPath(gB)

	if lenA != lenB {
		t.Fatalf("path lengths differ: %d vs %d", lenA, lenB)
	}
	if lenA != 18 { // 5 + 10 + 3
		t.Fatalf("path length = %d, want 18", lenA)
	}
	if len(pathA) != len(pathB) {
		t.Fatalf("path node counts differ: %v vs %v", pathA, pathB)
	}
	for i := range pathA {
		if pathA[i] != pathB[i] {
			t.Fatalf("paths differ at %d: %v vs %v", i, pathA, pathB)
		}
	}
	// The tied predecessor (n1 vs n2) resolves to the lower NodeID.
	want := []core.NodeID{0, 1, 3}
	for i, n := range want {
		if pathA[i] != n {
			t.Fatalf("path = %v, want %v (lowest-NodeID tie-break)", pathA, want)
		}
	}
	// Both graphs mark the same critical node set.
	for i := core.NodeID(0); i < core.NodeID(gA.NumNodes()); i++ {
		if gA.Critical(i) != gB.Critical(i) {
			t.Errorf("node %d critical flag differs between orderings", i)
		}
	}
}

// TestCriticalPathTiedSinksLowestID: two disconnected chains of identical
// length — the endpoint tie resolves to the lowest NodeID sink.
func TestCriticalPathTiedSinksLowestID(t *testing.T) {
	g := core.NewGraph(&profile.Trace{Program: "sinks"})
	for i := 0; i < 4; i++ {
		g.AddNode(core.Node{Kind: core.NodeFragment, Weight: 7})
	}
	// Chains 0→1 and 2→3, both length 14; sinks 1 and 3 tie.
	g.AddEdge(0, 1, core.EdgeContinuation)
	g.AddEdge(2, 3, core.EdgeContinuation)
	_, path := CriticalPath(g)
	if len(path) == 0 || path[len(path)-1] != 1 {
		t.Fatalf("path = %v, want endpoint 1 (lowest tied sink)", path)
	}
}

// TestCriticalPathAllZeroWeights: an all-zero-weight graph has no critical
// path — nothing is marked, instead of node 0 being flagged arbitrarily.
func TestCriticalPathAllZeroWeights(t *testing.T) {
	g := core.NewGraph(&profile.Trace{Program: "zero"})
	for i := 0; i < 3; i++ {
		g.AddNode(core.Node{Kind: core.NodeFragment, Weight: 0})
	}
	g.AddEdge(0, 1, core.EdgeContinuation)
	g.AddEdge(1, 2, core.EdgeContinuation)
	length, path := CriticalPath(g)
	if length != 0 || path != nil {
		t.Fatalf("zero-weight graph: length %d path %v, want 0 and nil", length, path)
	}
	for n := core.NodeID(0); n < core.NodeID(g.NumNodes()); n++ {
		if g.Critical(n) {
			t.Errorf("node %d marked critical in an all-zero-weight graph", n)
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		if g.EdgeCritical(i) {
			t.Errorf("edge %d marked critical in an all-zero-weight graph", i)
		}
	}
}

// TestCriticalPathOverWeightVector: CriticalPathOver projects a
// hypothetical weight vector without touching the recorded weights or the
// Critical flags — the contract the what-if engine relies on.
func TestCriticalPathOverWeightVector(t *testing.T) {
	g := tiedGraph([][2]core.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	base, _ := CriticalPathOver(g, nil)
	if base != 18 {
		t.Fatalf("baseline length = %d, want 18", base)
	}
	// Halve node 1's branch, inflate node 2's: the path must reroute.
	w := g.Weights()
	w[1] = 2
	w[2] = 40
	length, path := CriticalPathOver(g, w)
	if length != 48 { // 5 + 40 + 3
		t.Fatalf("projected length = %d, want 48", length)
	}
	if len(path) != 3 || path[1] != 2 {
		t.Fatalf("projected path = %v, want through node 2", path)
	}
	for n := core.NodeID(0); n < core.NodeID(g.NumNodes()); n++ {
		if g.Critical(n) {
			t.Fatal("CriticalPathOver mutated Critical flags")
		}
		if n == 1 && g.Weight(n) != 10 {
			t.Fatal("CriticalPathOver mutated recorded weights")
		}
	}
}
