package profile

import "fmt"

// Validate checks the structural invariants a trace must satisfy before the
// graph builder may consume it: every fragment and chunk interval is
// well-formed (End >= Start), a task's fragments are ordered and
// non-overlapping, boundary counts match fragment counts, and every
// boundary/chunk refers to a loop the trace records. The live runtimes
// construct traces that hold these by design; the check matters for traces
// read back from disk, where corruption or a buggy producer would otherwise
// surface far away as negative-weight graph nodes or builder panics.
//
// It returns the first violation found, or nil for a well-formed trace.
func (tr *Trace) Validate() error {
	if tr.End < tr.Start {
		return fmt.Errorf("profile: trace span [%d,%d) is negative", tr.Start, tr.End)
	}
	if tr.Cores < 0 {
		return fmt.Errorf("profile: negative core count %d", tr.Cores)
	}
	loops := make(map[LoopID]bool, len(tr.Loops))
	for _, l := range tr.Loops {
		if l.End < l.Start {
			return fmt.Errorf("profile: loop %d span [%d,%d) is negative", l.ID, l.Start, l.End)
		}
		if l.Hi < l.Lo {
			return fmt.Errorf("profile: loop %d iteration space [%d,%d) is negative", l.ID, l.Lo, l.Hi)
		}
		if loops[l.ID] {
			return fmt.Errorf("profile: duplicate loop record %d", l.ID)
		}
		loops[l.ID] = true
	}
	seen := make(map[GrainID]bool, len(tr.Tasks))
	for _, t := range tr.Tasks {
		if t.ID == "" {
			return fmt.Errorf("profile: task with empty grain ID")
		}
		if seen[t.ID] {
			return fmt.Errorf("profile: duplicate task record %q", t.ID)
		}
		seen[t.ID] = true
		if len(t.Boundaries) > len(t.Fragments) {
			return fmt.Errorf("profile: task %q has %d boundaries for %d fragments",
				t.ID, len(t.Boundaries), len(t.Fragments))
		}
		var prevEnd Time
		for i := range t.Fragments {
			f := &t.Fragments[i]
			if f.End < f.Start {
				return fmt.Errorf("profile: task %q fragment %d runs backwards [%d,%d)",
					t.ID, i, f.Start, f.End)
			}
			if i > 0 && f.Start < prevEnd {
				return fmt.Errorf("profile: task %q fragments %d and %d overlap (%d < %d)",
					t.ID, i-1, i, f.Start, prevEnd)
			}
			prevEnd = f.End
		}
		for i := range t.Boundaries {
			b := &t.Boundaries[i]
			if b.Kind == BoundaryLoop && !loops[b.Loop] {
				return fmt.Errorf("profile: task %q boundary %d references unknown loop %d",
					t.ID, i, b.Loop)
			}
		}
	}
	for i, c := range tr.Chunks {
		if c.End < c.Start {
			return fmt.Errorf("profile: chunk %d runs backwards [%d,%d)", i, c.Start, c.End)
		}
		if c.Bookkeep > c.Start {
			return fmt.Errorf("profile: chunk %d book-keeping %d precedes time zero (start %d)",
				i, c.Bookkeep, c.Start)
		}
		if c.Hi < c.Lo {
			return fmt.Errorf("profile: chunk %d iteration range [%d,%d) is negative", i, c.Lo, c.Hi)
		}
		if !loops[c.Loop] {
			return fmt.Errorf("profile: chunk %d references unknown loop %d", i, c.Loop)
		}
	}
	for i, bk := range tr.Bookkeeps {
		if !loops[bk.Loop] {
			return fmt.Errorf("profile: book-keeping record %d references unknown loop %d", i, bk.Loop)
		}
	}
	return nil
}
