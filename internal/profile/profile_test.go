package profile

import (
	"testing"
	"testing/quick"

	"graingraph/internal/cache"
)

func TestSrcLocString(t *testing.T) {
	if got := Loc("sparselu.go", 246, "bmod").String(); got != "sparselu.go:246(bmod)" {
		t.Errorf("SrcLoc = %q", got)
	}
	if got := Loc("fft.go", 4680, "").String(); got != "fft.go:4680" {
		t.Errorf("SrcLoc without func = %q", got)
	}
}

func TestChildIDPathEnumeration(t *testing.T) {
	if got := ChildID(RootID, 0); got != "R.0" {
		t.Errorf("ChildID = %q", got)
	}
	if got := ChildID(ChildID(RootID, 2), 5); got != "R.2.5" {
		t.Errorf("nested ChildID = %q", got)
	}
}

func TestChildIDUniqueProperty(t *testing.T) {
	// Distinct (parent, index) pairs always produce distinct IDs.
	f := func(i1, i2 uint8, p1, p2 uint8) bool {
		parent1 := ChildID(RootID, int(p1))
		parent2 := ChildID(RootID, int(p2))
		id1 := ChildID(parent1, int(i1))
		id2 := ChildID(parent2, int(i2))
		same := p1 == p2 && i1 == i2
		return (id1 == id2) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func makeTestTrace() *Trace {
	// Root R spawns R.0 and R.1, waits for both (wait 100), then runs a
	// 2-chunk loop.
	root := &TaskRecord{
		ID: RootID, Loc: Loc("main.go", 1, "main"),
		StartTime: 0, EndTime: 1000,
		Fragments: []Fragment{
			{Start: 0, End: 100, Core: 0},
			{Start: 100, End: 150, Core: 0},
			{Start: 300, End: 400, Core: 0},
			{Start: 900, End: 1000, Core: 0},
		},
		Boundaries: []Boundary{
			{Kind: BoundaryFork, At: 100, Child: "R.0"},
			{Kind: BoundaryJoin, At: 150, Joined: []GrainID{"R.0", "R.1"}, Wait: 100},
			{Kind: BoundaryLoop, At: 400, Loop: 0},
		},
	}
	c0 := &TaskRecord{
		ID: "R.0", Parent: RootID, Depth: 1, Loc: Loc("main.go", 10, "work"),
		CreateTime: 100, CreateCost: 50, StartTime: 110, EndTime: 210,
		Fragments: []Fragment{{Start: 110, End: 210, Core: 1,
			Counters: cache.Counters{Compute: 90, Stall: 10, Accesses: 5, L1Miss: 1}}},
	}
	c1 := &TaskRecord{
		ID: "R.1", Parent: RootID, Depth: 1, Loc: Loc("main.go", 10, "work"),
		CreateTime: 120, CreateCost: 50, StartTime: 130, EndTime: 250,
		Fragments: []Fragment{{Start: 130, End: 250, Core: 2}},
	}
	loop := &LoopRecord{ID: 0, Loc: Loc("main.go", 20, "loop"), Schedule: ScheduleDynamic,
		ChunkSize: 4, Lo: 0, Hi: 8, Start: 400, End: 900, StartThread: 0, Threads: []int{0, 1}}
	ch0 := &ChunkRecord{Loop: 0, Seq: 0, Thread: 0, Lo: 0, Hi: 4, Start: 410, End: 600, Bookkeep: 10}
	ch1 := &ChunkRecord{Loop: 0, Seq: 1, Thread: 1, Lo: 4, Hi: 8, Start: 420, End: 880, Bookkeep: 10}
	return &Trace{
		Program: "test", Cores: 4, Start: 0, End: 1000,
		Tasks:  []*TaskRecord{root, c0, c1},
		Loops:  []*LoopRecord{loop},
		Chunks: []*ChunkRecord{ch0, ch1},
		Bookkeeps: []*BookkeepRecord{
			{Loop: 0, Thread: 0, Grabs: 2, Total: 20},
			{Loop: 0, Thread: 1, Grabs: 2, Total: 20},
		},
	}
}

func TestTaskRecordAccessors(t *testing.T) {
	tr := makeTestTrace()
	root := tr.Task(RootID)
	if root == nil {
		t.Fatal("root not found")
	}
	if got := root.ExecTime(); got != 100+50+100+100 {
		t.Errorf("root ExecTime = %d, want 350", got)
	}
	if got := root.FirstCore(); got != 0 {
		t.Errorf("root FirstCore = %d", got)
	}
	c0 := tr.Task("R.0")
	counters := c0.TotalCounters()
	if counters.Compute != 90 || counters.Stall != 10 {
		t.Errorf("R.0 counters = %+v", counters)
	}
	if (&TaskRecord{}).FirstCore() != -1 {
		t.Error("empty task FirstCore should be -1")
	}
	if tr.Task("nope") != nil {
		t.Error("lookup of unknown ID should return nil")
	}
}

func TestTraceMakespanAndCounts(t *testing.T) {
	tr := makeTestTrace()
	if tr.Makespan() != 1000 {
		t.Errorf("Makespan = %d", tr.Makespan())
	}
	if tr.NumGrains() != 5 {
		t.Errorf("NumGrains = %d, want 5 (3 tasks + 2 chunks)", tr.NumGrains())
	}
}

func TestChunkGrainID(t *testing.T) {
	tr := makeTestTrace()
	id := tr.ChunkGrainID(tr.Chunks[1])
	if id != "L0@t0#1[4,8)" {
		t.Errorf("chunk grain ID = %q", id)
	}
}

func TestGrainsUnifiedView(t *testing.T) {
	tr := makeTestTrace()
	grains := tr.Grains()
	if len(grains) != 5 {
		t.Fatalf("Grains len = %d, want 5", len(grains))
	}
	byID := make(map[GrainID]*Grain)
	for _, g := range grains {
		byID[g.ID] = g
	}
	r0 := byID["R.0"]
	if r0 == nil {
		t.Fatal("R.0 grain missing")
	}
	if r0.Exec != 100 || r0.CreateCost != 50 {
		t.Errorf("R.0 grain = %+v", r0)
	}
	// The root's join waited 100 over two joined children: 50 each.
	if r0.SyncShare != 50 {
		t.Errorf("R.0 SyncShare = %d, want 50", r0.SyncShare)
	}
	if r0.ParallelizationCost() != 100 {
		t.Errorf("R.0 ParallelizationCost = %d, want 100", r0.ParallelizationCost())
	}
	// Chunks carry bookkeeping as creation cost and the loop pseudo-parent.
	ch := byID["L0@t0#0[0,4)"]
	if ch == nil {
		t.Fatal("chunk grain missing")
	}
	if ch.Kind != KindChunk || ch.CreateCost != 10 || ch.Parent != LoopParentID(0) {
		t.Errorf("chunk grain = %+v", ch)
	}
	// Sorted by start time.
	for i := 1; i < len(grains); i++ {
		if grains[i-1].Start > grains[i].Start {
			t.Errorf("grains not sorted by start: %v then %v", grains[i-1].Start, grains[i].Start)
		}
	}
}

func TestGrainsByParentAndLoc(t *testing.T) {
	tr := makeTestTrace()
	grains := tr.Grains()
	byParent := GrainsByParent(grains)
	if len(byParent[RootID]) != 2 {
		t.Errorf("root has %d child grains, want 2", len(byParent[RootID]))
	}
	if len(byParent[LoopParentID(0)]) != 2 {
		t.Errorf("loop has %d chunk grains, want 2", len(byParent[LoopParentID(0)]))
	}
	byLoc := GrainsByLoc(grains)
	if len(byLoc["main.go:10(work)"]) != 2 {
		t.Errorf("loc grouping = %d, want 2", len(byLoc["main.go:10(work)"]))
	}
}

func TestKindAndScheduleStrings(t *testing.T) {
	if KindTask.String() != "task" || KindChunk.String() != "chunk" {
		t.Error("Kind strings wrong")
	}
	if ScheduleStatic.String() != "static" || ScheduleDynamic.String() != "dynamic" ||
		ScheduleGuided.String() != "guided" {
		t.Error("Schedule strings wrong")
	}
	if ScheduleKind(9).String() == "" {
		t.Error("unknown schedule should stringify")
	}
}
