package profile

import (
	"strings"
	"testing"
)

func validTrace() *Trace {
	return &Trace{
		Program: "t", Cores: 2, Start: 0, End: 100,
		Tasks: []*TaskRecord{
			{ID: RootID, Fragments: []Fragment{{Start: 0, End: 40}, {Start: 60, End: 100}},
				Boundaries: []Boundary{{Kind: BoundaryLoop, At: 40, Loop: 0}}},
		},
		Loops: []*LoopRecord{{ID: 0, Lo: 0, Hi: 8, Start: 40, End: 60, Threads: []int{0, 1}}},
		Chunks: []*ChunkRecord{
			{Loop: 0, Seq: 0, Lo: 0, Hi: 8, Start: 45, End: 58, Bookkeep: 5},
		},
		Bookkeeps: []*BookkeepRecord{{Loop: 0, Thread: 0, Grabs: 1, Total: 5}},
	}
}

func TestValidateAcceptsWellFormedTrace(t *testing.T) {
	if err := validTrace().Validate(); err != nil {
		t.Fatalf("Validate rejected a well-formed trace: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Trace)
		errPart string
	}{
		{"negative trace span", func(tr *Trace) { tr.Start, tr.End = 10, 5 }, "negative"},
		{"backwards fragment", func(tr *Trace) { tr.Tasks[0].Fragments[0] = Fragment{Start: 50, End: 40} }, "runs backwards"},
		{"overlapping fragments", func(tr *Trace) { tr.Tasks[0].Fragments[1].Start = 30 }, "overlap"},
		{"duplicate task", func(tr *Trace) { tr.Tasks = append(tr.Tasks, &TaskRecord{ID: RootID}) }, "duplicate task"},
		{"empty grain ID", func(tr *Trace) { tr.Tasks[0].ID = "" }, "empty grain"},
		{"excess boundaries", func(tr *Trace) {
			tr.Tasks[0].Boundaries = append(tr.Tasks[0].Boundaries,
				Boundary{Kind: BoundaryJoin}, Boundary{Kind: BoundaryJoin})
		}, "boundaries"},
		{"backwards chunk", func(tr *Trace) { tr.Chunks[0].Start, tr.Chunks[0].End = 58, 45 }, "runs backwards"},
		{"chunk bookkeep underflow", func(tr *Trace) { tr.Chunks[0].Bookkeep = 500 }, "precedes time zero"},
		{"chunk unknown loop", func(tr *Trace) { tr.Chunks[0].Loop = 9 }, "unknown loop"},
		{"boundary unknown loop", func(tr *Trace) { tr.Tasks[0].Boundaries[0].Loop = 9 }, "unknown loop"},
		{"bookkeep unknown loop", func(tr *Trace) { tr.Bookkeeps[0].Loop = 9 }, "unknown loop"},
		{"duplicate loop", func(tr *Trace) { tr.Loops = append(tr.Loops, &LoopRecord{ID: 0}) }, "duplicate loop"},
		{"negative loop span", func(tr *Trace) { tr.Loops[0].Start, tr.Loops[0].End = 60, 40 }, "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := validTrace()
			tc.mutate(tr)
			err := tr.Validate()
			if err == nil {
				t.Fatalf("Validate accepted a trace with %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Errorf("error %q does not mention %q", err, tc.errPart)
			}
		})
	}
}

func TestParsePathRoundTrip(t *testing.T) {
	paths := [][]int{nil, {0}, {3}, {0, 0}, {1, 2, 3}, {17, 0, 42, 9}}
	for _, want := range paths {
		id := RootID
		for _, i := range want {
			id = ChildID(id, i)
		}
		got, err := ParsePath(id)
		if err != nil {
			t.Fatalf("ParsePath(%q): %v", id, err)
		}
		if len(got) != len(want) {
			t.Fatalf("ParsePath(%q) = %v, want %v", id, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ParsePath(%q) = %v, want %v", id, got, want)
			}
		}
	}
}

func TestParsePathRejectsMalformed(t *testing.T) {
	for _, bad := range []GrainID{"", "X", "R.", "R..1", "R.1.", "R.-1", "R.a", "L0@t1#0[0,4)"} {
		if _, err := ParsePath(bad); err == nil {
			t.Errorf("ParsePath(%q) accepted a malformed ID", bad)
		}
	}
}
