// Package profile defines the grain-level performance records produced by
// the runtimes (simulated and native) and consumed by the grain-graph
// builder and the metric derivations.
//
// The record set mirrors what the paper's MIR profiler captures at
// OMPT-like events: per-task fragments delimited by fork and join points,
// per-chunk execution records for parallel for-loops, book-keeping costs,
// timestamps, executing cores, and hardware-counter readings (here produced
// by the simulated cache hierarchy).
package profile

import (
	"fmt"
	"strconv"
	"sync"

	"graingraph/internal/cache"
)

// Time is virtual (or native nanosecond) time. All records in one Trace use
// the same clock.
type Time = uint64

// SrcLoc identifies the source definition of a task or loop, in the style
// the paper uses to label grains ("sparselu.c:246(bmod)").
type SrcLoc struct {
	File string
	Line int
	Func string
}

// String renders the location like the paper: file:line(func).
//
// Exporters call this once per node per figure, so it is built with a
// sized append chain rather than fmt — Sprintf's interface boxing showed
// up in rendering profiles.
func (l SrcLoc) String() string {
	b := make([]byte, 0, len(l.File)+len(l.Func)+8)
	b = append(b, l.File...)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(l.Line), 10)
	if l.Func != "" {
		b = append(b, '(')
		b = append(b, l.Func...)
		b = append(b, ')')
	}
	return string(b)
}

// Loc is a convenience constructor for SrcLoc.
func Loc(file string, line int, fn string) SrcLoc { return SrcLoc{File: file, Line: line, Func: fn} }

// GrainID identifies a grain independent of scheduling.
//
// Task grains use path enumeration on the spawn tree ("R", "R.0", "R.0.3"):
// the i-th task spawned by a parent, counted in program order, appends ".i".
// For a deterministic program this is identical across machine sizes and
// schedules, which is what makes work deviation computable.
//
// Chunk grains are identified, per the paper, by the thread that started the
// loop, a per-loop sequence counter and the iteration range:
// "L<loop>@t<thread>#<seq>[lo,hi)".
type GrainID string

// RootID is the grain ID of the master (initial) task.
const RootID GrainID = "R"

// ChildID returns the path-enumeration ID of the index-th child of parent.
// It sits on the spawn hot path of both runtimes (every task creation mints
// an ID), so it appends with strconv instead of fmt.
func ChildID(parent GrainID, index int) GrainID {
	b := make([]byte, 0, len(parent)+4)
	b = append(b, parent...)
	b = append(b, '.')
	b = strconv.AppendInt(b, int64(index), 10)
	return GrainID(b)
}

// ParsePath decodes a task grain's path enumeration: "R.0.3" yields
// [0, 3]; the root "R" yields an empty slice. It is the inverse of
// repeated ChildID application starting from RootID. Chunk IDs and other
// malformed strings return an error.
func ParsePath(id GrainID) ([]int, error) {
	s := string(id)
	if s == string(RootID) {
		return nil, nil
	}
	if len(s) < 2 || s[0] != RootID[0] || s[1] != '.' {
		return nil, fmt.Errorf("profile: %q is not a task path enumeration", id)
	}
	s = s[2:]
	if s == "" {
		return nil, fmt.Errorf("profile: trailing separator in %q", id)
	}
	path := make([]int, 0, 4)
	for len(s) > 0 {
		j := 0
		for j < len(s) && s[j] != '.' {
			j++
		}
		n, err := strconv.Atoi(s[:j])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("profile: bad path component %q in %q", s[:j], id)
		}
		path = append(path, n)
		if j == len(s) {
			break
		}
		s = s[j+1:]
		if s == "" {
			return nil, fmt.Errorf("profile: trailing separator in %q", id)
		}
	}
	return path, nil
}

// Kind distinguishes the two grain varieties.
type Kind int

const (
	// KindTask is a task instance.
	KindTask Kind = iota
	// KindChunk is a parallel-for-loop chunk instance.
	KindChunk
)

// String returns "task" or "chunk".
func (k Kind) String() string {
	if k == KindChunk {
		return "chunk"
	}
	return "task"
}

// Fragment is one contiguous execution interval of a task on one core,
// delimited by spawn/join points.
type Fragment struct {
	Start, End Time
	Core       int
	Counters   cache.Counters
}

// Duration returns the fragment's execution time.
func (f *Fragment) Duration() Time { return f.End - f.Start }

// BoundaryKind says what ended a fragment.
type BoundaryKind int

const (
	// BoundaryFork marks a task spawn.
	BoundaryFork BoundaryKind = iota
	// BoundaryJoin marks a taskwait synchronization.
	BoundaryJoin
	// BoundaryLoop marks a parallel for-loop executed at this point (only in
	// the master task). The loop is itself a fork-join construct; the
	// builder expands it into bookkeeping/chunk chains.
	BoundaryLoop
)

// Boundary separates Fragments[i] from Fragments[i+1] in a TaskRecord.
type Boundary struct {
	Kind   BoundaryKind
	At     Time
	Child  GrainID   // BoundaryFork: the spawned task
	Joined []GrainID // BoundaryJoin: children synchronized here
	// Wait is the synchronization *overhead* the task paid at this join
	// (runtime bookkeeping, not useful work); it feeds the parallel-benefit
	// metric's "time spent by the grain's parent in synchronizing".
	Wait Time
	// Suspended is how long the task was suspended at this join in wall
	// (virtual) time; on a help-first runtime the owning worker usually
	// executes other grains during this interval.
	Suspended Time
	Loop      LoopID // BoundaryLoop: the loop instance
}

// TaskRecord is the complete profile of one task instance.
type TaskRecord struct {
	ID     GrainID
	Parent GrainID // empty for the root
	Loc    SrcLoc
	Depth  int // spawn-tree depth; root is 0

	CreateTime Time // when the parent spawned it
	CreateCost Time // cycles the parent paid to create it
	CreatedBy  int  // worker that spawned it
	StartTime  Time // first fragment start
	EndTime    Time // last fragment end

	Fragments  []Fragment
	Boundaries []Boundary // len == len(Fragments)-1 for a completed task

	// Inlined marks tasks the runtime executed undeferred due to an internal
	// cutoff/throttle (the paper's ICC queue-size cutoff, GCC's 64×threads
	// limit).
	Inlined bool
}

// ExecTime returns the task's total execution time across fragments.
func (t *TaskRecord) ExecTime() Time {
	var sum Time
	for i := range t.Fragments {
		sum += t.Fragments[i].Duration()
	}
	return sum
}

// TotalCounters aggregates the task's fragment counters.
func (t *TaskRecord) TotalCounters() cache.Counters {
	var c cache.Counters
	for i := range t.Fragments {
		c.Add(t.Fragments[i].Counters)
	}
	return c
}

// FirstCore returns the core that executed the task's first fragment, or -1
// for an empty record.
func (t *TaskRecord) FirstCore() int {
	if len(t.Fragments) == 0 {
		return -1
	}
	return t.Fragments[0].Core
}

// LoopID numbers parallel for-loop instances in program order.
type LoopID int

// ScheduleKind is the OpenMP loop schedule.
type ScheduleKind int

const (
	// ScheduleStatic divides iterations into equal contiguous chunks
	// assigned round-robin up front.
	ScheduleStatic ScheduleKind = iota
	// ScheduleDynamic hands out fixed-size chunks from a shared counter.
	ScheduleDynamic
	// ScheduleGuided hands out geometrically shrinking chunks.
	ScheduleGuided
)

// String returns the OpenMP schedule name.
func (s ScheduleKind) String() string {
	switch s {
	case ScheduleStatic:
		return "static"
	case ScheduleDynamic:
		return "dynamic"
	case ScheduleGuided:
		return "guided"
	default:
		return fmt.Sprintf("ScheduleKind(%d)", int(s))
	}
}

// LoopRecord is the profile of one parallel for-loop instance.
type LoopRecord struct {
	ID          LoopID
	Loc         SrcLoc
	Schedule    ScheduleKind
	ChunkSize   int
	Lo, Hi      int // iteration space [Lo,Hi)
	Start, End  Time
	StartThread int   // thread that started the loop (constant w/o nesting)
	Threads     []int // workers that participated
}

// ChunkRecord is the profile of one executed chunk.
type ChunkRecord struct {
	Loop     LoopID
	Seq      int // grab order within the loop
	Thread   int // executing worker/core
	Lo, Hi   int // iteration range [Lo,Hi)
	Start    Time
	End      Time
	Bookkeep Time // book-keeping cost paid to obtain this chunk
	Counters cache.Counters
}

// ID returns the paper's chunk identification: starting thread of the loop
// is prepended by the Trace accessor; the record alone identifies by loop,
// sequence and range.
func (c *ChunkRecord) ID(startThread int) GrainID {
	b := make([]byte, 0, 24)
	b = append(b, 'L')
	b = strconv.AppendInt(b, int64(c.Loop), 10)
	b = append(b, '@', 't')
	b = strconv.AppendInt(b, int64(startThread), 10)
	b = append(b, '#')
	b = strconv.AppendInt(b, int64(c.Seq), 10)
	b = append(b, '[')
	b = strconv.AppendInt(b, int64(c.Lo), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(c.Hi), 10)
	b = append(b, ')')
	return GrainID(b)
}

// Duration returns the chunk's execution time.
func (c *ChunkRecord) Duration() Time { return c.End - c.Start }

// BookkeepRecord aggregates a worker's book-keeping work for one loop
// (the per-thread grouping reduction the paper applies).
type BookkeepRecord struct {
	Loop   LoopID
	Thread int
	Grabs  int  // how many times the worker entered book-keeping
	Total  Time // total book-keeping cycles
}

// WorkerStat aggregates one worker's time split, the raw material of the
// thread-timeline baseline view (paper Figure 4).
type WorkerStat struct {
	Busy     Time // cycles executing grain code
	Overhead Time // cycles in runtime bookkeeping (spawn, steal, queue ops)
}

// Trace is a complete profiled run.
type Trace struct {
	// Program and environment identification.
	Program    string
	Cores      int
	Sockets    int
	Scheduler  string // "work-stealing" or "central-queue"
	Flavor     string // runtime flavour: "MIR", "GCC", "ICC"
	PagePolicy string

	Start, End Time

	Tasks     []*TaskRecord
	Loops     []*LoopRecord
	Chunks    []*ChunkRecord
	Bookkeeps []*BookkeepRecord
	Workers   []WorkerStat

	// Lookup indexes, built lazily under indexOnce: a finished trace is
	// immutable and may be shared by concurrently running analyses (the
	// experiment engine memoizes simulation runs across figures), so the
	// build must be race-free.
	indexOnce sync.Once
	taskIndex map[GrainID]*TaskRecord
	loopIndex map[LoopID]*LoopRecord
}

// buildIndexes populates both lookup indexes exactly once.
func (tr *Trace) buildIndexes() {
	tr.indexOnce.Do(func() {
		tr.taskIndex = make(map[GrainID]*TaskRecord, len(tr.Tasks))
		for _, t := range tr.Tasks {
			tr.taskIndex[t.ID] = t
		}
		tr.loopIndex = make(map[LoopID]*LoopRecord, len(tr.Loops))
		for _, l := range tr.Loops {
			tr.loopIndex[l.ID] = l
		}
	})
}

// Makespan returns the total profiled execution time.
func (tr *Trace) Makespan() Time { return tr.End - tr.Start }

// Task looks up a task record by grain ID.
func (tr *Trace) Task(id GrainID) *TaskRecord {
	tr.buildIndexes()
	return tr.taskIndex[id]
}

// Loop looks up a loop record by ID.
func (tr *Trace) Loop(id LoopID) *LoopRecord {
	tr.buildIndexes()
	return tr.loopIndex[id]
}

// ChunkGrainID returns the full paper-style chunk grain ID using the loop's
// starting thread.
func (tr *Trace) ChunkGrainID(c *ChunkRecord) GrainID {
	l := tr.Loop(c.Loop)
	start := 0
	if l != nil {
		start = l.StartThread
	}
	return c.ID(start)
}

// NumGrains returns the total grain count (tasks + chunks). The root/master
// task counts as a grain, matching the paper's inclusion of the initial task.
func (tr *Trace) NumGrains() int { return len(tr.Tasks) + len(tr.Chunks) }
