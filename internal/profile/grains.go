package profile

import (
	"fmt"
	"sort"

	"graingraph/internal/cache"
)

// Grain is the unified per-grain view used by the metric derivations: one
// row per task instance or chunk instance with everything the paper's
// metrics need.
type Grain struct {
	ID     GrainID
	Kind   Kind
	Loc    SrcLoc
	Parent GrainID // task parent, or the loop pseudo-parent for chunks
	Depth  int

	Start, End Time // wall-clock span (first fragment start .. last end)
	Exec       Time // execution time excluding suspension

	Core     int // core of the first fragment / the chunk's core
	Counters cache.Counters

	// Parallelization cost components (paper §3.2, "parallel benefit"):
	// CreateCost is the creation cost borne by the parent (book-keeping cost
	// for chunks); SyncShare is the grain's share of the parent's
	// synchronization wait.
	CreateCost Time
	SyncShare  Time

	// Inlined marks runtime-throttled tasks.
	Inlined bool
}

// ParallelizationCost returns CreateCost + SyncShare.
func (g *Grain) ParallelizationCost() Time { return g.CreateCost + g.SyncShare }

// LoopParentID is the pseudo-parent grain ID shared by all chunks of a loop,
// making them siblings for the scatter metric.
func LoopParentID(id LoopID) GrainID { return GrainID(fmt.Sprintf("loop:%d", id)) }

// Grains flattens the trace into the unified grain view, sorted by start
// time (ties broken by ID for determinism).
func (tr *Trace) Grains() []*Grain {
	grains := make([]*Grain, 0, tr.NumGrains())

	// Distribute each task's join waits over the children synchronized at
	// that join: child's SyncShare = wait / #joined.
	syncShare := make(map[GrainID]Time)
	for _, t := range tr.Tasks {
		for i := range t.Boundaries {
			b := &t.Boundaries[i]
			if b.Kind != BoundaryJoin || len(b.Joined) == 0 {
				continue
			}
			share := b.Wait / Time(len(b.Joined))
			for _, child := range b.Joined {
				syncShare[child] += share
			}
		}
	}

	for _, t := range tr.Tasks {
		g := &Grain{
			ID:         t.ID,
			Kind:       KindTask,
			Loc:        t.Loc,
			Parent:     t.Parent,
			Depth:      t.Depth,
			Start:      t.StartTime,
			End:        t.EndTime,
			Exec:       t.ExecTime(),
			Core:       t.FirstCore(),
			Counters:   t.TotalCounters(),
			CreateCost: t.CreateCost,
			SyncShare:  syncShare[t.ID],
			Inlined:    t.Inlined,
		}
		grains = append(grains, g)
	}

	for _, c := range tr.Chunks {
		l := tr.Loop(c.Loop)
		loc := SrcLoc{}
		if l != nil {
			loc = l.Loc
		}
		g := &Grain{
			ID:         tr.ChunkGrainID(c),
			Kind:       KindChunk,
			Loc:        loc,
			Parent:     LoopParentID(c.Loop),
			Depth:      1,
			Start:      c.Start,
			End:        c.End,
			Exec:       c.Duration(),
			Core:       c.Thread,
			Counters:   c.Counters,
			CreateCost: c.Bookkeep,
		}
		grains = append(grains, g)
	}

	sort.Slice(grains, func(i, j int) bool {
		if grains[i].Start != grains[j].Start {
			return grains[i].Start < grains[j].Start
		}
		return grains[i].ID < grains[j].ID
	})
	return grains
}

// GrainsByParent groups grains into sibling sets keyed by parent ID.
func GrainsByParent(grains []*Grain) map[GrainID][]*Grain {
	m := make(map[GrainID][]*Grain)
	for _, g := range grains {
		m[g.Parent] = append(m[g.Parent], g)
	}
	return m
}

// GrainsByLoc groups grains by their source definition, the grouping
// Figure 7 of the paper uses ("performance grouped by definition in source
// files").
func GrainsByLoc(grains []*Grain) map[string][]*Grain {
	m := make(map[string][]*Grain)
	for _, g := range grains {
		m[g.Loc.String()] = append(m[g.Loc.String()], g)
	}
	return m
}
