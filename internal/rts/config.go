// Package rts is the simulated OpenMP-like tasking runtime the grain-graph
// profiler observes. It plays the role of the paper's MIR runtime (plus the
// GCC- and ICC-flavoured comparators): tied tasks with taskwait
// synchronization, parallel for-loops with static/dynamic/guided chunk
// schedules, a work-stealing scheduler over per-worker deques, and a
// central-queue scheduler baseline.
//
// Execution happens in virtual time on a simulated NUMA machine
// (internal/machine + internal/cache): task bodies are real Go closures that
// charge cycles explicitly via Compute and memory accesses via Load/Store.
// This makes runs on 1..48 cores deterministic and machine-independent,
// which is what lets us reproduce the paper's experiments without the
// authors' 48-core Opteron testbed.
package rts

import (
	"fmt"

	"graingraph/internal/cache"
	"graingraph/internal/ggp"
	"graingraph/internal/machine"
	"graingraph/internal/profile"
	"graingraph/internal/trace"
)

// Flavor selects the runtime-system policy personality, mirroring the three
// OpenMP runtimes the paper compares.
type Flavor int

const (
	// FlavorMIR is plain work-stealing with no internal task throttling,
	// like the paper's MIR runtime.
	FlavorMIR Flavor = iota
	// FlavorGCC throttles task creation once the total number of queued
	// tasks exceeds 64× the thread count, executing further spawns
	// undeferred — GCC libgomp's policy the paper cites.
	FlavorGCC
	// FlavorICC inlines spawns whenever the spawning worker's own queue is
	// longer than an internal limit — the "queue-size based internal cutoff"
	// the paper found in the ICC runtime sources, which lets ICC survive
	// broken program-level cutoffs (376.kdtree, FFT).
	FlavorICC
)

// String returns the flavour name used in traces and reports.
func (f Flavor) String() string {
	switch f {
	case FlavorMIR:
		return "MIR"
	case FlavorGCC:
		return "GCC"
	case FlavorICC:
		return "ICC"
	default:
		return fmt.Sprintf("Flavor(%d)", int(f))
	}
}

// SchedulerKind selects the task scheduler.
type SchedulerKind int

const (
	// WorkStealing gives each worker a Chase-Lev style deque; idle workers
	// steal the oldest task from a victim.
	WorkStealing SchedulerKind = iota
	// CentralQueueSched funnels every task through one shared FIFO queue —
	// the baseline whose sibling scatter Figure 11d of the paper shows.
	CentralQueueSched
)

// String returns the scheduler name used in traces and reports.
func (s SchedulerKind) String() string {
	if s == CentralQueueSched {
		return "central-queue"
	}
	return "work-stealing"
}

// CostModel sets the runtime overheads in cycles. The defaults are sized so
// that grains below roughly a thousand cycles have parallel benefit < 1,
// matching the paper's narrative that too-fine grains don't pay for their
// parallelization.
type CostModel struct {
	Spawn           uint64 // create + enqueue a task (paid by the parent)
	SpawnInlined    uint64 // create an undeferred (throttled) task: no enqueue
	Steal           uint64 // successful steal (thief)
	Pop             uint64 // owner dequeue
	Resume          uint64 // resume a suspended task
	TaskEnd         uint64 // task teardown
	JoinPerChild    uint64 // per-child bookkeeping at a taskwait
	BookkeepStatic  uint64 // static-schedule chunk delivery
	BookkeepDynamic uint64 // dynamic/guided chunk delivery (excl. lock)
	CounterLock     uint64 // serialization window on the shared loop counter
	QueueOp         uint64 // central queue enqueue/dequeue
}

// DefaultCosts returns the standard cost model.
func DefaultCosts() CostModel {
	return CostModel{
		Spawn:           800,
		SpawnInlined:    200,
		Steal:           2000,
		Pop:             150,
		Resume:          300,
		TaskEnd:         100,
		JoinPerChild:    200,
		BookkeepStatic:  100,
		BookkeepDynamic: 250,
		CounterLock:     150,
		QueueOp:         300,
	}
}

// Config describes one simulated run.
type Config struct {
	Program   string // label recorded in the trace
	Cores     int    // workers; worker i is pinned to core i
	Topology  *machine.Topology
	Cache     cache.Config
	Policy    machine.Policy
	Scheduler SchedulerKind
	Flavor    Flavor
	// ThrottleLimit is the per-queue length limit for FlavorICC. The
	// default (24) is scaled to this simulator's laptop-sized inputs the
	// same way ICC's 256-ish limit relates to the paper's full-size runs:
	// deep enough that healthy programs never hit it, shallow enough that a
	// task explosion does.
	ThrottleLimit int
	Seed          uint64
	Costs         CostModel
	RootLoc       profile.SrcLoc

	// Trace, when non-nil, receives the structured runtime event stream
	// (task spawn/start/steal/park/resume/end, chunk dispatch, fragment
	// counter snapshots) in virtual-time order. Nil disables emission
	// entirely; the engine pays only a nil check per event site.
	Trace trace.Sink
	// Metrics, when non-nil, is reset and filled with the run's
	// scheduler and cache/NUMA counter registry (per worker and per
	// grain definition). Nil disables collection.
	Metrics *trace.Metrics
	// Profile, when non-nil, receives the finished run's records as a GGP
	// artifact stream at finalization (record order is spawn order, which
	// replayed analysis depends on). The caller owns the writer: closing it
	// seals the artifact and surfaces any emission error.
	Profile *ggp.Writer
}

// withDefaults validates and fills zero fields.
func (c Config) withDefaults() Config {
	if c.Topology == nil {
		c.Topology = machine.Default48()
	}
	if c.Cores <= 0 {
		c.Cores = c.Topology.NumCores()
	}
	if c.Cores > c.Topology.NumCores() {
		panic(fmt.Sprintf("rts: %d cores requested but topology has %d",
			c.Cores, c.Topology.NumCores()))
	}
	if c.Cache.LineSize == 0 {
		c.Cache = cache.DefaultConfig()
	}
	if c.ThrottleLimit == 0 {
		c.ThrottleLimit = 24
	}
	if c.Costs == (CostModel{}) {
		c.Costs = DefaultCosts()
	}
	if c.Program == "" {
		c.Program = "program"
	}
	if c.RootLoc == (profile.SrcLoc{}) {
		c.RootLoc = profile.Loc(c.Program+".go", 1, "main")
	}
	return c
}

// ForOpt configures a parallel for-loop.
type ForOpt struct {
	Schedule profile.ScheduleKind
	// Chunk is the chunk size; 0 means the schedule default (static: evenly
	// split across workers; dynamic: 1; guided: minimum chunk 1).
	Chunk int
	// NumThreads restricts the loop to the first N workers (the paper's
	// num_threads(7) Freqmine optimization); 0 means all.
	NumThreads int
}

// Ctx is the tasking API task bodies program against — the moral equivalent
// of the OpenMP pragmas the paper's benchmarks use, plus explicit cost
// charging (the simulated stand-in for actually burning cycles).
type Ctx interface {
	// Spawn creates a child task (omp task). The child's grain ID is
	// path-enumerated from the parent, so IDs are schedule-independent.
	Spawn(loc profile.SrcLoc, body func(Ctx))
	// TaskWait blocks until all children spawned so far have finished
	// (omp taskwait). The worker helps execute other tasks meanwhile.
	TaskWait()
	// For runs a parallel for-loop over [lo,hi) (omp parallel for). Only the
	// master/root context may call it; the profiler, like the paper's, does
	// not support nested parallelism. The body receives chunk bounds.
	For(loc profile.SrcLoc, lo, hi int, opt ForOpt, body func(c Ctx, lo, hi int))
	// Compute charges pure computation cycles.
	Compute(cycles uint64)
	// Load / Store charge a sequential memory scan of length bytes at off
	// within region r through the simulated cache hierarchy.
	Load(r *machine.Region, off, length int64)
	Store(r *machine.Region, off, length int64)
	// LoadStrided / StoreStrided charge count accesses with a byte stride.
	LoadStrided(r *machine.Region, off int64, count int, stride int64)
	StoreStrided(r *machine.Region, off int64, count int, stride int64)
	// Alloc reserves a named region in simulated memory.
	Alloc(name string, size int64) *machine.Region
	// Depth is the task's spawn-tree depth (root = 0).
	Depth() int
	// Worker is the executing worker/core ID.
	Worker() int
	// Cores is the number of workers in this run.
	Cores() int
}
