package rts

// Observability hooks: every emission and counter site the engine calls
// lives here, each guarded on a nil sink/registry so an uninstrumented
// run (the default) pays nothing beyond a pointer test.

import (
	"graingraph/internal/cache"
	"graingraph/internal/profile"
	"graingraph/internal/sim"
	"graingraph/internal/trace"
)

// emitInstant emits an instant event (spawn/start/steal/park/resume/end).
func (rt *runtime) emitInstant(k trace.Kind, at sim.Time, worker, victim int,
	grain profile.GrainID, loc profile.SrcLoc) {
	if rt.sink == nil {
		return
	}
	rt.sink.Emit(trace.Event{
		Kind: k, Start: at, At: at,
		Worker: worker, Victim: victim, Grain: grain, Loc: loc,
	})
}

// emitSpan emits a fragment/chunk span with its counter snapshot.
func (rt *runtime) emitSpan(k trace.Kind, start, end sim.Time, worker int,
	grain profile.GrainID, loc profile.SrcLoc, cnt cache.Counters) {
	if rt.sink == nil {
		return
	}
	rt.sink.Emit(trace.Event{
		Kind: k, Start: start, At: end,
		Worker: worker, Victim: -1, Grain: grain, Loc: loc, Counters: cnt,
	})
}

// countOverhead books overhead cycles against worker w under kind k.
// Call it alongside every `w.overhead +=` so the registry reconciles
// cycle-for-cycle with profile.WorkerStat.Overhead.
func (rt *runtime) countOverhead(w *worker, k trace.OverheadKind, cycles sim.Time) {
	if rt.met == nil {
		return
	}
	rt.met.W(w.id).OverheadBy[k] += cycles
}

// countGrain aggregates a finished fragment/chunk into the per-worker
// and per-definition cache/exec rollups. d is the grain's definition
// aggregate, resolved once by the caller (nil when metrics are off).
func (rt *runtime) countGrain(worker int, d *trace.DefMetrics, exec sim.Time, cnt cache.Counters) {
	if rt.met == nil {
		return
	}
	rt.met.W(worker).Cache.Add(cnt)
	d.Exec += exec
	d.Cache.Add(cnt)
}

// countSteal books a successful steal plus its modeled failed probes:
// random victim selection means the thief probes deques until it finds a
// non-empty one, so every other empty deque at steal time counts as one
// failed attempt.
func (rt *runtime) countSteal(thief *worker) {
	if rt.met == nil {
		return
	}
	wm := rt.met.W(thief.id)
	wm.Steals++
	for _, v := range rt.workers {
		if v != thief && v.deque.Len() == 0 {
			wm.FailedSteals++
		}
	}
}

// finalizeMetrics closes the registry: per-worker time splits and the
// run makespan. Busy+Overhead+Idle == Makespan for every worker by
// construction; internal/timeline fails loudly if that ever breaks.
func (rt *runtime) finalizeMetrics() {
	if rt.met == nil {
		return
	}
	rt.met.Makespan = rt.maxTime
	for _, w := range rt.workers {
		wm := rt.met.W(w.id)
		wm.Busy = w.busy
		wm.Overhead = w.overhead
		if used := w.busy + w.overhead; used <= rt.maxTime {
			wm.Idle = rt.maxTime - used
		}
	}
}
