package rts

import (
	"testing"

	"graingraph/internal/profile"
	"graingraph/internal/trace"
)

// fibProgram is a spawn-heavy recursive workload that exercises steals,
// parks and resumes on a few cores.
func fibProgram(n int) func(Ctx) {
	var fib func(c Ctx, n int)
	fib = func(c Ctx, n int) {
		if n < 2 {
			c.Compute(100)
			return
		}
		c.Spawn(testLoc(1, "fib"), func(c Ctx) { fib(c, n-1) })
		c.Spawn(testLoc(1, "fib"), func(c Ctx) { fib(c, n-2) })
		c.TaskWait()
		c.Compute(50)
	}
	return func(c Ctx) { fib(c, n) }
}

func loopyProgram(c Ctx) {
	c.Compute(500)
	c.For(testLoc(2, "loop"), 0, 64,
		ForOpt{Schedule: profile.ScheduleDynamic, Chunk: 4},
		func(c Ctx, lo, hi int) { c.Compute(uint64(300 * (hi - lo))) })
	c.Spawn(testLoc(3, "tail"), func(c Ctx) { c.Compute(2000) })
	c.TaskWait()
}

// instrumentedRun runs prog twice under cfg — once bare, once with a
// sink and registry attached — and returns both traces plus the
// instrumentation artifacts.
func instrumentedRun(t *testing.T, cfg Config, prog func(Ctx)) (bare, inst *profile.Trace, sink *trace.RingSink, met *trace.Metrics) {
	t.Helper()
	bare = Run(cfg, prog)
	sink = trace.NewRingSink(1 << 20)
	met = trace.NewMetrics()
	icfg := cfg
	icfg.Trace = sink
	icfg.Metrics = met
	inst = Run(icfg, prog)
	return
}

// TestInstrumentationDoesNotPerturb: attaching a sink and a metrics
// registry must not change the simulation at all — same makespan, same
// per-worker time splits, same grain count.
func TestInstrumentationDoesNotPerturb(t *testing.T) {
	bare, inst, _, _ := instrumentedRun(t, smallConfig(4), fibProgram(10))
	if bare.Makespan() != inst.Makespan() {
		t.Fatalf("instrumentation changed makespan: %d vs %d", bare.Makespan(), inst.Makespan())
	}
	if len(bare.Tasks) != len(inst.Tasks) {
		t.Fatalf("instrumentation changed task count: %d vs %d", len(bare.Tasks), len(inst.Tasks))
	}
	for i := range bare.Workers {
		b, n := bare.Workers[i], inst.Workers[i]
		if b.Busy != n.Busy || b.Overhead != n.Overhead {
			t.Errorf("worker %d time split changed: busy %d/%d overhead %d/%d",
				i, b.Busy, n.Busy, b.Overhead, n.Overhead)
		}
	}
}

// TestMetricsConservation: the registry's per-worker time split must
// reconcile cycle-for-cycle with the profile's worker stats, its
// per-kind overhead split must sum to the total, and
// busy+overhead+idle must equal the makespan for every worker.
func TestMetricsConservation(t *testing.T) {
	for _, prog := range []struct {
		name string
		fn   func(Ctx)
	}{{"fib", fibProgram(11)}, {"loop", loopyProgram}} {
		t.Run(prog.name, func(t *testing.T) {
			_, tr, _, met := instrumentedRun(t, smallConfig(4), prog.fn)
			if met.Makespan != tr.Makespan() {
				t.Fatalf("metrics makespan %d, trace %d", met.Makespan, tr.Makespan())
			}
			for i := range met.Workers {
				wm := &met.Workers[i]
				ws := tr.Workers[i]
				if wm.Busy != ws.Busy {
					t.Errorf("worker %d busy: metrics %d, profile %d", i, wm.Busy, ws.Busy)
				}
				if wm.Overhead != ws.Overhead {
					t.Errorf("worker %d overhead: metrics %d, profile %d", i, wm.Overhead, ws.Overhead)
				}
				if got := met.OverheadOf(i); got != wm.Overhead {
					t.Errorf("worker %d overhead split sums to %d, total %d", i, got, wm.Overhead)
				}
				if sum := wm.Busy + wm.Overhead + wm.Idle; sum != met.Makespan {
					t.Errorf("worker %d busy+overhead+idle = %d ≠ makespan %d", i, sum, met.Makespan)
				}
			}
		})
	}
}

// TestEventStreamMatchesMetrics: with an undropped sink, the counted
// events of each kind must equal the registry's counters, and span
// events must be well-formed.
func TestEventStreamMatchesMetrics(t *testing.T) {
	_, tr, sink, met := instrumentedRun(t, smallConfig(4), fibProgram(10))
	if sink.Dropped() != 0 {
		t.Fatalf("ring dropped %d events; enlarge the test capacity", sink.Dropped())
	}
	counts := map[trace.Kind]uint64{}
	var fragments int
	for _, e := range sink.Events() {
		counts[e.Kind]++
		if e.Start > e.At {
			t.Fatalf("event %v has Start %d > At %d", e.Kind, e.Start, e.At)
		}
		if e.Kind == trace.KindFragment {
			fragments++
		}
		if e.Worker < 0 || e.Worker >= tr.Cores {
			t.Fatalf("event %v on out-of-range worker %d", e.Kind, e.Worker)
		}
	}
	if counts[trace.KindSteal] != met.Steals() {
		t.Errorf("steal events %d, registry %d", counts[trace.KindSteal], met.Steals())
	}
	if counts[trace.KindPark] != met.Parks() {
		t.Errorf("park events %d, registry %d", counts[trace.KindPark], met.Parks())
	}
	if counts[trace.KindResume] != met.Resumes() {
		t.Errorf("resume events %d, registry %d", counts[trace.KindResume], met.Resumes())
	}
	if counts[trace.KindTaskSpawn] != met.Spawns() {
		t.Errorf("spawn events %d, registry %d", counts[trace.KindTaskSpawn], met.Spawns())
	}
	if met.Steals() == 0 {
		t.Error("fib on 4 cores should steal at least once")
	}
	if met.Parks() == 0 || met.Parks() != met.Resumes() {
		t.Errorf("parks %d / resumes %d, want equal and nonzero", met.Parks(), met.Resumes())
	}
	// Every profiled fragment must have produced a fragment event.
	want := 0
	for _, task := range tr.Tasks {
		want += len(task.Fragments)
	}
	if fragments != want {
		t.Errorf("fragment events %d, profile has %d fragments", fragments, want)
	}
}

// TestMetricsBusyMatchesGrainExec: the per-definition exec aggregate
// must cover exactly the busy cycles of the run.
func TestMetricsBusyMatchesGrainExec(t *testing.T) {
	_, tr, _, met := instrumentedRun(t, smallConfig(4), loopyProgram)
	var defExec, busy profile.Time
	for _, d := range met.SortedDefs() {
		defExec += d.Exec
	}
	for i := range tr.Workers {
		busy += tr.Workers[i].Busy
	}
	if defExec != busy {
		t.Errorf("per-definition exec %d ≠ total busy %d", defExec, busy)
	}
}

// TestCentralQueueMetrics: the central-queue scheduler books queue ops
// instead of deque traffic.
func TestCentralQueueMetrics(t *testing.T) {
	cfg := smallConfig(4)
	cfg.Scheduler = CentralQueueSched
	_, _, _, met := instrumentedRun(t, cfg, fibProgram(9))
	if met.QueueOps() == 0 {
		t.Error("central-queue run recorded no queue ops")
	}
	if met.Steals() != 0 {
		t.Errorf("central-queue run recorded %d steals, want 0", met.Steals())
	}
}
