package rts

import (
	"fmt"

	"graingraph/internal/cache"
	"graingraph/internal/machine"
	"graingraph/internal/profile"
	"graingraph/internal/sim"
	"graingraph/internal/trace"
)

// loopThread is one worker's state while executing a parallel for-loop.
type loopThread struct {
	w        *worker
	clock    sim.Time
	grabs    int
	bookkeep sim.Time
}

// chunkCtx is the Ctx chunk bodies receive. Chunks charge cost directly to
// their loop thread; they cannot spawn tasks or nest loops — the profiler,
// like the paper's (which skips 352.nab for this reason), does not support
// nested parallelism.
type chunkCtx struct {
	rt  *runtime
	th  *loopThread
	cnt *cache.Counters
}

func (c *chunkCtx) Compute(cycles uint64) {
	c.th.clock += cycles
	c.cnt.Compute += cycles
}

func (c *chunkCtx) Load(r *machine.Region, off, length int64) {
	c.th.clock += c.rt.hier.AccessRange(c.th.w.id, r.Base+off, length, false, c.th.clock, c.cnt)
}

func (c *chunkCtx) Store(r *machine.Region, off, length int64) {
	c.th.clock += c.rt.hier.AccessRange(c.th.w.id, r.Base+off, length, true, c.th.clock, c.cnt)
}

func (c *chunkCtx) LoadStrided(r *machine.Region, off int64, count int, stride int64) {
	c.th.clock += c.rt.hier.AccessStrided(c.th.w.id, r.Base+off, count, stride, false, c.th.clock, c.cnt)
}

func (c *chunkCtx) StoreStrided(r *machine.Region, off int64, count int, stride int64) {
	c.th.clock += c.rt.hier.AccessStrided(c.th.w.id, r.Base+off, count, stride, true, c.th.clock, c.cnt)
}

func (c *chunkCtx) Alloc(name string, size int64) *machine.Region {
	return c.rt.mem.Alloc(name, size)
}

func (c *chunkCtx) Depth() int  { return 1 }
func (c *chunkCtx) Worker() int { return c.th.w.id }
func (c *chunkCtx) Cores() int  { return c.rt.cfg.Cores }

func (c *chunkCtx) Spawn(profile.SrcLoc, func(Ctx)) {
	panic("rts: task creation inside a parallel for-loop chunk is nested parallelism, which the profiler does not support")
}

func (c *chunkCtx) TaskWait() {
	panic("rts: TaskWait inside a parallel for-loop chunk is not supported")
}

func (c *chunkCtx) For(profile.SrcLoc, int, int, ForOpt, func(Ctx, int, int)) {
	panic("rts: nested parallel for-loops are not supported by the profiler")
}

// runLoop simulates a parallel for-loop synchronously: loops never overlap
// with outstanding tasks (the master must taskwait first), so all worker
// clocks are free to advance here without going through the task engine.
func (rt *runtime) runLoop(t *task, loc profile.SrcLoc, lo, hi int, opt ForOpt, body func(Ctx, int, int)) {
	if t != rt.root {
		panic("rts: parallel for-loops may only run from the master context (no nested parallelism)")
	}
	if rt.live != 1 || rt.queued != 0 {
		panic(fmt.Sprintf("rts: For with %d live tasks / %d queued: taskwait before entering a parallel loop", rt.live-1, rt.queued))
	}
	if hi <= lo {
		return
	}

	w := rt.workers[t.owner]
	at := w.clock
	rt.endFragment(t, at)
	id := profile.LoopID(rt.loopSeq)
	rt.loopSeq++
	t.rec.Boundaries = append(t.rec.Boundaries, profile.Boundary{
		Kind: profile.BoundaryLoop, At: at, Loop: id,
	})

	p := rt.cfg.Cores
	if opt.NumThreads > 0 && opt.NumThreads < p {
		p = opt.NumThreads
	}
	rec := &profile.LoopRecord{
		ID: id, Loc: loc, Schedule: opt.Schedule, ChunkSize: opt.Chunk,
		Lo: lo, Hi: hi, StartThread: t.owner, Start: at,
	}
	rt.trace.Loops = append(rt.trace.Loops, rec)

	threads := make([]*loopThread, p)
	for i := 0; i < p; i++ {
		threads[i] = &loopThread{w: rt.workers[i], clock: sim.MaxTime(rt.workers[i].clock, at)}
		rec.Threads = append(rec.Threads, i)
	}

	switch opt.Schedule {
	case profile.ScheduleStatic:
		rt.runStatic(rec, threads, lo, hi, opt.Chunk, body)
	case profile.ScheduleDynamic, profile.ScheduleGuided:
		rt.runDynamic(rec, threads, lo, hi, opt, body)
	default:
		panic(fmt.Sprintf("rts: unknown schedule %v", opt.Schedule))
	}

	// Implicit barrier at loop end.
	end := at
	for _, th := range threads {
		if th.clock > end {
			end = th.clock
		}
	}
	rec.End = end
	for _, th := range threads {
		th.w.clock = end
		rt.trace.Bookkeeps = append(rt.trace.Bookkeeps, &profile.BookkeepRecord{
			Loop: id, Thread: th.w.id, Grabs: th.grabs, Total: th.bookkeep,
		})
		rt.countOverhead(th.w, trace.OvBookkeep, th.bookkeep)
	}
	if end > rt.maxTime {
		rt.maxTime = end
	}
	rt.beginFragment(t, end)
}

// execChunk runs one chunk body on th and records it.
func (rt *runtime) execChunk(rec *profile.LoopRecord, th *loopThread, seq, clo, chi int, bookkeep sim.Time, body func(Ctx, int, int)) {
	ck := &profile.ChunkRecord{
		Loop: rec.ID, Seq: seq, Thread: th.w.id,
		Lo: clo, Hi: chi, Bookkeep: bookkeep, Start: th.clock,
	}
	cc := &chunkCtx{rt: rt, th: th, cnt: &ck.Counters}
	body(cc, clo, chi)
	ck.End = th.clock
	th.w.busy += ck.End - ck.Start
	rt.trace.Chunks = append(rt.trace.Chunks, ck)
	var defm *trace.DefMetrics
	if rt.met != nil {
		defm = rt.defOf(rec.Loc)
		defm.Grains++
	}
	rt.countGrain(th.w.id, defm, ck.End-ck.Start, ck.Counters)
	rt.emitSpan(trace.KindChunk, ck.Start, ck.End, th.w.id,
		ck.ID(rec.StartThread), rec.Loc, ck.Counters)
}

// runStatic precomputes round-robin chunk assignment. A zero chunk size
// splits the iteration space evenly across the threads (OpenMP default).
func (rt *runtime) runStatic(rec *profile.LoopRecord, threads []*loopThread, lo, hi, chunk int, body func(Ctx, int, int)) {
	n := hi - lo
	p := len(threads)
	cs := chunk
	if cs <= 0 {
		cs = (n + p - 1) / p
	}
	cost := rt.cfg.Costs.BookkeepStatic
	seq := 0
	for start := lo; start < hi; start += cs {
		end := start + cs
		if end > hi {
			end = hi
		}
		th := threads[seq%p]
		th.clock += cost
		th.grabs++
		th.bookkeep += cost
		th.w.overhead += cost
		rt.execChunk(rec, th, seq, start, end, cost, body)
		seq++
	}
	// Loop-exit check per thread.
	for _, th := range threads {
		th.clock += cost
		th.grabs++
		th.bookkeep += cost
		th.w.overhead += cost
	}
}

// runDynamic simulates grabbing chunks off a shared iteration counter in
// virtual-time order, modelling lock serialization on the counter. Guided
// scheduling shrinks the chunk geometrically down to the minimum size.
func (rt *runtime) runDynamic(rec *profile.LoopRecord, threads []*loopThread, lo, hi int, opt ForOpt, body func(Ctx, int, int)) {
	minChunk := opt.Chunk
	if minChunk <= 0 {
		minChunk = 1
	}
	p := len(threads)
	counterFree := sim.Time(0)
	next := lo
	seq := 0
	done := make([]bool, p)
	remainingThreads := p
	for remainingThreads > 0 {
		// Pick the earliest thread still in the loop.
		var th *loopThread
		ti := -1
		for i, cand := range threads {
			if done[i] {
				continue
			}
			if th == nil || cand.clock < th.clock {
				th = cand
				ti = i
			}
		}
		// Serialize on the shared counter, then pay delivery bookkeeping.
		acq := sim.MaxTime(th.clock, counterFree) + rt.cfg.Costs.CounterLock
		counterFree = acq
		ready := acq + rt.cfg.Costs.BookkeepDynamic
		bookkeep := ready - th.clock
		th.clock = ready
		th.grabs++
		th.bookkeep += bookkeep
		th.w.overhead += bookkeep

		if next >= hi {
			done[ti] = true
			remainingThreads--
			continue
		}
		cs := minChunk
		if opt.Schedule == profile.ScheduleGuided {
			if g := (hi - next) / (2 * p); g > cs {
				cs = g
			}
		}
		end := next + cs
		if end > hi {
			end = hi
		}
		clo := next
		next = end
		rt.execChunk(rec, th, seq, clo, end, bookkeep, body)
		seq++
	}
}
