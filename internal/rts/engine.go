package rts

import (
	"fmt"
	"math/rand/v2"

	"graingraph/internal/cache"
	"graingraph/internal/machine"
	"graingraph/internal/profile"
	"graingraph/internal/sched"
	"graingraph/internal/sim"
	"graingraph/internal/trace"
)

// parkReason says why a task's coroutine yielded.
type parkReason int

const (
	parkNone parkReason = iota
	parkTaskWait
	parkImmediateSpawn
)

// task is the runtime's in-flight task state wrapping the profile record.
type task struct {
	rec  *profile.TaskRecord
	body func(Ctx)
	coro *sim.Coro

	parent      *task
	owner       int // worker the task is tied to; -1 before first run
	spawnSeq    int
	outstanding int               // unfinished direct children
	pendingJoin []profile.GrainID // children created since the last join

	waiting      bool // suspended in taskwait
	resumable    bool
	readyAt      sim.Time
	waitStart    sim.Time
	parked       parkReason
	notifyOnDone *task // task to resume when this (inlined) task ends

	started   bool
	fragStart sim.Time
	cur       cache.Counters
	defm      *trace.DefMetrics // cached met.Def(rec.Loc); nil when metrics off
}

// worker is one virtual core's scheduler state.
type worker struct {
	id       int
	clock    sim.Time
	deque    sched.Deque[*task]
	resume   []*task // tied suspended tasks that became resumable (LIFO)
	next     *task   // forced next task (undeferred execution)
	busy     sim.Time
	overhead sim.Time
}

// runtime is the whole simulated machine + scheduler.
type runtime struct {
	cfg  Config
	topo *machine.Topology
	mem  *machine.Memory
	hier *cache.Hierarchy

	workers     []*worker
	central     sched.CentralQueue[*task]
	centralFree sim.Time // central queue availability (lock serialization)
	queued      int      // tasks currently in queues (GCC throttle)

	rng     *rand.Rand
	trace   *profile.Trace
	sink    trace.Sink     // nil = event emission disabled
	met     *trace.Metrics // nil = counter registry disabled
	root    *task
	live    int
	loopSeq int
	maxTime sim.Time

	// Single-entry cache over met.Def: chunk completions arrive in long
	// same-definition streaks, so this removes the per-chunk map lookup
	// (and the loc.String() allocation behind it).
	lastDefLoc profile.SrcLoc
	lastDef    *trace.DefMetrics
}

// defOf returns the metrics aggregate for loc via the single-entry cache.
// Callers must have checked rt.met != nil.
func (rt *runtime) defOf(loc profile.SrcLoc) *trace.DefMetrics {
	if rt.lastDef != nil && rt.lastDefLoc == loc {
		return rt.lastDef
	}
	d := rt.met.Def(loc)
	rt.lastDefLoc, rt.lastDef = loc, d
	return d
}

// Run executes program under cfg and returns the recorded trace.
func Run(cfg Config, program func(Ctx)) *profile.Trace {
	cfg = cfg.withDefaults()
	rt := &runtime{
		cfg:  cfg,
		topo: cfg.Topology,
		rng:  rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
	}
	rt.mem = machine.NewMemory(rt.topo, cfg.Policy)
	rt.hier = cache.New(cfg.Cache, rt.topo, rt.mem)
	rt.sink = cfg.Trace
	rt.met = cfg.Metrics
	if rt.met != nil {
		rt.met.Reset(cfg.Cores)
	}
	for i := 0; i < cfg.Cores; i++ {
		rt.workers = append(rt.workers, &worker{id: i})
	}
	rt.trace = &profile.Trace{
		Program:    cfg.Program,
		Cores:      cfg.Cores,
		Sockets:    rt.topo.NumSockets(),
		Scheduler:  cfg.Scheduler.String(),
		Flavor:     cfg.Flavor.String(),
		PagePolicy: cfg.Policy.String(),
	}

	rt.root = &task{
		rec:   &profile.TaskRecord{ID: profile.RootID, Loc: cfg.RootLoc},
		owner: -1,
	}
	rt.root.body = func(c Ctx) {
		program(c)
		// Implicit end-of-parallel-region barrier: join any stragglers.
		c.TaskWait()
	}
	rt.trace.Tasks = append(rt.trace.Tasks, rt.root.rec)
	rt.live = 1
	rt.root.readyAt = 0
	rt.workers[0].next = rt.root

	rt.loop()
	rt.finalize()
	if cfg.Profile != nil {
		// Emission errors are sticky in the writer and surface from the
		// caller's Close, so the engine does not alter its return for them.
		_ = cfg.Profile.Emit(rt.trace)
	}
	return rt.trace
}

// action is one schedulable step for a worker.
type action struct {
	w      *worker
	t      *task
	victim *worker // steal source (actSteal only)
	kind   actionKind
	at     sim.Time // clock after acquiring the task, before running it
}

type actionKind int

const (
	actNext actionKind = iota
	actResume
	actPop
	actSteal
	actCentral
)

func (rt *runtime) loop() {
	for rt.live > 0 {
		a, ok := rt.bestAction()
		if !ok {
			panic(fmt.Sprintf("rts: deadlock: %d live tasks but no runnable action", rt.live))
		}
		rt.perform(a)
	}
}

// bestAction finds the globally earliest (in virtual time) scheduler step.
// Ties are broken by action priority (local work before steals); remaining
// exact ties are resolved uniformly at random (seeded, so runs stay
// deterministic) — this models random victim selection for steals and
// contention on the central queue, both of which decide which core a grain
// lands on and therefore the scatter metric.
func (rt *runtime) bestAction() (action, bool) {
	best := action{}
	found := false
	ties := 1
	consider := func(cand action) {
		switch {
		case !found,
			cand.at < best.at,
			cand.at == best.at && cand.kind < best.kind:
			best = cand
			found = true
			ties = 1
		case cand.at == best.at && cand.kind == best.kind:
			ties++
			if rt.rng.IntN(ties) == 0 {
				best = cand
			}
		}
	}

	for _, w := range rt.workers {
		if w.next != nil {
			consider(action{w: w, t: w.next, kind: actNext,
				at: sim.MaxTime(w.clock, w.next.readyAt)})
			continue // forced: this worker can do nothing else first
		}
		if n := len(w.resume); n > 0 {
			t := w.resume[n-1]
			consider(action{w: w, t: t, kind: actResume,
				at: sim.MaxTime(w.clock, t.readyAt) + rt.cfg.Costs.Resume})
		}
		if t, ok := w.deque.PeekBottom(); ok {
			consider(action{w: w, t: t, kind: actPop,
				at: sim.MaxTime(w.clock, t.readyAt) + rt.cfg.Costs.Pop})
		}
		if rt.cfg.Scheduler == CentralQueueSched {
			if t, ok := rt.central.Peek(); ok {
				at := sim.MaxTime(sim.MaxTime(w.clock, rt.centralFree), t.readyAt) +
					rt.cfg.Costs.QueueOp
				consider(action{w: w, t: t, kind: actCentral, at: at})
			}
		} else if w.deque.Len() == 0 {
			// Steal candidates: earliest-available victim top; among ties the
			// victim is randomized at perform time.
			for _, v := range rt.workers {
				if v == w {
					continue
				}
				if t, ok := v.deque.PeekTop(); ok {
					consider(action{w: w, t: t, victim: v, kind: actSteal,
						at: sim.MaxTime(w.clock, t.readyAt) + rt.cfg.Costs.Steal})
				}
			}
		}
	}
	return best, found
}

func (rt *runtime) perform(a action) {
	w := a.w
	switch a.kind {
	case actNext:
		w.clock = a.at
		w.next = nil
	case actResume:
		// Remove the specific task (top of resume stack by construction).
		w.resume = w.resume[:len(w.resume)-1]
		w.overhead += rt.cfg.Costs.Resume
		w.clock = a.at
		a.t.resumable = false
		rt.countOverhead(w, trace.OvResume, rt.cfg.Costs.Resume)
		if rt.met != nil {
			rt.met.W(w.id).Resumes++
		}
		rt.emitInstant(trace.KindResume, a.at, w.id, -1, a.t.rec.ID, a.t.rec.Loc)
	case actPop:
		t, _ := w.deque.PopBottom()
		if t != a.t {
			panic("rts: deque changed between peek and pop")
		}
		rt.queued--
		w.overhead += rt.cfg.Costs.Pop
		w.clock = a.at
		rt.countOverhead(w, trace.OvPop, rt.cfg.Costs.Pop)
		if rt.met != nil {
			rt.met.W(w.id).DequePops++
		}
	case actSteal:
		t, _ := a.victim.deque.StealTop()
		if t != a.t {
			panic("rts: victim deque changed between peek and steal")
		}
		rt.queued--
		w.overhead += rt.cfg.Costs.Steal
		w.clock = a.at
		rt.countOverhead(w, trace.OvSteal, rt.cfg.Costs.Steal)
		rt.countSteal(w)
		rt.emitInstant(trace.KindSteal, a.at, w.id, a.victim.id, a.t.rec.ID, a.t.rec.Loc)
	case actCentral:
		t, _ := rt.central.Dequeue()
		if t != a.t {
			panic("rts: central queue changed between peek and pop")
		}
		rt.queued--
		rt.centralFree = a.at // queue busy until the op completes
		w.overhead += rt.cfg.Costs.QueueOp
		w.clock = a.at
		rt.countOverhead(w, trace.OvQueue, rt.cfg.Costs.QueueOp)
		if rt.met != nil {
			rt.met.W(w.id).QueueOps++
		}
	}
	rt.runOn(w, a.t)
}

// runOn resumes (or starts) t's coroutine on w until it parks or finishes.
func (rt *runtime) runOn(w *worker, t *task) {
	if !t.started {
		t.started = true
		t.owner = w.id
		t.rec.StartTime = w.clock
		if rt.met != nil {
			// Cache the definition aggregate on the task: its location never
			// changes, and resolving it per fragment would pay a map lookup
			// plus the loc.String() allocation each time.
			t.defm = rt.defOf(t.rec.Loc)
			t.defm.Grains++
		}
		rt.emitInstant(trace.KindTaskStart, w.clock, w.id, -1, t.rec.ID, t.rec.Loc)
		body := t.body
		ctx := &taskCtx{rt: rt, t: t}
		t.coro = sim.NewCoro(func(*sim.Coro) { body(ctx) })
	} else if t.parked == parkTaskWait {
		// Finalize the join boundary recorded at suspension.
		b := &t.rec.Boundaries[len(t.rec.Boundaries)-1]
		b.Suspended = w.clock - t.waitStart
		b.Wait = rt.cfg.Costs.Resume + rt.cfg.Costs.JoinPerChild*uint64(len(b.Joined))
	}
	t.parked = parkNone
	rt.beginFragment(t, w.clock)
	if st := t.coro.Resume(); st == sim.Done {
		rt.finishTask(w, t)
	}
}

// beginFragment opens a new fragment for t at time `at`.
func (rt *runtime) beginFragment(t *task, at sim.Time) {
	t.fragStart = at
	t.cur = cache.Counters{}
}

// endFragment closes t's current fragment at time `at` and records it.
func (rt *runtime) endFragment(t *task, at sim.Time) {
	w := rt.workers[t.owner]
	t.rec.Fragments = append(t.rec.Fragments, profile.Fragment{
		Start: t.fragStart, End: at, Core: t.owner, Counters: t.cur,
	})
	w.busy += at - t.fragStart
	rt.countGrain(t.owner, t.defm, at-t.fragStart, t.cur)
	rt.emitSpan(trace.KindFragment, t.fragStart, at, t.owner, t.rec.ID, t.rec.Loc, t.cur)
}

func (rt *runtime) finishTask(w *worker, t *task) {
	rt.endFragment(t, w.clock)
	t.rec.EndTime = w.clock
	rt.emitInstant(trace.KindTaskEnd, w.clock, w.id, -1, t.rec.ID, t.rec.Loc)
	w.clock += rt.cfg.Costs.TaskEnd
	w.overhead += rt.cfg.Costs.TaskEnd
	rt.countOverhead(w, trace.OvTaskEnd, rt.cfg.Costs.TaskEnd)
	rt.live--
	if w.clock > rt.maxTime {
		rt.maxTime = w.clock
	}

	if p := t.parent; p != nil {
		p.outstanding--
		if p.waiting && p.outstanding == 0 {
			p.waiting = false
			rt.makeResumable(p, w.clock)
		}
	}
	if p := t.notifyOnDone; p != nil {
		rt.makeResumable(p, w.clock)
	}
}

func (rt *runtime) makeResumable(p *task, at sim.Time) {
	p.resumable = true
	p.readyAt = at
	owner := rt.workers[p.owner]
	owner.resume = append(owner.resume, p)
}

// shouldThrottle applies the flavour's internal cutoff at spawn time.
func (rt *runtime) shouldThrottle(w *worker) bool {
	switch rt.cfg.Flavor {
	case FlavorGCC:
		return rt.queued > 64*rt.cfg.Cores
	case FlavorICC:
		return w.deque.Len() > rt.cfg.ThrottleLimit
	default:
		return false
	}
}

func (rt *runtime) finalize() {
	rt.trace.Start = 0
	rt.trace.End = rt.maxTime
	for _, w := range rt.workers {
		rt.trace.Workers = append(rt.trace.Workers, profile.WorkerStat{
			Busy: w.busy, Overhead: w.overhead,
		})
	}
	rt.finalizeMetrics()
}
