package rts

import (
	"graingraph/internal/machine"
	"graingraph/internal/profile"
	"graingraph/internal/sim"
	"graingraph/internal/trace"
)

// taskCtx is the Ctx given to task bodies (including the root/master task).
type taskCtx struct {
	rt *runtime
	t  *task
}

func (c *taskCtx) w() *worker { return c.rt.workers[c.t.owner] }

// Compute charges pure computation cycles to the running fragment.
func (c *taskCtx) Compute(cycles uint64) {
	c.w().clock += cycles
	c.t.cur.Compute += cycles
}

// Load charges a sequential read scan through the cache hierarchy.
func (c *taskCtx) Load(r *machine.Region, off, length int64) {
	lat := c.rt.hier.AccessRange(c.t.owner, r.Base+off, length, false, c.w().clock, &c.t.cur)
	c.w().clock += lat
}

// Store charges a sequential write scan through the cache hierarchy.
func (c *taskCtx) Store(r *machine.Region, off, length int64) {
	lat := c.rt.hier.AccessRange(c.t.owner, r.Base+off, length, true, c.w().clock, &c.t.cur)
	c.w().clock += lat
}

// LoadStrided charges count reads with the given byte stride.
func (c *taskCtx) LoadStrided(r *machine.Region, off int64, count int, stride int64) {
	lat := c.rt.hier.AccessStrided(c.t.owner, r.Base+off, count, stride, false, c.w().clock, &c.t.cur)
	c.w().clock += lat
}

// StoreStrided charges count writes with the given byte stride.
func (c *taskCtx) StoreStrided(r *machine.Region, off int64, count int, stride int64) {
	lat := c.rt.hier.AccessStrided(c.t.owner, r.Base+off, count, stride, true, c.w().clock, &c.t.cur)
	c.w().clock += lat
}

// Alloc reserves a region in simulated memory.
func (c *taskCtx) Alloc(name string, size int64) *machine.Region {
	return c.rt.mem.Alloc(name, size)
}

// Depth returns the task's spawn-tree depth.
func (c *taskCtx) Depth() int { return c.t.rec.Depth }

// Worker returns the executing worker/core ID.
func (c *taskCtx) Worker() int { return c.t.owner }

// Cores returns the number of workers in this run.
func (c *taskCtx) Cores() int { return c.rt.cfg.Cores }

// Spawn creates a child task. The parent's current fragment ends at the
// fork; the spawn cost becomes the child's creation cost. Under a throttling
// flavour the child may execute undeferred: the parent suspends until the
// child completes on the same worker.
func (c *taskCtx) Spawn(loc profile.SrcLoc, body func(Ctx)) {
	rt, t := c.rt, c.t
	w := c.w()
	pre := w.clock

	childID := profile.ChildID(t.rec.ID, t.spawnSeq)
	t.spawnSeq++
	t.outstanding++
	t.pendingJoin = append(t.pendingJoin, childID)

	child := &task{
		rec: &profile.TaskRecord{
			ID: childID, Parent: t.rec.ID, Loc: loc,
			Depth: t.rec.Depth + 1, CreatedBy: w.id,
		},
		parent: t,
		owner:  -1,
		body:   body,
	}

	rt.endFragment(t, pre)
	t.rec.Boundaries = append(t.rec.Boundaries, profile.Boundary{
		Kind: profile.BoundaryFork, At: pre, Child: childID,
	})

	throttled := rt.shouldThrottle(w)
	spawnCost := rt.cfg.Costs.Spawn
	if throttled {
		spawnCost = rt.cfg.Costs.SpawnInlined
	}
	w.clock += spawnCost
	w.overhead += spawnCost
	child.rec.CreateTime = w.clock
	child.rec.CreateCost = spawnCost
	child.readyAt = w.clock
	rt.trace.Tasks = append(rt.trace.Tasks, child.rec)
	rt.live++
	rt.countOverhead(w, trace.OvSpawn, spawnCost)
	if rt.met != nil {
		wm := rt.met.W(w.id)
		wm.Spawns++
		if throttled {
			wm.InlinedSpawns++
		}
	}
	rt.emitInstant(trace.KindTaskSpawn, w.clock, w.id, -1, childID, loc)

	if throttled {
		// Undeferred execution: the child runs right now on this worker and
		// the parent resumes once it completes.
		child.rec.Inlined = true
		child.notifyOnDone = t
		w.next = child
		t.parked = parkImmediateSpawn
		t.coro.Park()
		return
	}

	if rt.cfg.Scheduler == CentralQueueSched {
		acq := sim.MaxTime(w.clock, rt.centralFree)
		done := acq + rt.cfg.Costs.QueueOp
		rt.centralFree = done
		w.overhead += done - w.clock
		rt.countOverhead(w, trace.OvQueue, done-w.clock)
		if rt.met != nil {
			rt.met.W(w.id).QueueOps++
		}
		w.clock = done
		child.readyAt = done
		rt.central.Enqueue(child)
	} else {
		w.deque.PushBottom(child)
		if rt.met != nil {
			rt.met.W(w.id).DequePushes++
		}
	}
	rt.queued++
	rt.beginFragment(t, w.clock)
}

// TaskWait synchronizes with all children spawned since the last join.
// If children are still running the task suspends; its worker goes back to
// the scheduler and typically executes those children (help-first,
// tied-task semantics: the task later resumes on the same worker).
func (c *taskCtx) TaskWait() {
	rt, t := c.rt, c.t
	w := c.w()

	if t.outstanding == 0 {
		if len(t.pendingJoin) == 0 {
			return // nothing to synchronize with
		}
		// All children already finished: pay only the join bookkeeping.
		at := w.clock
		rt.endFragment(t, at)
		joined := t.pendingJoin
		t.pendingJoin = nil
		cost := rt.cfg.Costs.JoinPerChild * uint64(len(joined))
		w.clock += cost
		w.overhead += cost
		rt.countOverhead(w, trace.OvJoin, cost)
		t.rec.Boundaries = append(t.rec.Boundaries, profile.Boundary{
			Kind: profile.BoundaryJoin, At: at, Joined: joined, Wait: cost,
		})
		rt.beginFragment(t, w.clock)
		return
	}

	at := w.clock
	rt.endFragment(t, at)
	joined := t.pendingJoin
	t.pendingJoin = nil
	t.rec.Boundaries = append(t.rec.Boundaries, profile.Boundary{
		Kind: profile.BoundaryJoin, At: at, Joined: joined,
	})
	t.waiting = true
	t.waitStart = at
	t.parked = parkTaskWait
	if rt.met != nil {
		rt.met.W(w.id).Parks++
	}
	rt.emitInstant(trace.KindPark, at, w.id, -1, t.rec.ID, t.rec.Loc)
	t.coro.Park()
}

// For runs a parallel for-loop; see runtime.runLoop.
func (c *taskCtx) For(loc profile.SrcLoc, lo, hi int, opt ForOpt, body func(Ctx, int, int)) {
	c.rt.runLoop(c.t, loc, lo, hi, opt, body)
}
