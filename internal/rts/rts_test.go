package rts

import (
	"fmt"
	"sort"
	"testing"

	"graingraph/internal/profile"
)

func testLoc(line int, fn string) profile.SrcLoc { return profile.Loc("test.go", line, fn) }

func smallConfig(cores int) Config {
	return Config{Program: "test", Cores: cores, Seed: 1}
}

func TestSingleTaskTrace(t *testing.T) {
	tr := Run(smallConfig(2), func(c Ctx) {
		c.Compute(1000)
	})
	if len(tr.Tasks) != 1 {
		t.Fatalf("tasks = %d, want 1 (root only)", len(tr.Tasks))
	}
	root := tr.Task(profile.RootID)
	if root.ExecTime() != 1000 {
		t.Errorf("root exec = %d, want 1000", root.ExecTime())
	}
	if tr.Makespan() < 1000 {
		t.Errorf("makespan = %d, want >= 1000", tr.Makespan())
	}
	if len(root.Fragments) != 1 || len(root.Boundaries) != 0 {
		t.Errorf("root has %d fragments, %d boundaries", len(root.Fragments), len(root.Boundaries))
	}
}

func TestForkJoinStructure(t *testing.T) {
	tr := Run(smallConfig(2), func(c Ctx) {
		c.Compute(100)
		c.Spawn(testLoc(10, "bar"), func(c Ctx) { c.Compute(500) })
		c.Compute(50)
		c.Spawn(testLoc(11, "baz"), func(c Ctx) { c.Compute(500) })
		c.Compute(50)
		c.TaskWait()
		c.Compute(100)
	})
	if len(tr.Tasks) != 3 {
		t.Fatalf("tasks = %d, want 3", len(tr.Tasks))
	}
	root := tr.Task(profile.RootID)
	// Fragments: pre-fork, between forks, fork..join, after join => 4.
	if len(root.Fragments) != 4 {
		t.Fatalf("root fragments = %d, want 4 (got boundaries %d)", len(root.Fragments), len(root.Boundaries))
	}
	if len(root.Boundaries) != 3 {
		t.Fatalf("root boundaries = %d, want 3", len(root.Boundaries))
	}
	wantKinds := []profile.BoundaryKind{profile.BoundaryFork, profile.BoundaryFork, profile.BoundaryJoin}
	for i, k := range wantKinds {
		if root.Boundaries[i].Kind != k {
			t.Errorf("boundary %d kind = %v, want %v", i, root.Boundaries[i].Kind, k)
		}
	}
	join := root.Boundaries[2]
	if len(join.Joined) != 2 {
		t.Errorf("join synchronized %d children, want 2", len(join.Joined))
	}
	bar := tr.Task("R.0")
	baz := tr.Task("R.1")
	if bar == nil || baz == nil {
		t.Fatal("children R.0 / R.1 missing")
	}
	if bar.Loc.Func != "bar" || baz.Loc.Func != "baz" {
		t.Errorf("child locations: %v, %v", bar.Loc, baz.Loc)
	}
	if bar.Parent != profile.RootID || bar.Depth != 1 {
		t.Errorf("bar parent/depth = %v/%d", bar.Parent, bar.Depth)
	}
	if bar.CreateCost == 0 || bar.StartTime < bar.CreateTime {
		t.Errorf("bar timing: create %d cost %d start %d", bar.CreateTime, bar.CreateCost, bar.StartTime)
	}
	if bar.ExecTime() != 500 {
		t.Errorf("bar exec = %d, want 500", bar.ExecTime())
	}
}

func TestTaskWaitAllChildrenDone(t *testing.T) {
	// On one core the child runs only when the parent suspends... unless the
	// parent waits long enough that the child has not run: with 1 core the
	// child cannot run before the parent's taskwait suspension. Use 2 cores
	// and enough parent compute that the stolen child finishes first.
	tr := Run(smallConfig(2), func(c Ctx) {
		c.Spawn(testLoc(1, "quick"), func(c Ctx) { c.Compute(10) })
		c.Compute(1_000_000)
		c.TaskWait()
	})
	root := tr.Task(profile.RootID)
	var join *profile.Boundary
	for i := range root.Boundaries {
		if root.Boundaries[i].Kind == profile.BoundaryJoin {
			join = &root.Boundaries[i]
		}
	}
	if join == nil {
		t.Fatal("no join boundary")
	}
	// The child finishes (in virtual time) long before the parent's wait, so
	// the suspension is at most the resume overhead. (Processing order may
	// still route through the suspend path; see the engine's coarse-grained
	// interleaving.)
	if join.Suspended > DefaultCosts().Resume {
		t.Errorf("parent suspended %d cycles, want <= resume cost %d",
			join.Suspended, DefaultCosts().Resume)
	}
	if join.Wait == 0 {
		t.Error("join bookkeeping cost should be nonzero")
	}
}

func TestSerialExecutionOneCore(t *testing.T) {
	tr := Run(smallConfig(1), func(c Ctx) {
		for i := 0; i < 4; i++ {
			c.Spawn(testLoc(1, "w"), func(c Ctx) { c.Compute(100) })
		}
		c.TaskWait()
	})
	if len(tr.Tasks) != 5 {
		t.Fatalf("tasks = %d, want 5", len(tr.Tasks))
	}
	for _, task := range tr.Tasks {
		if got := task.FirstCore(); got != 0 {
			t.Errorf("task %s ran on core %d, want 0", task.ID, got)
		}
	}
	// Single worker pops LIFO: last spawned child runs first.
	var starts []struct {
		id    profile.GrainID
		start uint64
	}
	for _, task := range tr.Tasks {
		if task.ID == profile.RootID {
			continue
		}
		starts = append(starts, struct {
			id    profile.GrainID
			start uint64
		}{task.ID, task.StartTime})
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i].start < starts[j].start })
	if starts[0].id != "R.3" {
		t.Errorf("first executed child = %s, want R.3 (LIFO)", starts[0].id)
	}
}

func TestWorkStealingSpreadsTasks(t *testing.T) {
	tr := Run(smallConfig(4), func(c Ctx) {
		for i := 0; i < 8; i++ {
			c.Spawn(testLoc(1, "w"), func(c Ctx) { c.Compute(100_000) })
		}
		c.TaskWait()
	})
	cores := map[int]bool{}
	for _, task := range tr.Tasks {
		if task.ID != profile.RootID {
			cores[task.FirstCore()] = true
		}
	}
	if len(cores) < 3 {
		t.Errorf("children ran on %d cores, want >= 3 (stealing broken?)", len(cores))
	}
}

func TestParallelSpeedup(t *testing.T) {
	prog := func(c Ctx) {
		for i := 0; i < 16; i++ {
			c.Spawn(testLoc(1, "w"), func(c Ctx) { c.Compute(1_000_000) })
		}
		c.TaskWait()
	}
	t1 := Run(smallConfig(1), prog).Makespan()
	t4 := Run(smallConfig(4), prog).Makespan()
	speedup := float64(t1) / float64(t4)
	if speedup < 3.0 {
		t.Errorf("4-core speedup = %.2f, want >= 3", speedup)
	}
}

func TestDeterminism(t *testing.T) {
	prog := func(c Ctx) {
		var rec func(c Ctx, d int)
		rec = func(c Ctx, d int) {
			if d == 0 {
				c.Compute(5000)
				return
			}
			c.Spawn(testLoc(1, "l"), func(c Ctx) { rec(c, d-1) })
			c.Spawn(testLoc(2, "r"), func(c Ctx) { rec(c, d-1) })
			c.TaskWait()
		}
		rec(c, 4)
	}
	a := Run(smallConfig(4), prog)
	b := Run(smallConfig(4), prog)
	if a.Makespan() != b.Makespan() {
		t.Errorf("same seed gave different makespans: %d vs %d", a.Makespan(), b.Makespan())
	}
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatalf("different task counts: %d vs %d", len(a.Tasks), len(b.Tasks))
	}
	for i := range a.Tasks {
		ta, tb := a.Tasks[i], b.Tasks[i]
		if ta.ID != tb.ID || ta.StartTime != tb.StartTime || ta.EndTime != tb.EndTime ||
			ta.FirstCore() != tb.FirstCore() {
			t.Errorf("task %s differs between runs", ta.ID)
		}
	}
}

func TestPathEnumerationIDsStableAcrossCores(t *testing.T) {
	prog := func(c Ctx) {
		var rec func(c Ctx, d int)
		rec = func(c Ctx, d int) {
			if d == 0 {
				c.Compute(2000)
				return
			}
			c.Spawn(testLoc(1, "a"), func(c Ctx) { rec(c, d-1) })
			c.Spawn(testLoc(2, "b"), func(c Ctx) { rec(c, d-1) })
			c.TaskWait()
		}
		rec(c, 3)
	}
	ids := func(tr *profile.Trace) []string {
		var out []string
		for _, task := range tr.Tasks {
			out = append(out, string(task.ID))
		}
		sort.Strings(out)
		return out
	}
	a := ids(Run(smallConfig(1), prog))
	b := ids(Run(smallConfig(8), prog))
	if len(a) != len(b) {
		t.Fatalf("grain counts differ across machine size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("grain IDs differ across machine size: %s vs %s", a[i], b[i])
		}
	}
}

func TestICCThrottleInlines(t *testing.T) {
	cfg := smallConfig(1)
	cfg.Flavor = FlavorICC
	cfg.ThrottleLimit = 2
	tr := Run(cfg, func(c Ctx) {
		for i := 0; i < 10; i++ {
			c.Spawn(testLoc(1, "w"), func(c Ctx) { c.Compute(100) })
		}
		c.TaskWait()
	})
	inlined := 0
	for _, task := range tr.Tasks {
		if task.Inlined {
			inlined++
		}
	}
	if inlined == 0 {
		t.Error("ICC flavour with limit 2 inlined no tasks")
	}
	if inlined >= 10 {
		t.Errorf("all %d tasks inlined; first few should queue", inlined)
	}
}

func TestGCCThrottleInlines(t *testing.T) {
	cfg := smallConfig(1)
	cfg.Flavor = FlavorGCC
	tr := Run(cfg, func(c Ctx) {
		for i := 0; i < 100; i++ { // 64*1 = 64 queue limit
			c.Spawn(testLoc(1, "w"), func(c Ctx) { c.Compute(100) })
		}
		c.TaskWait()
	})
	inlined := 0
	for _, task := range tr.Tasks {
		if task.Inlined {
			inlined++
		}
	}
	if inlined == 0 {
		t.Error("GCC flavour never throttled despite 100 queued tasks on 1 core")
	}
}

func TestCentralQueueRuns(t *testing.T) {
	cfg := smallConfig(4)
	cfg.Scheduler = CentralQueueSched
	tr := Run(cfg, func(c Ctx) {
		for i := 0; i < 12; i++ {
			c.Spawn(testLoc(1, "w"), func(c Ctx) { c.Compute(50_000) })
		}
		c.TaskWait()
	})
	if len(tr.Tasks) != 13 {
		t.Fatalf("tasks = %d, want 13", len(tr.Tasks))
	}
	if tr.Scheduler != "central-queue" {
		t.Errorf("trace scheduler = %q", tr.Scheduler)
	}
	cores := map[int]bool{}
	for _, task := range tr.Tasks {
		if task.ID != profile.RootID {
			cores[task.FirstCore()] = true
		}
	}
	if len(cores) < 3 {
		t.Errorf("central queue used %d cores, want >= 3", len(cores))
	}
}

func TestImplicitFinalTaskWait(t *testing.T) {
	// Program "forgets" the taskwait; the implicit parallel-region barrier
	// must still join the children.
	tr := Run(smallConfig(2), func(c Ctx) {
		c.Spawn(testLoc(1, "w"), func(c Ctx) { c.Compute(1000) })
	})
	root := tr.Task(profile.RootID)
	found := false
	for _, b := range root.Boundaries {
		if b.Kind == profile.BoundaryJoin && len(b.Joined) == 1 {
			found = true
		}
	}
	if !found {
		t.Error("implicit final taskwait did not record a join")
	}
	child := tr.Task("R.0")
	if child == nil || child.EndTime == 0 {
		t.Error("child did not complete")
	}
}

func TestRecursionWithNestedWaits(t *testing.T) {
	tr := Run(smallConfig(4), func(c Ctx) {
		var fib func(c Ctx, n int)
		fib = func(c Ctx, n int) {
			if n < 2 {
				c.Compute(100)
				return
			}
			c.Spawn(testLoc(1, "fib"), func(c Ctx) { fib(c, n-1) })
			c.Spawn(testLoc(1, "fib"), func(c Ctx) { fib(c, n-2) })
			c.TaskWait()
			c.Compute(10)
		}
		fib(c, 6)
	})
	// fib(6) task tree: T(n) = T(n-1)+T(n-2)+2, T(0)=T(1)=0 tasks below.
	// Number of spawned tasks = 2*(fib-tree internal nodes) = 24; +1 root.
	if len(tr.Tasks) != 25 {
		t.Errorf("tasks = %d, want 25", len(tr.Tasks))
	}
	checkTraceInvariants(t, tr)
}

// checkTraceInvariants asserts structural soundness of any trace:
// fragment/boundary counts, timing monotonicity, per-core non-overlap,
// unique IDs.
func checkTraceInvariants(t *testing.T, tr *profile.Trace) {
	t.Helper()
	seen := map[profile.GrainID]bool{}
	type span struct {
		start, end uint64
		id         string
	}
	perCore := map[int][]span{}

	for _, task := range tr.Tasks {
		if seen[task.ID] {
			t.Errorf("duplicate grain ID %s", task.ID)
		}
		seen[task.ID] = true
		if len(task.Fragments) != len(task.Boundaries)+1 {
			t.Errorf("task %s: %d fragments, %d boundaries", task.ID, len(task.Fragments), len(task.Boundaries))
		}
		if task.EndTime < task.StartTime {
			t.Errorf("task %s: end %d < start %d", task.ID, task.EndTime, task.StartTime)
		}
		if task.ID != profile.RootID && task.StartTime < task.CreateTime {
			t.Errorf("task %s: started %d before created %d", task.ID, task.StartTime, task.CreateTime)
		}
		prevEnd := uint64(0)
		for i, f := range task.Fragments {
			if f.End < f.Start {
				t.Errorf("task %s fragment %d: end < start", task.ID, i)
			}
			if f.Start < prevEnd {
				t.Errorf("task %s fragment %d overlaps previous", task.ID, i)
			}
			prevEnd = f.End
			if f.End > f.Start {
				perCore[f.Core] = append(perCore[f.Core], span{f.Start, f.End, string(task.ID)})
			}
		}
	}
	for _, ck := range tr.Chunks {
		id := tr.ChunkGrainID(ck)
		if seen[id] {
			t.Errorf("duplicate chunk ID %s", id)
		}
		seen[id] = true
		if ck.End > ck.Start {
			perCore[ck.Thread] = append(perCore[ck.Thread], span{ck.Start, ck.End, string(id)})
		}
	}
	for core, spans := range perCore {
		sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
		for i := 1; i < len(spans); i++ {
			if spans[i].start < spans[i-1].end {
				t.Errorf("core %d: %s [%d,%d) overlaps %s [%d,%d)", core,
					spans[i].id, spans[i].start, spans[i].end,
					spans[i-1].id, spans[i-1].start, spans[i-1].end)
			}
		}
	}
}

// Randomized structural property: arbitrary task trees keep all invariants.
func TestRandomTreesInvariantProperty(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		cfg := smallConfig(int(seed%7) + 1)
		cfg.Seed = seed
		shape := seed
		tr := Run(cfg, func(c Ctx) {
			var rec func(c Ctx, d int, s uint64)
			rec = func(c Ctx, d int, s uint64) {
				c.Compute(100 + s%1000)
				if d == 0 {
					return
				}
				kids := int(s%3) + 1
				for i := 0; i < kids; i++ {
					i := i
					c.Spawn(testLoc(i, "n"), func(c Ctx) {
						rec(c, d-1, s*2862933555777941757+uint64(i))
					})
					if s%2 == 0 {
						c.TaskWait()
					}
				}
				c.TaskWait()
				c.Compute(50)
			}
			rec(c, 4, shape)
		})
		checkTraceInvariants(t, tr)
	}
}

func TestMemoryAccessChargesTime(t *testing.T) {
	var makespanNoMem, makespanMem uint64
	{
		tr := Run(smallConfig(1), func(c Ctx) { c.Compute(1000) })
		makespanNoMem = tr.Makespan()
	}
	{
		tr := Run(smallConfig(1), func(c Ctx) {
			r := c.Alloc("data", 1<<20)
			c.Compute(1000)
			c.Load(r, 0, 1<<20)
		})
		makespanMem = tr.Makespan()
		root := tr.Task(profile.RootID)
		counters := root.TotalCounters()
		if counters.Accesses == 0 || counters.L1Miss == 0 {
			t.Errorf("memory counters empty: %+v", counters)
		}
		if counters.Stall == 0 {
			t.Error("no stall cycles recorded for a 1 MiB cold scan")
		}
	}
	if makespanMem <= makespanNoMem {
		t.Errorf("memory access did not extend makespan: %d vs %d", makespanMem, makespanNoMem)
	}
}

func TestStaticLoopCoversIterationSpace(t *testing.T) {
	var cfg = smallConfig(4)
	tr := Run(cfg, func(c Ctx) {
		c.For(testLoc(1, "loop"), 0, 103, ForOpt{Schedule: profile.ScheduleStatic, Chunk: 10},
			func(c Ctx, lo, hi int) { c.Compute(uint64(hi-lo) * 100) })
	})
	verifyCoverage(t, tr, 0, 103)
	if len(tr.Loops) != 1 {
		t.Fatalf("loops = %d", len(tr.Loops))
	}
	if got := len(tr.Chunks); got != 11 {
		t.Errorf("chunks = %d, want 11", got)
	}
	// Static round-robin: chunk k on thread k%4.
	for _, ck := range tr.Chunks {
		if ck.Thread != ck.Seq%4 {
			t.Errorf("chunk %d on thread %d, want %d", ck.Seq, ck.Thread, ck.Seq%4)
		}
	}
}

func TestStaticLoopDefaultChunk(t *testing.T) {
	tr := Run(smallConfig(4), func(c Ctx) {
		c.For(testLoc(1, "loop"), 0, 100, ForOpt{Schedule: profile.ScheduleStatic},
			func(c Ctx, lo, hi int) { c.Compute(100) })
	})
	if got := len(tr.Chunks); got != 4 {
		t.Errorf("default static chunks = %d, want 4 (one per thread)", got)
	}
	verifyCoverage(t, tr, 0, 100)
}

func TestDynamicLoopCoverageAndGreedy(t *testing.T) {
	tr := Run(smallConfig(4), func(c Ctx) {
		c.For(testLoc(1, "loop"), 0, 50, ForOpt{Schedule: profile.ScheduleDynamic, Chunk: 3},
			func(c Ctx, lo, hi int) {
				// Iteration 7 is a whale; dynamic scheduling should let other
				// threads keep grabbing chunks meanwhile.
				for i := lo; i < hi; i++ {
					if i == 7 {
						c.Compute(500_000)
					} else {
						c.Compute(1000)
					}
				}
			})
	})
	verifyCoverage(t, tr, 0, 50)
	threads := map[int]int{}
	for _, ck := range tr.Chunks {
		threads[ck.Thread]++
	}
	if len(threads) < 3 {
		t.Errorf("dynamic loop used %d threads, want >= 3", len(threads))
	}
	// The whale thread should have executed fewer chunks than the busiest.
	var whaleThread int
	for _, ck := range tr.Chunks {
		if ck.Lo <= 7 && 7 < ck.Hi {
			whaleThread = ck.Thread
		}
	}
	maxChunks := 0
	for _, n := range threads {
		if n > maxChunks {
			maxChunks = n
		}
	}
	if threads[whaleThread] >= maxChunks {
		t.Errorf("whale thread executed %d chunks, max is %d; greedy rebalancing broken",
			threads[whaleThread], maxChunks)
	}
}

func TestGuidedLoopShrinkingChunks(t *testing.T) {
	tr := Run(smallConfig(4), func(c Ctx) {
		c.For(testLoc(1, "loop"), 0, 1000, ForOpt{Schedule: profile.ScheduleGuided},
			func(c Ctx, lo, hi int) { c.Compute(uint64(hi-lo) * 100) })
	})
	verifyCoverage(t, tr, 0, 1000)
	first, last := tr.Chunks[0], tr.Chunks[len(tr.Chunks)-1]
	if first.Hi-first.Lo <= last.Hi-last.Lo {
		t.Errorf("guided chunks not shrinking: first %d, last %d",
			first.Hi-first.Lo, last.Hi-last.Lo)
	}
}

func TestLoopNumThreads(t *testing.T) {
	tr := Run(smallConfig(8), func(c Ctx) {
		c.For(testLoc(1, "loop"), 0, 64, ForOpt{Schedule: profile.ScheduleDynamic, Chunk: 1, NumThreads: 3},
			func(c Ctx, lo, hi int) { c.Compute(10_000) })
	})
	verifyCoverage(t, tr, 0, 64)
	for _, ck := range tr.Chunks {
		if ck.Thread >= 3 {
			t.Errorf("chunk on thread %d despite NumThreads=3", ck.Thread)
		}
	}
	if len(tr.Loops[0].Threads) != 3 {
		t.Errorf("loop threads = %v", tr.Loops[0].Threads)
	}
}

func TestLoopBarrierAlignsWorkers(t *testing.T) {
	tr := Run(smallConfig(4), func(c Ctx) {
		c.For(testLoc(1, "a"), 0, 4, ForOpt{Schedule: profile.ScheduleStatic},
			func(c Ctx, lo, hi int) { c.Compute(uint64(1000 * (lo + 1))) })
		c.For(testLoc(2, "b"), 0, 4, ForOpt{Schedule: profile.ScheduleStatic},
			func(c Ctx, lo, hi int) { c.Compute(100) })
	})
	if len(tr.Loops) != 2 {
		t.Fatalf("loops = %d", len(tr.Loops))
	}
	// Second loop starts only after the first's barrier.
	if tr.Loops[1].Start < tr.Loops[0].End {
		t.Errorf("loop 2 started at %d before loop 1 barrier %d",
			tr.Loops[1].Start, tr.Loops[0].End)
	}
	for _, ck := range tr.Chunks {
		if ck.Loop == 1 && ck.Start < tr.Loops[0].End {
			t.Errorf("loop-1 chunk started before previous barrier")
		}
	}
}

func TestLoopBookkeepRecords(t *testing.T) {
	tr := Run(smallConfig(2), func(c Ctx) {
		c.For(testLoc(1, "loop"), 0, 10, ForOpt{Schedule: profile.ScheduleDynamic, Chunk: 2},
			func(c Ctx, lo, hi int) { c.Compute(1000) })
	})
	if len(tr.Bookkeeps) != 2 {
		t.Fatalf("bookkeep records = %d, want 2", len(tr.Bookkeeps))
	}
	totalGrabs := 0
	for _, bk := range tr.Bookkeeps {
		if bk.Total == 0 || bk.Grabs == 0 {
			t.Errorf("empty bookkeep record %+v", bk)
		}
		totalGrabs += bk.Grabs
	}
	// 5 chunks + 2 final empty grabs.
	if totalGrabs != 7 {
		t.Errorf("total grabs = %d, want 7", totalGrabs)
	}
}

func TestEmptyLoopIsNoop(t *testing.T) {
	tr := Run(smallConfig(2), func(c Ctx) {
		c.For(testLoc(1, "loop"), 5, 5, ForOpt{}, func(c Ctx, lo, hi int) {
			t.Error("body ran for empty loop")
		})
	})
	if len(tr.Loops) != 0 || len(tr.Chunks) != 0 {
		t.Error("empty loop produced records")
	}
}

func TestNestedParallelismPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("spawn in chunk", func() {
		Run(smallConfig(2), func(c Ctx) {
			c.For(testLoc(1, "l"), 0, 4, ForOpt{}, func(c Ctx, lo, hi int) {
				c.Spawn(testLoc(2, "x"), func(c Ctx) {})
			})
		})
	})
	mustPanic("for in chunk", func() {
		Run(smallConfig(2), func(c Ctx) {
			c.For(testLoc(1, "l"), 0, 4, ForOpt{}, func(c Ctx, lo, hi int) {
				c.For(testLoc(2, "m"), 0, 4, ForOpt{}, func(c Ctx, lo, hi int) {})
			})
		})
	})
	mustPanic("for in task", func() {
		Run(smallConfig(2), func(c Ctx) {
			c.Spawn(testLoc(1, "t"), func(c Ctx) {
				c.For(testLoc(2, "l"), 0, 4, ForOpt{}, func(c Ctx, lo, hi int) {})
			})
			c.TaskWait()
		})
	})
	mustPanic("for with outstanding tasks", func() {
		Run(smallConfig(1), func(c Ctx) {
			c.Spawn(testLoc(1, "t"), func(c Ctx) { c.Compute(10) })
			c.For(testLoc(2, "l"), 0, 4, ForOpt{}, func(c Ctx, lo, hi int) {})
		})
	})
}

func TestWorkerStats(t *testing.T) {
	tr := Run(smallConfig(2), func(c Ctx) {
		c.Spawn(testLoc(1, "w"), func(c Ctx) { c.Compute(10_000) })
		c.Spawn(testLoc(2, "w"), func(c Ctx) { c.Compute(10_000) })
		c.TaskWait()
	})
	if len(tr.Workers) != 2 {
		t.Fatalf("worker stats = %d", len(tr.Workers))
	}
	var busy, overhead uint64
	for _, ws := range tr.Workers {
		busy += ws.Busy
		overhead += ws.Overhead
	}
	if busy < 20_000 {
		t.Errorf("total busy = %d, want >= 20000", busy)
	}
	if overhead == 0 {
		t.Error("no overhead recorded")
	}
}

func TestMixedTasksThenLoop(t *testing.T) {
	tr := Run(smallConfig(4), func(c Ctx) {
		for i := 0; i < 4; i++ {
			c.Spawn(testLoc(1, "t"), func(c Ctx) { c.Compute(10_000) })
		}
		c.TaskWait()
		c.For(testLoc(2, "l"), 0, 16, ForOpt{Schedule: profile.ScheduleDynamic, Chunk: 1},
			func(c Ctx, lo, hi int) { c.Compute(5000) })
		c.Spawn(testLoc(3, "after"), func(c Ctx) { c.Compute(1000) })
		c.TaskWait()
	})
	if len(tr.Tasks) != 6 || len(tr.Chunks) != 16 {
		t.Fatalf("tasks=%d chunks=%d", len(tr.Tasks), len(tr.Chunks))
	}
	checkTraceInvariants(t, tr)
	// The post-loop task must start after the loop barrier.
	after := tr.Task("R.4")
	if after.CreateTime < tr.Loops[0].End {
		t.Errorf("post-loop task created at %d before barrier %d", after.CreateTime, tr.Loops[0].End)
	}
}

func TestChunkSeqIdentification(t *testing.T) {
	tr := Run(smallConfig(2), func(c Ctx) {
		c.For(testLoc(1, "l"), 0, 10, ForOpt{Schedule: profile.ScheduleDynamic, Chunk: 5},
			func(c Ctx, lo, hi int) { c.Compute(100) })
	})
	ids := map[profile.GrainID]bool{}
	for _, ck := range tr.Chunks {
		id := tr.ChunkGrainID(ck)
		if ids[id] {
			t.Errorf("duplicate chunk grain ID %s", id)
		}
		ids[id] = true
	}
	want := fmt.Sprintf("L0@t%d#0[0,5)", tr.Loops[0].StartThread)
	if !ids[profile.GrainID(want)] {
		t.Errorf("expected chunk ID %s, have %v", want, ids)
	}
}

// verifyCoverage asserts the chunks of the sole loop in tr exactly
// partition [lo,hi).
func verifyCoverage(t *testing.T, tr *profile.Trace, lo, hi int) {
	t.Helper()
	covered := make([]int, hi-lo)
	for _, ck := range tr.Chunks {
		for i := ck.Lo; i < ck.Hi; i++ {
			if i < lo || i >= hi {
				t.Fatalf("chunk [%d,%d) outside iteration space [%d,%d)", ck.Lo, ck.Hi, lo, hi)
			}
			covered[i-lo]++
		}
	}
	for i, n := range covered {
		if n != 1 {
			t.Fatalf("iteration %d covered %d times", i+lo, n)
		}
	}
}
