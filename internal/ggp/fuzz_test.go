package ggp_test

import (
	"bytes"
	"testing"

	"graingraph/internal/core"
	"graingraph/internal/ggp"
	"graingraph/internal/profile"
)

// FuzzGGPReader throws arbitrary bytes at the artifact readers. The
// invariant is purely defensive: ggp.ReadTrace (v1) and ggp.Decode (v1 +
// columnar v2) must return a result or an error, never panic or OOM, for
// any input. The seed corpus covers the interesting corruption classes —
// valid artifacts of both versions, truncations (including mid-column),
// a flipped version byte, a v2 header on a v1 body, corrupted section and
// sidecar checksums, and oversized section lengths.
func FuzzGGPReader(f *testing.F) {
	tr := &profile.Trace{
		Program: "fuzz-seed", Cores: 2, Start: 0, End: 100,
		Tasks: []*profile.TaskRecord{
			{ID: profile.RootID, Fragments: []profile.Fragment{{Start: 0, End: 40}, {Start: 60, End: 100}},
				Boundaries: []profile.Boundary{{Kind: profile.BoundaryLoop, At: 40, Loop: 0}}},
		},
		Loops:     []*profile.LoopRecord{{ID: 0, Lo: 0, Hi: 8, Start: 40, End: 60, Threads: []int{0, 1}}},
		Chunks:    []*profile.ChunkRecord{{Loop: 0, Lo: 0, Hi: 8, Start: 45, End: 58, Bookkeep: 5}},
		Bookkeeps: []*profile.BookkeepRecord{{Loop: 0, Grabs: 1, Total: 5}},
		Workers:   []profile.WorkerStat{{Busy: 90, Overhead: 10}, {Busy: 13, Overhead: 0}},
	}
	var buf bytes.Buffer
	if err := ggp.WriteTrace(&buf, tr); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add(valid[:len(valid)/2])   // truncated mid-stream
	f.Add(valid[:len(ggp.Magic)]) // header cut before version
	f.Add([]byte{})               // empty input
	f.Add([]byte("GGPX\x01"))     // wrong magic
	flipped := bytes.Clone(valid)
	flipped[len(ggp.Magic)] = 0xEE // future version
	f.Add(flipped)
	badCRC := bytes.Clone(valid)
	badCRC[len(badCRC)-2] ^= 0xFF // corrupted trailer checksum
	f.Add(badCRC)
	oversized := append(bytes.Clone(valid[:len(ggp.Magic)+1]), ggp.SecTask,
		0xFF, 0xFF, 0xFF, 0xFF, 0x7F) // section claims ~34 GB
	f.Add(oversized)
	zeroLen := append(bytes.Clone(valid[:len(ggp.Magic)+1]), ggp.SecTrailer, 0x00)
	f.Add(zeroLen) // trailer with empty payload

	// v2 seeds: a valid columnar artifact with sidecars, a mid-column
	// truncation, a sidecar with a flipped payload byte (checksum
	// mismatch), and a v2 version byte on a v1 event-stream body.
	g := core.Build(tr)
	g.NumLevels()
	v2, err := ggp.EncodeV2(tr, g, []ggp.Sidecar{
		{Kind: ggp.SidecarLod, Data: []byte("fuzz-lod-sidecar")},
		{Kind: ggp.SidecarQuery, Data: []byte("fuzz-query-sidecar")},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(v2)
	f.Add(v2[:2*len(v2)/3]) // truncated mid-column
	sideFlip := bytes.Clone(v2)
	sideFlip[bytes.LastIndex(sideFlip, []byte("fuzz-lod-sidecar"))] ^= 0xFF
	f.Add(sideFlip) // CRC-flipped sidecar
	v2HdrV1Body := bytes.Clone(valid)
	v2HdrV1Body[len(ggp.Magic)] = 2 // v2 header, v1 body
	f.Add(v2HdrV1Body)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ggp.ReadTrace(bytes.NewReader(data))
		if err == nil && tr == nil {
			t.Fatal("ggp.ReadTrace returned nil trace and nil error")
		}
		if err == nil {
			// An accepted artifact must satisfy the profile invariants —
			// that is what the validation wiring guarantees.
			if verr := tr.Validate(); verr != nil {
				t.Fatalf("ggp.ReadTrace accepted an invalid trace: %v", verr)
			}
		}
		// The version-dispatching decoder has the same contract over both
		// formats, including the parallel columnar path.
		dec, derr := ggp.Decode(data, nil, nil)
		if derr == nil && (dec == nil || dec.Trace == nil) {
			t.Fatal("ggp.Decode returned no result and no error")
		}
		if derr == nil {
			if verr := dec.Trace.Validate(); verr != nil {
				t.Fatalf("ggp.Decode accepted an invalid trace: %v", verr)
			}
		}
	})
}
