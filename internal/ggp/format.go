// Package ggp implements the grain-graph profile (GGP) artifact: a
// versioned, streaming on-disk encoding of a profile.Trace that splits
// recording from analysis. A runtime (simulated or native) emits records
// into a Writer as one artifact per run; grainview and the experiment
// engine read artifacts back with Reader and obtain a trace that analyzes
// byte-identically to the live-simulated path.
//
// # Layout
//
//	header  := magic "GGPF" | version byte
//	section := id byte | uvarint payload length | payload
//	trailer := section id 0xFF with a 4-byte little-endian CRC-32 (IEEE)
//	           of every preceding byte (header + all sections)
//
// Record sections (task, loop, chunk, book-keeping) hold exactly one
// record each and repeat, so a Writer streams with bounded memory and a
// Reader reconstructs slices in emission order — which the graph builder
// relies on: NodeIDs are assigned in record order, so preserving it is
// what makes replayed analysis byte-identical.
//
// # Versioning and forward compatibility
//
// The version byte gates the record encodings: a Reader rejects versions
// newer than it understands. Within a version, unknown section IDs are
// skipped (they are length-prefixed), so a future minor producer may add
// new section kinds without breaking old readers; changing an existing
// record encoding requires a version bump.
package ggp

import "errors"

const (
	// Magic opens every GGP artifact.
	Magic = "GGPF"
	// Version is the current format version. Readers accept artifacts with
	// version <= Version and reject newer ones.
	Version = 1
)

// Section IDs. The trailer ID is deliberately far from the record IDs so
// a truncated or bit-flipped stream is unlikely to alias it.
const (
	secMeta     = 0x01 // program identification and trace span
	secTask     = 0x02 // one TaskRecord
	secLoop     = 0x03 // one LoopRecord
	secChunk    = 0x04 // one ChunkRecord
	secBookkeep = 0x05 // one BookkeepRecord
	secWorkers  = 0x06 // per-worker time split
	secTrailer  = 0xFF // CRC-32 of everything before it
)

// maxSection caps a single section's payload. Record sections hold one
// record and stay tiny; the cap exists so a corrupted length prefix cannot
// drive the Reader into a multi-gigabyte allocation.
const maxSection = 1 << 26

// Errors distinguishing the artifact failure modes.
var (
	// ErrMagic reports a stream that does not start with the GGP magic.
	ErrMagic = errors.New("ggp: bad magic (not a grain-profile artifact)")
	// ErrVersion reports an artifact written by a newer format version.
	ErrVersion = errors.New("ggp: unsupported format version")
	// ErrCRC reports trailer checksum mismatch (artifact corrupted).
	ErrCRC = errors.New("ggp: CRC mismatch, artifact corrupted")
	// ErrTruncated reports a stream that ends before its trailer.
	ErrTruncated = errors.New("ggp: truncated artifact")
)
