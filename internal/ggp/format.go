// Package ggp implements the grain-graph profile (GGP) artifact: a
// versioned, streaming on-disk encoding of a profile.Trace that splits
// recording from analysis. A runtime (simulated or native) emits records
// into a Writer as one artifact per run; grainview and the experiment
// engine read artifacts back with Reader and obtain a trace that analyzes
// byte-identically to the live-simulated path.
//
// # Layout
//
//	header  := magic "GGPF" | version byte
//	section := id byte | uvarint payload length | payload
//	trailer := section id 0xFF with a 4-byte little-endian CRC-32 (IEEE)
//	           of every preceding byte (header + all sections)
//
// Record sections (task, loop, chunk, book-keeping) hold exactly one
// record each and repeat, so a Writer streams with bounded memory and a
// Reader reconstructs slices in emission order — which the graph builder
// relies on: NodeIDs are assigned in record order, so preserving it is
// what makes replayed analysis byte-identical.
//
// # Columnar v2 ("GGPC")
//
// Version 2 replaces the per-record event stream with columnar sections:
// the writer serializes the trace's attribute slices and the built grain
// graph's GraphStore columns (plus a CSR edge section) as independently
// CRC'd column sections, so a reader decodes sections in parallel on the
// runpool and materializes the graph at near-memcpy cost — no per-event
// parse, no core.Build replay. Optional sidecar sections persist derived
// indexes (topological levels, lod summary, query metric table) written
// after first analysis; each is content-keyed against the graph sections'
// checksums so a stale sidecar is detected and silently rebuilt, never
// trusted. See writer2.go/reader2.go and DESIGN.md §14.
//
//	header   := magic "GGPF" | version byte 0x02
//	section  := id byte | uvarint payload length | payload |
//	            4-byte LE CRC-32C (Castagnoli) of the payload
//	sidecar  := section with id in [0x20,0x2F); payload opens with a
//	            format-version byte and the 4-byte LE content key
//	trailer  := section id 0xFE; payload is the 4-byte LE content key
//	            (CRC-32C over the concatenated per-section CRCs of every
//	            non-sidecar section, in file order) plus a uvarint
//	            section count
//
// # Versioning and forward compatibility
//
// The version byte gates the record encodings: a Reader rejects versions
// newer than it understands. Within a version, unknown section IDs are
// skipped (they are length-prefixed), so a future minor producer may add
// new section kinds without breaking old readers; changing an existing
// record encoding requires a version bump.
package ggp

import "errors"

const (
	// Magic opens every GGP artifact.
	Magic = "GGPF"
	// Version is the v1 event-stream format version written by Writer.
	// ReadTrace accepts only v1 artifacts; Decode accepts both v1 and v2.
	Version = 1
	// Version2 is the columnar format version written by EncodeV2.
	Version2 = 2
)

// Section IDs. The trailer ID is deliberately far from the record IDs so
// a truncated or bit-flipped stream is unlikely to alias it.
const (
	secMeta     = 0x01 // program identification and trace span
	secTask     = 0x02 // one TaskRecord
	secLoop     = 0x03 // one LoopRecord
	secChunk    = 0x04 // one ChunkRecord
	secBookkeep = 0x05 // one BookkeepRecord
	secWorkers  = 0x06 // per-worker time split
	secTrailer  = 0xFF // CRC-32 of everything before it
)

// v2 section IDs. Trace columns and graph columns are content sections
// (they feed the trailer's content key); IDs in [0x20,0x2F) are sidecars,
// derived data that may be absent or stale without the artifact being
// corrupt. The v2 trailer ID differs from v1's so a mislabeled body cannot
// terminate cleanly.
const (
	secV2Meta         = 0x10 // program identification, span, section row counts
	secV2Workers      = 0x11 // per-worker time split
	secV2Tasks        = 0x12 // task columns + fragment/boundary CSR offsets
	secV2Frags        = 0x13 // flattened fragment columns
	secV2Bounds       = 0x14 // flattened boundary columns + joined CSR
	secV2Loops        = 0x15 // loop columns + thread CSR
	secV2Chunks       = 0x16 // chunk columns
	secV2Bookkeeps    = 0x17 // book-keeping columns
	secV2Nodes        = 0x18 // grain dictionary + graph node columns
	secV2NodeCounters = 0x19 // node hardware-counter columns
	secV2Edges        = 0x1A // edge columns + per-grain entry/exit nodes
	secV2Levels       = 0x20 // sidecar: topological level CSR
	secV2Lod          = 0x21 // sidecar: lod summary index columns
	secV2Query        = 0x22 // sidecar: query metric table
	secV2Trailer      = 0xFE // content key over non-sidecar section CRCs
)

// sidecarFormatVersion versions the sidecar payload encodings
// independently of the container: a reader that finds an unknown sidecar
// version discards the sidecar and rebuilds, it does not fail the decode.
const sidecarFormatVersion = 1

// isV2Sidecar reports whether a v2 section ID is a derived-data sidecar
// (excluded from the trailer's content key).
func isV2Sidecar(id byte) bool { return id >= 0x20 && id < 0x30 }

// maxSection caps a single section's payload. Record sections hold one
// record and stay tiny; the cap exists so a corrupted length prefix cannot
// drive the Reader into a multi-gigabyte allocation.
const maxSection = 1 << 26

// Errors distinguishing the artifact failure modes.
var (
	// ErrMagic reports a stream that does not start with the GGP magic.
	ErrMagic = errors.New("ggp: bad magic (not a grain-profile artifact)")
	// ErrVersion reports an artifact written by a newer format version.
	ErrVersion = errors.New("ggp: unsupported format version")
	// ErrCRC reports trailer checksum mismatch (artifact corrupted).
	ErrCRC = errors.New("ggp: CRC mismatch, artifact corrupted")
	// ErrTruncated reports a stream that ends before its trailer.
	ErrTruncated = errors.New("ggp: truncated artifact")
)
