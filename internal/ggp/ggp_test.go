package ggp_test

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"graingraph/internal/core"
	"graingraph/internal/ggp"
	"graingraph/internal/profile"
	"graingraph/internal/rts"
)

func loc(line int, fn string) profile.SrcLoc { return profile.Loc("test.go", line, fn) }

// sampleTrace simulates a program exercising every record kind: nested
// tasks, a dynamic parallel loop (chunks + book-keeping), counters.
func sampleTrace(t *testing.T) *profile.Trace {
	t.Helper()
	return rts.Run(rts.Config{Program: "ggp-sample", Cores: 4, Seed: 11}, func(c rts.Ctx) {
		c.Compute(500)
		c.Spawn(loc(5, "child"), func(c rts.Ctx) {
			c.Compute(900)
			c.Spawn(loc(6, "leaf"), func(c rts.Ctx) { c.Compute(300) })
			c.TaskWait()
		})
		c.TaskWait()
		c.For(loc(9, "loop"), 0, 32,
			rts.ForOpt{Schedule: profile.ScheduleDynamic, Chunk: 8},
			func(c rts.Ctx, lo, hi int) { c.Compute(uint64(hi-lo) * 100) })
		c.Compute(200)
	})
}

func encode(t *testing.T, tr *profile.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ggp.WriteTrace(&buf, tr); err != nil {
		t.Fatalf("ggp.WriteTrace: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTripPreservesRecords(t *testing.T) {
	tr := sampleTrace(t)
	got, err := ggp.ReadTrace(bytes.NewReader(encode(t, tr)))
	if err != nil {
		t.Fatalf("ggp.ReadTrace: %v", err)
	}

	if got.Program != tr.Program || got.Cores != tr.Cores || got.Sockets != tr.Sockets ||
		got.Scheduler != tr.Scheduler || got.Flavor != tr.Flavor ||
		got.PagePolicy != tr.PagePolicy || got.Start != tr.Start || got.End != tr.End {
		t.Errorf("meta mismatch: got %+v", got)
	}
	if len(got.Tasks) != len(tr.Tasks) {
		t.Fatalf("tasks: %d, want %d", len(got.Tasks), len(tr.Tasks))
	}
	for i := range tr.Tasks {
		if !reflect.DeepEqual(got.Tasks[i], tr.Tasks[i]) {
			t.Errorf("task %d differs:\n got %+v\nwant %+v", i, got.Tasks[i], tr.Tasks[i])
		}
	}
	if !reflect.DeepEqual(got.Loops, tr.Loops) {
		t.Errorf("loops differ: got %+v want %+v", got.Loops, tr.Loops)
	}
	if !reflect.DeepEqual(got.Chunks, tr.Chunks) {
		t.Errorf("chunks differ")
	}
	if !reflect.DeepEqual(got.Bookkeeps, tr.Bookkeeps) {
		t.Errorf("bookkeeps differ")
	}
	if !reflect.DeepEqual(got.Workers, tr.Workers) {
		t.Errorf("workers differ: got %+v want %+v", got.Workers, tr.Workers)
	}
}

// TestRoundTripGraphIdentical: the read-back trace must build a grain graph
// with identical node/edge columns — the property record/analyze relies on.
func TestRoundTripGraphIdentical(t *testing.T) {
	tr := sampleTrace(t)
	rt, err := ggp.ReadTrace(bytes.NewReader(encode(t, tr)))
	if err != nil {
		t.Fatalf("ggp.ReadTrace: %v", err)
	}
	g, rg := core.Build(tr), core.Build(rt)
	if g.NumNodes() != rg.NumNodes() || g.NumEdges() != rg.NumEdges() {
		t.Fatalf("graph shapes differ: %d/%d nodes, %d/%d edges",
			g.NumNodes(), rg.NumNodes(), g.NumEdges(), rg.NumEdges())
	}
	for n := core.NodeID(0); n < core.NodeID(g.NumNodes()); n++ {
		if !reflect.DeepEqual(g.NodeAt(n), rg.NodeAt(n)) {
			t.Fatalf("node %d differs:\n live %+v\nreplay %+v", n, g.NodeAt(n), rg.NodeAt(n))
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		if g.EdgeAt(i) != rg.EdgeAt(i) {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestWriteFileReadFile(t *testing.T) {
	tr := sampleTrace(t)
	path := filepath.Join(t.TempDir(), "run.ggp")
	if err := ggp.WriteFile(path, tr); err != nil {
		t.Fatalf("ggp.WriteFile: %v", err)
	}
	got, err := ggp.ReadFile(path)
	if err != nil {
		t.Fatalf("ggp.ReadFile: %v", err)
	}
	if got.Program != tr.Program || len(got.Tasks) != len(tr.Tasks) {
		t.Errorf("file round trip lost records")
	}
}

func TestDeterministicEncoding(t *testing.T) {
	tr := sampleTrace(t)
	a, b := encode(t, tr), encode(t, tr)
	if !bytes.Equal(a, b) {
		t.Error("encoding the same trace twice produced different bytes")
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	raw := encode(t, sampleTrace(t))
	raw[0] = 'X'
	if _, err := ggp.ReadTrace(bytes.NewReader(raw)); !errors.Is(err, ggp.ErrMagic) {
		t.Errorf("bad magic: err = %v, want ggp.ErrMagic", err)
	}
}

func TestReaderRejectsFutureVersion(t *testing.T) {
	raw := encode(t, sampleTrace(t))
	raw[len(ggp.Magic)] = ggp.Version + 1
	if _, err := ggp.ReadTrace(bytes.NewReader(raw)); !errors.Is(err, ggp.ErrVersion) {
		t.Errorf("future version: err = %v, want ggp.ErrVersion", err)
	}
}

func TestReaderRejectsCorruptedPayload(t *testing.T) {
	raw := encode(t, sampleTrace(t))
	// Flip a byte in the middle of the record stream: either a record
	// decodes differently (CRC catches it) or framing breaks (decode error).
	raw[len(raw)/2] ^= 0x55
	if _, err := ggp.ReadTrace(bytes.NewReader(raw)); err == nil {
		t.Error("corrupted payload accepted")
	}
}

func TestReaderRejectsCorruptedCRC(t *testing.T) {
	raw := encode(t, sampleTrace(t))
	raw[len(raw)-1] ^= 0xFF // last trailer byte
	if _, err := ggp.ReadTrace(bytes.NewReader(raw)); !errors.Is(err, ggp.ErrCRC) {
		t.Errorf("corrupted CRC: err = %v, want ggp.ErrCRC", err)
	}
}

func TestReaderRejectsTruncation(t *testing.T) {
	raw := encode(t, sampleTrace(t))
	for _, cut := range []int{0, 3, len(ggp.Magic), len(ggp.Magic) + 1, len(raw) / 3, len(raw) - 1} {
		if _, err := ggp.ReadTrace(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestReaderSkipsUnknownSections(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	gw, err := ggp.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := gw.Meta(tr); err != nil {
		t.Fatal(err)
	}
	// Splice in an unknown (future) section before the records.
	if err := gw.RawSection(0x42, []byte("future payload")); err != nil {
		t.Fatal(err)
	}
	for _, task := range tr.Tasks {
		if err := gw.Task(task); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range tr.Loops {
		if err := gw.Loop(l); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range tr.Chunks {
		if err := gw.Chunk(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range tr.Bookkeeps {
		if err := gw.Bookkeep(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw.Workers(tr.Workers); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ggp.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reader choked on unknown section: %v", err)
	}
	if len(got.Tasks) != len(tr.Tasks) {
		t.Errorf("records lost around unknown section")
	}
}

func TestReaderRejectsOversizedSectionLength(t *testing.T) {
	var buf bytes.Buffer
	gw, err := ggp.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	_ = gw // header only
	raw := buf.Bytes()
	// Claim a section far beyond ggp.MaxSection.
	raw = append(raw, ggp.SecTask)
	raw = appendUvarint(raw, uint64(ggp.MaxSection)+1)
	if _, err := ggp.ReadTrace(bytes.NewReader(raw)); err == nil {
		t.Error("oversized section length accepted")
	}
}

func TestReaderValidatesTraceContent(t *testing.T) {
	// A structurally well-formed artifact whose trace violates profile
	// invariants (backwards fragment) must be rejected by the wired-in
	// trace validation.
	tr := &profile.Trace{
		Program: "bad", Cores: 1, Start: 0, End: 10,
		Tasks: []*profile.TaskRecord{
			{ID: profile.RootID, Fragments: []profile.Fragment{{Start: 9, End: 2}}},
		},
	}
	var buf bytes.Buffer
	if err := ggp.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := ggp.ReadTrace(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("reader accepted a trace with backwards fragments")
	}
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}
