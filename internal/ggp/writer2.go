package ggp

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"graingraph/internal/colenc"
	"graingraph/internal/core"
	"graingraph/internal/profile"
)

// castagnoli is the CRC-32C table used by every v2 section checksum.
// Distinct from v1's IEEE polynomial on purpose: a v2 payload replayed
// through the v1 verifier (or vice versa) can never validate by accident.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SidecarKind identifies a derived-index sidecar section.
type SidecarKind byte

const (
	// SidecarLevels holds the topological level CSR (core/levels.go).
	// EncodeV2 emits it automatically when the graph's level index is
	// built; callers never construct it by hand.
	SidecarLevels SidecarKind = SidecarKind(secV2Levels)
	// SidecarLod holds the encoded lod summary index.
	SidecarLod SidecarKind = SidecarKind(secV2Lod)
	// SidecarQuery holds the encoded query metric table.
	SidecarQuery SidecarKind = SidecarKind(secV2Query)
)

// Sidecar is one derived-index payload to persist alongside the graph.
// The payload encoding is owned by the producing package (lod, query);
// ggp frames it, stamps the content key, and checksums it.
type Sidecar struct {
	Kind SidecarKind
	Data []byte
}

// EncodeV2 serializes a trace and its built grain graph as a columnar v2
// artifact. The graph must be the deterministic core.Build of tr (or a
// graph decoded from one): only construction-time columns are written —
// critical-path marks, layout geometry and adjacency indexes are derived
// state, so a post-analysis graph encodes byte-identically to a fresh
// build. If the graph's topological level index has been forced
// (NumLevels), it is persisted as a levels sidecar; lod/query sidecars are
// supplied by the caller, already encoded. Every sidecar is stamped with
// the artifact's content key so a later reader can detect staleness.
func EncodeV2(tr *profile.Trace, g *core.Graph, side []Sidecar) ([]byte, error) {
	return encodeV2(tr, g, side, 0, false)
}

// encodeV2 is EncodeV2 with an optional sidecar content-key override, a
// test hook that simulates the "graph sections changed after the sidecars
// were written" staleness scenario without hand-assembling an artifact.
func encodeV2(tr *profile.Trace, g *core.Graph, side []Sidecar, keyOverride uint32, useOverride bool) ([]byte, error) {
	if tr == nil || g == nil {
		return nil, fmt.Errorf("ggp: EncodeV2 requires a trace and a built graph")
	}
	w := &v2Writer{}
	w.buf = append(w.buf, Magic...)
	w.buf = append(w.buf, Version2)

	w.section(secV2Meta, encodeV2Meta(tr, g))
	if len(tr.Workers) > 0 {
		w.section(secV2Workers, encodeV2Workers(tr.Workers))
	}
	w.section(secV2Tasks, encodeV2Tasks(tr.Tasks))
	w.section(secV2Frags, encodeV2Frags(tr.Tasks))
	w.section(secV2Bounds, encodeV2Bounds(tr.Tasks))
	w.section(secV2Loops, encodeV2Loops(tr.Loops))
	w.section(secV2Chunks, encodeV2Chunks(tr.Chunks))
	w.section(secV2Bookkeeps, encodeV2Bookkeeps(tr.Bookkeeps))

	dict, dictIdx := grainDict(tr)
	nodes, nodeCtrs, edges, err := encodeV2Graph(tr, g, dict, dictIdx)
	if err != nil {
		return nil, err
	}
	w.section(secV2Nodes, nodes)
	w.section(secV2NodeCounters, nodeCtrs)
	w.section(secV2Edges, edges)

	// The content key is fixed once all content sections are written;
	// sidecars embed it and do not feed it.
	key := w.contentKey()
	sideKey := key
	if useOverride {
		sideKey = keyOverride
	}
	if off, lvlNodes, lvl := g.ExportLevels(); off != nil {
		w.sidecar(secV2Levels, sideKey, encodeV2Levels(off, lvlNodes, lvl))
	}
	for _, s := range side {
		if !isV2Sidecar(byte(s.Kind)) {
			return nil, fmt.Errorf("ggp: invalid sidecar kind 0x%02x", byte(s.Kind))
		}
		w.sidecar(byte(s.Kind), sideKey, s.Data)
	}

	var tb colenc.Buf
	trailer := binary.LittleEndian.AppendUint32(nil, key)
	tb.Uvarint(uint64(w.sections))
	trailer = append(trailer, tb.Bytes()...)
	w.section(secV2Trailer, trailer)
	return w.buf, nil
}

// WriteFileV2 encodes a v2 artifact and writes it atomically (temp file +
// rename), so a concurrent reader never observes a half-written artifact.
func WriteFileV2(path string, tr *profile.Trace, g *core.Graph, side []Sidecar) error {
	data, err := EncodeV2(tr, g, side)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ggp2-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// v2Writer frames sections into one flat buffer, collecting the
// per-section CRCs of content sections for the trailer's content key.
type v2Writer struct {
	buf      []byte
	crcs     []byte // concatenated 4-byte LE CRCs of content sections
	sections int
}

func (w *v2Writer) section(id byte, payload []byte) {
	w.buf = append(w.buf, id)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(payload)))
	w.buf = append(w.buf, payload...)
	sum := crc32.Checksum(payload, castagnoli)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, sum)
	if !isV2Sidecar(id) && id != secV2Trailer {
		w.crcs = binary.LittleEndian.AppendUint32(w.crcs, sum)
	}
	if id != secV2Trailer {
		w.sections++
	}
}

func (w *v2Writer) sidecar(id byte, key uint32, data []byte) {
	payload := make([]byte, 0, 5+len(data))
	payload = append(payload, sidecarFormatVersion)
	payload = binary.LittleEndian.AppendUint32(payload, key)
	payload = append(payload, data...)
	w.section(id, payload)
}

func (w *v2Writer) contentKey() uint32 {
	return crc32.Checksum(w.crcs, castagnoli)
}

// grainDict builds the grain-ID dictionary in the canonical order (tasks,
// then chunks — the same order Build assigns entry/exit map entries) plus
// the reverse index used to encode node grain references.
func grainDict(tr *profile.Trace) ([]string, map[profile.GrainID]int32) {
	dict := make([]string, 0, len(tr.Tasks)+len(tr.Chunks))
	idx := make(map[profile.GrainID]int32, len(tr.Tasks)+len(tr.Chunks))
	for _, t := range tr.Tasks {
		idx[t.ID] = int32(len(dict))
		dict = append(dict, string(t.ID))
	}
	for _, ck := range tr.Chunks {
		id := tr.ChunkGrainID(ck)
		idx[id] = int32(len(dict))
		dict = append(dict, string(id))
	}
	return dict, idx
}

func encodeV2Meta(tr *profile.Trace, g *core.Graph) []byte {
	var e colenc.Buf
	e.Str(tr.Program)
	e.Uvarint(uint64(int64(tr.Cores)))
	e.Uvarint(uint64(int64(tr.Sockets)))
	e.Str(tr.Scheduler)
	e.Str(tr.Flavor)
	e.Str(tr.PagePolicy)
	e.Uvarint(tr.Start)
	e.Uvarint(tr.End)
	e.Uvarint(uint64(len(tr.Tasks)))
	e.Uvarint(uint64(len(tr.Loops)))
	e.Uvarint(uint64(len(tr.Chunks)))
	e.Uvarint(uint64(len(tr.Bookkeeps)))
	e.Uvarint(uint64(g.NumNodes()))
	e.Uvarint(uint64(g.NumEdges()))
	return e.Bytes()
}

func encodeV2Workers(ws []profile.WorkerStat) []byte {
	busy := make([]uint64, len(ws))
	over := make([]uint64, len(ws))
	for i, w := range ws {
		busy[i], over[i] = w.Busy, w.Overhead
	}
	var e colenc.Buf
	e.U64s(busy)
	e.U64s(over)
	return e.Bytes()
}

func encodeV2Tasks(tasks []*profile.TaskRecord) []byte {
	n := len(tasks)
	ids := make([]string, n)
	parents := make([]string, n)
	locFile := make([]string, n)
	locLine := make([]int64, n)
	locFunc := make([]string, n)
	depth := make([]int64, n)
	createTime := make([]uint64, n)
	createCost := make([]uint64, n)
	createdBy := make([]int64, n)
	startTime := make([]uint64, n)
	endTime := make([]uint64, n)
	inlined := make([]bool, n)
	fragOff := make([]uint32, n+1)
	boundOff := make([]uint32, n+1)
	for i, t := range tasks {
		ids[i] = string(t.ID)
		parents[i] = string(t.Parent)
		locFile[i] = t.Loc.File
		locLine[i] = int64(t.Loc.Line)
		locFunc[i] = t.Loc.Func
		depth[i] = int64(t.Depth)
		createTime[i] = t.CreateTime
		createCost[i] = t.CreateCost
		createdBy[i] = int64(t.CreatedBy)
		startTime[i] = t.StartTime
		endTime[i] = t.EndTime
		inlined[i] = t.Inlined
		fragOff[i+1] = fragOff[i] + uint32(len(t.Fragments))
		boundOff[i+1] = boundOff[i] + uint32(len(t.Boundaries))
	}
	var e colenc.Buf
	e.Strs(ids)
	e.Strs(parents)
	e.Strs(locFile)
	e.I64sVar(locLine)
	e.Strs(locFunc)
	e.I64sVar(depth)
	e.U64s(createTime)
	e.U64s(createCost)
	e.I64sVar(createdBy)
	e.U64s(startTime)
	e.U64s(endTime)
	e.Bools(inlined)
	e.U32s(fragOff)
	e.U32s(boundOff)
	return e.Bytes()
}

// counterCols transposes a counter extractor over n rows into the seven
// per-counter columns and encodes them as sparse uvarint vectors.
func counterCols(e *colenc.Buf, n int, at func(i int) *counters7) {
	cols := make([][]uint64, 7)
	for c := range cols {
		cols[c] = make([]uint64, n)
	}
	for i := 0; i < n; i++ {
		v := at(i)
		for c := 0; c < 7; c++ {
			cols[c][i] = v[c]
		}
	}
	for c := 0; c < 7; c++ {
		e.U64sVar(cols[c])
	}
}

// counters7 is the flat view of cache.Counters in its canonical field
// order (the same order the v1 encoder uses).
type counters7 [7]uint64

func encodeV2Frags(tasks []*profile.TaskRecord) []byte {
	n := 0
	for _, t := range tasks {
		n += len(t.Fragments)
	}
	start := make([]uint64, n)
	end := make([]uint64, n)
	core := make([]int64, n)
	flat := make([]counters7, n)
	i := 0
	for _, t := range tasks {
		for fi := range t.Fragments {
			f := &t.Fragments[fi]
			start[i] = f.Start
			end[i] = f.End
			core[i] = int64(f.Core)
			c := f.Counters
			flat[i] = counters7{c.Accesses, c.L1Miss, c.L2Miss, c.L3Miss, c.Remote, c.Stall, c.Compute}
			i++
		}
	}
	var e colenc.Buf
	e.U64s(start)
	e.U64s(end)
	e.I64sVar(core)
	counterCols(&e, n, func(i int) *counters7 { return &flat[i] })
	return e.Bytes()
}

func encodeV2Bounds(tasks []*profile.TaskRecord) []byte {
	n, nj := 0, 0
	for _, t := range tasks {
		n += len(t.Boundaries)
		for bi := range t.Boundaries {
			nj += len(t.Boundaries[bi].Joined)
		}
	}
	kind := make([]uint8, n)
	at := make([]uint64, n)
	child := make([]string, n)
	wait := make([]uint64, n)
	susp := make([]uint64, n)
	loop := make([]int64, n)
	joinedOff := make([]uint32, n+1)
	joined := make([]string, 0, nj)
	i := 0
	for _, t := range tasks {
		for bi := range t.Boundaries {
			b := &t.Boundaries[bi]
			kind[i] = uint8(b.Kind)
			at[i] = b.At
			child[i] = string(b.Child)
			wait[i] = b.Wait
			susp[i] = b.Suspended
			loop[i] = int64(b.Loop)
			for _, j := range b.Joined {
				joined = append(joined, string(j))
			}
			joinedOff[i+1] = uint32(len(joined))
			i++
		}
	}
	var e colenc.Buf
	e.U8s(kind)
	e.U64s(at)
	e.Strs(child)
	e.U64s(wait)
	e.U64s(susp)
	e.I64sVar(loop)
	e.U32s(joinedOff)
	e.Strs(joined)
	return e.Bytes()
}

func encodeV2Loops(loops []*profile.LoopRecord) []byte {
	n := 0
	nt := 0
	for _, l := range loops {
		n++
		nt += len(l.Threads)
	}
	id := make([]int64, n)
	locFile := make([]string, n)
	locLine := make([]int64, n)
	locFunc := make([]string, n)
	sched := make([]uint8, n)
	chunkSize := make([]int64, n)
	lo := make([]int64, n)
	hi := make([]int64, n)
	start := make([]uint64, n)
	end := make([]uint64, n)
	startThread := make([]int64, n)
	threadOff := make([]uint32, n+1)
	threads := make([]int64, 0, nt)
	for i, l := range loops {
		id[i] = int64(l.ID)
		locFile[i] = l.Loc.File
		locLine[i] = int64(l.Loc.Line)
		locFunc[i] = l.Loc.Func
		sched[i] = uint8(l.Schedule)
		chunkSize[i] = int64(l.ChunkSize)
		lo[i] = int64(l.Lo)
		hi[i] = int64(l.Hi)
		start[i] = l.Start
		end[i] = l.End
		startThread[i] = int64(l.StartThread)
		for _, th := range l.Threads {
			threads = append(threads, int64(th))
		}
		threadOff[i+1] = uint32(len(threads))
	}
	var e colenc.Buf
	e.I64sVar(id)
	e.Strs(locFile)
	e.I64sVar(locLine)
	e.Strs(locFunc)
	e.U8s(sched)
	e.I64sVar(chunkSize)
	e.I64sVar(lo)
	e.I64sVar(hi)
	e.U64s(start)
	e.U64s(end)
	e.I64sVar(startThread)
	e.U32s(threadOff)
	e.I64sVar(threads)
	return e.Bytes()
}

func encodeV2Chunks(chunks []*profile.ChunkRecord) []byte {
	n := len(chunks)
	loop := make([]int64, n)
	seq := make([]int64, n)
	thread := make([]int64, n)
	lo := make([]int64, n)
	hi := make([]int64, n)
	start := make([]uint64, n)
	end := make([]uint64, n)
	bookkeep := make([]uint64, n)
	flat := make([]counters7, n)
	for i, ck := range chunks {
		loop[i] = int64(ck.Loop)
		seq[i] = int64(ck.Seq)
		thread[i] = int64(ck.Thread)
		lo[i] = int64(ck.Lo)
		hi[i] = int64(ck.Hi)
		start[i] = ck.Start
		end[i] = ck.End
		bookkeep[i] = ck.Bookkeep
		c := ck.Counters
		flat[i] = counters7{c.Accesses, c.L1Miss, c.L2Miss, c.L3Miss, c.Remote, c.Stall, c.Compute}
	}
	var e colenc.Buf
	e.I64sVar(loop)
	e.I64sVar(seq)
	e.I64sVar(thread)
	e.I64sVar(lo)
	e.I64sVar(hi)
	e.U64s(start)
	e.U64s(end)
	e.U64sVar(bookkeep)
	counterCols(&e, n, func(i int) *counters7 { return &flat[i] })
	return e.Bytes()
}

func encodeV2Bookkeeps(bks []*profile.BookkeepRecord) []byte {
	n := len(bks)
	loop := make([]int64, n)
	thread := make([]int64, n)
	grabs := make([]int64, n)
	total := make([]uint64, n)
	for i, b := range bks {
		loop[i] = int64(b.Loop)
		thread[i] = int64(b.Thread)
		grabs[i] = int64(b.Grabs)
		total[i] = b.Total
	}
	var e colenc.Buf
	e.I64sVar(loop)
	e.I64sVar(thread)
	e.I64sVar(grabs)
	e.U64sVar(total)
	return e.Bytes()
}

// encodeV2Graph serializes the built graph's columns: node section (grain
// dictionary + per-node attributes), counter section, and edge section
// (edge columns + each grain's entry/exit node from FirstNode/LastNode,
// indexed by dictionary position, -1 when absent).
func encodeV2Graph(tr *profile.Trace, g *core.Graph, dict []string, dictIdx map[profile.GrainID]int32) (nodes, nodeCtrs, edges []byte, err error) {
	c := g.ExportColumns()
	nn := len(c.Kind)
	grainRef := make([]uint32, nn)
	for i, id := range c.Grain {
		ref, ok := dictIdx[id]
		if !ok {
			return nil, nil, nil, fmt.Errorf("ggp: node %d grain %q not in trace dictionary", i, id)
		}
		grainRef[i] = uint32(ref)
	}
	loop := make([]int64, nn)
	seq := make([]int64, nn)
	coreCol := make([]int64, nn)
	members := make([]int64, nn)
	for i := 0; i < nn; i++ {
		loop[i] = int64(c.Loop[i])
		seq[i] = int64(c.Seq[i])
		coreCol[i] = int64(c.Core[i])
		members[i] = int64(c.Members[i])
	}
	var e colenc.Buf
	e.Strs(dict)
	e.U8s(c.Kind)
	e.U32s(grainRef)
	e.I64sVar(loop)
	e.I64sVar(seq)
	e.I64sVar(coreCol)
	e.I64sVar(members)
	e.Strs(c.Label)
	e.U64s(c.Start)
	e.U64s(c.End)
	e.U64s(c.Weight)
	nodes = e.Bytes()

	var ec colenc.Buf
	counterCols(&ec, nn, func(i int) *counters7 {
		v := &c.Counters[i]
		return &counters7{v.Accesses, v.L1Miss, v.L2Miss, v.L3Miss, v.Remote, v.Stall, v.Compute}
	})
	nodeCtrs = ec.Bytes()

	ne := len(c.EdgeFrom)
	from := make([]uint32, ne)
	to := make([]uint32, ne)
	for i := 0; i < ne; i++ {
		from[i] = uint32(c.EdgeFrom[i])
		to[i] = uint32(c.EdgeTo[i])
	}
	first := make([]int64, len(dict))
	last := make([]int64, len(dict))
	for i := range dict {
		first[i], last[i] = -1, -1
	}
	for id, nd := range g.FirstNode {
		ref, ok := dictIdx[id]
		if !ok {
			return nil, nil, nil, fmt.Errorf("ggp: entry grain %q not in trace dictionary", id)
		}
		first[ref] = int64(nd)
	}
	for id, nd := range g.LastNode {
		ref, ok := dictIdx[id]
		if !ok {
			return nil, nil, nil, fmt.Errorf("ggp: exit grain %q not in trace dictionary", id)
		}
		last[ref] = int64(nd)
	}
	var ee colenc.Buf
	ee.U32s(from)
	ee.U32s(to)
	ee.U8s(c.EdgeKind)
	ee.I64sVar(first)
	ee.I64sVar(last)
	edges = ee.Bytes()
	return nodes, nodeCtrs, edges, nil
}

func encodeV2Levels(off, nodes, level []int32) []byte {
	offU := make([]uint32, len(off))
	for i, v := range off {
		offU[i] = uint32(v)
	}
	nodesU := make([]uint32, len(nodes))
	for i, v := range nodes {
		nodesU[i] = uint32(v)
	}
	levelU := make([]uint64, len(level))
	for i, v := range level {
		levelU[i] = uint64(v)
	}
	var e colenc.Buf
	e.U32s(offU)
	e.U32s(nodesU)
	e.U64sVar(levelU)
	return e.Bytes()
}
