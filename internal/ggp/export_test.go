package ggp

// Test hooks for the external test package. The ggp tests live in
// ggp_test (not in-package) because their sample traces come from
// internal/rts, and rts imports ggp for the Config.Profile sink.

import (
	"graingraph/internal/core"
	"graingraph/internal/profile"
)

const (
	SecTask    = secTask
	SecTrailer = secTrailer
	MaxSection = maxSection

	SecV2Meta    = secV2Meta
	SecV2Tasks   = secV2Tasks
	SecV2Nodes   = secV2Nodes
	SecV2Edges   = secV2Edges
	SecV2Levels  = secV2Levels
	SecV2Lod     = secV2Lod
	SecV2Query   = secV2Query
	SecV2Trailer = secV2Trailer
)

// EncodeV2StaleForTest encodes a v2 artifact whose sidecars carry the
// given (wrong) content key, simulating sidecars left behind by an older
// version of the graph sections.
func EncodeV2StaleForTest(tr *profile.Trace, g *core.Graph, side []Sidecar, key uint32) ([]byte, error) {
	return encodeV2(tr, g, side, key, true)
}

// RawSection emits an arbitrary section; the forward-compatibility tests
// use it to splice unknown section IDs into otherwise valid artifacts.
func (w *Writer) RawSection(id byte, payload []byte) error {
	w.buf = append(w.buf[:0], payload...)
	return w.section(id)
}
