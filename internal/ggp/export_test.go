package ggp

// Test hooks for the external test package. The ggp tests live in
// ggp_test (not in-package) because their sample traces come from
// internal/rts, and rts imports ggp for the Config.Profile sink.

const (
	SecTask    = secTask
	SecTrailer = secTrailer
	MaxSection = maxSection
)

// RawSection emits an arbitrary section; the forward-compatibility tests
// use it to splice unknown section IDs into otherwise valid artifacts.
func (w *Writer) RawSection(id byte, payload []byte) error {
	w.buf = append(w.buf[:0], payload...)
	return w.section(id)
}
