package ggp_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"graingraph/internal/core"
	"graingraph/internal/ggp"
	"graingraph/internal/profile"
	"graingraph/internal/runpool"
)

func encodeV2(t *testing.T, tr *profile.Trace, g *core.Graph, side []ggp.Sidecar) []byte {
	t.Helper()
	data, err := ggp.EncodeV2(tr, g, side)
	if err != nil {
		t.Fatalf("ggp.EncodeV2: %v", err)
	}
	return data
}

func decodeV2(t *testing.T, data []byte, pool *runpool.Runner) *ggp.Decoded {
	t.Helper()
	dec, err := ggp.Decode(data, pool, nil)
	if err != nil {
		t.Fatalf("ggp.Decode: %v", err)
	}
	return dec
}

// sameTrace asserts got reproduces want record for record, the same
// contract the v1 round-trip test checks.
func sameTrace(t *testing.T, got, want *profile.Trace) {
	t.Helper()
	if got.Program != want.Program || got.Cores != want.Cores || got.Sockets != want.Sockets ||
		got.Scheduler != want.Scheduler || got.Flavor != want.Flavor ||
		got.PagePolicy != want.PagePolicy || got.Start != want.Start || got.End != want.End {
		t.Errorf("meta mismatch: got %+v", got)
	}
	if len(got.Tasks) != len(want.Tasks) {
		t.Fatalf("tasks: %d, want %d", len(got.Tasks), len(want.Tasks))
	}
	for i := range want.Tasks {
		if !reflect.DeepEqual(got.Tasks[i], want.Tasks[i]) {
			t.Errorf("task %d differs:\n got %+v\nwant %+v", i, got.Tasks[i], want.Tasks[i])
		}
	}
	if !reflect.DeepEqual(got.Loops, want.Loops) {
		t.Errorf("loops differ: got %+v want %+v", got.Loops, want.Loops)
	}
	if !reflect.DeepEqual(got.Chunks, want.Chunks) {
		t.Errorf("chunks differ")
	}
	if !reflect.DeepEqual(got.Bookkeeps, want.Bookkeeps) {
		t.Errorf("bookkeeps differ")
	}
	if !reflect.DeepEqual(got.Workers, want.Workers) {
		t.Errorf("workers differ: got %+v want %+v", got.Workers, want.Workers)
	}
}

// sameGraph asserts two graphs are identical node for node, edge for
// edge, including the grain entry/exit maps.
func sameGraph(t *testing.T, got, want *core.Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("graph size: got %d nodes/%d edges, want %d/%d",
			got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	for n := 0; n < got.NumNodes(); n++ {
		gn, wn := got.NodeAt(core.NodeID(n)), want.NodeAt(core.NodeID(n))
		if !reflect.DeepEqual(gn, wn) {
			t.Fatalf("node %d differs:\n got %+v\nwant %+v", n, gn, wn)
		}
	}
	for i := 0; i < got.NumEdges(); i++ {
		if got.EdgeAt(i) != want.EdgeAt(i) {
			t.Fatalf("edge %d differs: got %+v want %+v", i, got.EdgeAt(i), want.EdgeAt(i))
		}
	}
	if !reflect.DeepEqual(got.FirstNode, want.FirstNode) {
		t.Errorf("FirstNode maps differ")
	}
	if !reflect.DeepEqual(got.LastNode, want.LastNode) {
		t.Errorf("LastNode maps differ")
	}
}

func TestV2RoundTripTraceAndGraph(t *testing.T) {
	tr := sampleTrace(t)
	g := core.Build(tr)
	data := encodeV2(t, tr, g, nil)

	for _, workers := range []int{0, 4} {
		var pool *runpool.Runner
		if workers > 0 {
			pool = runpool.New(workers)
		}
		dec := decodeV2(t, data, pool)
		if dec.Version != 2 {
			t.Fatalf("version: %d", dec.Version)
		}
		sameTrace(t, dec.Trace, tr)
		dg := dec.TakeGraph()
		if dg == nil {
			t.Fatal("TakeGraph returned nil on first call")
		}
		sameGraph(t, dg, core.Build(dec.Trace))
		if dec.TakeGraph() != nil {
			t.Fatal("TakeGraph handed the graph out twice")
		}
		if dec.SidecarStale {
			t.Fatal("sidecar-free artifact reported stale sidecars")
		}
		if dec.HasSidecars() {
			t.Fatal("sidecar-free artifact reports sidecars")
		}
	}
}

func TestV2DecodeTrace(t *testing.T) {
	tr := sampleTrace(t)
	data := encodeV2(t, tr, core.Build(tr), nil)
	got, err := ggp.DecodeTrace(data, nil, nil)
	if err != nil {
		t.Fatalf("DecodeTrace: %v", err)
	}
	sameTrace(t, got, tr)

	// And the v1 path through the same entry point.
	v1got, err := ggp.DecodeTrace(encode(t, tr), nil, nil)
	if err != nil {
		t.Fatalf("DecodeTrace(v1): %v", err)
	}
	sameTrace(t, v1got, tr)
}

func TestV2DeterministicEncoding(t *testing.T) {
	tr := sampleTrace(t)
	g := core.Build(tr)
	a := encodeV2(t, tr, g, nil)
	// Analysis-style mutation of derived state must not leak into the
	// encoding: only construction-time columns are serialized.
	g.SetCritical(0, true)
	g.SetGeometry(0, 1, 2, 3, 4)
	if g.NumEdges() > 0 {
		g.SetEdgeCritical(0, true)
	}
	b := encodeV2(t, tr, g, nil)
	if !bytes.Equal(a, b) {
		t.Fatal("encoding changed after analysis-state mutation")
	}
	// A graph decoded from the artifact re-encodes to the same bytes.
	dec := decodeV2(t, a, nil)
	c := encodeV2(t, dec.Trace, dec.TakeGraph(), nil)
	if !bytes.Equal(a, c) {
		t.Fatal("decode/re-encode not byte-identical")
	}
}

func TestV2LevelsSidecar(t *testing.T) {
	tr := sampleTrace(t)
	g := core.Build(tr)
	want := g.NumLevels() // forces the level index, so EncodeV2 persists it
	data := encodeV2(t, tr, g, nil)

	dec := decodeV2(t, data, nil)
	dg := dec.TakeGraph()
	off, _, _ := dg.ExportLevels()
	if off == nil {
		t.Fatal("levels sidecar not adopted")
	}
	if got := dg.NumLevels(); got != want {
		t.Fatalf("NumLevels: got %d want %d", got, want)
	}
	// The adopted index must agree with a fresh build, level by level.
	fresh := core.Build(dec.Trace)
	if fn, gn := fresh.NumLevels(), dg.NumLevels(); fn != gn {
		t.Fatalf("levels: adopted %d, rebuilt %d", gn, fn)
	}
	for l := 0; l < fresh.NumLevels(); l++ {
		if !reflect.DeepEqual(fresh.LevelNodes(l), dg.LevelNodes(l)) {
			t.Fatalf("level %d nodes differ", l)
		}
	}
}

func TestV2SidecarRoundTrip(t *testing.T) {
	tr := sampleTrace(t)
	g := core.Build(tr)
	g.NumLevels()
	side := []ggp.Sidecar{
		{Kind: ggp.SidecarLod, Data: []byte("lod-payload")},
		{Kind: ggp.SidecarQuery, Data: []byte("query-payload")},
	}
	dec := decodeV2(t, encodeV2(t, tr, g, side), nil)
	if !dec.HasSidecars() {
		t.Fatal("HasSidecars: false, want true")
	}
	if string(dec.LodSidecar()) != "lod-payload" {
		t.Fatalf("lod sidecar: %q", dec.LodSidecar())
	}
	if string(dec.QuerySidecar()) != "query-payload" {
		t.Fatalf("query sidecar: %q", dec.QuerySidecar())
	}
	if dec.SidecarStale {
		t.Fatal("fresh sidecars reported stale")
	}
}

// TestV2StaleSidecarsDiscarded is the staleness contract: sidecars keyed
// against a different generation of the graph sections are discarded and
// rebuilt, and the decode result is identical to a sidecar-free decode.
func TestV2StaleSidecarsDiscarded(t *testing.T) {
	tr := sampleTrace(t)
	g := core.Build(tr)
	g.NumLevels()
	side := []ggp.Sidecar{
		{Kind: ggp.SidecarLod, Data: []byte("stale-lod")},
		{Kind: ggp.SidecarQuery, Data: []byte("stale-query")},
	}
	plain := encodeV2(t, tr, core.Build(tr), nil)
	stale, err := ggp.EncodeV2StaleForTest(tr, g, side, 0xDEADBEEF)
	if err != nil {
		t.Fatalf("EncodeV2StaleForTest: %v", err)
	}

	dec, err := ggp.Decode(stale, nil, nil)
	if err != nil {
		t.Fatalf("Decode of artifact with stale sidecars: %v", err)
	}
	if !dec.SidecarStale {
		t.Fatal("SidecarStale: false, want true")
	}
	if dec.HasSidecars() {
		t.Fatal("stale sidecars still reported present")
	}
	if dec.LodSidecar() != nil || dec.QuerySidecar() != nil {
		t.Fatal("stale sidecar payloads handed out")
	}
	dg := dec.TakeGraph()
	if off, _, _ := dg.ExportLevels(); off != nil {
		t.Fatal("stale levels sidecar adopted")
	}

	// Same decode result as the sidecar-free artifact.
	ref := decodeV2(t, plain, nil)
	sameTrace(t, dec.Trace, ref.Trace)
	sameGraph(t, dg, ref.TakeGraph())
	// And the re-encoding (what an upgrade would persist) is identical.
	if a, b := encodeV2(t, dec.Trace, dg, nil), encodeV2(t, ref.Trace, core.Build(ref.Trace), nil); !bytes.Equal(a, b) {
		t.Fatal("stale-decode re-encoding differs from sidecar-free decode")
	}
}

func TestV2CorruptionFailsClosed(t *testing.T) {
	tr := sampleTrace(t)
	g := core.Build(tr)
	g.NumLevels()
	side := []ggp.Sidecar{{Kind: ggp.SidecarLod, Data: []byte("lod")}}
	data := encodeV2(t, tr, g, side)

	t.Run("flipped content byte", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[len(ggp.Magic)+10] ^= 0xFF // inside the first (meta) section payload
		if _, err := ggp.Decode(bad, nil, nil); !errors.Is(err, ggp.ErrCRC) {
			t.Fatalf("got %v, want ErrCRC", err)
		}
	})
	t.Run("truncated mid-column", func(t *testing.T) {
		if _, err := ggp.Decode(data[:2*len(data)/3], nil, nil); !errors.Is(err, ggp.ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("flipped sidecar byte", func(t *testing.T) {
		// Find the lod sidecar section and flip a payload byte: sidecar
		// corruption is detected (hard error), not silently ignored —
		// staleness is a key mismatch, corruption is a checksum mismatch.
		idx := bytes.LastIndex(data, []byte("lod"))
		if idx < 0 {
			t.Fatal("sidecar payload not found")
		}
		bad := append([]byte(nil), data...)
		bad[idx] ^= 0xFF
		if _, err := ggp.Decode(bad, nil, nil); !errors.Is(err, ggp.ErrCRC) {
			t.Fatalf("got %v, want ErrCRC", err)
		}
	})
	t.Run("v2 header on v1 body", func(t *testing.T) {
		v1 := encode(t, tr)
		bad := append([]byte(nil), v1...)
		bad[len(ggp.Magic)] = 2
		if _, err := ggp.Decode(bad, nil, nil); err == nil {
			t.Fatal("v2 header with v1 body decoded successfully")
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[len(ggp.Magic)] = 9
		if _, err := ggp.Decode(bad, nil, nil); !errors.Is(err, ggp.ErrVersion) {
			t.Fatalf("got %v, want ErrVersion", err)
		}
	})
}
