package ggp

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"

	"graingraph/internal/cache"
	"graingraph/internal/profile"
)

// ReadTrace reconstructs a trace from a GGP artifact stream. Records are
// appended in section order, so the returned trace's slices match the
// producer's emission order and the rebuilt grain graph assigns identical
// NodeIDs to the live-simulated one. The trace is checksum-verified and
// structurally validated (profile.Trace.Validate) before it is returned;
// any malformation — truncation, version skew, corrupted CRC, oversized or
// undecodable sections — yields an error, never a panic.
func ReadTrace(r io.Reader) (*profile.Trace, error) {
	var hdr [len(Magic) + 1]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if string(hdr[:len(Magic)]) != Magic {
		return nil, ErrMagic
	}
	if v := hdr[len(Magic)]; v == 0 || v > Version {
		return nil, fmt.Errorf("%w: artifact version %d, reader supports <= %d",
			ErrVersion, v, Version)
	}

	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	br := &crcReader{r: r, crc: crc}

	tr := &profile.Trace{}
	sawMeta, sawTrailer := false, false
	for !sawTrailer {
		id, err := br.byte()
		if err != nil {
			return nil, fmt.Errorf("%w: stream ends before trailer", ErrTruncated)
		}
		size, err := br.uvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: unterminated section length", ErrTruncated)
		}
		if size > maxSection {
			return nil, fmt.Errorf("ggp: section 0x%02x length %d exceeds limit %d", id, size, maxSection)
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, fmt.Errorf("%w: section 0x%02x shorter than its length prefix", ErrTruncated, id)
		}
		d := &decoder{buf: payload}
		switch id {
		case secMeta:
			if sawMeta {
				return nil, fmt.Errorf("ggp: duplicate meta section")
			}
			sawMeta = true
			err = d.meta(tr)
		case secTask:
			var t profile.TaskRecord
			if err = d.task(&t); err == nil {
				tr.Tasks = append(tr.Tasks, &t)
			}
		case secLoop:
			var l profile.LoopRecord
			if err = d.loop(&l); err == nil {
				tr.Loops = append(tr.Loops, &l)
			}
		case secChunk:
			var c profile.ChunkRecord
			if err = d.chunk(&c); err == nil {
				tr.Chunks = append(tr.Chunks, &c)
			}
		case secBookkeep:
			var b profile.BookkeepRecord
			if err = d.bookkeep(&b); err == nil {
				tr.Bookkeeps = append(tr.Bookkeeps, &b)
			}
		case secWorkers:
			err = d.workers(tr)
		case secTrailer:
			sawTrailer = true
			if len(payload) != 4 {
				return nil, fmt.Errorf("%w: trailer payload is %d bytes, want 4", ErrCRC, len(payload))
			}
			// The stored sum was taken before the Writer appended the trailer
			// section, so compare against the running sum as of just before
			// the trailer's ID byte (snapshotted by crcReader.byte).
			want := binary.LittleEndian.Uint32(payload)
			if got := br.sumBeforeTrailer; got != want {
				return nil, fmt.Errorf("%w: computed %08x, stored %08x", ErrCRC, got, want)
			}
		default:
			// Unknown section: a newer minor producer added a record kind this
			// reader does not understand. Skipping is safe — lengths frame it.
		}
		if err != nil {
			return nil, fmt.Errorf("ggp: section 0x%02x: %w", id, err)
		}
		if !d.empty() && id != secTrailer && isKnown(id) {
			return nil, fmt.Errorf("ggp: section 0x%02x carries %d trailing bytes", id, d.remaining())
		}
	}
	if !sawMeta {
		return nil, fmt.Errorf("ggp: artifact has no meta section")
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("ggp: invalid trace: %w", err)
	}
	return tr, nil
}

// ReadFile reads and validates the artifact at path.
func ReadFile(path string) (*profile.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

func isKnown(id byte) bool {
	switch id {
	case secMeta, secTask, secLoop, secChunk, secBookkeep, secWorkers, secTrailer:
		return true
	}
	return false
}

// crcReader feeds every byte it reads into the running checksum, and keeps
// the sum as of just before the trailer section ID so the trailer's own
// bytes are excluded from verification.
type crcReader struct {
	r                io.Reader
	crc              hash.Hash32
	sumBeforeTrailer uint32
	one              [1]byte
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.crc.Write(p[:n])
	}
	return n, err
}

// byte reads the next section ID, recording the checksum state before it.
func (c *crcReader) byte() (byte, error) {
	c.sumBeforeTrailer = c.crc.Sum32()
	if _, err := io.ReadFull(c, c.one[:]); err != nil {
		return 0, err
	}
	return c.one[0], nil
}

// uvarint decodes one unsigned varint from the stream.
func (c *crcReader) uvarint() (uint64, error) {
	var v uint64
	for shift := 0; shift < 64; shift += 7 {
		if _, err := io.ReadFull(c, c.one[:]); err != nil {
			return 0, err
		}
		b := c.one[0]
		v |= uint64(b&0x7F) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("ggp: uvarint overflows 64 bits")
}

// decoder walks one section payload. Every accessor checks bounds; on a
// short payload it returns an error instead of panicking, which the fuzz
// target exercises.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) empty() bool    { return d.off >= len(d.buf) }
func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) u() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated uvarint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) i() (int, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated varint at offset %d", d.off)
	}
	d.off += n
	return int(v), nil
}

func (d *decoder) str() (string, error) {
	n, err := d.u()
	if err != nil {
		return "", err
	}
	if n > uint64(d.remaining()) {
		return "", fmt.Errorf("string length %d exceeds %d remaining bytes", n, d.remaining())
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decoder) loc() (profile.SrcLoc, error) {
	var l profile.SrcLoc
	var err error
	if l.File, err = d.str(); err != nil {
		return l, err
	}
	if l.Line, err = d.i(); err != nil {
		return l, err
	}
	l.Func, err = d.str()
	return l, err
}

func (d *decoder) counters() (cache.Counters, error) {
	var c cache.Counters
	for _, p := range []*uint64{&c.Accesses, &c.L1Miss, &c.L2Miss, &c.L3Miss, &c.Remote, &c.Stall, &c.Compute} {
		v, err := d.u()
		if err != nil {
			return c, err
		}
		*p = v
	}
	return c, nil
}

// count reads a collection length and bounds it by the bytes that could
// possibly encode that many records (>= 1 byte each), so a corrupted count
// cannot force a huge allocation.
func (d *decoder) count() (int, error) {
	n, err := d.u()
	if err != nil {
		return 0, err
	}
	if n > uint64(d.remaining()) {
		return 0, fmt.Errorf("count %d exceeds %d remaining payload bytes", n, d.remaining())
	}
	return int(n), nil
}

func (d *decoder) meta(tr *profile.Trace) error {
	var err error
	if tr.Program, err = d.str(); err != nil {
		return err
	}
	if tr.Cores, err = d.i(); err != nil {
		return err
	}
	if tr.Sockets, err = d.i(); err != nil {
		return err
	}
	if tr.Scheduler, err = d.str(); err != nil {
		return err
	}
	if tr.Flavor, err = d.str(); err != nil {
		return err
	}
	if tr.PagePolicy, err = d.str(); err != nil {
		return err
	}
	if tr.Start, err = d.u(); err != nil {
		return err
	}
	tr.End, err = d.u()
	return err
}

func (d *decoder) task(t *profile.TaskRecord) error {
	id, err := d.str()
	if err != nil {
		return err
	}
	t.ID = profile.GrainID(id)
	parent, err := d.str()
	if err != nil {
		return err
	}
	t.Parent = profile.GrainID(parent)
	if t.Loc, err = d.loc(); err != nil {
		return err
	}
	if t.Depth, err = d.i(); err != nil {
		return err
	}
	if t.CreateTime, err = d.u(); err != nil {
		return err
	}
	if t.CreateCost, err = d.u(); err != nil {
		return err
	}
	if t.CreatedBy, err = d.i(); err != nil {
		return err
	}
	if t.StartTime, err = d.u(); err != nil {
		return err
	}
	if t.EndTime, err = d.u(); err != nil {
		return err
	}
	if d.empty() {
		return fmt.Errorf("missing inlined flag")
	}
	t.Inlined = d.buf[d.off] != 0
	d.off++

	nf, err := d.count()
	if err != nil {
		return err
	}
	if nf > 0 {
		t.Fragments = make([]profile.Fragment, nf)
	}
	for i := range t.Fragments {
		f := &t.Fragments[i]
		if f.Start, err = d.u(); err != nil {
			return err
		}
		if f.End, err = d.u(); err != nil {
			return err
		}
		if f.Core, err = d.i(); err != nil {
			return err
		}
		if f.Counters, err = d.counters(); err != nil {
			return err
		}
	}

	nb, err := d.count()
	if err != nil {
		return err
	}
	if nb > 0 {
		t.Boundaries = make([]profile.Boundary, nb)
	}
	for i := range t.Boundaries {
		b := &t.Boundaries[i]
		kind, err := d.i()
		if err != nil {
			return err
		}
		if kind < int(profile.BoundaryFork) || kind > int(profile.BoundaryLoop) {
			return fmt.Errorf("unknown boundary kind %d", kind)
		}
		b.Kind = profile.BoundaryKind(kind)
		if b.At, err = d.u(); err != nil {
			return err
		}
		child, err := d.str()
		if err != nil {
			return err
		}
		b.Child = profile.GrainID(child)
		nj, err := d.count()
		if err != nil {
			return err
		}
		if nj > 0 {
			b.Joined = make([]profile.GrainID, nj)
			for j := range b.Joined {
				s, err := d.str()
				if err != nil {
					return err
				}
				b.Joined[j] = profile.GrainID(s)
			}
		}
		if b.Wait, err = d.u(); err != nil {
			return err
		}
		if b.Suspended, err = d.u(); err != nil {
			return err
		}
		loop, err := d.i()
		if err != nil {
			return err
		}
		b.Loop = profile.LoopID(loop)
	}
	return nil
}

func (d *decoder) loop(l *profile.LoopRecord) error {
	id, err := d.i()
	if err != nil {
		return err
	}
	l.ID = profile.LoopID(id)
	if l.Loc, err = d.loc(); err != nil {
		return err
	}
	sched, err := d.i()
	if err != nil {
		return err
	}
	if sched < int(profile.ScheduleStatic) || sched > int(profile.ScheduleGuided) {
		return fmt.Errorf("unknown loop schedule %d", sched)
	}
	l.Schedule = profile.ScheduleKind(sched)
	if l.ChunkSize, err = d.i(); err != nil {
		return err
	}
	if l.Lo, err = d.i(); err != nil {
		return err
	}
	if l.Hi, err = d.i(); err != nil {
		return err
	}
	if l.Start, err = d.u(); err != nil {
		return err
	}
	if l.End, err = d.u(); err != nil {
		return err
	}
	if l.StartThread, err = d.i(); err != nil {
		return err
	}
	nt, err := d.count()
	if err != nil {
		return err
	}
	if nt > 0 {
		l.Threads = make([]int, nt)
		for i := range l.Threads {
			if l.Threads[i], err = d.i(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (d *decoder) chunk(c *profile.ChunkRecord) error {
	loop, err := d.i()
	if err != nil {
		return err
	}
	c.Loop = profile.LoopID(loop)
	if c.Seq, err = d.i(); err != nil {
		return err
	}
	if c.Thread, err = d.i(); err != nil {
		return err
	}
	if c.Lo, err = d.i(); err != nil {
		return err
	}
	if c.Hi, err = d.i(); err != nil {
		return err
	}
	if c.Start, err = d.u(); err != nil {
		return err
	}
	if c.End, err = d.u(); err != nil {
		return err
	}
	if c.Bookkeep, err = d.u(); err != nil {
		return err
	}
	c.Counters, err = d.counters()
	return err
}

func (d *decoder) bookkeep(b *profile.BookkeepRecord) error {
	loop, err := d.i()
	if err != nil {
		return err
	}
	b.Loop = profile.LoopID(loop)
	if b.Thread, err = d.i(); err != nil {
		return err
	}
	if b.Grabs, err = d.i(); err != nil {
		return err
	}
	b.Total, err = d.u()
	return err
}

func (d *decoder) workers(tr *profile.Trace) error {
	if tr.Workers != nil {
		return fmt.Errorf("duplicate workers section")
	}
	n, err := d.count()
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("empty workers section")
	}
	tr.Workers = make([]profile.WorkerStat, n)
	for i := range tr.Workers {
		if tr.Workers[i].Busy, err = d.u(); err != nil {
			return err
		}
		if tr.Workers[i].Overhead, err = d.u(); err != nil {
			return err
		}
	}
	return nil
}
