package ggp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"graingraph/internal/cache"
	"graingraph/internal/profile"
)

// Writer streams a grain profile to an underlying io.Writer, one section
// per record, and seals the artifact with a CRC trailer on Close. Record
// methods may be called in any order; the graph builder only requires that
// records of each kind arrive in the producer's emission order, which the
// Writer preserves by construction.
type Writer struct {
	w      *bufio.Writer
	crc    hash.Hash32
	buf    []byte // scratch for one section payload
	err    error  // first write error; sticky
	closed bool
}

// NewWriter writes the artifact header and returns a streaming writer.
func NewWriter(w io.Writer) (*Writer, error) {
	gw := &Writer{w: bufio.NewWriter(w), crc: crc32.NewIEEE()}
	hdr := append([]byte(Magic), Version)
	if err := gw.raw(hdr); err != nil {
		return nil, err
	}
	return gw, nil
}

// raw writes bytes to both the stream and the running checksum.
func (w *Writer) raw(p []byte) error {
	if w.err != nil {
		return w.err
	}
	if _, err := w.w.Write(p); err != nil {
		w.err = err
		return err
	}
	w.crc.Write(p) // never fails
	return nil
}

// section emits one length-prefixed section holding w.buf.
func (w *Writer) section(id byte) error {
	hdr := make([]byte, 0, binary.MaxVarintLen64+1)
	hdr = append(hdr, id)
	hdr = binary.AppendUvarint(hdr, uint64(len(w.buf)))
	if err := w.raw(hdr); err != nil {
		return err
	}
	return w.raw(w.buf)
}

// Payload encoding helpers: unsigned fields use uvarint, possibly-negative
// ints use zig-zag varint, strings are length-prefixed.

func (w *Writer) u(v uint64)   { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *Writer) i(v int)      { w.buf = binary.AppendVarint(w.buf, int64(v)) }
func (w *Writer) str(s string) { w.u(uint64(len(s))); w.buf = append(w.buf, s...) }
func (w *Writer) loc(l profile.SrcLoc) {
	w.str(l.File)
	w.i(l.Line)
	w.str(l.Func)
}

func (w *Writer) counters(c cache.Counters) {
	w.u(c.Accesses)
	w.u(c.L1Miss)
	w.u(c.L2Miss)
	w.u(c.L3Miss)
	w.u(c.Remote)
	w.u(c.Stall)
	w.u(c.Compute)
}

// Meta records the program identification and trace span. Producers that
// only learn the span at finalization may call it last; Reader accepts the
// meta section at any position.
func (w *Writer) Meta(tr *profile.Trace) error {
	w.buf = w.buf[:0]
	w.str(tr.Program)
	w.i(tr.Cores)
	w.i(tr.Sockets)
	w.str(tr.Scheduler)
	w.str(tr.Flavor)
	w.str(tr.PagePolicy)
	w.u(tr.Start)
	w.u(tr.End)
	return w.section(secMeta)
}

// Task emits one task record.
func (w *Writer) Task(t *profile.TaskRecord) error {
	w.buf = w.buf[:0]
	w.str(string(t.ID))
	w.str(string(t.Parent))
	w.loc(t.Loc)
	w.i(t.Depth)
	w.u(t.CreateTime)
	w.u(t.CreateCost)
	w.i(t.CreatedBy)
	w.u(t.StartTime)
	w.u(t.EndTime)
	if t.Inlined {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
	w.u(uint64(len(t.Fragments)))
	for i := range t.Fragments {
		f := &t.Fragments[i]
		w.u(f.Start)
		w.u(f.End)
		w.i(f.Core)
		w.counters(f.Counters)
	}
	w.u(uint64(len(t.Boundaries)))
	for i := range t.Boundaries {
		b := &t.Boundaries[i]
		w.i(int(b.Kind))
		w.u(b.At)
		w.str(string(b.Child))
		w.u(uint64(len(b.Joined)))
		for _, j := range b.Joined {
			w.str(string(j))
		}
		w.u(b.Wait)
		w.u(b.Suspended)
		w.i(int(b.Loop))
	}
	return w.section(secTask)
}

// Loop emits one loop record.
func (w *Writer) Loop(l *profile.LoopRecord) error {
	w.buf = w.buf[:0]
	w.i(int(l.ID))
	w.loc(l.Loc)
	w.i(int(l.Schedule))
	w.i(l.ChunkSize)
	w.i(l.Lo)
	w.i(l.Hi)
	w.u(l.Start)
	w.u(l.End)
	w.i(l.StartThread)
	w.u(uint64(len(l.Threads)))
	for _, t := range l.Threads {
		w.i(t)
	}
	return w.section(secLoop)
}

// Chunk emits one chunk record.
func (w *Writer) Chunk(c *profile.ChunkRecord) error {
	w.buf = w.buf[:0]
	w.i(int(c.Loop))
	w.i(c.Seq)
	w.i(c.Thread)
	w.i(c.Lo)
	w.i(c.Hi)
	w.u(c.Start)
	w.u(c.End)
	w.u(c.Bookkeep)
	w.counters(c.Counters)
	return w.section(secChunk)
}

// Bookkeep emits one per-(loop,thread) book-keeping aggregate.
func (w *Writer) Bookkeep(b *profile.BookkeepRecord) error {
	w.buf = w.buf[:0]
	w.i(int(b.Loop))
	w.i(b.Thread)
	w.i(b.Grabs)
	w.u(b.Total)
	return w.section(secBookkeep)
}

// Workers emits the per-worker time split.
func (w *Writer) Workers(ws []profile.WorkerStat) error {
	w.buf = w.buf[:0]
	w.u(uint64(len(ws)))
	for i := range ws {
		w.u(ws[i].Busy)
		w.u(ws[i].Overhead)
	}
	return w.section(secWorkers)
}

// Close seals the artifact with the CRC trailer and flushes. The Writer is
// unusable afterwards. Close does not close the underlying writer.
func (w *Writer) Close() error {
	if w.closed {
		return fmt.Errorf("ggp: writer already closed")
	}
	w.closed = true
	if w.err != nil {
		return w.err
	}
	sum := w.crc.Sum32()
	var payload [4]byte
	binary.LittleEndian.PutUint32(payload[:], sum)
	w.buf = append(w.buf[:0], payload[:]...)
	if err := w.section(secTrailer); err != nil {
		return err
	}
	return w.w.Flush()
}

// Emit streams every record of a finished trace into the Writer: meta,
// then each record slice in its trace order (which is the producer's
// emission order, so a read-back trace rebuilds identical NodeIDs). The
// runtimes call this at finalization; errors are sticky and surface from
// the caller's Close.
func (w *Writer) Emit(tr *profile.Trace) error {
	if err := w.Meta(tr); err != nil {
		return err
	}
	for _, t := range tr.Tasks {
		if err := w.Task(t); err != nil {
			return err
		}
	}
	for _, l := range tr.Loops {
		if err := w.Loop(l); err != nil {
			return err
		}
	}
	for _, c := range tr.Chunks {
		if err := w.Chunk(c); err != nil {
			return err
		}
	}
	for _, b := range tr.Bookkeeps {
		if err := w.Bookkeep(b); err != nil {
			return err
		}
	}
	if len(tr.Workers) > 0 {
		if err := w.Workers(tr.Workers); err != nil {
			return err
		}
	}
	return nil
}

// WriteTrace writes tr as one complete artifact to w.
func WriteTrace(w io.Writer, tr *profile.Trace) error {
	gw, err := NewWriter(w)
	if err != nil {
		return err
	}
	if err := gw.Emit(tr); err != nil {
		return err
	}
	return gw.Close()
}

// WriteFile writes tr to path atomically (temp file + rename), so a
// concurrent reader never observes a half-written artifact.
func WriteFile(path string, tr *profile.Trace) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ggp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteTrace(tmp, tr); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
